//===- workloads/Degradation.h - Adversary vs. benign overhead ratios -----===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controlled comparison behind the degradation report, the
/// adversarial bench record, and the golden degradation pins: every
/// catalog adversary replayed against the benign statistical workload at
/// equal trace length and equal relative cache pressure, per eviction
/// granularity. One definition of "degradation" shared by all three
/// consumers, so the CLI report, BENCH_adversarial.json, and the
/// regression pins can never drift apart.
///
/// Fairness construction: the benign baseline trace is generated first;
/// each adversary is then generated with its Accesses pinned to the
/// baseline's length, and replayed at its tuned capacity while the
/// baseline replays at the same capacity *fraction* of its own maxCache.
/// Equal length, equal relative pressure — only the access structure is
/// adversarial.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_WORKLOADS_DEGRADATION_H
#define CCSIM_WORKLOADS_DEGRADATION_H

#include "core/CacheStats.h"
#include "core/CostModel.h"
#include "core/EvictionPolicy.h"
#include "workloads/Adversary.h"

#include <algorithm>
#include <string>
#include <vector>

namespace ccsim::workloads {

/// Inputs of one degradation study.
struct DegradationConfig {
  double Scale = 1.0; ///< Working-set scale for adversaries AND baseline.
  uint64_t Seed = 42;
  std::string BaselineBenchmark = "crafty"; ///< Table 1 statistical model.
  std::vector<GranularitySpec> Policies = {
      GranularitySpec::flush(), GranularitySpec::units(8),
      GranularitySpec::fine()};
  CostModel Costs = CostModel::paperDefaults();
};

/// One (adversary, granularity) comparison cell.
struct DegradationCell {
  std::string Adversary;
  std::string PolicyLabel;
  uint64_t AdversaryCapacityBytes = 0;
  uint64_t BaselineCapacityBytes = 0;
  CacheStats Adversarial; ///< Full counters of the adversarial replay.
  CacheStats Baseline;    ///< Full counters of the benign replay.

  /// Modeled-overhead ratio adversarial/benign (Eq. 2-4 totals including
  /// link maintenance). The baseline's cold misses keep its overhead
  /// strictly positive on any non-empty trace; the max() is a guard for
  /// degenerate empty streams, not a fudge factor.
  double degradation() const {
    return Adversarial.totalOverhead(true) /
           std::max(Baseline.totalOverhead(true), 1.0);
  }
};

/// Runs the full study: |catalog| x |Policies| cells, in catalog-then-
/// policy order. Deterministic given the config.
std::vector<DegradationCell>
computeDegradation(const DegradationConfig &Config);

/// The cell with the largest degradation ratio (nullptr on empty input).
const DegradationCell *worstCell(const std::vector<DegradationCell> &Cells);

} // namespace ccsim::workloads

#endif // CCSIM_WORKLOADS_DEGRADATION_H
