//===- workloads/Adversary.cpp - Adversarial workload generators ----------===//

#include "workloads/Adversary.h"

#include "core/SharedContentIndex.h"
#include "support/Contracts.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

using namespace ccsim;
using namespace ccsim::workloads;

const char *ccsim::workloads::adversaryKindName(AdversaryKind Kind) {
  switch (Kind) {
  case AdversaryKind::ConflictChain:
    return "conflict-chain";
  case AdversaryKind::ThrashLoop:
    return "thrash-loop";
  case AdversaryKind::LinkClique:
    return "link-clique";
  case AdversaryKind::PhaseShift:
    return "phase-shift";
  case AdversaryKind::TenantOverlap:
    return "tenant-overlap";
  case AdversaryKind::SelfModifying:
    return "self-modifying";
  }
  return "unknown";
}

namespace {

// Sanity ceilings: validate() rejects anything beyond these before the
// generators allocate, so a fuzzer-sampled spec can never OOM or overflow
// the uint64 capacity/stream math (all products stay under 2^54).
constexpr uint32_t MaxBlocks = 1U << 22;
constexpr uint32_t MaxBlockBytes = 1U << 20;
constexpr uint64_t MaxAccesses = 1ULL << 26;
constexpr uint32_t MaxUnits = 1U << 16;
constexpr uint32_t MaxPhases = 1U << 16;
constexpr uint32_t MaxCliqueSize = 1U << 20;
constexpr uint32_t MaxTenants = 1U << 12;
constexpr uint32_t MaxVersions = 1U << 12;
constexpr uint32_t MaxRewriteInterval = 1U << 20;

/// One-shot churn blocks per ThrashLoop lap (0 = a pure loop that never
/// overflows its tuned capacity — legal, just eviction-free).
uint64_t churnBlocksPerLap(const AdversarySpec &Spec) {
  return static_cast<uint64_t>(
      std::llround(Spec.ChurnPerLap * double(Spec.Blocks)));
}

/// LinkClique rounds the working set up to whole cliques.
uint64_t cliqueBlockCount(const AdversarySpec &Spec) {
  const uint64_t Cliques =
      std::max<uint64_t>(1, (Spec.Blocks + Spec.CliqueSize - 1) /
                                Spec.CliqueSize);
  return Cliques * Spec.CliqueSize;
}

/// TenantOverlap splits Blocks into a shared pool and per-tenant privates.
void overlapSplit(const AdversarySpec &Spec, uint64_t &Shared,
                  uint64_t &PrivatePerTenant) {
  Shared = static_cast<uint64_t>(
      std::llround(Spec.OverlapFraction * double(Spec.Blocks)));
  Shared = std::min<uint64_t>(Shared, Spec.Blocks);
  PrivatePerTenant = Spec.Blocks - Shared;
}

/// Working set one TargetUnits-th larger than the cache: the cyclic
/// patterns size capacity to WS * U / (U + 1), so the stream exceeds the
/// cache by exactly one unit.
uint64_t oneUnitOverCapacity(uint64_t WorkingSetBytes, uint32_t Units) {
  const uint64_t Cap = WorkingSetBytes * Units / (Units + 1);
  return std::max<uint64_t>(1, Cap);
}

/// Maps logical block keys to dense superblock ids in discovery order —
/// the id-numbering convention every generated trace shares with the
/// statistical TraceGenerator.
class StreamBuilder {
public:
  void access(uint64_t Key) {
    auto [It, Fresh] =
        Ids.try_emplace(Key, static_cast<SuperblockId>(Order.size()));
    if (Fresh)
      Order.push_back(Key);
    Stream.push_back(It->second);
  }

  /// Assembles the trace: uniform block sizes, accesses as streamed, and
  /// logical edges translated to ids. Edges naming a key the (possibly
  /// truncated) stream never discovered are dropped, which is what keeps
  /// every generated trace Trace::validate()-clean.
  template <typename EdgesFn>
  Trace finish(std::string Name, uint32_t BlockBytes, EdgesFn EdgesOf) && {
    Trace T;
    T.Name = std::move(Name);
    T.Blocks.resize(Order.size());
    std::vector<uint64_t> EdgeKeys;
    for (size_t Id = 0; Id < Order.size(); ++Id) {
      T.Blocks[Id].SizeBytes = BlockBytes;
      EdgeKeys.clear();
      EdgesOf(Order[Id], EdgeKeys);
      for (uint64_t Key : EdgeKeys) {
        const auto It = Ids.find(Key);
        if (It != Ids.end())
          T.Blocks[Id].OutEdges.push_back(It->second);
      }
    }
    T.Accesses = std::move(Stream);
    return T;
  }

  /// finish() plus per-block content tags: TagOf(Key) returns the block's
  /// ContentTag (0 = untagged private code). The tagged variant exists for
  /// the cross-tenant sharing study, where identical code in different
  /// tenants' traces must carry the same tag even though discovery order
  /// — and hence local ids — differs per tenant.
  template <typename EdgesFn, typename TagFn>
  Trace finishTagged(std::string Name, uint32_t BlockBytes, EdgesFn EdgesOf,
                     TagFn TagOf) && {
    const std::vector<uint64_t> Keys = Order;
    Trace T = std::move(*this).finish(std::move(Name), BlockBytes, EdgesOf);
    for (size_t Id = 0; Id < Keys.size(); ++Id)
      T.Blocks[Id].ContentTag = TagOf(Keys[Id]);
    return T;
  }

private:
  std::unordered_map<uint64_t, SuperblockId> Ids;
  std::vector<uint64_t> Order; ///< Key of each id, in discovery order.
  std::vector<SuperblockId> Stream;
};

//===----------------------------------------------------------------------===//
// Generators. Each emits exactly Spec-many accesses over a logical key
// space, then lets StreamBuilder::finish densify ids and wire edges. The
// conflict geometry is deliberately deterministic — the worst case is the
// point — so the seed only perturbs genuinely stochastic components
// (churn placement, tenant cursor offsets).
//===----------------------------------------------------------------------===//

Trace generateConflictChain(const AdversarySpec &Spec, uint64_t Accesses) {
  const uint64_t N = Spec.Blocks;
  StreamBuilder B;
  for (uint64_t K = 0; K < Accesses; ++K)
    B.access(K % N);
  return std::move(B).finish(
      Spec.Name, Spec.BlockBytes,
      [N](uint64_t Key, std::vector<uint64_t> &Edges) {
        Edges.push_back((Key + 1) % N);
      });
}

Trace generateThrashLoop(const AdversarySpec &Spec, uint64_t Accesses,
                         uint64_t Seed) {
  const uint64_t H = Spec.Blocks;
  const uint64_t Churn = churnBlocksPerLap(Spec);
  // Churn is spread evenly through each lap (Churn one-shot blocks per H
  // hot accesses, Bresenham-style); the seed only rotates where in the
  // lap the first one lands.
  const uint64_t Offset = Rng(Seed).nextBelow(H);
  StreamBuilder B;
  uint64_t Emitted = 0;
  uint64_t NextChurnKey = H; // Keys >= H are one-shot churn blocks.
  for (uint64_t Hot = 0; Emitted < Accesses; ++Hot) {
    B.access(Hot % H);
    ++Emitted;
    const uint64_t Due = ((Hot + Offset + 1) * Churn) / H;
    for (uint64_t Done = ((Hot + Offset) * Churn) / H;
         Done < Due && Emitted < Accesses; ++Done) {
      B.access(NextChurnKey++);
      ++Emitted;
    }
  }
  return std::move(B).finish(
      Spec.Name, Spec.BlockBytes,
      [H](uint64_t Key, std::vector<uint64_t> &Edges) {
        // Hot blocks chain around the loop; churn blocks branch back in.
        Edges.push_back(Key < H ? (Key + 1) % H : (Key - H) % H);
      });
}

Trace generateLinkClique(const AdversarySpec &Spec, uint64_t Accesses) {
  const uint64_t Total = cliqueBlockCount(Spec);
  const uint64_t K = Spec.CliqueSize;
  StreamBuilder B;
  for (uint64_t I = 0; I < Accesses; ++I)
    B.access(I % Total);
  return std::move(B).finish(
      Spec.Name, Spec.BlockBytes,
      [K](uint64_t Key, std::vector<uint64_t> &Edges) {
        const uint64_t Base = (Key / K) * K;
        for (uint64_t M = 0; M < K; ++M)
          Edges.push_back(Base + M); // All-to-all, self-link included.
      });
}

Trace generatePhaseShift(const AdversarySpec &Spec, uint64_t Accesses) {
  const uint64_t B = Spec.Blocks;
  const uint64_t P = Spec.Phases;
  StreamBuilder Builder;
  const uint64_t Share = Accesses / P;
  uint64_t Emitted = 0;
  for (uint64_t Phase = 0; Phase < P; ++Phase) {
    // The last phase absorbs the remainder; early phases can be
    // zero-length when Accesses < Phases (a legal degenerate shape).
    const uint64_t Quota = Phase + 1 == P ? Accesses - Emitted : Share;
    for (uint64_t K = 0; K < Quota; ++K)
      Builder.access(Phase * B + K % B);
    Emitted += Quota;
  }
  return std::move(Builder).finish(
      Spec.Name, Spec.BlockBytes,
      [B](uint64_t Key, std::vector<uint64_t> &Edges) {
        const uint64_t Phase = Key / B;
        Edges.push_back(Phase * B + (Key % B + 1) % B);
      });
}

Trace generateTenantOverlap(const AdversarySpec &Spec, uint64_t Accesses,
                            uint64_t Seed) {
  uint64_t Shared = 0;
  uint64_t Priv = 0;
  overlapSplit(Spec, Shared, Priv);
  const uint64_t T = Spec.Tenants;
  const uint64_t PerTenant = Shared + Priv;
  constexpr uint64_t Quantum = 16;

  // Tenant t's working set, in its own access order: the shared pool
  // first (keys [0, Shared)), then its private blocks (keys offset past
  // every tenant's). Cursors start at seeded offsets so tenants do not
  // march through the shared pool in lockstep.
  Rng R(Seed);
  std::vector<uint64_t> Cursor(T);
  for (uint64_t I = 0; I < T; ++I)
    Cursor[I] = PerTenant ? R.nextBelow(PerTenant) : 0;

  StreamBuilder B;
  uint64_t Emitted = 0;
  uint64_t Tenant = 0;
  while (Emitted < Accesses && PerTenant > 0) {
    for (uint64_t Q = 0; Q < Quantum && Emitted < Accesses; ++Q) {
      const uint64_t Slot = Cursor[Tenant]++ % PerTenant;
      B.access(Slot < Shared ? Slot : Shared + Tenant * Priv +
                                          (Slot - Shared));
      ++Emitted;
    }
    Tenant = (Tenant + 1) % T;
  }
  return std::move(B).finish(
      Spec.Name, Spec.BlockBytes,
      [Shared, Priv](uint64_t Key, std::vector<uint64_t> &Edges) {
        if (Key < Shared) { // Shared pool chains cyclically.
          Edges.push_back((Key + 1) % Shared);
          return;
        }
        const uint64_t Local = (Key - Shared) % Priv;
        Edges.push_back(Key - Local + (Local + 1) % Priv);
      });
}

Trace generateSelfModifying(const AdversarySpec &Spec, uint64_t Accesses) {
  const uint64_t B = Spec.Blocks;
  const uint64_t V = Spec.Versions;
  const uint64_t R = Spec.RewriteInterval;
  StreamBuilder Builder;
  std::vector<uint64_t> Executions(B, 0);
  for (uint64_t K = 0; K < Accesses; ++K) {
    const uint64_t Block = K % B;
    const uint64_t Version = std::min(Executions[Block]++ / R, V - 1);
    Builder.access(Block * V + Version);
  }
  return std::move(Builder).finish(
      Spec.Name, Spec.BlockBytes,
      [B, V](uint64_t Key, std::vector<uint64_t> &Edges) {
        // Same-generation chain to the next logical block.
        const uint64_t Block = Key / V;
        Edges.push_back(((Block + 1) % B) * V + Key % V);
      });
}

} // namespace

std::string AdversarySpec::validate() const {
  if (Name.empty())
    return "adversarial spec needs a name";
  if (Blocks == 0)
    return "adversarial spec needs at least one superblock";
  if (Blocks > MaxBlocks)
    return "working set beyond " + std::to_string(MaxBlocks) +
           " superblocks";
  if (BlockBytes == 0)
    return "superblock bytes must be positive";
  if (BlockBytes > MaxBlockBytes)
    return "superblock bytes beyond " + std::to_string(MaxBlockBytes);
  if (TargetUnits == 0)
    return "target unit count must be at least 1";
  if (TargetUnits > MaxUnits)
    return "target unit count beyond " + std::to_string(MaxUnits);
  switch (Kind) {
  case AdversaryKind::ConflictChain:
    break;
  case AdversaryKind::ThrashLoop:
    if (!(HotFraction > 0.0) || HotFraction > 1.0)
      return "hot fraction must be in (0, 1]";
    if (!(ChurnPerLap >= 0.0) || ChurnPerLap > 16.0)
      return "churn per lap must be in [0, 16]";
    break;
  case AdversaryKind::LinkClique:
    if (CliqueSize == 0)
      return "cliques need at least one member";
    if (CliqueSize > MaxCliqueSize)
      return "clique size beyond " + std::to_string(MaxCliqueSize);
    break;
  case AdversaryKind::PhaseShift:
    if (Phases == 0)
      return "phase-shift needs at least one phase";
    if (Phases > MaxPhases)
      return "phase count beyond " + std::to_string(MaxPhases);
    break;
  case AdversaryKind::TenantOverlap:
    if (Tenants == 0)
      return "tenant overlap needs at least one tenant";
    if (Tenants > MaxTenants)
      return "tenant count beyond " + std::to_string(MaxTenants);
    if (!(OverlapFraction >= 0.0) || OverlapFraction > 1.0)
      return "overlap fraction must be in [0, 1]";
    break;
  case AdversaryKind::SelfModifying:
    if (Versions == 0)
      return "self-modifying stream needs at least one version";
    if (Versions > MaxVersions)
      return "version count beyond " + std::to_string(MaxVersions);
    if (RewriteInterval == 0)
      return "rewrite interval must be at least one execution";
    if (RewriteInterval > MaxRewriteInterval)
      return "rewrite interval beyond " +
             std::to_string(MaxRewriteInterval);
    break;
  }
  const uint64_t Stream = Accesses != 0 ? Accesses : derivedAccesses();
  if (Stream > MaxAccesses)
    return "access stream beyond " + std::to_string(MaxAccesses) +
           " events (shrink the working set or set --scale)";
  return {};
}

uint64_t AdversarySpec::plannedBlocks() const {
  switch (Kind) {
  case AdversaryKind::ConflictChain:
  case AdversaryKind::ThrashLoop:
    return Blocks;
  case AdversaryKind::LinkClique:
    return cliqueBlockCount(*this);
  case AdversaryKind::PhaseShift:
    return uint64_t(Phases) * Blocks;
  case AdversaryKind::TenantOverlap: {
    uint64_t Shared = 0;
    uint64_t Priv = 0;
    overlapSplit(*this, Shared, Priv);
    return Shared + uint64_t(Tenants) * Priv;
  }
  case AdversaryKind::SelfModifying:
    return uint64_t(Blocks) * Versions;
  }
  return Blocks;
}

uint64_t AdversarySpec::derivedAccesses() const {
  switch (Kind) {
  case AdversaryKind::ConflictChain:
    return uint64_t(Blocks) * 48;
  case AdversaryKind::ThrashLoop:
    return (Blocks + churnBlocksPerLap(*this)) * 40;
  case AdversaryKind::LinkClique:
    return cliqueBlockCount(*this) * 48;
  case AdversaryKind::PhaseShift:
    return uint64_t(Phases) * Blocks * 24;
  case AdversaryKind::TenantOverlap:
    return plannedBlocks() * 32;
  case AdversaryKind::SelfModifying:
    // Exactly exhausts every version of every logical block.
    return uint64_t(Blocks) * Versions * RewriteInterval;
  }
  return uint64_t(Blocks) * 48;
}

uint64_t AdversarySpec::tunedCapacityBytes() const {
  const uint64_t S = BlockBytes;
  switch (Kind) {
  case AdversaryKind::ConflictChain:
  case AdversaryKind::LinkClique:
  case AdversaryKind::TenantOverlap:
    // Cyclic streams one unit over capacity: every granularity misses on
    // every access after warmup, so the divergence is pure eviction and
    // unlink machinery cost (DESIGN.md section 16).
    return oneUnitOverCapacity(plannedBlocks() * S, TargetUnits);
  case AdversaryKind::ThrashLoop:
    // The hot loop fills HotFraction of the cache; churn supplies the
    // inserts that keep eviction running over live code.
    return std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(double(Blocks) * double(S) / HotFraction)));
  case AdversaryKind::PhaseShift:
    // One phase plus one unit of slack: each switch must turn the whole
    // resident set over, but a single phase alone always fits.
    return std::max<uint64_t>(
        1, uint64_t(Blocks) * S * (TargetUnits + 1) / TargetUnits);
  case AdversaryKind::SelfModifying:
    // Two live generations fit; dead versions beyond that are garbage
    // the policy must clear without wiping live code.
    return std::max<uint64_t>(1, 2 * uint64_t(Blocks) * S);
  }
  return std::max<uint64_t>(1, plannedBlocks() * S);
}

std::vector<Trace>
ccsim::workloads::generateTenantOverlapSuite(const AdversarySpec &Spec,
                                             uint64_t Seed) {
  CCSIM_REQUIRE(Spec.Kind == AdversaryKind::TenantOverlap,
                "tenant-overlap suite generation needs a TenantOverlap "
                "spec, got '%s'",
                adversaryKindName(Spec.Kind));
  const std::string Err = Spec.validate();
  CCSIM_REQUIRE(Err.empty(), "invalid adversarial spec '%s': %s",
                Spec.Name.c_str(), Err.c_str());

  uint64_t Shared = 0;
  uint64_t Priv = 0;
  overlapSplit(Spec, Shared, Priv);
  const uint64_t PerTenant = Shared + Priv;
  const uint64_t T = Spec.Tenants;
  const uint64_t Total =
      Spec.Accesses != 0 ? Spec.Accesses : Spec.derivedAccesses();
  // Every tenant must discover its whole working set (Trace::validate
  // requires each defined block accessed), even when an explicit Accesses
  // is stingy.
  const uint64_t EachAccesses =
      std::max<uint64_t>(PerTenant, (Total + T - 1) / T);

  // Same cursor-offset seeding as the single-trace interleave: tenants do
  // not march through the shared pool in lockstep, so their discovery
  // orders — and hence local ids — genuinely differ. Only the ContentTag
  // identifies pool blocks across tenants.
  Rng R(Seed);
  std::vector<Trace> Suite;
  Suite.reserve(T);
  for (uint64_t I = 0; I < T; ++I) {
    const uint64_t Offset = PerTenant ? R.nextBelow(PerTenant) : 0;
    StreamBuilder B;
    for (uint64_t K = 0; K < EachAccesses && PerTenant > 0; ++K)
      B.access((Offset + K) % PerTenant);
    Suite.push_back(std::move(B).finishTagged(
        Spec.Name + "[t" + std::to_string(I) + "]", Spec.BlockBytes,
        [Shared, Priv](uint64_t Key, std::vector<uint64_t> &Edges) {
          // Pool chains cyclically within the pool, private code within
          // the private set — shared code never branches into private
          // code, so a pool block really is identical across tenants.
          if (Key < Shared) {
            Edges.push_back((Key + 1) % Shared);
            return;
          }
          Edges.push_back(Shared + (Key - Shared + 1) % Priv);
        },
        [&Spec, Shared](uint64_t Key) -> uint64_t {
          if (Key >= Shared)
            return 0; // Private code: content-unique by trace name.
          return ContentKeyBuilder().mix(Spec.Name).mix(Key).key();
        }));
  }
  return Suite;
}

Trace ccsim::workloads::generateAdversarial(const AdversarySpec &Spec,
                                            uint64_t Seed) {
  const std::string Err = Spec.validate();
  CCSIM_REQUIRE(Err.empty(), "invalid adversarial spec '%s': %s",
                Spec.Name.c_str(), Err.c_str());
  const uint64_t Accesses =
      Spec.Accesses != 0 ? Spec.Accesses : Spec.derivedAccesses();
  switch (Spec.Kind) {
  case AdversaryKind::ConflictChain:
    return generateConflictChain(Spec, Accesses);
  case AdversaryKind::ThrashLoop:
    return generateThrashLoop(Spec, Accesses, Seed);
  case AdversaryKind::LinkClique:
    return generateLinkClique(Spec, Accesses);
  case AdversaryKind::PhaseShift:
    return generatePhaseShift(Spec, Accesses);
  case AdversaryKind::TenantOverlap:
    return generateTenantOverlap(Spec, Accesses, Seed);
  case AdversaryKind::SelfModifying:
    return generateSelfModifying(Spec, Accesses);
  }
  CCSIM_REQUIRE(false, "unreachable adversary kind");
  return {};
}

const std::vector<AdversarySpec> &ccsim::workloads::adversarialCatalog() {
  static const std::vector<AdversarySpec> Catalog = [] {
    std::vector<AdversarySpec> Specs;

    AdversarySpec Chain;
    Chain.Name = "chain";
    Chain.Kind = AdversaryKind::ConflictChain;
    Chain.Blocks = 768;
    Chain.Summary = "cyclic conflict chain one unit over capacity; every "
                    "FIFO granularity misses every access, fine pays the "
                    "per-block eviction+unlink machinery";
    Specs.push_back(Chain);

    AdversarySpec Thrash;
    Thrash.Name = "thrash";
    Thrash.Kind = AdversaryKind::ThrashLoop;
    Thrash.Blocks = 384;
    Thrash.Summary = "hot loop at 3/4 capacity under one-shot churn; "
                     "coarse flushes keep wiping the live loop";
    Specs.push_back(Thrash);

    AdversarySpec Clique;
    Clique.Name = "clique";
    Clique.Kind = AdversaryKind::LinkClique;
    Clique.Blocks = 512;
    Clique.CliqueSize = 8;
    Clique.Summary = "fully cross-linked cliques cycled over capacity; "
                     "maximizes Eq. 4 back-pointer unlink work per "
                     "eviction";
    Specs.push_back(Clique);

    AdversarySpec Phase;
    Phase.Name = "phase-shift";
    Phase.Kind = AdversaryKind::PhaseShift;
    Phase.Blocks = 256;
    Phase.Phases = 6;
    Phase.Summary = "disjoint working sets with abrupt switches; every "
                    "switch turns the whole resident set over";
    Specs.push_back(Phase);

    AdversarySpec Overlap;
    Overlap.Name = "overlap";
    Overlap.Kind = AdversaryKind::TenantOverlap;
    Overlap.Blocks = 192;
    Overlap.Tenants = 3;
    Overlap.OverlapFraction = 0.5;
    Overlap.Summary = "interleaved tenants over a shared hot pool "
                      "(ShareJIT-style content-overlap knob)";
    Specs.push_back(Overlap);

    AdversarySpec Smc;
    Smc.Name = "smc";
    Smc.Kind = AdversaryKind::SelfModifying;
    Smc.Blocks = 96;
    Smc.Versions = 8;
    Smc.RewriteInterval = 64;
    Smc.Summary = "self-modifying stream: periodic retranslation strands "
                  "dead versions that only fine eviction clears cheaply";
    Specs.push_back(Smc);

    for (const AdversarySpec &Spec : Specs)
      CCSIM_REQUIRE(Spec.validate().empty(),
                    "catalog spec '%s' must be generatable",
                    Spec.Name.c_str());
    return Specs;
  }();
  return Catalog;
}

const AdversarySpec *ccsim::workloads::findAdversarial(
    const std::string &Name) {
  for (const AdversarySpec &Spec : adversarialCatalog())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

AdversarySpec ccsim::workloads::scaledAdversary(const AdversarySpec &Spec,
                                                double Factor) {
  AdversarySpec Scaled = Spec;
  Scaled.Blocks = static_cast<uint32_t>(std::max<int64_t>(
      4, std::llround(double(Spec.Blocks) * Factor)));
  if (Spec.Accesses != 0)
    Scaled.Accesses = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(double(Spec.Accesses) * Factor)));
  return Scaled;
}
