//===- workloads/Degradation.cpp - Adversary vs. benign overhead ratios ---===//

#include "workloads/Degradation.h"

#include "sim/Simulator.h"
#include "support/Contracts.h"
#include "trace/TraceGenerator.h"
#include "trace/WorkloadModel.h"

using namespace ccsim;
using namespace ccsim::workloads;

std::vector<DegradationCell>
ccsim::workloads::computeDegradation(const DegradationConfig &Config) {
  const WorkloadModel *Model = findWorkload(Config.BaselineBenchmark);
  CCSIM_REQUIRE(Model, "unknown baseline benchmark '%s'",
                Config.BaselineBenchmark.c_str());
  WorkloadModel Baseline = *Model;
  if (Config.Scale < 0.999)
    Baseline = scaledWorkload(Baseline, Config.Scale);
  const Trace Benign =
      TraceGenerator::generateBenchmark(Baseline, Config.Seed);
  const uint64_t Length = Benign.numAccesses();
  const uint64_t BenignMax = Benign.maxCacheBytes();

  std::vector<DegradationCell> Cells;
  for (const AdversarySpec &Entry : adversarialCatalog()) {
    AdversarySpec Spec =
        Config.Scale < 0.999 ? scaledAdversary(Entry, Config.Scale) : Entry;
    Spec.Accesses = Length; // Equal trace length by construction.
    const Trace Adversarial = generateAdversarial(Spec, Config.Seed);
    const uint64_t AdvCapacity = Spec.tunedCapacityBytes();
    const uint64_t AdvMax = Adversarial.maxCacheBytes();
    // Same capacity fraction of each trace's own maxCache: equal
    // relative pressure, so the ratio isolates access structure.
    const uint64_t BaseCapacity = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<long double>(BenignMax) *
                                 AdvCapacity / AdvMax));

    for (const GranularitySpec &Policy : Config.Policies) {
      SimConfig AdvConfig;
      AdvConfig.withCapacityBytes(AdvCapacity).withCosts(Config.Costs);
      AdvConfig.Audit = AuditLevel::Off; // Pin speed in paranoid builds.
      SimConfig BaseConfig;
      BaseConfig.withCapacityBytes(BaseCapacity).withCosts(Config.Costs);
      BaseConfig.Audit = AuditLevel::Off;

      DegradationCell Cell;
      Cell.Adversary = Spec.Name;
      Cell.PolicyLabel = Policy.label();
      Cell.AdversaryCapacityBytes = AdvCapacity;
      Cell.BaselineCapacityBytes = BaseCapacity;
      Cell.Adversarial = sim::run(Adversarial, Policy, AdvConfig).Stats;
      Cell.Baseline = sim::run(Benign, Policy, BaseConfig).Stats;
      Cells.push_back(std::move(Cell));
    }
  }
  return Cells;
}

const DegradationCell *
ccsim::workloads::worstCell(const std::vector<DegradationCell> &Cells) {
  const DegradationCell *Worst = nullptr;
  for (const DegradationCell &Cell : Cells)
    if (!Worst || Cell.degradation() > Worst->degradation())
      Worst = &Cell;
  return Worst;
}
