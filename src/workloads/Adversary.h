//===- workloads/Adversary.h - Adversarial workload generators ------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized adversarial workload generators. The statistical
/// trace::WorkloadModel inherits the paper's benign SPEC-derived behavior;
/// nothing there can produce the worst-case streams where granularity
/// choices actually diverge. Each generator here emits an ordinary
/// trace::Trace engineered against one aspect of the eviction machinery
/// (Eq. 2-4 costs, unit flush boundaries, back-pointer unlinking, phase
/// turnover, cross-tenant sharing, retranslation garbage), so the whole
/// simulator stack — replay, sweeps, one-pass lattices, the async service
/// — consumes them unchanged. DESIGN.md section 16 derives why each
/// pattern is worst-case for its target granularity.
///
/// Everything is deterministic: the same (spec, seed) pair always yields
/// the same trace, which is what lets the differential test harness and
/// the golden degradation pins replay exact streams.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_WORKLOADS_ADVERSARY_H
#define CCSIM_WORKLOADS_ADVERSARY_H

#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim::workloads {

/// The attack family a spec belongs to. Each kind interprets the shared
/// geometry knobs (Blocks, BlockBytes, Accesses) plus its own shape knobs.
enum class AdversaryKind : uint8_t {
  ConflictChain, ///< Cyclic FIFO conflict chain one unit over capacity.
  ThrashLoop,    ///< Hot loop near capacity under one-shot churn.
  LinkClique,    ///< Fully cross-linked cliques cycled over capacity.
  PhaseShift,    ///< Disjoint working sets with abrupt switches.
  TenantOverlap, ///< Interleaved tenants sharing a hot pool.
  SelfModifying, ///< Periodic retranslation strands dead versions.
};

/// Stable lower-case name of \p Kind ("conflict-chain", ...).
const char *adversaryKindName(AdversaryKind Kind);

/// Full description of one adversarial workload. A spec is a pure value:
/// validate() says whether it is generatable, tunedCapacityBytes() names
/// the cache size the pattern is engineered to defeat, and
/// generateAdversarial() turns it into a trace.
struct AdversarySpec {
  std::string Name;    ///< Catalog key; also the generated Trace::Name.
  std::string Summary; ///< One-line catalog/README description.
  AdversaryKind Kind = AdversaryKind::ConflictChain;

  // Shared geometry. Blocks is the base working-set size; its exact
  // meaning is per kind (chain length, hot-loop blocks, blocks per
  // tenant, logical blocks before versioning, ...). All superblocks are
  // uniform BlockBytes so the capacity math below is exact.
  uint32_t Blocks = 256;
  uint32_t BlockBytes = 256;
  uint64_t Accesses = 0; ///< 0 = derivedAccesses().

  /// The eviction granularity under attack; sizes the "one unit" excess
  /// of the chain/clique/phase patterns.
  uint32_t TargetUnits = 8;

  // ThrashLoop shape: the hot loop occupies HotFraction of the tuned
  // capacity, and every lap inserts ceil(Blocks * ChurnPerLap) one-shot
  // transient blocks that force continuous eviction.
  double HotFraction = 0.75;
  double ChurnPerLap = 0.25;

  uint32_t Phases = 8;     ///< PhaseShift: number of disjoint working sets.
  uint32_t CliqueSize = 8; ///< LinkClique: blocks per all-to-all clique.

  // TenantOverlap shape: Tenants round-robin streams, each over a private
  // set of (1 - OverlapFraction) * Blocks blocks plus a pool of
  // OverlapFraction * Blocks blocks shared by everyone.
  uint32_t Tenants = 3;
  double OverlapFraction = 0.5;

  // SelfModifying shape: every logical block is retranslated (fresh
  // superblock id) after RewriteInterval executions, up to Versions
  // generations; dead versions stay behind as cache garbage.
  uint32_t Versions = 8;
  uint32_t RewriteInterval = 64;

  AdversarySpec &withKind(AdversaryKind K) {
    Kind = K;
    return *this;
  }
  AdversarySpec &withBlocks(uint32_t N) {
    Blocks = N;
    return *this;
  }
  AdversarySpec &withBlockBytes(uint32_t B) {
    BlockBytes = B;
    return *this;
  }
  AdversarySpec &withAccesses(uint64_t A) {
    Accesses = A;
    return *this;
  }
  AdversarySpec &withTargetUnits(uint32_t U) {
    TargetUnits = U;
    return *this;
  }

  /// Empty when the spec is generatable, else a descriptive rejection
  /// (same contract as SimConfig::validate). Degenerate-but-legal shapes
  /// (single-block chains, one-member cliques, a single tenant, more
  /// phases than accesses) are accepted and must generate valid traces;
  /// impossible ones (zero blocks, zero-byte superblocks, overlap outside
  /// [0,1]) are rejected here, never mid-generation.
  std::string validate() const;

  /// The cache capacity this pattern is engineered to defeat, from the
  /// spec alone (no trace needed). Replaying at this explicit capacity —
  /// or at maxCache/capacity pressure — exhibits the worst case.
  uint64_t tunedCapacityBytes() const;

  /// Distinct superblocks in the recurring working set (transient
  /// one-shot churn blocks excluded): the footprint the capacity math is
  /// tuned against.
  uint64_t plannedBlocks() const;

  /// Stream length used when Accesses is 0: long enough to discover
  /// every planned block and cycle the cache tens of times.
  uint64_t derivedAccesses() const;
};

/// Generates the trace \p Spec describes. Requires Spec.validate() empty;
/// the result always passes Trace::validate() (every defined block is
/// accessed, even when an explicit Accesses truncates discovery).
Trace generateAdversarial(const AdversarySpec &Spec, uint64_t Seed);

/// Per-tenant decomposition of the TenantOverlap pattern, for the
/// cross-tenant sharing study: one trace per Spec.Tenants (named
/// "<Name>[t<I>]"), each streaming over its own copy of the working set.
/// Shared-pool blocks carry identical nonzero ContentTags across tenants
/// — the content a ShareCode run can fold to one resident copy — while
/// private blocks stay untagged and therefore content-unique (the
/// fallback key folds in the per-tenant trace name). Sweeping
/// Spec.OverlapFraction from 0 to 1 moves the shareable fraction of every
/// tenant's working set from nothing to everything. Requires
/// Kind == TenantOverlap and a valid spec.
std::vector<Trace> generateTenantOverlapSuite(const AdversarySpec &Spec,
                                              uint64_t Seed);

/// The named adversarial workloads: one tuned spec per AdversaryKind.
const std::vector<AdversarySpec> &adversarialCatalog();

/// Looks up a catalog spec by name; nullptr when absent.
const AdversarySpec *findAdversarial(const std::string &Name);

/// A copy of \p Spec with its working-set size scaled by \p Factor
/// (minimum 4 blocks). An explicit Accesses scales along; a derived one
/// (0) stays derived so the stream shrinks with the geometry.
AdversarySpec scaledAdversary(const AdversarySpec &Spec, double Factor);

} // namespace ccsim::workloads

#endif // CCSIM_WORKLOADS_ADVERSARY_H
