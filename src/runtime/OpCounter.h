//===- runtime/OpCounter.h - Instruction-count instrumentation -------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PAPI substitute (see DESIGN.md): deterministic instruction
/// accounting around every manager routine of the mini dynamic binary
/// translator. Each routine charges "host instructions" against a
/// category as it does its real work, using per-operation weights
/// calibrated to the paper's DynamoRIO 0.93 measurements (Section 4.3 and
/// 5.2). The counter also logs per-event samples — (bytes evicted,
/// instructions), (bytes regenerated, instructions), (links removed,
/// instructions) — which the Figure 9 bench fits with least squares to
/// re-derive Equations 2-4.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_RUNTIME_OPCOUNTER_H
#define CCSIM_RUNTIME_OPCOUNTER_H

#include <cstdint>
#include <vector>

namespace ccsim {

/// Host-instruction weights for the abstract operations the manager
/// routines perform. Calibrated so the fitted overhead equations land
/// near the paper's (Eq. 2: 2.77x + 3055; Eq. 3: 75.4x + 1922; Eq. 4:
/// 296.5x + 95.7) — the regression pipeline itself is what Figure 9
/// validates.
struct CostWeights {
  double InterpPerGuestInstr = 20.0; ///< Interpretation expansion factor.
  double CacheExecPerGuestInstr = 1.0; ///< Translated code is native.
  double DispatchBase = 145.0; ///< Context save/restore + hash lookup.
  double ProtectionChange = 1450.0; ///< One mprotect-style switch; two per
                                    ///< dispatcher round trip.
  double PerProbe = 4.0;       ///< Per hash-table probe.
  double IblLookup = 30.0;     ///< In-cache indirect-branch lookup hit.
  double TranslatePerByte = 72.6; ///< Decode + analyze + emit, per byte.
  double TranslateBase = 1780.0;  ///< Fragment alloc + table update.
  double BBTranslatePerByte = 29.0; ///< Basic-block translation is much
                                    ///< cheaper than trace formation.
  double BBTranslateBase = 430.0;
  double BBEvictPerByte = 1.1;   ///< Basic-block cache eviction.
  double BBEvictBase = 380.0;
  double EvictPerByte = 2.62;  ///< Scrub + free-list work, per byte.
  double EvictBase = 2980.0;   ///< Eviction invocation fixed cost.
  double UnlinkPerLink = 291.0; ///< Back-pointer walk + jump patch.
  double UnlinkBase = 90.0;     ///< Unlink routine entry.
  bool ProtectTranslator = true; ///< DynamoRIO-style self-protection:
                                 ///< memory protection toggles around
                                 ///< every dispatcher entry (the paper's
                                 ///< Table 2 explanation).
};

/// Accumulated host-instruction counts by category, plus the logged
/// regression samples.
struct OpCounter {
  double InterpOps = 0;
  double CacheExecOps = 0;
  double DispatchOps = 0;
  double ProtectionOps = 0;
  double IblOps = 0;
  double TranslateOps = 0;
  double EvictOps = 0;
  double UnlinkOps = 0;
  double BBTranslateOps = 0; ///< Basic-block cache tier (kept separate
                             ///< so the Figure 9 fits stay pure).
  double BBEvictOps = 0;

  /// Total host instructions across all categories.
  double total() const {
    return InterpOps + CacheExecOps + DispatchOps + ProtectionOps + IblOps +
           TranslateOps + EvictOps + UnlinkOps + BBTranslateOps +
           BBEvictOps;
  }

  /// Manager-only overhead (everything except guest work).
  double managementOverhead() const {
    return DispatchOps + ProtectionOps + IblOps + TranslateOps + EvictOps +
           UnlinkOps + BBTranslateOps + BBEvictOps;
  }

  /// One logged (x, instructions) measurement.
  struct Sample {
    double X = 0;
    double Ops = 0;
  };

  std::vector<Sample> EvictionSamples; ///< bytes evicted vs instructions.
  std::vector<Sample> MissSamples;     ///< bytes regenerated vs instrs.
  std::vector<Sample> UnlinkSamples;   ///< links removed vs instructions.
};

} // namespace ccsim

#endif // CCSIM_RUNTIME_OPCOUNTER_H
