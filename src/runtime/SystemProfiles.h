//===- runtime/SystemProfiles.h - Table 2 / Figure 9 run profiles ---------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guest-program profiles for the two mini-DBT experiments:
///
///   - Table 2: the 11 SPEC2000 benchmarks the paper ran under DynamoRIO
///     with chaining enabled/disabled. Each profile is a synthetic proxy
///     whose fragment lengths and cold-exit/indirect-branch density are
///     chosen to span the paper's slowdown range (447%..3357%). The
///     paper's reference slowdowns are attached for the comparison table.
///
///   - Figure 9: a code-rich program run against a deliberately small
///     cache so the eviction machinery fires thousands of times, giving
///     the regression study its (bytes, instructions) samples.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_RUNTIME_SYSTEMPROFILES_H
#define CCSIM_RUNTIME_SYSTEMPROFILES_H

#include "isa/ProgramGenerator.h"

#include <string>
#include <vector>

namespace ccsim {

/// One Table 2 row: a benchmark proxy plus the paper's measurements.
struct Table2Profile {
  std::string Name;
  double PaperLinkedSeconds;   ///< Table 2, "Linking Enabled".
  double PaperUnlinkedSeconds; ///< Table 2, "Linking Disabled".
  double PaperSlowdownPercent; ///< Table 2, "Slowdown".
  ProgramSpec Spec;
};

/// The 11 SPEC benchmarks of Table 2 (eon was not measured in the paper).
const std::vector<Table2Profile> &table2Profiles();

/// Guest instruction budget for one Table 2 proxy run.
uint64_t table2RunBudget();

/// Program spec for the Figure 9 eviction-overhead study: lots of code,
/// long runtime, run against a small cache.
ProgramSpec fig9ProgramSpec();

} // namespace ccsim

#endif // CCSIM_RUNTIME_SYSTEMPROFILES_H
