//===- runtime/DispatchTable.cpp - PC-to-fragment hash table ---------------===//

#include "runtime/DispatchTable.h"
#include "support/Contracts.h"


using namespace ccsim;

DispatchTable::DispatchTable() : Slots(64) {}

size_t DispatchTable::hashPC(uint32_t PC) {
  // Fibonacci hashing; PCs are byte offsets with low-bit structure.
  uint64_t H = PC;
  H *= 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>(H >> 32);
}

int32_t DispatchTable::lookup(uint32_t PC, unsigned &ProbesOut) const {
  const size_t Mask = Slots.size() - 1;
  size_t Index = hashPC(PC) & Mask;
  ProbesOut = 0;
  for (;;) {
    ++ProbesOut;
    const Slot &S = Slots[Index];
    if (S.State == SlotState::Empty)
      return NotFound;
    if (S.State == SlotState::Live && S.PC == PC)
      return S.Fragment;
    Index = (Index + 1) & Mask;
  }
}

unsigned DispatchTable::insert(uint32_t PC, int32_t FragmentIndex) {
  CCSIM_ASSERT(FragmentIndex >= 0, "fragment index must be non-negative");
  if ((Used + 1) * 10 >= Slots.size() * 7)
    grow();
  const size_t Mask = Slots.size() - 1;
  size_t Index = hashPC(PC) & Mask;
  unsigned Probes = 0;
  for (;;) {
    ++Probes;
    Slot &S = Slots[Index];
    if (S.State != SlotState::Live) {
      if (S.State == SlotState::Empty)
        ++Used;
      S.PC = PC;
      S.Fragment = FragmentIndex;
      S.State = SlotState::Live;
      ++Live;
      return Probes;
    }
    CCSIM_ASSERT(S.PC != PC, "PC already present in dispatch table");
    Index = (Index + 1) & Mask;
  }
}

unsigned DispatchTable::remove(uint32_t PC) {
  const size_t Mask = Slots.size() - 1;
  size_t Index = hashPC(PC) & Mask;
  unsigned Probes = 0;
  for (;;) {
    ++Probes;
    Slot &S = Slots[Index];
    CCSIM_ASSERT(S.State != SlotState::Empty,
                 "removing a PC that is not present");
    if (S.State == SlotState::Live && S.PC == PC) {
      S.State = SlotState::Tombstone;
      --Live;
      return Probes;
    }
    Index = (Index + 1) & Mask;
  }
}

void DispatchTable::grow() {
  std::vector<Slot> Old = std::move(Slots);
  Slots.assign(Old.size() * 2, Slot());
  Live = 0;
  Used = 0;
  for (const Slot &S : Old)
    if (S.State == SlotState::Live)
      insert(S.PC, S.Fragment);
}

bool DispatchTable::checkInvariants() const {
  size_t CountedLive = 0, CountedUsed = 0;
  for (const Slot &S : Slots) {
    if (S.State != SlotState::Empty)
      ++CountedUsed;
    if (S.State != SlotState::Live)
      continue;
    ++CountedLive;
    unsigned Probes = 0;
    if (lookup(S.PC, Probes) != S.Fragment)
      return false;
  }
  return CountedLive == Live && CountedUsed == Used;
}
