//===- runtime/Translator.h - Mini dynamic binary translator --------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DynamoRIO substitute: a complete (miniature) dynamic binary
/// translator over the synthetic guest ISA, implementing the full control
/// loop of the paper's Figure 1:
///
///   interpret cold code -> profile block heads -> at the hotness
///   threshold (50, as in DynamoRIO) record a superblock along the actual
///   execution path (NET-style) -> place it in a bounded code cache ->
///   execute from the cache, chaining fragments with direct links and an
///   indirect-branch lookup -> evict at the configured granularity when
///   the cache fills.
///
/// Every manager routine charges instrumented host instructions through
/// OpCounter (the PAPI substitute), producing the Figure 9 regression
/// samples and the Table 2 chaining-on/off slowdowns.
///
/// Both tiers run on the shared CacheEngine (core/CacheEngine.h): the
/// engine owns placement, quantum-driven eviction, link repair, and
/// telemetry/audit hooks, while the translator's payload callbacks tear
/// down Fragment slots and DispatchTable entries per victim and charge
/// the instrumented (jittered) Eq. 2/Eq. 4 costs. Fragment ids are dense
/// and stable per entry PC, so the engine's CodeCache and LinkGraph are
/// reused unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_RUNTIME_TRANSLATOR_H
#define CCSIM_RUNTIME_TRANSLATOR_H

#include "core/CacheEngine.h"
#include "isa/Program.h"
#include "runtime/DispatchTable.h"
#include "trace/Trace.h"
#include "runtime/GuestState.h"
#include "runtime/OpCounter.h"
#include "support/Random.h"

#include <span>
#include <vector>

namespace ccsim {

/// One translated superblock: the recorded hot path plus exit metadata.
struct Fragment {
  SuperblockId Id = InvalidSuperblockId;
  uint32_t EntryPC = 0;
  uint32_t CodeBytes = 0; ///< Translated size (guest bytes + exit stubs).
  std::vector<Instruction> Code; ///< Recorded path.
  std::vector<uint32_t> PCs;     ///< Guest PC of each recorded instruction.
  std::vector<SuperblockId> StaticEdges; ///< Direct exit targets (ids).
  uint64_t Executions = 0;
  bool IsBasicBlock = false; ///< Tier-0 (basic-block cache) fragment.
  uint32_t IndirectInlineTag = 0; ///< Exit-stub inline cache: the last
                                  ///< indirect target (+1; 0 = empty).
};

/// Translator configuration.
struct TranslatorConfig {
  uint64_t CacheBytes = 1 << 20;
  GranularitySpec Policy = GranularitySpec::fine(); ///< DynamoRIO default.
  bool EnableChaining = true;
  uint32_t HotThreshold = 50;          ///< Paper, Section 4.1.
  uint32_t MaxFragmentGuestInstrs = 128;
  uint32_t StubBytesPerExit = 11;      ///< Exit stub size added per exit.
  CostWeights Weights;
  size_t GuestMemoryBytes = 1 << 17;
  uint64_t Seed = 7;                   ///< Measurement jitter stream.
  bool RecordTrace = false; ///< Log every fragment entry so the run can
                            ///< be exported as a superblock trace -- the
                            ///< paper's "verbose output from DynamoRIO
                            ///< [driving] the code cache simulator".
  bool UseBasicBlockCache = false; ///< DynamoRIO's two-tier design
                                   ///< (Section 2.2): cold code runs from
                                   ///< a basic-block cache instead of the
                                   ///< interpreter; blocks are promoted
                                   ///< to superblocks at HotThreshold.
  uint64_t BBCacheBytes = 1 << 19; ///< Basic-block cache capacity.
  telemetry::TelemetrySink *Telemetry = nullptr; ///< Shared by both tier
                                                 ///< engines; null = off.
};

/// Aggregate statistics of one translated run.
struct TranslatorStats {
  uint64_t GuestInstructions = 0;       ///< Total retired guest instrs.
  uint64_t InterpretedInstructions = 0; ///< ... of which interpreted.
  uint64_t CacheInstructions = 0;       ///< ... of which from the cache.
  uint64_t Dispatches = 0;          ///< Dispatcher entries.
  uint64_t LinkedTransfers = 0;     ///< Fragment-to-fragment direct jumps.
  uint64_t IndirectTransfers = 0;   ///< In-cache IBL hits.
  uint64_t IblMisses = 0;           ///< IBL conflict/cold misses.
  uint64_t FragmentsBuilt = 0;      ///< Superblocks translated.
  uint64_t EvictionInvocations = 0;
  uint64_t EvictedFragments = 0;
  uint64_t EvictedBytes = 0;
  uint64_t UnlinkedLinks = 0;
  uint64_t BBInstructions = 0;      ///< Guest instrs run from the BB cache.
  uint64_t BBFragmentsBuilt = 0;    ///< Basic blocks translated.
  uint64_t BBEvictionInvocations = 0;
  uint64_t BBEvictedFragments = 0;
  uint64_t BBLinkedTransfers = 0;   ///< Transfers landing in the BB cache.
  OpCounter Ops;
  CacheStats ChainStats; ///< Link creation counters (LinkGraph).
};

/// The mini-DBT.
class Translator {
public:
  Translator(const Program &P, const TranslatorConfig &Config);

  /// Runs until the guest halts or \p MaxGuestInstructions retire.
  /// Returns the accumulated statistics (also available via stats()).
  const TranslatorStats &run(uint64_t MaxGuestInstructions);

  const TranslatorStats &stats() const { return Stats; }
  const GuestState &guestState() const { return State; }
  const TranslatorConfig &config() const { return Config; }
  const CodeCache &cache() const { return Engine.cache(); }
  const CodeCache &basicBlockCache() const { return BBEngine.cache(); }
  const LinkGraph &links() const { return Engine.links(); }
  const DispatchTable &dispatchTable() const { return Table; }
  const DispatchTable &basicBlockDispatchTable() const { return BBTable; }

  /// The cache engines behind the two tiers. Auditors arm their hooks
  /// here (check::armAuditor); the engines' CacheStats carry the
  /// conservation counters the structural rules verify.
  CacheEngine &engine() { return Engine; }
  const CacheEngine &engine() const { return Engine; }
  CacheEngine &basicBlockEngine() { return BBEngine; }
  const CacheEngine &basicBlockEngine() const { return BBEngine; }

  /// Number of distinct superblock entry PCs seen (== id universe size).
  size_t numKnownEntryPCs() const { return PCById.size(); }

  /// Entry PC of fragment id \p Id (audit introspection).
  uint32_t entryPCOf(SuperblockId Id) const { return PCById[Id]; }

  /// Fragment id stored at dispatch-table slot \p Slot (audit
  /// introspection; pairs with DispatchTable::forEachLive).
  SuperblockId fragmentIdAtSlot(int32_t Slot) const {
    return Fragments[static_cast<size_t>(Slot)].Id;
  }

  /// Exports the recorded run as a superblock trace (requires
  /// Config.RecordTrace). Ids are re-densified over the fragments that
  /// were actually built; static edges to never-built targets are
  /// dropped. The result passes Trace::validate() and can drive the
  /// trace simulator directly.
  Trace exportTrace() const;

  /// Cross-checks cache/table/link invariants (tests). Structure checks
  /// now live in the engines; what remains here is the dispatch-table
  /// consistency the check library also audits rule-by-rule
  /// (check::checkDispatchTable).
  bool checkInvariants() const;

private:
  const Program &Prog;
  TranslatorConfig Config;
  GuestState State;
  TranslatorStats Stats;
  CacheEngine Engine;   ///< Superblock-tier cache engine.
  CacheEngine BBEngine; ///< Basic-block-tier cache engine (may be unused).
  DispatchTable Table;
  DispatchTable BBTable;
  Rng Jitter;

  std::vector<Fragment> Fragments;   ///< Slot pool, indexed by table value.
  std::vector<int32_t> FreeSlots;
  std::vector<int32_t> SlotById;     ///< Superblock slot per id (-1 none).
  std::vector<int32_t> BBSlotById;   ///< BB-cache slot per id (-1 none).
  std::vector<uint32_t> PCById;      ///< Entry PC per id.
  std::vector<int32_t> IdLookup;     ///< Dense PC -> id map (-1 = none).
  std::vector<uint32_t> HotCounter;  ///< Per-PC execution counts (dense).

  uint64_t Budget = 0;     ///< Remaining guest instructions.
  uint32_t DispatchPC = 0; ///< PC at the current dispatcher entry.

  // Trace recording state (Config.RecordTrace).
  std::vector<SuperblockId> RecordedAccesses;
  std::vector<uint32_t> FirstBuildSize;   ///< By id; 0 = never built.
  std::vector<std::vector<SuperblockId>> FirstBuildEdges; ///< By id.

  /// Dense, stable fragment id for a guest entry PC.
  SuperblockId idForPC(uint32_t PC);

  /// Pops a free fragment slot, growing the pool if none is free.
  int32_t allocateSlot();

  /// Shared eviction teardown for both tiers: per victim, removes the
  /// \p InTable entry (accumulating hash-probe cost into \p ProbeOps),
  /// clears the fragment, and recycles its slot through \p SlotMap.
  /// Returns the total victim bytes for the caller's cost charge.
  uint64_t dropVictims(std::span<const CodeCache::Resident> Victims,
                       DispatchTable &InTable, std::vector<int32_t> &SlotMap,
                       double &ProbeOps);

  /// Accounts one guest instruction executed while recording a fragment
  /// (recording runs at interpreter speed).
  void chargeRecordedInstruction();

  /// Adds measurement jitter of a few percent (models run-to-run PAPI
  /// variation) deterministically.
  double jittered(double Ops);

  /// Interprets through the end of the basic block at State.PC.
  void interpretBlock();

  /// Records + executes a superblock starting at State.PC and installs
  /// it in the cache (unless it is larger than the whole cache, in which
  /// case it already executed once during recording and is dropped).
  void buildAndInstallFragment();

  /// Records + executes one basic block starting at State.PC and places
  /// it in the basic-block cache (two-tier mode only).
  void buildAndInstallBasicBlock();

  /// Executes \p Slot from the cache. Returns the slot of the next
  /// fragment when control can stay inside the cache (linked transfer or
  /// IBL hit), or NotFound when it must return to the dispatcher.
  int32_t executeFragment(int32_t Slot);

  /// Slot of the resident fragment whose entry is \p TargetPC, checking
  /// the superblock tier first and then (in two-tier mode) the BB tier.
  /// \p InBBTier reports which tier matched. NotFound when neither did.
  int32_t residentSlotFor(uint32_t TargetPC, bool &InBBTier) const;

  /// Follows a direct exit to \p TargetPC: the slot of the resident
  /// target fragment (a patched link) or NotFound.
  int32_t resolveDirectExit(uint32_t TargetPC);

  /// Installs \p Frag through the superblock-tier engine. May evict.
  void installFragment(Fragment &&Frag);

  /// Superblock-tier eviction payload: drops table entries, recycles
  /// slots, and charges the measured Eq. 2 cost.
  void onSuperblockEvict(std::span<const CodeCache::Resident> Victims);

  /// Superblock-tier unlink payload: charges the measured Eq. 4 cost per
  /// victim with dangling incoming links.
  void onSuperblockUnlink(std::span<const CodeCache::Resident> Victims,
                          std::span<const uint32_t> Dangling);

  /// BB-tier eviction payload (table removal + cost).
  void onBasicBlockEvict(std::span<const CodeCache::Resident> Victims);

  /// Pulls the engine-side counters into TranslatorStats (end of run()).
  void syncEngineStats();

  void chargeDispatch(unsigned Probes);
};

} // namespace ccsim

#endif // CCSIM_RUNTIME_TRANSLATOR_H
