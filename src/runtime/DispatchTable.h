//===- runtime/DispatchTable.h - PC-to-fragment hash table -----------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash table of Figure 1: maps original guest PCs to fragments in
/// the code cache. Open addressing with linear probing and tombstone
/// deletion; probe counts are reported so the instrumentation charges
/// realistic, input-dependent lookup costs.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_RUNTIME_DISPATCHTABLE_H
#define CCSIM_RUNTIME_DISPATCHTABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccsim {

/// Open-addressing map from guest PC to a fragment index.
class DispatchTable {
public:
  static constexpr int32_t NotFound = -1;

  DispatchTable();

  /// Looks up \p PC. Returns the fragment index or NotFound. \p ProbesOut
  /// receives the number of slots inspected.
  int32_t lookup(uint32_t PC, unsigned &ProbesOut) const;

  /// Inserts \p PC -> \p FragmentIndex (PC must not be present).
  /// Returns the number of slots inspected.
  unsigned insert(uint32_t PC, int32_t FragmentIndex);

  /// Removes \p PC (must be present). Returns slots inspected.
  unsigned remove(uint32_t PC);

  size_t size() const { return Live; }

  /// Visits every live entry as (PC, FragmentIndex), in slot order.
  /// Audit introspection; the table must not be mutated during the walk.
  template <typename Fn> void forEachLive(Fn &&Visit) const {
    for (const Slot &S : Slots)
      if (S.State == SlotState::Live)
        Visit(S.PC, S.Fragment);
  }

  /// Structural check for tests: every live entry is findable and counts
  /// match.
  bool checkInvariants() const;

private:
  enum class SlotState : uint8_t { Empty, Live, Tombstone };

  struct Slot {
    uint32_t PC = 0;
    int32_t Fragment = NotFound;
    SlotState State = SlotState::Empty;
  };

  std::vector<Slot> Slots;
  size_t Live = 0;
  size_t Used = 0; // Live + tombstones.

  static size_t hashPC(uint32_t PC);
  void grow();
};

} // namespace ccsim

#endif // CCSIM_RUNTIME_DISPATCHTABLE_H
