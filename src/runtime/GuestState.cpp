//===- runtime/GuestState.cpp - Guest architectural state ------------------===//

#include "runtime/GuestState.h"

using namespace ccsim;

uint64_t GuestState::digest() const {
  uint64_t Hash = 1469598103934665603ULL; // FNV-1a offset basis.
  auto Mix = [&Hash](uint64_t Value) {
    for (unsigned I = 0; I < 8; ++I) {
      Hash ^= (Value >> (8 * I)) & 0xff;
      Hash *= 1099511628211ULL;
    }
  };
  for (unsigned Reg = 0; Reg < NumRegisters; ++Reg)
    Mix(reg(Reg));
  for (uint8_t Byte : Memory) {
    Hash ^= Byte;
    Hash *= 1099511628211ULL;
  }
  Mix(PC);
  Mix(Halted ? 1 : 0);
  for (uint32_t Return : CallStack)
    Mix(Return);
  return Hash;
}

uint32_t ccsim::executeInstruction(const Instruction &Inst, uint32_t PC,
                                   GuestState &State) {
  const uint32_t NextPC = PC + Inst.Size;
  switch (Inst.Op) {
  case Opcode::Nop:
    return NextPC;
  case Opcode::Halt:
    State.Halted = true;
    return PC;
  case Opcode::Add:
    State.setReg(Inst.Rd, State.reg(Inst.Rs1) + State.reg(Inst.Rs2));
    return NextPC;
  case Opcode::Sub:
    State.setReg(Inst.Rd, State.reg(Inst.Rs1) - State.reg(Inst.Rs2));
    return NextPC;
  case Opcode::Mul:
    State.setReg(Inst.Rd, State.reg(Inst.Rs1) * State.reg(Inst.Rs2));
    return NextPC;
  case Opcode::Xor:
    State.setReg(Inst.Rd, State.reg(Inst.Rs1) ^ State.reg(Inst.Rs2));
    return NextPC;
  case Opcode::And:
    State.setReg(Inst.Rd, State.reg(Inst.Rs1) & State.reg(Inst.Rs2));
    return NextPC;
  case Opcode::Or:
    State.setReg(Inst.Rd, State.reg(Inst.Rs1) | State.reg(Inst.Rs2));
    return NextPC;
  case Opcode::Shl:
    State.setReg(Inst.Rd,
                 State.reg(Inst.Rs1) << (State.reg(Inst.Rs2) & 63));
    return NextPC;
  case Opcode::Shr:
    State.setReg(Inst.Rd,
                 State.reg(Inst.Rs1) >> (State.reg(Inst.Rs2) & 63));
    return NextPC;
  case Opcode::Addi:
    State.setReg(Inst.Rd,
                 State.reg(Inst.Rs1) + static_cast<int64_t>(Inst.Imm));
    return NextPC;
  case Opcode::Movi:
    State.setReg(Inst.Rd, static_cast<int64_t>(Inst.Imm));
    return NextPC;
  case Opcode::Ld:
    State.setReg(Inst.Rd, State.load64(State.reg(Inst.Rs1) +
                                       static_cast<int64_t>(Inst.Imm)));
    return NextPC;
  case Opcode::St:
    State.store64(State.reg(Inst.Rs1) + static_cast<int64_t>(Inst.Imm),
                  State.reg(Inst.Rs2));
    return NextPC;
  case Opcode::Beqz:
    return State.reg(Inst.Rs1) == 0 ? Inst.Target : NextPC;
  case Opcode::Bnez:
    return State.reg(Inst.Rs1) != 0 ? Inst.Target : NextPC;
  case Opcode::Blt:
    return static_cast<int64_t>(State.reg(Inst.Rs1)) <
                   static_cast<int64_t>(State.reg(Inst.Rs2))
               ? Inst.Target
               : NextPC;
  case Opcode::Jmp:
    return Inst.Target;
  case Opcode::Jr:
    return static_cast<uint32_t>(State.reg(Inst.Rs1));
  case Opcode::Call:
    State.CallStack.push_back(NextPC);
    return Inst.Target;
  case Opcode::Ret:
    if (State.CallStack.empty()) {
      // Returning from the outermost frame terminates the program.
      State.Halted = true;
      return PC;
    } else {
      const uint32_t Return = State.CallStack.back();
      State.CallStack.pop_back();
      return Return;
    }
  }
  State.Halted = true; // Unreachable with valid decode.
  return PC;
}
