//===- runtime/Interpreter.cpp - Reference guest interpreter ---------------===//

#include "runtime/Interpreter.h"

using namespace ccsim;

bool Interpreter::step() {
  if (State.Halted)
    return false;
  Instruction Inst;
  if (!Prog.decodeAt(State.PC, Inst)) {
    // Running off the image or into a malformed byte halts the guest.
    State.Halted = true;
    return false;
  }
  State.PC = executeInstruction(Inst, State.PC, State);
  ++Executed;
  return !State.Halted;
}

uint64_t Interpreter::run(uint64_t MaxSteps) {
  const uint64_t Before = Executed;
  while (!State.Halted && Executed - Before < MaxSteps)
    if (!step())
      break;
  return Executed - Before;
}

uint64_t Interpreter::stepBlock() {
  const uint64_t Before = Executed;
  while (!State.Halted) {
    Instruction Inst;
    if (!Prog.decodeAt(State.PC, Inst)) {
      State.Halted = true;
      break;
    }
    const bool EndOfBlock = Inst.isControlFlow();
    State.PC = executeInstruction(Inst, State.PC, State);
    ++Executed;
    if (EndOfBlock)
      break;
  }
  return Executed - Before;
}
