//===- runtime/SystemProfiles.cpp - Table 2 / Figure 9 run profiles -------===//

#include "runtime/SystemProfiles.h"

using namespace ccsim;

namespace {

/// Builds one proxy spec. The two knobs that set the chaining-off
/// slowdown are the fragment length (ALU ops per block: longer fragments
/// amortize the dispatch cost when chaining is off) and the density of
/// persistent unlinked exits when chaining is on (rare branches and
/// call/return traffic: the higher it is, the less chaining saves).
ProgramSpec proxy(uint32_t Functions, uint32_t BlocksLo, uint32_t BlocksHi,
                  uint32_t Inner, uint32_t AluLo, uint32_t AluHi,
                  double Calls, uint32_t TopCalls, uint32_t Shared,
                  uint64_t Seed, uint32_t PolySites = 0,
                  uint32_t PolyPeriod = 0) {
  ProgramSpec S;
  S.NumFunctions = Functions;
  S.MinBlocksPerFunction = BlocksLo;
  S.MaxBlocksPerFunction = BlocksHi;
  S.MinAluPerBlock = AluLo;
  S.MaxAluPerBlock = AluHi;
  S.OuterIterations = 2500;
  S.InnerIterations = Inner;
  S.TopLevelCalls = TopCalls;
  S.MeanCallsPerFunction = Calls;
  S.SharedCalleeCount = Shared;
  S.PolyTopSites = PolySites;
  S.PolyPeriodLog2 = PolyPeriod;
  S.RareBranchProb = 0.05;
  S.RareMaskBits = 7;
  S.Seed = Seed;
  return S;
}

std::vector<Table2Profile> buildTable2() {
  std::vector<Table2Profile> Rows;
  // Reference numbers are Table 2 of the paper (dual-Xeon 2.4 GHz).
  // Larger rare-exit density / call traffic -> smaller chaining benefit.
  //                         fn  blocks  in  alu    calls top shared seed
  Rows.push_back({"gzip", 230, 7951, 3357,
                  proxy(18, 3, 4, 8, 9, 14, 0.20, 2, 0, 101)});
  Rows.push_back({"vpr", 333, 2474, 643,
                  proxy(22, 3, 6, 5, 6, 11, 0.85, 8, 2, 102)});
  Rows.push_back({"gcc", 206, 3284, 1494,
                  proxy(56, 4, 9, 8, 8, 16, 0.55, 3, 0, 103, 2, 0)});
  Rows.push_back({"mcf", 368, 2014, 447,
                  proxy(14, 3, 5, 3, 3, 6, 0.90, 12, 2, 104)});
  Rows.push_back({"crafty", 215, 3547, 1550,
                  proxy(30, 4, 9, 8, 8, 16, 0.50, 3, 0, 105, 2, 3)});
  Rows.push_back({"parser", 350, 6795, 1841,
                  proxy(34, 4, 9, 8, 9, 18, 0.45, 4, 0, 106)});
  Rows.push_back({"perlbmk", 336, 6945, 1967,
                  proxy(36, 4, 9, 8, 9, 16, 0.45, 3, 2, 107)});
  Rows.push_back({"gap", 195, 4231, 2070,
                  proxy(26, 4, 9, 8, 9, 16, 0.40, 3, 0, 108, 2, 3)});
  Rows.push_back({"vortex", 382, 4655, 1119,
                  proxy(40, 4, 8, 6, 6, 12, 0.60, 4, 0, 109, 4, 0)});
  Rows.push_back({"bzip2", 287, 4294, 1396,
                  proxy(16, 4, 9, 8, 7, 14, 0.50, 3, 0, 110, 2, 1)});
  Rows.push_back({"twolf", 658, 6490, 886,
                  proxy(24, 3, 7, 6, 8, 14, 0.80, 2, 0, 111, 5, 0)});
  return Rows;
}

} // namespace

const std::vector<Table2Profile> &ccsim::table2Profiles() {
  static const std::vector<Table2Profile> Rows = buildTable2();
  return Rows;
}

uint64_t ccsim::table2RunBudget() { return 12000000; }

ProgramSpec ccsim::fig9ProgramSpec() {
  // Code-rich and long-running: with a small cache this produces tens of
  // thousands of evictions to sample.
  ProgramSpec S;
  S.NumFunctions = 72;
  S.MinBlocksPerFunction = 5;
  S.MaxBlocksPerFunction = 12;
  S.MinAluPerBlock = 5;
  S.MaxAluPerBlock = 18;
  S.OuterIterations = 4000;
  S.InnerIterations = 6;
  S.TopLevelCalls = 24; // Reach most of the call graph from main.
  S.MeanCallsPerFunction = 0.6;
  S.RareBranchProb = 0.10;
  S.RareMaskBits = 6;
  S.Seed = 90210;
  return S;
}
