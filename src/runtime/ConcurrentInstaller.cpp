//===- runtime/ConcurrentInstaller.cpp - Concurrent translate/install -----===//

#include "runtime/ConcurrentInstaller.h"

#include "support/Contracts.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace ccsim;

namespace {

/// splitmix64: the per-thread operation streams and the per-fragment
/// sizes both come out of this fixed mixer, so a (Seed, Threads,
/// Operations) triple names one exact workload on every platform.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

struct ThreadTally {
  uint64_t Finds = 0;
  uint64_t Misses = 0;
  uint64_t Installs = 0;
  uint64_t InstallRaces = 0;
  uint64_t TooBig = 0;
};

} // namespace

InstallerReport ccsim::runConcurrentInstall(const InstallerConfig &Config) {
  CCSIM_REQUIRE(Config.Threads >= 1, "at least one installer thread");
  CCSIM_REQUIRE(Config.WorkingSet >= 1, "empty fragment working set");

  // Deterministic per-fragment sizes in [Mean/2, Mean*3/2), never zero.
  const uint32_t Mean = std::max<uint32_t>(2, Config.MeanFragmentBytes);
  std::vector<uint32_t> Sizes(Config.WorkingSet);
  for (uint32_t Id = 0; Id < Config.WorkingSet; ++Id)
    Sizes[Id] = Mean / 2 + static_cast<uint32_t>(
                               mix64(Config.Seed ^ (Id + 1)) % Mean);

  std::unique_ptr<EvictionPolicy> Policy = makePolicy(Config.Granularity);
  const ShareMode Mode =
      SharedCacheEngine::preferredMode(Config.Threads, *Policy);

  // Dispatch table shared by every installer, guarded by its own lock.
  // Mutating hooks run with engine locks already held (EngineMu ->
  // fences -> DispatchMu); probing threads take DispatchMu alone.
  ccsim::Mutex DispatchMu;
  DispatchTable Dispatch;

  SharedEngineConfig SC;
  SC.Engine.CapacityBytes = Config.CapacityBytes;
  SC.Engine.EnableChaining = Config.EnableChaining;
  SC.Engine.Telemetry = Config.Telemetry;
  SC.Shards = Config.Shards;
  SC.Fences = Config.Fences;
  SC.OnInstallPayload = [&](const SuperblockRecord &Rec) {
    MutexLock Lock(DispatchMu);
    Dispatch.insert(Rec.Id, static_cast<int32_t>(Rec.Id));
  };
  SC.Engine.OnEvictPayload = [&](std::span<const CodeCache::Resident> Victims) {
    MutexLock Lock(DispatchMu);
    for (const CodeCache::Resident &V : Victims)
      Dispatch.remove(V.Id);
  };

  SharedCacheEngine Engine(SC, std::move(Policy), Mode);

  std::vector<ThreadTally> Tallies(Config.Threads);
  auto Installer = [&](unsigned Tid) {
    ThreadTally &T = Tallies[Tid];
    uint64_t Rng = mix64(Config.Seed + 0x1000 + Tid);
    const uint64_t Ops = Config.Operations / Config.Threads +
                         (Tid == 0 ? Config.Operations % Config.Threads : 0);
    for (uint64_t Op = 0; Op < Ops; ++Op) {
      Rng = mix64(Rng);
      const SuperblockId Id =
          static_cast<SuperblockId>(Rng % Config.WorkingSet);
      if (Engine.probe(Id)) {
        ++T.Finds;
        continue;
      }
      ++T.Misses;
      SuperblockRecord Rec;
      Rec.Id = Id;
      Rec.SizeBytes = Sizes[Id];
      if (Engine.install(Rec)) {
        ++T.Installs;
      } else if (Engine.probe(Id)) {
        ++T.InstallRaces; // Another guest translated it first.
      } else {
        ++T.TooBig;
      }
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned Tid = 0; Tid < Config.Threads; ++Tid)
    Threads.emplace_back(Installer, Tid);
  for (std::thread &T : Threads)
    T.join();

  InstallerReport Report;
  for (const ThreadTally &T : Tallies) {
    Report.Finds += T.Finds;
    Report.Misses += T.Misses;
    Report.Installs += T.Installs;
    Report.InstallRaces += T.InstallRaces;
    Report.TooBig += T.TooBig;
  }

  // Final quiesce: the dispatch table must mirror residency exactly --
  // the concurrent analogue of the dispatch.* audit family -- then the
  // caller's hook (typically the full structural audit) runs over the
  // same locked state.
  Engine.quiesce([&](const SharedCacheEngine &E) {
    const CacheEngine &Inner = E.engineForAudit();
    bool Ok = true;
    uint64_t ResidentCount = 0;
    MutexLock Lock(DispatchMu);
    Report.DispatchEntries = Dispatch.size();
    Dispatch.forEachLive([&](uint32_t PC, int32_t Fragment) {
      if (static_cast<uint32_t>(Fragment) != PC ||
          !Inner.cache().contains(PC))
        Ok = false;
    });
    for (uint32_t Id = 0; Id < Config.WorkingSet; ++Id) {
      if (!Inner.cache().contains(Id))
        continue;
      ++ResidentCount;
      unsigned Probes = 0;
      if (Dispatch.lookup(Id, Probes) == DispatchTable::NotFound)
        Ok = false;
    }
    Report.DispatchConsistent = Ok && Report.DispatchEntries == ResidentCount;
    if (Config.OnFinalQuiesce)
      Config.OnFinalQuiesce(E);
  });

  Report.Stats = Engine.stats();
  Report.Contention = Engine.contention();
  return Report;
}
