//===- runtime/GuestState.h - Guest architectural state --------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest machine state shared by the interpreter and the code cache
/// executor: 16 GPRs (r0 hardwired to zero), a PC, byte-addressable data
/// memory (power-of-two size, accesses wrap), a return-address stack for
/// CALL/RET, and a halt flag. Keeping the state identical between the two
/// execution engines lets tests assert that translated execution is
/// bit-equal to pure interpretation.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_RUNTIME_GUESTSTATE_H
#define CCSIM_RUNTIME_GUESTSTATE_H

#include "isa/Isa.h"
#include "support/Contracts.h"

#include <cstdint>
#include <vector>

namespace ccsim {

/// Architectural state of a running guest program.
class GuestState {
public:
  /// \p MemoryBytes must be a power of two (>= 8).
  explicit GuestState(size_t MemoryBytes = 1 << 16)
      : Memory(MemoryBytes, 0) {
    CCSIM_ASSERT(MemoryBytes >= 8 && (MemoryBytes & (MemoryBytes - 1)) == 0,
                 "guest memory must be a power-of-two size");
  }

  uint64_t reg(unsigned Index) const {
    CCSIM_ASSERT(Index < NumRegisters, "register index out of range");
    return Index == 0 ? 0 : Regs[Index];
  }

  void setReg(unsigned Index, uint64_t Value) {
    CCSIM_ASSERT(Index < NumRegisters, "register index out of range");
    if (Index != 0)
      Regs[Index] = Value;
  }

  /// 64-bit little-endian load; the address wraps modulo memory size.
  uint64_t load64(uint64_t Address) const {
    const size_t Mask = Memory.size() - 1;
    uint64_t Value = 0;
    for (unsigned I = 0; I < 8; ++I)
      Value |= static_cast<uint64_t>(Memory[(Address + I) & Mask])
               << (8 * I);
    return Value;
  }

  void store64(uint64_t Address, uint64_t Value) {
    const size_t Mask = Memory.size() - 1;
    for (unsigned I = 0; I < 8; ++I)
      Memory[(Address + I) & Mask] = static_cast<uint8_t>(Value >> (8 * I));
  }

  /// FNV-1a digest of registers and memory, for state-equality tests.
  uint64_t digest() const;

  uint32_t PC = 0;
  bool Halted = false;
  std::vector<uint32_t> CallStack;

private:
  uint64_t Regs[NumRegisters] = {0};
  std::vector<uint8_t> Memory;
};

/// Executes one decoded instruction at \p PC against \p State and returns
/// the next PC. Updates the call stack for Call/Ret and sets
/// State.Halted for Halt (and for Ret on an empty stack, which is defined
/// as normal termination).
uint32_t executeInstruction(const Instruction &Inst, uint32_t PC,
                            GuestState &State);

} // namespace ccsim

#endif // CCSIM_RUNTIME_GUESTSTATE_H
