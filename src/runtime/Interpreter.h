//===- runtime/Interpreter.h - Reference guest interpreter -----------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference interpreter: executes a guest program instruction by
/// instruction. The dynamic translator uses it for cold code (below the
/// hotness threshold); tests use it as the golden model that translated
/// execution must match exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_RUNTIME_INTERPRETER_H
#define CCSIM_RUNTIME_INTERPRETER_H

#include "isa/Program.h"
#include "runtime/GuestState.h"

namespace ccsim {

/// Instruction-at-a-time guest execution.
class Interpreter {
public:
  Interpreter(const Program &P, GuestState &State)
      : Prog(P), State(State) {
    State.PC = P.EntryPC;
  }

  /// Executes one instruction. Returns false once halted (including on a
  /// decode failure, which halts the guest).
  bool step();

  /// Runs until halt or until \p MaxSteps instructions have executed.
  /// Returns the number of instructions executed.
  uint64_t run(uint64_t MaxSteps);

  /// Executes through the end of the current basic block: instructions
  /// are executed until one with control flow (inclusive) retires.
  /// Returns the number of instructions executed.
  uint64_t stepBlock();

  uint64_t instructionCount() const { return Executed; }
  const GuestState &state() const { return State; }

private:
  const Program &Prog;
  GuestState &State;
  uint64_t Executed = 0;
};

} // namespace ccsim

#endif // CCSIM_RUNTIME_INTERPRETER_H
