//===- runtime/ConcurrentInstaller.h - Concurrent translate/install -------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-driven half of the thread-shared engine: K installer
/// threads model guest threads of one process hitting a shared code
/// cache through Figure 1's dispatch table. Each thread runs a
/// find/translate-and-install loop over a shared working set of
/// fragments:
///
///   find     SharedCacheEngine::probe() -- the concurrent fast path, no
///            engine lock;
///   install  SharedCacheEngine::install() on a probe miss -- fragment
///            payload (its dispatch entry) registered by the
///            OnInstallPayload hook under the engine lock, victim
///            entries torn down by the eviction payload hook under the
///            victims' region fences, exactly the lockstep contract the
///            dispatch.* audit family checks for the serial Translator.
///
/// Two threads can race to install the same fragment; the loser's
/// install() observes residency under the engine lock and counts an
/// install race instead of double-inserting, like DynamoRIO's
/// "duplicate translation" check at the monitor lock.
///
/// The dispatch table itself is guarded by one ccsim::Mutex acquired
/// after the engine locks (hooks) or alone (probing threads), so the
/// lock order EngineMu -> fences -> DispatchMu is acyclic.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_RUNTIME_CONCURRENTINSTALLER_H
#define CCSIM_RUNTIME_CONCURRENTINSTALLER_H

#include "core/EvictionPolicy.h"
#include "core/SharedCacheEngine.h"
#include "runtime/DispatchTable.h"
#include "support/ThreadSafety.h"

#include <cstdint>
#include <functional>

namespace ccsim {

/// Configuration of one concurrent install stress run. Deterministic
/// given a seed: every thread derives its operation stream from
/// Seed + thread index with a fixed mixer, never from global state.
struct InstallerConfig {
  /// Shared code cache capacity in bytes.
  uint64_t CapacityBytes = 1 << 20;

  /// Installer (guest) threads.
  unsigned Threads = 4;

  /// Total find/install operations across all threads.
  uint64_t Operations = 1000000;

  /// Distinct fragments in the working set; sizes are derived
  /// per-fragment from the seed so the set does not fit the cache.
  uint32_t WorkingSet = 4096;

  /// Mean fragment size in bytes (sizes vary deterministically in
  /// [MeanFragmentBytes/2, MeanFragmentBytes*3/2)).
  uint32_t MeanFragmentBytes = 64;

  /// Eviction granularity of the shared cache.
  GranularitySpec Granularity = GranularitySpec::units(8);

  bool EnableChaining = true;
  unsigned Shards = 16;
  unsigned Fences = 16;
  uint64_t Seed = 1;
  telemetry::TelemetrySink *Telemetry = nullptr;

  /// Run inside a final quiesce after the threads joined, with the
  /// whole engine locked. Benches and tests hang the structural audit
  /// here (runtime cannot link ccsim_check -- check layers above it).
  std::function<void(const SharedCacheEngine &)> OnFinalQuiesce;
};

/// Outcome of one stress run.
struct InstallerReport {
  uint64_t Finds = 0;        ///< probe() calls that hit.
  uint64_t Misses = 0;       ///< probe() calls that missed.
  uint64_t Installs = 0;     ///< Successful installs.
  uint64_t InstallRaces = 0; ///< install() lost to a racing thread.
  uint64_t TooBig = 0;       ///< install() rejected an oversized fragment.
  CacheStats Stats;
  ContentionCounters Contention;

  uint64_t DispatchEntries = 0; ///< Live entries after the join.
  /// Dispatch table mirrors residency exactly (entry per resident
  /// fragment, no stale entries), checked at the final quiesce.
  bool DispatchConsistent = false;
};

/// Runs the stress loop described in the file header and returns the
/// tallies. Spawns Config.Threads threads and joins them; the engine
/// and dispatch table live and die inside the call.
InstallerReport runConcurrentInstall(const InstallerConfig &Config);

} // namespace ccsim

#endif // CCSIM_RUNTIME_CONCURRENTINSTALLER_H
