//===- runtime/Translator.cpp - Mini dynamic binary translator ------------===//

#include "runtime/Translator.h"
#include "support/Contracts.h"

#include "runtime/Interpreter.h"

#include <algorithm>

using namespace ccsim;

Translator::Translator(const Program &P, const TranslatorConfig &Config)
    : Prog(P), Config(Config), State(Config.GuestMemoryBytes),
      Engine({Config.CacheBytes, Config.EnableChaining, Config.Telemetry},
             makePolicy(Config.Policy)),
      // BB fragments never enter the link graph; the tier runs
      // fine-grained FIFO (DynamoRIO's default), i.e. a one-byte quantum.
      BBEngine({Config.BBCacheBytes, /*EnableChaining=*/false,
                Config.Telemetry},
               makePolicy(GranularitySpec::fine())),
      Jitter(Config.Seed) {
  State.PC = P.EntryPC;
  HotCounter.assign(P.size(), 0);
  IdLookup.assign(P.size(), -1);
  Engine.setEvictPayload([this](auto V) { onSuperblockEvict(V); });
  Engine.setUnlinkPayload(
      [this](auto V, auto D) { onSuperblockUnlink(V, D); });
  BBEngine.setEvictPayload([this](auto V) { onBasicBlockEvict(V); });
}

SuperblockId Translator::idForPC(uint32_t PC) {
  CCSIM_ASSERT(PC < IdLookup.size(), "entry PC outside the program image");
  if (IdLookup[PC] >= 0)
    return static_cast<SuperblockId>(IdLookup[PC]);
  const SuperblockId Id = static_cast<SuperblockId>(PCById.size());
  IdLookup[PC] = static_cast<int32_t>(Id);
  PCById.push_back(PC);
  SlotById.push_back(DispatchTable::NotFound);
  BBSlotById.push_back(DispatchTable::NotFound);
  return Id;
}

double Translator::jittered(double Ops) {
  // A few percent of deterministic measurement noise, mimicking the
  // run-to-run variation of hardware counters.
  return Ops * (1.0 + (Jitter.nextDouble() - 0.5) * 0.06);
}

int32_t Translator::allocateSlot() {
  if (!FreeSlots.empty()) {
    const int32_t Slot = FreeSlots.back();
    FreeSlots.pop_back();
    return Slot;
  }
  Fragments.emplace_back();
  return static_cast<int32_t>(Fragments.size()) - 1;
}

uint64_t Translator::dropVictims(std::span<const CodeCache::Resident> Victims,
                                 DispatchTable &InTable,
                                 std::vector<int32_t> &SlotMap,
                                 double &ProbeOps) {
  uint64_t Bytes = 0;
  for (const CodeCache::Resident &V : Victims) {
    Bytes += V.Size;
    ProbeOps += InTable.remove(PCById[V.Id]) * Config.Weights.PerProbe;
    const int32_t Slot = SlotMap[V.Id];
    CCSIM_ASSERT(Slot >= 0, "evicted fragment has no slot");
    Fragments[static_cast<size_t>(Slot)] = Fragment();
    FreeSlots.push_back(Slot);
    SlotMap[V.Id] = DispatchTable::NotFound;
  }
  return Bytes;
}

void Translator::chargeRecordedInstruction() {
  ++Stats.GuestInstructions;
  ++Stats.InterpretedInstructions;
  Stats.Ops.InterpOps += Config.Weights.InterpPerGuestInstr;
  if (Budget)
    --Budget;
}

void Translator::chargeDispatch(unsigned Probes) {
  ++Stats.Dispatches;
  Stats.Ops.DispatchOps +=
      Config.Weights.DispatchBase + Probes * Config.Weights.PerProbe;
  if (Config.Weights.ProtectTranslator) {
    // Entering and leaving the (self-protected) translator flips the
    // code cache page protections twice — the dominant cost the paper
    // blames for the Table 2 slowdowns.
    Stats.Ops.ProtectionOps += 2.0 * Config.Weights.ProtectionChange;
  }
}

void Translator::interpretBlock() {
  Interpreter Interp(Prog, State);
  // The Interpreter constructor resets PC to the program entry; restore
  // the dispatcher's PC. (Interpreter is also used standalone.)
  // NOTE: construct-once-per-block is fine; it holds no state besides
  // the count.
  State.PC = DispatchPC;
  const uint64_t Executed = Interp.stepBlock();
  Stats.GuestInstructions += Executed;
  Stats.InterpretedInstructions += Executed;
  Stats.Ops.InterpOps +=
      static_cast<double>(Executed) * Config.Weights.InterpPerGuestInstr;
  Budget -= std::min(Budget, Executed);
}

void Translator::buildAndInstallFragment() {
  Fragment F;
  F.EntryPC = State.PC;
  F.Id = idForPC(F.EntryPC);

  uint32_t Bytes = 0;
  uint32_t GuestCount = 0;
  bool Indirect = false;

  // NET-style recording: execute the hot path and record it until a
  // trace-ending condition.
  for (;;) {
    Instruction Inst;
    if (!Prog.decodeAt(State.PC, Inst)) {
      State.Halted = true;
      break;
    }
    const uint32_t PC = State.PC;
    F.Code.push_back(Inst);
    F.PCs.push_back(PC);
    Bytes += Inst.Size;
    ++GuestCount;

    // Recording executes at interpreter speed.
    chargeRecordedInstruction();

    const uint32_t Next = executeInstruction(Inst, PC, State);
    State.PC = Next;

    if (State.Halted)
      break; // Halt (or Ret from the outermost frame) ends the trace.

    if (Inst.Op == Opcode::Call) {
      // Traces end at calls; the callee is a direct (linkable) exit.
      F.StaticEdges.push_back(idForPC(Next));
      break;
    }
    if (Inst.isIndirect()) {
      Indirect = true; // Ret/Jr: target resolved at run time via IBL.
      break;
    }
    if (Inst.isConditionalBranch()) {
      // The untaken direction becomes a side exit (potential link).
      const uint32_t Fallthrough = PC + Inst.Size;
      const uint32_t Other = (Next == Inst.Target) ? Fallthrough
                                                   : Inst.Target;
      F.StaticEdges.push_back(idForPC(Other));
      if (Next == Inst.Target && Inst.Target <= PC) {
        // Taken backward branch: the loop closes; stop the trace here
        // and make the loop head a direct exit (often a self-link).
        F.StaticEdges.push_back(idForPC(Next));
        break;
      }
      continue;
    }
    if (Inst.Op == Opcode::Jmp && Inst.Target <= PC) {
      F.StaticEdges.push_back(idForPC(Next));
      break; // Backward jump ends the trace like a loop edge.
    }
    if (GuestCount >= Config.MaxFragmentGuestInstrs) {
      F.StaticEdges.push_back(idForPC(State.PC));
      break; // Length cap: fall through to a fresh fragment.
    }
  }

  if (F.Code.empty())
    return;

  const uint32_t NumExits =
      static_cast<uint32_t>(F.StaticEdges.size()) + (Indirect ? 1u : 0u);
  F.CodeBytes = Bytes + NumExits * Config.StubBytesPerExit;
  if (F.CodeBytes > Engine.cache().capacity())
    return; // Uncacheable; it executed once during recording anyway.

  installFragment(std::move(F));
}

void Translator::buildAndInstallBasicBlock() {
  Fragment F;
  F.EntryPC = State.PC;
  F.Id = idForPC(F.EntryPC);
  F.IsBasicBlock = true;

  uint32_t Bytes = 0;
  bool Indirect = false;

  // A basic block runs to (and includes) its first control-flow
  // instruction; recording executes it once at interpreter speed.
  for (;;) {
    Instruction Inst;
    if (!Prog.decodeAt(State.PC, Inst)) {
      State.Halted = true;
      break;
    }
    const uint32_t PC = State.PC;
    F.Code.push_back(Inst);
    F.PCs.push_back(PC);
    Bytes += Inst.Size;

    chargeRecordedInstruction();

    const uint32_t Next = executeInstruction(Inst, PC, State);
    State.PC = Next;
    if (State.Halted)
      break;

    if (Inst.isControlFlow()) {
      if (Inst.isIndirect())
        Indirect = true;
      else if (Inst.isConditionalBranch()) {
        F.StaticEdges.push_back(idForPC(Inst.Target));
        F.StaticEdges.push_back(idForPC(PC + Inst.Size));
      } else {
        F.StaticEdges.push_back(idForPC(Next)); // Jmp/Call target.
      }
      break;
    }
    if (F.Code.size() >= 64) {
      F.StaticEdges.push_back(idForPC(State.PC));
      break; // Degenerate straight-line run: cap the block.
    }
  }

  if (F.Code.empty())
    return;
  const uint32_t NumExits =
      static_cast<uint32_t>(F.StaticEdges.size()) + (Indirect ? 1u : 0u);
  F.CodeBytes = Bytes + NumExits * Config.StubBytesPerExit;
  if (F.CodeBytes > BBEngine.cache().capacity())
    return;

  // Make room (firing onBasicBlockEvict per batch) and commit; no links.
  const bool Installed = BBEngine.install({F.Id, F.CodeBytes});
  CCSIM_ASSERT(Installed, "size was checked against the BB capacity");
  (void)Installed;

  const int32_t Slot = allocateSlot();
  BBSlotById[F.Id] = Slot;
  const unsigned Probes = BBTable.insert(F.EntryPC, Slot);
  ++Stats.BBFragmentsBuilt;
  Stats.Ops.BBTranslateOps +=
      jittered(Config.Weights.BBTranslateBase +
               Config.Weights.BBTranslatePerByte * F.CodeBytes +
               Probes * Config.Weights.PerProbe);
  Fragments[static_cast<size_t>(Slot)] = std::move(F);
  BBEngine.maybeAudit(BBEngine.lastInstallEvicted(), "bb-install");
}

void Translator::onBasicBlockEvict(
    std::span<const CodeCache::Resident> Victims) {
  CCSIM_ASSERT(!Victims.empty(), "no BB victims to process");
  double ProbeOps = 0;
  const uint64_t Bytes = dropVictims(Victims, BBTable, BBSlotById, ProbeOps);
  Stats.Ops.BBEvictOps +=
      jittered(Config.Weights.BBEvictBase +
               Config.Weights.BBEvictPerByte * static_cast<double>(Bytes) +
               ProbeOps);
}

void Translator::installFragment(Fragment &&Frag) {
  // The engine makes room at the policy's quantum (firing the payload
  // hooks per batch), commits, and links the recorded static edges.
  const bool Installed =
      Engine.install({Frag.Id, Frag.CodeBytes, Frag.StaticEdges});
  CCSIM_ASSERT(Installed, "size was checked against the capacity");
  (void)Installed;

  if (Config.RecordTrace) {
    // Remember the first-build shape of this superblock and count the
    // recording execution as one dispatch event.
    if (Frag.Id >= FirstBuildSize.size()) {
      FirstBuildSize.resize(Frag.Id + 1, 0);
      FirstBuildEdges.resize(Frag.Id + 1);
    }
    if (FirstBuildSize[Frag.Id] == 0) {
      FirstBuildSize[Frag.Id] = Frag.CodeBytes;
      FirstBuildEdges[Frag.Id] = Frag.StaticEdges;
    }
    RecordedAccesses.push_back(Frag.Id);
  }

  // Slots freed by this install's evictions are already reusable here.
  const int32_t Slot = allocateSlot();
  SlotById[Frag.Id] = Slot;
  const unsigned Probes = Table.insert(Frag.EntryPC, Slot);
  ++Stats.FragmentsBuilt;

  // Regeneration cost (Equation 3's shape): decode/analyze/emit per byte
  // plus fragment allocation and hash-table update.
  const double Ops =
      jittered(Config.Weights.TranslateBase +
               Config.Weights.TranslatePerByte * Frag.CodeBytes +
               Probes * Config.Weights.PerProbe);
  Stats.Ops.TranslateOps += Ops;
  Stats.Ops.MissSamples.push_back({static_cast<double>(Frag.CodeBytes), Ops});
  Fragments[static_cast<size_t>(Slot)] = std::move(Frag);

  // Audit only after the dispatch-table entry exists, so the
  // resident-unreachable rule never fires mid-install.
  Engine.sampleBackPointerMemory();
  Engine.maybeAudit(Engine.lastInstallEvicted(), "install");
}

void Translator::onSuperblockEvict(
    std::span<const CodeCache::Resident> Victims) {
  CCSIM_ASSERT(!Victims.empty(), "no victims to process");
  double ProbeOps = 0;
  const uint64_t Bytes = dropVictims(Victims, Table, SlotById, ProbeOps);

  // Eviction cost (Equation 2's shape): invocation fixed cost (protection
  // toggles + bookkeeping) plus per-byte scrubbing/free-list work.
  const double Ops =
      jittered(Config.Weights.EvictBase +
               Config.Weights.EvictPerByte * static_cast<double>(Bytes) +
               ProbeOps);
  Stats.Ops.EvictOps += Ops;
  Stats.Ops.EvictionSamples.push_back({static_cast<double>(Bytes), Ops});
}

void Translator::onSuperblockUnlink(
    std::span<const CodeCache::Resident> /*Victims*/,
    std::span<const uint32_t> Dangling) {
  for (uint32_t NumLinks : Dangling) {
    if (NumLinks == 0)
      continue;
    // Unlink cost (Equation 4's shape): back-pointer walk and patch.
    const double UnlinkOps = jittered(Config.Weights.UnlinkBase +
                                      Config.Weights.UnlinkPerLink * NumLinks);
    Stats.Ops.UnlinkOps += UnlinkOps;
    Stats.Ops.UnlinkSamples.push_back(
        {static_cast<double>(NumLinks), UnlinkOps});
  }
}

int32_t Translator::executeFragment(int32_t Slot) {
  Fragment &F = Fragments[static_cast<size_t>(Slot)];
  if (F.IsBasicBlock) {
    // The BB prologue bumps the trace-head counter (DynamoRIO's profile
    // counter). Crossing the threshold bails to the dispatcher, which
    // promotes the block into a superblock.
    CCSIM_ASSERT(F.EntryPC < HotCounter.size(), "BB entry outside image");
    Stats.Ops.CacheExecOps += 2.0; // Counter increment in the prologue.
    if (++HotCounter[F.EntryPC] >= Config.HotThreshold &&
        State.PC == F.EntryPC)
      return DispatchTable::NotFound;
  }
  ++F.Executions;
  if (Config.RecordTrace && !F.IsBasicBlock)
    RecordedAccesses.push_back(F.Id);

  for (size_t I = 0; I < F.Code.size(); ++I) {
    const Instruction &Inst = F.Code[I];
    const uint32_t PC = F.PCs[I];

    ++Stats.GuestInstructions;
    if (F.IsBasicBlock)
      ++Stats.BBInstructions;
    else
      ++Stats.CacheInstructions;
    Stats.Ops.CacheExecOps += Config.Weights.CacheExecPerGuestInstr;
    if (Budget)
      --Budget;

    const uint32_t Next = executeInstruction(Inst, PC, State);
    State.PC = Next;

    if (State.Halted)
      return DispatchTable::NotFound;

    const bool Terminal = (I + 1 == F.Code.size());
    if (!Terminal) {
      if (Next == F.PCs[I + 1])
        continue; // Still on the recorded path.
      CCSIM_ASSERT(Inst.isConditionalBranch(),
                   "only conditional branches may leave the recorded path");
      // Side exit: a direct (linkable) transfer off the hot path.
      return resolveDirectExit(Next);
    }

    // Terminal instruction.
    if (Inst.isIndirect()) {
      if (!Config.EnableChaining)
        return DispatchTable::NotFound;
      // Exit-stub inline cache (DynamoRIO 0.93-style indirect branch
      // handling): the stub remembers the last target. A monomorphic
      // return keeps hitting; a polymorphic one (function called from
      // alternating sites) installs the new target and falls back to the
      // dispatcher — even with chaining enabled. This is what keeps
      // call/return-heavy codes from enjoying the full chaining benefit.
      Stats.Ops.IblOps += Config.Weights.IblLookup;
      if (F.IndirectInlineTag != Next + 1) {
        F.IndirectInlineTag = Next + 1;
        ++Stats.IblMisses;
        return DispatchTable::NotFound;
      }
      bool InBBTier = false;
      const int32_t NextSlot = residentSlotFor(Next, InBBTier);
      if (NextSlot >= 0)
        ++Stats.IndirectTransfers;
      return NextSlot;
    }
    return resolveDirectExit(Next);
  }
  return DispatchTable::NotFound; // Not reached: last instr is terminal.
}

int32_t Translator::residentSlotFor(uint32_t TargetPC, bool &InBBTier) const {
  InBBTier = false;
  unsigned Probes = 0;
  const int32_t Slot = Table.lookup(TargetPC, Probes);
  if (Slot >= 0)
    return Slot;
  if (Config.UseBasicBlockCache) {
    const int32_t BBSlot = BBTable.lookup(TargetPC, Probes);
    if (BBSlot >= 0) {
      InBBTier = true;
      return BBSlot;
    }
  }
  return DispatchTable::NotFound;
}

int32_t Translator::resolveDirectExit(uint32_t TargetPC) {
  if (!Config.EnableChaining)
    return DispatchTable::NotFound;
  // A patched link is a plain jump: if the target fragment is resident
  // the transfer is free (links are kept consistent by the link graph).
  bool InBBTier = false;
  const int32_t Slot = residentSlotFor(TargetPC, InBBTier);
  if (Slot < 0)
    return DispatchTable::NotFound;
  ++(InBBTier ? Stats.BBLinkedTransfers : Stats.LinkedTransfers);
  return Slot;
}

const TranslatorStats &Translator::run(uint64_t MaxGuestInstructions) {
  Budget = MaxGuestInstructions;
  while (!State.Halted && Budget > 0) {
    // Control leaving the program image halts the guest, exactly like an
    // interpreter decode failure.
    if (State.PC >= Prog.size()) {
      State.Halted = true;
      break;
    }
    // Dispatcher entry (Figure 1): hash lookup, context switch, and (in a
    // self-protecting translator) memory protection changes.
    DispatchPC = State.PC;
    unsigned Probes = 0;
    int32_t Slot = Table.lookup(State.PC, Probes);
    chargeDispatch(Probes);

    if (Slot < 0) {
      const uint32_t PC = State.PC;
      CCSIM_ASSERT(PC < HotCounter.size(), "PC outside the program image");
      if (++HotCounter[PC] >= Config.HotThreshold) {
        buildAndInstallFragment();
        continue; // The recording already executed the path.
      }
      if (!Config.UseBasicBlockCache) {
        interpretBlock();
        continue;
      }
      // Two-tier mode: cold code runs from the basic-block cache.
      unsigned BBProbes = 0;
      Slot = BBTable.lookup(PC, BBProbes);
      Stats.Ops.DispatchOps += BBProbes * Config.Weights.PerProbe;
      if (Slot < 0) {
        buildAndInstallBasicBlock();
        continue; // The recording already executed the block.
      }
    }

    // Execute inside the cache until control must return to the
    // dispatcher (unlinked exit, IBL miss, halt, or budget).
    while (Slot >= 0 && !State.Halted && Budget > 0)
      Slot = executeFragment(Slot);
  }
  syncEngineStats();
  return Stats;
}

void Translator::syncEngineStats() {
  // The engines are the source of truth for eviction/link accounting;
  // plain assignments keep repeated run() calls idempotent.
  const CacheStats &ES = Engine.stats();
  Stats.EvictionInvocations = ES.EvictionInvocations;
  Stats.EvictedFragments = ES.EvictedBlocks;
  Stats.EvictedBytes = ES.EvictedBytes;
  Stats.UnlinkedLinks = ES.UnlinkedLinks;
  Stats.ChainStats.LinksCreated = ES.LinksCreated;
  Stats.ChainStats.InterUnitLinksCreated = ES.InterUnitLinksCreated;
  Stats.ChainStats.SelfLinksCreated = ES.SelfLinksCreated;
  const CacheStats &BS = BBEngine.stats();
  Stats.BBEvictionInvocations = BS.EvictionInvocations;
  Stats.BBEvictedFragments = BS.EvictedBlocks;
}

Trace Translator::exportTrace() const {
  CCSIM_ASSERT(Config.RecordTrace, "run was not recorded");
  Trace T;
  T.Name = "mini-dbt";

  // Densify: only superblocks that were actually built get trace ids.
  std::vector<int64_t> Remap(FirstBuildSize.size(), -1);
  for (SuperblockId Id = 0; Id < FirstBuildSize.size(); ++Id) {
    if (FirstBuildSize[Id] == 0)
      continue;
    Remap[Id] = static_cast<int64_t>(T.Blocks.size());
    SuperblockDef Def;
    Def.SizeBytes = FirstBuildSize[Id];
    T.Blocks.push_back(std::move(Def));
  }
  for (SuperblockId Id = 0; Id < FirstBuildSize.size(); ++Id) {
    if (Remap[Id] < 0)
      continue;
    SuperblockDef &Def = T.Blocks[static_cast<size_t>(Remap[Id])];
    for (SuperblockId Edge : FirstBuildEdges[Id])
      if (Edge < Remap.size() && Remap[Edge] >= 0)
        Def.OutEdges.push_back(static_cast<SuperblockId>(Remap[Edge]));
  }
  T.Accesses.reserve(RecordedAccesses.size());
  for (SuperblockId Id : RecordedAccesses) {
    CCSIM_ASSERT(Id < Remap.size() && Remap[Id] >= 0,
                 "recorded access to a never-built fragment");
    T.Accesses.push_back(static_cast<SuperblockId>(Remap[Id]));
  }
  CCSIM_ASSERT(T.validate(), "exported trace must be structurally valid");
  return T;
}

bool Translator::checkInvariants() const {
  // Cache/link structure lives in the engines; what remains here is the
  // dispatch-table consistency the check library audits as dispatch.*.
  if (!Engine.checkInvariants() || !BBEngine.checkInvariants())
    return false;
  if (!Table.checkInvariants() || !BBTable.checkInvariants())
    return false;
  if (Table.size() != Engine.cache().residentCount())
    return false;
  if (BBTable.size() != BBEngine.cache().residentCount())
    return false;
  // Every resident fragment is reachable through the table at its PC.
  bool Ok = true;
  Engine.cache().forEachResident([&](const CodeCache::Resident &R) {
    unsigned Probes = 0;
    const int32_t Slot = Table.lookup(PCById[R.Id], Probes);
    if (Slot < 0 || Fragments[static_cast<size_t>(Slot)].Id != R.Id)
      Ok = false;
  });
  return Ok;
}
