//===- analysis/OverheadFit.h - Re-deriving the overhead equations --------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 9 methodology: least-squares fits of the overhead samples
/// logged by the mini-DBT's instrumentation, re-deriving the paper's
/// Equations 2 (eviction), 3 (miss/regeneration) and 4 (unlinking), plus
/// a comparison helper against the published coefficients.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_ANALYSIS_OVERHEADFIT_H
#define CCSIM_ANALYSIS_OVERHEADFIT_H

#include "core/CostModel.h"
#include "runtime/OpCounter.h"
#include "support/Regression.h"

namespace ccsim {

/// The three fitted overhead equations.
struct OverheadFits {
  LinearFit Eviction; ///< instructions vs bytes evicted (Eq. 2).
  LinearFit Miss;     ///< instructions vs bytes regenerated (Eq. 3).
  LinearFit Unlink;   ///< instructions vs links removed (Eq. 4).
};

/// Fits the logged samples of \p Ops.
OverheadFits fitOverheads(const OpCounter &Ops);

/// Builds a CostModel from fitted equations, so the trace-driven
/// simulator can run with coefficients measured on the mini-DBT instead
/// of the paper's published ones (closing the loop between the two
/// halves of the study).
CostModel costModelFromFits(const OverheadFits &Fits);

/// Relative error |Fitted - Reference| / |Reference| of a coefficient.
double relativeError(double Fitted, double Reference);

} // namespace ccsim

#endif // CCSIM_ANALYSIS_OVERHEADFIT_H
