//===- analysis/Aggregate.cpp - Cross-benchmark result aggregation --------===//

#include "analysis/Aggregate.h"
#include "support/Contracts.h"


using namespace ccsim;

std::vector<double>
ccsim::relativeOverheadWeighted(const std::vector<SuiteResult> &Points,
                                bool IncludeLinkMaintenance,
                                size_t BaselineIndex) {
  CCSIM_ASSERT(BaselineIndex < Points.size(), "baseline index out of range");
  const double Base =
      Points[BaselineIndex].Combined.totalOverhead(IncludeLinkMaintenance);
  std::vector<double> Out;
  Out.reserve(Points.size());
  for (const SuiteResult &P : Points) {
    const double Value = P.Combined.totalOverhead(IncludeLinkMaintenance);
    Out.push_back(Base > 0.0 ? Value / Base : 0.0);
  }
  return Out;
}

std::vector<double> ccsim::relativeOverheadPerBenchmarkMean(
    const std::vector<SuiteResult> &Points, bool IncludeLinkMaintenance,
    size_t BaselineIndex) {
  CCSIM_ASSERT(BaselineIndex < Points.size(), "baseline index out of range");
  const SuiteResult &Base = Points[BaselineIndex];
  std::vector<double> Out;
  Out.reserve(Points.size());
  for (const SuiteResult &P : Points) {
    CCSIM_ASSERT(P.PerBenchmark.size() == Base.PerBenchmark.size(),
                 "sweep points cover different benchmark sets");
    double Sum = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < P.PerBenchmark.size(); ++I) {
      const double BaseValue =
          Base.PerBenchmark[I].Stats.totalOverhead(IncludeLinkMaintenance);
      if (BaseValue <= 0.0)
        continue;
      Sum += P.PerBenchmark[I].Stats.totalOverhead(IncludeLinkMaintenance) /
             BaseValue;
      ++Count;
    }
    Out.push_back(Count ? Sum / static_cast<double>(Count) : 0.0);
  }
  return Out;
}

std::vector<double>
ccsim::relativeEvictionsWeighted(const std::vector<SuiteResult> &Points,
                                 size_t BaselineIndex) {
  CCSIM_ASSERT(BaselineIndex < Points.size(), "baseline index out of range");
  const double Base = static_cast<double>(
      Points[BaselineIndex].Combined.EvictionInvocations);
  std::vector<double> Out;
  Out.reserve(Points.size());
  for (const SuiteResult &P : Points)
    Out.push_back(
        Base > 0.0
            ? static_cast<double>(P.Combined.EvictionInvocations) / Base
            : 0.0);
  return Out;
}

std::vector<double> ccsim::relativeEvictionsPerBenchmarkMean(
    const std::vector<SuiteResult> &Points, size_t BaselineIndex) {
  CCSIM_ASSERT(BaselineIndex < Points.size(), "baseline index out of range");
  const SuiteResult &Base = Points[BaselineIndex];
  std::vector<double> Out;
  Out.reserve(Points.size());
  for (const SuiteResult &P : Points) {
    double Sum = 0.0;
    size_t Count = 0;
    for (size_t I = 0; I < P.PerBenchmark.size(); ++I) {
      const double BaseValue = static_cast<double>(
          Base.PerBenchmark[I].Stats.EvictionInvocations);
      if (BaseValue <= 0.0)
        continue;
      Sum += static_cast<double>(
                 P.PerBenchmark[I].Stats.EvictionInvocations) /
             BaseValue;
      ++Count;
    }
    Out.push_back(Count ? Sum / static_cast<double>(Count) : 0.0);
  }
  return Out;
}

std::vector<double>
ccsim::unifiedMissRates(const std::vector<SuiteResult> &Points) {
  std::vector<double> Out;
  Out.reserve(Points.size());
  for (const SuiteResult &P : Points)
    Out.push_back(P.Combined.missRate());
  return Out;
}

std::vector<double>
ccsim::interUnitLinkFractions(const std::vector<SuiteResult> &Points) {
  std::vector<double> Out;
  Out.reserve(Points.size());
  for (const SuiteResult &P : Points)
    Out.push_back(P.Combined.interUnitLinkFraction());
  return Out;
}
