//===- analysis/OverheadFit.cpp - Re-deriving the overhead equations ------===//

#include "analysis/OverheadFit.h"

#include <cmath>

using namespace ccsim;

OverheadFits ccsim::fitOverheads(const OpCounter &Ops) {
  OverheadFits Fits;
  RegressionAccumulator Evict, Miss, Unlink;
  for (const OpCounter::Sample &S : Ops.EvictionSamples)
    Evict.add(S.X, S.Ops);
  for (const OpCounter::Sample &S : Ops.MissSamples)
    Miss.add(S.X, S.Ops);
  for (const OpCounter::Sample &S : Ops.UnlinkSamples)
    Unlink.add(S.X, S.Ops);
  Fits.Eviction = Evict.fit();
  Fits.Miss = Miss.fit();
  Fits.Unlink = Unlink.fit();
  return Fits;
}

CostModel ccsim::costModelFromFits(const OverheadFits &Fits) {
  CostModel Model;
  Model.EvictionPerByte = Fits.Eviction.Slope;
  Model.EvictionBase = Fits.Eviction.Intercept;
  Model.MissPerByte = Fits.Miss.Slope;
  Model.MissBase = Fits.Miss.Intercept;
  Model.UnlinkPerLink = Fits.Unlink.Slope;
  Model.UnlinkBase = Fits.Unlink.Intercept;
  return Model;
}

double ccsim::relativeError(double Fitted, double Reference) {
  if (Reference == 0.0)
    return std::abs(Fitted);
  return std::abs(Fitted - Reference) / std::abs(Reference);
}
