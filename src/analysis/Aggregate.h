//===- analysis/Aggregate.h - Cross-benchmark result aggregation ----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregations used by the figure benches. The paper defines Equation 1
/// (access-weighted unified miss rate) explicitly; for the relative
/// overhead and eviction-count figures the aggregation is not stated, so
/// the benches report both the Eq. 1 weighting (sum of raw counters) and
/// the unweighted mean of per-benchmark relative values. See
/// EXPERIMENTS.md for which matches the paper's shapes where.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_ANALYSIS_AGGREGATE_H
#define CCSIM_ANALYSIS_AGGREGATE_H

#include "sim/Sweep.h"

#include <vector>

namespace ccsim {

/// Total modeled overhead per sweep point under Eq. 1 weighting,
/// relative to element \p BaselineIndex.
std::vector<double>
relativeOverheadWeighted(const std::vector<SuiteResult> &Points,
                         bool IncludeLinkMaintenance,
                         size_t BaselineIndex = 0);

/// Mean over benchmarks of per-benchmark relative overhead, relative to
/// the same benchmark under the baseline sweep point.
std::vector<double>
relativeOverheadPerBenchmarkMean(const std::vector<SuiteResult> &Points,
                                 bool IncludeLinkMaintenance,
                                 size_t BaselineIndex = 0);

/// Eviction invocation counts relative to \p BaselineIndex (the paper's
/// Figure 8 uses the finest-grained FIFO — the last sweep point — as
/// 100%). Eq. 1 weighting.
std::vector<double>
relativeEvictionsWeighted(const std::vector<SuiteResult> &Points,
                          size_t BaselineIndex);

/// Per-benchmark-mean version of relativeEvictionsWeighted. Benchmarks
/// with zero baseline evictions are skipped.
std::vector<double>
relativeEvictionsPerBenchmarkMean(const std::vector<SuiteResult> &Points,
                                  size_t BaselineIndex);

/// Unified miss rates (Eq. 1) per sweep point.
std::vector<double> unifiedMissRates(const std::vector<SuiteResult> &Points);

/// Inter-unit link fractions per sweep point (Eq. 1 weighting over link
/// creation events).
std::vector<double>
interUnitLinkFractions(const std::vector<SuiteResult> &Points);

} // namespace ccsim

#endif // CCSIM_ANALYSIS_AGGREGATE_H
