//===- multisweep/MultiConfigEngine.cpp - One-pass lattice replay ---------===//

#include "multisweep/MultiConfigEngine.h"

#include "check/CacheAuditor.h"
#include "concurrent/ThreadPool.h"
#include "support/Contracts.h"

#include <algorithm>
#include <bit>
#include <cstdio>

using namespace ccsim;
using namespace ccsim::multisweep;

const char *ccsim::multisweep::sweepModeName(SweepMode Mode) {
  return Mode == SweepMode::PerConfig ? "per-config" : "one-pass";
}

std::optional<SweepMode>
ccsim::multisweep::parseSweepMode(const std::string &Text) {
  if (Text == "per-config")
    return SweepMode::PerConfig;
  if (Text == "one-pass")
    return SweepMode::OnePass;
  return std::nullopt;
}

size_t LatticePlan::numShared() const {
  return NumSharedEngines;
}

size_t LatticePlan::numDuplicates() const {
  size_t Count = 0;
  for (const Point &P : Points)
    Count += P.Kind == Route::Duplicate;
  return Count;
}

size_t LatticePlan::numFallbacks() const {
  size_t Count = 0;
  for (const Point &P : Points)
    Count += P.Kind == Route::Fallback;
  return Count;
}

LatticePlan ccsim::multisweep::planLattice(const std::vector<SweepJob> &Jobs) {
  LatticePlan Plan;
  Plan.Points.resize(Jobs.size());
  bool HaveSharedCancel = false;
  // Representative shared point per job index, for duplicate detection.
  std::vector<size_t> SharedJobs;

  for (size_t J = 0; J < Jobs.size(); ++J) {
    const SweepJob &Job = Jobs[J];
    LatticePlan::Point &P = Plan.Points[J];

    // The shortcuts assume hits are pure reads: no per-access policy
    // state, no per-access audit hook, and one shared cancellation token
    // polled for everyone.
    const std::unique_ptr<EvictionPolicy> Policy = makePolicy(Job.Spec);
    if (!Policy->isAccessStateless()) {
      P.Kind = LatticePlan::Route::Fallback;
      P.FallbackReason =
          "policy '" + Policy->name() + "' observes individual accesses";
      continue;
    }
    if (Job.Config.Audit != AuditLevel::Off) {
      P.Kind = LatticePlan::Route::Fallback;
      P.FallbackReason = "audit level asks for per-access deep validation";
      continue;
    }
    if (HaveSharedCancel && Job.Config.Cancel != Plan.SharedCancel) {
      P.Kind = LatticePlan::Route::Fallback;
      P.FallbackReason = "cancellation token differs from the shared pass's";
      continue;
    }

    // Identical telemetry-free points simulate once (same rule as
    // SweepEngine::runParallel): a telemetry-carrying point records
    // observable marks and metrics, so it keeps its own engine.
    if (!Job.Config.Telemetry) {
      bool Duplicated = false;
      for (size_t Earlier : SharedJobs) {
        if (Jobs[Earlier].Config.Telemetry ||
            !Job.sameSimulation(Jobs[Earlier]))
          continue;
        P.Kind = LatticePlan::Route::Duplicate;
        P.EngineIndex = Plan.Points[Earlier].EngineIndex;
        Duplicated = true;
        break;
      }
      if (Duplicated)
        continue;
    }

    P.Kind = LatticePlan::Route::Shared;
    P.EngineIndex = Plan.NumSharedEngines++;
    SharedJobs.push_back(J);
    if (!HaveSharedCancel) {
      HaveSharedCancel = true;
      Plan.SharedCancel = Job.Config.Cancel;
      Plan.SharedCancelInterval = Job.Config.CancelCheckInterval;
    } else {
      Plan.SharedCancelInterval =
          std::min(Plan.SharedCancelInterval, Job.Config.CancelCheckInterval);
    }
  }
  return Plan;
}

MultiConfigEngine::MultiConfigEngine(const Trace &T,
                                     const std::vector<SweepJob> &Jobs,
                                     const LatticePlan &Plan)
    : T(T), Jobs(Jobs), Plan(Plan) {
  CCSIM_REQUIRE(Plan.Points.size() == Jobs.size(),
                "lattice plan does not match the grid");
  NumWords = (Plan.NumSharedEngines + 63) / 64;
  Resident.assign(T.numSuperblocks() * NumWords, 0);
  FullMask.assign(NumWords, ~uint64_t{0});
  if (NumWords > 0 && Plan.NumSharedEngines % 64 != 0)
    FullMask.back() = (uint64_t{1} << (Plan.NumSharedEngines % 64)) - 1;
  Shared.reserve(Plan.NumSharedEngines);
  for (size_t J = 0; J < Jobs.size(); ++J) {
    if (Plan.Points[J].Kind != LatticePlan::Route::Shared)
      continue;
    const SweepJob &Job = Jobs[J];
    CacheEngineConfig EC;
    EC.CapacityBytes = sim::capacityFor(T, Job.Config);
    EC.Costs = Job.Config.Costs;
    EC.EnableChaining = Job.Config.EnableChaining;
    // No per-engine telemetry: a shared engine replicates the metrics
    // recording at settle time instead of emitting per-access events.
    // No OnEviction observer either — the miss path reads lastEvictions()
    // to keep the residency bitmask exact without per-batch copies.
    EC.Telemetry = nullptr;
    SharedState S;
    S.Engine = std::make_unique<CacheEngine>(EC, makePolicy(Job.Spec));
    S.JobIndex = J;
    S.SamplesTable = EC.EnableChaining &&
                     S.Engine->policy().usesBackPointerTable(EC.CapacityBytes);
    Shared.push_back(std::move(S));
  }
  CCSIM_ASSERT(Shared.size() == Plan.NumSharedEngines,
               "shared engine count disagrees with the plan");
}

void MultiConfigEngine::sharedPass() {
  const size_t N = T.Accesses.size();
  if (Shared.empty())
    return;
  Accounting.DecodedAccesses = N;

  CancelToken *Cancel = Plan.SharedCancel;
  const size_t Chunk =
      Cancel ? std::max<uint32_t>(1, Plan.SharedCancelInterval) : N;
  size_t I = 0;
  while (I < N) {
    if (Cancel) {
      if (const char *Reason = Cancel->stopReason())
        throw ReplayCancelled(
            "one-pass sweep of " + T.Name + " stopped after " +
                std::to_string(I) + " of " + std::to_string(N) +
                " accesses: " + Reason,
            Cancel->deadlineExpired() && !Cancel->cancelRequested());
    }
    const size_t End = std::min(N, I + Chunk);
    for (; I < End; ++I) {
      const SuperblockId Id = T.Accesses[I];
      uint64_t *Mask = &Resident[static_cast<size_t>(Id) * NumWords];
      // Bitmask shortcut: a block resident in every configuration hits
      // everywhere, and hits are pure reads for stateless policies — the
      // whole lattice advances with one word compare per mask word.
      bool AllResident = true;
      for (size_t W = 0; W < NumWords; ++W)
        AllResident &= Mask[W] == FullMask[W];
      if (AllResident) {
        ++Accounting.AllResidentShortcuts;
        continue;
      }
      // Miss-driven: the cleared bits of the mask are exactly the engines
      // where this access misses; the ones that hit are never visited.
      const SuperblockRecord Rec = T.recordFor(Id);
      for (size_t W = 0; W < NumWords; ++W) {
        uint64_t Missing = FullMask[W] & ~Mask[W];
        while (Missing) {
          const uint64_t Bit = Missing & (~Missing + 1);
          Missing &= Missing - 1;
          SharedState &S =
              Shared[W * 64 + static_cast<size_t>(std::countr_zero(Bit))];
          CacheEngine &Engine = *S.Engine;
          // Settle the back-pointer samples owed for the hit run since
          // this engine's last miss (the table size was constant across
          // it), then let the miss mutate the engine, then sample this
          // access at the post-miss size — exactly the per-access
          // sampling cadence. A too-big miss never becomes resident, so
          // its bit stays clear and every access re-misses, as in dense
          // replay.
          if (S.SamplesTable) {
            Engine.addDeferredBackPointerSamples(I - S.SampledThrough);
            S.SampledThrough = I;
          }
          if (Engine.deferredMiss(Rec) == AccessKind::Miss)
            Mask[W] |= Bit;
          // The miss's evictions retire this engine's residency bits; the
          // inserted block's own bit was set above.
          for (const CodeCache::Resident &V : Engine.lastEvictions())
            Resident[V.Id * NumWords + W] &= ~Bit;
          if (S.SamplesTable) {
            Engine.addDeferredBackPointerSamples(1);
            S.SampledThrough = I + 1;
          }
          ++Accounting.SharedMisses;
        }
      }
    }
  }
}

void MultiConfigEngine::settle(SharedState &S, SimResult &Out) {
  const SweepJob &Job = Jobs[S.JobIndex];
  CacheEngine &Engine = *S.Engine;
  const uint64_t N = T.Accesses.size();
  Engine.addDeferredBackPointerSamples(N - S.SampledThrough);
  S.SampledThrough = N;
  Engine.settleDeferredAccesses(N);

  Out.BenchmarkName = T.Name;
  Out.PolicyName = Engine.policy().name();
  Out.MaxCacheBytes = T.maxCacheBytes();
  Out.CapacityBytes = Engine.cache().capacity();
  Out.Stats = Engine.stats();

  // Metrics-fidelity telemetry: the same Mark pair and per-benchmark
  // CacheStats recording sim::run emits, minus the per-access event
  // stream (which only per-config replay can produce).
  if (telemetry::TelemetrySink *Tel = Job.Config.Telemetry) {
    const uint32_t MarkId = Tel->Tracer.internLabel(
        "sim:" + Out.BenchmarkName + "/" + Out.PolicyName);
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 1, 0);
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 0, Out.Stats.Accesses);
    char Pressure[32];
    std::snprintf(Pressure, sizeof(Pressure), "%g",
                  Job.Config.PressureFactor);
    Out.Stats.recordMetrics(Tel->Metrics, {{"benchmark", Out.BenchmarkName},
                                      {"policy", Out.PolicyName},
                                      {"pressure", Pressure}});
  }
}

std::vector<SimResult> MultiConfigEngine::run() {
  CCSIM_REQUIRE(!Ran, "MultiConfigEngine::run is single-shot");
  Ran = true;

  std::vector<SimResult> Results(Jobs.size());
  sharedPass();
  for (SharedState &S : Shared)
    settle(S, Results[S.JobIndex]);
  for (size_t J = 0; J < Jobs.size(); ++J) {
    const LatticePlan::Point &P = Plan.Points[J];
    if (P.Kind == LatticePlan::Route::Duplicate)
      Results[J] = Results[Shared[P.EngineIndex].JobIndex];
    else if (P.Kind == LatticePlan::Route::Fallback)
      Results[J] = sim::run(T, makePolicy(Jobs[J].Spec), Jobs[J].Config);
  }
  return Results;
}

check::AuditReport MultiConfigEngine::auditSharedStructures() const {
  check::CacheAuditor Auditor;
  check::AuditReport Report;
  for (const SharedState &S : Shared) {
    Report.merge(Auditor.auditCache(S.Engine->cache()));
    if (S.Engine->config().EnableChaining)
      Report.merge(Auditor.auditLinks(S.Engine->links(), S.Engine->cache()));
  }
  return Report;
}

check::AuditReport MultiConfigEngine::auditSettled() const {
  CCSIM_REQUIRE(Ran, "auditSettled needs settled counters (call run first)");
  check::CacheAuditor Auditor;
  check::AuditReport Report;
  for (const SharedState &S : Shared)
    Report.merge(Auditor.auditManager(*S.Engine));
  return Report;
}

namespace {

/// Formats the plan's accounting into \p Log: one line per deduplicated
/// or fallen-back point plus a summary, so a batch log always explains
/// where dense replays came from.
void logPlan(const LatticePlan &Plan, const std::vector<SweepJob> &Jobs,
             const std::function<void(const std::string &)> &Log) {
  if (!Log)
    return;
  char Buf[160];
  for (size_t J = 0; J < Jobs.size(); ++J) {
    const LatticePlan::Point &P = Plan.Points[J];
    const std::string Label = Jobs[J].Spec.label();
    if (P.Kind == LatticePlan::Route::Fallback) {
      std::snprintf(Buf, sizeof(Buf),
                    "point %zu (%s @ pressure %g) falls back to per-config "
                    "replay: %s",
                    J, Label.c_str(), Jobs[J].Config.PressureFactor,
                    P.FallbackReason.c_str());
      Log(Buf);
    } else if (P.Kind == LatticePlan::Route::Duplicate) {
      std::snprintf(Buf, sizeof(Buf),
                    "point %zu (%s @ pressure %g) duplicates an earlier "
                    "point; simulating once",
                    J, Label.c_str(), Jobs[J].Config.PressureFactor);
      Log(Buf);
    }
  }
  std::snprintf(Buf, sizeof(Buf),
                "one-pass plan: %zu shared, %zu duplicate, %zu fallback of "
                "%zu points",
                Plan.numShared(), Plan.numDuplicates(), Plan.numFallbacks(),
                Plan.Points.size());
  Log(Buf);
}

} // namespace

std::vector<SuiteResult>
ccsim::multisweep::runSweepGrid(const SweepEngine &Engine,
                                const std::vector<SweepJob> &Jobs,
                                const MultiSweepOptions &Options,
                                OnePassAccounting *Accounting) {
  if (Accounting)
    *Accounting = {};
  if (Options.Mode == SweepMode::PerConfig)
    return Engine.runParallel(Jobs);

  CCSIM_REQUIRE(validateSweepGrid(Jobs).empty(),
                "one-pass sweep needs a validated non-empty grid");
  const LatticePlan Plan = planLattice(Jobs);
  logPlan(Plan, Jobs, Options.Log);

  // One MultiConfigEngine per benchmark, fanned out over the worker pool;
  // each walks its trace once for the entire lattice.
  const std::vector<Trace> &Traces = Engine.traces();
  std::vector<std::vector<SimResult>> PerTrace(Traces.size());
  std::vector<OnePassAccounting> PerTraceAccounting(Traces.size());
  if (!Traces.empty()) {
    ThreadPool Pool(std::max(
        1u, std::min<unsigned>(Engine.numThreads(), Traces.size())));
    Pool.parallelFor(
        Traces.size(),
        [&](size_t B) {
          MultiConfigEngine Pass(Traces[B], Jobs, Plan);
          PerTrace[B] = Pass.run();
          PerTraceAccounting[B] = Pass.accounting();
        },
        /*ChunkSize=*/1);
  }

  // Assemble in canonical (job, benchmark) order, exactly like
  // runParallel, so reports and registries stay byte-identical.
  std::vector<SuiteResult> Results(Jobs.size());
  for (size_t J = 0; J < Jobs.size(); ++J) {
    SuiteResult &R = Results[J];
    R.PolicyLabel = Jobs[J].Spec.label();
    R.PressureFactor = Jobs[J].Config.PressureFactor;
    R.PerBenchmark.reserve(Traces.size());
    for (size_t B = 0; B < Traces.size(); ++B)
      R.PerBenchmark.push_back(std::move(PerTrace[B][J]));
    for (const SimResult &Bench : R.PerBenchmark)
      R.Combined.merge(Bench.Stats);
    recordSuiteMetrics(Jobs[J].Config.Telemetry, R);
  }
  if (Accounting)
    for (const OnePassAccounting &A : PerTraceAccounting)
      Accounting->merge(A);
  return Results;
}
