//===- multisweep/MultiConfigEngine.h - One-pass lattice replay -----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-pass evaluation of a whole sweep lattice. Every figure sweep
/// replays the same trace once per (granularity, pressure) point;
/// SweepEngine::runParallel spreads the grid over threads but still
/// decodes and walks the identical access stream once per point. For the
/// stateless FIFO family (EvictionPolicy::isAccessStateless) a hit is a
/// pure read — cache state changes only on misses — so one pass over the
/// trace can drive every configuration at once (the DEW single-pass FIFO
/// simulation idea):
///
///  - the access stream is decoded once per trace chunk and shared by all
///    configurations;
///  - each configuration keeps only its compact resident state (the
///    CodeCache residency bitmap + ring FIFO order it would have kept
///    anyway), and pays per access just one residency byte test;
///  - a shared residency bitmask (one bit per configuration per
///    superblock) makes the pass miss-driven: the common all-resident
///    case is one word compare total, and a partial-resident access
///    visits only the configurations that actually miss (bit scan), never
///    the ones that hit;
///  - hit counters and back-pointer-table samples are settled in batches
///    at miss boundaries, bit-identically to per-access accounting.
///
/// Points the shortcuts cannot cover — per-access audit levels, foreign
/// cancellation tokens, non-stateless policies — fall back to dense
/// per-config replay (sim::run), with a log-visible accounting of which
/// points fell back and why. Identical telemetry-free points are
/// deduplicated. The correctness contract, pinned by tests/multisweep:
/// every report and metrics export from one-pass mode is byte-identical
/// to per-config replay.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_MULTISWEEP_MULTICONFIGENGINE_H
#define CCSIM_MULTISWEEP_MULTICONFIGENGINE_H

#include "check/AuditReport.h"
#include "sim/Sweep.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ccsim::multisweep {

/// Sweep-grid execution backend. OnePass is the default wherever a grid
/// is driven end to end (CLI, service); PerConfig is the dense reference
/// path (SweepEngine::runParallel).
enum class SweepMode : uint8_t { PerConfig, OnePass };

/// Stable flag spelling of \p Mode ("per-config" | "one-pass").
const char *sweepModeName(SweepMode Mode);

/// Parses a --sweep-mode value; nullopt for anything unrecognized.
std::optional<SweepMode> parseSweepMode(const std::string &Text);

/// How each lattice point executes, decided once per grid (the plan does
/// not depend on the trace). Points route three ways: Shared points ride
/// the single pass on their own engine, Duplicate points copy a shared
/// representative's results, Fallback points replay densely.
struct LatticePlan {
  enum class Route : uint8_t { Shared, Duplicate, Fallback };

  struct Point {
    Route Kind = Route::Shared;
    /// Shared/Duplicate: index of the point's engine among the shared
    /// engines (a Duplicate names its representative's engine).
    size_t EngineIndex = 0;
    /// Fallback only: why the shortcuts cannot cover this point.
    std::string FallbackReason;
  };

  std::vector<Point> Points; ///< Parallel to the grid's jobs.
  size_t NumSharedEngines = 0;
  /// The one cancellation token the shared pass polls (the first shared
  /// point's token; points carrying any other token fall back).
  CancelToken *SharedCancel = nullptr;
  /// Accesses between cancellation polls: the minimum interval over the
  /// shared points, so no point waits longer than it asked for.
  uint32_t SharedCancelInterval = 0;

  size_t numShared() const;
  size_t numDuplicates() const;
  size_t numFallbacks() const;
};

/// Classifies every grid point. \p Jobs may be any validateSweepGrid-clean
/// lattice; the plan is deterministic and trace-independent.
LatticePlan planLattice(const std::vector<SweepJob> &Jobs);

/// Work accounting for one-pass runs (summed over traces when aggregated
/// by runSweepGrid).
struct OnePassAccounting {
  uint64_t DecodedAccesses = 0;       ///< Stream length walked once.
  uint64_t AllResidentShortcuts = 0;  ///< Accesses absorbed by the
                                      ///< residency bitmask (O(1) total).
  uint64_t SharedMisses = 0;          ///< Misses handled in the shared
                                      ///< pass across all engines.

  void merge(const OnePassAccounting &Other) {
    DecodedAccesses += Other.DecodedAccesses;
    AllResidentShortcuts += Other.AllResidentShortcuts;
    SharedMisses += Other.SharedMisses;
  }
};

/// Evaluates one trace against a whole sweep lattice in a single pass.
/// Construction builds the per-configuration engines; run() walks the
/// trace once and returns one SimResult per lattice point, bit-identical
/// to sim::run on each point. Telemetry-carrying shared points record
/// their Mark pair and full CacheStats into the sink at settle time
/// (metrics fidelity); per-access tracer events exist only in per-config
/// mode.
class MultiConfigEngine {
public:
  MultiConfigEngine(const Trace &T, const std::vector<SweepJob> &Jobs,
                    const LatticePlan &Plan);

  /// Runs the shared pass, then the fallback replays, and settles every
  /// engine. Throws ReplayCancelled at trace-chunk granularity when the
  /// plan's shared token (or a fallback point's own token) fires. Call
  /// at most once.
  std::vector<SimResult> run();

  const OnePassAccounting &accounting() const { return Accounting; }

  /// Shared-engine introspection for tests and audits.
  size_t numSharedEngines() const { return Shared.size(); }
  const CacheEngine &sharedEngine(size_t I) const { return *Shared[I].Engine; }

  /// Structural audit of every shared engine's compact state (placement +
  /// chaining rules). Safe mid-pass and after run(); the stats
  /// reconciliation rules need settled counters and are covered by
  /// auditSettled().
  check::AuditReport auditSharedStructures() const;

  /// Full cross-structure audit (placement, chaining, stats
  /// reconciliation) of every shared engine. Only valid after run().
  check::AuditReport auditSettled() const;

private:
  struct SharedState {
    std::unique_ptr<CacheEngine> Engine;
    size_t JobIndex = 0;         ///< The point this engine simulates.
    uint64_t SampledThrough = 0; ///< Accesses with a back-pointer sample.
    /// Whether this engine samples back-pointer table memory at all
    /// (chaining on and the policy keeps a table) — hoisted so the miss
    /// path skips the sampling calls entirely otherwise.
    bool SamplesTable = false;
  };

  const Trace &T;
  const std::vector<SweepJob> &Jobs;
  const LatticePlan &Plan;
  std::vector<SharedState> Shared;
  /// Residency bitmask: bit E of word [Id * NumWords + W] is set when
  /// superblock Id is resident in shared engine W * 64 + E. Kept exact by
  /// the miss path (set on insert) and the eviction observer (cleared per
  /// victim), so `word == FullMask[W]` is the all-resident test and
  /// `FullMask[W] & ~word` enumerates exactly the engines that miss.
  std::vector<uint64_t> Resident;
  /// All-engines mask per word (the last word may be partial).
  std::vector<uint64_t> FullMask;
  size_t NumWords = 0;
  OnePassAccounting Accounting;
  bool Ran = false;

  void sharedPass();
  void settle(SharedState &S, SimResult &Out);
};

/// Options for runSweepGrid.
struct MultiSweepOptions {
  SweepMode Mode = SweepMode::OnePass;
  /// Accounting sink: called with human-readable lines describing
  /// deduplicated points and every fallback (reason included). Unset
  /// means silent.
  std::function<void(const std::string &)> Log;
};

/// Grid front door: evaluates \p Jobs over every benchmark of \p Engine
/// and returns one SuiteResult per job in canonical order, recording
/// suite-level metrics exactly like SweepEngine::runParallel. PerConfig
/// mode delegates to runParallel; OnePass plans the lattice once and runs
/// a MultiConfigEngine per benchmark across the worker pool. Reports and
/// metrics registries are byte-identical between the two modes.
/// \p Accounting, when non-null, receives the merged one-pass accounting
/// (zeroes in PerConfig mode).
std::vector<SuiteResult>
runSweepGrid(const SweepEngine &Engine, const std::vector<SweepJob> &Jobs,
             const MultiSweepOptions &Options = {},
             OnePassAccounting *Accounting = nullptr);

} // namespace ccsim::multisweep

#endif // CCSIM_MULTISWEEP_MULTICONFIGENGINE_H
