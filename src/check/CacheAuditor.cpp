//===- check/CacheAuditor.cpp - Deep cross-structure invariant audits -----===//

#include "check/CacheAuditor.h"

#include "runtime/Translator.h"

#include <algorithm>
#include <cinttypes>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace ccsim;
using namespace ccsim::check;

namespace {

using ULL = unsigned long long;

/// Ids involved in a finding, as the report's uint64_t vector.
std::vector<uint64_t> ids(std::initializer_list<uint64_t> Values) {
  return std::vector<uint64_t>(Values);
}

} // namespace

bool CodeCacheState::isResident(SuperblockId Id) const {
  return std::any_of(
      Lookup.begin(), Lookup.end(),
      [Id](const CodeCache::Resident &R) { return R.Id == Id; });
}

// --- Snapshot extraction -------------------------------------------------

CodeCacheState check::captureCodeCache(const CodeCache &Cache) {
  CodeCacheState State;
  State.Capacity = Cache.capacity();
  State.OccupiedBytes = Cache.occupiedBytes();
  State.Fifo.reserve(Cache.residentCount());
  Cache.forEachResident(
      [&](const CodeCache::Resident &R) { State.Fifo.push_back(R); });
  for (SuperblockId Id = 0; Id < Cache.idTableSize(); ++Id)
    if (Cache.contains(Id))
      State.Lookup.push_back(
          CodeCache::Resident{Id, Cache.startOf(Id), Cache.sizeOf(Id)});
  return State;
}

LinkGraphState check::captureLinkGraph(const LinkGraph &Links) {
  LinkGraphState State;
  State.LiveLinkCount = Links.numLinks();
  State.Nodes.resize(Links.idTableSize());
  for (SuperblockId Id = 0; Id < Links.idTableSize(); ++Id) {
    LinkGraphState::Node &N = State.Nodes[Id];
    N.Id = Id;
    const auto Assign = [](std::vector<SuperblockId> &Dst,
                           std::span<const SuperblockId> Src) {
      Dst.assign(Src.begin(), Src.end());
    };
    Assign(N.StaticEdges, Links.staticEdgesOf(Id));
    Assign(N.Out, Links.outLinksOf(Id));
    Assign(N.In, Links.inLinksOf(Id));
    Assign(N.Wants, Links.wantsOf(Id));
  }
  return State;
}

FreeListState check::captureFreeList(const FreeListCache &Cache) {
  FreeListState State;
  State.Capacity = Cache.capacity();
  State.OccupiedBytes = Cache.occupiedBytes();
  Cache.forEachFreeExtent([&](uint64_t Start, uint64_t Size) {
    State.Free.push_back(FreeListState::Extent{Start, Size});
  });
  for (SuperblockId Id = 0; Id < Cache.idTableSize(); ++Id)
    if (Cache.contains(Id))
      State.Allocs.push_back(
          FreeListState::Alloc{Id, Cache.startOf(Id), Cache.sizeOf(Id)});
  Cache.forEachLru(
      [&](SuperblockId Id) { State.LruOrder.push_back(Id); });
  return State;
}

StatsState check::captureStats(const CacheManager &Manager) {
  StatsState State;
  State.Stats = Manager.stats();
  State.ResidentCount = Manager.cache().residentCount();
  State.OccupiedBytes = Manager.cache().occupiedBytes();
  State.LiveLinks = Manager.links().numLinks();
  State.BackPointerBytes = Manager.links().backPointerBytes();
  State.ChainingEnabled = Manager.config().EnableChaining;
  State.UsesBackPointerTable =
      Manager.policy().usesBackPointerTable(Manager.cache().capacity());
  return State;
}

DispatchTableState check::captureDispatchTable(const Translator &T,
                                               bool BasicBlockTier) {
  DispatchTableState State;
  const DispatchTable &Table =
      BasicBlockTier ? T.basicBlockDispatchTable() : T.dispatchTable();
  State.Entries.reserve(Table.size());
  Table.forEachLive([&](uint32_t PC, int32_t Slot) {
    State.Entries.push_back(
        DispatchTableState::Entry{PC, T.fragmentIdAtSlot(Slot)});
  });
  State.PCById.reserve(T.numKnownEntryPCs());
  for (SuperblockId Id = 0; Id < T.numKnownEntryPCs(); ++Id)
    State.PCById.push_back(T.entryPCOf(Id));
  return State;
}

ContentIndexState check::captureContentIndex(const SharedContentIndex &Index) {
  ContentIndexState State;
  State.LiveLinks = Index.liveLinkCount();
  State.Entries.reserve(Index.entryCount());
  Index.forEachEntry(
      [&](uint64_t Key, const SharedContentIndex::Entry &E) {
        State.Entries.push_back(ContentIndexState::Entry{
            Key, E.Representative, E.SizeBytes, E.Owner, E.RefCount,
            E.Links});
      });
  return State;
}

// --- CodeCache rules -----------------------------------------------------

void check::checkCodeCache(const CodeCacheState &Cache,
                           AuditReport &Report) {
  // The FIFO and the flag/lookup tables must describe the same residents.
  std::unordered_map<SuperblockId, const CodeCache::Resident *> ByIdFifo;
  for (const CodeCache::Resident &R : Cache.Fifo) {
    if (!ByIdFifo.emplace(R.Id, &R).second)
      Report.add(AuditRule::CacheResidencyFlagMismatch, ids({R.Id}),
                 "block %llu appears more than once in the FIFO",
                 static_cast<ULL>(R.Id));
  }
  std::unordered_map<SuperblockId, const CodeCache::Resident *> ByIdLookup;
  for (const CodeCache::Resident &R : Cache.Lookup)
    ByIdLookup.emplace(R.Id, &R);

  for (const CodeCache::Resident &R : Cache.Fifo) {
    const auto It = ByIdLookup.find(R.Id);
    if (It == ByIdLookup.end()) {
      Report.add(AuditRule::CacheResidencyFlagMismatch, ids({R.Id}),
                 "block %llu is in the FIFO but not flagged resident",
                 static_cast<ULL>(R.Id));
      continue;
    }
    if (It->second->Start != R.Start || It->second->Size != R.Size)
      Report.add(AuditRule::CacheLookupStale, ids({R.Id}),
                 "lookup places block %llu at [%llu, +%llu) but the FIFO "
                 "says [%llu, +%llu)",
                 static_cast<ULL>(R.Id), static_cast<ULL>(It->second->Start),
                 static_cast<ULL>(It->second->Size),
                 static_cast<ULL>(R.Start), static_cast<ULL>(R.Size));
  }
  for (const CodeCache::Resident &R : Cache.Lookup)
    if (!ByIdFifo.count(R.Id))
      Report.add(AuditRule::CacheResidencyFlagMismatch, ids({R.Id}),
                 "block %llu is flagged resident but missing from the FIFO",
                 static_cast<ULL>(R.Id));

  // Placement bounds, occupancy, and pairwise overlap.
  uint64_t SumBytes = 0;
  std::vector<std::pair<uint64_t, const CodeCache::Resident *>> ByStart;
  ByStart.reserve(Cache.Fifo.size());
  for (const CodeCache::Resident &R : Cache.Fifo) {
    if (R.Size == 0 || R.end() > Cache.Capacity)
      Report.add(AuditRule::CacheBlockOutOfBounds, ids({R.Id}),
                 "block %llu spans [%llu, %llu) in a %llu-byte cache",
                 static_cast<ULL>(R.Id), static_cast<ULL>(R.Start),
                 static_cast<ULL>(R.end()), static_cast<ULL>(Cache.Capacity));
    SumBytes += R.Size;
    ByStart.emplace_back(R.Start, &R);
  }
  if (SumBytes != Cache.OccupiedBytes)
    Report.add(AuditRule::CacheOccupancyMismatch, {},
               "resident sizes sum to %llu bytes but Occupied is %llu",
               static_cast<ULL>(SumBytes),
               static_cast<ULL>(Cache.OccupiedBytes));
  if (Cache.OccupiedBytes > Cache.Capacity)
    Report.add(AuditRule::CacheOverCapacity, {},
               "occupied %llu bytes exceed capacity %llu",
               static_cast<ULL>(Cache.OccupiedBytes),
               static_cast<ULL>(Cache.Capacity));

  std::sort(ByStart.begin(), ByStart.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  for (size_t I = 1; I < ByStart.size(); ++I) {
    const CodeCache::Resident &Prev = *ByStart[I - 1].second;
    const CodeCache::Resident &Cur = *ByStart[I].second;
    if (Cur.Start < Prev.end())
      Report.add(AuditRule::CacheBlockOverlap, ids({Prev.Id, Cur.Id}),
                 "blocks %llu [%llu, %llu) and %llu [%llu, %llu) overlap",
                 static_cast<ULL>(Prev.Id), static_cast<ULL>(Prev.Start),
                 static_cast<ULL>(Prev.end()), static_cast<ULL>(Cur.Id),
                 static_cast<ULL>(Cur.Start), static_cast<ULL>(Cur.end()));
  }

  // FIFO order: start offsets must be cyclically monotone (at most one
  // wrap point), the unit-order invariant behind oldest-unit flushing.
  size_t Wraps = 0;
  for (size_t I = 1; I < Cache.Fifo.size(); ++I)
    if (Cache.Fifo[I].Start < Cache.Fifo[I - 1].Start)
      ++Wraps;
  if (Wraps > 1)
    Report.add(AuditRule::CacheFifoOrderBroken, {},
               "FIFO start offsets wrap %zu times (max 1 allowed)", Wraps);
}

// --- LinkGraph rules -----------------------------------------------------

void check::checkLinkGraph(const LinkGraphState &Links,
                           const CodeCacheState &Cache,
                           AuditReport &Report) {
  std::unordered_set<SuperblockId> Resident;
  for (const CodeCache::Resident &R : Cache.Lookup)
    Resident.insert(R.Id);

  uint64_t OutTotal = 0;
  // (From, To) -> out-entry count minus in-entry count; every key must
  // balance to zero, or the back-pointer table does not mirror the links.
  std::map<std::pair<SuperblockId, SuperblockId>, int64_t> Mirror;

  for (const LinkGraphState::Node &N : Links.Nodes) {
    const bool IsResident = Resident.count(N.Id) != 0;
    if (!IsResident && (!N.StaticEdges.empty() || !N.Out.empty() ||
                        !N.In.empty())) {
      Report.add(AuditRule::LinkStateLeak, ids({N.Id}),
                 "evicted block %llu still owns %zu static edges, %zu out "
                 "links, %zu in links",
                 static_cast<ULL>(N.Id), N.StaticEdges.size(), N.Out.size(),
                 N.In.size());
    }
    OutTotal += N.Out.size();
    for (SuperblockId To : N.Out) {
      ++Mirror[{N.Id, To}];
      if (IsResident && !Resident.count(To))
        Report.add(AuditRule::LinkEndpointNotResident, ids({N.Id, To}),
                   "link %llu->%llu targets an evicted superblock",
                   static_cast<ULL>(N.Id), static_cast<ULL>(To));
    }
    for (SuperblockId From : N.In) {
      --Mirror[{From, N.Id}];
      if (IsResident && !Resident.count(From))
        Report.add(AuditRule::LinkEndpointNotResident, ids({From, N.Id}),
                   "back-pointer at %llu names evicted source %llu",
                   static_cast<ULL>(N.Id), static_cast<ULL>(From));
    }
  }

  for (const auto &[Edge, Balance] : Mirror) {
    if (Balance > 0)
      Report.add(AuditRule::LinkBackPointerMissing, ids({Edge.first,
                                                         Edge.second}),
                 "out-link %llu->%llu has no back-pointer at the target "
                 "(imbalance %lld)",
                 static_cast<ULL>(Edge.first), static_cast<ULL>(Edge.second),
                 static_cast<long long>(Balance));
    else if (Balance < 0)
      Report.add(AuditRule::LinkBackPointerStale, ids({Edge.first,
                                                       Edge.second}),
                 "back-pointer %llu->%llu has no matching out-link "
                 "(imbalance %lld)",
                 static_cast<ULL>(Edge.first), static_cast<ULL>(Edge.second),
                 static_cast<long long>(Balance));
  }

  if (OutTotal != Links.LiveLinkCount)
    Report.add(AuditRule::LinkCountMismatch, {},
               "out-link lists hold %llu entries but the live count is %llu",
               static_cast<ULL>(OutTotal),
               static_cast<ULL>(Links.LiveLinkCount));

  const auto CountIn = [](const std::vector<SuperblockId> &List,
                          SuperblockId Value) {
    return static_cast<int64_t>(std::count(List.begin(), List.end(), Value));
  };

  // Static edges of residents: materialized when the target is resident,
  // indexed in wants when it is absent — with matching multiplicity.
  for (const LinkGraphState::Node &N : Links.Nodes) {
    if (!Resident.count(N.Id))
      continue;
    // Sorted unique targets: violation order must be deterministic, and
    // hash order is not (determinism.unordered-iteration).
    std::vector<SuperblockId> Targets(N.StaticEdges.begin(),
                                      N.StaticEdges.end());
    Targets.insert(Targets.end(), N.Out.begin(), N.Out.end());
    std::sort(Targets.begin(), Targets.end());
    Targets.erase(std::unique(Targets.begin(), Targets.end()), Targets.end());
    for (SuperblockId To : Targets) {
      const int64_t Edges = CountIn(N.StaticEdges, To);
      const int64_t Materialized = CountIn(N.Out, To);
      if (Resident.count(To)) {
        if (Materialized > Edges)
          Report.add(AuditRule::LinkWithoutStaticEdge, ids({N.Id, To}),
                     "%lld links %llu->%llu but only %lld static edges",
                     static_cast<long long>(Materialized),
                     static_cast<ULL>(N.Id), static_cast<ULL>(To),
                     static_cast<long long>(Edges));
        else if (Materialized < Edges)
          Report.add(AuditRule::LinkStaticEdgeDropped, ids({N.Id, To}),
                     "static edge %llu->%llu resident on both ends but "
                     "only %lld of %lld links materialized",
                     static_cast<ULL>(N.Id), static_cast<ULL>(To),
                     static_cast<long long>(Materialized),
                     static_cast<long long>(Edges));
      } else {
        if (Materialized > 0)
          Report.add(AuditRule::LinkEndpointNotResident, ids({N.Id, To}),
                     "link %llu->%llu targets an evicted superblock",
                     static_cast<ULL>(N.Id), static_cast<ULL>(To));
        const int64_t Waiting =
            To < Links.Nodes.size() ? CountIn(Links.Nodes[To].Wants, N.Id)
                                    : 0;
        if (Waiting < Edges)
          Report.add(AuditRule::LinkStaticEdgeDropped, ids({N.Id, To}),
                     "static edge %llu->%llu (absent target) has %lld of "
                     "%lld wants entries",
                     static_cast<ULL>(N.Id), static_cast<ULL>(To),
                     static_cast<long long>(Waiting),
                     static_cast<long long>(Edges));
      }
    }
  }

  // Wants hygiene: entries only for absent targets, only from resident
  // sources backed by a static edge.
  for (const LinkGraphState::Node &N : Links.Nodes) {
    if (N.Wants.empty())
      continue;
    if (Resident.count(N.Id)) {
      Report.add(AuditRule::LinkWantsStale, ids({N.Id}),
                 "resident block %llu still has %zu undrained wants entries",
                 static_cast<ULL>(N.Id), N.Wants.size());
      continue;
    }
    for (SuperblockId Source : N.Wants) {
      if (!Resident.count(Source)) {
        Report.add(AuditRule::LinkWantsStale, ids({Source, N.Id}),
                   "wants entry for %llu names non-resident source %llu",
                   static_cast<ULL>(N.Id), static_cast<ULL>(Source));
        continue;
      }
      const int64_t Edges =
          Source < Links.Nodes.size()
              ? CountIn(Links.Nodes[Source].StaticEdges, N.Id)
              : 0;
      if (CountIn(N.Wants, Source) > Edges)
        Report.add(AuditRule::LinkWantsStale, ids({Source, N.Id}),
                   "wants entry %llu->%llu exceeds its static edge count",
                   static_cast<ULL>(Source), static_cast<ULL>(N.Id));
    }
  }
}

// --- FreeListCache rules -------------------------------------------------

void check::checkFreeList(const FreeListState &Arena, AuditReport &Report) {
  uint64_t FreeSum = 0;
  for (size_t I = 0; I < Arena.Free.size(); ++I) {
    const FreeListState::Extent &E = Arena.Free[I];
    if (E.Size == 0 || E.Start + E.Size > Arena.Capacity)
      Report.add(AuditRule::FreeListExtentInvalid, ids({E.Start}),
                 "free extent [%llu, +%llu) is empty or out of bounds "
                 "(capacity %llu)",
                 static_cast<ULL>(E.Start), static_cast<ULL>(E.Size),
                 static_cast<ULL>(Arena.Capacity));
    FreeSum += E.Size;
    if (I == 0)
      continue;
    const FreeListState::Extent &Prev = Arena.Free[I - 1];
    if (Prev.Start >= E.Start)
      Report.add(AuditRule::FreeListOutOfOrder, ids({Prev.Start, E.Start}),
                 "free list not address-ordered: [%llu, +%llu) before "
                 "[%llu, +%llu)",
                 static_cast<ULL>(Prev.Start), static_cast<ULL>(Prev.Size),
                 static_cast<ULL>(E.Start), static_cast<ULL>(E.Size));
    else if (Prev.Start + Prev.Size == E.Start)
      Report.add(AuditRule::FreeListUncoalesced, ids({Prev.Start, E.Start}),
                 "adjacent free extents [%llu, +%llu) and [%llu, +%llu) "
                 "not merged",
                 static_cast<ULL>(Prev.Start), static_cast<ULL>(Prev.Size),
                 static_cast<ULL>(E.Start), static_cast<ULL>(E.Size));
  }

  uint64_t AllocSum = 0;
  for (const FreeListState::Alloc &A : Arena.Allocs) {
    if (A.Size == 0 || A.Start + A.Size > Arena.Capacity)
      Report.add(AuditRule::FreeListExtentInvalid, ids({A.Id}),
                 "allocation for block %llu [%llu, +%llu) is empty or out "
                 "of bounds",
                 static_cast<ULL>(A.Id), static_cast<ULL>(A.Start),
                 static_cast<ULL>(A.Size));
    AllocSum += A.Size;
  }

  if (AllocSum != Arena.OccupiedBytes)
    Report.add(AuditRule::FreeListOccupancyMismatch, {},
               "allocations sum to %llu bytes but Occupied is %llu",
               static_cast<ULL>(AllocSum),
               static_cast<ULL>(Arena.OccupiedBytes));
  if (FreeSum + Arena.OccupiedBytes != Arena.Capacity)
    Report.add(AuditRule::FreeListOccupancyMismatch, {},
               "free %llu + occupied %llu != capacity %llu bytes",
               static_cast<ULL>(FreeSum),
               static_cast<ULL>(Arena.OccupiedBytes),
               static_cast<ULL>(Arena.Capacity));

  // Allocations and holes together must tile [0, Capacity) exactly: any
  // gap is leaked arena, any double-cover is overlap.
  struct Piece {
    uint64_t Start, End;
    uint64_t Tag; ///< Block id, or the extent start for holes.
    bool IsHole;
  };
  std::vector<Piece> Pieces;
  Pieces.reserve(Arena.Free.size() + Arena.Allocs.size());
  for (const FreeListState::Extent &E : Arena.Free)
    Pieces.push_back(Piece{E.Start, E.Start + E.Size, E.Start, true});
  for (const FreeListState::Alloc &A : Arena.Allocs)
    Pieces.push_back(Piece{A.Start, A.Start + A.Size, A.Id, false});
  std::sort(Pieces.begin(), Pieces.end(),
            [](const Piece &A, const Piece &B) {
              return A.Start != B.Start ? A.Start < B.Start : A.End < B.End;
            });
  uint64_t Cursor = 0;
  for (const Piece &P : Pieces) {
    if (P.Start < Cursor)
      Report.add(AuditRule::FreeListOverlap, ids({P.Tag}),
                 "%s [%llu, %llu) overlaps the previous extent ending at "
                 "%llu",
                 P.IsHole ? "free extent" : "allocation",
                 static_cast<ULL>(P.Start), static_cast<ULL>(P.End),
                 static_cast<ULL>(Cursor));
    else if (P.Start > Cursor)
      Report.add(AuditRule::FreeListArenaLeak, ids({Cursor}),
                 "arena bytes [%llu, %llu) belong to neither an allocation "
                 "nor a free extent",
                 static_cast<ULL>(Cursor), static_cast<ULL>(P.Start));
    Cursor = std::max(Cursor, P.End);
  }
  if (Cursor < Arena.Capacity)
    Report.add(AuditRule::FreeListArenaLeak, ids({Cursor}),
               "arena tail [%llu, %llu) belongs to neither an allocation "
               "nor a free extent",
               static_cast<ULL>(Cursor), static_cast<ULL>(Arena.Capacity));

  // LRU list must hold exactly the resident ids, once each.
  std::unordered_map<SuperblockId, size_t> LruCount;
  for (SuperblockId Id : Arena.LruOrder)
    ++LruCount[Id];
  std::unordered_set<SuperblockId> ResidentIds;
  for (const FreeListState::Alloc &A : Arena.Allocs) {
    ResidentIds.insert(A.Id);
    const auto It = LruCount.find(A.Id);
    if (It == LruCount.end())
      Report.add(AuditRule::FreeListLruMismatch, ids({A.Id}),
                 "resident block %llu is missing from the LRU list",
                 static_cast<ULL>(A.Id));
    else if (It->second != 1)
      Report.add(AuditRule::FreeListLruMismatch, ids({A.Id}),
                 "block %llu appears %zu times in the LRU list",
                 static_cast<ULL>(A.Id), It->second);
  }
  // Report stray LRU entries in sorted id order, not hash order: audit
  // reports feed golden tests (determinism.unordered-iteration).
  std::vector<SuperblockId> StrayLru;
  // ccsim-lint: allow(determinism.unordered-iteration) -- ids are
  // collected into StrayLru and sorted before any report is emitted
  for (const auto &[Id, Count] : LruCount)
    if (!ResidentIds.count(Id))
      StrayLru.push_back(Id);
  std::sort(StrayLru.begin(), StrayLru.end());
  for (SuperblockId Id : StrayLru)
    Report.add(AuditRule::FreeListLruMismatch, ids({Id}),
               "LRU entry %llu is not resident", static_cast<ULL>(Id));
}

// --- Generational rules --------------------------------------------------

void check::checkGenerational(const CodeCacheState &Nursery,
                              const CodeCacheState &Tenured,
                              AuditReport &Report) {
  checkCodeCache(Nursery, Report);
  checkCodeCache(Tenured, Report);
  std::unordered_set<SuperblockId> InNursery;
  for (const CodeCache::Resident &R : Nursery.Lookup)
    InNursery.insert(R.Id);
  for (const CodeCache::Resident &R : Tenured.Lookup)
    if (InNursery.count(R.Id))
      Report.add(AuditRule::GenerationalDualResidency, ids({R.Id}),
                 "block %llu is resident in both nursery and tenured",
                 static_cast<ULL>(R.Id));
}

// --- CacheStats reconciliation -------------------------------------------

void check::checkStats(const StatsState &State, AuditReport &Report) {
  const CacheStats &S = State.Stats;
  if (S.Hits + S.Misses != S.Accesses)
    Report.add(AuditRule::StatsAccessSplitMismatch, {},
               "hits %llu + misses %llu != accesses %llu",
               static_cast<ULL>(S.Hits), static_cast<ULL>(S.Misses),
               static_cast<ULL>(S.Accesses));
  if (S.ColdMisses + S.CapacityMisses != S.Misses)
    Report.add(AuditRule::StatsAccessSplitMismatch, {},
               "cold %llu + capacity %llu misses != misses %llu",
               static_cast<ULL>(S.ColdMisses),
               static_cast<ULL>(S.CapacityMisses),
               static_cast<ULL>(S.Misses));
  if (S.Inserts + S.TooBigMisses != S.Misses)
    Report.add(AuditRule::StatsAccessSplitMismatch, {},
               "inserts %llu + too-big %llu != misses %llu",
               static_cast<ULL>(S.Inserts),
               static_cast<ULL>(S.TooBigMisses),
               static_cast<ULL>(S.Misses));

  if (S.Inserts != S.EvictedBlocks + State.ResidentCount)
    Report.add(AuditRule::StatsResidencyMismatch, {},
               "inserts %llu != evicted %llu + resident %llu blocks",
               static_cast<ULL>(S.Inserts),
               static_cast<ULL>(S.EvictedBlocks),
               static_cast<ULL>(State.ResidentCount));
  if (S.InsertedBytes != S.EvictedBytes + State.OccupiedBytes)
    Report.add(AuditRule::StatsByteAccountingMismatch, {},
               "inserted %llu != evicted %llu + occupied %llu bytes",
               static_cast<ULL>(S.InsertedBytes),
               static_cast<ULL>(S.EvictedBytes),
               static_cast<ULL>(State.OccupiedBytes));

  if (S.EvictionInvocations > S.EvictedBlocks)
    Report.add(AuditRule::StatsEvictionAccountingMismatch, {},
               "%llu eviction invocations but only %llu evicted blocks",
               static_cast<ULL>(S.EvictionInvocations),
               static_cast<ULL>(S.EvictedBlocks));
  if (S.UnlinkOperations > S.EvictedBlocks)
    Report.add(AuditRule::StatsEvictionAccountingMismatch, {},
               "%llu unlink operations exceed %llu evicted blocks",
               static_cast<ULL>(S.UnlinkOperations),
               static_cast<ULL>(S.EvictedBlocks));
  if (S.UnlinkedLinks > S.LinksDestroyed)
    Report.add(AuditRule::StatsEvictionAccountingMismatch, {},
               "%llu repaired links exceed %llu destroyed links",
               static_cast<ULL>(S.UnlinkedLinks),
               static_cast<ULL>(S.LinksDestroyed));

  if (State.ChainingEnabled) {
    if (S.LinksCreated != S.LinksDestroyed + State.LiveLinks)
      Report.add(AuditRule::StatsLinkAccountingMismatch, {},
                 "created %llu != destroyed %llu + live %llu links",
                 static_cast<ULL>(S.LinksCreated),
                 static_cast<ULL>(S.LinksDestroyed),
                 static_cast<ULL>(State.LiveLinks));
    if (S.InterUnitLinksCreated > S.LinksCreated ||
        S.SelfLinksCreated > S.LinksCreated)
      Report.add(AuditRule::StatsLinkAccountingMismatch, {},
                 "inter-unit %llu / self %llu exceed created links %llu",
                 static_cast<ULL>(S.InterUnitLinksCreated),
                 static_cast<ULL>(S.SelfLinksCreated),
                 static_cast<ULL>(S.LinksCreated));
    if (State.UsesBackPointerTable &&
        State.BackPointerBytes > S.BackPointerBytesPeak)
      Report.add(AuditRule::StatsBackPointerPeakLow, {},
                 "live back-pointer table %llu bytes exceeds recorded peak "
                 "%llu",
                 static_cast<ULL>(State.BackPointerBytes),
                 static_cast<ULL>(S.BackPointerBytesPeak));
  }
}

// --- DispatchTable rules -------------------------------------------------

void check::checkDispatchTable(const DispatchTableState &Table,
                               const CodeCacheState &Cache,
                               AuditReport &Report) {
  std::unordered_set<SuperblockId> Reachable;
  for (const DispatchTableState::Entry &E : Table.Entries) {
    if (!Cache.isResident(E.Id)) {
      Report.add(AuditRule::DispatchEntryNotResident, ids({E.PC, E.Id}),
                 "table entry PC %llu -> fragment %llu, which is not "
                 "resident",
                 static_cast<ULL>(E.PC), static_cast<ULL>(E.Id));
      continue;
    }
    if (E.Id >= Table.PCById.size() || Table.PCById[E.Id] != E.PC) {
      Report.add(AuditRule::DispatchEntryStale, ids({E.PC, E.Id}),
                 "table entry PC %llu -> fragment %llu whose entry PC is "
                 "%llu",
                 static_cast<ULL>(E.PC), static_cast<ULL>(E.Id),
                 E.Id < Table.PCById.size()
                     ? static_cast<ULL>(Table.PCById[E.Id])
                     : static_cast<ULL>(0));
      continue;
    }
    Reachable.insert(E.Id);
  }
  for (const CodeCache::Resident &R : Cache.Lookup)
    if (!Reachable.count(R.Id))
      Report.add(AuditRule::DispatchResidentUnreachable, ids({R.Id}),
                 "resident fragment %llu has no table entry at its entry "
                 "PC %llu",
                 static_cast<ULL>(R.Id),
                 R.Id < Table.PCById.size()
                     ? static_cast<ULL>(Table.PCById[R.Id])
                     : static_cast<ULL>(0));
  if (Table.Entries.size() != Cache.Lookup.size())
    Report.add(AuditRule::DispatchSizeMismatch, {},
               "%zu live table entries for %zu resident fragments",
               Table.Entries.size(), Cache.Lookup.size());
}

void check::checkSharedIndex(const SharedIndexState &Index,
                             const CodeCacheState &Cache,
                             AuditReport &Report) {
  std::unordered_map<SuperblockId, uint64_t> StartById;
  for (const CodeCache::Resident &R : Cache.Lookup)
    StartById[R.Id] = R.Start;
  std::unordered_set<SuperblockId> Indexed;
  const uint64_t Width = std::max<uint64_t>(1, Index.FenceBytes);
  for (const SharedIndexEntry &E : Index.Entries) {
    Indexed.insert(E.Id);
    const auto It = StartById.find(E.Id);
    if (It == StartById.end()) {
      Report.add(AuditRule::SharedIndexStaleEntry, ids({E.Id, E.Region}),
                 "index entry for block %llu (region %llu), which is not "
                 "resident",
                 static_cast<ULL>(E.Id), static_cast<ULL>(E.Region));
      continue;
    }
    uint64_t Expected = It->second / Width;
    if (Index.Fences > 0 && Expected >= Index.Fences)
      Expected = Index.Fences - 1;
    if (E.Region != Expected)
      Report.add(AuditRule::SharedIndexRegionMismatch,
                 ids({E.Id, E.Region}),
                 "block %llu indexed in fence region %llu but placed at "
                 "offset %llu (region %llu)",
                 static_cast<ULL>(E.Id), static_cast<ULL>(E.Region),
                 static_cast<ULL>(It->second), static_cast<ULL>(Expected));
  }
  for (const CodeCache::Resident &R : Cache.Lookup)
    if (!Indexed.count(R.Id))
      Report.add(AuditRule::SharedIndexMissingEntry, ids({R.Id}),
                 "resident block %llu has no sharded-index entry (a "
                 "concurrent hit would miss spuriously)",
                 static_cast<ULL>(R.Id));
}

void check::checkContentIndex(const ContentIndexState &Index,
                              const std::vector<CodeCacheState> &Caches,
                              const CacheStats &Merged,
                              AuditReport &Report) {
  const auto ResidentAnywhere = [&Caches](SuperblockId Id) {
    return std::any_of(
        Caches.begin(), Caches.end(),
        [Id](const CodeCacheState &C) { return C.isResident(Id); });
  };
  uint64_t LinkSum = 0;
  for (const ContentIndexState::Entry &E : Index.Entries) {
    LinkSum += E.Links.size();
    if (E.RefCount != 1 + E.Links.size())
      Report.add(AuditRule::ShareRefCountMismatch,
                 ids({E.Key, E.Representative}),
                 "entry key %llu (representative %llu) holds refcount "
                 "%llu for %zu live links",
                 static_cast<ULL>(E.Key), static_cast<ULL>(E.Representative),
                 static_cast<ULL>(E.RefCount), E.Links.size());
    if (!ResidentAnywhere(E.Representative))
      Report.add(AuditRule::ShareOrphanEntry,
                 ids({E.Key, E.Representative}),
                 "representative %llu of key %llu is resident in none of "
                 "the %zu spanned caches (linked tenants would execute "
                 "freed code)",
                 static_cast<ULL>(E.Representative), static_cast<ULL>(E.Key),
                 Caches.size());
    for (const SharedContentIndex::Link &L : E.Links)
      if (ResidentAnywhere(L.Alias))
        Report.add(AuditRule::ShareAliasResident, ids({E.Key, L.Alias}),
                   "alias %llu (tenant %llu) of key %llu is itself "
                   "resident — a duplicate copy sharing should have "
                   "folded",
                   static_cast<ULL>(L.Alias), static_cast<ULL>(L.Tenant),
                   static_cast<ULL>(E.Key));
  }
  if (LinkSum != Index.LiveLinks)
    Report.add(AuditRule::ShareMirrorMismatch, {},
               "live-link counter says %llu but entry link sets hold %llu",
               static_cast<ULL>(Index.LiveLinks), static_cast<ULL>(LinkSum));
  // Conservation against the merged stats: every link ever created was a
  // shared install, every link ever drained an unshare unlink.
  if (Merged.SharingActive &&
      Merged.SharedInstalls != Merged.UnshareUnlinks + Index.LiveLinks)
    Report.add(AuditRule::ShareStatsConservation, {},
               "%llu shared installs - %llu unshare unlinks != %llu live "
               "links",
               static_cast<ULL>(Merged.SharedInstalls),
               static_cast<ULL>(Merged.UnshareUnlinks),
               static_cast<ULL>(Index.LiveLinks));
}

// --- Facade --------------------------------------------------------------

AuditReport CacheAuditor::auditCache(const CodeCache &Cache) const {
  AuditReport Report;
  checkCodeCache(captureCodeCache(Cache), Report);
  return Report;
}

AuditReport CacheAuditor::auditLinks(const LinkGraph &Links,
                                     const CodeCache &Cache) const {
  AuditReport Report;
  checkLinkGraph(captureLinkGraph(Links), captureCodeCache(Cache), Report);
  return Report;
}

AuditReport CacheAuditor::auditFreeList(const FreeListCache &Cache) const {
  AuditReport Report;
  checkFreeList(captureFreeList(Cache), Report);
  return Report;
}

AuditReport
CacheAuditor::auditGenerational(const GenerationalCacheManager &Gen) const {
  AuditReport Report;
  checkGenerational(captureCodeCache(Gen.nursery()),
                    captureCodeCache(Gen.tenured()), Report);
  return Report;
}

AuditReport CacheAuditor::auditManager(const CacheManager &Manager) const {
  AuditReport Report;
  const CodeCacheState Cache = captureCodeCache(Manager.cache());
  checkCodeCache(Cache, Report);
  if (Manager.config().EnableChaining)
    checkLinkGraph(captureLinkGraph(Manager.links()), Cache, Report);
  checkStats(captureStats(Manager), Report);
  return Report;
}

AuditReport check::auditSharedEngine(const SharedCacheEngine &Engine) {
  AuditReport Report;
  const CacheEngine &Inner = Engine.engineForAudit();
  const CodeCacheState Cache = captureCodeCache(Inner.cache());
  checkCodeCache(Cache, Report);
  if (Inner.config().EnableChaining)
    checkLinkGraph(captureLinkGraph(Inner.links()), Cache, Report);
  StatsState Stats = captureStats(Inner);
  if (Engine.mode() == ShareMode::Concurrent && Stats.Stats.Accesses == 0) {
    // Mid-run deferred accounting: Accesses/Hits live outside the engine
    // until settle(). Patch the snapshot to the provisional totals so
    // the access-split identity (Hits + Misses == Accesses) is checked
    // against what actually happened so far.
    Stats.Stats.Hits += Engine.provisionalHits();
    Stats.Stats.Accesses = Stats.Stats.Misses + Stats.Stats.Hits;
  }
  checkStats(Stats, Report);
  checkSharedIndex(Engine.indexSnapshot(), Cache, Report);
  return Report;
}

AuditReport CacheAuditor::auditTranslator(const Translator &T) const {
  AuditReport Report;
  // Superblock tier: full manager audit plus its dispatch table.
  const CodeCacheState Main = captureCodeCache(T.cache());
  checkCodeCache(Main, Report);
  if (T.config().EnableChaining)
    checkLinkGraph(captureLinkGraph(T.links()), Main, Report);
  checkStats(captureStats(T.engine()), Report);
  checkDispatchTable(captureDispatchTable(T, /*BasicBlockTier=*/false), Main,
                     Report);
  // Basic-block tier (all-zero and trivially clean when unused; chaining
  // is always off there).
  const CodeCacheState BB = captureCodeCache(T.basicBlockCache());
  checkCodeCache(BB, Report);
  checkStats(captureStats(T.basicBlockEngine()), Report);
  checkDispatchTable(captureDispatchTable(T, /*BasicBlockTier=*/true), BB,
                     Report);
  return Report;
}
