//===- check/CacheAuditor.h - Deep cross-structure invariant audits -------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive consistency validation of the cache data structures. Where
/// the in-class checkInvariants() predicates answer yes/no, the auditor
/// explains: every broken invariant becomes an AuditViolation with a
/// stable rule id, offending ids, and a fix hint.
///
/// The auditor is split into two layers so corruption can be tested
/// without mutating encapsulated live structures:
///
///   capture*()  extract a plain-data snapshot (State struct) from a live
///               structure through its public introspection API;
///   check*()    run the rules over a snapshot (tests forge corrupted
///               snapshots and assert the exact rule id reported).
///
/// audit*() composes the two for live structures, and auditManager() adds
/// the cross-structure reconciliation: links against residency (section
/// 4.3 back-pointer mirroring), and CacheStats counters against observed
/// structure (inserts - evictions = residents, byte accounting exact).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CHECK_CACHEAUDITOR_H
#define CCSIM_CHECK_CACHEAUDITOR_H

#include "check/AuditReport.h"
#include "core/CacheManager.h"
#include "core/CodeCache.h"
#include "core/FreeListCache.h"
#include "core/GenerationalCache.h"
#include "core/LinkGraph.h"
#include "core/SharedCacheEngine.h"
#include "core/SharedContentIndex.h"

#include <cstdint>
#include <vector>

namespace ccsim {
class Translator;
} // namespace ccsim

namespace ccsim::check {

/// Snapshot of a CodeCache: the FIFO view and the per-id lookup view are
/// captured separately so the auditor can cross-check them.
struct CodeCacheState {
  uint64_t Capacity = 0;
  uint64_t OccupiedBytes = 0;
  std::vector<CodeCache::Resident> Fifo;   ///< Oldest-first placement log.
  std::vector<CodeCache::Resident> Lookup; ///< Flagged residents, by id.

  bool isResident(SuperblockId Id) const;
};

/// Snapshot of a LinkGraph: per-id adjacency lists plus the live count.
struct LinkGraphState {
  uint64_t LiveLinkCount = 0;
  struct Node {
    SuperblockId Id = 0;
    std::vector<SuperblockId> StaticEdges;
    std::vector<SuperblockId> Out;
    std::vector<SuperblockId> In;
    std::vector<SuperblockId> Wants; ///< Sources waiting for Id.
  };
  std::vector<Node> Nodes; ///< One entry per id in the dense tables.
};

/// Snapshot of a FreeListCache arena.
struct FreeListState {
  uint64_t Capacity = 0;
  uint64_t OccupiedBytes = 0;
  struct Extent {
    uint64_t Start = 0;
    uint64_t Size = 0;
  };
  struct Alloc {
    SuperblockId Id = 0;
    uint64_t Start = 0;
    uint32_t Size = 0;
  };
  std::vector<Extent> Free;   ///< In free-list order.
  std::vector<Alloc> Allocs;  ///< Resident slots, by id.
  std::vector<SuperblockId> LruOrder; ///< Least recently used first.
};

/// Snapshot of a DispatchTable (runtime tier) plus the PC-per-id map it
/// must agree with. Entries are resolved to fragment ids at capture time
/// so the rules need no access to the translator's slot pool.
struct DispatchTableState {
  struct Entry {
    uint32_t PC = 0;
    SuperblockId Id = 0;
  };
  std::vector<Entry> Entries;   ///< Live entries, in slot order.
  std::vector<uint32_t> PCById; ///< Entry PC per fragment id.
};

/// Snapshot of a SharedContentIndex (cross-tenant content sharing). One
/// index may span several caches, so the share.* rules take a vector of
/// CodeCacheState — residency questions are "resident anywhere".
struct ContentIndexState {
  struct Entry {
    uint64_t Key = 0;
    SuperblockId Representative = InvalidSuperblockId;
    uint32_t SizeBytes = 0;
    TenantId Owner = 0;
    uint64_t RefCount = 0;
    std::vector<SharedContentIndex::Link> Links;
  };
  std::vector<Entry> Entries; ///< Key-ascending.
  uint64_t LiveLinks = 0;     ///< The index's running link counter.
};

/// CacheStats counters paired with the structure observations they must
/// reconcile against.
struct StatsState {
  CacheStats Stats;
  uint64_t ResidentCount = 0;
  uint64_t OccupiedBytes = 0;
  uint64_t LiveLinks = 0;
  uint64_t BackPointerBytes = 0;
  bool ChainingEnabled = false;
  bool UsesBackPointerTable = false;
};

// --- Snapshot extraction from live structures ---------------------------

CodeCacheState captureCodeCache(const CodeCache &Cache);
LinkGraphState captureLinkGraph(const LinkGraph &Links);
FreeListState captureFreeList(const FreeListCache &Cache);
StatsState captureStats(const CacheManager &Manager);
DispatchTableState captureDispatchTable(const Translator &T,
                                        bool BasicBlockTier);
ContentIndexState captureContentIndex(const SharedContentIndex &Index);

// --- Rule evaluation over snapshots -------------------------------------

void checkCodeCache(const CodeCacheState &Cache, AuditReport &Report);
void checkLinkGraph(const LinkGraphState &Links, const CodeCacheState &Cache,
                    AuditReport &Report);
void checkFreeList(const FreeListState &Arena, AuditReport &Report);
void checkGenerational(const CodeCacheState &Nursery,
                       const CodeCacheState &Tenured, AuditReport &Report);
void checkStats(const StatsState &State, AuditReport &Report);
void checkDispatchTable(const DispatchTableState &Table,
                        const CodeCacheState &Cache, AuditReport &Report);
void checkSharedIndex(const SharedIndexState &Index,
                      const CodeCacheState &Cache, AuditReport &Report);

/// The share.* family: the content index against every cache it spans
/// plus the merged stats of those caches. \p Merged must have
/// SharingActive set for the stats-conservation rule to apply (the other
/// rules are structural and always run).
void checkContentIndex(const ContentIndexState &Index,
                       const std::vector<CodeCacheState> &Caches,
                       const CacheStats &Merged, AuditReport &Report);

/// Full cross-structure audit of a quiescent SharedCacheEngine: the
/// auditManager rule set over the inner engine -- with the deferred
/// Accesses/Hits counters patched to their provisional totals so the
/// conservation identities hold mid-run -- plus the shared.* family
/// tying the sharded residency index to CodeCache placement. Only sound
/// inside SharedCacheEngine::quiesce() (every lock held, no access in
/// flight); the runners call it exactly there.
AuditReport auditSharedEngine(const SharedCacheEngine &Engine);

/// Facade running capture + check over live structures. Stateless; the
/// free functions above are its building blocks and the testing surface.
class CacheAuditor {
public:
  /// Placement invariants of one circular-buffer cache.
  AuditReport auditCache(const CodeCache &Cache) const;

  /// Chaining invariants of \p Links against residency in \p Cache:
  /// back-pointer mirroring, no link into evicted blocks, wants index
  /// completeness (paper section 4.3 / Figure 13).
  AuditReport auditLinks(const LinkGraph &Links,
                         const CodeCache &Cache) const;

  /// Arena invariants of the section 3.3 free-list cache: extents tile
  /// the arena with no overlap or leak, address order, coalescing, LRU
  /// list matches residency.
  AuditReport auditFreeList(const FreeListCache &Cache) const;

  /// Generation exclusivity plus per-generation placement invariants.
  AuditReport auditGenerational(const GenerationalCacheManager &Gen) const;

  /// Full cross-structure audit of a CacheManager: placement, chaining,
  /// and stats reconciliation (inserts - evictions = residents, byte
  /// accounting exact, link creation/destruction balance).
  AuditReport auditManager(const CacheManager &Manager) const;

  /// Full cross-structure audit of a running Translator: auditManager
  /// over both tier engines plus the dispatch.* family tying each
  /// DispatchTable to its tier's residency (Figure 1's hash table must
  /// mirror the code cache exactly).
  AuditReport auditTranslator(const Translator &T) const;
};

} // namespace ccsim::check

#endif // CCSIM_CHECK_CACHEAUDITOR_H
