//===- check/AuditReport.h - Structural audit findings --------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result type of the structural invariant auditor (check/CacheAuditor).
/// Every violated invariant is reported as an AuditViolation carrying a
/// stable machine-readable rule id, a severity, the offending superblock /
/// byte ids, a human-readable message with the observed values, and a fix
/// hint pointing at the code that normally maintains the invariant.
///
/// Rule ids are part of the testing contract: the seeded-corruption tests
/// in tests/check assert the exact rule a given corruption trips, so ids
/// must stay stable once released.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CHECK_AUDITREPORT_H
#define CCSIM_CHECK_AUDITREPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim::check {

/// Every structural invariant the auditor can flag, grouped by the
/// structure it protects. See DESIGN.md section 12 for the paper mapping
/// (back-pointer mirroring is Eq. 4 / section 4.3; unit order is the
/// FIFO-of-units contract behind Figures 6-8).
enum class AuditRule : uint8_t {
  // CodeCache: circular-buffer placement.
  CacheResidencyFlagMismatch, ///< Flag table and FIFO disagree on who is
                              ///< resident (or the FIFO holds duplicates).
  CacheLookupStale,           ///< StartById/SizeById disagree with the
                              ///< FIFO entry for a resident block.
  CacheBlockOutOfBounds,      ///< Zero-size block or placement past the
                              ///< end of the buffer (blocks never wrap).
  CacheBlockOverlap,          ///< Two resident placements overlap.
  CacheOccupancyMismatch,     ///< Sum of resident sizes != occupied bytes.
  CacheOverCapacity,          ///< Occupied bytes exceed the capacity.
  CacheFifoOrderBroken,       ///< FIFO start offsets are not cyclically
                              ///< monotone (more than one wrap point).

  // LinkGraph: chaining and the back-pointer table (paper section 4.3).
  LinkEndpointNotResident,    ///< A materialized link endpoint was evicted.
  LinkBackPointerMissing,     ///< Out-link with no mirroring back-pointer.
  LinkBackPointerStale,       ///< Back-pointer with no mirroring out-link
                              ///< (a dangling back-pointer).
  LinkCountMismatch,          ///< Materialized-link count != list totals.
  LinkWithoutStaticEdge,      ///< Link with no static CFG edge behind it.
  LinkStaticEdgeDropped,      ///< Resident->resident static edge that is
                              ///< not materialized, or resident->absent
                              ///< edge missing from the wants index.
  LinkWantsStale,             ///< Wants entry for a resident target or
                              ///< from a non-resident source.
  LinkStateLeak,              ///< Evicted block still owns link lists.

  // FreeListCache: first-fit arena (paper section 3.3 study).
  FreeListExtentInvalid,      ///< Zero-size or out-of-bounds free extent.
  FreeListOutOfOrder,         ///< Free list not address-ordered.
  FreeListUncoalesced,        ///< Adjacent free extents not merged.
  FreeListOverlap,            ///< Free extents / allocations overlap.
  FreeListArenaLeak,          ///< Allocations + holes do not tile the
                              ///< arena (lost or duplicated bytes).
  FreeListOccupancyMismatch,  ///< Byte accounting vs. extents disagrees.
  FreeListLruMismatch,        ///< LRU list does not match residency.

  // GenerationalCacheManager.
  GenerationalDualResidency,  ///< Block resident in nursery AND tenured.

  // CacheStats reconciliation against the observed structures.
  StatsAccessSplitMismatch,     ///< Access/miss counter identities broken.
  StatsResidencyMismatch,       ///< Inserts - evictions != residents.
  StatsByteAccountingMismatch,  ///< Inserted - evicted bytes != occupied.
  StatsLinkAccountingMismatch,  ///< Created - destroyed != live links.
  StatsEvictionAccountingMismatch, ///< Eviction counter identities broken.
  StatsBackPointerPeakLow,      ///< Live back-pointer table exceeds the
                                ///< recorded peak.

  // DispatchTable vs. code cache (execution-driven runs; Figure 1's hash
  // table must mirror residency exactly).
  DispatchEntryNotResident,   ///< Table entry whose fragment was evicted.
  DispatchEntryStale,         ///< Table entry whose PC is not the entry PC
                              ///< of the fragment it points at.
  DispatchResidentUnreachable,///< Resident fragment with no table entry at
                              ///< its entry PC.
  DispatchSizeMismatch,       ///< Live-entry count != resident count.

  // Thread-shared engine: the sharded residency index against the code
  // cache, checked at eviction-fence quiesce points. A stale entry would
  // let a concurrent fast-path hit land on evicted code.
  SharedIndexStaleEntry,      ///< Index entry for a non-resident block.
  SharedIndexMissingEntry,    ///< Resident block absent from the index.
  SharedIndexRegionMismatch,  ///< Entry's eviction-fence region disagrees
                              ///< with the block's actual placement.

  // Cross-tenant content sharing: the SharedContentIndex against every
  // cache it spans plus the merged stats (DESIGN.md section 19). A
  // violated rule here means tenants could execute freed shared code or
  // hold duplicate copies sharing was supposed to fold.
  ShareRefCountMismatch,      ///< Entry refcount != 1 + its live links.
  ShareOrphanEntry,           ///< Representative not resident in any of
                              ///< the spanned caches.
  ShareAliasResident,         ///< A linked alias is itself resident — a
                              ///< duplicate copy that defeats sharing.
  ShareMirrorMismatch,        ///< The index's live-link counter disagrees
                              ///< with the sum of entry link sets.
  ShareStatsConservation,     ///< SharedInstalls - UnshareUnlinks in the
                              ///< merged stats != live links.
};

/// How bad a violation is. Everything the auditor currently checks is a
/// hard correctness invariant (Error); Warning is reserved for future
/// heuristic rules so reports can carry both without a format change.
enum class AuditSeverity : uint8_t { Warning, Error };

/// Stable dotted string id for \p Rule, e.g. "link.backpointer-stale".
const char *ruleId(AuditRule Rule);

/// One-line hint naming the code that normally maintains the invariant.
const char *ruleFixHint(AuditRule Rule);

/// Severity classification of \p Rule.
AuditSeverity ruleSeverity(AuditRule Rule);

/// One violated invariant.
struct AuditViolation {
  AuditRule Rule;
  AuditSeverity Severity;
  std::vector<uint64_t> OffendingIds; ///< Superblock ids (or byte offsets
                                      ///< for arena rules) involved.
  std::string Message;                ///< Formatted observed-value detail.

  /// "rule-id [ids...]: message (hint: ...)".
  std::string render() const;
};

/// Findings of one audit pass. Empty means every checked invariant held.
class AuditReport {
public:
  /// Appends a violation; printf-style \p Format for the detail message.
#if defined(__GNUC__) || defined(__clang__)
  // Parameter 1 is the implicit this; Format is 4, varargs start at 5.
  __attribute__((format(printf, 4, 5)))
#endif
  void
  add(AuditRule Rule, const std::vector<uint64_t> &OffendingIds,
      const char *Format, ...);

  void merge(const AuditReport &Other);

  bool clean() const { return Findings.empty(); }
  size_t size() const { return Findings.size(); }
  const std::vector<AuditViolation> &violations() const { return Findings; }

  /// True if any finding carries \p Rule.
  bool has(AuditRule Rule) const;

  /// Number of findings carrying \p Rule.
  size_t countOf(AuditRule Rule) const;

  /// Multi-line human-readable report ("" when clean).
  std::string render() const;

private:
  std::vector<AuditViolation> Findings;
};

} // namespace ccsim::check

#endif // CCSIM_CHECK_AUDITREPORT_H
