//===- check/Paranoia.cpp - Arming the deep auditor on live managers ------===//

#include "check/Paranoia.h"

#include "check/CacheAuditor.h"

#include <cstdio>
#include <cstdlib>

using namespace ccsim;
using namespace ccsim::check;

void check::armAuditor(CacheManager &Manager, ParanoiaOptions Options) {
  Manager.setAuditLevel(Options.Level);
  Manager.setAuditHook(
      [Options](const CacheManager &M, const char *Where) {
        const AuditReport Report = CacheAuditor().auditManager(M);
        if (Report.clean())
          return;
        if (Options.OnViolation) {
          Options.OnViolation(Report, Where);
          return;
        }
        std::fprintf(stderr,
                     "ccsim paranoid audit failed after %s "
                     "(%zu violation(s)):\n%s",
                     Where, Report.size(), Report.render().c_str());
        if (Options.AbortOnViolation)
          std::abort();
      });
}
