//===- check/Paranoia.cpp - Arming the deep auditor on live managers ------===//

#include "check/Paranoia.h"

#include "check/CacheAuditor.h"
#include "runtime/Translator.h"

#include <cstdio>
#include <cstdlib>

using namespace ccsim;
using namespace ccsim::check;

namespace {

/// Shared report handling: OnViolation if set, else print and abort.
void handleReport(const AuditReport &Report, const char *Where,
                  const ParanoiaOptions &Options) {
  if (Report.clean())
    return;
  if (Options.OnViolation) {
    Options.OnViolation(Report, Where);
    return;
  }
  std::fprintf(stderr,
               "ccsim paranoid audit failed after %s "
               "(%zu violation(s)):\n%s",
               Where, Report.size(), Report.render().c_str());
  if (Options.AbortOnViolation)
    std::abort();
}

} // namespace

void check::armAuditor(CacheManager &Manager, ParanoiaOptions Options) {
  Manager.setAuditLevel(Options.Level);
  Manager.setAuditHook(
      [Options](const CacheManager &M, const char *Where) {
        handleReport(CacheAuditor().auditManager(M), Where, Options);
      });
}

void check::armSharedTenancyAuditors(
    const std::vector<CacheManager *> &Managers,
    const SharedContentIndex &Index, ParanoiaOptions Options) {
  // Each hook captures the whole fleet by value (a vector of stable
  // pointers): sharing couples the managers through the index, so every
  // audit must see all caches at once.
  for (CacheManager *Manager : Managers) {
    Manager->setAuditLevel(Options.Level);
    Manager->setAuditHook([Options, Managers, &Index](const CacheManager &M,
                                                      const char *Where) {
      AuditReport Report = CacheAuditor().auditManager(M);
      std::vector<CodeCacheState> Caches;
      Caches.reserve(Managers.size());
      CacheStats Merged;
      for (const CacheManager *Peer : Managers) {
        Caches.push_back(captureCodeCache(Peer->cache()));
        Merged.merge(Peer->stats());
      }
      checkContentIndex(captureContentIndex(Index), Caches, Merged, Report);
      handleReport(Report, Where, Options);
    });
  }
}

void check::armAuditor(Translator &T, ParanoiaOptions Options) {
  // One hook audits the whole translator regardless of which tier engine
  // triggered it; the engine argument is ignored on purpose.
  const auto Hook = [Options, &T](const CacheEngine &, const char *Where) {
    handleReport(CacheAuditor().auditTranslator(T), Where, Options);
  };
  T.engine().setAuditLevel(Options.Level);
  T.engine().setAuditHook(Hook);
  T.basicBlockEngine().setAuditLevel(Options.Level);
  T.basicBlockEngine().setAuditHook(Hook);
}
