//===- check/Paranoia.h - Arming the deep auditor on live managers --------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between CacheManager's generic audit hook and the deep
/// CacheAuditor. ccsim_core deliberately knows nothing about ccsim_check
/// (the hook is a plain std::function); this header is what the layers
/// that may link ccsim_check — sim, concurrent, tests, the CLI — call to
/// turn paranoid validation on.
///
/// In a CCSIM_PARANOID build (cmake -DCCSIM_PARANOID=ON) the config
/// structs default their audit level to Full, so arming makes every
/// mutation self-checking; in a normal build the default level is Off and
/// an armed hook costs one branch per access until a caller raises the
/// level at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CHECK_PARANOIA_H
#define CCSIM_CHECK_PARANOIA_H

#include "check/AuditReport.h"
#include "core/CacheManager.h"
#include "core/SharedContentIndex.h"

#include <functional>
#include <vector>

namespace ccsim {
class Translator;
} // namespace ccsim

namespace ccsim::check {

/// How an armed auditor reacts to findings.
struct ParanoiaOptions {
  /// Level installed on the manager. defaultAuditLevel() honors
  /// CCSIM_PARANOID; pass an explicit level to override.
  AuditLevel Level = defaultAuditLevel();

  /// When no OnViolation handler is set: print the report to stderr and
  /// abort (the paranoid contract — stop at the first corrupt state).
  bool AbortOnViolation = true;

  /// Optional handler receiving the findings and the mutation site.
  /// When set it replaces the print-and-abort behavior.
  std::function<void(const AuditReport &, const char *Where)> OnViolation;
};

/// Installs the deep auditor (CacheAuditor::auditManager after every
/// mutation the level covers) on \p Manager.
void armAuditor(CacheManager &Manager, ParanoiaOptions Options = {});

/// Installs the deep auditor on both tier engines of a live translator:
/// every install the level covers re-audits the whole DBT state
/// (CacheAuditor::auditTranslator — placement, chaining, stats, and the
/// dispatch.* table-vs-residency family). \p T must outlive its engines'
/// hooks, which it does by construction.
void armAuditor(Translator &T, ParanoiaOptions Options = {});

/// Installs the deep auditor on a fleet of managers coupled by one
/// cross-tenant content index: every mutation the level covers audits the
/// triggering manager (CacheAuditor::auditManager) and then the share.*
/// family over \p Index against *all* the managers' caches plus their
/// merged stats — orphan representatives and resident aliases are
/// cross-manager properties, so auditing one cache in isolation cannot
/// see them. \p Managers and \p Index must outlive the hooks.
void armSharedTenancyAuditors(const std::vector<CacheManager *> &Managers,
                              const SharedContentIndex &Index,
                              ParanoiaOptions Options = {});

} // namespace ccsim::check

#endif // CCSIM_CHECK_PARANOIA_H
