//===- check/AuditReport.cpp - Structural audit findings ------------------===//

#include "check/AuditReport.h"

#include "support/Contracts.h"

#include <cstdarg>
#include <cstdio>

using namespace ccsim;
using namespace ccsim::check;

const char *check::ruleId(AuditRule Rule) {
  switch (Rule) {
  case AuditRule::CacheResidencyFlagMismatch:
    return "cache.residency-flag-mismatch";
  case AuditRule::CacheLookupStale:
    return "cache.lookup-stale";
  case AuditRule::CacheBlockOutOfBounds:
    return "cache.block-out-of-bounds";
  case AuditRule::CacheBlockOverlap:
    return "cache.block-overlap";
  case AuditRule::CacheOccupancyMismatch:
    return "cache.occupancy-mismatch";
  case AuditRule::CacheOverCapacity:
    return "cache.over-capacity";
  case AuditRule::CacheFifoOrderBroken:
    return "cache.fifo-order-broken";
  case AuditRule::LinkEndpointNotResident:
    return "link.endpoint-not-resident";
  case AuditRule::LinkBackPointerMissing:
    return "link.backpointer-missing";
  case AuditRule::LinkBackPointerStale:
    return "link.backpointer-stale";
  case AuditRule::LinkCountMismatch:
    return "link.count-mismatch";
  case AuditRule::LinkWithoutStaticEdge:
    return "link.without-static-edge";
  case AuditRule::LinkStaticEdgeDropped:
    return "link.static-edge-dropped";
  case AuditRule::LinkWantsStale:
    return "link.wants-stale";
  case AuditRule::LinkStateLeak:
    return "link.state-leak";
  case AuditRule::FreeListExtentInvalid:
    return "freelist.extent-invalid";
  case AuditRule::FreeListOutOfOrder:
    return "freelist.out-of-order";
  case AuditRule::FreeListUncoalesced:
    return "freelist.uncoalesced";
  case AuditRule::FreeListOverlap:
    return "freelist.overlap";
  case AuditRule::FreeListArenaLeak:
    return "freelist.arena-leak";
  case AuditRule::FreeListOccupancyMismatch:
    return "freelist.occupancy-mismatch";
  case AuditRule::FreeListLruMismatch:
    return "freelist.lru-mismatch";
  case AuditRule::GenerationalDualResidency:
    return "generational.dual-residency";
  case AuditRule::StatsAccessSplitMismatch:
    return "stats.access-split-mismatch";
  case AuditRule::StatsResidencyMismatch:
    return "stats.residency-mismatch";
  case AuditRule::StatsByteAccountingMismatch:
    return "stats.byte-accounting-mismatch";
  case AuditRule::StatsLinkAccountingMismatch:
    return "stats.link-accounting-mismatch";
  case AuditRule::StatsEvictionAccountingMismatch:
    return "stats.eviction-accounting-mismatch";
  case AuditRule::StatsBackPointerPeakLow:
    return "stats.backpointer-peak-low";
  case AuditRule::DispatchEntryNotResident:
    return "dispatch.entry-not-resident";
  case AuditRule::DispatchEntryStale:
    return "dispatch.entry-stale";
  case AuditRule::DispatchResidentUnreachable:
    return "dispatch.resident-unreachable";
  case AuditRule::DispatchSizeMismatch:
    return "dispatch.size-mismatch";
  case AuditRule::SharedIndexStaleEntry:
    return "shared.index-stale-entry";
  case AuditRule::SharedIndexMissingEntry:
    return "shared.index-missing-entry";
  case AuditRule::SharedIndexRegionMismatch:
    return "shared.index-region-mismatch";
  case AuditRule::ShareRefCountMismatch:
    return "share.refcount-mismatch";
  case AuditRule::ShareOrphanEntry:
    return "share.orphan-entry";
  case AuditRule::ShareAliasResident:
    return "share.alias-resident";
  case AuditRule::ShareMirrorMismatch:
    return "share.mirror-mismatch";
  case AuditRule::ShareStatsConservation:
    return "share.stats-conservation";
  }
  CCSIM_REQUIRE(false, "unknown audit rule %d", static_cast<int>(Rule));
}

const char *check::ruleFixHint(AuditRule Rule) {
  switch (Rule) {
  case AuditRule::CacheResidencyFlagMismatch:
  case AuditRule::CacheLookupStale:
    return "CodeCache::commitInsert/evictFront must update flag and lookup "
           "tables together";
  case AuditRule::CacheBlockOutOfBounds:
    return "CodeCache::prepareInsert must wrap (wasting tail bytes) before "
           "placing a block past the buffer end";
  case AuditRule::CacheBlockOverlap:
  case AuditRule::CacheFifoOrderBroken:
    return "CodeCache::prepareInsert must evict from the FIFO head before "
           "the write position reaches it";
  case AuditRule::CacheOccupancyMismatch:
  case AuditRule::CacheOverCapacity:
    return "CodeCache Occupied must be adjusted exactly once per "
           "commitInsert/evictFront";
  case AuditRule::LinkEndpointNotResident:
  case AuditRule::LinkStateLeak:
    return "LinkGraph::onEvict must clear every victim's lists and the "
           "back-pointer entries at surviving endpoints";
  case AuditRule::LinkBackPointerMissing:
  case AuditRule::LinkBackPointerStale:
    return "LinkGraph::materialize/onEvict must mutate OutLinks and "
           "InLinks as a pair (Eq. 4 back-pointer table)";
  case AuditRule::LinkCountMismatch:
    return "LinkGraph LinkCount must move with every materialize/unlink";
  case AuditRule::LinkWithoutStaticEdge:
  case AuditRule::LinkStaticEdgeDropped:
  case AuditRule::LinkWantsStale:
    return "LinkGraph::onInsert must materialize resident targets and "
           "index absent ones in Wants (drained on re-insert)";
  case AuditRule::FreeListExtentInvalid:
  case AuditRule::FreeListOutOfOrder:
  case AuditRule::FreeListUncoalesced:
  case AuditRule::FreeListOverlap:
  case AuditRule::FreeListArenaLeak:
  case AuditRule::FreeListOccupancyMismatch:
    return "FreeListCache::release must insert address-ordered and "
           "coalesce both neighbors";
  case AuditRule::FreeListLruMismatch:
    return "FreeListCache insert/evictLru/touch must keep LruList in sync "
           "with slot residency";
  case AuditRule::GenerationalDualResidency:
    return "GenerationalCacheManager::access must check both generations "
           "before inserting";
  case AuditRule::StatsAccessSplitMismatch:
  case AuditRule::StatsResidencyMismatch:
  case AuditRule::StatsByteAccountingMismatch:
  case AuditRule::StatsLinkAccountingMismatch:
  case AuditRule::StatsEvictionAccountingMismatch:
  case AuditRule::StatsBackPointerPeakLow:
    return "CacheManager::access/chargeEvictions must bump each CacheStats "
           "counter exactly once per event";
  case AuditRule::DispatchEntryNotResident:
  case AuditRule::DispatchEntryStale:
  case AuditRule::DispatchResidentUnreachable:
  case AuditRule::DispatchSizeMismatch:
    return "Translator::installFragment and the eviction payloads must "
           "insert/remove DispatchTable entries in lockstep with the "
           "engine's commitInsert/evictions";
  case AuditRule::SharedIndexStaleEntry:
  case AuditRule::SharedIndexMissingEntry:
  case AuditRule::SharedIndexRegionMismatch:
    return "SharedCacheEngine::reconcileIndexEntry and the eviction-batch "
           "hook must mutate the sharded index under the shard lock in "
           "lockstep with CodeCache residency";
  case AuditRule::ShareRefCountMismatch:
  case AuditRule::ShareMirrorMismatch:
    return "SharedContentIndex::link/releaseRepresentative must move "
           "RefCount and LiveLinks with every link-set mutation";
  case AuditRule::ShareOrphanEntry:
  case AuditRule::ShareAliasResident:
    return "CacheEngine::missAndInsert must register representatives and "
           "drainShares must release them in lockstep with residency "
           "(aliases never insert while their representative lives)";
  case AuditRule::ShareStatsConservation:
    return "CacheEngine's shared-hit path and drainShares must bump "
           "SharedInstalls/UnshareUnlinks exactly once per link "
           "created/drained";
  }
  CCSIM_REQUIRE(false, "unknown audit rule %d", static_cast<int>(Rule));
}

AuditSeverity check::ruleSeverity(AuditRule) {
  // Every current rule is a hard correctness invariant.
  return AuditSeverity::Error;
}

std::string AuditViolation::render() const {
  std::string Out = ruleId(Rule);
  if (!OffendingIds.empty()) {
    Out += " [";
    for (size_t I = 0; I < OffendingIds.size(); ++I) {
      if (I > 0)
        Out += ", ";
      Out += std::to_string(OffendingIds[I]);
    }
    Out += "]";
  }
  Out += ": ";
  Out += Message;
  Out += " (hint: ";
  Out += ruleFixHint(Rule);
  Out += ")";
  return Out;
}

void AuditReport::add(AuditRule Rule,
                      const std::vector<uint64_t> &OffendingIds,
                      const char *Format, ...) {
  char Message[512];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Message, sizeof(Message), Format, Args);
  va_end(Args);
  Findings.push_back(
      AuditViolation{Rule, ruleSeverity(Rule), OffendingIds, Message});
}

void AuditReport::merge(const AuditReport &Other) {
  Findings.insert(Findings.end(), Other.Findings.begin(),
                  Other.Findings.end());
}

bool AuditReport::has(AuditRule Rule) const {
  for (const AuditViolation &V : Findings)
    if (V.Rule == Rule)
      return true;
  return false;
}

size_t AuditReport::countOf(AuditRule Rule) const {
  size_t Count = 0;
  for (const AuditViolation &V : Findings)
    if (V.Rule == Rule)
      ++Count;
  return Count;
}

std::string AuditReport::render() const {
  std::string Out;
  for (const AuditViolation &V : Findings) {
    Out += V.render();
    Out += '\n';
  }
  return Out;
}
