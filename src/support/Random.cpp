//===- support/Random.cpp - Deterministic random number generation -------===//

#include "support/Random.h"
#include "support/Contracts.h"

#include <cmath>

using namespace ccsim;

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  SplitMix64 Seeder(Seed);
  for (auto &Word : State)
    Word = Seeder.next();
}

uint64_t Rng::next64() {
  const uint64_t Result = rotl(State[0] + State[3], 23) + State[0];
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  CCSIM_ASSERT(Bound != 0, "nextBelow bound must be nonzero");
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next64();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::nextRange(int64_t Lo, int64_t Hi) {
  CCSIM_ASSERT(Lo <= Hi, "nextRange requires Lo <= Hi");
  const uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

double Rng::nextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

double Rng::nextNormal() {
  if (HasCachedNormal) {
    HasCachedNormal = false;
    return CachedNormal;
  }
  // Box-Muller transform; U1 must be nonzero for the logarithm.
  double U1;
  do {
    U1 = nextDouble();
  } while (U1 <= 0.0);
  const double U2 = nextDouble();
  const double R = std::sqrt(-2.0 * std::log(U1));
  const double Theta = 2.0 * M_PI * U2;
  CachedNormal = R * std::sin(Theta);
  HasCachedNormal = true;
  return R * std::cos(Theta);
}

double Rng::nextNormal(double Mean, double Sigma) {
  return Mean + Sigma * nextNormal();
}

double Rng::nextLognormal(double Mu, double Sigma) {
  return std::exp(nextNormal(Mu, Sigma));
}

uint64_t Rng::nextGeometric(double P) {
  CCSIM_ASSERT(P > 0.0 && P <= 1.0, "geometric probability out of range");
  if (P >= 1.0)
    return 0;
  // Inverse transform on the continuous exponential, then floor.
  double U;
  do {
    U = nextDouble();
  } while (U <= 0.0);
  return static_cast<uint64_t>(std::floor(std::log(U) / std::log1p(-P)));
}

double Rng::nextExponential(double Lambda) {
  CCSIM_ASSERT(Lambda > 0.0, "exponential rate must be positive");
  double U;
  do {
    U = nextDouble();
  } while (U <= 0.0);
  return -std::log(U) / Lambda;
}

uint64_t Rng::nextPoisson(double Lambda) {
  CCSIM_ASSERT(Lambda >= 0.0, "Poisson mean must be non-negative");
  if (Lambda <= 0.0)
    return 0;
  const double L = std::exp(-Lambda);
  uint64_t K = 0;
  double P = 1.0;
  do {
    ++K;
    P *= nextDouble();
  } while (P > L);
  return K - 1;
}

Rng Rng::fork() {
  // Derive a child seed from two draws; the child reseeds via SplitMix64,
  // which decorrelates its stream from the parent's continuation.
  const uint64_t ChildSeed = next64() ^ rotl(next64(), 32);
  return Rng(ChildSeed);
}

ZipfSampler::ZipfSampler(size_t N, double S) {
  CCSIM_ASSERT(N > 0, "Zipf sampler needs at least one element");
  Cdf.resize(N);
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I) {
    Sum += 1.0 / std::pow(static_cast<double>(I + 1), S);
    Cdf[I] = Sum;
  }
  for (auto &Value : Cdf)
    Value /= Sum;
}

size_t ZipfSampler::sample(Rng &R) const {
  const double U = R.nextDouble();
  // Binary search for the first CDF entry >= U.
  size_t Lo = 0, Hi = Cdf.size() - 1;
  while (Lo < Hi) {
    const size_t Mid = Lo + (Hi - Lo) / 2;
    if (Cdf[Mid] < U)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

WeightedSampler::WeightedSampler(const std::vector<double> &Weights) {
  CCSIM_ASSERT(!Weights.empty(), "weighted sampler needs at least one weight");
  Cdf.resize(Weights.size());
  double Sum = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    CCSIM_ASSERT(Weights[I] >= 0.0, "weights must be non-negative");
    Sum += Weights[I];
    Cdf[I] = Sum;
  }
  CCSIM_ASSERT(Sum > 0.0, "total weight must be positive");
  for (auto &Value : Cdf)
    Value /= Sum;
}

size_t WeightedSampler::sample(Rng &R) const {
  const double U = R.nextDouble();
  size_t Lo = 0, Hi = Cdf.size() - 1;
  while (Lo < Hi) {
    const size_t Mid = Lo + (Hi - Lo) / 2;
    if (Cdf[Mid] < U)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}
