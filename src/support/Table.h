//===- support/Table.h - ASCII table rendering ----------------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned ASCII tables. Every bench binary renders its table or
/// figure series through this class so the output format is uniform.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_TABLE_H
#define CCSIM_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim {

/// A simple table: a header row plus data rows, rendered with aligned
/// columns. Numeric-looking cells are right-aligned, text left-aligned.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a fully-formed row. Must match the header width.
  void addRow(std::vector<std::string> Row);

  /// Row-building helpers: beginRow() then cell(...) calls, in order.
  void beginRow();
  void cell(const std::string &Text);
  void cell(const char *Text);
  void cell(double Value, int Decimals);
  void cell(uint64_t Value);
  void cell(int64_t Value);
  void cell(int Value) { cell(static_cast<int64_t>(Value)); }
  void cell(unsigned Value) { cell(static_cast<uint64_t>(Value)); }

  size_t numRows() const { return Rows.size(); }

  /// Renders the table with a separator line under the header.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::string> Pending;
  bool RowOpen = false;

  void flushPending();
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_TABLE_H
