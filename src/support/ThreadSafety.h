//===- support/ThreadSafety.h - Clang thread-safety annotations ----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time locking-discipline enforcement. The determinism contract
/// of this project (serial == parallel == one-pass == service, byte for
/// byte) is proven at runtime by the differential harness and the
/// structural auditor; this header is the compile-time half: every
/// lock-protected field names its mutex with CCSIM_GUARDED_BY, every
/// lock-requiring helper names it with CCSIM_REQUIRES, and Clang's
/// -Wthread-safety analysis (enabled as -Werror=thread-safety for Clang
/// builds by the top-level CMakeLists) rejects any access that does not
/// provably hold the right lock. Non-Clang compilers see no-ops.
///
/// The standard library's mutex types carry no capability attributes on
/// libstdc++, so annotated code uses the two wrappers below instead:
///
///   ccsim::Mutex       an annotated std::mutex (a "mutex" capability);
///   ccsim::MutexLock   an annotated RAII guard (std::unique_lock under
///                      the hood; native() hands the unique_lock to
///                      std::condition_variable::wait);
///   ccsim::SharedMutex an annotated std::shared_mutex for the
///                      reader/writer locks of the thread-shared engine
///                      (shard tables and eviction fences);
///   ccsim::ReaderLock / ccsim::WriterLock  RAII guards over a
///                      SharedMutex in shared / exclusive mode.
///
/// Condition-variable wait predicates are written as explicit while
/// loops, never as wait(lock, lambda): the analysis treats a lambda body
/// as a separate unannotated function, so guarded reads inside one are
/// invisible to the checker (and would need a blanket suppression).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_THREADSAFETY_H
#define CCSIM_SUPPORT_THREADSAFETY_H

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define CCSIM_TSA(x) __attribute__((x))
#else
#define CCSIM_TSA(x) // no-op: GCC and MSVC have no thread-safety analysis
#endif

/// Declares a type to be a lockable capability ("mutex", "role", ...).
#define CCSIM_CAPABILITY(x) CCSIM_TSA(capability(x))

/// Declares an RAII type whose lifetime equals a capability hold.
#define CCSIM_SCOPED_CAPABILITY CCSIM_TSA(scoped_lockable)

/// Field is only read/written while holding the named mutex.
#define CCSIM_GUARDED_BY(x) CCSIM_TSA(guarded_by(x))

/// Pointer field whose pointee is protected by the named mutex.
#define CCSIM_PT_GUARDED_BY(x) CCSIM_TSA(pt_guarded_by(x))

/// Function may only be called while holding the named mutexes.
#define CCSIM_REQUIRES(...) CCSIM_TSA(requires_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the named mutexes
/// (it acquires them itself; catches self-deadlock at compile time).
#define CCSIM_EXCLUDES(...) CCSIM_TSA(locks_excluded(__VA_ARGS__))

/// Function acquires the named mutexes and does not release them.
#define CCSIM_ACQUIRE(...) CCSIM_TSA(acquire_capability(__VA_ARGS__))

/// Function releases the named mutexes.
#define CCSIM_RELEASE(...) CCSIM_TSA(release_capability(__VA_ARGS__))

/// Function acquires the named capabilities in shared (reader) mode.
#define CCSIM_ACQUIRE_SHARED(...)                                              \
  CCSIM_TSA(acquire_shared_capability(__VA_ARGS__))

/// Function releases capabilities held in shared (reader) mode.
#define CCSIM_RELEASE_SHARED(...)                                              \
  CCSIM_TSA(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability in exclusive mode iff it returns the
/// given value (try_lock).
#define CCSIM_TRY_ACQUIRE(...) CCSIM_TSA(try_acquire_capability(__VA_ARGS__))

/// Shared-mode variant of CCSIM_TRY_ACQUIRE.
#define CCSIM_TRY_ACQUIRE_SHARED(...)                                          \
  CCSIM_TSA(try_acquire_shared_capability(__VA_ARGS__))

/// Lock-ordering edge: this mutex must be acquired after the named one.
#define CCSIM_ACQUIRED_AFTER(...) CCSIM_TSA(acquired_after(__VA_ARGS__))

/// Escape hatch for code the analysis cannot follow; every use must
/// carry a comment explaining why it is sound.
#define CCSIM_NO_THREAD_SAFETY_ANALYSIS CCSIM_TSA(no_thread_safety_analysis)

/// Function returns a reference to a value protected by the named mutex.
#define CCSIM_RETURN_CAPABILITY(x) CCSIM_TSA(lock_returned(x))

namespace ccsim {

/// std::mutex as a Clang capability. Same semantics, same cost; the
/// attributes are metadata only.
class CCSIM_CAPABILITY("mutex") Mutex {
public:
  void lock() CCSIM_ACQUIRE() { M.lock(); }
  void unlock() CCSIM_RELEASE() { M.unlock(); }
  bool try_lock() CCSIM_TRY_ACQUIRE(true) { return M.try_lock(); }

  /// The wrapped mutex, for APIs (condition variables) that need the
  /// standard type. Bypasses the analysis; prefer MutexLock.
  std::mutex &native() { return M; }

private:
  std::mutex M;
};

/// RAII guard over a ccsim::Mutex, visible to the analysis: the guarded
/// capability is held from construction to destruction. native() exposes
/// the underlying std::unique_lock so std::condition_variable::wait can
/// release/reacquire it; the analysis models the capability as held
/// across the wait, which is exactly the state at every observable
/// point (wait() returns with the lock reacquired).
class CCSIM_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) CCSIM_ACQUIRE(M) : Inner(M.native()) {}
  ~MutexLock() CCSIM_RELEASE() = default;

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

  std::unique_lock<std::mutex> &native() { return Inner; }

private:
  std::unique_lock<std::mutex> Inner;
};

/// std::shared_mutex as a Clang capability. The thread-shared engine
/// uses these for its shard tables (many concurrent readers on the hit
/// path) and its eviction fences (readers are in-flight hits, the writer
/// is an eviction batch tearing down victims in that region).
class CCSIM_CAPABILITY("mutex") SharedMutex {
public:
  void lock() CCSIM_ACQUIRE() { M.lock(); }
  void unlock() CCSIM_RELEASE() { M.unlock(); }
  bool try_lock() CCSIM_TRY_ACQUIRE(true) { return M.try_lock(); }

  void lock_shared() CCSIM_ACQUIRE_SHARED() { M.lock_shared(); }
  void unlock_shared() CCSIM_RELEASE_SHARED() { M.unlock_shared(); }
  bool try_lock_shared() CCSIM_TRY_ACQUIRE_SHARED(true) {
    return M.try_lock_shared();
  }

private:
  std::shared_mutex M;
};

/// RAII shared (reader) hold on a SharedMutex.
class CCSIM_SCOPED_CAPABILITY ReaderLock {
public:
  explicit ReaderLock(SharedMutex &M) CCSIM_ACQUIRE_SHARED(M) : M(M) {
    M.lock_shared();
  }
  ~ReaderLock() CCSIM_RELEASE() { M.unlock_shared(); }

  ReaderLock(const ReaderLock &) = delete;
  ReaderLock &operator=(const ReaderLock &) = delete;

private:
  SharedMutex &M;
};

/// RAII exclusive (writer) hold on a SharedMutex.
class CCSIM_SCOPED_CAPABILITY WriterLock {
public:
  explicit WriterLock(SharedMutex &M) CCSIM_ACQUIRE(M) : M(M) { M.lock(); }
  ~WriterLock() CCSIM_RELEASE() { M.unlock(); }

  WriterLock(const WriterLock &) = delete;
  WriterLock &operator=(const WriterLock &) = delete;

private:
  SharedMutex &M;
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_THREADSAFETY_H
