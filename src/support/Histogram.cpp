//===- support/Histogram.cpp - Fixed-width bucket histograms -------------===//

#include "support/Histogram.h"
#include "support/Contracts.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace ccsim;

Histogram::Histogram(double BucketWidth, size_t NumBuckets)
    : BucketWidth(BucketWidth) {
  CCSIM_ASSERT(BucketWidth > 0.0, "bucket width must be positive");
  CCSIM_ASSERT(NumBuckets > 0, "need at least one bucket");
  Counts.assign(NumBuckets + 1, 0);
}

void Histogram::add(double Sample) { add(Sample, 1); }

void Histogram::add(double Sample, uint64_t Count) {
  size_t Index;
  if (Sample < 0.0) {
    Index = 0;
  } else {
    const double Raw = Sample / BucketWidth;
    if (Raw >= static_cast<double>(numBuckets()))
      Index = Counts.size() - 1; // Overflow bucket.
    else
      Index = static_cast<size_t>(Raw);
  }
  Counts[Index] += Count;
  Total += Count;
}

double Histogram::bucketFraction(size_t I) const {
  CCSIM_ASSERT(I < Counts.size(), "bucket index out of range");
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Counts[I]) / static_cast<double>(Total);
}

std::string Histogram::render(size_t MaxBarWidth) const {
  uint64_t MaxCount = 0;
  for (uint64_t C : Counts)
    MaxCount = std::max(MaxCount, C);
  if (MaxCount == 0)
    MaxCount = 1;

  std::string Out;
  for (size_t I = 0; I < Counts.size(); ++I) {
    std::string Label;
    if (I + 1 == Counts.size())
      Label = ">= " + formatDouble(bucketLow(I), 0);
    else
      Label = "[" + formatDouble(bucketLow(I), 0) + ", " +
              formatDouble(bucketHigh(I), 0) + ")";
    Out += padRight(Label, 16);
    const size_t Bar = static_cast<size_t>(
        std::llround(static_cast<double>(Counts[I]) * MaxBarWidth /
                     static_cast<double>(MaxCount)));
    Out += std::string(Bar, '#');
    Out += "  ";
    Out += std::to_string(Counts[I]);
    Out += " (";
    Out += formatDouble(bucketFraction(I) * 100.0, 1);
    Out += "%)\n";
  }
  return Out;
}
