//===- support/Csv.cpp - CSV serialization for figure series --------------===//

#include "support/Csv.h"
#include "support/Contracts.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace ccsim;

CsvWriter::CsvWriter(std::vector<std::string> Header)
    : Header(std::move(Header)) {
  CCSIM_ASSERT(!this->Header.empty(), "CSV needs at least one column");
}

std::string CsvWriter::escape(const std::string &Field) {
  const bool NeedsQuoting =
      Field.find_first_of(",\"\n\r") != std::string::npos;
  if (!NeedsQuoting)
    return Field;
  std::string Out = "\"";
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

void CsvWriter::addRow(std::vector<std::string> Row) {
  CCSIM_ASSERT(Row.size() == Header.size(), "row width must match header");
  Rows.push_back(std::move(Row));
}

void CsvWriter::beginRow() {
  flushPending();
  RowOpen = true;
}

void CsvWriter::flushPending() {
  if (!RowOpen)
    return;
  addRow(std::move(Pending));
  Pending.clear();
  RowOpen = false;
}

void CsvWriter::cell(const std::string &Text) {
  CCSIM_ASSERT(RowOpen, "cell() outside beginRow()");
  Pending.push_back(Text);
}

void CsvWriter::cell(double Value, int Decimals) {
  cell(formatDouble(Value, Decimals));
}

void CsvWriter::cell(uint64_t Value) { cell(std::to_string(Value)); }

std::string CsvWriter::render() const {
  const_cast<CsvWriter *>(this)->flushPending();
  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        Out += ',';
      Out += escape(Row[I]);
    }
    Out += '\n';
  };
  Emit(Header);
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

bool CsvWriter::writeFile(const std::string &Path) const {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Doc = render();
  const bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size();
  return (std::fclose(F) == 0) && Ok;
}
