//===- support/Cancellation.h - Cooperative cancellation token -----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative cancellation primitive shared by every long-running
/// replay loop (sim::run, MultiTenantSimulator::run) and their
/// controllers (SimService workers, tests, drivers). A replay polls
/// stopReason() at trace-chunk granularity; the controller requests
/// cancellation or installs a deadline from any thread. Loops honor a
/// stop request by throwing ReplayCancelled, discarding the partial run.
///
/// Thread-safety: CancelToken is deliberately lock-free — both fields
/// are atomics with release/acquire pairing — so it carries no
/// CCSIM_GUARDED_BY capabilities (support/ThreadSafety.h); there is no
/// mutex for the Clang analysis to track, and none is needed. Keep it
/// that way: the token is polled on every trace chunk of every replay
/// backend, where a lock would serialize the sweep workers.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_CANCELLATION_H
#define CCSIM_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ccsim {

/// Cooperative cancellation endpoint shared between a replay and its
/// controller. All members are thread-safe.
class CancelToken {
public:
  /// Asks the replay to stop at its next chunk boundary.
  void requestCancel() { Cancelled.store(true, std::memory_order_release); }

  /// Installs an absolute deadline; the replay times out once
  /// steady_clock passes it. A zero time_point (the default) disarms.
  void setDeadline(std::chrono::steady_clock::time_point D) {
    DeadlineNs.store(D.time_since_epoch().count(), std::memory_order_release);
  }

  bool cancelRequested() const {
    return Cancelled.load(std::memory_order_acquire);
  }

  bool deadlineExpired() const {
    const int64_t D = DeadlineNs.load(std::memory_order_acquire);
    return D != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= D;
  }

  /// Null when the replay may continue; otherwise a static description of
  /// why it must stop ("cancelled" / "deadline expired"). An explicit
  /// cancellation request wins over a concurrently expired deadline.
  const char *stopReason() const {
    if (cancelRequested())
      return "cancelled";
    if (deadlineExpired())
      return "deadline expired";
    return nullptr;
  }

private:
  std::atomic<bool> Cancelled{false};
  std::atomic<int64_t> DeadlineNs{0};
};

/// Thrown by the replay loops honoring a CancelToken when the token asks
/// them to stop. The partially-replayed state is discarded; callers
/// translate TimedOut into their own status taxonomy.
class ReplayCancelled : public std::runtime_error {
public:
  ReplayCancelled(const std::string &What, bool DeadlineExpired)
      : std::runtime_error(What), TimedOut(DeadlineExpired) {}

  /// True when the stop was a deadline expiry rather than an explicit
  /// cancellation request.
  bool TimedOut;
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_CANCELLATION_H
