//===- support/AsciiChart.cpp - Terminal bar charts -----------------------===//

#include "support/AsciiChart.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace ccsim;

void BarChart::add(const std::string &Label, double Value,
                   const std::string &Display) {
  Entries.push_back(
      Entry{Label, Value,
            Display.empty() ? formatDouble(Value, 3) : Display});
}

std::string BarChart::render() const {
  double MaxValue = 0.0;
  size_t LabelWidth = 0;
  for (const Entry &E : Entries) {
    MaxValue = std::max(MaxValue, E.Value);
    LabelWidth = std::max(LabelWidth, E.Label.size());
  }
  if (MaxValue <= 0.0)
    MaxValue = 1.0;

  std::string Out;
  for (const Entry &E : Entries) {
    Out += padRight(E.Label, LabelWidth + 2);
    const size_t Bar = static_cast<size_t>(std::llround(
        std::max(0.0, E.Value) / MaxValue * static_cast<double>(BarWidth)));
    Out += std::string(Bar, '#');
    Out += ' ';
    Out += E.Display;
    Out += '\n';
  }
  return Out;
}
