//===- support/StringUtils.cpp - Text formatting helpers -----------------===//

#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace ccsim;

std::string ccsim::formatDouble(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return std::string(Buffer);
}

std::string ccsim::formatPercent(double Fraction, int Decimals) {
  return formatDouble(Fraction * 100.0, Decimals) + "%";
}

std::string ccsim::formatBytes(uint64_t Bytes) {
  static const char *Units[] = {"B", "KB", "MB", "GB", "TB"};
  double Value = static_cast<double>(Bytes);
  size_t Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < sizeof(Units) / sizeof(Units[0])) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return std::to_string(Bytes) + " B";
  return formatDouble(Value, 1) + " " + Units[Unit];
}

std::string ccsim::formatWithCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  Out.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0; I < Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Out += ',';
    Out += Digits[I];
  }
  return Out;
}

std::string ccsim::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string ccsim::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}
