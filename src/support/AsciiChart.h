//===- support/AsciiChart.h - Terminal bar charts -------------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Horizontal bar charts for the figure benches, so the paper's bar
/// figures (6, 8, 10, 12, 13, 14) are visible directly in the terminal
/// next to their numeric tables.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_ASCIICHART_H
#define CCSIM_SUPPORT_ASCIICHART_H

#include <string>
#include <vector>

namespace ccsim {

/// Renders labeled horizontal bars scaled to the maximum value.
class BarChart {
public:
  /// \param BarWidth width in characters of the longest bar.
  explicit BarChart(size_t BarWidth = 48) : BarWidth(BarWidth) {}

  /// Adds one bar. \p Display is the text printed after the bar (defaults
  /// to the numeric value with 3 decimals when empty).
  void add(const std::string &Label, double Value,
           const std::string &Display = "");

  size_t size() const { return Entries.size(); }

  /// Renders all bars, one per line, labels left-aligned.
  std::string render() const;

private:
  struct Entry {
    std::string Label;
    double Value;
    std::string Display;
  };

  size_t BarWidth;
  std::vector<Entry> Entries;
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_ASCIICHART_H
