//===- support/Csv.h - CSV serialization for figure series ----------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal RFC-4180-style CSV writing, used by the bench binaries'
/// `--csv` flags so the figure series can be plotted directly.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_CSV_H
#define CCSIM_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace ccsim {

/// Accumulates rows and renders/saves them as CSV. Fields containing
/// commas, quotes, or newlines are quoted and escaped.
class CsvWriter {
public:
  explicit CsvWriter(std::vector<std::string> Header);

  /// Appends a row (must match the header width).
  void addRow(std::vector<std::string> Row);

  /// Row-building helpers, mirroring Table.
  void beginRow();
  void cell(const std::string &Text);
  void cell(double Value, int Decimals);
  void cell(uint64_t Value);

  size_t numRows() const { return Rows.size(); }

  /// Renders the full document (header + rows, CRLF-free).
  std::string render() const;

  /// Writes to \p Path. Returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

  /// Escapes one field per RFC 4180.
  static std::string escape(const std::string &Field);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::string> Pending;
  bool RowOpen = false;

  void flushPending();
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_CSV_H
