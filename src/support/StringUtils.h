//===- support/StringUtils.h - Text formatting helpers -------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small text formatting helpers shared by the table printer, the
/// histograms, and the experiment harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_STRINGUTILS_H
#define CCSIM_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>

namespace ccsim {

/// Formats \p Value with \p Decimals digits after the point.
std::string formatDouble(double Value, int Decimals);

/// Formats \p Value as a percentage with \p Decimals digits, e.g. "24.3%".
std::string formatPercent(double Fraction, int Decimals = 1);

/// Formats a byte count with a binary-unit suffix, e.g. "171.0 KB".
std::string formatBytes(uint64_t Bytes);

/// Formats an integer with thousands separators, e.g. "18,043".
std::string formatWithCommas(uint64_t Value);

/// Pads \p S with spaces on the right to at least \p Width characters.
std::string padRight(const std::string &S, size_t Width);

/// Pads \p S with spaces on the left to at least \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

} // namespace ccsim

#endif // CCSIM_SUPPORT_STRINGUTILS_H
