//===- support/Flags.cpp - Tiny command-line flag parser -----------------===//

#include "support/Flags.h"
#include "support/Contracts.h"

#include <cstdio>
#include <cstdlib>

using namespace ccsim;

FlagSet::FlagSet(std::string ProgramDescription)
    : Description(std::move(ProgramDescription)) {}

void FlagSet::addInt(const std::string &Name, int64_t Default,
                     const std::string &Help) {
  CCSIM_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = KindType::Int;
  F.Help = Help;
  F.IntValue = Default;
  F.DefaultText = std::to_string(Default);
  Flags.push_back(std::move(F));
}

void FlagSet::addDouble(const std::string &Name, double Default,
                        const std::string &Help) {
  CCSIM_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = KindType::Double;
  F.Help = Help;
  F.DoubleValue = Default;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", Default);
  F.DefaultText = Buf;
  Flags.push_back(std::move(F));
}

void FlagSet::addString(const std::string &Name, const std::string &Default,
                        const std::string &Help) {
  CCSIM_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = KindType::String;
  F.Help = Help;
  F.StringValue = Default;
  F.DefaultText = Default.empty() ? "\"\"" : Default;
  Flags.push_back(std::move(F));
}

void FlagSet::addBool(const std::string &Name, bool Default,
                      const std::string &Help) {
  CCSIM_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = KindType::Bool;
  F.Help = Help;
  F.BoolValue = Default;
  F.DefaultText = Default ? "true" : "false";
  Flags.push_back(std::move(F));
}

FlagSet::Flag *FlagSet::find(const std::string &Name) {
  for (auto &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const FlagSet::Flag *FlagSet::find(const std::string &Name) const {
  for (const auto &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

bool FlagSet::assign(Flag &F, const std::string &Value) {
  char *End = nullptr;
  switch (F.Kind) {
  case KindType::Int:
    F.IntValue = std::strtoll(Value.c_str(), &End, 10);
    return End && *End == '\0' && !Value.empty();
  case KindType::Double:
    F.DoubleValue = std::strtod(Value.c_str(), &End);
    return End && *End == '\0' && !Value.empty();
  case KindType::String:
    F.StringValue = Value;
    return true;
  case KindType::Bool:
    if (Value == "true" || Value == "1") {
      F.BoolValue = true;
      return true;
    }
    if (Value == "false" || Value == "0") {
      F.BoolValue = false;
      return true;
    }
    return false;
  }
  return false;
}

bool FlagSet::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Name, Value;
    const size_t Eq = Arg.find('=');
    bool HaveValue = false;
    if (Eq != std::string::npos) {
      Name = Arg.substr(2, Eq - 2);
      Value = Arg.substr(Eq + 1);
      HaveValue = true;
    } else {
      Name = Arg.substr(2);
    }
    Flag *F = find(Name);
    if (!F) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", Name.c_str());
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    if (!HaveValue) {
      // Bools may appear bare; other kinds take the next argument.
      if (F->Kind == KindType::Bool) {
        F->BoolValue = true;
        continue;
      }
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag '--%s' expects a value\n",
                     Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    if (!assign(*F, Value)) {
      std::fprintf(stderr, "error: bad value '%s' for flag '--%s'\n",
                   Value.c_str(), Name.c_str());
      return false;
    }
  }
  return true;
}

int64_t FlagSet::getInt(const std::string &Name) const {
  const Flag *F = find(Name);
  CCSIM_ASSERT(F && F->Kind == KindType::Int, "unknown or mistyped flag");
  return F->IntValue;
}

double FlagSet::getDouble(const std::string &Name) const {
  const Flag *F = find(Name);
  CCSIM_ASSERT(F && F->Kind == KindType::Double, "unknown or mistyped flag");
  return F->DoubleValue;
}

std::string FlagSet::getString(const std::string &Name) const {
  const Flag *F = find(Name);
  CCSIM_ASSERT(F && F->Kind == KindType::String, "unknown or mistyped flag");
  return F->StringValue;
}

bool FlagSet::getBool(const std::string &Name) const {
  const Flag *F = find(Name);
  CCSIM_ASSERT(F && F->Kind == KindType::Bool, "unknown or mistyped flag");
  return F->BoolValue;
}

std::string FlagSet::usage() const {
  std::string Out = Description + "\n\nFlags:\n";
  for (const auto &F : Flags) {
    Out += "  --" + F.Name;
    Out += " (default: " + F.DefaultText + ")\n";
    Out += "      " + F.Help + "\n";
  }
  return Out;
}
