//===- support/Flags.h - Tiny command-line flag parser -------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny `--name=value` flag parser used by the bench and example
/// binaries. Flags are declared with defaults; unknown flags produce an
/// error message and a usage dump rather than being silently ignored.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_FLAGS_H
#define CCSIM_SUPPORT_FLAGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim {

/// Declarative flag set. Declare flags, then parse(argc, argv); accessors
/// return the parsed or default value.
class FlagSet {
public:
  explicit FlagSet(std::string ProgramDescription);

  /// Declares flags. Returns an index used with the typed getters.
  void addInt(const std::string &Name, int64_t Default,
              const std::string &Help);
  void addDouble(const std::string &Name, double Default,
                 const std::string &Help);
  void addString(const std::string &Name, const std::string &Default,
                 const std::string &Help);
  void addBool(const std::string &Name, bool Default,
               const std::string &Help);

  /// Parses `--name=value` and `--name value` arguments. `--help` prints
  /// usage and returns false. Unknown flags print an error and return
  /// false. Non-flag positional arguments are collected in positional().
  bool parse(int Argc, const char *const *Argv);

  int64_t getInt(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  std::string getString(const std::string &Name) const;
  bool getBool(const std::string &Name) const;

  const std::vector<std::string> &positional() const { return Positional; }

  /// Renders the usage text.
  std::string usage() const;

private:
  enum class KindType { Int, Double, String, Bool };

  struct Flag {
    std::string Name;
    KindType Kind;
    std::string Help;
    int64_t IntValue = 0;
    double DoubleValue = 0.0;
    std::string StringValue;
    bool BoolValue = false;
    std::string DefaultText;
  };

  std::string Description;
  std::vector<Flag> Flags;
  std::vector<std::string> Positional;

  Flag *find(const std::string &Name);
  const Flag *find(const std::string &Name) const;
  bool assign(Flag &F, const std::string &Value);
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_FLAGS_H
