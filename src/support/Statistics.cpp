//===- support/Statistics.cpp - Summary statistics utilities -------------===//

#include "support/Statistics.h"
#include "support/Contracts.h"

#include <algorithm>
#include <cmath>

using namespace ccsim;

double ccsim::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double ccsim::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  const double M = mean(Values);
  double SumSq = 0.0;
  for (double V : Values)
    SumSq += (V - M) * (V - M);
  return std::sqrt(SumSq / static_cast<double>(Values.size()));
}

double ccsim::quantile(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  CCSIM_ASSERT(Q >= 0.0 && Q <= 1.0, "quantile must be in [0, 1]");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  const double Pos = Q * static_cast<double>(Values.size() - 1);
  const size_t Lo = static_cast<size_t>(Pos);
  const size_t Hi = std::min(Lo + 1, Values.size() - 1);
  const double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] + Frac * (Values[Hi] - Values[Lo]);
}

double ccsim::median(std::vector<double> Values) {
  return quantile(std::move(Values), 0.5);
}

double ccsim::minOf(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return *std::min_element(Values.begin(), Values.end());
}

double ccsim::maxOf(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return *std::max_element(Values.begin(), Values.end());
}

double ccsim::weightedMean(const std::vector<double> &Values,
                           const std::vector<double> &Weights) {
  CCSIM_ASSERT(Values.size() == Weights.size(),
               "values and weights must have equal length");
  double Num = 0.0, Den = 0.0;
  for (size_t I = 0; I < Values.size(); ++I) {
    CCSIM_ASSERT(Weights[I] >= 0.0, "weights must be non-negative");
    Num += Values[I] * Weights[I];
    Den += Weights[I];
  }
  if (Den == 0.0)
    return 0.0;
  return Num / Den;
}

void RunningStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  Sum += X;
  const double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  const double TotalN = static_cast<double>(N + Other.N);
  const double Delta = Other.Mean - Mean;
  const double NewMean =
      Mean + Delta * static_cast<double>(Other.N) / TotalN;
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) / TotalN;
  Mean = NewMean;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  Sum += Other.Sum;
  N += Other.N;
}
