//===- support/Histogram.h - Fixed-width bucket histograms ---------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width bucket histogram with ASCII rendering, used to reproduce the
/// superblock size distributions of Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_HISTOGRAM_H
#define CCSIM_SUPPORT_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim {

/// Histogram over [0, BucketWidth * NumBuckets) with an overflow bucket for
/// larger samples.
class Histogram {
public:
  /// \param BucketWidth width of each bucket (> 0).
  /// \param NumBuckets number of regular buckets (> 0); samples at or above
  ///        BucketWidth * NumBuckets land in the overflow bucket.
  Histogram(double BucketWidth, size_t NumBuckets);

  /// Adds one sample. Negative samples clamp into the first bucket.
  void add(double Sample);

  /// Adds \p Count occurrences of \p Sample.
  void add(double Sample, uint64_t Count);

  size_t numBuckets() const { return Counts.size() - 1; }
  uint64_t bucketCount(size_t I) const { return Counts[I]; }
  uint64_t overflowCount() const { return Counts.back(); }
  uint64_t totalCount() const { return Total; }
  double bucketLow(size_t I) const {
    return BucketWidth * static_cast<double>(I);
  }
  double bucketHigh(size_t I) const {
    return BucketWidth * static_cast<double>(I + 1);
  }

  /// Fraction of samples in bucket \p I (0 when the histogram is empty).
  double bucketFraction(size_t I) const;

  /// Renders a horizontal ASCII bar chart, one row per bucket, scaled so
  /// the largest bucket spans \p MaxBarWidth characters.
  std::string render(size_t MaxBarWidth = 50) const;

private:
  double BucketWidth;
  std::vector<uint64_t> Counts; // Regular buckets plus trailing overflow.
  uint64_t Total = 0;
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_HISTOGRAM_H
