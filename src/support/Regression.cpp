//===- support/Regression.cpp - Least-squares linear regression ----------===//

#include "support/Regression.h"
#include "support/Contracts.h"

#include <cmath>

using namespace ccsim;

void RegressionAccumulator::add(double X, double Y) {
  ++N;
  SumX += X;
  SumY += Y;
  SumXX += X * X;
  SumXY += X * Y;
  SumYY += Y * Y;
}

LinearFit RegressionAccumulator::fit() const {
  LinearFit Result;
  Result.NumSamples = N;
  if (N == 0)
    return Result;

  const double DN = static_cast<double>(N);
  const double VarX = SumXX - SumX * SumX / DN;
  const double CovXY = SumXY - SumX * SumY / DN;
  const double VarY = SumYY - SumY * SumY / DN;

  if (VarX <= 0.0) {
    // Degenerate: all X identical. Fall back to a flat line through the
    // mean so the caller still gets a usable predictor.
    Result.Slope = 0.0;
    Result.Intercept = SumY / DN;
    Result.R2 = 0.0;
    return Result;
  }

  Result.Slope = CovXY / VarX;
  Result.Intercept = (SumY - Result.Slope * SumX) / DN;
  if (VarY > 0.0)
    Result.R2 = (CovXY * CovXY) / (VarX * VarY);
  else
    Result.R2 = 1.0; // Perfectly flat data fit by a flat line.
  return Result;
}

LinearFit ccsim::linearFit(const std::vector<double> &Xs,
                           const std::vector<double> &Ys) {
  CCSIM_ASSERT(Xs.size() == Ys.size(), "mismatched regression sample vectors");
  RegressionAccumulator Acc;
  for (size_t I = 0; I < Xs.size(); ++I)
    Acc.add(Xs[I], Ys[I]);
  return Acc.fit();
}
