//===- support/Random.h - Deterministic random number generation ---------===//
//
// Part of the ccsim project: a reproduction of "Exploring Code Cache
// Eviction Granularities in Dynamic Optimization Systems" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation and the distributions used
/// by the workload generators. Every stochastic component of the project is
/// seeded explicitly so that traces, programs, and experiments are exactly
/// reproducible across runs and machines.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_RANDOM_H
#define CCSIM_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccsim {

/// SplitMix64 generator, used to expand a single 64-bit seed into the state
/// of larger generators. Passes BigCrush when used directly; here it is only
/// a seeding utility.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256++ pseudo-random generator. Small, fast, and high quality;
/// deterministic given the seed. This is the workhorse generator for all
/// workload and program synthesis.
class Rng {
public:
  /// Seeds the four state words from \p Seed via SplitMix64.
  explicit Rng(uint64_t Seed = 0x5eed5eed5eedULL);

  /// Returns the next raw 64-bit value.
  uint64_t next64();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed integer in the closed range
  /// [\p Lo, \p Hi]. Requires Lo <= Hi.
  int64_t nextRange(int64_t Lo, int64_t Hi);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Standard normal variate (Box-Muller; caches the second value).
  double nextNormal();

  /// Normal variate with the given \p Mean and \p Sigma.
  double nextNormal(double Mean, double Sigma);

  /// Lognormal variate: exp(N(Mu, Sigma)). The median of the distribution
  /// is exp(Mu) and the mean is exp(Mu + Sigma^2 / 2).
  double nextLognormal(double Mu, double Sigma);

  /// Geometric variate counting failures before the first success with
  /// success probability \p P in (0, 1]. Returns values in {0, 1, 2, ...}.
  uint64_t nextGeometric(double P);

  /// Exponential variate with rate \p Lambda > 0.
  double nextExponential(double Lambda);

  /// Poisson variate with mean \p Lambda >= 0 (Knuth's method; intended
  /// for the small means used by the link-degree models).
  uint64_t nextPoisson(double Lambda);

  /// Forks an independent generator whose stream is decorrelated from this
  /// one. Used to give each benchmark model its own stream.
  Rng fork();

private:
  uint64_t State[4];
  double CachedNormal = 0.0;
  bool HasCachedNormal = false;
};

/// Precomputed Zipf(S) sampler over ranks {0, ..., N-1}. Rank 0 is the most
/// popular element. Sampling is O(log N) via binary search over the CDF.
class ZipfSampler {
public:
  /// Builds the CDF for \p N elements with exponent \p S >= 0. S == 0
  /// degenerates to the uniform distribution.
  ZipfSampler(size_t N, double S);

  /// Draws a rank in [0, size()).
  size_t sample(Rng &R) const;

  size_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf;
};

/// Samples an index from an arbitrary non-negative weight vector.
/// O(log N) per sample after an O(N) build.
class WeightedSampler {
public:
  explicit WeightedSampler(const std::vector<double> &Weights);

  size_t sample(Rng &R) const;

  size_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf;
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_RANDOM_H
