//===- support/Regression.h - Least-squares linear regression ------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ordinary least-squares fit of y = Slope * x + Intercept, used to
/// re-derive the paper's overhead equations (Eq. 2: eviction, Eq. 3: miss,
/// Eq. 4: unlinking) from logged overhead samples, as in Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_REGRESSION_H
#define CCSIM_SUPPORT_REGRESSION_H

#include <cstddef>
#include <vector>

namespace ccsim {

/// Result of a simple linear regression.
struct LinearFit {
  double Slope = 0.0;
  double Intercept = 0.0;
  double R2 = 0.0;      ///< Coefficient of determination.
  size_t NumSamples = 0;

  /// Evaluates the fitted line at \p X.
  double eval(double X) const { return Slope * X + Intercept; }
};

/// Streaming accumulator for (x, y) samples with an OLS fit on demand.
/// Keeps only sufficient statistics, so millions of samples are cheap.
class RegressionAccumulator {
public:
  void add(double X, double Y);

  /// Number of samples accumulated so far.
  size_t count() const { return N; }

  /// Computes the least-squares fit. With fewer than two distinct X values
  /// the slope is 0 and the intercept is the mean of Y.
  LinearFit fit() const;

private:
  size_t N = 0;
  double SumX = 0.0;
  double SumY = 0.0;
  double SumXX = 0.0;
  double SumXY = 0.0;
  double SumYY = 0.0;
};

/// Convenience wrapper: fits \p Xs against \p Ys (equal-length vectors).
LinearFit linearFit(const std::vector<double> &Xs,
                    const std::vector<double> &Ys);

} // namespace ccsim

#endif // CCSIM_SUPPORT_REGRESSION_H
