//===- support/BinaryIO.cpp - Little-endian binary stream I/O ------------===//

#include "support/BinaryIO.h"

#include <cstring>

using namespace ccsim;

BinaryWriter::BinaryWriter(const std::string &Path) {
  Stream = std::fopen(Path.c_str(), "wb");
  if (!Stream)
    Failed = true;
}

BinaryWriter::BinaryWriter() : ToMemory(true) {}

BinaryWriter::~BinaryWriter() {
  if (Stream) {
    std::fclose(Stream);
    Stream = nullptr;
  }
}

void BinaryWriter::writeBytes(const void *Data, size_t Size) {
  if (Failed || Size == 0)
    return;
  if (ToMemory) {
    const auto *P = static_cast<const uint8_t *>(Data);
    Memory.insert(Memory.end(), P, P + Size);
    return;
  }
  if (std::fwrite(Data, 1, Size, Stream) != Size)
    Failed = true;
}

void BinaryWriter::writeU8(uint8_t V) { writeBytes(&V, 1); }

void BinaryWriter::writeU16(uint16_t V) {
  uint8_t Buf[2] = {static_cast<uint8_t>(V), static_cast<uint8_t>(V >> 8)};
  writeBytes(Buf, sizeof(Buf));
}

void BinaryWriter::writeU32(uint32_t V) {
  uint8_t Buf[4];
  for (int I = 0; I < 4; ++I)
    Buf[I] = static_cast<uint8_t>(V >> (8 * I));
  writeBytes(Buf, sizeof(Buf));
}

void BinaryWriter::writeU64(uint64_t V) {
  uint8_t Buf[8];
  for (int I = 0; I < 8; ++I)
    Buf[I] = static_cast<uint8_t>(V >> (8 * I));
  writeBytes(Buf, sizeof(Buf));
}

void BinaryWriter::writeF64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  writeU64(Bits);
}

void BinaryWriter::writeString(const std::string &S) {
  writeU32(static_cast<uint32_t>(S.size()));
  writeBytes(S.data(), S.size());
}

bool BinaryWriter::finish() {
  if (Stream) {
    if (std::fclose(Stream) != 0)
      Failed = true;
    Stream = nullptr;
  }
  return ok();
}

BinaryReader::BinaryReader(const std::string &Path) {
  FILE *Stream = std::fopen(Path.c_str(), "rb");
  if (!Stream) {
    Failed = true;
    return;
  }
  std::fseek(Stream, 0, SEEK_END);
  const long Size = std::ftell(Stream);
  std::fseek(Stream, 0, SEEK_SET);
  if (Size < 0) {
    Failed = true;
    std::fclose(Stream);
    return;
  }
  Bytes.resize(static_cast<size_t>(Size));
  if (Size > 0 &&
      std::fread(Bytes.data(), 1, Bytes.size(), Stream) != Bytes.size())
    Failed = true;
  std::fclose(Stream);
}

BinaryReader::BinaryReader(std::vector<uint8_t> InBytes)
    : Bytes(std::move(InBytes)) {}

bool BinaryReader::take(void *Out, size_t Size) {
  if (Failed || Cursor + Size > Bytes.size()) {
    Failed = true;
    return false;
  }
  std::memcpy(Out, Bytes.data() + Cursor, Size);
  Cursor += Size;
  return true;
}

uint8_t BinaryReader::readU8() {
  uint8_t V = 0;
  take(&V, 1);
  return V;
}

uint16_t BinaryReader::readU16() {
  uint8_t Buf[2] = {0, 0};
  take(Buf, sizeof(Buf));
  return static_cast<uint16_t>(Buf[0] | (Buf[1] << 8));
}

uint32_t BinaryReader::readU32() {
  uint8_t Buf[4] = {0, 0, 0, 0};
  take(Buf, sizeof(Buf));
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | Buf[I];
  return V;
}

uint64_t BinaryReader::readU64() {
  uint8_t Buf[8] = {0};
  take(Buf, sizeof(Buf));
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | Buf[I];
  return V;
}

double BinaryReader::readF64() {
  const uint64_t Bits = readU64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string BinaryReader::readString() {
  const uint32_t Size = readU32();
  if (Failed || Cursor + Size > Bytes.size()) {
    Failed = true;
    return std::string();
  }
  std::string S(reinterpret_cast<const char *>(Bytes.data() + Cursor), Size);
  Cursor += Size;
  return S;
}

bool BinaryReader::readBytes(void *Data, size_t Size) {
  return take(Data, Size);
}
