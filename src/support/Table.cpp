//===- support/Table.cpp - ASCII table rendering --------------------------===//

#include "support/Table.h"
#include "support/Contracts.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace ccsim;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  CCSIM_ASSERT(!this->Header.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  CCSIM_ASSERT(Row.size() == Header.size(), "row width must match header");
  Rows.push_back(std::move(Row));
}

void Table::beginRow() {
  flushPending();
  RowOpen = true;
}

void Table::flushPending() {
  if (!RowOpen)
    return;
  addRow(std::move(Pending));
  Pending.clear();
  RowOpen = false;
}

void Table::cell(const std::string &Text) {
  CCSIM_ASSERT(RowOpen, "cell() outside beginRow()");
  Pending.push_back(Text);
}

void Table::cell(const char *Text) { cell(std::string(Text)); }

void Table::cell(double Value, int Decimals) {
  cell(formatDouble(Value, Decimals));
}

void Table::cell(uint64_t Value) { cell(formatWithCommas(Value)); }

void Table::cell(int64_t Value) {
  if (Value < 0)
    cell("-" + formatWithCommas(static_cast<uint64_t>(-Value)));
  else
    cell(formatWithCommas(static_cast<uint64_t>(Value)));
}

static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!(C >= '0' && C <= '9') && C != '.' && C != '-' && C != '+' &&
        C != ',' && C != '%' && C != 'x' && C != 'e' && C != 'E')
      return false;
  return true;
}

std::string Table::render() const {
  // Rendering is logically const; finish any in-flight row first.
  const_cast<Table *>(this)->flushPending();

  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  std::string Out;
  auto EmitRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        Out += "  ";
      if (looksNumeric(Row[I]))
        Out += padLeft(Row[I], Widths[I]);
      else
        Out += padRight(Row[I], Widths[I]);
    }
    // Trim trailing spaces for clean diffs.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  EmitRow(Header);
  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W;
  TotalWidth += 2 * (Widths.size() - 1);
  Out += std::string(TotalWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    EmitRow(Row);
  return Out;
}
