//===- support/Contracts.cpp - Formatted runtime contracts ----------------===//

#include "support/Contracts.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

void ccsim::contractFailure(const char *Kind, const char *File, int Line,
                            const char *Condition, const char *Format, ...) {
  char Message[512];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Message, sizeof(Message), Format, Args);
  va_end(Args);
  std::fprintf(stderr, "%s:%d: %s failed: %s\n  %s\n", File, Line, Kind,
               Condition, Message);
  std::fflush(stderr);
  std::abort();
}
