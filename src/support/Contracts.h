//===- support/Contracts.h - Formatted runtime contracts ------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contract-checking macros replacing raw `assert` across the simulator:
///
///   CCSIM_REQUIRE(cond, fmt, ...)  always-on precondition; violations
///                                  print a formatted diagnostic to stderr
///                                  and abort.
///   CCSIM_ASSERT(cond, fmt, ...)   internal invariant; identical to
///                                  CCSIM_REQUIRE unless compiled with
///                                  NDEBUG and without CCSIM_PARANOID, in
///                                  which case it evaluates nothing.
///
/// Both take a printf-style message so failures carry the offending values
/// ("block 42 is not resident"), not just a stringified condition. The
/// project builds with assertions on even in Release (CMakeLists strips
/// -DNDEBUG), so CCSIM_ASSERT is normally active; the distinction matters
/// for downstream embedders that do define NDEBUG.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_CONTRACTS_H
#define CCSIM_SUPPORT_CONTRACTS_H

namespace ccsim {

/// Prints "<file>:<line>: <kind> failed: <condition>" plus the formatted
/// message to stderr and aborts. Never returns.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 5, 6)))
#endif
[[noreturn]] void
contractFailure(const char *Kind, const char *File, int Line,
                const char *Condition, const char *Format, ...);

} // namespace ccsim

#define CCSIM_REQUIRE(Cond, ...)                                             \
  do {                                                                       \
    if (!(Cond))                                                             \
      ::ccsim::contractFailure("CCSIM_REQUIRE", __FILE__, __LINE__, #Cond,   \
                               __VA_ARGS__);                                 \
  } while (false)

#if defined(NDEBUG) && !defined(CCSIM_PARANOID)
// Disabled: the condition stays syntactically checked (unevaluated sizeof)
// so variables it names are not flagged unused.
#define CCSIM_ASSERT(Cond, ...)                                              \
  do {                                                                       \
    (void)sizeof((Cond) ? 1 : 0);                                            \
  } while (false)
#else
#define CCSIM_ASSERT(Cond, ...) CCSIM_REQUIRE(Cond, __VA_ARGS__)
#endif

#endif // CCSIM_SUPPORT_CONTRACTS_H
