//===- support/BinaryIO.h - Little-endian binary stream I/O --------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary writers/readers over files and memory buffers.
/// The trace library serializes DynamoRIO-style logs through these classes
/// so experiments can be replayed exactly (the paper's repeatability
/// requirement, Section 4.1). No exceptions: errors latch a failure flag
/// that callers must check.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_BINARYIO_H
#define CCSIM_SUPPORT_BINARYIO_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ccsim {

/// Buffered little-endian binary writer.
class BinaryWriter {
public:
  /// Opens \p Path for writing. Check ok() before use.
  explicit BinaryWriter(const std::string &Path);

  /// Writes into an in-memory buffer instead of a file.
  BinaryWriter();

  ~BinaryWriter();

  BinaryWriter(const BinaryWriter &) = delete;
  BinaryWriter &operator=(const BinaryWriter &) = delete;

  bool ok() const { return !Failed; }

  void writeU8(uint8_t V);
  void writeU16(uint16_t V);
  void writeU32(uint32_t V);
  void writeU64(uint64_t V);
  void writeF64(double V);
  void writeString(const std::string &S);
  void writeBytes(const void *Data, size_t Size);

  /// Flushes and closes the file (no-op for memory writers). Returns ok().
  bool finish();

  /// For memory writers: the accumulated bytes.
  const std::vector<uint8_t> &buffer() const { return Memory; }

private:
  FILE *Stream = nullptr;
  std::vector<uint8_t> Memory;
  bool ToMemory = false;
  bool Failed = false;
};

/// Little-endian binary reader over a file or memory buffer.
class BinaryReader {
public:
  /// Reads the whole of \p Path into memory. Check ok() before use.
  explicit BinaryReader(const std::string &Path);

  /// Reads from an existing byte buffer (copied).
  explicit BinaryReader(std::vector<uint8_t> Bytes);

  bool ok() const { return !Failed; }
  bool atEnd() const { return Cursor >= Bytes.size(); }
  size_t remaining() const { return Bytes.size() - Cursor; }

  uint8_t readU8();
  uint16_t readU16();
  uint32_t readU32();
  uint64_t readU64();
  double readF64();
  std::string readString();
  bool readBytes(void *Data, size_t Size);

private:
  std::vector<uint8_t> Bytes;
  size_t Cursor = 0;
  bool Failed = false;

  bool take(void *Out, size_t Size);
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_BINARYIO_H
