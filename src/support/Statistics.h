//===- support/Statistics.h - Summary statistics utilities ---------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics over sample vectors and a streaming accumulator.
/// Used to report median superblock sizes (Figure 4), mean link degrees
/// (Figure 12), and the aggregate metrics in every experiment harness.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SUPPORT_STATISTICS_H
#define CCSIM_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccsim {

/// Arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Population standard deviation of \p Values; 0 for fewer than 2 samples.
double stddev(const std::vector<double> &Values);

/// The \p Q quantile (Q in [0, 1]) using linear interpolation between
/// order statistics. Copies and sorts; 0 for an empty vector.
double quantile(std::vector<double> Values, double Q);

/// Median (the 0.5 quantile).
double median(std::vector<double> Values);

/// Minimum of \p Values; 0 for an empty vector.
double minOf(const std::vector<double> &Values);

/// Maximum of \p Values; 0 for an empty vector.
double maxOf(const std::vector<double> &Values);

/// Weighted mean of \p Values with the given non-negative \p Weights.
/// Returns 0 when the total weight is 0. The vectors must be equal length.
double weightedMean(const std::vector<double> &Values,
                    const std::vector<double> &Weights);

/// Streaming accumulator for count/mean/min/max/variance without storing
/// the samples (Welford's algorithm).
class RunningStats {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }
  double sum() const { return Sum; }

  /// Merges another accumulator into this one.
  void merge(const RunningStats &Other);

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Sum = 0.0;
};

} // namespace ccsim

#endif // CCSIM_SUPPORT_STATISTICS_H
