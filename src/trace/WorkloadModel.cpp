//===- trace/WorkloadModel.cpp - Table 1 benchmark models -------------------===//

#include "trace/WorkloadModel.h"
#include "support/Contracts.h"

#include <algorithm>
#include <cmath>

using namespace ccsim;

uint64_t WorkloadModel::effectiveNumAccesses() const {
  if (NumAccesses != 0)
    return NumAccesses;
  const uint64_t Proportional = static_cast<uint64_t>(NumSuperblocks) * 220;
  return std::clamp<uint64_t>(Proportional, 40000, 2200000);
}

namespace {

struct SpecParams {
  const char *Name;
  const char *Description;
  uint32_t Superblocks; // Table 1, exact.
  double Median;        // Figure 4 (approximate read-off).
  double OutDegree;     // Figure 12 calibration (suite mean ~1.7).
  uint32_t Phases;
  double WsFraction;
  double InnerRepeats;  // Mean back-to-back executions per visit.
  double CoreFraction;  // Hot-core share of the working set.
  double TailProb;      // Mean per-pass probability of tail blocks.
};

WorkloadModel makeSpec(const SpecParams &P) {
  WorkloadModel M;
  M.Name = P.Name;
  M.Description = P.Description;
  M.Suite = SuiteKind::SpecInt2000;
  M.NumSuperblocks = P.Superblocks;
  M.MedianBlockBytes = P.Median;
  // SPEC size distributions: mean ~2.4x the median reproduces the paper's
  // maxCache calibration point (gzip: 301 blocks -> 171 KB).
  M.MeanBlockBytes = 2.4 * P.Median;
  M.MeanOutDegree = P.OutDegree;
  M.NumPhases = P.Phases;
  M.WorkingSetFraction = P.WsFraction;
  M.MeanInnerRepeats = P.InnerRepeats;
  M.HotCoreFraction = P.CoreFraction;
  M.TailProb = P.TailProb;
  M.SelfLoopFraction = 0.18; // Loop-dominated codes self-chain often.
  // Keep the largest block below the smallest stressed cache (the paper's
  // smallest benchmark at pressure 10 still holds ~8.6 KB).
  M.MaxBlockBytes = 8192;
  return M;
}

WorkloadModel makeWindows(const SpecParams &P) {
  WorkloadModel M;
  M.Name = P.Name;
  M.Description = P.Description;
  M.Suite = SuiteKind::Windows;
  M.NumSuperblocks = P.Superblocks;
  M.MedianBlockBytes = P.Median;
  // Windows applications have much heavier size tails (Figure 3, bottom);
  // mean ~6.5x the median reproduces word's 34.2 MB maxCache.
  M.MeanBlockBytes = 6.5 * P.Median;
  M.MeanOutDegree = P.OutDegree;
  M.NumPhases = P.Phases;
  M.WorkingSetFraction = P.WsFraction;
  M.MeanInnerRepeats = P.InnerRepeats;
  M.HotCoreFraction = P.CoreFraction;
  M.TailProb = P.TailProb;
  M.SelfLoopFraction = 0.10;   // Less loop-bound than SPEC.
  // The Windows size tail is heavy (Figure 3); a 64 KB clamp keeps the
  // lognormal mean near the 34.2 MB word calibration point.
  M.MaxBlockBytes = 65536;
  M.FarLinkFraction = 0.10;    // More indirect control flow.
  M.ExcursionFraction = 0.04;  // GUI code wanders more.
  return M;
}

std::vector<WorkloadModel> buildTable1() {
  std::vector<WorkloadModel> Suite;

  // -- SPECint2000 (Linux), Table 1 order. ------------------------------
  //               name       description                superblocks median deg phases  ws  reps core tail
  Suite.push_back(makeSpec({"gzip", "Compression", 301, 244, 1.5, 4, 0.45, 2.6, 0.30, 0.20}));
  Suite.push_back(makeSpec({"vpr", "FPGA Place+Route", 449, 242, 1.6, 5, 0.40, 2.4, 0.33, 0.18}));
  Suite.push_back(makeSpec({"gcc", "C Compiler", 8751, 237, 1.9, 10, 0.16, 1.6, 0.75, 0.15}));
  Suite.push_back(makeSpec({"mcf", "Combinatorial Optimization", 158, 233, 1.4, 3, 0.50, 2.8, 0.28, 0.22}));
  Suite.push_back(makeSpec({"crafty", "Chess Game", 1488, 223, 1.8, 6, 0.33, 2.0, 0.24, 0.05}));
  Suite.push_back(makeSpec({"parser", "Word Processing", 2418, 225, 1.7, 7, 0.28, 1.8, 0.45, 0.15}));
  Suite.push_back(makeSpec({"eon", "Computer Visualization", 448, 224, 1.6, 5, 0.40, 2.2, 0.33, 0.18}));
  Suite.push_back(makeSpec({"perlbmk", "PERL Language", 2144, 220, 1.8, 7, 0.26, 1.8, 0.48, 0.15}));
  Suite.push_back(makeSpec({"gap", "Group Theory Interpreter", 667, 213, 1.7, 5, 0.38, 2.1, 0.35, 0.17}));
  Suite.push_back(makeSpec({"vortex", "Object-Oriented Database", 1985, 190, 1.9, 7, 0.28, 1.8, 0.46, 0.15}));
  Suite.push_back(makeSpec({"bzip2", "Compression", 224, 230, 1.5, 3, 0.48, 2.8, 0.30, 0.22}));
  Suite.push_back(makeSpec({"twolf", "Place+Route", 574, 210, 1.6, 5, 0.36, 2.2, 0.22, 0.05}));

  // -- Interactive Windows applications. ---------------------------------
  Suite.push_back(makeWindows({"iexplore", "Web Browser", 14846, 290, 1.8, 14, 0.30, 1.4, 0.55, 0.18}));
  Suite.push_back(makeWindows({"outlook", "E-Mail App", 13233, 300, 1.8, 13, 0.30, 1.4, 0.55, 0.18}));
  Suite.push_back(makeWindows({"photoshop", "Photo Editor", 9434, 310, 1.7, 12, 0.32, 1.5, 0.55, 0.18}));
  Suite.push_back(makeWindows({"pinball", "3D Game Demo", 1086, 270, 1.6, 6, 0.35, 1.7, 0.50, 0.22}));
  Suite.push_back(makeWindows({"powerpoint", "Presentation", 14475, 300, 1.8, 14, 0.30, 1.4, 0.55, 0.18}));
  Suite.push_back(makeWindows({"visualstudio", "Development Env", 7063, 320, 1.9, 12, 0.32, 1.5, 0.55, 0.18}));
  Suite.push_back(makeWindows({"winzip", "Compression", 3198, 280, 1.6, 8, 0.35, 1.6, 0.50, 0.20}));
  Suite.push_back(makeWindows({"word", "Word Processor", 18043, 300, 1.8, 15, 0.28, 1.4, 0.58, 0.18}));
  return Suite;
}

} // namespace

const std::vector<WorkloadModel> &ccsim::table1Workloads() {
  // Function-local static: built on first use (no global constructor).
  static const std::vector<WorkloadModel> Suite = buildTable1();
  return Suite;
}

const WorkloadModel *ccsim::findWorkload(const std::string &Name) {
  for (const WorkloadModel &M : table1Workloads())
    if (M.Name == Name)
      return &M;
  return nullptr;
}

WorkloadModel ccsim::scaledWorkload(const WorkloadModel &Model,
                                    double Factor) {
  CCSIM_ASSERT(Factor > 0.0, "scale factor must be positive");
  WorkloadModel Scaled = Model;
  Scaled.NumSuperblocks = std::max<uint32_t>(
      32, static_cast<uint32_t>(std::llround(Model.NumSuperblocks * Factor)));
  Scaled.NumAccesses = 0; // Re-derive from the new superblock count.
  Scaled.NumPhases = std::max<uint32_t>(3, Model.NumPhases);
  Scaled.Name = Model.Name + "-scaled";
  return Scaled;
}
