//===- trace/TraceGenerator.cpp - Synthetic trace synthesis -----------------===//

#include "trace/TraceGenerator.h"
#include "support/Contracts.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace ccsim;

void TraceGenerator::generateBlocks(const WorkloadModel &Model, Trace &T) {
  CCSIM_ASSERT(Model.NumSuperblocks > 0, "workload needs superblocks");
  CCSIM_ASSERT(Model.MeanBlockBytes >= Model.MedianBlockBytes,
               "lognormal mean must be at least the median");

  // Lognormal(Mu, Sigma): median = exp(Mu), mean = exp(Mu + Sigma^2/2).
  const double Mu = std::log(Model.MedianBlockBytes);
  const double Ratio = Model.MeanBlockBytes / Model.MedianBlockBytes;
  const double Sigma = std::max(0.1, std::sqrt(2.0 * std::log(Ratio)));

  T.Blocks.resize(Model.NumSuperblocks);
  for (SuperblockDef &B : T.Blocks) {
    const double Raw = R.nextLognormal(Mu, Sigma);
    const double Clamped =
        std::clamp(Raw, static_cast<double>(Model.MinBlockBytes),
                   static_cast<double>(Model.MaxBlockBytes));
    B.SizeBytes = static_cast<uint32_t>(std::llround(Clamped));
  }
}

void TraceGenerator::generateLinks(const WorkloadModel &Model, Trace &T) {
  const uint32_t N = Model.NumSuperblocks;
  // Self loops contribute SelfLoopFraction links on average; the rest of
  // the out-degree budget is Poisson-distributed ordinary links.
  const double OrdinaryMean =
      std::max(0.0, Model.MeanOutDegree - Model.SelfLoopFraction);
  const double GeoP = 1.0 / std::max(1.0, Model.LinkDistanceMean);

  for (SuperblockId Id = 0; Id < N; ++Id) {
    SuperblockDef &B = T.Blocks[Id];
    if (R.nextBool(Model.SelfLoopFraction))
      B.OutEdges.push_back(Id);

    const uint64_t NumOrdinary = R.nextPoisson(OrdinaryMean);
    for (uint64_t E = 0; E < NumOrdinary; ++E) {
      SuperblockId Target;
      if (N > 1 && R.nextBool(Model.FarLinkFraction)) {
        // Far link: indirect call target, shared helper, etc.
        do {
          Target = static_cast<SuperblockId>(R.nextBelow(N));
        } while (Target == Id);
      } else {
        // Local link: distance-geometric in discovery order, either
        // direction. Chained code is discovered close together.
        const int64_t Distance =
            1 + static_cast<int64_t>(R.nextGeometric(GeoP));
        const int64_t Signed = R.nextBool(0.5) ? Distance : -Distance;
        int64_t Raw = static_cast<int64_t>(Id) + Signed;
        Raw = std::clamp<int64_t>(Raw, 0, static_cast<int64_t>(N) - 1);
        if (Raw == static_cast<int64_t>(Id))
          Raw = (Id + 1 < N) ? Id + 1 : (Id > 0 ? Id - 1 : Id);
        if (Raw == static_cast<int64_t>(Id))
          continue; // Single-block universe: nothing to link to.
        Target = static_cast<SuperblockId>(Raw);
      }
      B.OutEdges.push_back(Target);
    }
  }
}

void TraceGenerator::generateAccesses(const WorkloadModel &Model, Trace &T) {
  const uint32_t N = Model.NumSuperblocks;
  const uint64_t TotalAccesses =
      std::max<uint64_t>(Model.effectiveNumAccesses(), N);
  const uint32_t Phases = std::max<uint32_t>(1, Model.NumPhases);
  const uint32_t Window = std::min<uint32_t>(
      N, std::max<uint32_t>(
             8, static_cast<uint32_t>(
                    std::llround(Model.WorkingSetFraction * N))));

  T.Accesses.reserve(TotalAccesses + N);

  // Inner repeats: mean total executions per visit is MeanInnerRepeats,
  // i.e. 1 + Geometric with mean (MeanInnerRepeats - 1).
  const double ExtraRepeats = std::max(0.0, Model.MeanInnerRepeats - 1.0);
  const double RepeatGeoP = 1.0 / (1.0 + ExtraRepeats);

  uint32_t Introduced = 0; // Ids [0, Introduced) have been discovered.
  std::vector<uint32_t> Order;
  std::vector<double> Hotness;

  for (uint32_t Phase = 0; Phase < Phases; ++Phase) {
    // Working-set window for this phase; windows advance monotonically
    // and the last one ends exactly at N so every block is discovered.
    uint32_t Start = 0;
    if (Phases > 1 && N > Window)
      Start = static_cast<uint32_t>(
          (static_cast<uint64_t>(Phase) * (N - Window)) / (Phases - 1));
    const uint32_t End = std::min(N, Start + Window);
    const uint32_t WsSize = End - Start;
    if (WsSize == 0)
      continue;

    // Discovery sweep: newly reached superblocks execute once, in
    // discovery order (this is what makes id order == creation order).
    for (; Introduced < End; ++Introduced)
      T.Accesses.push_back(Introduced);

    // Fixed per-phase visit order: discovery order with local jitter, so
    // consecutive visits stay roughly id-adjacent (chained code executes
    // in sequence) without being perfectly sequential.
    Order.resize(WsSize);
    std::iota(Order.begin(), Order.end(), Start);
    for (uint32_t I = 0; I + 1 < WsSize; ++I) {
      const uint32_t Jump = static_cast<uint32_t>(std::min<uint64_t>(
          R.nextGeometric(Model.OrderJitterGeoP), WsSize - 1 - I));
      std::swap(Order[I], Order[I + Jump]);
    }

    // Per-block hotness: bimodal. Core blocks execute (almost) every
    // pass; tail blocks only occasionally (with a little jitter so the
    // tail is not uniform).
    Hotness.resize(WsSize);
    for (double &H : Hotness) {
      if (R.nextBool(Model.HotCoreFraction))
        H = Model.HotCoreProb;
      else
        H = Model.TailProb * (0.5 + R.nextDouble());
    }

    // Cyclic passes over the working set until this phase's share of the
    // budget is consumed. This is the key reuse pattern: a working set
    // larger than the cache makes *every* FIFO granularity thrash, while
    // one that fits rewards policies that avoid discarding it.
    const uint64_t PhaseBudget = TotalAccesses / Phases;
    uint64_t Emitted = 0;
    while (Emitted < PhaseBudget) {
      for (uint32_t I = 0; I < WsSize && Emitted < PhaseBudget; ++I) {
        if (!R.nextBool(Hotness[I]))
          continue;
        // Occasionally revisit old code outside the working set.
        if (R.nextBool(Model.ExcursionFraction)) {
          T.Accesses.push_back(
              static_cast<SuperblockId>(R.nextBelow(Introduced)));
          ++Emitted;
        }
        const uint64_t Repeats = 1 + R.nextGeometric(RepeatGeoP);
        for (uint64_t Rep = 0; Rep < Repeats && Emitted < PhaseBudget;
             ++Rep) {
          T.Accesses.push_back(Order[I]);
          ++Emitted;
        }
      }
    }
  }

  // Guarantee full discovery even under degenerate budgets.
  for (; Introduced < N; ++Introduced)
    T.Accesses.push_back(Introduced);
}

Trace TraceGenerator::generate(const WorkloadModel &Model) {
  Trace T;
  T.Name = Model.Name;
  generateBlocks(Model, T);
  generateLinks(Model, T);
  generateAccesses(Model, T);
  CCSIM_ASSERT(T.validate(), "generated trace must be structurally valid");
  return T;
}

Trace TraceGenerator::generateBenchmark(const WorkloadModel &Model,
                                        uint64_t SuiteSeed) {
  // Stable per-benchmark seed: mix the suite seed with the name hash so
  // regenerating one benchmark never perturbs the others.
  uint64_t Hash = 1469598103934665603ULL; // FNV-1a.
  for (char C : Model.Name) {
    Hash ^= static_cast<uint8_t>(C);
    Hash *= 1099511628211ULL;
  }
  TraceGenerator Gen(SuiteSeed ^ Hash);
  return Gen.generate(Model);
}
