//===- trace/Trace.cpp - Superblock dispatch traces ------------------------===//

#include "trace/Trace.h"
#include "support/Contracts.h"


using namespace ccsim;

uint64_t Trace::maxCacheBytes() const {
  uint64_t Total = 0;
  for (const SuperblockDef &B : Blocks)
    Total += B.SizeBytes;
  return Total;
}

SuperblockRecord Trace::recordFor(SuperblockId Id) const {
  CCSIM_ASSERT(Id < Blocks.size(), "superblock id out of range");
  SuperblockRecord Rec;
  Rec.Id = Id;
  Rec.SizeBytes = Blocks[Id].SizeBytes;
  Rec.OutEdges = std::span<const SuperblockId>(Blocks[Id].OutEdges);
  return Rec;
}

std::vector<double> Trace::sizesAsDoubles() const {
  std::vector<double> Sizes;
  Sizes.reserve(Blocks.size());
  for (const SuperblockDef &B : Blocks)
    Sizes.push_back(static_cast<double>(B.SizeBytes));
  return Sizes;
}

double Trace::meanOutDegree() const {
  if (Blocks.empty())
    return 0.0;
  uint64_t Total = 0;
  for (const SuperblockDef &B : Blocks)
    Total += B.OutEdges.size();
  return static_cast<double>(Total) / static_cast<double>(Blocks.size());
}

bool Trace::validate() const {
  std::vector<uint8_t> Touched(Blocks.size(), 0);
  for (const SuperblockDef &B : Blocks) {
    if (B.SizeBytes == 0)
      return false;
    for (SuperblockId Edge : B.OutEdges)
      if (Edge >= Blocks.size())
        return false;
  }
  for (SuperblockId Id : Accesses) {
    if (Id >= Blocks.size())
      return false;
    Touched[Id] = 1;
  }
  for (uint8_t T : Touched)
    if (!T)
      return false; // Table 1 counts *hot* superblocks: all are executed.
  return true;
}
