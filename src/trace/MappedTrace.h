//===- trace/MappedTrace.h - Zero-copy mapped trace streaming -------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-copy access to on-disk trace files. readTrace() copies the whole
/// access stream -- typically the bulk of the file by orders of magnitude
/// -- into a std::vector before the first event is replayed. MappedTrace
/// instead maps the file read-only and decodes accesses straight out of
/// the mapping: the block table (small) is decoded eagerly into the same
/// SuperblockDef records the rest of the system uses, while the access
/// stream stays on disk and is paged in by the kernel as the replay
/// walks it.
///
/// On platforms without mmap (or when ForceFallback is set, which the
/// tests use to cover the path), open() degrades to reading the file
/// into an owned buffer -- same interface, one copy, still no second
/// materialization of the access vector.
///
/// Validation at open() is exactly as strict as readTrace(): magic,
/// version, bounds, Trace::validate() semantics (every access and edge
/// names a defined block, positive sizes, every block accessed), and a
/// trailing-byte check. A MappedTrace that opened successfully can be
/// streamed without per-access checks.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TRACE_MAPPEDTRACE_H
#define CCSIM_TRACE_MAPPEDTRACE_H

#include "trace/Trace.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ccsim::trace {

/// A read-only trace backed by a file mapping (or an owned fallback
/// buffer). Movable, not copyable; the mapping lives as long as the
/// object, and records returned by recordFor() alias the decoded block
/// table exactly like Trace::recordFor().
class MappedTrace {
public:
  MappedTrace(MappedTrace &&Other) noexcept;
  MappedTrace &operator=(MappedTrace &&Other) noexcept;
  MappedTrace(const MappedTrace &) = delete;
  MappedTrace &operator=(const MappedTrace &) = delete;
  ~MappedTrace();

  /// Maps and validates \p Path. Returns nullopt for unreadable,
  /// corrupt, or truncated files. \p ForceFallback skips mmap and reads
  /// the file into memory (tests exercise the non-mmap path with it).
  static std::optional<MappedTrace> open(const std::string &Path,
                                         bool ForceFallback = false);

  const std::string &name() const { return Name; }
  size_t numSuperblocks() const { return Blocks.size(); }
  size_t numAccesses() const { return NumAccesses; }

  /// The paper's maxCache term: total translated bytes (Section 4.2).
  uint64_t maxCacheBytes() const { return MaxCacheBytes; }

  /// Decodes access \p I from the mapped stream. \p I < numAccesses().
  SuperblockId idAt(size_t I) const {
    const uint8_t *P = AccessBase + I * 4;
    return static_cast<SuperblockId>(P[0]) |
           (static_cast<SuperblockId>(P[1]) << 8) |
           (static_cast<SuperblockId>(P[2]) << 16) |
           (static_cast<SuperblockId>(P[3]) << 24);
  }

  /// Per-access record for \p Id; the edge span aliases this object.
  SuperblockRecord recordFor(SuperblockId Id) const;

  const std::vector<SuperblockDef> &blocks() const { return Blocks; }

  /// True when the access stream is served by an actual file mapping
  /// (false on the owned-buffer fallback).
  bool isMapped() const { return MapBase != nullptr; }

  /// Materializes a plain Trace (copies the access stream). For callers
  /// that need the owning form, e.g. to forward into job payloads.
  Trace toTrace() const;

private:
  MappedTrace() = default;

  std::string Name;
  std::vector<SuperblockDef> Blocks;
  uint64_t MaxCacheBytes = 0;
  size_t NumAccesses = 0;

  /// Start of the little-endian u32 access stream, into MapBase or
  /// Fallback.
  const uint8_t *AccessBase = nullptr;

  void *MapBase = nullptr; ///< mmap base (null on fallback).
  size_t MapLength = 0;
  std::vector<uint8_t> Fallback; ///< Owned bytes when not mapped.

  void reset() noexcept;
};

} // namespace ccsim::trace

#endif // CCSIM_TRACE_MAPPEDTRACE_H
