//===- trace/WorkloadModel.h - Table 1 benchmark models --------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistical models of the 20 benchmarks in the paper's Table 1: all 12
/// SPECint2000 programs (run under Linux DynamoRIO) and 8 interactive
/// Windows applications. Each model is calibrated to the figures the paper
/// publishes:
///
///   - NumSuperblocks: exact hot-superblock counts from Table 1,
///   - MedianBlockBytes: median superblock sizes (Figure 4; ~190-250 for
///     SPEC, larger for the Windows applications),
///   - MeanBlockBytes: chosen so NumSuperblocks x mean reproduces the
///     paper's maxCache range: 171 KB for gzip up to 34.2 MB for word
///     (Section 4.2). Superblock sizes are lognormal, which matches the
///     long-tailed distributions of Figure 3.
///   - MeanOutDegree: static links per superblock, averaging ~1.7 across
///     the suite (Figure 12).
///
/// The access-stream parameters (phases, working sets, loop structure) are
/// not published in the paper; they are chosen to give interactive
/// applications more phases and lower reuse than the loop-dominated SPEC
/// codes, which is the qualitative behavior reported in prior work [15].
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TRACE_WORKLOADMODEL_H
#define CCSIM_TRACE_WORKLOADMODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim {

/// Which benchmark suite a workload belongs to.
enum class SuiteKind { SpecInt2000, Windows };

/// Statistical model of one benchmark's hot-superblock behavior.
struct WorkloadModel {
  std::string Name;
  std::string Description; ///< Table 1's description column.
  SuiteKind Suite = SuiteKind::SpecInt2000;

  // Superblock population (Table 1, Figures 3-4).
  uint32_t NumSuperblocks = 0;
  double MedianBlockBytes = 230.0;
  double MeanBlockBytes = 550.0;
  uint32_t MinBlockBytes = 16;
  uint32_t MaxBlockBytes = 16384;

  // Chaining (Figure 12).
  double MeanOutDegree = 1.7;
  double SelfLoopFraction = 0.15; ///< Blocks that loop to themselves.
  double FarLinkFraction = 0.06;  ///< Links to arbitrary (non-local)
                                  ///< targets, e.g. indirect calls.
  double LinkDistanceMean = 12.0; ///< Mean |target - source| in discovery
                                  ///< order for local links.

  // Access stream shape. Each phase repeatedly iterates ("passes") over
  // its working set: blocks are visited in a locally-perturbed discovery
  // order, each with a per-block execution probability (hotness) and a
  // short burst of immediate repeats (inner loop iterations). This cyclic
  // reuse pattern is what stresses FIFO caches: a working set larger than
  // the cache thrashes every FIFO granularity alike.
  uint64_t NumAccesses = 0;     ///< 0 = derive from NumSuperblocks.
  uint32_t NumPhases = 8;       ///< Program phases.
  double WorkingSetFraction = 0.3; ///< Fraction of all superblocks hot in
                                   ///< one phase.
  double MeanInnerRepeats = 1.7;   ///< Mean back-to-back executions per
                                   ///< visit (self-loop iterations).
  // Per-pass execution probabilities are bimodal: a hot core of blocks
  // executes on (almost) every pass, the remaining tail only
  // occasionally. The core's total byte size relative to the cache
  // capacity is what positions a benchmark on the thrash curve: a core
  // between half and one cache capacity punishes FLUSH (whose average
  // effective capacity is half the cache); a core far beyond the cache
  // thrashes every FIFO granularity alike.
  double HotCoreFraction = 0.25; ///< Fraction of the working set that is
                                 ///< hot core.
  double HotCoreProb = 0.95;     ///< Per-pass execute probability (core).
  double TailProb = 0.18;        ///< Mean per-pass probability (tail).
  double OrderJitterGeoP = 0.4; ///< Local perturbation of visit order.
  double ExcursionFraction = 0.02;  ///< Accesses to cold/old code.

  /// Default access-stream length: proportional to the superblock count
  /// with a cap, so large benchmarks dominate the Eq. 1 weighting without
  /// exploding simulation time.
  uint64_t effectiveNumAccesses() const;
};

/// The full benchmark suite of Table 1, in the paper's order (12 SPEC then
/// 8 Windows applications).
const std::vector<WorkloadModel> &table1Workloads();

/// Looks up a Table 1 workload by name; returns nullptr if unknown.
const WorkloadModel *findWorkload(const std::string &Name);

/// A reduced-size copy of a workload for fast unit tests and smoke runs:
/// superblock count and access count scaled by \p Factor (at least 32
/// superblocks).
WorkloadModel scaledWorkload(const WorkloadModel &Model, double Factor);

} // namespace ccsim

#endif // CCSIM_TRACE_WORKLOADMODEL_H
