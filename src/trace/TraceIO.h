//===- trace/TraceIO.h - Trace serialization -------------------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary serialization for traces. Mirrors the paper's practice
/// of saving DynamoRIO logs so experiments are exactly repeatable.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TRACE_TRACEIO_H
#define CCSIM_TRACE_TRACEIO_H

#include "trace/Trace.h"

#include <optional>
#include <string>

namespace ccsim {

/// Writes \p T to \p Path. Returns false on I/O failure.
bool writeTrace(const Trace &T, const std::string &Path);

/// Reads a trace from \p Path. Returns std::nullopt on I/O failure, bad
/// magic/version, or a structurally invalid payload.
std::optional<Trace> readTrace(const std::string &Path);

/// In-memory round-trip helpers (used by tests and by readTrace).
std::vector<uint8_t> serializeTrace(const Trace &T);
std::optional<Trace> deserializeTrace(std::vector<uint8_t> Bytes);

} // namespace ccsim

#endif // CCSIM_TRACE_TRACEIO_H
