//===- trace/TraceIO.cpp - Trace serialization ------------------------------===//

#include "trace/TraceIO.h"

#include "support/BinaryIO.h"

using namespace ccsim;

namespace {
constexpr uint32_t TraceMagic = 0x43435452; // "CCTR"
constexpr uint32_t TraceVersion = 1;
} // namespace

static void writeTracePayload(BinaryWriter &W, const Trace &T) {
  W.writeU32(TraceMagic);
  W.writeU32(TraceVersion);
  W.writeString(T.Name);
  W.writeU32(static_cast<uint32_t>(T.Blocks.size()));
  for (const SuperblockDef &B : T.Blocks) {
    W.writeU32(B.SizeBytes);
    W.writeU32(static_cast<uint32_t>(B.OutEdges.size()));
    for (SuperblockId Edge : B.OutEdges)
      W.writeU32(Edge);
  }
  W.writeU64(T.Accesses.size());
  for (SuperblockId Id : T.Accesses)
    W.writeU32(Id);
}

static std::optional<Trace> readTracePayload(BinaryReader &R) {
  if (R.readU32() != TraceMagic)
    return std::nullopt;
  if (R.readU32() != TraceVersion)
    return std::nullopt;
  Trace T;
  T.Name = R.readString();
  const uint32_t NumBlocks = R.readU32();
  if (!R.ok())
    return std::nullopt;
  T.Blocks.resize(NumBlocks);
  for (SuperblockDef &B : T.Blocks) {
    B.SizeBytes = R.readU32();
    const uint32_t NumEdges = R.readU32();
    if (!R.ok() || NumEdges > R.remaining() / 4 + 1)
      return std::nullopt;
    B.OutEdges.resize(NumEdges);
    for (SuperblockId &Edge : B.OutEdges)
      Edge = R.readU32();
  }
  const uint64_t NumAccesses = R.readU64();
  if (!R.ok() || NumAccesses > R.remaining() / 4 + 1)
    return std::nullopt;
  T.Accesses.resize(NumAccesses);
  for (SuperblockId &Id : T.Accesses)
    Id = R.readU32();
  if (!R.ok() || !T.validate())
    return std::nullopt;
  // Trailing bytes mean the payload and the container disagree about
  // where the trace ends — treat that as corruption, not padding.
  if (R.remaining() != 0)
    return std::nullopt;
  return T;
}

bool ccsim::writeTrace(const Trace &T, const std::string &Path) {
  BinaryWriter W(Path);
  if (!W.ok())
    return false;
  writeTracePayload(W, T);
  return W.finish();
}

std::optional<Trace> ccsim::readTrace(const std::string &Path) {
  BinaryReader R(Path);
  if (!R.ok())
    return std::nullopt;
  return readTracePayload(R);
}

std::vector<uint8_t> ccsim::serializeTrace(const Trace &T) {
  BinaryWriter W;
  writeTracePayload(W, T);
  return W.buffer();
}

std::optional<Trace> ccsim::deserializeTrace(std::vector<uint8_t> Bytes) {
  BinaryReader R(std::move(Bytes));
  return readTracePayload(R);
}
