//===- trace/TraceGenerator.h - Synthetic trace synthesis ------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes superblock traces from WorkloadModel parameters. This is
/// the DynamoRIO-log substitute (see DESIGN.md): it reproduces the
/// marginals the simulator is sensitive to —
///
///   - lognormal superblock sizes matching the model's median and mean
///     (Figures 3-4 and the maxCache calibration),
///   - static link structure: self-loops, distance-geometric local links,
///     and a small fraction of far links (Figure 12's degrees; Figure 13's
///     locality),
///   - a phase-structured access stream: each phase introduces new
///     superblocks with a discovery sweep (discovery order = id order),
///     then executes Zipf-popular loop bursts over the phase's working
///     set, with occasional excursions back to older code.
///
/// Generation is deterministic for a given (model, seed) pair.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TRACE_TRACEGENERATOR_H
#define CCSIM_TRACE_TRACEGENERATOR_H

#include "support/Random.h"
#include "trace/Trace.h"
#include "trace/WorkloadModel.h"

namespace ccsim {

/// Deterministic synthetic trace generator.
class TraceGenerator {
public:
  explicit TraceGenerator(uint64_t Seed) : R(Seed) {}

  /// Generates a full trace for \p Model. The result always passes
  /// Trace::validate().
  Trace generate(const WorkloadModel &Model);

  /// Convenience: generates the trace for one Table 1 benchmark with a
  /// per-benchmark seed derived from \p SuiteSeed, so traces are stable
  /// regardless of generation order.
  static Trace generateBenchmark(const WorkloadModel &Model,
                                 uint64_t SuiteSeed);

private:
  Rng R;

  void generateBlocks(const WorkloadModel &Model, Trace &T);
  void generateLinks(const WorkloadModel &Model, Trace &T);
  void generateAccesses(const WorkloadModel &Model, Trace &T);
};

} // namespace ccsim

#endif // CCSIM_TRACE_TRACEGENERATOR_H
