//===- trace/MappedTrace.cpp - Zero-copy mapped trace streaming -----------===//

#include "trace/MappedTrace.h"

#include "support/Contracts.h"

#include <cstdio>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define CCSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CCSIM_HAVE_MMAP 0
#endif

using namespace ccsim;
using namespace ccsim::trace;

namespace {

constexpr uint32_t TraceMagic = 0x43435452; // "CCTR" (TraceIO.cpp)
constexpr uint32_t TraceVersion = 1;

/// Bounds-checked little-endian cursor over the raw mapping. Mirrors
/// BinaryReader's latching-failure contract without copying the bytes.
class RawCursor {
public:
  RawCursor(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool ok() const { return !Failed; }
  size_t remaining() const { return Size - Cursor; }
  size_t position() const { return Cursor; }

  uint32_t readU32() {
    uint32_t V = 0;
    if (!take(4))
      return 0;
    const uint8_t *P = Data + Cursor - 4;
    V = static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
        (static_cast<uint32_t>(P[2]) << 16) |
        (static_cast<uint32_t>(P[3]) << 24);
    return V;
  }

  uint64_t readU64() {
    const uint64_t Lo = readU32();
    const uint64_t Hi = readU32();
    return Lo | (Hi << 32);
  }

  std::string readString() {
    const uint32_t Len = readU32();
    if (Failed || Len > remaining()) {
      Failed = true;
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Data + Cursor), Len);
    Cursor += Len;
    return S;
  }

private:
  bool take(size_t N) {
    if (Failed || N > remaining()) {
      Failed = true;
      return false;
    }
    Cursor += N;
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Cursor = 0;
  bool Failed = false;
};

/// Reads the whole of \p Path into \p Out (the non-mmap path).
bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out) {
  FILE *Stream = std::fopen(Path.c_str(), "rb");
  if (!Stream)
    return false;
  bool Ok = std::fseek(Stream, 0, SEEK_END) == 0;
  const long End = Ok ? std::ftell(Stream) : -1;
  Ok = Ok && End >= 0 && std::fseek(Stream, 0, SEEK_SET) == 0;
  if (Ok) {
    Out.resize(static_cast<size_t>(End));
    Ok = Out.empty() ||
         std::fread(Out.data(), 1, Out.size(), Stream) == Out.size();
  }
  std::fclose(Stream);
  return Ok;
}

} // namespace

void MappedTrace::reset() noexcept {
#if CCSIM_HAVE_MMAP
  if (MapBase)
    ::munmap(MapBase, MapLength);
#endif
  MapBase = nullptr;
  MapLength = 0;
  AccessBase = nullptr;
  NumAccesses = 0;
  Fallback.clear();
}

MappedTrace::~MappedTrace() { reset(); }

MappedTrace::MappedTrace(MappedTrace &&Other) noexcept
    : Name(std::move(Other.Name)), Blocks(std::move(Other.Blocks)),
      MaxCacheBytes(Other.MaxCacheBytes), NumAccesses(Other.NumAccesses),
      AccessBase(Other.AccessBase), MapBase(Other.MapBase),
      MapLength(Other.MapLength), Fallback(std::move(Other.Fallback)) {
  Other.MapBase = nullptr;
  Other.MapLength = 0;
  Other.AccessBase = nullptr;
  Other.NumAccesses = 0;
}

MappedTrace &MappedTrace::operator=(MappedTrace &&Other) noexcept {
  if (this != &Other) {
    reset();
    Name = std::move(Other.Name);
    Blocks = std::move(Other.Blocks);
    MaxCacheBytes = Other.MaxCacheBytes;
    NumAccesses = Other.NumAccesses;
    AccessBase = Other.AccessBase;
    MapBase = Other.MapBase;
    MapLength = Other.MapLength;
    Fallback = std::move(Other.Fallback);
    Other.MapBase = nullptr;
    Other.MapLength = 0;
    Other.AccessBase = nullptr;
    Other.NumAccesses = 0;
  }
  return *this;
}

std::optional<MappedTrace> MappedTrace::open(const std::string &Path,
                                             bool ForceFallback) {
  MappedTrace T;
  const uint8_t *Data = nullptr;
  size_t Size = 0;

#if CCSIM_HAVE_MMAP
  if (!ForceFallback) {
    const int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd >= 0) {
      struct stat St;
      if (::fstat(Fd, &St) == 0 && St.st_size > 0) {
        void *Base = ::mmap(nullptr, static_cast<size_t>(St.st_size),
                            PROT_READ, MAP_PRIVATE, Fd, 0);
        if (Base != MAP_FAILED) {
          T.MapBase = Base;
          T.MapLength = static_cast<size_t>(St.st_size);
        }
      }
      ::close(Fd);
    }
    if (T.MapBase) {
      Data = static_cast<const uint8_t *>(T.MapBase);
      Size = T.MapLength;
    }
  }
#else
  (void)ForceFallback;
#endif

  if (!Data) {
    if (!readWholeFile(Path, T.Fallback))
      return std::nullopt;
    Data = T.Fallback.data();
    Size = T.Fallback.size();
  }

  // Header + block table, decoded eagerly (mirrors readTracePayload).
  RawCursor R(Data, Size);
  if (R.readU32() != TraceMagic || R.readU32() != TraceVersion)
    return std::nullopt;
  T.Name = R.readString();
  const uint32_t NumBlocks = R.readU32();
  if (!R.ok())
    return std::nullopt;
  T.Blocks.resize(NumBlocks);
  for (SuperblockDef &B : T.Blocks) {
    B.SizeBytes = R.readU32();
    const uint32_t NumEdges = R.readU32();
    if (!R.ok() || NumEdges > R.remaining() / 4 + 1)
      return std::nullopt;
    B.OutEdges.resize(NumEdges);
    for (SuperblockId &Edge : B.OutEdges)
      Edge = R.readU32();
  }
  const uint64_t NumAccesses = R.readU64();
  if (!R.ok() || NumAccesses > R.remaining() / 4)
    return std::nullopt;
  // The access stream must run exactly to the end of the file; trailing
  // bytes are corruption, not padding (same contract as readTrace).
  if (R.remaining() != NumAccesses * 4)
    return std::nullopt;
  T.AccessBase = Data + R.position();
  T.NumAccesses = static_cast<size_t>(NumAccesses);

  // Full Trace::validate() semantics over the mapped stream: positive
  // block sizes, in-range edges, every access names a defined block,
  // every block accessed at least once. One sequential pass; afterwards
  // idAt()/recordFor() need no per-access checks.
  std::vector<uint8_t> Touched(NumBlocks, 0);
  uint64_t Total = 0;
  for (const SuperblockDef &B : T.Blocks) {
    if (B.SizeBytes == 0)
      return std::nullopt;
    Total += B.SizeBytes;
    for (SuperblockId Edge : B.OutEdges)
      if (Edge >= NumBlocks)
        return std::nullopt;
  }
  for (size_t I = 0; I < T.NumAccesses; ++I) {
    const SuperblockId Id = T.idAt(I);
    if (Id >= NumBlocks)
      return std::nullopt;
    Touched[Id] = 1;
  }
  for (uint8_t Seen : Touched)
    if (!Seen)
      return std::nullopt;
  T.MaxCacheBytes = Total;

  return T;
}

SuperblockRecord MappedTrace::recordFor(SuperblockId Id) const {
  CCSIM_ASSERT(Id < Blocks.size(), "superblock id out of range");
  SuperblockRecord Rec;
  Rec.Id = Id;
  Rec.SizeBytes = Blocks[Id].SizeBytes;
  Rec.OutEdges = std::span<const SuperblockId>(Blocks[Id].OutEdges);
  return Rec;
}

Trace MappedTrace::toTrace() const {
  Trace T;
  T.Name = Name;
  T.Blocks = Blocks;
  T.Accesses.resize(NumAccesses);
  for (size_t I = 0; I < NumAccesses; ++I)
    T.Accesses[I] = idAt(I);
  return T;
}
