//===- trace/Trace.h - Superblock dispatch traces -------------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace format consumed by the trace-driven simulator. A trace is the
/// stand-in for the paper's DynamoRIO verbose logs (Section 4.1): it
/// records, per hot superblock, the translated size in bytes and the
/// static outbound control-flow edges (potential chain links), plus the
/// stream of superblock dispatch events in execution order. Superblock ids
/// are dense and numbered in discovery order.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TRACE_TRACE_H
#define CCSIM_TRACE_TRACE_H

#include "core/Superblock.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim {

/// Static description of one hot superblock.
struct SuperblockDef {
  uint32_t SizeBytes = 0;
  std::vector<SuperblockId> OutEdges;

  /// Content identity for cross-tenant sharing: blocks carrying the same
  /// nonzero tag are "the same translated code" across traces by
  /// construction (the overlap workload tags its shared pool this way).
  /// 0 — the default — means "derive identity from the trace name and
  /// block shape instead" (see concurrent/MultiTenantSimulator). In-memory
  /// only: the .cct file format does not carry tags, so traces that go
  /// through TraceIO lose them and fall back to derived identity.
  uint64_t ContentTag = 0;
};

/// A full benchmark trace: superblock definitions plus the dispatch
/// stream. This is what the paper saved and replayed "to allow for
/// repeatability in the experiments".
struct Trace {
  std::string Name;
  std::vector<SuperblockDef> Blocks;
  std::vector<SuperblockId> Accesses;

  size_t numSuperblocks() const { return Blocks.size(); }
  size_t numAccesses() const { return Accesses.size(); }

  /// Total translated bytes: the size an unbounded code cache would reach
  /// (the paper's maxCache term, Section 4.2).
  uint64_t maxCacheBytes() const;

  /// Builds the per-access record for superblock \p Id. The returned
  /// record's edge span aliases this trace and must not outlive it.
  SuperblockRecord recordFor(SuperblockId Id) const;

  /// Superblock sizes as doubles, for the statistics helpers.
  std::vector<double> sizesAsDoubles() const;

  /// Mean static out-degree across superblocks (Figure 12).
  double meanOutDegree() const;

  /// Structural validity: every access and edge names a defined
  /// superblock, every block has a positive size, and every block is
  /// accessed at least once.
  bool validate() const;
};

} // namespace ccsim

#endif // CCSIM_TRACE_TRACE_H
