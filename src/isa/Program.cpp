//===- isa/Program.cpp - Guest programs and the assembler -------------------===//

#include "isa/Program.h"
#include "support/Contracts.h"


using namespace ccsim;

bool Program::decodeAt(uint32_t PC, Instruction &Out) const {
  if (PC >= Bytes.size())
    return false;
  return decode(Bytes.data() + PC, Bytes.size() - PC, Out);
}

size_t Program::countInstructions() const {
  size_t Count = 0;
  uint32_t PC = 0;
  Instruction Inst;
  while (PC < Bytes.size() && decodeAt(PC, Inst)) {
    ++Count;
    PC += Inst.Size;
  }
  return Count;
}

ProgramBuilder::Label ProgramBuilder::createLabel() {
  LabelPositions.push_back(-1);
  return static_cast<Label>(LabelPositions.size() - 1);
}

void ProgramBuilder::bind(Label L) {
  CCSIM_ASSERT(L < LabelPositions.size(), "unknown label");
  CCSIM_ASSERT(LabelPositions[L] < 0, "label bound twice");
  LabelPositions[L] = currentPC();
}

void ProgramBuilder::emit(const Instruction &Inst) {
  uint8_t Buf[8];
  const uint8_t Size = encode(Inst, Buf);
  Bytes.insert(Bytes.end(), Buf, Buf + Size);
}

void ProgramBuilder::emitWithTargetFixup(const Instruction &Inst, Label L,
                                         uint8_t TargetFieldOffset) {
  CCSIM_ASSERT(L < LabelPositions.size(), "unknown label");
  Fixups.push_back(Fixup{currentPC() + TargetFieldOffset, L});
  emit(Inst);
}

void ProgramBuilder::emitNop() { emit(Instruction{Opcode::Nop}); }

void ProgramBuilder::emitHalt() { emit(Instruction{Opcode::Halt}); }

void ProgramBuilder::emitAlu(Opcode Op, uint8_t Rd, uint8_t Rs1,
                             uint8_t Rs2) {
  CCSIM_ASSERT(static_cast<uint8_t>(Op) >= 0x10 &&
         static_cast<uint8_t>(Op) <= 0x17, "not an ALU opcode");
  Instruction I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  emit(I);
}

void ProgramBuilder::emitAddi(uint8_t Rd, uint8_t Rs1, int8_t Imm) {
  Instruction I;
  I.Op = Opcode::Addi;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Imm = Imm;
  emit(I);
}

void ProgramBuilder::emitMovi(uint8_t Rd, int16_t Imm) {
  Instruction I;
  I.Op = Opcode::Movi;
  I.Rd = Rd;
  I.Imm = Imm;
  emit(I);
}

void ProgramBuilder::emitLd(uint8_t Rd, uint8_t Base, int16_t Offset) {
  Instruction I;
  I.Op = Opcode::Ld;
  I.Rd = Rd;
  I.Rs1 = Base;
  I.Imm = Offset;
  emit(I);
}

void ProgramBuilder::emitSt(uint8_t Value, uint8_t Base, int16_t Offset) {
  Instruction I;
  I.Op = Opcode::St;
  I.Rs2 = Value;
  I.Rs1 = Base;
  I.Imm = Offset;
  emit(I);
}

void ProgramBuilder::emitBeqz(uint8_t Rs1, Label Target) {
  Instruction I;
  I.Op = Opcode::Beqz;
  I.Rs1 = Rs1;
  emitWithTargetFixup(I, Target, /*TargetFieldOffset=*/2);
}

void ProgramBuilder::emitBnez(uint8_t Rs1, Label Target) {
  Instruction I;
  I.Op = Opcode::Bnez;
  I.Rs1 = Rs1;
  emitWithTargetFixup(I, Target, /*TargetFieldOffset=*/2);
}

void ProgramBuilder::emitBlt(uint8_t Rs1, uint8_t Rs2, Label Target) {
  Instruction I;
  I.Op = Opcode::Blt;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  emitWithTargetFixup(I, Target, /*TargetFieldOffset=*/3);
}

void ProgramBuilder::emitJmp(Label Target) {
  Instruction I;
  I.Op = Opcode::Jmp;
  emitWithTargetFixup(I, Target, /*TargetFieldOffset=*/1);
}

void ProgramBuilder::emitJr(uint8_t Rs1) {
  Instruction I;
  I.Op = Opcode::Jr;
  I.Rs1 = Rs1;
  emit(I);
}

void ProgramBuilder::emitCall(Label Target) {
  Instruction I;
  I.Op = Opcode::Call;
  emitWithTargetFixup(I, Target, /*TargetFieldOffset=*/1);
}

void ProgramBuilder::emitRet() { emit(Instruction{Opcode::Ret}); }

Program ProgramBuilder::finish() {
  for (const Fixup &F : Fixups) {
    const int64_t Pos = LabelPositions[F.L];
    CCSIM_ASSERT(Pos >= 0, "unbound label at finish()");
    const uint32_t Target = static_cast<uint32_t>(Pos);
    Bytes[F.Offset + 0] = static_cast<uint8_t>(Target);
    Bytes[F.Offset + 1] = static_cast<uint8_t>(Target >> 8);
    Bytes[F.Offset + 2] = static_cast<uint8_t>(Target >> 16);
    Bytes[F.Offset + 3] = static_cast<uint8_t>(Target >> 24);
  }
  Program P;
  P.Bytes = std::move(Bytes);
  P.EntryPC = EntryPC;
  Bytes.clear();
  Fixups.clear();
  LabelPositions.clear();
  return P;
}
