//===- isa/Isa.h - Synthetic guest instruction set -------------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small synthetic guest ISA for the mini dynamic binary translator
/// (the DynamoRIO substitute used in Figure 9 and Table 2). Design goals:
///
///   - variable-length encoding (1-7 bytes), so translated superblocks
///     have realistic variable byte sizes,
///   - enough control flow (conditional branches, direct/indirect jumps,
///     calls/returns) to form superblocks and chain links,
///   - trivially interpretable, so guest programs really execute.
///
/// Registers: 16 general-purpose 64-bit registers r0..r15 (r0 reads as
/// zero; writes to it are ignored), a program counter, and a call stack
/// managed by CALL/RET (the interpreter keeps it off to the side, like a
/// hardware return-address stack).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_ISA_ISA_H
#define CCSIM_ISA_ISA_H

#include <cstdint>
#include <string>

namespace ccsim {

/// Guest opcodes. The numeric values are the encoding's first byte.
enum class Opcode : uint8_t {
  Nop = 0x00,  ///< 1 byte.
  Halt = 0x01, ///< 1 byte: stop the program.
  Add = 0x10,  ///< 4 bytes: rd, rs1, rs2.
  Sub = 0x11,  ///< 4 bytes.
  Mul = 0x12,  ///< 4 bytes.
  Xor = 0x13,  ///< 4 bytes.
  And = 0x14,  ///< 4 bytes.
  Or = 0x15,   ///< 4 bytes.
  Shl = 0x16,  ///< 4 bytes.
  Shr = 0x17,  ///< 4 bytes.
  Addi = 0x20, ///< 4 bytes: rd, rs1, imm8 (sign-extended).
  Movi = 0x21, ///< 4 bytes: rd, imm16 (sign-extended).
  Ld = 0x30,   ///< 5 bytes: rd, rs1(base), imm16 offset.
  St = 0x31,   ///< 5 bytes: rs2(value), rs1(base), imm16 offset.
  Beqz = 0x40, ///< 6 bytes: rs1, target32. Branch if rs1 == 0.
  Bnez = 0x41, ///< 6 bytes: rs1, target32. Branch if rs1 != 0.
  Blt = 0x42,  ///< 7 bytes: rs1, rs2, target32. Branch if rs1 < rs2.
  Jmp = 0x50,  ///< 5 bytes: target32 (absolute).
  Jr = 0x51,   ///< 2 bytes: rs1 (indirect jump to register value).
  Call = 0x52, ///< 5 bytes: target32; pushes the return address.
  Ret = 0x53,  ///< 1 byte: pops the return address.
};

/// Number of guest registers.
inline constexpr unsigned NumRegisters = 16;

/// A decoded guest instruction.
struct Instruction {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  int32_t Imm = 0;     ///< Immediate operand (sign-extended).
  uint32_t Target = 0; ///< Branch/jump/call target (absolute byte PC).
  uint8_t Size = 1;    ///< Encoded size in bytes.

  /// True for any instruction that can change the PC non-sequentially.
  bool isControlFlow() const;
  /// True for conditional branches (two successors).
  bool isConditionalBranch() const;
  /// True for Jr and Ret (target unknown statically).
  bool isIndirect() const;
  /// Human-readable disassembly.
  std::string toString() const;
};

/// Encoded size of \p Op in bytes.
uint8_t opcodeSize(Opcode Op);

/// True if the byte value is a defined opcode.
bool isValidOpcode(uint8_t Byte);

/// Decodes one instruction at \p Bytes (at most \p Avail bytes readable).
/// Returns false on truncation or an invalid opcode.
bool decode(const uint8_t *Bytes, size_t Avail, Instruction &Out);

/// Encodes \p Inst into \p Out (which must have at least 7 bytes of
/// room). Returns the encoded size.
uint8_t encode(const Instruction &Inst, uint8_t *Out);

} // namespace ccsim

#endif // CCSIM_ISA_ISA_H
