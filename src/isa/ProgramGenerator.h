//===- isa/ProgramGenerator.h - Synthetic guest program synthesis ---------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates terminating synthetic guest programs for the mini dynamic
/// binary translator: a main driver loop over an acyclic call graph of
/// functions, each with a counted inner loop over straight-line ALU
/// blocks, forward conditional diamonds, loads/stores, and calls to
/// deeper functions. The knobs control code size, superblock length, and
/// call/return density — the properties that determine chaining benefit
/// (Table 2) and eviction behavior (Figure 9).
///
/// Termination is guaranteed by construction: all loops are counted, the
/// call graph is acyclic (functions only call higher-numbered functions),
/// and all conditional branches jump forward.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_ISA_PROGRAMGENERATOR_H
#define CCSIM_ISA_PROGRAMGENERATOR_H

#include "isa/Program.h"

#include <cstdint>

namespace ccsim {

/// Parameters for synthetic program generation.
struct ProgramSpec {
  uint32_t NumFunctions = 16;
  uint32_t MinBlocksPerFunction = 4;
  uint32_t MaxBlocksPerFunction = 10;
  uint32_t MinAluPerBlock = 4;
  uint32_t MaxAluPerBlock = 16;
  uint32_t OuterIterations = 200; ///< Main driver loop trip count
                                  ///< (per phase).
  uint32_t MainPhases = 1; ///< Program phases: each phase's main loop
                           ///< calls a different window of the function
                           ///< table, giving the execution (and hence a
                           ///< recorded trace) working-set phase shifts.
  uint32_t InnerIterations = 8;   ///< Per-function counted loop.
  uint32_t TopLevelCalls = 4;     ///< Calls per main-loop iteration.
  double MeanCallsPerFunction = 0.6; ///< Expected calls per function
                                     ///< *execution* (branching factor of
                                     ///< the dynamic call tree; must stay
                                     ///< below 1 or runtime explodes).
  double BranchProb = 0.4;   ///< Probability a block ends in a forward
                             ///< conditional diamond.
  double RareBranchProb = 0.0; ///< Probability a block ends with a
                               ///< rarely-taken exit to cold code (the
                               ///< source of persistent unlinked exits).
  uint32_t RareMaskBits = 6;   ///< Rare exit taken ~2^-RareMaskBits.
  double LoadStoreProb = 0.3; ///< Probability of a memory op per block.
  uint32_t SharedCalleeCount = 0; ///< When nonzero, call sites target the
                                  ///< deepest N functions (a shared
                                  ///< "library"), so the same function is
                                  ///< called from many interleaved sites
                                  ///< and its returns are polymorphic.
  uint32_t PolyTopSites = 0;   ///< Top-level call sites all targeting the
                               ///< deepest function (>= 2 makes its
                               ///< returns polymorphic).
  uint32_t PolyPeriodLog2 = 0; ///< Poly sites fire every 2^g main
                               ///< iterations (finer poly-rate control).
  uint64_t Seed = 1;
};

/// Generates a program for \p Spec. The result halts in a bounded number
/// of steps and never executes an invalid opcode.
Program generateProgram(const ProgramSpec &Spec);

} // namespace ccsim

#endif // CCSIM_ISA_PROGRAMGENERATOR_H
