//===- isa/Program.h - Guest programs and the assembler --------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A guest program is a flat byte image plus an entry point. The
/// ProgramBuilder is a tiny assembler with labels and fixups used by the
/// synthetic program generator and by tests.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_ISA_PROGRAM_H
#define CCSIM_ISA_PROGRAM_H

#include "isa/Isa.h"

#include <cstdint>
#include <vector>

namespace ccsim {

/// An executable guest program image.
struct Program {
  std::vector<uint8_t> Bytes;
  uint32_t EntryPC = 0;

  uint32_t size() const { return static_cast<uint32_t>(Bytes.size()); }

  /// Decodes the instruction at \p PC; returns false past the end or on
  /// a malformed byte.
  bool decodeAt(uint32_t PC, Instruction &Out) const;

  /// Counts static instructions by linear scan (programs emitted by the
  /// builder have no embedded data).
  size_t countInstructions() const;
};

/// Small assembler with forward-reference fixups.
class ProgramBuilder {
public:
  /// An opaque label handle.
  using Label = uint32_t;

  /// Creates an unbound label.
  Label createLabel();

  /// Binds \p L to the current position. A label may be bound only once.
  void bind(Label L);

  /// Current emit position.
  uint32_t currentPC() const { return static_cast<uint32_t>(Bytes.size()); }

  // Instruction emitters.
  void emitNop();
  void emitHalt();
  void emitAlu(Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2);
  void emitAddi(uint8_t Rd, uint8_t Rs1, int8_t Imm);
  void emitMovi(uint8_t Rd, int16_t Imm);
  void emitLd(uint8_t Rd, uint8_t Base, int16_t Offset);
  void emitSt(uint8_t Value, uint8_t Base, int16_t Offset);
  void emitBeqz(uint8_t Rs1, Label Target);
  void emitBnez(uint8_t Rs1, Label Target);
  void emitBlt(uint8_t Rs1, uint8_t Rs2, Label Target);
  void emitJmp(Label Target);
  void emitJr(uint8_t Rs1);
  void emitCall(Label Target);
  void emitRet();

  /// Marks the program entry point at the current position.
  void setEntryHere() { EntryPC = currentPC(); }

  /// Resolves all fixups and returns the program. Every referenced label
  /// must be bound.
  Program finish();

private:
  struct Fixup {
    uint32_t Offset; ///< Byte offset of the 32-bit target field.
    Label L;
  };

  std::vector<uint8_t> Bytes;
  std::vector<int64_t> LabelPositions; // -1 while unbound.
  std::vector<Fixup> Fixups;
  uint32_t EntryPC = 0;

  void emit(const Instruction &Inst);
  void emitWithTargetFixup(const Instruction &Inst, Label L,
                           uint8_t TargetFieldOffset);
};

} // namespace ccsim

#endif // CCSIM_ISA_PROGRAM_H
