//===- isa/Isa.cpp - Synthetic guest instruction set ------------------------===//

#include "isa/Isa.h"

#include <cassert>
#include <cstdio>

using namespace ccsim;

bool Instruction::isControlFlow() const {
  switch (Op) {
  case Opcode::Beqz:
  case Opcode::Bnez:
  case Opcode::Blt:
  case Opcode::Jmp:
  case Opcode::Jr:
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Halt:
    return true;
  default:
    return false;
  }
}

bool Instruction::isConditionalBranch() const {
  return Op == Opcode::Beqz || Op == Opcode::Bnez || Op == Opcode::Blt;
}

bool Instruction::isIndirect() const {
  return Op == Opcode::Jr || Op == Opcode::Ret;
}

uint8_t ccsim::opcodeSize(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Ret:
    return 1;
  case Opcode::Jr:
    return 2;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Xor:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Addi:
  case Opcode::Movi:
    return 4;
  case Opcode::Ld:
  case Opcode::St:
  case Opcode::Jmp:
  case Opcode::Call:
    return 5;
  case Opcode::Beqz:
  case Opcode::Bnez:
    return 6;
  case Opcode::Blt:
    return 7;
  }
  return 1;
}

bool ccsim::isValidOpcode(uint8_t Byte) {
  switch (static_cast<Opcode>(Byte)) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Xor:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Addi:
  case Opcode::Movi:
  case Opcode::Ld:
  case Opcode::St:
  case Opcode::Beqz:
  case Opcode::Bnez:
  case Opcode::Blt:
  case Opcode::Jmp:
  case Opcode::Jr:
  case Opcode::Call:
  case Opcode::Ret:
    return true;
  }
  return false;
}

static uint32_t readU32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

static void writeU32(uint8_t *P, uint32_t V) {
  P[0] = static_cast<uint8_t>(V);
  P[1] = static_cast<uint8_t>(V >> 8);
  P[2] = static_cast<uint8_t>(V >> 16);
  P[3] = static_cast<uint8_t>(V >> 24);
}

bool ccsim::decode(const uint8_t *Bytes, size_t Avail, Instruction &Out) {
  if (Avail == 0 || !isValidOpcode(Bytes[0]))
    return false;
  const Opcode Op = static_cast<Opcode>(Bytes[0]);
  const uint8_t Size = opcodeSize(Op);
  if (Avail < Size)
    return false;

  Out = Instruction();
  Out.Op = Op;
  Out.Size = Size;
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Ret:
    break;
  case Opcode::Jr:
    Out.Rs1 = Bytes[1] & 0x0f;
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Xor:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Shl:
  case Opcode::Shr:
    Out.Rd = Bytes[1] & 0x0f;
    Out.Rs1 = Bytes[2] & 0x0f;
    Out.Rs2 = Bytes[3] & 0x0f;
    break;
  case Opcode::Addi:
    Out.Rd = Bytes[1] & 0x0f;
    Out.Rs1 = Bytes[2] & 0x0f;
    Out.Imm = static_cast<int8_t>(Bytes[3]);
    break;
  case Opcode::Movi:
    Out.Rd = Bytes[1] & 0x0f;
    Out.Imm = static_cast<int16_t>(Bytes[2] | (Bytes[3] << 8));
    break;
  case Opcode::Ld:
    Out.Rd = Bytes[1] & 0x0f;
    Out.Rs1 = Bytes[2] & 0x0f;
    Out.Imm = static_cast<int16_t>(Bytes[3] | (Bytes[4] << 8));
    break;
  case Opcode::St:
    Out.Rs2 = Bytes[1] & 0x0f;
    Out.Rs1 = Bytes[2] & 0x0f;
    Out.Imm = static_cast<int16_t>(Bytes[3] | (Bytes[4] << 8));
    break;
  case Opcode::Beqz:
  case Opcode::Bnez:
    Out.Rs1 = Bytes[1] & 0x0f;
    Out.Target = readU32(Bytes + 2);
    break;
  case Opcode::Blt:
    Out.Rs1 = Bytes[1] & 0x0f;
    Out.Rs2 = Bytes[2] & 0x0f;
    Out.Target = readU32(Bytes + 3);
    break;
  case Opcode::Jmp:
  case Opcode::Call:
    Out.Target = readU32(Bytes + 1);
    break;
  }
  return true;
}

uint8_t ccsim::encode(const Instruction &Inst, uint8_t *Out) {
  const uint8_t Size = opcodeSize(Inst.Op);
  Out[0] = static_cast<uint8_t>(Inst.Op);
  switch (Inst.Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Ret:
    break;
  case Opcode::Jr:
    Out[1] = Inst.Rs1 & 0x0f;
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Xor:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Shl:
  case Opcode::Shr:
    Out[1] = Inst.Rd & 0x0f;
    Out[2] = Inst.Rs1 & 0x0f;
    Out[3] = Inst.Rs2 & 0x0f;
    break;
  case Opcode::Addi:
    Out[1] = Inst.Rd & 0x0f;
    Out[2] = Inst.Rs1 & 0x0f;
    Out[3] = static_cast<uint8_t>(Inst.Imm);
    break;
  case Opcode::Movi:
    Out[1] = Inst.Rd & 0x0f;
    Out[2] = static_cast<uint8_t>(Inst.Imm);
    Out[3] = static_cast<uint8_t>(Inst.Imm >> 8);
    break;
  case Opcode::Ld:
    Out[1] = Inst.Rd & 0x0f;
    Out[2] = Inst.Rs1 & 0x0f;
    Out[3] = static_cast<uint8_t>(Inst.Imm);
    Out[4] = static_cast<uint8_t>(Inst.Imm >> 8);
    break;
  case Opcode::St:
    Out[1] = Inst.Rs2 & 0x0f;
    Out[2] = Inst.Rs1 & 0x0f;
    Out[3] = static_cast<uint8_t>(Inst.Imm);
    Out[4] = static_cast<uint8_t>(Inst.Imm >> 8);
    break;
  case Opcode::Beqz:
  case Opcode::Bnez:
    Out[1] = Inst.Rs1 & 0x0f;
    writeU32(Out + 2, Inst.Target);
    break;
  case Opcode::Blt:
    Out[1] = Inst.Rs1 & 0x0f;
    Out[2] = Inst.Rs2 & 0x0f;
    writeU32(Out + 3, Inst.Target);
    break;
  case Opcode::Jmp:
  case Opcode::Call:
    writeU32(Out + 1, Inst.Target);
    break;
  }
  return Size;
}

std::string Instruction::toString() const {
  char Buf[96];
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Halt:
    return "halt";
  case Opcode::Ret:
    return "ret";
  case Opcode::Jr:
    std::snprintf(Buf, sizeof(Buf), "jr r%u", Rs1);
    return Buf;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Xor:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Shl:
  case Opcode::Shr: {
    static const char *Names[] = {"add", "sub", "mul", "xor",
                                  "and", "or",  "shl", "shr"};
    const unsigned Index = static_cast<unsigned>(Op) - 0x10;
    std::snprintf(Buf, sizeof(Buf), "%s r%u, r%u, r%u", Names[Index], Rd,
                  Rs1, Rs2);
    return Buf;
  }
  case Opcode::Addi:
    std::snprintf(Buf, sizeof(Buf), "addi r%u, r%u, %d", Rd, Rs1, Imm);
    return Buf;
  case Opcode::Movi:
    std::snprintf(Buf, sizeof(Buf), "movi r%u, %d", Rd, Imm);
    return Buf;
  case Opcode::Ld:
    std::snprintf(Buf, sizeof(Buf), "ld r%u, %d(r%u)", Rd, Imm, Rs1);
    return Buf;
  case Opcode::St:
    std::snprintf(Buf, sizeof(Buf), "st r%u, %d(r%u)", Rs2, Imm, Rs1);
    return Buf;
  case Opcode::Beqz:
    std::snprintf(Buf, sizeof(Buf), "beqz r%u, 0x%x", Rs1, Target);
    return Buf;
  case Opcode::Bnez:
    std::snprintf(Buf, sizeof(Buf), "bnez r%u, 0x%x", Rs1, Target);
    return Buf;
  case Opcode::Blt:
    std::snprintf(Buf, sizeof(Buf), "blt r%u, r%u, 0x%x", Rs1, Rs2, Target);
    return Buf;
  case Opcode::Jmp:
    std::snprintf(Buf, sizeof(Buf), "jmp 0x%x", Target);
    return Buf;
  case Opcode::Call:
    std::snprintf(Buf, sizeof(Buf), "call 0x%x", Target);
    return Buf;
  }
  return "<invalid>";
}
