//===- isa/ProgramGenerator.cpp - Synthetic guest program synthesis --------===//

#include "isa/ProgramGenerator.h"
#include "support/Contracts.h"

#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace ccsim;

namespace {

/// Register conventions for generated programs:
///   r1  outer loop counter (main only)
///   r2  inner loop counter (saved/restored across calls via r15 stack)
///   r4..r11  scratch data registers churned by ALU blocks
///   r13 data base register (0)
///   r15 in-memory save stack pointer
constexpr uint8_t OuterCounter = 1;
constexpr uint8_t InnerCounter = 2;
constexpr uint8_t RareCond = 3;   // Scratch for rare/poly conditions.
constexpr uint8_t RareMask = 12;  // Holds the rare-exit mask constant.
constexpr uint8_t PolyMask = 14;  // Holds the poly-site period mask.
constexpr uint8_t DataBase = 13;
constexpr uint8_t SaveStack = 15;

class GeneratorState {
public:
  GeneratorState(const ProgramSpec &Spec) : Spec(Spec), R(Spec.Seed) {}

  Program generate();

private:
  const ProgramSpec &Spec;
  Rng R;
  ProgramBuilder B;
  std::vector<ProgramBuilder::Label> FunctionLabels;

  uint8_t scratchReg() { return 4 + static_cast<uint8_t>(R.nextBelow(8)); }

  uint32_t pickCallee(uint32_t MinIndex);
  void emitAluBlock(uint32_t Count);
  void emitRareExit();
  void emitFunction(uint32_t Index);
  void emitMain();
};

/// Emits a rarely-taken forward exit: condition (r & mask) == 0 falls
/// into a small cold block that rejoins immediately. The cold block is
/// executed ~2^-RareMaskBits of the time, so it rarely becomes hot and
/// its executions keep returning control to the dispatcher — the source
/// of persistent unlinked exits in a chained system.
void GeneratorState::emitRareExit() {
  ProgramBuilder::Label Join = B.createLabel();
  B.emitAlu(Opcode::And, RareCond, scratchReg(), RareMask);
  B.emitBnez(RareCond, Join); // Common case: skip the cold block.
  emitAluBlock(3);
  B.bind(Join);
}

uint32_t GeneratorState::pickCallee(uint32_t MinIndex) {
  CCSIM_ASSERT(MinIndex < Spec.NumFunctions, "no callee available");
  uint32_t Lo = MinIndex;
  if (Spec.SharedCalleeCount > 0 &&
      Spec.NumFunctions > Spec.SharedCalleeCount) {
    // Prefer the shared library at the bottom of the call graph.
    Lo = std::max(MinIndex, Spec.NumFunctions - Spec.SharedCalleeCount);
  }
  return static_cast<uint32_t>(R.nextRange(Lo, Spec.NumFunctions - 1));
}

void GeneratorState::emitAluBlock(uint32_t Count) {
  static const Opcode AluOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                  Opcode::Xor, Opcode::And, Opcode::Or,
                                  Opcode::Shl, Opcode::Shr};
  for (uint32_t I = 0; I < Count; ++I) {
    const Opcode Op = AluOps[R.nextBelow(8)];
    if (Op == Opcode::Shl || Op == Opcode::Shr) {
      // Bound shift amounts: rd = rs1 shift (rs2 & 63) is handled by the
      // interpreter, but keep the data lively with an addi instead
      // half of the time.
      if (R.nextBool(0.5)) {
        B.emitAddi(scratchReg(), scratchReg(),
                   static_cast<int8_t>(R.nextRange(-100, 100)));
        continue;
      }
    }
    B.emitAlu(Op, scratchReg(), scratchReg(), scratchReg());
  }
  if (R.nextBool(Spec.LoadStoreProb)) {
    const int16_t Offset = static_cast<int16_t>(R.nextBelow(16000));
    if (R.nextBool(0.5))
      B.emitLd(scratchReg(), DataBase, Offset);
    else
      B.emitSt(scratchReg(), DataBase, Offset);
  }
}

void GeneratorState::emitFunction(uint32_t Index) {
  B.bind(FunctionLabels[Index]);

  // Prologue: save the caller's inner counter on the in-memory stack.
  B.emitSt(InnerCounter, SaveStack, 0);
  B.emitAddi(SaveStack, SaveStack, 8);
  B.emitMovi(InnerCounter, static_cast<int16_t>(Spec.InnerIterations));

  ProgramBuilder::Label LoopHead = B.createLabel();
  B.bind(LoopHead);

  const uint32_t NumBlocks = static_cast<uint32_t>(R.nextRange(
      Spec.MinBlocksPerFunction, Spec.MaxBlocksPerFunction));

  // Each call site in the loop body executes InnerIterations times, so
  // divide the per-execution call budget down to a per-site probability.
  // Keeping the dynamic branching factor below 1 bounds total runtime.
  const double CallSiteProb =
      Spec.MeanCallsPerFunction /
      (static_cast<double>(NumBlocks) * Spec.InnerIterations);

  for (uint32_t Block = 0; Block < NumBlocks; ++Block) {
    const uint32_t Alu = static_cast<uint32_t>(
        R.nextRange(Spec.MinAluPerBlock, Spec.MaxAluPerBlock));

    if (R.nextBool(Spec.BranchProb)) {
      // Forward diamond: conditionally skip an alternate block.
      ProgramBuilder::Label Else = B.createLabel();
      ProgramBuilder::Label Join = B.createLabel();
      if (R.nextBool(0.5))
        B.emitBeqz(scratchReg(), Else);
      else
        B.emitBnez(scratchReg(), Else);
      emitAluBlock(Alu);
      B.emitJmp(Join);
      B.bind(Else);
      emitAluBlock(Alu / 2 + 1);
      B.bind(Join);
    } else {
      emitAluBlock(Alu);
    }

    if (R.nextBool(Spec.RareBranchProb))
      emitRareExit();

    // Calls only go deeper (acyclic call graph).
    if (Index + 1 < Spec.NumFunctions && R.nextBool(CallSiteProb))
      B.emitCall(FunctionLabels[pickCallee(Index + 1)]);
  }

  // Loop latch.
  B.emitAddi(InnerCounter, InnerCounter, -1);
  B.emitBnez(InnerCounter, LoopHead);

  // Epilogue: restore the caller's counter.
  B.emitAddi(SaveStack, SaveStack, -8);
  B.emitLd(InnerCounter, SaveStack, 0);
  B.emitRet();
}

void GeneratorState::emitMain() {
  B.setEntryHere();
  B.emitMovi(OuterCounter, static_cast<int16_t>(Spec.OuterIterations));
  B.emitMovi(DataBase, 0);
  B.emitMovi(SaveStack, 16000); // Save stack above the data region.
  B.emitMovi(RareMask,
             static_cast<int16_t>((1u << Spec.RareMaskBits) - 1));
  B.emitMovi(PolyMask,
             static_cast<int16_t>((1u << Spec.PolyPeriodLog2) - 1));
  // Seed the scratch registers with distinct values.
  for (uint8_t Reg = 4; Reg < 12; ++Reg)
    B.emitMovi(Reg, static_cast<int16_t>(Reg * 1237 + 11));

  // One main loop per program phase; each phase's call sites target a
  // different window of the function table, so the hot working set
  // shifts over the program's lifetime.
  const uint32_t Phases = std::max<uint32_t>(1, Spec.MainPhases);
  for (uint32_t Phase = 0; Phase < Phases; ++Phase) {
    if (Phase > 0)
      B.emitMovi(OuterCounter,
                 static_cast<int16_t>(Spec.OuterIterations));
    ProgramBuilder::Label MainLoop = B.createLabel();
    B.bind(MainLoop);

    // Polymorphic sites: several call sites targeting the same (deepest)
    // function, firing every 2^PolyPeriodLog2 iterations. Its returns
    // then alternate between the sites' continuations, defeating the
    // exit-stub inline cache exactly like a shared helper in real code.
    for (uint32_t Site = 0; Site < Spec.PolyTopSites; ++Site) {
      ProgramBuilder::Label Skip = B.createLabel();
      B.emitAlu(Opcode::And, RareCond, OuterCounter, PolyMask);
      B.emitBnez(RareCond, Skip);
      B.emitCall(FunctionLabels[Spec.NumFunctions - 1]);
      B.bind(Skip);
      emitAluBlock(2);
    }

    // The phase's callee window advances with the phase index.
    const uint32_t WindowLo =
        Phases > 1 ? static_cast<uint32_t>(
                         (static_cast<uint64_t>(Phase) *
                          (Spec.NumFunctions - 1)) /
                         Phases)
                   : 0;
    std::vector<uint32_t> UsedCallees;
    for (uint32_t Call = 0; Call < Spec.TopLevelCalls; ++Call) {
      const uint32_t Span =
          std::max<uint32_t>(1, Spec.NumFunctions / Phases + 2);
      const uint32_t Hi = std::min<uint32_t>(
          Spec.NumFunctions - 1, WindowLo + Span);
      uint32_t Callee =
          Phases > 1
              ? static_cast<uint32_t>(R.nextRange(WindowLo, Hi))
              : pickCallee(0);
      if (Spec.SharedCalleeCount == 0) {
        // Without a shared library, keep top-level callees distinct so
        // their returns stay monomorphic (one call site per function).
        for (unsigned Attempt = 0;
             Attempt < 8 &&
             std::find(UsedCallees.begin(), UsedCallees.end(), Callee) !=
                 UsedCallees.end();
             ++Attempt)
          Callee = Phases > 1 ? static_cast<uint32_t>(
                                    R.nextRange(WindowLo, Hi))
                              : pickCallee(0);
        UsedCallees.push_back(Callee);
      }
      B.emitCall(FunctionLabels[Callee]);
      emitAluBlock(2);
    }
    B.emitAddi(OuterCounter, OuterCounter, -1);
    B.emitBnez(OuterCounter, MainLoop);
  }
  B.emitHalt();
}

Program GeneratorState::generate() {
  CCSIM_ASSERT(Spec.NumFunctions > 0, "need at least one function");
  CCSIM_ASSERT(Spec.OuterIterations > 0 && Spec.InnerIterations > 0,
               "loop counts must be positive");
  CCSIM_ASSERT(Spec.OuterIterations <= 32000 &&
                   Spec.InnerIterations <= 32000,
               "loop counts must fit the movi immediate");
  CCSIM_ASSERT(Spec.MeanCallsPerFunction < 0.95,
               "call branching factor must stay below 1");
  CCSIM_ASSERT(Spec.RareMaskBits >= 1 && Spec.RareMaskBits <= 14,
               "rare mask must fit the movi immediate");

  FunctionLabels.reserve(Spec.NumFunctions);
  for (uint32_t I = 0; I < Spec.NumFunctions; ++I)
    FunctionLabels.push_back(B.createLabel());

  emitMain();
  for (uint32_t I = 0; I < Spec.NumFunctions; ++I)
    emitFunction(I);
  return B.finish();
}

} // namespace

Program ccsim::generateProgram(const ProgramSpec &Spec) {
  GeneratorState State(Spec);
  return State.generate();
}
