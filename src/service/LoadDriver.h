//===- service/LoadDriver.h - Sustained-load service driver ---------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a SimService at sustained load: thousands of shared-replay
/// jobs pushed through a bounded admission queue faster than the
/// workers drain it, so the configured backpressure policy (shed /
/// reject / block) actually engages. The report is an exact accounting
/// -- every submitted job ends in exactly one terminal state, and the
/// driver checks that the tallies sum back to the submission count --
/// which is what the service bench gates on.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SERVICE_LOADDRIVER_H
#define CCSIM_SERVICE_LOADDRIVER_H

#include "service/SimService.h"

#include <cstdint>

namespace ccsim::service {

/// Configuration of one sustained-load run.
struct LoadDriverConfig {
  /// Template workload; every job replays its own copy.
  Trace TraceData;
  GranularitySpec Spec = GranularitySpec::units(8);

  /// Guest threads per shared-replay job (1 = exact serial semantics).
  unsigned GuestThreads = 1;
  double PressureFactor = 8.0;
  AuditLevel Audit = AuditLevel::Off;

  /// Jobs submitted in total.
  uint64_t TotalJobs = 2000;

  /// Service shape under test.
  unsigned Workers = 2;
  size_t QueueCapacity = 64;
  BackpressurePolicy Pressure = BackpressurePolicy::ShedOldest;

  /// Service-side telemetry (queue gauges, outcome counters, JobState
  /// events). Null disables it.
  telemetry::TelemetrySink *Telemetry = nullptr;
};

/// Exact accounting of one sustained-load run.
struct LoadDriverReport {
  uint64_t Submitted = 0;
  uint64_t Done = 0;
  uint64_t Failed = 0;
  uint64_t Cancelled = 0;
  uint64_t TimedOut = 0;
  uint64_t Rejected = 0;
  uint64_t Shed = 0;

  /// Sum of Stats.Accesses over Done jobs.
  uint64_t AccessesReplayed = 0;

  /// Every job reached exactly one terminal state and the per-state
  /// tallies sum to Submitted (the service conservation law).
  bool Accounted = false;
};

/// Submits Config.TotalJobs shared-replay jobs, drains the service, and
/// tallies every terminal outcome.
LoadDriverReport runSustainedLoad(const LoadDriverConfig &Config);

} // namespace ccsim::service

#endif // CCSIM_SERVICE_LOADDRIVER_H
