//===- service/Job.h - Typed simulation jobs and their outcomes ----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job vocabulary of the asynchronous simulation service: every
/// workload the serial drivers can launch (a single trace replay, a sweep
/// batch, a multi-tenant run) is expressible as one typed Job, so the
/// service and the one-shot CLI subcommands execute the exact same code
/// path. Jobs are pure values: a job owns (or shares immutably) everything
/// it needs, runs on any thread, and never touches global state, which is
/// what makes service results byte-identical to serial execution.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SERVICE_JOB_H
#define CCSIM_SERVICE_JOB_H

#include "concurrent/MultiTenantSimulator.h"
#include "concurrent/SharedEngineRunner.h"
#include "multisweep/MultiConfigEngine.h"
#include "sim/Simulator.h"
#include "sim/Sweep.h"

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace ccsim::service {

/// Lifecycle of one submitted job. Queued and Running are transient;
/// everything else is terminal.
enum class JobStatus : uint8_t {
  Queued,    ///< Admitted, waiting for a worker.
  Running,   ///< Executing on a pool worker.
  Done,      ///< Completed; the outcome holds results.
  Failed,    ///< Raised an error (invalid trace, engine failure, ...).
  Cancelled, ///< Stopped by an explicit cancel() request.
  TimedOut,  ///< Stopped by its deadline (before or during the run).
  Rejected,  ///< Never admitted: invalid config, full queue under the
             ///< Reject policy, or a draining service.
  Shed,      ///< Admitted but evicted from the queue by the ShedOldest
             ///< backpressure policy before it could run.
};

/// Stable lower-case name of \p S ("done", "timed-out", ...).
const char *jobStatusName(JobStatus S);

/// True for states a job can never leave.
inline bool isTerminal(JobStatus S) {
  return S != JobStatus::Queued && S != JobStatus::Running;
}

/// Replay one trace through one policy (the `simulate`/`replay`
/// subcommands). The job owns its trace.
struct ReplayJob {
  Trace TraceData;
  GranularitySpec Spec = GranularitySpec::units(8);
  SimConfig Config;
};

/// Run a list of sweep-grid points over a shared suite engine (the
/// `suite` subcommand). The engine is immutable during the run and may be
/// shared by many jobs.
struct SweepBatchJob {
  std::shared_ptr<const SweepEngine> Engine;
  std::vector<SweepJob> Jobs;

  /// Grid backend: one-pass (default) evaluates the whole lattice in a
  /// single trace pass per benchmark; per-config replays each point
  /// densely. Reports and metrics are byte-identical either way (the
  /// tests/multisweep contract); points one-pass cannot cover fall back
  /// to dense replay automatically.
  multisweep::SweepMode Mode = multisweep::SweepMode::OnePass;
};

/// Interleave several traces into one shared/partitioned cache (the
/// `tenants` subcommand). The job owns its traces. Policy says what to
/// simulate; Run carries the per-execution instrumentation (the service
/// overrides Run.Cancel with its own token at execution time).
struct TenantJob {
  std::vector<Trace> Traces;
  TenancyPolicy Policy;
  TenantRunHooks Run;
};

/// Replay one trace through a thread-shared engine with K guest threads
/// (the `replay --guest-threads` path and the sustained-load driver).
/// With Config.GuestThreads == 1 the outcome is byte-identical to the
/// equivalent ReplayJob; with K > 1 results are audit-validated. The
/// job owns its trace.
struct SharedReplayJob {
  Trace TraceData;
  GranularitySpec Spec = GranularitySpec::units(8);
  concurrent::SharedRunConfig Config;
};

/// Scheduling metadata attached to a job at submission.
struct JobOptions {
  /// Higher-priority jobs leave the queue first; ties run in submission
  /// order.
  int Priority = 0;

  /// Optional absolute deadline. A job whose deadline expires while
  /// queued times out without running; one that expires mid-run is
  /// stopped at the next trace chunk.
  std::optional<std::chrono::steady_clock::time_point> Deadline;

  /// Telemetry label: tags the job's queue/latency metrics and its
  /// JobState trace events. Defaults to "job-<id>".
  std::string Label;

  JobOptions &withPriority(int P) {
    Priority = P;
    return *this;
  }
  JobOptions &withDeadline(std::chrono::steady_clock::time_point D) {
    Deadline = D;
    return *this;
  }
  JobOptions &withDeadlineIn(std::chrono::nanoseconds FromNow) {
    Deadline = std::chrono::steady_clock::now() + FromNow;
    return *this;
  }
  JobOptions &withLabel(std::string Text) {
    Label = std::move(Text);
    return *this;
  }
};

/// One unit of service work: a typed payload plus scheduling options.
struct Job {
  std::variant<ReplayJob, SweepBatchJob, TenantJob, SharedReplayJob> Payload;
  JobOptions Options;

  Job() = default;
  Job(ReplayJob R, JobOptions O = {})
      : Payload(std::move(R)), Options(std::move(O)) {}
  Job(SweepBatchJob S, JobOptions O = {})
      : Payload(std::move(S)), Options(std::move(O)) {}
  Job(TenantJob T, JobOptions O = {})
      : Payload(std::move(T)), Options(std::move(O)) {}
  Job(SharedReplayJob R, JobOptions O = {})
      : Payload(std::move(R)), Options(std::move(O)) {}

  /// Stable kind label for metrics
  /// ("replay" | "sweep" | "tenants" | "shared-replay").
  const char *kindName() const;

  /// Empty when the payload is runnable; else the descriptive error of
  /// the first failing config (SimConfig::validate and friends). The
  /// service rejects invalid jobs with this message instead of letting a
  /// CCSIM_REQUIRE abort the process mid-run.
  std::string validate() const;
};

/// Result of one terminal job. Exactly one of the payload fields is
/// populated, matching the job's type; Error carries the failure,
/// cancellation, or rejection message otherwise.
struct JobOutcome {
  JobStatus Status = JobStatus::Queued;
  std::string Error;

  std::vector<SimResult> Replay;          ///< ReplayJob: one entry.
  std::vector<SuiteResult> Suite;         ///< SweepBatchJob: one per point.
  std::optional<MultiTenantResult> Tenants; ///< TenantJob.
};

/// Runs \p J to completion on the calling thread — the single execution
/// path shared by the service workers and the serial CLI subcommands
/// (which is why batch output is byte-identical to serial output).
/// \p Cancel, when non-null, is threaded into every underlying config so
/// replays stop at trace-chunk granularity; a triggered stop reports
/// Cancelled or TimedOut. Never throws: failures land in the outcome.
JobOutcome executeJob(const Job &J, CancelToken *Cancel);

} // namespace ccsim::service

#endif // CCSIM_SERVICE_JOB_H
