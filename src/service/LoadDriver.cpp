//===- service/LoadDriver.cpp - Sustained-load service driver -------------===//

#include "service/LoadDriver.h"

#include "support/Contracts.h"

#include <utility>
#include <vector>

using namespace ccsim;
using namespace ccsim::service;

LoadDriverReport
ccsim::service::runSustainedLoad(const LoadDriverConfig &Config) {
  CCSIM_REQUIRE(Config.TotalJobs >= 1, "sustained load needs jobs");

  SimServiceConfig SC;
  SC.Threads = Config.Workers;
  SC.QueueCapacity = Config.QueueCapacity;
  SC.Pressure = Config.Pressure;
  SC.Telemetry = Config.Telemetry;

  LoadDriverReport Report;
  std::vector<JobHandle> Handles;
  Handles.reserve(Config.TotalJobs);
  {
    SimService Service(SC);
    for (uint64_t I = 0; I < Config.TotalJobs; ++I) {
      SharedReplayJob J;
      J.TraceData = Config.TraceData;
      J.Spec = Config.Spec;
      J.Config.GuestThreads = Config.GuestThreads;
      J.Config.PressureFactor = Config.PressureFactor;
      J.Config.Audit = Config.Audit;
      Handles.push_back(Service.submit(
          Job(std::move(J),
              JobOptions{}.withLabel("load-" + std::to_string(I + 1)))));
    }
    Report.Submitted = Handles.size();
    Service.drain();
  }

  for (const JobHandle &H : Handles) {
    const JobOutcome &Out = H.wait();
    switch (Out.Status) {
    case JobStatus::Done:
      ++Report.Done;
      for (const SimResult &R : Out.Replay)
        Report.AccessesReplayed += R.Stats.Accesses;
      break;
    case JobStatus::Failed:
      ++Report.Failed;
      break;
    case JobStatus::Cancelled:
      ++Report.Cancelled;
      break;
    case JobStatus::TimedOut:
      ++Report.TimedOut;
      break;
    case JobStatus::Rejected:
      ++Report.Rejected;
      break;
    case JobStatus::Shed:
      ++Report.Shed;
      break;
    case JobStatus::Queued:
    case JobStatus::Running:
      // drain() completed every admitted job; a non-terminal state here
      // is an accounting bug the caller must see.
      break;
    }
  }
  Report.Accounted = Report.Done + Report.Failed + Report.Cancelled +
                         Report.TimedOut + Report.Rejected + Report.Shed ==
                     Report.Submitted;
  return Report;
}
