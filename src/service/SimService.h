//===- service/SimService.h - Async simulation job service ---------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An embeddable asynchronous job service over the simulation library:
/// typed jobs (service/Job.h) are admitted through a bounded queue with a
/// selectable backpressure policy, scheduled onto the existing ThreadPool
/// by priority, and tracked through a future-like JobHandle from Queued to
/// a terminal state. This is the request-serving layer the batch CLI and
/// embedding applications talk to, in the way Memshare fronts its
/// multi-tenant cache and ShareJIT wraps its shared code cache behind a
/// managed API.
///
/// Determinism: the service only decides *when and where* a job runs,
/// never *what it computes* — every job executes the same executeJob()
/// path the serial drivers use, on its own private cache structures — so
/// a batch of jobs produces byte-identical per-job results to running
/// them serially, regardless of thread count, priorities, or scheduling.
///
/// Observability: when given a TelemetrySink the service exposes, via
/// MetricsRegistry, queue depth (current + peak), wait/run latency
/// histograms per job kind, per-job wait/run gauges under the job's
/// label, and counters per terminal state (done / failed / cancelled /
/// timed-out / rejected / shed), plus JobState trace events for every
/// transition.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SERVICE_SIMSERVICE_H
#define CCSIM_SERVICE_SIMSERVICE_H

#include "concurrent/ThreadPool.h"
#include "service/Job.h"
#include "support/ThreadSafety.h"
#include "telemetry/Telemetry.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

namespace ccsim::service {

/// What submit() does when the admission queue is full.
enum class BackpressurePolicy : uint8_t {
  Block,     ///< Block the submitter until space frees up.
  Reject,    ///< Fail the submission immediately (status Rejected).
  ShedOldest ///< Evict the oldest queued job (status Shed) to make room.
};

/// Stable lower-case name ("block" | "reject" | "shed-oldest").
const char *backpressurePolicyName(BackpressurePolicy P);

/// Parses "block" | "reject" | "shed" | "shed-oldest".
std::optional<BackpressurePolicy>
parseBackpressurePolicy(const std::string &Text);

/// Construction-time service configuration.
struct SimServiceConfig {
  /// Worker threads (0 = hardware concurrency). Workers are always real
  /// threads: submit() never executes a job on the submitting thread.
  unsigned Threads = 0;

  /// Admission queue capacity (jobs queued but not yet running).
  size_t QueueCapacity = 64;

  /// Policy applied when the queue is full.
  BackpressurePolicy Pressure = BackpressurePolicy::Block;

  /// When true the service admits jobs but does not run any until
  /// start(): drivers can enqueue a whole batch and release it at once,
  /// making priority order deterministic for the entire batch.
  bool StartPaused = false;

  /// Service-side telemetry (queue/latency/outcome instruments and
  /// JobState events). Distinct from any sink the jobs themselves carry;
  /// null disables service telemetry entirely.
  telemetry::TelemetrySink *Telemetry = nullptr;

  /// Shape of the wait/run latency histograms.
  double LatencyBucketMs = 10.0;
  size_t LatencyBuckets = 64;
};

namespace detail {
struct JobState;
} // namespace detail

/// Shared-state handle to one submitted job. Copyable; all members are
/// thread-safe. A default-constructed handle is invalid.
class JobHandle {
public:
  JobHandle() = default;

  bool valid() const { return State != nullptr; }

  /// Service-assigned id (1-based, in submission order).
  uint64_t id() const;

  /// Current lifecycle state.
  JobStatus status() const;

  /// Order in which the job began running (1-based); 0 if it never ran.
  uint64_t startSequence() const;

  /// Blocks until the job reaches a terminal state and returns its
  /// outcome. The reference stays valid for the handle's lifetime.
  const JobOutcome &wait() const;

  /// Waits up to \p Timeout; true when the job is terminal.
  bool waitFor(std::chrono::milliseconds Timeout) const;

  /// Requests cooperative cancellation: a queued job is cancelled before
  /// it runs; a running job stops at its next trace chunk. Terminal jobs
  /// are unaffected.
  void cancel();

private:
  friend class SimService;
  explicit JobHandle(std::shared_ptr<detail::JobState> S)
      : State(std::move(S)) {}

  std::shared_ptr<detail::JobState> State;
};

/// The asynchronous simulation job service.
class SimService {
public:
  explicit SimService(SimServiceConfig Config = {});

  /// Drains: in-flight jobs complete, then workers join.
  ~SimService();

  SimService(const SimService &) = delete;
  SimService &operator=(const SimService &) = delete;

  /// Validates and admits \p J. Always returns a handle: invalid jobs,
  /// rejected submissions (full queue under Reject, draining service),
  /// and shed jobs all surface as terminal handles with a descriptive
  /// Error — submit() never aborts the process and only blocks under the
  /// Block policy.
  JobHandle submit(Job J) CCSIM_EXCLUDES(Mu);

  /// Releases a paused service's queue (no-op otherwise).
  void start() CCSIM_EXCLUDES(Mu);

  /// Stops admitting, completes every already-admitted job, flushes the
  /// telemetry sink's final gauges, and joins nothing (workers stay for
  /// the destructor). Safe to call more than once.
  void drain() CCSIM_EXCLUDES(Mu);

  bool draining() const CCSIM_EXCLUDES(Mu);

  /// Jobs admitted but not yet running.
  size_t queueDepth() const CCSIM_EXCLUDES(Mu);

  /// Jobs currently executing.
  size_t runningCount() const CCSIM_EXCLUDES(Mu);

  unsigned threadCount() const { return Pool.threadCount(); }

private:
  SimServiceConfig Config;

  mutable Mutex Mu;
  std::condition_variable SpaceAvailable; ///< Blocked submitters.
  std::condition_variable Unpaused;       ///< Workers of a paused service.
  std::deque<std::shared_ptr<detail::JobState>> Queue CCSIM_GUARDED_BY(Mu);
  bool Paused CCSIM_GUARDED_BY(Mu) = false;
  bool Draining CCSIM_GUARDED_BY(Mu) = false;
  size_t Running CCSIM_GUARDED_BY(Mu) = 0;
  uint64_t NextJobId CCSIM_GUARDED_BY(Mu) = 1;
  uint64_t NextStartSeq CCSIM_GUARDED_BY(Mu) = 1;
  uint64_t QueueDepthPeak CCSIM_GUARDED_BY(Mu) = 0;

  ThreadPool Pool; ///< Last member: workers must die before the state.

  void runOne() CCSIM_EXCLUDES(Mu);
  void finish(const std::shared_ptr<detail::JobState> &S, JobStatus Terminal,
              std::string Error, JobOutcome Outcome) CCSIM_EXCLUDES(Mu);
  void recordTransition(const detail::JobState &S, JobStatus To);
  void updateQueueGauges(size_t Depth) CCSIM_REQUIRES(Mu);
  std::shared_ptr<detail::JobState> popBest() CCSIM_REQUIRES(Mu);
};

} // namespace ccsim::service

#endif // CCSIM_SERVICE_SIMSERVICE_H
