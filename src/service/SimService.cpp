//===- service/SimService.cpp - Async simulation job service --------------===//

#include "service/SimService.h"

#include "concurrent/MultiTenantSimulator.h"
#include "sim/Simulator.h"
#include "sim/Sweep.h"

#include <algorithm>
#include <cstdio>
#include <utility>

using namespace ccsim;
using namespace ccsim::service;

//===----------------------------------------------------------------------===//
// Job vocabulary
//===----------------------------------------------------------------------===//

const char *ccsim::service::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Queued:
    return "queued";
  case JobStatus::Running:
    return "running";
  case JobStatus::Done:
    return "done";
  case JobStatus::Failed:
    return "failed";
  case JobStatus::Cancelled:
    return "cancelled";
  case JobStatus::TimedOut:
    return "timed-out";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::Shed:
    return "shed";
  }
  return "unknown";
}

const char *Job::kindName() const {
  if (std::holds_alternative<ReplayJob>(Payload))
    return "replay";
  if (std::holds_alternative<SweepBatchJob>(Payload))
    return "sweep";
  if (std::holds_alternative<SharedReplayJob>(Payload))
    return "shared-replay";
  return "tenants";
}

std::string Job::validate() const {
  if (const auto *R = std::get_if<ReplayJob>(&Payload)) {
    if (!R->TraceData.validate())
      return "replay job trace '" + R->TraceData.Name +
             "' is structurally invalid";
    if (R->Spec.Kind == GranularitySpec::KindType::Units && R->Spec.Units < 1)
      return "replay job needs at least one eviction unit";
    return R->Config.validate();
  }
  if (const auto *S = std::get_if<SweepBatchJob>(&Payload)) {
    if (!S->Engine)
      return "sweep batch job has no suite engine";
    if (S->Engine->traces().empty())
      return "sweep batch job's suite engine has no benchmarks";
    return validateSweepGrid(S->Jobs);
  }
  if (const auto *SR = std::get_if<SharedReplayJob>(&Payload)) {
    if (!SR->TraceData.validate())
      return "shared replay job trace '" + SR->TraceData.Name +
             "' is structurally invalid";
    if (SR->Spec.Kind == GranularitySpec::KindType::Units &&
        SR->Spec.Units < 1)
      return "shared replay job needs at least one eviction unit";
    if (SR->Config.GuestThreads < 1)
      return "shared replay job needs at least one guest thread";
    if (SR->Config.ExplicitCapacityBytes == 0 &&
        SR->Config.PressureFactor < 1.0) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf),
                    "pressure factor %g below 1 would be an over-provisioned "
                    "cache (set an explicit capacity instead)",
                    SR->Config.PressureFactor);
      return Buf;
    }
    if (SR->Config.CancelCheckInterval == 0)
      return "cancellation check interval must be at least 1 access";
    return {};
  }
  const auto &T = std::get<TenantJob>(Payload);
  if (T.Traces.empty())
    return "tenant job has no traces";
  for (const Trace &Tr : T.Traces)
    if (!Tr.validate())
      return "tenant job trace '" + Tr.Name + "' is structurally invalid";
  if (!T.Policy.Tenants.empty() &&
      T.Policy.Tenants.size() != T.Traces.size()) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "tenant job has %zu traces but %zu tenant specs",
                  T.Traces.size(), T.Policy.Tenants.size());
    return Buf;
  }
  std::string Err = T.Policy.validate();
  if (Err.empty())
    Err = T.Run.validate();
  return Err;
}

JobOutcome ccsim::service::executeJob(const Job &J, CancelToken *Cancel) {
  JobOutcome Out;
  std::string Err = J.validate();
  if (!Err.empty()) {
    Out.Status = JobStatus::Failed;
    Out.Error = std::move(Err);
    return Out;
  }
  try {
    if (const auto *R = std::get_if<ReplayJob>(&J.Payload)) {
      SimConfig Config = R->Config;
      Config.Cancel = Cancel;
      Out.Replay.push_back(sim::run(R->TraceData, R->Spec, Config));
    } else if (const auto *SR = std::get_if<SharedReplayJob>(&J.Payload)) {
      concurrent::SharedRunConfig Config = SR->Config;
      Config.Cancel = Cancel;
      const concurrent::SharedRunResult R =
          concurrent::runShared(SR->TraceData, SR->Spec, Config);
      // Shared replays surface through the same SimResult slot as plain
      // replays so every renderer (CLI, batch output, exporters) works
      // unchanged -- and so the K=1 outcome is byte-identical to a
      // ReplayJob of the same trace.
      SimResult Sim;
      Sim.BenchmarkName = R.BenchmarkName;
      Sim.PolicyName = R.PolicyName;
      Sim.CapacityBytes = R.CapacityBytes;
      Sim.MaxCacheBytes = R.MaxCacheBytes;
      Sim.Stats = R.Stats;
      Out.Replay.push_back(std::move(Sim));
    } else if (const auto *S = std::get_if<SweepBatchJob>(&J.Payload)) {
      std::vector<SweepJob> Points = S->Jobs;
      for (SweepJob &Point : Points)
        Point.Config.Cancel = Cancel;
      multisweep::MultiSweepOptions Options;
      Options.Mode = S->Mode;
      // Fallback/dedup accounting goes to stderr: reports and metrics
      // files must stay byte-identical across sweep modes, so the
      // accounting can never ride in either.
      Options.Log = [](const std::string &Line) {
        std::fprintf(stderr, "sweep: %s\n", Line.c_str());
      };
      Out.Suite = multisweep::runSweepGrid(*S->Engine, Points, Options);
    } else {
      const auto &T = std::get<TenantJob>(J.Payload);
      TenantRunHooks Run = T.Run;
      Run.Cancel = Cancel;
      MultiTenantSimulator Sim(T.Traces, T.Policy, Run);
      Out.Tenants = Sim.run();
    }
    Out.Status = JobStatus::Done;
  } catch (const ReplayCancelled &RC) {
    Out.Status = RC.TimedOut ? JobStatus::TimedOut : JobStatus::Cancelled;
    Out.Error = RC.what();
    Out.Replay.clear();
    Out.Suite.clear();
    Out.Tenants.reset();
  } catch (const std::exception &E) {
    Out.Status = JobStatus::Failed;
    Out.Error = E.what();
    Out.Replay.clear();
    Out.Suite.clear();
    Out.Tenants.reset();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Backpressure policy names
//===----------------------------------------------------------------------===//

const char *ccsim::service::backpressurePolicyName(BackpressurePolicy P) {
  switch (P) {
  case BackpressurePolicy::Block:
    return "block";
  case BackpressurePolicy::Reject:
    return "reject";
  case BackpressurePolicy::ShedOldest:
    return "shed-oldest";
  }
  return "unknown";
}

std::optional<BackpressurePolicy>
ccsim::service::parseBackpressurePolicy(const std::string &Text) {
  if (Text == "block")
    return BackpressurePolicy::Block;
  if (Text == "reject")
    return BackpressurePolicy::Reject;
  if (Text == "shed" || Text == "shed-oldest")
    return BackpressurePolicy::ShedOldest;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Shared per-job state
//===----------------------------------------------------------------------===//

namespace ccsim::service::detail {

/// The shared state behind one JobHandle. The service mutex orders queue
/// membership; this struct's own mutex orders the status/outcome pair.
/// Lock order is always service mutex before job mutex, never the
/// reverse: JobHandle methods take only the job mutex.
struct JobState {
  uint64_t Id = 0;
  Job TheJob;
  CancelToken Cancel;
  std::string Label;
  uint32_t LabelId = 0;
  std::chrono::steady_clock::time_point SubmitTime;

  mutable Mutex Mu;
  std::condition_variable Terminal;
  JobStatus Status CCSIM_GUARDED_BY(Mu) = JobStatus::Queued;
  uint64_t StartSeq CCSIM_GUARDED_BY(Mu) = 0;
  JobOutcome Outcome CCSIM_GUARDED_BY(Mu);
};

} // namespace ccsim::service::detail

using ccsim::service::detail::JobState;

//===----------------------------------------------------------------------===//
// JobHandle
//===----------------------------------------------------------------------===//

uint64_t JobHandle::id() const { return State ? State->Id : 0; }

JobStatus JobHandle::status() const {
  MutexLock Lock(State->Mu);
  return State->Status;
}

uint64_t JobHandle::startSequence() const {
  MutexLock Lock(State->Mu);
  return State->StartSeq;
}

const JobOutcome &JobHandle::wait() const {
  MutexLock Lock(State->Mu);
  while (!isTerminal(State->Status))
    State->Terminal.wait(Lock.native());
  return State->Outcome;
}

bool JobHandle::waitFor(std::chrono::milliseconds Timeout) const {
  const auto Limit = std::chrono::steady_clock::now() + Timeout;
  MutexLock Lock(State->Mu);
  while (!isTerminal(State->Status))
    if (State->Terminal.wait_until(Lock.native(), Limit) ==
        std::cv_status::timeout)
      return isTerminal(State->Status);
  return true;
}

void JobHandle::cancel() {
  if (State)
    State->Cancel.requestCancel();
}

//===----------------------------------------------------------------------===//
// SimService
//===----------------------------------------------------------------------===//

namespace {

double msBetween(std::chrono::steady_clock::time_point From,
                 std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double, std::milli>(To - From).count();
}

} // namespace

SimService::SimService(SimServiceConfig C)
    : Config(std::move(C)), Paused(Config.StartPaused),
      Pool(Config.Threads, /*AlwaysSpawnWorkers=*/true) {
  Config.QueueCapacity = std::max<size_t>(1, Config.QueueCapacity);
  Config.LatencyBuckets = std::max<size_t>(1, Config.LatencyBuckets);
  if (Config.LatencyBucketMs <= 0.0)
    Config.LatencyBucketMs = 10.0;
}

SimService::~SimService() { drain(); }

void SimService::recordTransition(const JobState &S, JobStatus To) {
  telemetry::TelemetrySink *Sink = Config.Telemetry;
  if (!Sink)
    return;
  Sink->Tracer.record(telemetry::EventKind::JobState,
                      static_cast<uint32_t>(S.Id), telemetry::NoBlock,
                      S.LabelId, static_cast<uint64_t>(To), S.Id);
  if (isTerminal(To))
    Sink->Metrics
        .counter("service_jobs_finished",
                 {{"kind", S.TheJob.kindName()}, {"status", jobStatusName(To)}})
        .increment();
}

void SimService::updateQueueGauges(size_t Depth) {
  QueueDepthPeak = std::max<uint64_t>(QueueDepthPeak, Depth);
  if (telemetry::TelemetrySink *Sink = Config.Telemetry) {
    Sink->Metrics.gauge("service_queue_depth").set(static_cast<double>(Depth));
    Sink->Metrics.gauge("service_queue_depth_peak")
        .set(static_cast<double>(QueueDepthPeak));
  }
}

void SimService::finish(const std::shared_ptr<JobState> &S, JobStatus Terminal,
                        std::string Error, JobOutcome Outcome) {
  Outcome.Status = Terminal;
  if (!Error.empty())
    Outcome.Error = std::move(Error);
  {
    MutexLock Lock(S->Mu);
    S->Outcome = std::move(Outcome);
    S->Status = Terminal;
  }
  S->Terminal.notify_all();
  recordTransition(*S, Terminal);
}

JobHandle SimService::submit(Job J) {
  auto S = std::make_shared<JobState>();
  S->TheJob = std::move(J);
  S->SubmitTime = std::chrono::steady_clock::now();

  // Admission happens under the service mutex: id assignment, validation
  // verdicts, and backpressure all serialize here.
  std::string Invalid = S->TheJob.validate();
  bool Admitted = false;
  std::string RejectError;
  std::shared_ptr<JobState> Victim;
  {
    MutexLock Lock(Mu);
    S->Id = NextJobId++;
    if (S->TheJob.Options.Label.empty())
      S->TheJob.Options.Label = "job-" + std::to_string(S->Id);
    S->Label = S->TheJob.Options.Label;
    if (Config.Telemetry)
      S->LabelId = Config.Telemetry->Tracer.internLabel(S->Label);
    if (Config.Telemetry)
      Config.Telemetry->Metrics
          .counter("service_jobs_submitted", {{"kind", S->TheJob.kindName()}})
          .increment();

    if (!Invalid.empty()) {
      RejectError = "invalid job: " + Invalid;
    } else if (Draining) {
      RejectError = "service is draining";
    } else {
      if (Queue.size() >= Config.QueueCapacity) {
        switch (Config.Pressure) {
        case BackpressurePolicy::Block:
          while (Queue.size() >= Config.QueueCapacity && !Draining)
            SpaceAvailable.wait(Lock.native());
          if (Draining)
            RejectError = "service is draining";
          break;
        case BackpressurePolicy::Reject: {
          char Buf[96];
          std::snprintf(Buf, sizeof(Buf),
                        "queue full (%zu jobs) under the reject policy",
                        Queue.size());
          RejectError = Buf;
          break;
        }
        case BackpressurePolicy::ShedOldest:
          // The deque is in submission order, so the front is the oldest
          // job still queued.
          Victim = Queue.front();
          Queue.pop_front();
          break;
        }
      }
      if (RejectError.empty()) {
        Queue.push_back(S);
        updateQueueGauges(Queue.size());
        Admitted = true;
      }
    }
  }

  if (Victim) {
    if (Config.Telemetry)
      Config.Telemetry->Metrics.counter("service_jobs_shed").increment();
    finish(Victim, JobStatus::Shed,
           "shed from a full queue by a newer submission", {});
  }

  if (!Admitted) {
    if (Config.Telemetry)
      Config.Telemetry->Metrics.counter("service_jobs_rejected").increment();
    finish(S, JobStatus::Rejected, std::move(RejectError), {});
    return JobHandle(std::move(S));
  }

  recordTransition(*S, JobStatus::Queued);
  // One pump task per admitted job. A pump that finds the queue empty
  // (its job was shed) simply returns.
  Pool.submit([this] { runOne(); });
  return JobHandle(std::move(S));
}

std::shared_ptr<JobState> SimService::popBest() {
  if (Queue.empty())
    return nullptr;
  // Highest priority first; ties resolve to the earliest submission. The
  // deque is in submission (id) order, so a strict > keeps FIFO ties.
  auto Best = Queue.begin();
  for (auto It = std::next(Queue.begin()); It != Queue.end(); ++It)
    if ((*It)->TheJob.Options.Priority > (*Best)->TheJob.Options.Priority)
      Best = It;
  std::shared_ptr<JobState> S = std::move(*Best);
  Queue.erase(Best);
  return S;
}

void SimService::runOne() {
  std::shared_ptr<JobState> S;
  {
    MutexLock Lock(Mu);
    while (Paused)
      Unpaused.wait(Lock.native());
    S = popBest();
    if (!S)
      return;
    ++Running;
    updateQueueGauges(Queue.size());
  }
  SpaceAvailable.notify_one();

  if (S->TheJob.Options.Deadline)
    S->Cancel.setDeadline(*S->TheJob.Options.Deadline);

  const auto PickTime = std::chrono::steady_clock::now();
  const double WaitMs = msBetween(S->SubmitTime, PickTime);
  if (telemetry::TelemetrySink *Sink = Config.Telemetry) {
    Sink->Metrics
        .histogram("service_wait_ms", Config.LatencyBucketMs,
                   Config.LatencyBuckets, {{"kind", S->TheJob.kindName()}})
        .observe(WaitMs);
    Sink->Metrics.gauge("service_job_wait_ms", {{"job", S->Label}})
        .set(WaitMs);
  }

  // A deadline or cancellation that fired while the job sat in the queue
  // resolves it without running it at all.
  if (const char *Reason = S->Cancel.stopReason()) {
    const bool TimedOut =
        S->Cancel.deadlineExpired() && !S->Cancel.cancelRequested();
    finish(S,
           TimedOut ? JobStatus::TimedOut : JobStatus::Cancelled,
           std::string("stopped while queued: ") + Reason, {});
  } else {
    uint64_t Seq;
    {
      MutexLock Lock(Mu);
      Seq = NextStartSeq++;
    }
    {
      MutexLock Lock(S->Mu);
      S->Status = JobStatus::Running;
      S->StartSeq = Seq;
    }
    recordTransition(*S, JobStatus::Running);

    JobOutcome Outcome = executeJob(S->TheJob, &S->Cancel);
    const double RunMs = msBetween(PickTime, std::chrono::steady_clock::now());
    if (telemetry::TelemetrySink *Sink = Config.Telemetry) {
      Sink->Metrics
          .histogram("service_run_ms", Config.LatencyBucketMs,
                     Config.LatencyBuckets, {{"kind", S->TheJob.kindName()}})
          .observe(RunMs);
      Sink->Metrics.gauge("service_job_run_ms", {{"job", S->Label}})
          .set(RunMs);
    }
    const JobStatus Terminal = Outcome.Status;
    finish(S, Terminal, "", std::move(Outcome));
  }

  {
    MutexLock Lock(Mu);
    --Running;
  }
}

void SimService::start() {
  {
    MutexLock Lock(Mu);
    Paused = false;
  }
  Unpaused.notify_all();
}

void SimService::drain() {
  {
    MutexLock Lock(Mu);
    Draining = true;
    Paused = false;
  }
  Unpaused.notify_all();
  SpaceAvailable.notify_all();
  // Every admitted job holds one pump task, so an idle pool means every
  // admitted job is terminal.
  Pool.waitIdle();
  MutexLock Lock(Mu);
  updateQueueGauges(Queue.size());
}

bool SimService::draining() const {
  MutexLock Lock(Mu);
  return Draining;
}

size_t SimService::queueDepth() const {
  MutexLock Lock(Mu);
  return Queue.size();
}

size_t SimService::runningCount() const {
  MutexLock Lock(Mu);
  return Running;
}
