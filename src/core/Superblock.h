//===- core/Superblock.h - Superblock identifiers and records ------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Superblock identifiers and the per-access record consumed by the cache
/// manager. A superblock is a single-entry multiple-exit region of
/// translated code (Hwu et al.); the code cache stores one variable-size
/// entry per superblock, and static control-flow edges between superblocks
/// become patched links ("chaining") when both endpoints are resident.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_SUPERBLOCK_H
#define CCSIM_CORE_SUPERBLOCK_H

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ccsim {

/// Dense superblock identifier. Trace generators number superblocks in
/// creation (discovery) order starting from 0, which lets the cache manager
/// use flat arrays instead of hash maps on its hot path.
using SuperblockId = uint32_t;

/// Sentinel for "no superblock".
inline constexpr SuperblockId InvalidSuperblockId =
    ~static_cast<SuperblockId>(0);

/// Identifier of the guest process (tenant) that owns a superblock when
/// several guests share one code cache. Single-tenant runs leave every
/// record at tenant 0.
using TenantId = uint32_t;

/// One dispatch event presented to the cache manager: the superblock being
/// entered, its translated size in bytes, and its static outbound edges
/// (potential chain links). The edge span must stay valid for the duration
/// of the access() call only.
struct SuperblockRecord {
  SuperblockRecord() = default;
  SuperblockRecord(SuperblockId Id, uint32_t SizeBytes,
                   std::span<const SuperblockId> OutEdges = {},
                   TenantId Tenant = 0)
      : Id(Id), SizeBytes(SizeBytes), OutEdges(OutEdges), Tenant(Tenant) {}

  SuperblockId Id = InvalidSuperblockId;
  uint32_t SizeBytes = 0;
  std::span<const SuperblockId> OutEdges;
  TenantId Tenant = 0;

  /// Content identity for cross-tenant sharing (core/SharedContentIndex).
  /// 0 means "not shareable"; engines without a content index ignore it.
  uint64_t ContentKey = 0;
};

/// A SuperblockRecord that owns its edge storage, for call sites that must
/// bind a record to a local before consuming it. The plain record's edge
/// span must not outlive the full expression that produced it — binding
/// `rec(Id, Size, {braced edges})` to a local dangles, because the braced
/// temporary dies at the semicolon. This wrapper keeps the edges alive for
/// the record's whole lifetime and converts implicitly where a
/// SuperblockRecord is expected.
class OwningSuperblockRecord {
public:
  OwningSuperblockRecord(SuperblockId Id, uint32_t SizeBytes,
                         std::vector<SuperblockId> OutEdges = {},
                         TenantId Tenant = 0)
      : Edges(std::move(OutEdges)), Rec(Id, SizeBytes, Edges, Tenant) {}

  OwningSuperblockRecord(const OwningSuperblockRecord &Other)
      : Edges(Other.Edges), Rec(Other.Rec) {
    Rec.OutEdges = Edges;
  }
  OwningSuperblockRecord(OwningSuperblockRecord &&Other) noexcept
      : Edges(std::move(Other.Edges)), Rec(Other.Rec) {
    Rec.OutEdges = Edges;
  }
  OwningSuperblockRecord &operator=(const OwningSuperblockRecord &Other) {
    if (this != &Other) {
      Edges = Other.Edges;
      Rec = Other.Rec;
      Rec.OutEdges = Edges;
    }
    return *this;
  }
  OwningSuperblockRecord &operator=(OwningSuperblockRecord &&Other) noexcept {
    Edges = std::move(Other.Edges);
    Rec = Other.Rec;
    Rec.OutEdges = Edges;
    return *this;
  }

  SuperblockRecord &record() { return Rec; }
  const SuperblockRecord &record() const { return Rec; }
  operator const SuperblockRecord &() const { return Rec; }

private:
  std::vector<SuperblockId> Edges;
  SuperblockRecord Rec;
};

} // namespace ccsim

#endif // CCSIM_CORE_SUPERBLOCK_H
