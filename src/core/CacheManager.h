//===- core/CacheManager.h - Code cache management facade ----------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache manager of Figure 1: the component a dynamic optimization
/// system invokes on every superblock dispatch. It combines the placement
/// engine (CodeCache), the eviction policy, the chaining state (LinkGraph)
/// and the analytical cost model (CostModel), and accumulates CacheStats.
///
/// One access does the following:
///   1. hit check (the hash table lookup of Figure 1),
///   2. on a miss: charge regeneration overhead (Eq. 3), make room at the
///      policy's eviction quantum (charging Eq. 2 per invocation and Eq. 4
///      per evicted block with dangling incoming links), insert, and
///      materialize chain links,
///   3. poll the policy for a preemptive whole-cache flush.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_CACHEMANAGER_H
#define CCSIM_CORE_CACHEMANAGER_H

#include "core/CacheStats.h"
#include "core/CodeCache.h"
#include "core/CostModel.h"
#include "core/EvictionPolicy.h"
#include "core/LinkGraph.h"
#include "core/Superblock.h"
#include "telemetry/Telemetry.h"

#include <functional>
#include <memory>
#include <span>

namespace ccsim {

/// One batch of evictions (a single eviction invocation or full flush),
/// reported to an observer with tenant attribution. All spans alias the
/// manager's scratch buffers and are valid only during the callback.
struct EvictionBatchEvent {
  /// Tenant whose access triggered the batch (the "evictor").
  TenantId Evictor = 0;

  /// Victims in FIFO (oldest-first) eviction order.
  std::span<const CodeCache::Resident> Victims;

  /// Owner of each victim, parallel to Victims.
  std::span<const TenantId> VictimTenants;

  /// Incoming links from survivors repaired per victim, parallel to
  /// Victims. Empty when the run has no back-pointer table (chaining
  /// disabled or a whole-cache FLUSH policy).
  std::span<const uint32_t> DanglingLinks;
};

/// Observer invoked after each eviction batch has been accounted.
using EvictionObserver = std::function<void(const EvictionBatchEvent &)>;

class CacheManager;

/// When the installed audit hook (paranoid deep validation, see
/// check::armAuditor) runs. Levels nest: Full implies Evictions.
enum class AuditLevel : uint8_t {
  Off,       ///< Hook never runs (production default).
  Evictions, ///< After every access that evicted blocks, and after flushes.
  Full,      ///< After every access and every flush.
};

/// Compile-time default audit level: Full in CCSIM_PARANOID builds
/// (-DCCSIM_PARANOID=ON at configure time), Off otherwise. Config structs
/// use this as their initializer so a paranoid build audits everywhere
/// without per-call-site opt-in.
constexpr AuditLevel defaultAuditLevel() {
#ifdef CCSIM_PARANOID
  return AuditLevel::Full;
#else
  return AuditLevel::Off;
#endif
}

/// Deep-validation hook: receives the manager after a mutation settled and
/// a short site label ("access", "flush"). Installed by check::armAuditor;
/// kept as a std::function so ccsim_core never links against ccsim_check.
using AuditHook =
    std::function<void(const CacheManager &, const char *Where)>;

/// Configuration for a CacheManager instance.
struct CacheManagerConfig {
  /// Code cache capacity in bytes (the paper's maxCache / pressure).
  uint64_t CapacityBytes = 1 << 20;

  /// Analytical instruction-overhead model.
  CostModel Costs = CostModel::paperDefaults();

  /// Maintain superblock chaining (links, back-pointer table, unlink
  /// charges). Disabling models a system without chaining (Table 2).
  bool EnableChaining = true;

  /// Optional eviction attribution hook (multi-tenant accounting). Left
  /// empty in single-tenant runs; the hot path never pays for it then.
  EvictionObserver OnEviction;

  /// Optional telemetry endpoint. Null (the default) is the disabled
  /// fast path: hits emit nothing at all, and the miss/eviction paths pay
  /// one predictable null-pointer branch each. When set, the manager
  /// emits miss, insert, per-victim evict, eviction-batch, unlink, flush,
  /// and quantum-change records into the sink's tracer.
  telemetry::TelemetrySink *Telemetry = nullptr;
};

/// Result of one access.
enum class AccessKind {
  Hit,        ///< Superblock found in the cache.
  Miss,       ///< Regenerated and inserted.
  MissTooBig, ///< Regenerated but larger than the whole cache; executed
              ///< unlinked and discarded (pathological; counted, never
              ///< expected with realistic sizes).
};

/// Drives a CodeCache under an EvictionPolicy with full chaining and
/// overhead accounting.
class CacheManager {
public:
  CacheManager(const CacheManagerConfig &Config,
               std::unique_ptr<EvictionPolicy> Policy);

  /// Processes one superblock dispatch event.
  AccessKind access(const SuperblockRecord &Rec);

  /// Forces a whole-cache flush (used by tests and external phase
  /// detectors; also the action behind PreemptiveFlushPolicy).
  void flushEntireCache();

  const CacheStats &stats() const { return Stats; }
  const CodeCache &cache() const { return Cache; }
  const LinkGraph &links() const { return Links; }
  EvictionPolicy &policy() { return *Policy; }
  const EvictionPolicy &policy() const { return *Policy; }
  const CacheManagerConfig &config() const { return Config; }

  /// The eviction quantum currently in force.
  uint64_t currentQuantum() const;

  /// Owner of resident or previously-seen superblock \p Id (tenant 0 if
  /// never inserted). Only meaningful when records carry tenant ids.
  TenantId tenantOf(SuperblockId Id) const {
    return Id < TenantById.size() ? TenantById[Id] : 0;
  }

  /// Cross-checks CodeCache and LinkGraph invariants (tests).
  bool checkInvariants() const;

  /// Paranoid-mode control. The hook only runs while the level permits,
  /// so arming an auditor on a manager left at AuditLevel::Off is free on
  /// the hot path (one branch per access).
  void setAuditLevel(AuditLevel Level) { Auditing = Level; }
  AuditLevel auditLevel() const { return Auditing; }
  void setAuditHook(AuditHook Hook) { Audit = std::move(Hook); }

private:
  CacheManagerConfig Config;
  std::unique_ptr<EvictionPolicy> Policy;
  CodeCache Cache;
  LinkGraph Links;
  CacheStats Stats;

  std::vector<uint8_t> Seen; // Cold-miss detection, indexed by id.
  std::vector<TenantId> TenantById;
  std::vector<CodeCache::Resident> EvictedScratch;
  std::vector<uint32_t> DanglingScratch;
  std::vector<TenantId> VictimTenantScratch;
  TenantId CurrentTenant = 0; // Tenant of the in-flight access.

  // Telemetry bookkeeping (only touched when Config.Telemetry is set).
  uint64_t LastQuantumTraced = 0;   // 0 = no quantum recorded yet.
  bool PreemptiveFlushInFlight = false;

  AuditLevel Auditing = defaultAuditLevel();
  AuditHook Audit;

  /// Runs the audit hook if the current level covers this site.
  /// \p Evicted: whether the mutation removed blocks (Evictions level).
  void maybeAudit(bool Evicted, const char *Where);

  void chargeEvictions(uint64_t UnitsFlushed);
  void notifyEvictions();
  void sampleBackPointerMemory();
  bool seenBefore(SuperblockId Id);
  void traceMiss(const SuperblockRecord &Rec, bool Cold, uint64_t Quantum);
  void traceEvictionBatch(uint64_t BatchBytes, bool HaveDangling);
};

} // namespace ccsim

#endif // CCSIM_CORE_CACHEMANAGER_H
