//===- core/CacheManager.h - Code cache management facade ----------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache manager of Figure 1, by the paper's name. The implementation
/// lives in core/CacheEngine.h: one engine serves both the trace-driven
/// path (this alias, via access()) and the execution-driven mini-DBT (via
/// install() + payload hooks). Trace-driven call sites and docs keep
/// using the CacheManager spelling.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_CACHEMANAGER_H
#define CCSIM_CORE_CACHEMANAGER_H

#include "core/CacheEngine.h"

namespace ccsim {

using CacheManager = CacheEngine;
using CacheManagerConfig = CacheEngineConfig;

} // namespace ccsim

#endif // CCSIM_CORE_CACHEMANAGER_H
