//===- core/SharedContentIndex.cpp - Cross-tenant content sharing --------===//

#include "core/SharedContentIndex.h"

#include "support/Contracts.h"

#include <algorithm>

using namespace ccsim;

void SharedContentIndex::registerRepresentative(uint64_t Key,
                                                SuperblockId Rep,
                                                uint32_t SizeBytes,
                                                TenantId Owner) {
  CCSIM_ASSERT(Key != 0, "content key 0 means 'unshared'");
  CCSIM_ASSERT(!ByKey.count(Key), "key already has a representative");
  CCSIM_ASSERT(!KeyOfRep.count(Rep), "block already represents a key");
  Entry &E = ByKey[Key];
  E.Representative = Rep;
  E.SizeBytes = SizeBytes;
  E.Owner = Owner;
  E.RefCount = 1;
  KeyOfRep.emplace(Rep, Key);
}

const SharedContentIndex::Entry *
SharedContentIndex::lookup(uint64_t Key) const {
  const auto It = ByKey.find(Key);
  return It == ByKey.end() ? nullptr : &It->second;
}

bool SharedContentIndex::link(uint64_t Key, TenantId Tenant,
                              SuperblockId Alias) {
  const auto It = ByKey.find(Key);
  CCSIM_ASSERT(It != ByKey.end(), "linking a key with no representative");
  Entry &E = It->second;
  const bool Known =
      std::any_of(E.Links.begin(), E.Links.end(), [&](const Link &L) {
        return L.Tenant == Tenant && L.Alias == Alias;
      });
  if (Known)
    return false;
  E.Links.push_back(Link{Tenant, Alias});
  ++E.RefCount;
  ++LiveLinks;
  return true;
}

bool SharedContentIndex::releaseRepresentative(SuperblockId Rep,
                                               std::vector<Link> &Released) {
  const auto RepIt = KeyOfRep.find(Rep);
  if (RepIt == KeyOfRep.end())
    return false;
  const auto It = ByKey.find(RepIt->second);
  CCSIM_ASSERT(It != ByKey.end(), "representative mirror out of sync");
  Entry &E = It->second;
  CCSIM_ASSERT(E.RefCount == 1 + E.Links.size(),
               "refcount drifted from the link set");
  Released.assign(E.Links.begin(), E.Links.end());
  LiveLinks -= E.Links.size();
  ByKey.erase(It);
  KeyOfRep.erase(RepIt);
  return true;
}

void SharedContentIndex::clear() {
  ByKey.clear();
  KeyOfRep.clear();
  LiveLinks = 0;
}
