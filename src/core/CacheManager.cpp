//===- core/CacheManager.cpp - Code cache management facade --------------===//

#include "core/CacheManager.h"

#include <algorithm>

using namespace ccsim;

CacheManager::CacheManager(const CacheManagerConfig &Config,
                           std::unique_ptr<EvictionPolicy> Policy)
    : Config(Config), Policy(std::move(Policy)),
      Cache(Config.CapacityBytes) {
  assert(this->Policy && "cache manager requires a policy");
}

uint64_t CacheManager::currentQuantum() const {
  const uint64_t Capacity = Cache.capacity();
  uint64_t Quantum = Policy->quantumBytes(Capacity);
  return std::clamp<uint64_t>(Quantum, 1, Capacity);
}

bool CacheManager::seenBefore(SuperblockId Id) {
  if (Id >= Seen.size())
    Seen.resize(std::max<size_t>(Id + 1, Seen.size() * 2), 0);
  const bool Before = Seen[Id];
  Seen[Id] = 1;
  return Before;
}

void CacheManager::sampleBackPointerMemory() {
  if (!Config.EnableChaining ||
      !Policy->usesBackPointerTable(Cache.capacity()))
    return;
  const uint64_t Bytes = Links.backPointerBytes();
  Stats.BackPointerBytesPeak = std::max(Stats.BackPointerBytesPeak, Bytes);
  Stats.BackPointerBytesSum += static_cast<double>(Bytes);
}

void CacheManager::chargeEvictions(uint64_t UnitsFlushed) {
  assert(!EvictedScratch.empty() && "no victims to charge");
  uint64_t Bytes = 0;
  for (const CodeCache::Resident &V : EvictedScratch)
    Bytes += V.Size;
  ++Stats.EvictionInvocations;
  Stats.EvictedBlocks += EvictedScratch.size();
  Stats.EvictedBytes += Bytes;
  Stats.UnitsFlushed += UnitsFlushed;
  Stats.EvictionOverhead += Config.Costs.evictionOverhead(Bytes);

  if (!Config.EnableChaining) {
    // Without chaining there are no links to repair; nothing else to do.
    return;
  }

  DanglingScratch.clear();
  Links.onEvict(Cache, EvictedScratch, DanglingScratch);
  if (Policy->usesBackPointerTable(Cache.capacity())) {
    for (uint32_t NumLinks : DanglingScratch) {
      if (NumLinks == 0)
        continue;
      ++Stats.UnlinkOperations;
      Stats.UnlinkedLinks += NumLinks;
      Stats.UnlinkOverhead += Config.Costs.unlinkingOverhead(NumLinks);
    }
  }
}

void CacheManager::notifyEvictions() {
  if (!Config.OnEviction)
    return;
  VictimTenantScratch.clear();
  VictimTenantScratch.reserve(EvictedScratch.size());
  for (const CodeCache::Resident &V : EvictedScratch)
    VictimTenantScratch.push_back(tenantOf(V.Id));

  EvictionBatchEvent Event;
  Event.Evictor = CurrentTenant;
  Event.Victims = EvictedScratch;
  Event.VictimTenants = VictimTenantScratch;
  // DanglingScratch lines up with EvictedScratch only when unlink charges
  // were actually accounted; otherwise report no repaired links.
  if (Config.EnableChaining && Policy->usesBackPointerTable(Cache.capacity()))
    Event.DanglingLinks = DanglingScratch;
  Config.OnEviction(Event);
}

AccessKind CacheManager::access(const SuperblockRecord &Rec) {
  assert(Rec.Id != InvalidSuperblockId && "invalid superblock id");
  assert(Rec.SizeBytes > 0 && "superblocks must have a positive size");

  CurrentTenant = Rec.Tenant;
  ++Stats.Accesses;
  const bool Hit = Cache.contains(Rec.Id);
  Policy->noteAccess(Hit);

  AccessKind Kind = AccessKind::Hit;
  if (Hit) {
    ++Stats.Hits;
  } else {
    // Miss: the superblock must be regenerated (re-translated, inserted,
    // hash table updated) at the Eq. 3 cost; there is no backing store.
    ++Stats.Misses;
    if (seenBefore(Rec.Id))
      ++Stats.CapacityMisses;
    else
      ++Stats.ColdMisses;
    Stats.MissOverhead += Config.Costs.missOverhead(Rec.SizeBytes);

    const uint64_t Quantum = currentQuantum();
    EvictedScratch.clear();
    const CodeCache::PrepareOutcome Prep =
        Cache.prepareInsert(Rec.SizeBytes, Quantum, EvictedScratch);
    Stats.WastedBytes += Prep.WastedBytes;
    if (!EvictedScratch.empty()) {
      chargeEvictions(Prep.UnitsFlushed);
      notifyEvictions();
    }

    if (Prep.CanInsert) {
      Cache.commitInsert(Rec.Id, Rec.SizeBytes);
      if (Rec.Id >= TenantById.size())
        TenantById.resize(std::max<size_t>(Rec.Id + 1, TenantById.size() * 2),
                          0);
      TenantById[Rec.Id] = Rec.Tenant;
      if (Config.EnableChaining)
        Links.onInsert(Cache, Quantum, Rec.Id, Rec.OutEdges, Stats);
      Kind = AccessKind::Miss;
    } else {
      Kind = AccessKind::MissTooBig;
    }
  }

  if (Policy->shouldFlushNow() && !Cache.empty()) {
    ++Stats.PreemptiveFlushes;
    flushEntireCache();
    Policy->noteFlush();
  }

  sampleBackPointerMemory();
  return Kind;
}

void CacheManager::flushEntireCache() {
  if (Cache.empty())
    return;
  EvictedScratch.clear();
  Cache.flushAll(EvictedScratch);
  // A full flush is one invocation clearing every unit that held code.
  const uint64_t Quantum = currentQuantum();
  uint64_t Units = 0;
  uint64_t LastUnit = ~0ULL;
  for (const CodeCache::Resident &V : EvictedScratch) {
    const uint64_t Unit = CodeCache::unitOf(V.Start, Quantum);
    if (Unit != LastUnit)
      ++Units;
    LastUnit = Unit;
  }
  chargeEvictions(Units);
  notifyEvictions();
}

bool CacheManager::checkInvariants() const {
  if (!Cache.checkInvariants())
    return false;
  if (Config.EnableChaining && !Links.checkInvariants(Cache))
    return false;
  return true;
}
