//===- core/CodeCache.h - Circular-buffer code cache placement -----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The placement engine for a software code cache: a byte-addressed
/// circular buffer holding variable-size superblocks in FIFO order, with
/// reclamation performed at a configurable *quantum*:
///
///   - quantum == capacity  -> whole-cache FLUSH,
///   - quantum == capacity/N -> N-unit FIFO (the paper's medium grain:
///     the cache is partitioned into N equal units, and the oldest unit is
///     flushed entirely when space is needed),
///   - quantum == 1 byte    -> fine-grained FIFO (evict exactly enough
///     superblocks to fit the incoming one).
///
/// This unification mirrors the paper's observation that FLUSH and
/// fine-grained FIFO are the two extremes of a single granularity spectrum
/// (Section 4). Blocks never wrap around the end of the buffer (real code
/// cannot); skipped tail bytes are reported as waste. Blocks may straddle
/// unit boundaries; a straddler is evicted with the unit containing its
/// first byte, exactly like a fragment allocated across a unit seam in a
/// dense circular-buffer implementation.
///
/// The class tracks placement only. Links, costs, and policy decisions
/// live in LinkGraph, CostModel, and CacheManager.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_CODECACHE_H
#define CCSIM_CORE_CODECACHE_H

#include "core/Superblock.h"
#include "support/Contracts.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace ccsim {

/// FIFO circular-buffer placement for variable-size code cache entries.
class CodeCache {
public:
  /// A resident superblock: identifier plus its byte placement.
  struct Resident {
    SuperblockId Id;
    uint64_t Start;
    uint32_t Size;

    uint64_t end() const { return Start + Size; }
  };

  /// Result of prepareInsert().
  struct PrepareOutcome {
    bool CanInsert = false;     ///< False only if Size > capacity.
    uint64_t WastedBytes = 0;   ///< Tail bytes skipped at a wrap point.
    uint64_t UnitsFlushed = 0;  ///< Distinct quantum units cleared.
  };

  explicit CodeCache(uint64_t CapacityBytes);

  uint64_t capacity() const { return Capacity; }
  uint64_t occupiedBytes() const { return Occupied; }
  size_t residentCount() const { return Fifo.size(); }
  bool empty() const { return Fifo.empty(); }

  /// True if \p Id currently resides in the cache.
  bool contains(SuperblockId Id) const {
    return Id < ResidentFlag.size() && ResidentFlag[Id];
  }

  /// Byte offset of resident \p Id. Must be resident.
  uint64_t startOf(SuperblockId Id) const {
    CCSIM_ASSERT(contains(Id), "block %u is not resident", Id);
    return StartById[Id];
  }

  /// Size in bytes of resident \p Id. Must be resident.
  uint32_t sizeOf(SuperblockId Id) const {
    CCSIM_ASSERT(contains(Id), "block %u is not resident", Id);
    return SizeById[Id];
  }

  /// Index of the cache unit containing byte \p Offset under \p Quantum.
  static uint64_t unitOf(uint64_t Offset, uint64_t Quantum) {
    CCSIM_ASSERT(Quantum > 0, "quantum must be positive");
    return Offset / Quantum;
  }

  /// Makes room for a block of \p SizeBytes, evicting at \p Quantum
  /// granularity. Evicted blocks are appended to \p EvictedOut in FIFO
  /// (oldest-first) order. After a successful prepare, commitInsert() for
  /// the same size is guaranteed to succeed without further eviction.
  PrepareOutcome prepareInsert(uint32_t SizeBytes, uint64_t Quantum,
                               std::vector<Resident> &EvictedOut);

  /// Places \p Id (of \p SizeBytes) at the write position reserved by the
  /// preceding prepareInsert(). Returns the placement offset.
  uint64_t commitInsert(SuperblockId Id, uint32_t SizeBytes);

  /// Evicts every resident block (appended FIFO-first to \p EvictedOut)
  /// and resets the write position.
  void flushAll(std::vector<Resident> &EvictedOut);

  /// Oldest resident block; cache must be non-empty.
  const Resident &front() const {
    CCSIM_ASSERT(!Fifo.empty(), "cache is empty");
    return Fifo.front();
  }

  /// Visits residents in FIFO (oldest-first) order.
  template <typename Fn> void forEachResident(Fn Visit) const {
    for (const Resident &R : Fifo)
      Visit(R);
  }

  /// Size of the dense per-id lookup tables; ids >= this were never
  /// inserted. Lets auditors enumerate the residency flags independently
  /// of the FIFO (check/CacheAuditor cross-checks the two views).
  size_t idTableSize() const { return ResidentFlag.size(); }

  /// Exhaustive internal consistency check for tests: flags match the
  /// FIFO contents, occupancy sums match, no overlapping placements, and
  /// no block wraps past the end of the buffer.
  bool checkInvariants() const;

private:
  uint64_t Capacity;
  uint64_t Tail = 0;     ///< Next write offset.
  uint64_t Occupied = 0; ///< Total resident bytes.
  std::deque<Resident> Fifo;

  // Dense per-id lookups (ids are small and dense by construction).
  std::vector<uint8_t> ResidentFlag;
  std::vector<uint64_t> StartById;
  std::vector<uint32_t> SizeById;

  /// Contiguous free bytes available at Tail without wrapping.
  uint64_t contiguousFreeAtTail() const;

  /// Pops and returns the oldest block.
  Resident evictFront();

  void growTables(SuperblockId Id);
};

} // namespace ccsim

#endif // CCSIM_CORE_CODECACHE_H
