//===- core/CacheEngine.cpp - Shared code cache engine --------------------===//

#include "core/CacheEngine.h"
#include "support/Contracts.h"

#include <algorithm>

using namespace ccsim;

CacheEngine::CacheEngine(const CacheEngineConfig &Config,
                         std::unique_ptr<EvictionPolicy> Policy)
    : Config(Config), Policy(std::move(Policy)),
      Cache(Config.CapacityBytes) {
  CCSIM_REQUIRE(this->Policy, "cache engine requires a policy");
  Stats.SharingActive = this->Config.ContentIndex != nullptr;
}

uint64_t CacheEngine::currentQuantum() const {
  const uint64_t Capacity = Cache.capacity();
  uint64_t Quantum = Policy->quantumBytes(Capacity);
  return std::clamp<uint64_t>(Quantum, 1, Capacity);
}

bool CacheEngine::seenBefore(SuperblockId Id) {
  if (Id >= Seen.size())
    Seen.resize(std::max<size_t>(Id + 1, Seen.size() * 2), 0);
  const bool Before = Seen[Id];
  Seen[Id] = 1;
  return Before;
}

void CacheEngine::sampleBackPointerMemory() {
  if (!Config.EnableChaining ||
      !Policy->usesBackPointerTable(Cache.capacity()))
    return;
  const uint64_t Bytes = Links.backPointerBytes();
  Stats.BackPointerBytesPeak = std::max(Stats.BackPointerBytesPeak, Bytes);
  Stats.BackPointerBytesSum += static_cast<double>(Bytes);
}

AccessKind CacheEngine::deferredMiss(const SuperblockRecord &Rec) {
  CCSIM_ASSERT(Rec.Id != InvalidSuperblockId, "invalid superblock id");
  CCSIM_ASSERT(Rec.SizeBytes > 0,
               "superblock %u must have a positive size", Rec.Id);
  CCSIM_ASSERT(!Cache.contains(Rec.Id),
               "superblock %u is already resident", Rec.Id);
  CurrentTenant = Rec.Tenant;
  return missAndInsert(Rec);
}

void CacheEngine::addDeferredBackPointerSamples(uint64_t Count) {
  if (Count == 0 || !Config.EnableChaining ||
      !Policy->usesBackPointerTable(Cache.capacity()))
    return;
  const uint64_t Bytes = Links.backPointerBytes();
  Stats.BackPointerBytesPeak = std::max(Stats.BackPointerBytesPeak, Bytes);
  Stats.BackPointerBytesSum +=
      static_cast<double>(Bytes) * static_cast<double>(Count);
}

void CacheEngine::settleDeferredAccesses(uint64_t TotalAccesses) {
  CCSIM_REQUIRE(Stats.Accesses == 0 && Stats.Hits == 0,
                "deferred settlement on an engine that counted accesses "
                "directly");
  CCSIM_REQUIRE(TotalAccesses >= Stats.Misses,
                "deferred pass recorded more misses than accesses");
  Stats.Accesses = TotalAccesses;
  Stats.Hits = TotalAccesses - Stats.Misses;
}

void CacheEngine::maybeAudit(bool Evicted, const char *Where) {
  if (Auditing == AuditLevel::Off || !Audit)
    return;
  if (Auditing == AuditLevel::Evictions && !Evicted)
    return;
  Audit(*this, Where);
}

void CacheEngine::chargeEvictions(uint64_t UnitsFlushed) {
  CCSIM_ASSERT(!EvictedScratch.empty(), "no victims to charge");

  // Front-end teardown first: an execution-driven owner drops its
  // dispatch-table entries and fragment slots (and charges its own
  // instrumented eviction cost) before the engine's accounting runs.
  if (Config.OnEvictPayload)
    Config.OnEvictPayload(EvictedScratch);

  uint64_t Bytes = 0;
  for (const CodeCache::Resident &V : EvictedScratch)
    Bytes += V.Size;
  ++Stats.EvictionInvocations;
  Stats.EvictedBlocks += EvictedScratch.size();
  Stats.EvictedBytes += Bytes;
  Stats.UnitsFlushed += UnitsFlushed;
  Stats.EvictionOverhead += Config.Costs.evictionOverhead(Bytes);

  // Without chaining there are no links to repair.
  bool HaveDangling = false;
  if (Config.EnableChaining) {
    DanglingScratch.clear();
    const uint64_t LinksBefore = Links.numLinks();
    Links.onEvict(Cache, EvictedScratch, DanglingScratch);
    Stats.LinksDestroyed += LinksBefore - Links.numLinks();
    if (Policy->usesBackPointerTable(Cache.capacity())) {
      HaveDangling = true;
      for (uint32_t NumLinks : DanglingScratch) {
        if (NumLinks == 0)
          continue;
        ++Stats.UnlinkOperations;
        Stats.UnlinkedLinks += NumLinks;
        Stats.UnlinkOverhead += Config.Costs.unlinkingOverhead(NumLinks);
      }
    }
    // The owner's unlink charge sees the same dangling counts the engine
    // just accounted. Under FLUSH nothing survives an eviction, so the
    // counts are all zero and the hook charges nothing — matching the
    // engine's own back-pointer-table gate above.
    if (Config.OnUnlinkPayload)
      Config.OnUnlinkPayload(EvictedScratch, DanglingScratch);
  }

  if (Config.ContentIndex != nullptr) [[unlikely]]
    drainShares();

  if (Config.Telemetry) [[unlikely]]
    traceEvictionBatch(Bytes, HaveDangling);
}

void CacheEngine::drainShares() {
  // Evicting a content-shared representative takes every linked tenant's
  // copy with it: each live link is one more dispatch-glue patch to undo,
  // charged at the Eq. 4 single-link rate (the same base + per-link cost a
  // chained branch repair pays). Aliases that re-miss later install a
  // fresh representative.
  for (const CodeCache::Resident &V : EvictedScratch) {
    UnshareScratch.clear();
    if (!Config.ContentIndex->releaseRepresentative(V.Id, UnshareScratch))
      continue;
    for (size_t I = 0; I < UnshareScratch.size(); ++I) {
      ++Stats.UnshareUnlinks;
      Stats.UnlinkOverhead += Config.Costs.unlinkingOverhead(1);
    }
    if (Config.OnUnshare && !UnshareScratch.empty()) {
      UnshareEvent Event;
      Event.Evictor = CurrentTenant;
      Event.Representative = V.Id;
      Event.SizeBytes = V.Size;
      Event.Links = UnshareScratch;
      Config.OnUnshare(Event);
    }
  }
}

void CacheEngine::traceMiss(const SuperblockRecord &Rec, bool Cold,
                            uint64_t Quantum) {
  telemetry::EventTracer &Tracer = Config.Telemetry->Tracer;
  Tracer.record(telemetry::EventKind::Miss, Rec.Tenant, Rec.Id,
                Rec.SizeBytes, Cold ? 1 : 0, Stats.Accesses);
  // Adaptive policies move their quantum over time; pin every change (and
  // the initial value) so a trace explains *why* batch sizes shifted.
  if (Quantum != LastQuantumTraced) {
    Tracer.record(telemetry::EventKind::QuantumChange, Rec.Tenant,
                  telemetry::NoBlock, Quantum, LastQuantumTraced,
                  Stats.Accesses);
    LastQuantumTraced = Quantum;
  }
}

void CacheEngine::traceEvictionBatch(uint64_t BatchBytes,
                                     bool HaveDangling) {
  telemetry::EventTracer &Tracer = Config.Telemetry->Tracer;
  for (size_t I = 0; I < EvictedScratch.size(); ++I) {
    const CodeCache::Resident &V = EvictedScratch[I];
    const uint32_t NumLinks =
        HaveDangling && I < DanglingScratch.size() ? DanglingScratch[I] : 0;
    Tracer.record(telemetry::EventKind::Evict, tenantOf(V.Id), V.Id, V.Size,
                  NumLinks, Stats.Accesses);
    if (NumLinks > 0)
      Tracer.record(telemetry::EventKind::Unlink, tenantOf(V.Id), V.Id,
                    NumLinks, 0, Stats.Accesses);
  }
  Tracer.record(telemetry::EventKind::EvictionBatch, CurrentTenant,
                telemetry::NoBlock, EvictedScratch.size(), BatchBytes,
                Stats.Accesses);
}

void CacheEngine::notifyEvictions() {
  if (!Config.OnEviction)
    return;
  VictimTenantScratch.clear();
  VictimTenantScratch.reserve(EvictedScratch.size());
  for (const CodeCache::Resident &V : EvictedScratch)
    VictimTenantScratch.push_back(tenantOf(V.Id));

  EvictionBatchEvent Event;
  Event.Evictor = CurrentTenant;
  Event.Victims = EvictedScratch;
  Event.VictimTenants = VictimTenantScratch;
  // DanglingScratch lines up with EvictedScratch only when unlink charges
  // were actually accounted; otherwise report no repaired links.
  if (Config.EnableChaining && Policy->usesBackPointerTable(Cache.capacity()))
    Event.DanglingLinks = DanglingScratch;
  Config.OnEviction(Event);
}

AccessKind CacheEngine::missAndInsert(const SuperblockRecord &Rec) {
  // Miss: the superblock must be regenerated (re-translated, inserted,
  // hash table updated) at the Eq. 3 cost; there is no backing store.
  ++Stats.Misses;
  const bool Cold = !seenBefore(Rec.Id);
  if (Cold)
    ++Stats.ColdMisses;
  else
    ++Stats.CapacityMisses;
  Stats.MissOverhead += Config.Costs.missOverhead(Rec.SizeBytes);

  const uint64_t Quantum = currentQuantum();
  if (Config.Telemetry) [[unlikely]]
    traceMiss(Rec, Cold, Quantum);
  EvictedScratch.clear();
  const CodeCache::PrepareOutcome Prep =
      Cache.prepareInsert(Rec.SizeBytes, Quantum, EvictedScratch);
  Stats.WastedBytes += Prep.WastedBytes;
  if (!EvictedScratch.empty()) {
    chargeEvictions(Prep.UnitsFlushed);
    notifyEvictions();
  }

  if (!Prep.CanInsert) {
    ++Stats.TooBigMisses;
    return AccessKind::MissTooBig;
  }

  Cache.commitInsert(Rec.Id, Rec.SizeBytes);
  ++Stats.Inserts;
  Stats.InsertedBytes += Rec.SizeBytes;
  // First copy of shareable content becomes the key's representative;
  // later tenants that miss on identical content link it instead of
  // installing. (A key can already hold a representative only through the
  // install() front door, which bypasses the shared-hit check — the copy
  // then simply stays private.)
  if (Config.ContentIndex != nullptr && Rec.ContentKey != 0 &&
      Config.ContentIndex->lookup(Rec.ContentKey) == nullptr) [[unlikely]]
    Config.ContentIndex->registerRepresentative(Rec.ContentKey, Rec.Id,
                                                Rec.SizeBytes, Rec.Tenant);
  if (Rec.Id >= TenantById.size())
    TenantById.resize(std::max<size_t>(Rec.Id + 1, TenantById.size() * 2),
                      0);
  TenantById[Rec.Id] = Rec.Tenant;
  if (Config.EnableChaining)
    Links.onInsert(Cache, Quantum, Rec.Id, Rec.OutEdges, Stats);
  if (Config.Telemetry) [[unlikely]]
    Config.Telemetry->Tracer.record(telemetry::EventKind::Insert,
                                    Rec.Tenant, Rec.Id, Rec.SizeBytes,
                                    0, Stats.Accesses);
  return AccessKind::Miss;
}

AccessKind CacheEngine::access(const SuperblockRecord &Rec) {
  CCSIM_ASSERT(Rec.Id != InvalidSuperblockId, "invalid superblock id");
  CCSIM_ASSERT(Rec.SizeBytes > 0,
               "superblock %u must have a positive size", Rec.Id);

  CurrentTenant = Rec.Tenant;
  ++Stats.Accesses;
  LastShareLinked = false;
  const bool Hit = Cache.contains(Rec.Id);
  const SharedContentIndex::Entry *Shared = nullptr;
  if (!Hit && Config.ContentIndex != nullptr && Rec.ContentKey != 0)
    [[unlikely]]
    Shared = Config.ContentIndex->lookup(Rec.ContentKey);
  Policy->noteAccess(Hit || Shared != nullptr);

  AccessKind Kind = AccessKind::Hit;
  bool Evicted = false;
  if (Hit) {
    ++Stats.Hits;
  } else if (Shared != nullptr) {
    // Identical content is resident under another tenant's id: link the
    // shared copy instead of regenerating. The access is a hit (no Eq. 3
    // charge, no insert); a link this (tenant, id) pair did not hold yet
    // is a shared install that saved one copy's bytes.
    CCSIM_ASSERT(Shared->SizeBytes == Rec.SizeBytes,
                 "content key %llu matched blocks of different sizes",
                 static_cast<unsigned long long>(Rec.ContentKey));
    ++Stats.Hits;
    Kind = AccessKind::SharedHit;
    if (Config.ContentIndex->link(Rec.ContentKey, Rec.Tenant, Rec.Id)) {
      LastShareLinked = true;
      ++Stats.SharedInstalls;
      Stats.SharedBytesSaved += Rec.SizeBytes;
    }
  } else {
    const uint64_t InvocationsBefore = Stats.EvictionInvocations;
    Kind = missAndInsert(Rec);
    Evicted = Stats.EvictionInvocations != InvocationsBefore;
  }

  if (Policy->shouldFlushNow() && !Cache.empty()) {
    ++Stats.PreemptiveFlushes;
    PreemptiveFlushInFlight = true;
    flushEntireCache();
    PreemptiveFlushInFlight = false;
    Policy->noteFlush();
    Evicted = true;
  }

  sampleBackPointerMemory();
  maybeAudit(Evicted, "access");
  return Kind;
}

bool CacheEngine::install(const SuperblockRecord &Rec) {
  CCSIM_ASSERT(Rec.Id != InvalidSuperblockId, "invalid superblock id");
  CCSIM_ASSERT(Rec.SizeBytes > 0,
               "superblock %u must have a positive size", Rec.Id);
  CCSIM_ASSERT(!Cache.contains(Rec.Id),
               "superblock %u is already resident", Rec.Id);

  CurrentTenant = Rec.Tenant;
  // The owner only calls install() after a dispatch-table miss, so each
  // install is one (missing) access; keeping both counters moving makes
  // the CacheStats conservation identities hold for audited DBT runs.
  ++Stats.Accesses;
  const uint64_t InvocationsBefore = Stats.EvictionInvocations;
  const bool Installed = missAndInsert(Rec) == AccessKind::Miss;
  LastInstallEvicted = Stats.EvictionInvocations != InvocationsBefore;
  return Installed;
}

void CacheEngine::flushEntireCache() {
  if (Cache.empty())
    return;
  if (Config.Telemetry) [[unlikely]]
    Config.Telemetry->Tracer.record(
        telemetry::EventKind::Flush, CurrentTenant, telemetry::NoBlock,
        Cache.residentCount(), PreemptiveFlushInFlight ? 1 : 0,
        Stats.Accesses);
  EvictedScratch.clear();
  Cache.flushAll(EvictedScratch);
  // A full flush is one invocation clearing every unit that held code.
  const uint64_t Quantum = currentQuantum();
  uint64_t Units = 0;
  uint64_t LastUnit = ~0ULL;
  for (const CodeCache::Resident &V : EvictedScratch) {
    const uint64_t Unit = CodeCache::unitOf(V.Start, Quantum);
    if (Unit != LastUnit)
      ++Units;
    LastUnit = Unit;
  }
  chargeEvictions(Units);
  notifyEvictions();
  maybeAudit(true, "flush");
}

bool CacheEngine::checkInvariants() const {
  if (!Cache.checkInvariants())
    return false;
  if (Config.EnableChaining && !Links.checkInvariants(Cache))
    return false;
  return true;
}
