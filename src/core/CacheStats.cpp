//===- core/CacheStats.cpp - Cache management statistics ------------------===//

#include "core/CacheStats.h"

#include <algorithm>

using namespace ccsim;

void CacheStats::merge(const CacheStats &Other) {
  Accesses += Other.Accesses;
  Hits += Other.Hits;
  Misses += Other.Misses;
  ColdMisses += Other.ColdMisses;
  CapacityMisses += Other.CapacityMisses;
  TooBigMisses += Other.TooBigMisses;
  Inserts += Other.Inserts;
  InsertedBytes += Other.InsertedBytes;
  EvictionInvocations += Other.EvictionInvocations;
  EvictedBlocks += Other.EvictedBlocks;
  EvictedBytes += Other.EvictedBytes;
  UnitsFlushed += Other.UnitsFlushed;
  PreemptiveFlushes += Other.PreemptiveFlushes;
  WastedBytes += Other.WastedBytes;
  LinksCreated += Other.LinksCreated;
  InterUnitLinksCreated += Other.InterUnitLinksCreated;
  SelfLinksCreated += Other.SelfLinksCreated;
  UnlinkedLinks += Other.UnlinkedLinks;
  UnlinkOperations += Other.UnlinkOperations;
  LinksDestroyed += Other.LinksDestroyed;
  SharingActive = SharingActive || Other.SharingActive;
  SharedInstalls += Other.SharedInstalls;
  SharedBytesSaved += Other.SharedBytesSaved;
  UnshareUnlinks += Other.UnshareUnlinks;
  MissOverhead += Other.MissOverhead;
  EvictionOverhead += Other.EvictionOverhead;
  UnlinkOverhead += Other.UnlinkOverhead;
  BackPointerBytesPeak =
      std::max(BackPointerBytesPeak, Other.BackPointerBytesPeak);
  BackPointerBytesSum += Other.BackPointerBytesSum;
}

void CacheStats::recordMetrics(telemetry::MetricsRegistry &Metrics,
                               const telemetry::MetricLabels &Labels) const {
  auto Count = [&](const char *Name, uint64_t Value) {
    Metrics.counter(Name, Labels).add(Value);
  };
  Count("cache.accesses", Accesses);
  Count("cache.hits", Hits);
  Count("cache.misses", Misses);
  Count("cache.misses.cold", ColdMisses);
  Count("cache.misses.capacity", CapacityMisses);
  Count("cache.misses.too_big", TooBigMisses);
  Count("cache.inserts", Inserts);
  Count("cache.inserts.bytes", InsertedBytes);
  Count("cache.evictions.invocations", EvictionInvocations);
  Count("cache.evictions.blocks", EvictedBlocks);
  Count("cache.evictions.bytes", EvictedBytes);
  Count("cache.evictions.units_flushed", UnitsFlushed);
  Count("cache.flushes.preemptive", PreemptiveFlushes);
  Count("cache.wasted_bytes", WastedBytes);
  Count("cache.links.created", LinksCreated);
  Count("cache.links.inter_unit", InterUnitLinksCreated);
  Count("cache.links.self", SelfLinksCreated);
  Count("cache.unlink.operations", UnlinkOperations);
  Count("cache.unlink.links_repaired", UnlinkedLinks);
  Count("cache.links.destroyed", LinksDestroyed);

  auto Gaug = [&](const char *Name, double Value) {
    Metrics.gauge(Name, Labels).set(Value);
  };
  Gaug("cache.miss_rate", missRate());
  Gaug("cache.overhead.miss", MissOverhead);
  Gaug("cache.overhead.eviction", EvictionOverhead);
  Gaug("cache.overhead.unlink", UnlinkOverhead);
  Gaug("cache.overhead.total", totalOverhead(true));
  Gaug("cache.backpointer.bytes_peak",
       static_cast<double>(BackPointerBytesPeak));
  Gaug("cache.backpointer.bytes_avg", backPointerBytesAvg());

  // Sharing counters ride behind the activity gate: a run without a
  // content index must export the exact byte sequence it always did.
  if (SharingActive) {
    Count("cache.share.installs", SharedInstalls);
    Count("cache.share.bytes_saved", SharedBytesSaved);
    Count("cache.share.unshare_unlinks", UnshareUnlinks);
  }
}
