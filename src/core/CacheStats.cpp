//===- core/CacheStats.cpp - Cache management statistics ------------------===//

#include "core/CacheStats.h"

#include <algorithm>

using namespace ccsim;

void CacheStats::merge(const CacheStats &Other) {
  Accesses += Other.Accesses;
  Hits += Other.Hits;
  Misses += Other.Misses;
  ColdMisses += Other.ColdMisses;
  CapacityMisses += Other.CapacityMisses;
  EvictionInvocations += Other.EvictionInvocations;
  EvictedBlocks += Other.EvictedBlocks;
  EvictedBytes += Other.EvictedBytes;
  UnitsFlushed += Other.UnitsFlushed;
  PreemptiveFlushes += Other.PreemptiveFlushes;
  WastedBytes += Other.WastedBytes;
  LinksCreated += Other.LinksCreated;
  InterUnitLinksCreated += Other.InterUnitLinksCreated;
  SelfLinksCreated += Other.SelfLinksCreated;
  UnlinkedLinks += Other.UnlinkedLinks;
  UnlinkOperations += Other.UnlinkOperations;
  MissOverhead += Other.MissOverhead;
  EvictionOverhead += Other.EvictionOverhead;
  UnlinkOverhead += Other.UnlinkOverhead;
  BackPointerBytesPeak =
      std::max(BackPointerBytesPeak, Other.BackPointerBytesPeak);
  BackPointerBytesSum += Other.BackPointerBytesSum;
}
