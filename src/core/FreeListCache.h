//===- core/FreeListCache.h - LRU free-list cache (Section 3.3 study) ----===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alternative the paper dismisses in Section 3.3: an LRU-managed
/// code cache over a free-list allocator. Because cached superblocks are
/// variable-sized, evicting by recency leaves variable-sized holes; a new
/// superblock may not fit any hole even when total free space suffices
/// (external fragmentation), and fixing that requires compaction — which
/// "would require adjusting all the link pointers".
///
/// This class implements exactly that design so the trade-off can be
/// measured rather than asserted: address-ordered first-fit allocation
/// with coalescing, true LRU victim selection, and optional compaction
/// whose cost (bytes moved, link pointers to fix) is accounted.
///
/// The circular-buffer FIFO cache (CodeCache) and this class share no
/// code on purpose: the comparison bench pits the two implementations
/// against each other on identical traces.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_FREELISTCACHE_H
#define CCSIM_CORE_FREELISTCACHE_H

#include "core/Superblock.h"
#include "support/Contracts.h"

#include <cstdint>
#include <list>
#include <vector>

namespace ccsim {

/// Counters specific to the free-list/LRU design.
struct FreeListStats {
  uint64_t Inserts = 0;
  uint64_t Evictions = 0;       ///< Victim blocks removed.
  uint64_t EvictionCalls = 0;   ///< Insertions that needed eviction.
  uint64_t FragmentationStalls = 0; ///< Total free space sufficed but no
                                    ///< single hole fit.
  uint64_t Compactions = 0;
  uint64_t BytesMoved = 0;      ///< Compaction copy traffic.
  uint64_t LinkFixups = 0;      ///< Resident links whose pointers had to
                                ///< be rewritten by compaction.
  double FreeSpaceSamples = 0;  ///< Summed free fraction (per insert).
  double LargestHoleSamples = 0; ///< Summed largest-hole fraction of
                                 ///< free space (per insert).

  /// Mean external fragmentation: 1 - largestHole/freeSpace, averaged
  /// over inserts that had any free space.
  double meanFragmentation() const {
    if (Inserts == 0 || FreeSpaceSamples == 0.0)
      return 0.0;
    return 1.0 - LargestHoleSamples / FreeSpaceSamples;
  }
};

/// An LRU code cache over an address-ordered first-fit free list.
class FreeListCache {
public:
  /// \param CapacityBytes arena size.
  /// \param EnableCompaction when true, a fragmentation stall triggers
  ///        compaction instead of extra evictions.
  FreeListCache(uint64_t CapacityBytes, bool EnableCompaction);

  uint64_t capacity() const { return Capacity; }
  uint64_t occupiedBytes() const { return Occupied; }
  size_t residentCount() const { return LruList.size(); }

  bool contains(SuperblockId Id) const {
    return Id < Slots.size() && Slots[Id].Resident;
  }

  /// Marks \p Id most-recently-used. Must be resident.
  void touch(SuperblockId Id);

  /// Inserts \p Id (evicting LRU victims as needed and compacting on
  /// fragmentation stalls when enabled). Victims are appended to
  /// \p EvictedOut. Returns false only if SizeBytes > capacity.
  /// \p ResidentLinks is the number of link pointers per resident block
  /// that compaction must rewrite when it moves blocks (the Section 3.3
  /// cost; pass the workload's mean degree).
  bool insert(SuperblockId Id, uint32_t SizeBytes, double ResidentLinks,
              std::vector<SuperblockId> &EvictedOut);

  const FreeListStats &stats() const { return Stats; }

  /// Byte offset of resident \p Id. Must be resident.
  uint64_t startOf(SuperblockId Id) const {
    CCSIM_ASSERT(contains(Id), "block %u is not resident", Id);
    return Slots[Id].Start;
  }

  /// Size in bytes of resident \p Id. Must be resident.
  uint32_t sizeOf(SuperblockId Id) const {
    CCSIM_ASSERT(contains(Id), "block %u is not resident", Id);
    return Slots[Id].Size;
  }

  /// Auditor introspection: size of the dense per-id slot table.
  size_t idTableSize() const { return Slots.size(); }

  /// Visits free extents in free-list (address) order.
  template <typename Fn> void forEachFreeExtent(Fn Visit) const {
    for (const Hole &H : FreeList)
      Visit(H.Start, H.Size);
  }

  /// Visits resident ids from least to most recently used.
  template <typename Fn> void forEachLru(Fn Visit) const {
    for (SuperblockId Id : LruList)
      Visit(Id);
  }

  /// Exhaustive structural check for tests: no overlapping allocations,
  /// free list is address-ordered, coalesced, and complementary to the
  /// allocations; LRU list matches residency.
  bool checkInvariants() const;

private:
  struct Hole {
    uint64_t Start;
    uint64_t Size;
  };

  struct Slot {
    bool Resident = false;
    uint64_t Start = 0;
    uint32_t Size = 0;
    std::list<SuperblockId>::iterator LruPos;
  };

  uint64_t Capacity;
  bool EnableCompaction;
  uint64_t Occupied = 0;
  std::vector<Hole> FreeList; ///< Address-ordered, coalesced.
  std::vector<Slot> Slots;    ///< By id.
  std::list<SuperblockId> LruList; ///< Front = least recently used.
  FreeListStats Stats;

  void growSlots(SuperblockId Id);

  /// First-fit search. Returns the free-list index or -1.
  int64_t findHole(uint32_t SizeBytes) const;

  /// Returns the freed range to the free list, coalescing neighbors.
  void release(uint64_t Start, uint64_t Size);

  /// Evicts the least-recently-used block.
  void evictLru(std::vector<SuperblockId> &EvictedOut);

  /// Slides all allocations to the bottom of the arena, leaving one
  /// maximal hole; charges bytes moved and link fixups.
  void compact(double ResidentLinks);

  uint64_t freeBytes() const { return Capacity - Occupied; }
  uint64_t largestHole() const;
};

} // namespace ccsim

#endif // CCSIM_CORE_FREELISTCACHE_H
