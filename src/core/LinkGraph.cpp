//===- core/LinkGraph.cpp - Superblock chaining and back-pointer table ---===//

#include "core/LinkGraph.h"
#include "support/Contracts.h"

#include <algorithm>
#include <map>

using namespace ccsim;

void LinkGraph::growTables(SuperblockId Id) {
  if (Id < StaticEdges.size())
    return;
  const size_t NewSize = std::max<size_t>(Id + 1, StaticEdges.size() * 2);
  StaticEdges.resize(NewSize);
  OutLinks.resize(NewSize);
  InLinks.resize(NewSize);
  Wants.resize(NewSize);
  EvictEpoch.resize(NewSize, 0);
}

void LinkGraph::eraseOne(std::vector<SuperblockId> &List,
                         SuperblockId Value) {
  for (size_t I = 0; I < List.size(); ++I) {
    if (List[I] != Value)
      continue;
    List[I] = List.back();
    List.pop_back();
    return;
  }
  CCSIM_ASSERT(false, "expected link list entry %u not found", Value);
}

void LinkGraph::eraseAll(std::vector<SuperblockId> &List,
                         SuperblockId Value) {
  List.erase(std::remove(List.begin(), List.end(), Value), List.end());
}

void LinkGraph::materialize(const CodeCache &Cache, uint64_t Quantum,
                            SuperblockId From, SuperblockId To,
                            CacheStats &Stats) {
  OutLinks[From].push_back(To);
  InLinks[To].push_back(From);
  ++LinkCount;
  ++Stats.LinksCreated;
  if (From == To) {
    ++Stats.SelfLinksCreated;
    return; // A self-loop can never cross a unit boundary.
  }
  const uint64_t FromUnit = CodeCache::unitOf(Cache.startOf(From), Quantum);
  const uint64_t ToUnit = CodeCache::unitOf(Cache.startOf(To), Quantum);
  if (FromUnit != ToUnit)
    ++Stats.InterUnitLinksCreated;
}

void LinkGraph::onInsert(const CodeCache &Cache, uint64_t Quantum,
                         SuperblockId Id,
                         std::span<const SuperblockId> Edges,
                         CacheStats &Stats) {
  CCSIM_ASSERT(Cache.contains(Id),
               "block %u must be committed before onInsert", Id);
  growTables(Id);
  CCSIM_ASSERT(StaticEdges[Id].empty() && OutLinks[Id].empty() &&
                   InLinks[Id].empty(),
               "stale link state for inserted block %u", Id);

  StaticEdges[Id].assign(Edges.begin(), Edges.end());
  for (SuperblockId Target : Edges) {
    growTables(Target);
    if (Cache.contains(Target))
      materialize(Cache, Quantum, Id, Target, Stats);
    else
      Wants[Target].push_back(Id);
  }

  // Sources that were waiting for this block can now chain to it.
  for (SuperblockId Source : Wants[Id]) {
    CCSIM_ASSERT(Cache.contains(Source),
                 "wants entry from non-resident block %u", Source);
    materialize(Cache, Quantum, Source, Id, Stats);
  }
  Wants[Id].clear();
}

void LinkGraph::onEvict(const CodeCache &Cache,
                        std::span<const CodeCache::Resident> Victims,
                        std::vector<uint32_t> &DanglingCounts) {
  ++CurrentEpoch;
  for (const CodeCache::Resident &V : Victims) {
    growTables(V.Id);
    CCSIM_ASSERT(!Cache.contains(V.Id),
                 "victim %u must be removed from the cache before onEvict",
                 V.Id);
    EvictEpoch[V.Id] = CurrentEpoch;
  }

  for (const CodeCache::Resident &V : Victims) {
    const SuperblockId Id = V.Id;
    uint32_t Dangling = 0;

    // Incoming links from survivors dangle: the back-pointer table finds
    // them and they are removed; the survivor's edge goes back to the
    // wants index so it rematerializes if this block returns.
    for (SuperblockId Source : InLinks[Id]) {
      if (EvictEpoch[Source] == CurrentEpoch)
        continue; // Link among victims; destroyed for free.
      ++Dangling;
      eraseOne(OutLinks[Source], Id);
      --LinkCount;
      Wants[Id].push_back(Source);
    }

    // Outbound links all die with this block; clean the back-pointer
    // entries at surviving targets.
    for (SuperblockId Target : OutLinks[Id]) {
      --LinkCount;
      if (EvictEpoch[Target] == CurrentEpoch)
        continue; // Target dying too; its lists are cleared wholesale.
      eraseOne(InLinks[Target], Id);
    }

    // Unmaterialized static edges left wants entries behind; drop them.
    for (SuperblockId Target : StaticEdges[Id]) {
      if (Cache.contains(Target) || EvictEpoch[Target] == CurrentEpoch)
        continue; // Edge was materialized; handled above.
      eraseOne(Wants[Target], Id);
    }

    StaticEdges[Id].clear();
    OutLinks[Id].clear();
    InLinks[Id].clear();
    DanglingCounts.push_back(Dangling);
  }
}

size_t LinkGraph::outDegree(SuperblockId Id) const {
  if (Id >= OutLinks.size())
    return 0;
  return OutLinks[Id].size();
}

size_t LinkGraph::inDegree(SuperblockId Id) const {
  if (Id >= InLinks.size())
    return 0;
  return InLinks[Id].size();
}

bool LinkGraph::hasLink(SuperblockId From, SuperblockId To) const {
  if (From >= OutLinks.size())
    return false;
  return std::find(OutLinks[From].begin(), OutLinks[From].end(), To) !=
         OutLinks[From].end();
}

bool LinkGraph::checkInvariants(const CodeCache &Cache) const {
  uint64_t OutTotal = 0, InTotal = 0;
  std::map<std::pair<SuperblockId, SuperblockId>, int64_t> Mirror;

  for (SuperblockId Id = 0; Id < StaticEdges.size(); ++Id) {
    const bool IsResident = Cache.contains(Id);
    if (!IsResident) {
      if (!StaticEdges[Id].empty() || !OutLinks[Id].empty() ||
          !InLinks[Id].empty())
        return false;
      continue;
    }
    OutTotal += OutLinks[Id].size();
    InTotal += InLinks[Id].size();
    for (SuperblockId T : OutLinks[Id]) {
      if (!Cache.contains(T))
        return false; // Dangling link!
      ++Mirror[{Id, T}];
    }
    for (SuperblockId S : InLinks[Id]) {
      if (!Cache.contains(S))
        return false; // Back pointer to a dead block.
      --Mirror[{S, Id}];
    }
  }
  if (OutTotal != LinkCount || InTotal != LinkCount)
    return false;
  for (const auto &Entry : Mirror)
    if (Entry.second != 0)
      return false; // In/out lists disagree.

  // Wants entries: only for absent targets, only from resident sources.
  for (SuperblockId Target = 0; Target < Wants.size(); ++Target) {
    if (Wants[Target].empty())
      continue;
    if (Cache.contains(Target))
      return false; // Should have been drained at insert.
    for (SuperblockId Source : Wants[Target])
      if (!Cache.contains(Source))
        return false;
  }

  // Every static edge of every resident block is either a materialized
  // link (resident target) or a wants entry (absent target), with
  // matching multiplicity.
  for (SuperblockId Id = 0; Id < StaticEdges.size(); ++Id) {
    if (!Cache.contains(Id))
      continue;
    for (SuperblockId T : StaticEdges[Id]) {
      const auto CountIn = [](const std::vector<SuperblockId> &L,
                              SuperblockId V) {
        return std::count(L.begin(), L.end(), V);
      };
      const int64_t EdgeCount = CountIn(StaticEdges[Id], T);
      if (Cache.contains(T)) {
        if (CountIn(OutLinks[Id], T) != EdgeCount)
          return false;
      } else {
        if (T < Wants.size() && CountIn(Wants[T], Id) != EdgeCount)
          return false;
        if (T >= Wants.size())
          return false;
      }
    }
    // No materialized link without a static edge.
    for (SuperblockId T : OutLinks[Id])
      if (std::find(StaticEdges[Id].begin(), StaticEdges[Id].end(), T) ==
          StaticEdges[Id].end())
        return false;
  }
  return true;
}
