//===- core/SharedCacheEngine.cpp - Thread-shared cache engine ------------===//

#include "core/SharedCacheEngine.h"
#include "support/Contracts.h"

#include <algorithm>
#include <chrono>

using namespace ccsim;

namespace {

/// Contention timing is confined here: the value feeds the lock-wait
/// histogram only and never any simulated state, so replay determinism
/// is unaffected.
uint64_t nowMicros() {
  // ccsim-lint: allow(determinism.wall-clock) -- contention telemetry only; the sample never feeds simulated state
  const auto T = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(T).count());
}

/// RAII exclusive hold on a ccsim::Mutex that counts the stall (and,
/// when a histogram is wired, the blocked microseconds) if the fast
/// try_lock loses.
class CCSIM_SCOPED_CAPABILITY TimedLock {
public:
  TimedLock(Mutex &M, std::atomic<uint64_t> &Stalls,
            std::atomic<uint64_t> &WaitMicros,
            telemetry::HistogramMetric *Hist) CCSIM_ACQUIRE(M)
      : M(M) {
    if (M.try_lock())
      return;
    Stalls.fetch_add(1, std::memory_order_relaxed);
    if (!Hist) {
      // ccsim-lint: allow(locking.naked-lock) -- TimedLock IS the RAII guard; its ctor owns the acquire
      M.lock();
      return;
    }
    const uint64_t T0 = nowMicros();
    // ccsim-lint: allow(locking.naked-lock) -- TimedLock IS the RAII guard; its ctor owns the acquire
    M.lock();
    const uint64_t Waited = nowMicros() - T0;
    WaitMicros.fetch_add(Waited, std::memory_order_relaxed);
    Hist->observe(static_cast<double>(Waited));
  }
  // ccsim-lint: allow(locking.naked-lock) -- the matching RAII release of the guard itself
  ~TimedLock() CCSIM_RELEASE() { M.unlock(); }

  TimedLock(const TimedLock &) = delete;
  TimedLock &operator=(const TimedLock &) = delete;

private:
  Mutex &M;
};

unsigned roundUpPow2(unsigned V) {
  unsigned P = 1;
  while (P < V && P < (1u << 30))
    P <<= 1;
  return P;
}

} // namespace

const char *ccsim::shareModeName(ShareMode M) {
  return M == ShareMode::Exact ? "exact" : "concurrent";
}

ShareMode SharedCacheEngine::preferredMode(unsigned GuestThreads,
                                           const EvictionPolicy &Policy) {
  if (GuestThreads <= 1 || !Policy.isAccessStateless())
    return ShareMode::Exact;
  return ShareMode::Concurrent;
}

/// The shared engine interposes on the eviction-batch payload hook; the
/// owner's own hook (if any) is saved aside and re-fired under the
/// fences.
static CacheEngineConfig stripPayloadHook(const SharedEngineConfig &Config) {
  CacheEngineConfig EC = Config.Engine;
  EC.OnEvictPayload = nullptr;
  return EC;
}

SharedCacheEngine::SharedCacheEngine(const SharedEngineConfig &Config,
                                     std::unique_ptr<EvictionPolicy> Policy,
                                     ShareMode Mode)
    : Mode(Mode), Engine(stripPayloadHook(Config), std::move(Policy)),
      OwnerEvictPayload(Config.Engine.OnEvictPayload),
      OnInstallPayload(Config.OnInstallPayload) {
  Engine.setEvictPayload([this](std::span<const CodeCache::Resident> Victims) {
    onEvictionBatch(Victims);
  });
  NShards = roundUpPow2(std::max(1u, Config.Shards));
  ShardMask = NShards - 1;
  ShardBits = 0;
  for (unsigned P = NShards; P > 1; P >>= 1)
    ++ShardBits;
  NFences = std::max(1u, Config.Fences);
  const uint64_t Cap = std::max<uint64_t>(1, Config.Engine.CapacityBytes);
  FenceWidth = std::max<uint64_t>(1, (Cap + NFences - 1) / NFences);
  Shards = std::make_unique<Shard[]>(NShards);
  Fences = std::make_unique<Fence[]>(NFences);
  if (Mode == ShareMode::Concurrent && Config.Engine.Telemetry)
    LockWaitHist = &Config.Engine.Telemetry->Metrics.histogram(
        "shared.lock_wait_us", 50.0, 64);
}

AccessKind SharedCacheEngine::access(const SuperblockRecord &Rec) {
  return Mode == ShareMode::Exact ? accessExact(Rec) : accessConcurrent(Rec);
}

AccessKind SharedCacheEngine::accessExact(const SuperblockRecord &Rec) {
  TimedLock L(EngineMu, EngineLockStalls, EngineLockWaitMicros, LockWaitHist);
  const AccessKind K = Engine.access(Rec);
  if (K != AccessKind::Hit)
    reconcileIndexEntry(Rec.Id);
  return K;
}

AccessKind SharedCacheEngine::accessConcurrent(const SuperblockRecord &Rec) {
  const unsigned SI = shardOf(Rec.Id);
  const size_t Slot = slotOf(Rec.Id);
  Shard &S = Shards[SI];
  uint32_t Region = 0;
  bool MaybeResident = false;
  {
    ReaderLock RL(S.Mu);
    if (Slot < S.Resident.size() && S.Resident[Slot]) {
      MaybeResident = true;
      Region = S.Region[Slot];
    }
  }
  if (MaybeResident) {
    // Hold the block's region fence shared across the authoritative
    // re-check: an eviction batch tearing down this region holds it
    // exclusively, so a hit counted here happened-before the teardown.
    Fence &F = Fences[Region];
    if (!F.Mu.try_lock_shared()) {
      FenceSharedStalls.fetch_add(1, std::memory_order_relaxed);
      F.Mu.lock_shared();
    }
    bool Still = false;
    {
      ReaderLock RL(S.Mu);
      Still = Slot < S.Resident.size() && S.Resident[Slot];
    }
    F.Mu.unlock_shared();
    if (Still) {
      FastHits.fetch_add(1, std::memory_order_relaxed);
      PendingSamples.fetch_add(1, std::memory_order_relaxed);
      return AccessKind::Hit;
    }
  }
  return missSlow(Rec);
}

AccessKind SharedCacheEngine::missSlow(const SuperblockRecord &Rec) {
  TimedLock L(EngineMu, EngineLockStalls, EngineLockWaitMicros, LockWaitHist);
  if (Engine.cache().contains(Rec.Id)) {
    // Another guest installed the block between our index probe and the
    // engine lock: a hit, by the time this access is serialized.
    InstallRaces.fetch_add(1, std::memory_order_relaxed);
    FastHits.fetch_add(1, std::memory_order_relaxed);
    PendingSamples.fetch_add(1, std::memory_order_relaxed);
    return AccessKind::Hit;
  }
  // Deferred accounting (see CacheEngine's deferred front doors): batched
  // hit samples are flushed first -- the back-pointer table only changes
  // on misses, so every batched hit sampled exactly the current size.
  if (const uint64_t P = PendingSamples.exchange(0, std::memory_order_relaxed))
    Engine.addDeferredBackPointerSamples(P);
  const AccessKind K = Engine.deferredMiss(Rec);
  Engine.addDeferredBackPointerSamples(1);
  reconcileIndexEntry(Rec.Id);
  return K;
}

bool SharedCacheEngine::install(const SuperblockRecord &Rec) {
  TimedLock L(EngineMu, EngineLockStalls, EngineLockWaitMicros, LockWaitHist);
  if (Engine.cache().contains(Rec.Id)) {
    InstallRaces.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool Installed = Engine.install(Rec);
  reconcileIndexEntry(Rec.Id);
  if (Installed && OnInstallPayload)
    OnInstallPayload(Rec);
  return Installed;
}

bool SharedCacheEngine::probe(SuperblockId Id) const {
  const Shard &S = Shards[shardOf(Id)];
  ReaderLock RL(S.Mu);
  const size_t Slot = slotOf(Id);
  return Slot < S.Resident.size() && S.Resident[Slot] != 0;
}

void SharedCacheEngine::settle(uint64_t TotalAccesses) {
  MutexLock L(EngineMu);
  if (Mode != ShareMode::Concurrent)
    return; // Exact mode counted every access in the engine already.
  if (const uint64_t P = PendingSamples.exchange(0, std::memory_order_relaxed))
    Engine.addDeferredBackPointerSamples(P);
  Engine.settleDeferredAccesses(TotalAccesses);
}

void SharedCacheEngine::quiesce(
    const std::function<void(const SharedCacheEngine &)> &Fn) {
  lockAllForQuiesce();
  QuiesceCount.fetch_add(1, std::memory_order_relaxed);
  try {
    Fn(*this);
  } catch (...) {
    unlockAllForQuiesce();
    throw;
  }
  unlockAllForQuiesce();
}

void SharedCacheEngine::lockAllForQuiesce() {
  // ccsim-lint: allow(locking.naked-lock) -- N locks acquired in canonical order; paired in unlockAllForQuiesce, exception-safe via quiesce()'s catch
  EngineMu.lock();
  for (unsigned I = 0; I < NFences; ++I)
    // ccsim-lint: allow(locking.naked-lock) -- part of the ordered quiesce acquire sequence above
    Fences[I].Mu.lock();
  for (unsigned I = 0; I < NShards; ++I)
    // ccsim-lint: allow(locking.naked-lock) -- part of the ordered quiesce acquire sequence above
    Shards[I].Mu.lock();
}

void SharedCacheEngine::unlockAllForQuiesce() {
  for (unsigned I = NShards; I > 0; --I)
    // ccsim-lint: allow(locking.naked-lock) -- reverse-order release of the quiesce acquire sequence
    Shards[I - 1].Mu.unlock();
  for (unsigned I = NFences; I > 0; --I)
    // ccsim-lint: allow(locking.naked-lock) -- reverse-order release of the quiesce acquire sequence
    Fences[I - 1].Mu.unlock();
  // ccsim-lint: allow(locking.naked-lock) -- reverse-order release of the quiesce acquire sequence
  EngineMu.unlock();
}

CacheStats SharedCacheEngine::stats() {
  MutexLock L(EngineMu);
  return Engine.stats();
}

ContentionCounters SharedCacheEngine::contention() const {
  ContentionCounters C;
  C.FastHits = FastHits.load(std::memory_order_relaxed);
  C.InstallRaces = InstallRaces.load(std::memory_order_relaxed);
  C.FenceSharedStalls = FenceSharedStalls.load(std::memory_order_relaxed);
  C.FenceExclusiveStalls = FenceExclusiveStalls.load(std::memory_order_relaxed);
  C.EngineLockStalls = EngineLockStalls.load(std::memory_order_relaxed);
  C.EngineLockWaitMicros = EngineLockWaitMicros.load(std::memory_order_relaxed);
  C.QuiescePoints = QuiesceCount.load(std::memory_order_relaxed);
  return C;
}

void SharedCacheEngine::publishContention(telemetry::MetricsRegistry &Metrics,
                                          const telemetry::MetricLabels &Labels) {
  const ContentionCounters C = contention();
  Metrics.counter("shared.fast_hits", Labels).add(C.FastHits);
  Metrics.counter("shared.install_races", Labels).add(C.InstallRaces);
  Metrics.counter("shared.fence_stalls_shared", Labels)
      .add(C.FenceSharedStalls);
  Metrics.counter("shared.fence_stalls_exclusive", Labels)
      .add(C.FenceExclusiveStalls);
  Metrics.counter("shared.engine_lock_stalls", Labels).add(C.EngineLockStalls);
  Metrics.counter("shared.engine_lock_wait_us", Labels)
      .add(C.EngineLockWaitMicros);
  Metrics.counter("shared.quiesce_points", Labels).add(C.QuiescePoints);
  uint64_t Total = 0;
  uint64_t MaxShard = 0;
  for (unsigned I = 0; I < NShards; ++I) {
    const Shard &S = Shards[I];
    ReaderLock RL(S.Mu);
    uint64_t Here = 0;
    for (const uint8_t R : S.Resident)
      Here += R;
    Total += Here;
    MaxShard = std::max(MaxShard, Here);
  }
  Metrics.gauge("shared.index_entries", Labels)
      .set(static_cast<double>(Total));
  Metrics.gauge("shared.shard_occupancy_max", Labels)
      .set(static_cast<double>(MaxShard));
}

SharedIndexState SharedCacheEngine::indexSnapshot() const {
  SharedIndexState St;
  St.Shards = NShards;
  St.Fences = NFences;
  St.FenceBytes = FenceWidth;
  for (unsigned I = 0; I < NShards; ++I) {
    const Shard &S = Shards[I];
    for (size_t Slot = 0; Slot < S.Resident.size(); ++Slot)
      if (S.Resident[Slot])
        St.Entries.push_back(
            {static_cast<SuperblockId>((Slot << ShardBits) | I),
             S.Region[Slot]});
  }
  std::sort(St.Entries.begin(), St.Entries.end(),
            [](const SharedIndexEntry &A, const SharedIndexEntry &B) {
              return A.Id < B.Id;
            });
  return St;
}

void SharedCacheEngine::reconcileIndexEntry(SuperblockId Id) {
  const bool Res = Engine.cache().contains(Id);
  uint32_t Region = 0;
  if (Res)
    Region = regionOf(Engine.cache().startOf(Id));
  Shard &S = Shards[shardOf(Id)];
  const size_t Slot = slotOf(Id);
  WriterLock WL(S.Mu);
  if (Slot >= S.Resident.size()) {
    if (!Res)
      return;
    S.Resident.resize(Slot + 1, 0);
    S.Region.resize(Slot + 1, 0);
  }
  S.Resident[Slot] = Res ? 1 : 0;
  S.Region[Slot] = Region;
}

void SharedCacheEngine::onEvictionBatch(
    std::span<const CodeCache::Resident> Victims) {
  // Runs under EngineMu (all evictions originate from a miss / install /
  // flush holding it). Take the victims' region fences exclusively in
  // ascending order, tear down payloads, then kill the index entries --
  // hits in unaffected regions proceed untouched throughout.
  RegionScratch.clear();
  for (const CodeCache::Resident &V : Victims)
    RegionScratch.push_back(regionOf(V.Start));
  std::sort(RegionScratch.begin(), RegionScratch.end());
  RegionScratch.erase(
      std::unique(RegionScratch.begin(), RegionScratch.end()),
      RegionScratch.end());
  for (const uint32_t R : RegionScratch)
    if (!Fences[R].Mu.try_lock()) {
      FenceExclusiveStalls.fetch_add(1, std::memory_order_relaxed);
      // ccsim-lint: allow(locking.naked-lock) -- counted slow-path acquire of a variable-length fence set; released below in reverse order
      Fences[R].Mu.lock();
    }
  if (OwnerEvictPayload)
    OwnerEvictPayload(Victims);
  for (const CodeCache::Resident &V : Victims) {
    Shard &S = Shards[shardOf(V.Id)];
    WriterLock WL(S.Mu);
    const size_t Slot = slotOf(V.Id);
    if (Slot < S.Resident.size())
      S.Resident[Slot] = 0;
  }
  for (auto It = RegionScratch.rbegin(); It != RegionScratch.rend(); ++It)
    // ccsim-lint: allow(locking.naked-lock) -- reverse-order release of the fence set acquired above; no early exit between the pair
    Fences[*It].Mu.unlock();
}
