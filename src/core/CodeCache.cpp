//===- core/CodeCache.cpp - Circular-buffer code cache placement ---------===//

#include "core/CodeCache.h"

#include <algorithm>

using namespace ccsim;

CodeCache::CodeCache(uint64_t CapacityBytes) : Capacity(CapacityBytes) {
  CCSIM_REQUIRE(Capacity > 0, "cache capacity must be positive");
}

void CodeCache::growTables(SuperblockId Id) {
  if (Id < ResidentFlag.size())
    return;
  const size_t NewSize = std::max<size_t>(Id + 1, ResidentFlag.size() * 2);
  ResidentFlag.resize(NewSize, 0);
  StartById.resize(NewSize, 0);
  SizeById.resize(NewSize, 0);
}

uint64_t CodeCache::contiguousFreeAtTail() const {
  if (Fifo.empty())
    return Capacity - Tail;
  const uint64_t Head = Fifo.front().Start;
  if (Head >= Tail) {
    // Either the occupied region wraps (free = [Tail, Head)) or the cache
    // is exactly full (Head == Tail with residents).
    return Head - Tail;
  }
  // Occupied region is [Head, Tail); free space runs to the buffer end.
  return Capacity - Tail;
}

CodeCache::Resident CodeCache::evictFront() {
  CCSIM_ASSERT(!Fifo.empty(), "evicting from an empty cache");
  Resident Victim = Fifo.front();
  Fifo.pop_front();
  Occupied -= Victim.Size;
  ResidentFlag[Victim.Id] = 0;
  if (Fifo.empty())
    Tail = 0; // Empty cache: restart placement at the origin.
  return Victim;
}

CodeCache::PrepareOutcome
CodeCache::prepareInsert(uint32_t SizeBytes, uint64_t Quantum,
                         std::vector<Resident> &EvictedOut) {
  CCSIM_ASSERT(SizeBytes > 0, "cannot cache an empty superblock");
  CCSIM_ASSERT(Quantum > 0, "quantum must be positive");
  PrepareOutcome Out;
  if (SizeBytes > Capacity)
    return Out; // Cannot ever fit; CanInsert stays false.
  Out.CanInsert = true;

  uint64_t LastEvictedUnit = ~0ULL;
  bool EvictedAny = false;
  auto NoteEvicted = [&](const Resident &Victim) {
    EvictedOut.push_back(Victim);
    const uint64_t Unit = unitOf(Victim.Start, Quantum);
    if (!EvictedAny || Unit != LastEvictedUnit)
      ++Out.UnitsFlushed;
    LastEvictedUnit = Unit;
    EvictedAny = true;
  };

  for (;;) {
    if (Fifo.empty()) {
      Tail = 0;
      return Out;
    }
    if (contiguousFreeAtTail() >= SizeBytes)
      return Out;

    if (Fifo.front().Start < Tail) {
      // Free space is capped by the buffer end while the FIFO head sits
      // behind the write position: wrap, wasting the tail bytes (code
      // cannot span the wrap point).
      Out.WastedBytes += Capacity - Tail;
      Tail = 0;
      continue;
    }

    // The FIFO head is ahead of the write position: reclaim from it.
    // First evict until the incoming block fits ...
    while (!Fifo.empty() && Fifo.front().Start >= Tail &&
           contiguousFreeAtTail() < SizeBytes)
      NoteEvicted(evictFront());

    // ... then finish clearing the unit of the last victim, so that whole
    // units are always flushed together (no-op for the 1-byte quantum of
    // fine-grained FIFO, since distinct blocks have distinct starts).
    if (EvictedAny && Quantum > 1)
      while (!Fifo.empty() && Fifo.front().Start >= Tail &&
             unitOf(Fifo.front().Start, Quantum) == LastEvictedUnit)
        NoteEvicted(evictFront());
    // Loop: re-check fit (the head may have wrapped to low offsets, in
    // which case the free region now runs to the buffer end).
  }
}

uint64_t CodeCache::commitInsert(SuperblockId Id, uint32_t SizeBytes) {
  CCSIM_ASSERT(!contains(Id), "block %u already resident", Id);
  CCSIM_ASSERT(SizeBytes > 0, "cannot cache an empty superblock");
  CCSIM_ASSERT(contiguousFreeAtTail() >= SizeBytes,
               "commitInsert of %u bytes without a successful prepareInsert",
               SizeBytes);
  growTables(Id);
  const uint64_t Start = Tail;
  Fifo.push_back(Resident{Id, Start, SizeBytes});
  Tail += SizeBytes;
  if (Tail == Capacity)
    Tail = 0; // Exact fit against the end: next write wraps cleanly.
  Occupied += SizeBytes;
  ResidentFlag[Id] = 1;
  StartById[Id] = Start;
  SizeById[Id] = SizeBytes;
  return Start;
}

void CodeCache::flushAll(std::vector<Resident> &EvictedOut) {
  while (!Fifo.empty())
    EvictedOut.push_back(evictFront());
  Tail = 0;
}

bool CodeCache::checkInvariants() const {
  // Occupancy bookkeeping.
  uint64_t SumBytes = 0;
  size_t FlaggedResident = 0;
  for (size_t Id = 0; Id < ResidentFlag.size(); ++Id)
    if (ResidentFlag[Id])
      ++FlaggedResident;
  if (FlaggedResident != Fifo.size())
    return false;

  std::vector<std::pair<uint64_t, uint64_t>> Ranges;
  Ranges.reserve(Fifo.size());
  for (const Resident &R : Fifo) {
    if (R.Size == 0 || R.end() > Capacity)
      return false; // Blocks must not wrap past the buffer end.
    if (!contains(R.Id) || StartById[R.Id] != R.Start ||
        SizeById[R.Id] != R.Size)
      return false;
    SumBytes += R.Size;
    Ranges.emplace_back(R.Start, R.end());
  }
  if (SumBytes != Occupied || Occupied > Capacity)
    return false;

  // No two residents overlap.
  std::sort(Ranges.begin(), Ranges.end());
  for (size_t I = 1; I < Ranges.size(); ++I)
    if (Ranges[I].first < Ranges[I - 1].second)
      return false;

  // FIFO starts must be cyclically increasing: at most one wrap point.
  size_t Wraps = 0;
  for (size_t I = 1; I < Fifo.size(); ++I)
    if (Fifo[I].Start < Fifo[I - 1].Start)
      ++Wraps;
  if (Wraps > 1)
    return false;
  return true;
}
