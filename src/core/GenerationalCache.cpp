//===- core/GenerationalCache.cpp - Lifetime-segregated code caches ------===//

#include "core/GenerationalCache.h"
#include "support/Contracts.h"

#include <algorithm>

using namespace ccsim;

GenerationalCacheManager::GenerationalCacheManager(
    const GenerationalConfig &Config)
    : Config(Config),
      Nursery(std::max<uint64_t>(
          1, Config.CapacityBytes -
                 static_cast<uint64_t>(Config.TenuredFraction *
                                       static_cast<double>(
                                           Config.CapacityBytes)))),
      Tenured(std::max<uint64_t>(
          1, static_cast<uint64_t>(Config.TenuredFraction *
                                   static_cast<double>(
                                       Config.CapacityBytes)))) {
  CCSIM_REQUIRE(Config.TenuredFraction >= 0.0 && Config.TenuredFraction < 1.0,
                "tenured fraction %g must be in [0, 1)",
                Config.TenuredFraction);
  CCSIM_REQUIRE(Config.PromoteAfterInserts >= 1,
                "promotion threshold must be at least one insert");
}

uint32_t GenerationalCacheManager::bumpInsertCount(SuperblockId Id) {
  if (Id >= InsertCount.size())
    InsertCount.resize(std::max<size_t>(Id + 1, InsertCount.size() * 2), 0);
  return ++InsertCount[Id];
}

void GenerationalCacheManager::chargeEvictions(uint64_t Bytes,
                                               size_t Blocks,
                                               uint64_t Units) {
  ++Stats.EvictionInvocations;
  Stats.EvictedBlocks += Blocks;
  Stats.EvictedBytes += Bytes;
  Stats.UnitsFlushed += Units;
  Stats.EvictionOverhead += Config.Costs.evictionOverhead(Bytes);
}

AccessKind GenerationalCacheManager::access(const SuperblockRecord &Rec) {
  CCSIM_ASSERT(Rec.Id != InvalidSuperblockId, "invalid superblock id");
  CCSIM_ASSERT(Rec.SizeBytes > 0,
               "superblock %u must have a positive size", Rec.Id);
  ++Stats.Accesses;

  if (Nursery.contains(Rec.Id) || Tenured.contains(Rec.Id)) {
    ++Stats.Hits;
    return AccessKind::Hit;
  }

  ++Stats.Misses;
  const uint32_t Inserts = bumpInsertCount(Rec.Id);
  if (Inserts > 1)
    ++Stats.CapacityMisses;
  else
    ++Stats.ColdMisses;
  Stats.MissOverhead += Config.Costs.missOverhead(Rec.SizeBytes);

  // Long-lived blocks go to the tenured generation; everything else to
  // the nursery. Blocks too large for their generation fall back to the
  // other; blocks too large for both stay uncached.
  const bool WantTenured = Inserts >= Config.PromoteAfterInserts &&
                           Rec.SizeBytes <= Tenured.capacity();
  CodeCache *Target = WantTenured ? &Tenured : &Nursery;
  if (Rec.SizeBytes > Target->capacity())
    Target = WantTenured ? &Nursery : &Tenured;
  if (Rec.SizeBytes > Target->capacity()) {
    ++Stats.TooBigMisses;
    return AccessKind::MissTooBig;
  }
  if (WantTenured && Target == &Tenured)
    ++Promotions;

  const unsigned Units =
      Target == &Tenured ? Config.TenuredUnits : Config.NurseryUnits;
  const uint64_t Quantum = std::clamp<uint64_t>(
      Target->capacity() / std::max(1u, Units), 1, Target->capacity());

  EvictedScratch.clear();
  const CodeCache::PrepareOutcome Prep =
      Target->prepareInsert(Rec.SizeBytes, Quantum, EvictedScratch);
  CCSIM_ASSERT(Prep.CanInsert, "capacity was checked above");
  Stats.WastedBytes += Prep.WastedBytes;
  if (!EvictedScratch.empty()) {
    uint64_t Bytes = 0;
    for (const CodeCache::Resident &V : EvictedScratch)
      Bytes += V.Size;
    chargeEvictions(Bytes, EvictedScratch.size(), Prep.UnitsFlushed);
    if (Target == &Tenured)
      TenuredEvictions += EvictedScratch.size();
    else
      NurseryEvictions += EvictedScratch.size();
  }
  Target->commitInsert(Rec.Id, Rec.SizeBytes);
  ++Stats.Inserts;
  Stats.InsertedBytes += Rec.SizeBytes;
  return AccessKind::Miss;
}

bool GenerationalCacheManager::checkInvariants() const {
  if (!Nursery.checkInvariants() || !Tenured.checkInvariants())
    return false;
  // Exclusive residency.
  bool Ok = true;
  Nursery.forEachResident([&](const CodeCache::Resident &R) {
    if (Tenured.contains(R.Id))
      Ok = false;
  });
  return Ok;
}
