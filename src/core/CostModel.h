//===- core/CostModel.h - Analytical cache management cost model ---------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analytical overhead model of Section 4.3 and Section 5.2. Overheads
/// are expressed in instructions, as measured in the paper with PAPI
/// instruction counters around DynamoRIO's cache management routines:
///
///   Eq. 2  evictionOverhead  = 2.77  * sizeBytes + 3055
///   Eq. 3  missOverhead      = 75.4  * sizeBytes + 1922
///   Eq. 4  unlinkingOverhead = 296.5 * numLinks  + 95.7
///
/// The coefficients are parameters so that (a) the regression study in
/// bench/fig9 can plug in freshly fitted values from the mini-DBT and
/// (b) sensitivity studies can vary them.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_COSTMODEL_H
#define CCSIM_CORE_COSTMODEL_H

#include <cstdint>

namespace ccsim {

/// Linear instruction-overhead model for the three cache management
/// operations: evicting code, servicing a miss (regeneration), and
/// removing dangling links via the back-pointer table.
struct CostModel {
  double EvictionPerByte = 2.77;
  double EvictionBase = 3055.0;
  double MissPerByte = 75.4;
  double MissBase = 1922.0;
  double UnlinkPerLink = 296.5;
  double UnlinkBase = 95.7;

  /// Instructions to evict \p SizeBytes of code in one invocation (Eq. 2).
  double evictionOverhead(uint64_t SizeBytes) const {
    return EvictionPerByte * static_cast<double>(SizeBytes) + EvictionBase;
  }

  /// Instructions to regenerate a superblock of \p SizeBytes on a code
  /// cache miss: re-translate, insert, update hash table (Eq. 3).
  double missOverhead(uint64_t SizeBytes) const {
    return MissPerByte * static_cast<double>(SizeBytes) + MissBase;
  }

  /// Instructions to remove \p NumLinks incoming links that point at an
  /// eviction candidate (Eq. 4). Zero links cost nothing: the back-pointer
  /// table lookup that discovers "no links" is folded into eviction cost.
  double unlinkingOverhead(uint64_t NumLinks) const {
    if (NumLinks == 0)
      return 0.0;
    return UnlinkPerLink * static_cast<double>(NumLinks) + UnlinkBase;
  }

  /// The coefficients published in the paper (also the defaults).
  static CostModel paperDefaults() { return CostModel(); }
};

} // namespace ccsim

#endif // CCSIM_CORE_COSTMODEL_H
