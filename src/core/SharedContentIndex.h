//===- core/SharedContentIndex.h - Cross-tenant content sharing ----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed registry of resident superblocks, the core of the
/// ShareJIT-style cross-tenant sharing study (DESIGN.md section 19). A
/// content key identifies "the same translated code" regardless of which
/// tenant produced it; the first tenant to install a block under a key
/// becomes its *representative*, and later tenants that miss on identical
/// content *link* the representative instead of installing a duplicate.
///
/// The refcount of an entry is 1 (the representative's own residency) plus
/// one per live link. Eviction of the representative force-drains every
/// link — each drained link is an unshare unlink charged through the
/// Eq. 4 cost machinery, because the linking tenant's dispatch glue must
/// be unpatched exactly like a chained branch.
///
/// One index instance may span several CacheEngine instances (the
/// static-partition and unit-quota tenancy modes run one engine per
/// tenant); global superblock ids are unique across engines, so
/// representative lookups are unambiguous.
///
/// Deterministic by construction: both maps are ordered, so audits and
/// snapshots never depend on hash iteration order.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_SHAREDCONTENTINDEX_H
#define CCSIM_CORE_SHAREDCONTENTINDEX_H

#include "core/Superblock.h"

#include <cstdint>
#include <map>
#include <span>
#include <string_view>
#include <vector>

namespace ccsim {

/// FNV-1a accumulator for content keys. Fold in the trace name, local id,
/// size, and edge list; identical folds yield identical keys.
class ContentKeyBuilder {
public:
  ContentKeyBuilder &mix(uint64_t Value) {
    for (int Byte = 0; Byte < 8; ++Byte) {
      Hash ^= (Value >> (8 * Byte)) & 0xffU;
      Hash *= 0x100000001b3ULL;
    }
    return *this;
  }

  ContentKeyBuilder &mix(std::string_view Text) {
    for (const char C : Text) {
      Hash ^= static_cast<uint8_t>(C);
      Hash *= 0x100000001b3ULL;
    }
    return *this;
  }

  /// Finished key. Never returns 0 (0 means "no content key" on a
  /// SuperblockRecord), so the degenerate hash is nudged.
  uint64_t key() const { return Hash == 0 ? 1 : Hash; }

private:
  uint64_t Hash = 0xcbf29ce484222325ULL;
};

/// Key for a generator-tagged block: every block carrying the same
/// nonzero ContentTag is "the same code" across tenants by construction.
inline uint64_t contentKeyForTag(uint64_t Tag) {
  return ContentKeyBuilder().mix(0x5461676765644b65ULL).mix(Tag).key();
}

/// Fallback key for untagged blocks: trace name + local id + size + static
/// edges. Two tenants replaying the *same* benchmark trace share every
/// block; distinct benchmarks never collide (the name is folded in).
inline uint64_t contentKeyForBlock(std::string_view TraceName,
                                   SuperblockId LocalId, uint32_t SizeBytes,
                                   std::span<const SuperblockId> Edges) {
  ContentKeyBuilder B;
  B.mix(TraceName).mix(LocalId).mix(SizeBytes);
  for (const SuperblockId E : Edges)
    B.mix(E);
  return B.key();
}

/// Content key -> one resident representative plus its live links.
class SharedContentIndex {
public:
  /// One live share link: \p Tenant resolves its alias superblock
  /// \p Alias to the entry's representative instead of owning a copy.
  struct Link {
    TenantId Tenant = 0;
    SuperblockId Alias = InvalidSuperblockId;
  };

  struct Entry {
    SuperblockId Representative = InvalidSuperblockId;
    uint32_t SizeBytes = 0;
    TenantId Owner = 0;       ///< Tenant that installed the copy.
    uint32_t RefCount = 0;    ///< 1 (representative) + live links. Kept
                              ///< explicitly so the share.refcount-mismatch
                              ///< audit can catch drift against Links.
    std::vector<Link> Links;  ///< Chronological link order.
  };

  /// Registers \p Rep as the resident representative for \p Key. The
  /// caller guarantees no entry currently holds \p Key (a shared hit
  /// would have linked it instead of installing).
  void registerRepresentative(uint64_t Key, SuperblockId Rep,
                              uint32_t SizeBytes, TenantId Owner);

  /// Entry holding a resident representative for \p Key, or nullptr.
  const Entry *lookup(uint64_t Key) const;

  /// Records that (\p Tenant, \p Alias) resolves to \p Key's
  /// representative. Returns true when this is a new link (the pair was
  /// not yet linked) — the caller counts a shared install exactly then.
  bool link(uint64_t Key, TenantId Tenant, SuperblockId Alias);

  /// Eviction notification for \p Rep. When \p Rep is a representative,
  /// its entry is erased, every live link is force-drained into
  /// \p Released (chronological order), and true is returned; otherwise
  /// the index is untouched and false is returned.
  bool releaseRepresentative(SuperblockId Rep, std::vector<Link> &Released);

  bool isRepresentative(SuperblockId Id) const {
    return KeyOfRep.count(Id) != 0;
  }

  size_t entryCount() const { return ByKey.size(); }
  uint64_t liveLinkCount() const { return LiveLinks; }

  /// Deterministic key-ordered walk, for audits and snapshots.
  template <typename Fn> void forEachEntry(Fn &&Visit) const {
    for (const auto &[Key, E] : ByKey)
      Visit(Key, E);
  }

  void clear();

private:
  std::map<uint64_t, Entry> ByKey;
  std::map<SuperblockId, uint64_t> KeyOfRep; ///< Mirror for evict lookups.
  uint64_t LiveLinks = 0;
};

} // namespace ccsim

#endif // CCSIM_CORE_SHAREDCONTENTINDEX_H
