//===- core/CacheStats.h - Cache management statistics --------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters accumulated by the cache manager. Every figure of the paper is
/// computed from these: miss rates (Figures 6-7), eviction invocations
/// (Figure 8), overhead totals (Figures 10-11 and 14-15), link statistics
/// (Figures 12-13), and back-pointer table memory (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_CACHESTATS_H
#define CCSIM_CORE_CACHESTATS_H

#include "telemetry/MetricsRegistry.h"

#include <cstdint>

namespace ccsim {

/// Counters for one cache manager instance (one benchmark x one policy x
/// one capacity). All overheads are in modeled instructions.
struct CacheStats {
  // Access stream.
  uint64_t Accesses = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t ColdMisses = 0;     ///< First-ever access to a superblock.
  uint64_t CapacityMisses = 0; ///< Re-miss after an eviction.
  uint64_t TooBigMisses = 0;   ///< Misses larger than the whole cache;
                               ///< regenerated but never inserted.

  // Insertions (misses that actually placed a block). The auditor
  // reconciles these against observed structure: Inserts - EvictedBlocks
  // must equal the resident count, and InsertedBytes - EvictedBytes the
  // occupied bytes.
  uint64_t Inserts = 0;
  uint64_t InsertedBytes = 0;

  // Evictions.
  uint64_t EvictionInvocations = 0; ///< Times the eviction code ran.
  uint64_t EvictedBlocks = 0;       ///< Superblocks removed.
  uint64_t EvictedBytes = 0;        ///< Code bytes removed.
  uint64_t UnitsFlushed = 0;        ///< Distinct cache units cleared.
  uint64_t PreemptiveFlushes = 0;   ///< Policy-triggered full flushes.
  uint64_t WastedBytes = 0;         ///< Bytes skipped at wrap points.

  // Chaining.
  uint64_t LinksCreated = 0;          ///< Links materialized in the cache.
  uint64_t InterUnitLinksCreated = 0; ///< ... whose endpoints were in
                                      ///< different cache units.
  uint64_t SelfLinksCreated = 0;      ///< Superblock looping to itself.
  uint64_t UnlinkedLinks = 0;         ///< Dangling links repaired via the
                                      ///< back-pointer table.
  uint64_t UnlinkOperations = 0;      ///< Evicted blocks that had at least
                                      ///< one incoming link from survivors.
  uint64_t LinksDestroyed = 0;        ///< Links removed by evictions (both
                                      ///< endpoints dead or repaired). The
                                      ///< auditor requires LinksCreated -
                                      ///< LinksDestroyed == live links.

  // Cross-tenant content sharing (core/SharedContentIndex). Only engines
  // configured with a content index ever move these; SharingActive gates
  // the share.* metric series so runs without sharing keep byte-identical
  // telemetry exports.
  bool SharingActive = false;
  uint64_t SharedInstalls = 0;   ///< Misses resolved by linking a resident
                                 ///< copy instead of installing one.
  uint64_t SharedBytesSaved = 0; ///< Code bytes those links did not copy.
  uint64_t UnshareUnlinks = 0;   ///< Links force-drained because their
                                 ///< representative was evicted (each is
                                 ///< an Eq. 4 unlink on the linking
                                 ///< tenant's dispatch glue).

  // Modeled instruction overheads (CostModel).
  double MissOverhead = 0.0;
  double EvictionOverhead = 0.0;
  double UnlinkOverhead = 0.0;

  // Back-pointer table memory (bytes), only tracked when the policy
  // requires a table (everything except whole-cache FLUSH).
  uint64_t BackPointerBytesPeak = 0;
  double BackPointerBytesSum = 0.0; ///< Summed per access; divide by
                                    ///< Accesses for the time average.

  /// Misses per access; 0 when there were no accesses.
  double missRate() const {
    if (Accesses == 0)
      return 0.0;
    return static_cast<double>(Misses) / static_cast<double>(Accesses);
  }

  /// Total modeled overhead. \p IncludeLinkMaintenance selects between the
  /// Figure 10/11 model (miss + eviction) and the Figure 14/15 model
  /// (miss + eviction + unlinking).
  double totalOverhead(bool IncludeLinkMaintenance) const {
    double Total = MissOverhead + EvictionOverhead;
    if (IncludeLinkMaintenance)
      Total += UnlinkOverhead;
    return Total;
  }

  /// Fraction of created links that crossed a cache unit boundary
  /// (Figure 13); 0 when no links were created.
  double interUnitLinkFraction() const {
    if (LinksCreated == 0)
      return 0.0;
    return static_cast<double>(InterUnitLinksCreated) /
           static_cast<double>(LinksCreated);
  }

  /// Time-averaged back-pointer table size in bytes.
  double backPointerBytesAvg() const {
    if (Accesses == 0)
      return 0.0;
    return BackPointerBytesSum / static_cast<double>(Accesses);
  }

  /// Accumulates \p Other into this (used for cross-benchmark weighted
  /// aggregation, Equation 1).
  void merge(const CacheStats &Other);

  /// Publishes every counter into \p Metrics under \p Labels. This is the
  /// one place that exposes the full counter set — including the fields no
  /// report printed before telemetry existed (WastedBytes, UnitsFlushed,
  /// SelfLinksCreated, UnlinkOperations, the dangling-link repair count,
  /// and the back-pointer table footprint). Counters accumulate; gauges
  /// take the latest value. The share.* series is appended only when
  /// SharingActive, so sharing-disabled exports stay byte-identical.
  ///
  /// Every stats exporter in the tree (per-engine, per-tenant, suite)
  /// funnels through a recordMetrics(MetricsRegistry&, Labels) entry point
  /// of this shape — new counters are added here and nowhere else.
  void recordMetrics(telemetry::MetricsRegistry &Metrics,
                     const telemetry::MetricLabels &Labels) const;

  /// Deprecated spelling of recordMetrics(), kept for one release so
  /// out-of-tree callers keep compiling. New code uses recordMetrics().
  void recordTo(telemetry::MetricsRegistry &Metrics,
                const telemetry::MetricLabels &Labels) const {
    recordMetrics(Metrics, Labels);
  }
};

} // namespace ccsim

#endif // CCSIM_CORE_CACHESTATS_H
