//===- core/LinkGraph.h - Superblock chaining and back-pointer table -----===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Superblock chaining state (Section 3.1 of the paper). Each superblock
/// carries static outbound control-flow edges; when both endpoints of an
/// edge are resident in the code cache, the edge is *materialized* as a
/// patched link. Evicting a superblock that has incoming links from
/// surviving superblocks leaves dangling pointers unless those links are
/// found (via a back-pointer table) and removed — the cost the paper
/// models with Equation 4.
///
/// The graph maintains three structures per resident superblock:
///   - its static edge list (fixed for the block's lifetime),
///   - materialized outbound/inbound link lists (the back-pointer table),
///   - a "wants" index from absent targets to resident sources whose edges
///     will materialize the moment the target is (re)inserted.
///
/// Links are classified intra-unit or inter-unit at materialization time
/// using the eviction quantum in force (Figure 13). A whole-cache flush
/// destroys every link with no survivors, so no unlink work is charged —
/// exactly the paper's observation that FLUSH needs no back-pointer table.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_LINKGRAPH_H
#define CCSIM_CORE_LINKGRAPH_H

#include "core/CacheStats.h"
#include "core/CodeCache.h"
#include "core/Superblock.h"

#include <cstdint>
#include <span>
#include <vector>

namespace ccsim {

/// Chaining state for the blocks resident in one CodeCache.
class LinkGraph {
public:
  /// Bytes of back-pointer table memory per materialized link: an 8-byte
  /// pointer plus an 8-byte list link (paper, Section 5.1 footnote).
  static constexpr uint64_t BytesPerBackPointer = 16;

  /// Registers newly resident \p Id with its static \p Edges, materializes
  /// links in both directions against residents of \p Cache, classifies
  /// them under \p Quantum, and updates \p Stats link counters. Must be
  /// called after the block is committed to the cache.
  void onInsert(const CodeCache &Cache, uint64_t Quantum, SuperblockId Id,
                std::span<const SuperblockId> Edges, CacheStats &Stats);

  /// Processes a batch of just-evicted blocks (already removed from
  /// \p Cache). For each victim, appends to \p DanglingCounts the number
  /// of incoming links from *surviving* blocks — the dangling pointers a
  /// back-pointer table must repair (Equation 4's numLinks). Links whose
  /// endpoints both died are destroyed for free.
  void onEvict(const CodeCache &Cache,
               std::span<const CodeCache::Resident> Victims,
               std::vector<uint32_t> &DanglingCounts);

  /// Number of currently materialized links.
  uint64_t numLinks() const { return LinkCount; }

  /// Current back-pointer table footprint in bytes.
  uint64_t backPointerBytes() const {
    return LinkCount * BytesPerBackPointer;
  }

  /// Materialized out-degree / in-degree of a block (0 if not resident).
  size_t outDegree(SuperblockId Id) const;
  size_t inDegree(SuperblockId Id) const;

  /// True if a materialized link From -> To exists.
  bool hasLink(SuperblockId From, SuperblockId To) const;

  /// Auditor introspection: size of the dense per-id tables (ids at or
  /// beyond this were never registered).
  size_t idTableSize() const { return StaticEdges.size(); }

  /// Auditor introspection: raw per-id list views. Empty span for ids
  /// outside the tables. The spans alias internal storage and are
  /// invalidated by any mutation.
  std::span<const SuperblockId> staticEdgesOf(SuperblockId Id) const {
    return listOrEmpty(StaticEdges, Id);
  }
  std::span<const SuperblockId> outLinksOf(SuperblockId Id) const {
    return listOrEmpty(OutLinks, Id);
  }
  std::span<const SuperblockId> inLinksOf(SuperblockId Id) const {
    return listOrEmpty(InLinks, Id);
  }
  std::span<const SuperblockId> wantsOf(SuperblockId Id) const {
    return listOrEmpty(Wants, Id);
  }

  /// Exhaustive consistency check against \p Cache for tests: every link
  /// endpoint resident, in/out lists mirror each other, every static edge
  /// of a resident block is either materialized (target resident) or
  /// recorded in the wants index (target absent), and the link count
  /// matches.
  bool checkInvariants(const CodeCache &Cache) const;

private:
  // Dense per-id state; index by SuperblockId.
  std::vector<std::vector<SuperblockId>> StaticEdges;
  std::vector<std::vector<SuperblockId>> OutLinks;
  std::vector<std::vector<SuperblockId>> InLinks;
  std::vector<std::vector<SuperblockId>> Wants; // Target -> sources.
  std::vector<uint32_t> EvictEpoch; // Batch-membership marks.
  uint32_t CurrentEpoch = 0;
  uint64_t LinkCount = 0;

  static std::span<const SuperblockId>
  listOrEmpty(const std::vector<std::vector<SuperblockId>> &Table,
              SuperblockId Id) {
    if (Id >= Table.size())
      return {};
    return Table[Id];
  }

  void growTables(SuperblockId Id);
  void materialize(const CodeCache &Cache, uint64_t Quantum,
                   SuperblockId From, SuperblockId To, CacheStats &Stats);
  static void eraseOne(std::vector<SuperblockId> &List, SuperblockId Value);
  static void eraseAll(std::vector<SuperblockId> &List, SuperblockId Value);
};

} // namespace ccsim

#endif // CCSIM_CORE_LINKGRAPH_H
