//===- core/SharedCacheEngine.h - Thread-shared cache engine --------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-shareable front over CacheEngine: K guest threads dispatch
/// into one code cache, the regime of DynamoRIO's thread-shared caches
/// and ShareJIT's cross-process shared cache. Three locking domains:
///
///   EngineMu   one exclusive mutex over the underlying CacheEngine
///              (CodeCache placement, LinkGraph, free state, counters).
///              Misses, installs, and evictions serialize here — exactly
///              the translate/evict path a real DBT serializes too.
///
///   Shards     a lock-striped residency index over superblock ids
///              (shard = id & mask). The concurrent hit path answers
///              "resident?" under a shared shard lock without ever
///              touching EngineMu.
///
///   Fences     reader/writer locks striped over cache-address regions.
///              An eviction batch takes the victims' region fences
///              exclusively while payloads are torn down and the index
///              entries die; in-flight hits hold their block's fence
///              shared. A quantum eviction in one region therefore never
///              blocks hits in another.
///
/// Lock order: EngineMu -> fences (ascending index) -> shards. The hit
/// path never holds a shard lock while acquiring a fence (it re-checks
/// the shard after the fence is held), so there is no hold-and-wait
/// cycle against the eviction path.
///
/// Two execution modes:
///
///   Exact      every access serializes on EngineMu and runs the plain
///              CacheEngine::access() in arrival order. With one guest
///              thread this is byte-identical to the serial simulator --
///              same stats, same telemetry ticks. Also the fallback for
///              access-stateful policies (they must observe every hit).
///
///   Concurrent hits take the sharded fast path and are tallied in an
///              atomic; misses serialize on EngineMu through the
///              deferred front doors (deferredMiss + deferred back-
///              pointer samples), and settle(N) reconciles Accesses/Hits
///              when the guests join. Legal only for access-stateless
///              policies (unit-FIFO, fine FIFO), whose decisions never
///              depend on hit observations. K>1 results are validated by
///              the structural auditor + conservation laws, not byte
///              pins (the miss interleaving is schedule-dependent).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_SHAREDCACHEENGINE_H
#define CCSIM_CORE_SHAREDCACHEENGINE_H

#include "core/CacheEngine.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

namespace ccsim {

/// How accesses are executed against the shared engine. See file header.
enum class ShareMode : uint8_t { Exact, Concurrent };

const char *shareModeName(ShareMode M);

/// One entry of the sharded residency index, exported for auditing.
struct SharedIndexEntry {
  SuperblockId Id = InvalidSuperblockId;
  uint32_t Region = 0; ///< Eviction-fence region holding the block.
};

/// Snapshot of the sharded index taken at a quiesce point, cross-checked
/// against CodeCache residency by check::checkSharedIndex.
struct SharedIndexState {
  unsigned Shards = 0;
  unsigned Fences = 0;
  uint64_t FenceBytes = 0;            ///< Region width in cache bytes.
  std::vector<SharedIndexEntry> Entries; ///< Sorted by Id.
};

/// Contention totals, all monotone. Snapshots are safe at any time (the
/// counters are atomics); exact totals require the guests to have joined.
struct ContentionCounters {
  uint64_t FastHits = 0;        ///< Concurrent-mode hits (incl. races).
  uint64_t InstallRaces = 0;    ///< Miss/install found block already in.
  uint64_t FenceSharedStalls = 0;    ///< Hit blocked on a fenced region.
  uint64_t FenceExclusiveStalls = 0; ///< Evictor blocked on in-flight hits.
  uint64_t EngineLockStalls = 0;     ///< Miss/install blocked on EngineMu.
  uint64_t EngineLockWaitMicros = 0; ///< Total blocked time on EngineMu.
  uint64_t QuiescePoints = 0;
};

/// Configuration for a SharedCacheEngine.
struct SharedEngineConfig {
  /// Underlying engine configuration. OnEvictPayload/OnEviction hooks are
  /// honored: the payload hook fires with the victims' region fences held
  /// exclusively (per-victim teardown under the eviction fence).
  CacheEngineConfig Engine;

  /// Residency-index stripes (rounded up to a power of two, min 1).
  unsigned Shards = 16;

  /// Eviction-fence regions over [0, CapacityBytes) (min 1).
  unsigned Fences = 16;

  /// Fired under EngineMu immediately after a successful install() or a
  /// miss-path insert, with the new block resident and indexed. The
  /// execution-driven owner registers its dispatch entry here so the
  /// dispatch table and residency can never be observed out of sync at a
  /// quiesce point.
  std::function<void(const SuperblockRecord &)> OnInstallPayload;
};

/// Thread-shared engine. All public entry points are safe to call from
/// any number of guest threads once construction and setup are done.
class SharedCacheEngine {
public:
  SharedCacheEngine(const SharedEngineConfig &Config,
                    std::unique_ptr<EvictionPolicy> Policy, ShareMode Mode);

  /// Concurrent is only sound for access-stateless policies; everything
  /// else (and K == 1, where Exact is both correct and byte-identical to
  /// the serial simulator) runs Exact.
  static ShareMode preferredMode(unsigned GuestThreads,
                                 const EvictionPolicy &Policy);

  ShareMode mode() const { return Mode; }
  unsigned shardCount() const { return NShards; }
  unsigned fenceCount() const { return NFences; }
  uint64_t fenceBytes() const { return FenceWidth; }

  /// Processes one dispatch event. Exact mode: CacheEngine::access()
  /// under EngineMu. Concurrent mode: sharded fast hit or deferred miss.
  AccessKind access(const SuperblockRecord &Rec) CCSIM_EXCLUDES(EngineMu);

  /// Execution-driven front door: installs \p Rec unless it is already
  /// resident (a racing install, counted, returns false). Victim payload
  /// teardown runs under the victims' eviction fences. Not legal in a
  /// run that also drives Concurrent-mode access() (install counts its
  /// own access, which would break settle()).
  bool install(const SuperblockRecord &Rec) CCSIM_EXCLUDES(EngineMu);

  /// Lock-free-ish residency probe (shared shard lock only): the "find"
  /// half of a find/add stress loop. Never touches EngineMu.
  bool probe(SuperblockId Id) const;

  /// Concurrent mode only: reconciles the deferred counters after the
  /// guests joined. \p TotalAccesses must equal every access() call made.
  void settle(uint64_t TotalAccesses) CCSIM_EXCLUDES(EngineMu);

  /// Runs \p Fn with the entire engine quiescent: EngineMu, every fence,
  /// and every shard held. No access can be in flight; audits observe a
  /// consistent engine + index. \p Fn must not re-enter this engine.
  void quiesce(const std::function<void(const SharedCacheEngine &)> &Fn)
      CCSIM_EXCLUDES(EngineMu);

  /// Engine statistics (locks EngineMu; call settle() first in
  /// Concurrent mode for settled Accesses/Hits).
  CacheStats stats() CCSIM_EXCLUDES(EngineMu);

  /// Concurrent-mode hits tallied so far but not yet settled into the
  /// engine's counters. Auditors add this to Misses to reconstruct the
  /// provisional access count at a quiesce point.
  uint64_t provisionalHits() const {
    return FastHits.load(std::memory_order_relaxed);
  }

  ContentionCounters contention() const;

  /// Publishes the contention counters (and shard-occupancy gauges) into
  /// \p Metrics under shared.* names, labeled with \p Labels. Called by
  /// runners after the guests joined; never called in Exact mode by the
  /// K=1 replay path, so serial metric exports stay byte-identical.
  void publishContention(telemetry::MetricsRegistry &Metrics,
                         const telemetry::MetricLabels &Labels)
      CCSIM_EXCLUDES(EngineMu);

  /// Single-threaded configuration phase only (arming auditors, wiring
  /// payload hooks) -- before any guest thread exists. The analysis
  /// cannot see that phase distinction, hence the escape hatch.
  CacheEngine &engineSetup() CCSIM_NO_THREAD_SAFETY_ANALYSIS {
    return Engine;
  }

  /// Quiesce-context accessors: sound only inside a quiesce(Fn) callback,
  /// where every lock is held by the quiescing thread.
  const CacheEngine &engineForAudit() const CCSIM_NO_THREAD_SAFETY_ANALYSIS {
    return Engine;
  }
  SharedIndexState indexSnapshot() const CCSIM_NO_THREAD_SAFETY_ANALYSIS;

private:
  /// One stripe of the residency index. Resident/Region are dense over
  /// the ids mapping to this shard (slot = id / NShards).
  struct alignas(64) Shard {
    mutable SharedMutex Mu;
    std::vector<uint8_t> Resident CCSIM_GUARDED_BY(Mu);
    std::vector<uint32_t> Region CCSIM_GUARDED_BY(Mu);
  };

  /// One eviction-fence region over [i*FenceWidth, (i+1)*FenceWidth).
  struct alignas(64) Fence {
    mutable SharedMutex Mu;
  };

  unsigned shardOf(SuperblockId Id) const { return Id & ShardMask; }
  size_t slotOf(SuperblockId Id) const { return Id >> ShardBits; }
  uint32_t regionOf(uint64_t StartOffset) const {
    uint64_t R = StartOffset / FenceWidth;
    return static_cast<uint32_t>(R < NFences ? R : NFences - 1);
  }

  AccessKind accessExact(const SuperblockRecord &Rec) CCSIM_EXCLUDES(EngineMu);
  AccessKind accessConcurrent(const SuperblockRecord &Rec)
      CCSIM_EXCLUDES(EngineMu);

  /// Slow path of accessConcurrent: serialize on EngineMu, re-check for
  /// a racing install, then run the deferred miss.
  AccessKind missSlow(const SuperblockRecord &Rec) CCSIM_EXCLUDES(EngineMu);

  /// Brings the index entry for \p Id in line with actual residency
  /// (set with its region after an insert, cleared if a preemptive flush
  /// took it right back out). Takes the shard lock; caller holds
  /// EngineMu.
  void reconcileIndexEntry(SuperblockId Id) CCSIM_REQUIRES(EngineMu);

  /// Eviction-batch hook installed on the inner engine: takes the
  /// victims' region fences exclusively, runs the owner's payload
  /// teardown, and removes the victims from the index -- all before the
  /// engine's own accounting. Runs under EngineMu by construction (every
  /// eviction originates from a miss/install/flush under it). The lock
  /// set is data-dependent, which the analysis cannot model.
  void onEvictionBatch(std::span<const CodeCache::Resident> Victims)
      CCSIM_NO_THREAD_SAFETY_ANALYSIS;

  /// quiesce() helpers: acquire / release EngineMu + every fence + every
  /// shard in the global lock order. Loop-carried lock sets are invisible
  /// to the analysis.
  void lockAllForQuiesce() CCSIM_NO_THREAD_SAFETY_ANALYSIS;
  void unlockAllForQuiesce() CCSIM_NO_THREAD_SAFETY_ANALYSIS;

  ShareMode Mode;
  unsigned NShards = 1;
  unsigned ShardBits = 0;
  unsigned ShardMask = 0;
  unsigned NFences = 1;
  uint64_t FenceWidth = 1;

  ccsim::Mutex EngineMu;
  CacheEngine Engine CCSIM_GUARDED_BY(EngineMu);
  EvictPayloadHook OwnerEvictPayload; ///< Immutable after construction.
  std::function<void(const SuperblockRecord &)>
      OnInstallPayload; ///< Immutable after construction.

  std::unique_ptr<Shard[]> Shards;
  std::unique_ptr<Fence[]> Fences;

  /// Scratch for the eviction hook (distinct victim regions, ascending).
  /// Only touched under EngineMu.
  std::vector<uint32_t> RegionScratch CCSIM_GUARDED_BY(EngineMu);

  std::atomic<uint64_t> FastHits{0};
  std::atomic<uint64_t> PendingSamples{0};
  std::atomic<uint64_t> InstallRaces{0};
  std::atomic<uint64_t> FenceSharedStalls{0};
  std::atomic<uint64_t> FenceExclusiveStalls{0};
  std::atomic<uint64_t> EngineLockStalls{0};
  std::atomic<uint64_t> EngineLockWaitMicros{0};
  std::atomic<uint64_t> QuiesceCount{0};

  /// Lock-wait histogram (microseconds); created lazily, Concurrent mode
  /// with telemetry only, so Exact-mode runs never alter the registry.
  telemetry::HistogramMetric *LockWaitHist = nullptr;
};

} // namespace ccsim

#endif // CCSIM_CORE_SHAREDCACHEENGINE_H
