//===- core/FreeListCache.cpp - LRU free-list cache (Section 3.3 study) --===//

#include "core/FreeListCache.h"
#include "support/Contracts.h"

#include <algorithm>
#include <cmath>

using namespace ccsim;

FreeListCache::FreeListCache(uint64_t CapacityBytes, bool EnableCompaction)
    : Capacity(CapacityBytes), EnableCompaction(EnableCompaction) {
  CCSIM_REQUIRE(Capacity > 0, "cache capacity must be positive");
  FreeList.push_back(Hole{0, Capacity});
}

void FreeListCache::growSlots(SuperblockId Id) {
  if (Id < Slots.size())
    return;
  Slots.resize(std::max<size_t>(Id + 1, Slots.size() * 2));
}

void FreeListCache::touch(SuperblockId Id) {
  CCSIM_ASSERT(contains(Id), "touching non-resident block %u", Id);
  Slot &S = Slots[Id];
  LruList.splice(LruList.end(), LruList, S.LruPos); // Move to MRU end.
}

int64_t FreeListCache::findHole(uint32_t SizeBytes) const {
  for (size_t I = 0; I < FreeList.size(); ++I)
    if (FreeList[I].Size >= SizeBytes)
      return static_cast<int64_t>(I);
  return -1;
}

void FreeListCache::release(uint64_t Start, uint64_t Size) {
  // Insert keeping address order, then coalesce with neighbors.
  const auto Pos = std::lower_bound(
      FreeList.begin(), FreeList.end(), Start,
      [](const Hole &H, uint64_t S) { return H.Start < S; });
  const size_t Index =
      static_cast<size_t>(std::distance(FreeList.begin(), Pos));
  FreeList.insert(Pos, Hole{Start, Size});

  // Coalesce with successor first (indices stay valid), then predecessor.
  if (Index + 1 < FreeList.size() &&
      FreeList[Index].Start + FreeList[Index].Size ==
          FreeList[Index + 1].Start) {
    FreeList[Index].Size += FreeList[Index + 1].Size;
    FreeList.erase(FreeList.begin() + static_cast<int64_t>(Index) + 1);
  }
  if (Index > 0 && FreeList[Index - 1].Start + FreeList[Index - 1].Size ==
                       FreeList[Index].Start) {
    FreeList[Index - 1].Size += FreeList[Index].Size;
    FreeList.erase(FreeList.begin() + static_cast<int64_t>(Index));
  }
}

void FreeListCache::evictLru(std::vector<SuperblockId> &EvictedOut) {
  CCSIM_ASSERT(!LruList.empty(), "no LRU victim available");
  const SuperblockId Victim = LruList.front();
  LruList.pop_front();
  Slot &S = Slots[Victim];
  release(S.Start, S.Size);
  Occupied -= S.Size;
  S.Resident = false;
  ++Stats.Evictions;
  EvictedOut.push_back(Victim);
}

void FreeListCache::compact(double ResidentLinks) {
  ++Stats.Compactions;
  // Slide every allocation down in address order. In a real system this
  // copies the code and patches every link into and out of each moved
  // block; we charge bytes moved plus ResidentLinks fixups per moved
  // block (Section 3.3: "compaction would require adjusting all the
  // link pointers").
  std::vector<SuperblockId> ByAddress;
  ByAddress.reserve(LruList.size());
  for (SuperblockId Id : LruList)
    ByAddress.push_back(Id);
  std::sort(ByAddress.begin(), ByAddress.end(),
            [this](SuperblockId A, SuperblockId B) {
              return Slots[A].Start < Slots[B].Start;
            });
  uint64_t Cursor = 0;
  for (SuperblockId Id : ByAddress) {
    Slot &S = Slots[Id];
    if (S.Start != Cursor) {
      Stats.BytesMoved += S.Size;
      Stats.LinkFixups += static_cast<uint64_t>(std::llround(ResidentLinks));
      S.Start = Cursor;
    }
    Cursor += S.Size;
  }
  FreeList.clear();
  if (Cursor < Capacity)
    FreeList.push_back(Hole{Cursor, Capacity - Cursor});
}

uint64_t FreeListCache::largestHole() const {
  uint64_t Largest = 0;
  for (const Hole &H : FreeList)
    Largest = std::max(Largest, H.Size);
  return Largest;
}

bool FreeListCache::insert(SuperblockId Id, uint32_t SizeBytes,
                           double ResidentLinks,
                           std::vector<SuperblockId> &EvictedOut) {
  CCSIM_ASSERT(SizeBytes > 0, "cannot cache an empty superblock");
  CCSIM_ASSERT(!contains(Id), "block %u already resident", Id);
  if (SizeBytes > Capacity)
    return false;
  growSlots(Id);
  ++Stats.Inserts;

  // Fragmentation sampling before this insert does any work.
  if (freeBytes() > 0) {
    Stats.FreeSpaceSamples +=
        static_cast<double>(freeBytes()) / static_cast<double>(Capacity);
    Stats.LargestHoleSamples += static_cast<double>(largestHole()) /
                                static_cast<double>(Capacity);
  }

  bool CountedEvictionCall = false;
  for (;;) {
    const int64_t HoleIndex = findHole(SizeBytes);
    if (HoleIndex >= 0) {
      Hole &H = FreeList[static_cast<size_t>(HoleIndex)];
      Slot &S = Slots[Id];
      S.Resident = true;
      S.Start = H.Start;
      S.Size = SizeBytes;
      S.LruPos = LruList.insert(LruList.end(), Id);
      Occupied += SizeBytes;
      if (H.Size == SizeBytes)
        FreeList.erase(FreeList.begin() + HoleIndex);
      else {
        H.Start += SizeBytes;
        H.Size -= SizeBytes;
      }
      return true;
    }

    // No hole fits. Distinguish capacity pressure from fragmentation.
    if (freeBytes() >= SizeBytes) {
      ++Stats.FragmentationStalls;
      if (EnableCompaction) {
        compact(ResidentLinks);
        continue; // The single maximal hole now fits.
      }
    }
    if (!CountedEvictionCall) {
      ++Stats.EvictionCalls;
      CountedEvictionCall = true;
    }
    evictLru(EvictedOut);
  }
}

bool FreeListCache::checkInvariants() const {
  // Residency bookkeeping and LRU membership.
  size_t ResidentCount = 0;
  uint64_t ResidentBytes = 0;
  std::vector<std::pair<uint64_t, uint64_t>> Ranges;
  for (size_t Id = 0; Id < Slots.size(); ++Id) {
    if (!Slots[Id].Resident)
      continue;
    ++ResidentCount;
    ResidentBytes += Slots[Id].Size;
    if (Slots[Id].Start + Slots[Id].Size > Capacity)
      return false;
    if (*Slots[Id].LruPos != static_cast<SuperblockId>(Id))
      return false;
    Ranges.emplace_back(Slots[Id].Start,
                        Slots[Id].Start + Slots[Id].Size);
  }
  if (ResidentCount != LruList.size() || ResidentBytes != Occupied)
    return false;

  // Free list: ordered, coalesced, in-bounds, non-empty holes.
  uint64_t FreeBytesSum = 0;
  for (size_t I = 0; I < FreeList.size(); ++I) {
    if (FreeList[I].Size == 0 ||
        FreeList[I].Start + FreeList[I].Size > Capacity)
      return false;
    FreeBytesSum += FreeList[I].Size;
    if (I > 0) {
      if (FreeList[I - 1].Start >= FreeList[I].Start)
        return false;
      if (FreeList[I - 1].Start + FreeList[I - 1].Size >= FreeList[I].Start)
        return false; // Overlapping or uncoalesced.
    }
    Ranges.emplace_back(FreeList[I].Start,
                        FreeList[I].Start + FreeList[I].Size);
  }
  if (FreeBytesSum != Capacity - Occupied)
    return false;

  // Allocations + holes tile the arena exactly.
  std::sort(Ranges.begin(), Ranges.end());
  uint64_t Cursor = 0;
  for (const auto &[Start, End] : Ranges) {
    if (Start != Cursor)
      return false;
    Cursor = End;
  }
  return Cursor == Capacity;
}
