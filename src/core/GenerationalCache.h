//===- core/GenerationalCache.h - Lifetime-segregated code caches --------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-cache extension the paper cites in Section 2.2: "This idea
/// has been extended to support multiple superblock code caches that are
/// distinguished by the lifetimes of the superblocks they contain [15]"
/// (Hazelwood & Smith, MICRO 2003: generational cache management).
///
/// Two caches share the capacity budget: a *nursery* absorbs newly
/// translated superblocks, and blocks that keep getting regenerated
/// (evicted and re-translated PromoteAfterInserts times) are classified
/// long-lived and placed in the *tenured* cache, where phase-change
/// churn cannot evict them. Both caches evict with unit-FIFO policies.
///
/// Chaining state is not modeled across the generations (the comparison
/// bench evaluates miss + eviction overheads, the Figure 10/11 model).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_GENERATIONALCACHE_H
#define CCSIM_CORE_GENERATIONALCACHE_H

#include "core/CacheManager.h" // AccessKind
#include "core/CacheStats.h"
#include "core/CodeCache.h"
#include "core/CostModel.h"
#include "core/Superblock.h"

#include <cstdint>
#include <vector>

namespace ccsim {

/// Configuration for the two-generation cache.
struct GenerationalConfig {
  uint64_t CapacityBytes = 1 << 20; ///< Total budget across generations.
  double TenuredFraction = 0.5;     ///< Share given to the tenured cache.
  uint32_t PromoteAfterInserts = 3; ///< Regenerations before tenuring.
  unsigned NurseryUnits = 8;        ///< Unit-FIFO grain of the nursery.
  unsigned TenuredUnits = 8;        ///< Unit-FIFO grain of tenured.
  CostModel Costs = CostModel::paperDefaults();
};

/// A two-generation code cache manager (nursery + tenured).
class GenerationalCacheManager {
public:
  explicit GenerationalCacheManager(const GenerationalConfig &Config);

  /// Processes one superblock dispatch event.
  AccessKind access(const SuperblockRecord &Rec);

  const CacheStats &stats() const { return Stats; }
  const CodeCache &nursery() const { return Nursery; }
  const CodeCache &tenured() const { return Tenured; }
  uint64_t promotions() const { return Promotions; }
  uint64_t nurseryEvictions() const { return NurseryEvictions; }
  uint64_t tenuredEvictions() const { return TenuredEvictions; }

  /// A block must reside in at most one generation; caches must be
  /// individually consistent.
  bool checkInvariants() const;

private:
  GenerationalConfig Config;
  CodeCache Nursery;
  CodeCache Tenured;
  CacheStats Stats;
  uint64_t Promotions = 0;
  uint64_t NurseryEvictions = 0;
  uint64_t TenuredEvictions = 0;

  std::vector<uint32_t> InsertCount; ///< Regenerations per id.
  std::vector<CodeCache::Resident> EvictedScratch;

  void chargeEvictions(uint64_t Bytes, size_t Blocks, uint64_t Units);
  uint32_t bumpInsertCount(SuperblockId Id);
};

} // namespace ccsim

#endif // CCSIM_CORE_GENERATIONALCACHE_H
