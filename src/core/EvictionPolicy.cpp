//===- core/EvictionPolicy.cpp - Eviction granularity policies -----------===//

#include "core/EvictionPolicy.h"
#include "support/Contracts.h"

#include <algorithm>

using namespace ccsim;

EvictionPolicy::~EvictionPolicy() = default;

bool EvictionPolicy::usesBackPointerTable(uint64_t Capacity) const {
  return quantumBytes(Capacity) < Capacity;
}

void EvictionPolicy::noteAccess(bool) {}

bool EvictionPolicy::shouldFlushNow() { return false; }

void EvictionPolicy::noteFlush() {}

UnitFifoPolicy::UnitFifoPolicy(unsigned UnitCount) : UnitCount(UnitCount) {
  CCSIM_REQUIRE(UnitCount >= 1, "unit count must be at least 1");
}

std::string UnitFifoPolicy::name() const {
  if (UnitCount == 1)
    return "FLUSH";
  return std::to_string(UnitCount) + "-unit";
}

uint64_t UnitFifoPolicy::quantumBytes(uint64_t Capacity) const {
  return std::max<uint64_t>(1, Capacity / UnitCount);
}

AdaptiveGranularityPolicy::AdaptiveGranularityPolicy()
    : AdaptiveGranularityPolicy(Options()) {}

AdaptiveGranularityPolicy::AdaptiveGranularityPolicy(Options Opts)
    : Opts(std::move(Opts)) {
  CCSIM_REQUIRE(!this->Opts.Ladder.empty(), "ladder must be non-empty");
  CCSIM_REQUIRE(this->Opts.Thresholds.size() + 1 == this->Opts.Ladder.size(),
                "%zu thresholds for %zu ladder rungs (need one per transition)",
                this->Opts.Thresholds.size(), this->Opts.Ladder.size());
  CCSIM_REQUIRE(this->Opts.IntervalAccesses > 0,
                "interval must be positive");
  // Start in the middle of the ladder.
  Rung = this->Opts.Ladder.size() / 2;
}

uint64_t AdaptiveGranularityPolicy::quantumBytes(uint64_t Capacity) const {
  const unsigned Units = Opts.Ladder[Rung];
  if (Units == 0)
    return 1; // Fine-grained rung.
  return std::max<uint64_t>(1, Capacity / Units);
}

void AdaptiveGranularityPolicy::noteAccess(bool Hit) {
  ++IntervalAccesses;
  if (!Hit)
    ++IntervalMisses;
  if (IntervalAccesses >= Opts.IntervalAccesses)
    reevaluate();
}

void AdaptiveGranularityPolicy::reevaluate() {
  const double IntervalRate = static_cast<double>(IntervalMisses) /
                              static_cast<double>(IntervalAccesses);
  if (EwmaPrimed)
    Ewma = Opts.Alpha * IntervalRate + (1.0 - Opts.Alpha) * Ewma;
  else {
    Ewma = IntervalRate;
    EwmaPrimed = true;
  }
  IntervalAccesses = 0;
  IntervalMisses = 0;

  // Pick the target rung: high pressure -> rung 0 (coarsest/medium),
  // low pressure -> last rung (finest).
  size_t Target = Opts.Ladder.size() - 1;
  for (size_t I = 0; I < Opts.Thresholds.size(); ++I) {
    if (Ewma > Opts.Thresholds[I]) {
      Target = I;
      break;
    }
  }
  // Move one rung per interval for hysteresis.
  if (Target < Rung)
    --Rung;
  else if (Target > Rung)
    ++Rung;
}

PreemptiveFlushPolicy::PreemptiveFlushPolicy()
    : PreemptiveFlushPolicy(Options()) {}

PreemptiveFlushPolicy::PreemptiveFlushPolicy(Options Opts) : Opts(Opts) {
  CCSIM_REQUIRE(this->Opts.WindowAccesses > 0, "window must be positive");
}

void PreemptiveFlushPolicy::noteAccess(bool Hit) {
  ++WindowAccesses;
  ++AccessesSinceFlush;
  if (!Hit)
    ++WindowMisses;
  if (WindowAccesses < Opts.WindowAccesses)
    return;
  const double WindowRate = static_cast<double>(WindowMisses) /
                            static_cast<double>(WindowAccesses);
  if (WindowRate >= Opts.SpikeMissRate &&
      AccessesSinceFlush >= Opts.MinAccessesBetweenFlushes)
    Triggered = true;
  WindowAccesses = 0;
  WindowMisses = 0;
}

bool PreemptiveFlushPolicy::shouldFlushNow() {
  if (!Triggered)
    return false;
  Triggered = false;
  return true;
}

void PreemptiveFlushPolicy::noteFlush() { AccessesSinceFlush = 0; }

std::string GranularitySpec::label() const {
  switch (Kind) {
  case KindType::Flush:
    return "FLUSH";
  case KindType::Units:
    return std::to_string(Units) + "-unit";
  case KindType::Fine:
    return "FIFO";
  }
  return "?";
}

std::unique_ptr<EvictionPolicy> ccsim::makePolicy(const GranularitySpec &Spec) {
  switch (Spec.Kind) {
  case GranularitySpec::KindType::Flush:
    return std::make_unique<UnitFifoPolicy>(1);
  case GranularitySpec::KindType::Units:
    CCSIM_REQUIRE(Spec.Units >= 1, "unit count must be at least 1");
    return std::make_unique<UnitFifoPolicy>(Spec.Units);
  case GranularitySpec::KindType::Fine:
    return std::make_unique<FineFifoPolicy>();
  }
  return nullptr;
}

std::vector<GranularitySpec> ccsim::standardGranularitySweep() {
  std::vector<GranularitySpec> Sweep;
  Sweep.push_back(GranularitySpec::flush());
  for (unsigned N = 2; N <= 256; N *= 2)
    Sweep.push_back(GranularitySpec::units(N));
  Sweep.push_back(GranularitySpec::fine());
  return Sweep;
}
