//===- core/CacheEngine.h - Shared code cache engine ----------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache manager of Figure 1 as a reusable engine serving both of the
/// repository's front-ends. It combines the placement engine (CodeCache),
/// the eviction policy, the chaining state (LinkGraph) and the analytical
/// cost model (CostModel), accumulates CacheStats, and owns the scratch
/// buffers the eviction path reuses.
///
/// Two front doors:
///
///  - access(): the trace-driven path (simulator, sweeps, multi-tenant).
///    One access does a hit check (the hash table lookup of Figure 1); on
///    a miss it charges regeneration overhead (Eq. 3), makes room at the
///    policy's eviction quantum (charging Eq. 2 per invocation and Eq. 4
///    per evicted block with dangling incoming links), inserts, and
///    materializes chain links; finally it polls the policy for a
///    preemptive whole-cache flush.
///
///  - install(): the execution-driven path (the mini-DBT). The front-end
///    has already executed the miss and decided to cache the fragment, so
///    install() runs only the miss half of access(): make room, insert,
///    link. The owner charges its own instrumented costs through the
///    payload hooks below and never pays for the policy's access
///    bookkeeping.
///
/// Payload hooks let a front-end tear its own structures down per victim
/// (dispatch-table entries, fragment slots) in lockstep with the engine's
/// accounting; see CacheEngineConfig::OnEvictPayload / OnUnlinkPayload.
///
/// `CacheManager` (core/CacheManager.h) is an alias of this class kept
/// for the trace-driven call sites and docs that use the paper's name.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_CACHEENGINE_H
#define CCSIM_CORE_CACHEENGINE_H

#include "core/CacheStats.h"
#include "core/CodeCache.h"
#include "core/CostModel.h"
#include "core/EvictionPolicy.h"
#include "core/LinkGraph.h"
#include "core/SharedContentIndex.h"
#include "core/Superblock.h"
#include "telemetry/Telemetry.h"

#include <functional>
#include <memory>
#include <span>

namespace ccsim {

/// One batch of evictions (a single eviction invocation or full flush),
/// reported to an observer with tenant attribution. All spans alias the
/// engine's scratch buffers and are valid only during the callback.
struct EvictionBatchEvent {
  /// Tenant whose access triggered the batch (the "evictor").
  TenantId Evictor = 0;

  /// Victims in FIFO (oldest-first) eviction order.
  std::span<const CodeCache::Resident> Victims;

  /// Owner of each victim, parallel to Victims.
  std::span<const TenantId> VictimTenants;

  /// Incoming links from survivors repaired per victim, parallel to
  /// Victims. Empty when the run has no back-pointer table (chaining
  /// disabled or a whole-cache FLUSH policy).
  std::span<const uint32_t> DanglingLinks;
};

/// Observer invoked after each eviction batch has been accounted.
using EvictionObserver = std::function<void(const EvictionBatchEvent &)>;

/// One content-shared representative being force-unshared because it was
/// evicted: every tenant that linked the copy loses it and pays one Eq. 4
/// unlink. The span aliases engine scratch and is valid only during the
/// callback.
struct UnshareEvent {
  /// Tenant whose access triggered the eviction batch.
  TenantId Evictor = 0;

  /// The evicted representative block.
  SuperblockId Representative = InvalidSuperblockId;
  uint32_t SizeBytes = 0;

  /// The drained links, in the order they were created.
  std::span<const SharedContentIndex::Link> Links;
};

/// Observer invoked per unshared representative, after the engine charged
/// the drain (multi-tenant per-tenant attribution).
using UnshareObserver = std::function<void(const UnshareEvent &)>;

class CacheEngine;

/// When the installed audit hook (paranoid deep validation, see
/// check::armAuditor) runs. Levels nest: Full implies Evictions.
enum class AuditLevel : uint8_t {
  Off,       ///< Hook never runs (production default).
  Evictions, ///< After every access that evicted blocks, and after flushes.
  Full,      ///< After every access and every flush.
};

/// Compile-time default audit level: Full in CCSIM_PARANOID builds
/// (-DCCSIM_PARANOID=ON at configure time), Off otherwise. Config structs
/// use this as their initializer so a paranoid build audits everywhere
/// without per-call-site opt-in.
constexpr AuditLevel defaultAuditLevel() {
#ifdef CCSIM_PARANOID
  return AuditLevel::Full;
#else
  return AuditLevel::Off;
#endif
}

/// Deep-validation hook: receives the engine after a mutation settled and
/// a short site label ("access", "install", "flush"). Installed by
/// check::armAuditor; kept as a std::function so ccsim_core never links
/// against ccsim_check.
using AuditHook =
    std::function<void(const CacheEngine &, const char *Where)>;

/// Front-end teardown hook, fired at the top of each eviction batch
/// (before the engine's own accounting) with the victims in FIFO order.
/// The span aliases the engine's scratch buffer and is valid only during
/// the call. The cache still reports the victims as non-resident by the
/// time the hook runs; the owner drops its per-fragment state here.
using EvictPayloadHook =
    std::function<void(std::span<const CodeCache::Resident> Victims)>;

/// Front-end unlink hook, fired after the link graph repaired the batch
/// (chaining runs only). \p Dangling is parallel to \p Victims: incoming
/// links from surviving fragments that had to be unpatched per victim.
/// Under a whole-cache FLUSH policy nothing survives, so every count is
/// zero.
using UnlinkPayloadHook =
    std::function<void(std::span<const CodeCache::Resident> Victims,
                       std::span<const uint32_t> Dangling)>;

/// Configuration for a CacheEngine instance.
struct CacheEngineConfig {
  CacheEngineConfig() = default;

  /// Convenience for the three axes every front-end sets; everything else
  /// keeps its default.
  CacheEngineConfig(uint64_t CapacityBytes, bool EnableChaining,
                    telemetry::TelemetrySink *Telemetry = nullptr)
      : CapacityBytes(CapacityBytes), EnableChaining(EnableChaining),
        Telemetry(Telemetry) {}

  /// Code cache capacity in bytes (the paper's maxCache / pressure).
  uint64_t CapacityBytes = 1 << 20;

  /// Analytical instruction-overhead model.
  CostModel Costs = CostModel::paperDefaults();

  /// Maintain superblock chaining (links, back-pointer table, unlink
  /// charges). Disabling models a system without chaining (Table 2).
  bool EnableChaining = true;

  /// Optional eviction attribution hook (multi-tenant accounting). Left
  /// empty in single-tenant runs; the hot path never pays for it then.
  EvictionObserver OnEviction;

  /// Optional per-victim teardown hook for execution-driven owners. Fires
  /// first in every eviction batch, before the engine's counters, link
  /// repair, and telemetry.
  EvictPayloadHook OnEvictPayload;

  /// Optional unlink hook for execution-driven owners. Fires inside the
  /// chaining block, after the link graph repaired the batch.
  UnlinkPayloadHook OnUnlinkPayload;

  /// Optional cross-tenant content index (ShareJIT-style sharing). Null —
  /// the default — is the disabled fast path: access() pays one branch and
  /// nothing else, and every export stays byte-identical to a build
  /// without the feature. When set, accesses whose records carry a
  /// nonzero ContentKey resolve misses against the index (linking a
  /// resident identical copy instead of installing a duplicate), inserts
  /// register the block as the key's representative, and evicting a
  /// representative force-drains its links with per-link Eq. 4 charges.
  /// One index may be shared by several engines (partitioned tenancy).
  SharedContentIndex *ContentIndex = nullptr;

  /// Optional observer fired per unshared representative (after the
  /// engine accounted the drain). Only ever fired when ContentIndex is
  /// set.
  UnshareObserver OnUnshare;

  /// Optional telemetry endpoint. Null (the default) is the disabled
  /// fast path: hits emit nothing at all, and the miss/eviction paths pay
  /// one predictable null-pointer branch each. When set, the engine
  /// emits miss, insert, per-victim evict, eviction-batch, unlink, flush,
  /// and quantum-change records into the sink's tracer.
  telemetry::TelemetrySink *Telemetry = nullptr;
};

/// Result of one access.
enum class AccessKind {
  Hit,        ///< Superblock found in the cache.
  SharedHit,  ///< Not resident under its own id, but identical content is
              ///< resident under another tenant's id (content-index hit):
              ///< the access linked the shared copy instead of
              ///< regenerating. Counted as a hit in CacheStats.
  Miss,       ///< Regenerated and inserted.
  MissTooBig, ///< Regenerated but larger than the whole cache; executed
              ///< unlinked and discarded (pathological; counted, never
              ///< expected with realistic sizes).
};

/// Drives a CodeCache under an EvictionPolicy with full chaining and
/// overhead accounting.
class CacheEngine {
public:
  CacheEngine(const CacheEngineConfig &Config,
              std::unique_ptr<EvictionPolicy> Policy);

  /// Processes one superblock dispatch event (trace-driven front door).
  AccessKind access(const SuperblockRecord &Rec);

  /// Installs a freshly regenerated block (execution-driven front door):
  /// the miss half of access() only — make room at the current quantum,
  /// commit, materialize chain links. No policy access bookkeeping, no
  /// preemptive-flush poll, no audit; the owner sequences those. \p Rec
  /// must not already be resident. Returns false when the block exceeds
  /// the whole cache (counted as a too-big miss, nothing inserted).
  bool install(const SuperblockRecord &Rec);

  /// Forces a whole-cache flush (used by tests and external phase
  /// detectors; also the action behind PreemptiveFlushPolicy).
  void flushEntireCache();

  const CacheStats &stats() const { return Stats; }
  const CodeCache &cache() const { return Cache; }
  const LinkGraph &links() const { return Links; }
  EvictionPolicy &policy() { return *Policy; }
  const EvictionPolicy &policy() const { return *Policy; }
  const CacheEngineConfig &config() const { return Config; }

  /// The eviction quantum currently in force.
  uint64_t currentQuantum() const;

  /// Owner of resident or previously-seen superblock \p Id (tenant 0 if
  /// never inserted). Only meaningful when records carry tenant ids.
  TenantId tenantOf(SuperblockId Id) const {
    return Id < TenantById.size() ? TenantById[Id] : 0;
  }

  /// Cross-checks CodeCache and LinkGraph invariants (tests).
  bool checkInvariants() const;

  /// Late payload wiring, for owners whose hooks capture `this`: the
  /// engine is typically a member constructed before the owner can form
  /// such a lambda. Install the hooks before the first mutating call.
  void setEvictPayload(EvictPayloadHook Hook) {
    Config.OnEvictPayload = std::move(Hook);
  }
  void setUnlinkPayload(UnlinkPayloadHook Hook) {
    Config.OnUnlinkPayload = std::move(Hook);
  }

  /// Whether the most recent access() created a *new* share link (its
  /// AccessKind::SharedHit was the first time this (tenant, id) resolved
  /// to the shared copy — a shared install). Multi-tenant drivers use
  /// this for per-tenant SharedInstalls attribution.
  bool lastAccessShareLinked() const { return LastShareLinked; }

  /// Whether the most recent install() evicted at least one batch — the
  /// Evictions-level audit condition for install() owners, who call
  /// maybeAudit() only after their own structures settle.
  bool lastInstallEvicted() const { return LastInstallEvicted; }

  /// Paranoid-mode control. The hook only runs while the level permits,
  /// so arming an auditor on an engine left at AuditLevel::Off is free on
  /// the hot path (one branch per access).
  void setAuditLevel(AuditLevel Level) { Auditing = Level; }
  AuditLevel auditLevel() const { return Auditing; }
  void setAuditHook(AuditHook Hook) { Audit = std::move(Hook); }

  /// Runs the audit hook if the current level covers this site.
  /// \p Evicted: whether the mutation removed blocks (Evictions level).
  /// access()/flushEntireCache() call this themselves; install() owners
  /// call it once their own structures (dispatch table, slots) settle.
  void maybeAudit(bool Evicted, const char *Where);

  /// Samples back-pointer table memory into the stats (peak + mean
  /// accumulators). access() samples once per call; install() owners
  /// sample at their own cadence.
  void sampleBackPointerMemory();

  /// --- Deferred-access front door (one-pass multi-configuration) ------
  ///
  /// The src/multisweep shared pass drives many engines over one decoded
  /// access stream and batches everything a stateless policy
  /// (EvictionPolicy::isAccessStateless) cannot observe on a hit: the
  /// access/hit counters and the per-access back-pointer sample. The
  /// driver calls deferredMiss() for exactly the accesses that miss in
  /// this engine, keeps every access sampled exactly once in stream order
  /// via addDeferredBackPointerSamples() (legal because the table size
  /// only changes on the miss path), and finally reconciles the counters
  /// with settleDeferredAccesses(). Must not be mixed with access() on
  /// the same engine.

  /// The miss half of access() for a deferred-accounting run: sets the
  /// in-flight tenant and runs missAndInsert(). \p Rec must not be
  /// resident. Never returns Hit.
  AccessKind deferredMiss(const SuperblockRecord &Rec);

  /// Accounts \p Count back-pointer samples at the table's current size
  /// (same gate as sampleBackPointerMemory). Batching is exact: all
  /// sampled values are integral and far below 2^53, so the sum of one
  /// bytes*Count product equals Count per-access additions bit for bit.
  void addDeferredBackPointerSamples(uint64_t Count);

  /// Settles the deferred counters after the pass: Accesses becomes
  /// \p TotalAccesses and every access that did not miss was a hit. The
  /// engine must not have counted accesses through access()/install().
  void settleDeferredAccesses(uint64_t TotalAccesses);

  /// Victims of the most recent miss/flush (empty when it evicted
  /// nothing). Read-only view of the internal scratch — valid until the
  /// next mutating call. Lets a one-pass driver maintain its residency
  /// index without the copying OnEviction observer costs on the miss
  /// path.
  const std::vector<CodeCache::Resident> &lastEvictions() const {
    return EvictedScratch;
  }

private:
  CacheEngineConfig Config;
  std::unique_ptr<EvictionPolicy> Policy;
  CodeCache Cache;
  LinkGraph Links;
  CacheStats Stats;

  std::vector<uint8_t> Seen; // Cold-miss detection, indexed by id.
  std::vector<TenantId> TenantById;
  std::vector<CodeCache::Resident> EvictedScratch;
  std::vector<uint32_t> DanglingScratch;
  std::vector<TenantId> VictimTenantScratch;
  std::vector<SharedContentIndex::Link> UnshareScratch;
  TenantId CurrentTenant = 0; // Tenant of the in-flight access.
  bool LastShareLinked = false;

  // Telemetry bookkeeping (only touched when Config.Telemetry is set).
  uint64_t LastQuantumTraced = 0;   // 0 = no quantum recorded yet.
  bool PreemptiveFlushInFlight = false;

  AuditLevel Auditing = defaultAuditLevel();
  AuditHook Audit;
  bool LastInstallEvicted = false;

  /// Shared miss path behind access() and install(): charge Eq. 3, make
  /// room (firing the eviction machinery), insert, link. Returns the
  /// resulting access kind (never Hit).
  AccessKind missAndInsert(const SuperblockRecord &Rec);

  void chargeEvictions(uint64_t UnitsFlushed);
  void drainShares();
  void notifyEvictions();
  bool seenBefore(SuperblockId Id);
  void traceMiss(const SuperblockRecord &Rec, bool Cold, uint64_t Quantum);
  void traceEvictionBatch(uint64_t BatchBytes, bool HaveDangling);
};

} // namespace ccsim

#endif // CCSIM_CORE_CACHEENGINE_H
