//===- core/EvictionPolicy.h - Eviction granularity policies -------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eviction policies spanning the granularity spectrum of the paper:
///
///   FLUSH           whole-cache flush when full (coarsest; Dynamo, Mojo
///                   per-unit ancestor),
///   N-unit FIFO     cache partitioned into N equal units flushed FIFO
///                   (the paper's medium grain),
///   fine FIFO       evict just enough superblocks (DynamoRIO's bounded
///                   cache; circular buffer of Hazelwood & Smith),
///
/// plus the two policies the paper names as future work, implemented here
/// as extensions:
///
///   Adaptive        adjusts the unit count on-the-fly from perceived
///                   cache pressure (Section 5.4 future work),
///   Preemptive      Dynamo-style preemptive full flush on a detected
///                   program phase change (Section 2.3).
///
/// A policy's only placement-affecting decision is its eviction *quantum*;
/// the CacheManager asks for it on every miss, so adaptive policies may
/// change their answer over time.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CORE_EVICTIONPOLICY_H
#define CCSIM_CORE_EVICTIONPOLICY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccsim {

/// Abstract eviction policy. Stateless policies only implement name() and
/// quantumBytes(); adaptive policies additionally observe the access
/// stream through noteAccess() and may request preemptive flushes.
class EvictionPolicy {
public:
  virtual ~EvictionPolicy();

  /// Human-readable policy name, e.g. "FLUSH", "8-unit", "FIFO".
  virtual std::string name() const = 0;

  /// The eviction quantum in bytes for a cache of \p Capacity bytes.
  /// Capacity itself means whole-cache FLUSH; 1 means fine-grained FIFO.
  /// The manager clamps the result to [1, Capacity].
  virtual uint64_t quantumBytes(uint64_t Capacity) const = 0;

  /// Whether this policy needs a back-pointer table to repair dangling
  /// links. A whole-cache flush destroys all links simultaneously and
  /// needs no table (Section 3.1); everything else does.
  virtual bool usesBackPointerTable(uint64_t Capacity) const;

  /// Whether hits are pure reads for this policy: it never observes
  /// accesses (noteAccess is a no-op), never requests preemptive flushes,
  /// and its quantum is a pure function of capacity. Such policies mutate
  /// cache state only on misses, which is what qualifies them for the
  /// one-pass multi-configuration shortcuts in src/multisweep (the DEW
  /// single-pass FIFO property). Defaults to false; only the stateless
  /// FIFO family opts in.
  virtual bool isAccessStateless() const { return false; }

  /// Observes one access (hit or miss). Called before the miss handling.
  virtual void noteAccess(bool Hit);

  /// Polled after each access: returning true triggers an immediate
  /// whole-cache flush (Dynamo's preemptive flush).
  virtual bool shouldFlushNow();

  /// Notifies the policy that a preemptive flush was performed.
  virtual void noteFlush();
};

/// The paper's main policy family: the cache is divided into \p UnitCount
/// equal units; the oldest unit is flushed entirely when space is needed.
/// UnitCount == 1 is the coarsest grain (FLUSH).
class UnitFifoPolicy final : public EvictionPolicy {
public:
  explicit UnitFifoPolicy(unsigned UnitCount);

  std::string name() const override;
  uint64_t quantumBytes(uint64_t Capacity) const override;
  bool isAccessStateless() const override { return true; }

  unsigned unitCount() const { return UnitCount; }

private:
  unsigned UnitCount;
};

/// Finest grain: evict single superblocks until the incoming one fits
/// (DynamoRIO's circular-buffer FIFO).
class FineFifoPolicy final : public EvictionPolicy {
public:
  std::string name() const override { return "FIFO"; }
  uint64_t quantumBytes(uint64_t) const override { return 1; }
  bool isAccessStateless() const override { return true; }
};

/// Extension (paper future work): adapts the unit count to perceived
/// cache pressure. Pressure is estimated as an exponentially-weighted
/// moving average of the miss indicator; high pressure steers toward
/// coarser (medium) units, low pressure toward finer units, one rung of
/// the ladder per evaluation interval.
class AdaptiveGranularityPolicy final : public EvictionPolicy {
public:
  struct Options {
    /// Unit-count ladder from coarsest to finest. 0 means fine-grained.
    std::vector<unsigned> Ladder = {8, 32, 128, 0};
    /// Accesses between reevaluations.
    uint64_t IntervalAccesses = 4096;
    /// EWMA smoothing factor applied per interval.
    double Alpha = 0.5;
    /// Miss-rate thresholds (descending) selecting each ladder rung; must
    /// have Ladder.size() - 1 entries.
    std::vector<double> Thresholds = {0.15, 0.05, 0.01};
  };

  AdaptiveGranularityPolicy();
  explicit AdaptiveGranularityPolicy(Options Opts);

  std::string name() const override { return "Adaptive"; }
  uint64_t quantumBytes(uint64_t Capacity) const override;
  bool usesBackPointerTable(uint64_t) const override { return true; }
  void noteAccess(bool Hit) override;

  /// Current rung of the ladder (for tests and reports).
  unsigned currentUnitCount() const { return Opts.Ladder[Rung]; }
  double smoothedMissRate() const { return Ewma; }

private:
  Options Opts;
  size_t Rung = 0;
  double Ewma = 0.0;
  uint64_t IntervalAccesses = 0;
  uint64_t IntervalMisses = 0;
  bool EwmaPrimed = false;

  void reevaluate();
};

/// Extension (Section 2.3): Dynamo's preemptive flush. Behaves like FLUSH
/// for capacity evictions, and additionally flushes the whole cache when a
/// phase change is detected as a spike in the miss (fragment creation)
/// rate over a sliding window.
class PreemptiveFlushPolicy final : public EvictionPolicy {
public:
  struct Options {
    uint64_t WindowAccesses = 512; ///< Sliding window length.
    double SpikeMissRate = 0.30;   ///< Window miss rate that signals a
                                   ///< phase change.
    uint64_t MinAccessesBetweenFlushes = 2048;
  };

  PreemptiveFlushPolicy();
  explicit PreemptiveFlushPolicy(Options Opts);

  std::string name() const override { return "Preemptive"; }
  uint64_t quantumBytes(uint64_t Capacity) const override {
    return Capacity;
  }
  void noteAccess(bool Hit) override;
  bool shouldFlushNow() override;
  void noteFlush() override;

private:
  Options Opts;
  uint64_t WindowAccesses = 0;
  uint64_t WindowMisses = 0;
  uint64_t AccessesSinceFlush = 0;
  bool Triggered = false;
};

/// A point on the granularity spectrum, used to drive sweeps.
struct GranularitySpec {
  enum class KindType { Flush, Units, Fine };

  KindType Kind = KindType::Flush;
  unsigned Units = 1;

  static GranularitySpec flush() { return {KindType::Flush, 1}; }
  static GranularitySpec units(unsigned N) { return {KindType::Units, N}; }
  static GranularitySpec fine() { return {KindType::Fine, 0}; }

  /// Axis label as it appears in the paper's figures.
  std::string label() const;
};

/// Instantiates the policy for \p Spec.
std::unique_ptr<EvictionPolicy> makePolicy(const GranularitySpec &Spec);

/// The granularity axis used throughout the paper's figures: FLUSH,
/// 2-unit, 4-unit, ..., 256-unit, fine-grained FIFO.
std::vector<GranularitySpec> standardGranularitySweep();

} // namespace ccsim

#endif // CCSIM_CORE_EVICTIONPOLICY_H
