//===- concurrent/SharedEngineRunner.h - K guest threads, one engine ------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays one trace through a SharedCacheEngine with K guest threads,
/// the thread-shared-cache regime of production DBTs. The determinism
/// contract, stated once and tested everywhere:
///
///   K = 1   runs the engine in Exact mode and reproduces the serial
///           simulator byte for byte -- same CacheStats, same telemetry
///           marks and metric labels ("sim:<bench>/<policy>"), so golden
///           figure reports and metric exports are pinned unchanged.
///
///   K > 1   guests claim trace blocks from a shared cursor, so the miss
///           interleaving is schedule-dependent; results are validated
///           by the structural auditor at quiesce points plus the
///           conservation identities of CacheStats, never by byte pins.
///           Metrics are labeled with the guest count to keep them apart
///           from serial exports.
///
/// This layer deliberately does not depend on ccsim_sim (which layers
/// above ccsim_concurrent); the few shared knobs (pressure, costs,
/// cancellation cadence) are restated here with identical semantics and
/// defaults.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CONCURRENT_SHAREDENGINERUNNER_H
#define CCSIM_CONCURRENT_SHAREDENGINERUNNER_H

#include "check/AuditReport.h"
#include "core/SharedCacheEngine.h"
#include "support/Cancellation.h"
#include "trace/MappedTrace.h"
#include "trace/Trace.h"

#include <functional>
#include <string>

namespace ccsim::concurrent {

/// Configuration of one shared-engine replay.
struct SharedRunConfig {
  /// Guest threads sharing the engine. 1 selects the byte-identical
  /// serial path.
  unsigned GuestThreads = 1;

  /// Cache capacity = trace maxCache / PressureFactor (the paper's
  /// pressure axis), unless ExplicitCapacityBytes overrides it.
  double PressureFactor = 8.0;
  uint64_t ExplicitCapacityBytes = 0;

  CostModel Costs = CostModel::paperDefaults();
  bool EnableChaining = true;
  telemetry::TelemetrySink *Telemetry = nullptr;

  /// K = 1: forwarded to check::armAuditor, exactly like the serial
  /// simulator. K > 1: any level other than Off runs the full
  /// auditSharedEngine rule set at every quiesce point and once at the
  /// end of the run.
  AuditLevel Audit = defaultAuditLevel();

  /// Cooperative cancellation, polled every CancelCheckInterval accesses
  /// (per guest for K > 1). Throws ReplayCancelled like the serial path.
  CancelToken *Cancel = nullptr;
  uint32_t CancelCheckInterval = 1024;

  /// Sharding / fencing geometry of the engine.
  unsigned Shards = 16;
  unsigned Fences = 16;

  /// K > 1: accesses between quiesce-point audits (0 = only the final
  /// one). The guest that crosses the threshold runs the audit.
  uint64_t QuiesceInterval = 0;

  /// K > 1: accesses a guest claims from the shared cursor per grab.
  size_t GrabBlock = 4096;

  /// Receives non-clean audit reports; default prints and aborts (the
  /// paranoid contract). Tests install a collector.
  std::function<void(const check::AuditReport &, const char *Where)>
      OnViolation;
};

/// Outcome of a shared replay. Stats match the serial simulator exactly
/// for K = 1; for K > 1 they satisfy the conservation identities.
struct SharedRunResult {
  std::string BenchmarkName;
  std::string PolicyName;
  uint64_t CapacityBytes = 0;
  uint64_t MaxCacheBytes = 0;
  CacheStats Stats;
  ShareMode Mode = ShareMode::Exact;
  unsigned GuestThreads = 1;
  ContentionCounters Contention;
  uint64_t QuiesceAudits = 0;
};

/// Replays \p T under \p Spec with Config.GuestThreads guests.
SharedRunResult runShared(const Trace &T, const GranularitySpec &Spec,
                          const SharedRunConfig &Config);

/// Zero-copy variant: streams accesses straight out of a mapped trace
/// without materializing the access vector.
SharedRunResult runShared(const trace::MappedTrace &T,
                          const GranularitySpec &Spec,
                          const SharedRunConfig &Config);

} // namespace ccsim::concurrent

#endif // CCSIM_CONCURRENT_SHAREDENGINERUNNER_H
