//===- concurrent/ThreadPool.cpp - Fixed worker pool + parallel-for -------===//

#include "concurrent/ThreadPool.h"
#include "support/Contracts.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

using namespace ccsim;

unsigned ThreadPool::hardwareThreads() {
  const unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 4;
}

ThreadPool::ThreadPool(unsigned NumThreads, bool AlwaysSpawnWorkers)
    : NumThreads(NumThreads ? NumThreads : hardwareThreads()) {
  // A one-thread pool runs everything inline; no worker needed — unless
  // the caller wants submit() to be asynchronous even then.
  if (this->NumThreads <= 1 && !AlwaysSpawnWorkers)
    return;
  Workers.reserve(this->NumThreads);
  for (unsigned T = 0; T < this->NumThreads; ++T)
    Workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock Lock(Mu);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      MutexLock Lock(Mu);
      while (!Stopping && Queue.empty())
        WorkAvailable.wait(Lock.native());
      if (Queue.empty())
        return; // Stopping, and no pending work left to drain.
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveTasks;
    }
    Task();
    {
      MutexLock Lock(Mu);
      --ActiveTasks;
      if (Queue.empty() && ActiveTasks == 0)
        Idle.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  CCSIM_REQUIRE(Task, "cannot submit an empty task");
  if (Workers.empty()) {
    // Inline execution preserves FIFO semantics trivially.
    Task();
    return;
  }
  {
    MutexLock Lock(Mu);
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::waitIdle() {
  if (Workers.empty())
    return;
  MutexLock Lock(Mu);
  while (!Queue.empty() || ActiveTasks != 0)
    Idle.wait(Lock.native());
}

size_t ThreadPool::pendingTasks() const {
  MutexLock Lock(Mu);
  return Queue.size();
}

size_t ThreadPool::activeTaskCount() const {
  MutexLock Lock(Mu);
  return ActiveTasks;
}

namespace {

/// Shared state of one parallelFor region. The workers and the issuing
/// thread synchronize on Mu; the chunk cursor and failure flag stay
/// atomic so the hot claim path takes no lock.
struct ForRegion {
  std::atomic<size_t> Next{0};
  std::atomic<bool> Failed{false};

  Mutex Mu;
  std::condition_variable Done;
  size_t PendingTasks CCSIM_GUARDED_BY(Mu) = 0;
  size_t FailIndex CCSIM_GUARDED_BY(Mu) = std::numeric_limits<size_t>::max();
  std::exception_ptr Error CCSIM_GUARDED_BY(Mu);

  void recordFailure(size_t Index, std::exception_ptr E) CCSIM_EXCLUDES(Mu) {
    Failed.store(true, std::memory_order_relaxed);
    MutexLock Lock(Mu);
    if (Index < FailIndex) {
      FailIndex = Index;
      Error = std::move(E);
    }
  }
};

} // namespace

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body,
                             size_t ChunkSize) {
  if (N == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I < N; ++I)
      Body(I); // Exceptions propagate directly; index order is sequential.
    return;
  }

  if (ChunkSize == 0)
    ChunkSize = std::max<size_t>(1, N / (size_t(NumThreads) * 4));
  const size_t NumChunks = (N + ChunkSize - 1) / ChunkSize;
  const size_t NumTasks = std::min<size_t>(NumThreads, NumChunks);

  ForRegion Region;
  {
    MutexLock Lock(Region.Mu);
    Region.PendingTasks = NumTasks;
  }

  auto Work = [&Region, &Body, N, ChunkSize]() {
    for (;;) {
      if (Region.Failed.load(std::memory_order_relaxed))
        break;
      const size_t Begin = Region.Next.fetch_add(ChunkSize);
      if (Begin >= N)
        break;
      const size_t End = std::min(N, Begin + ChunkSize);
      for (size_t I = Begin; I < End; ++I) {
        try {
          Body(I);
        } catch (...) {
          Region.recordFailure(I, std::current_exception());
          break;
        }
      }
    }
    MutexLock Lock(Region.Mu);
    if (--Region.PendingTasks == 0)
      Region.Done.notify_all();
  };

  for (size_t T = 0; T < NumTasks; ++T)
    submit(Work);
  std::exception_ptr Error;
  {
    MutexLock Lock(Region.Mu);
    while (Region.PendingTasks != 0)
      Region.Done.wait(Lock.native());
    Error = Region.Error;
  }
  if (Error)
    std::rethrow_exception(Error);
}

void ccsim::parallelFor(unsigned NumThreads, size_t N,
                        const std::function<void(size_t)> &Body) {
  ThreadPool Pool(NumThreads);
  Pool.parallelFor(N, Body);
}
