//===- concurrent/SharedEngineRunner.cpp - K guest threads, one engine ----===//

#include "concurrent/SharedEngineRunner.h"

#include "check/CacheAuditor.h"
#include "check/Paranoia.h"
#include "support/Contracts.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>

using namespace ccsim;
using namespace ccsim::concurrent;

namespace {

/// The two trace backends behind one replay loop. Both expose the same
/// five calls; the owned view walks Trace::Accesses, the mapped view
/// decodes straight out of the file mapping.
struct OwnedTraceView {
  const Trace &T;
  const std::string &name() const { return T.Name; }
  uint64_t maxCacheBytes() const { return T.maxCacheBytes(); }
  size_t size() const { return T.Accesses.size(); }
  SuperblockId idAt(size_t I) const { return T.Accesses[I]; }
  SuperblockRecord recordFor(SuperblockId Id) const { return T.recordFor(Id); }
};

struct MappedTraceView {
  const trace::MappedTrace &T;
  const std::string &name() const { return T.name(); }
  uint64_t maxCacheBytes() const { return T.maxCacheBytes(); }
  size_t size() const { return T.numAccesses(); }
  SuperblockId idAt(size_t I) const { return T.idAt(I); }
  SuperblockRecord recordFor(SuperblockId Id) const { return T.recordFor(Id); }
};

/// Capacity = maxCache / pressure, same derivation (and same contract)
/// as sim::capacityFor -- restated because this layer cannot link
/// ccsim_sim.
template <typename View>
uint64_t capacityFor(const View &V, const SharedRunConfig &Config) {
  if (Config.ExplicitCapacityBytes != 0)
    return Config.ExplicitCapacityBytes;
  CCSIM_REQUIRE(Config.PressureFactor >= 1.0,
                "pressure factor %g below 1 would be an over-provisioned cache",
                Config.PressureFactor);
  const double Derived =
      static_cast<double>(V.maxCacheBytes()) / Config.PressureFactor;
  return std::max<uint64_t>(1, static_cast<uint64_t>(Derived));
}

/// Quiesces the engine and runs the full shared audit; mirrors the
/// paranoid contract of check::armAuditor (print + abort) unless the
/// config installed a handler.
void runQuiesceAudit(SharedCacheEngine &Engine, const SharedRunConfig &Config,
                     const char *Where) {
  Engine.quiesce([&](const SharedCacheEngine &E) {
    const check::AuditReport Report = check::auditSharedEngine(E);
    if (Report.clean())
      return;
    if (Config.OnViolation) {
      Config.OnViolation(Report, Where);
      return;
    }
    std::fprintf(stderr,
                 "ccsim paranoid audit failed after %s (%zu violation(s)):\n%s",
                 Where, Report.size(), Report.render().c_str());
    std::abort();
  });
}

[[noreturn]] void throwCancelled(const std::string &Name, uint64_t DoneSoFar,
                                 size_t N, const char *Reason,
                                 const CancelToken &Cancel) {
  throw ReplayCancelled("replay of " + Name + " stopped after " +
                            std::to_string(DoneSoFar) + " of " +
                            std::to_string(N) + " accesses: " + Reason,
                        Cancel.deadlineExpired() && !Cancel.cancelRequested());
}

/// The serial path: one guest, Exact mode, byte-identical to sim::run --
/// same access order, same telemetry marks ("sim:" label), same metric
/// labels, and no contention publication.
template <typename View>
SharedRunResult runSerial(const View &V, std::unique_ptr<EvictionPolicy> Policy,
                          const SharedRunConfig &Config) {
  SharedRunResult Result;
  Result.BenchmarkName = V.name();
  Result.PolicyName = Policy->name();
  Result.MaxCacheBytes = V.maxCacheBytes();
  Result.CapacityBytes = capacityFor(V, Config);
  Result.Mode = ShareMode::Exact;
  Result.GuestThreads = 1;

  SharedEngineConfig SC;
  SC.Engine.CapacityBytes = Result.CapacityBytes;
  SC.Engine.Costs = Config.Costs;
  SC.Engine.EnableChaining = Config.EnableChaining;
  SC.Engine.Telemetry = Config.Telemetry;
  SC.Shards = Config.Shards;
  SC.Fences = Config.Fences;

  telemetry::TelemetrySink *Tel = Config.Telemetry;
  uint32_t MarkId = 0;
  if (Tel) {
    MarkId = Tel->Tracer.internLabel("sim:" + Result.BenchmarkName + "/" +
                                     Result.PolicyName);
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 1, 0);
  }

  SharedCacheEngine Engine(SC, std::move(Policy), ShareMode::Exact);
  if (Config.Audit != AuditLevel::Off)
    check::armAuditor(Engine.engineSetup(),
                      check::ParanoiaOptions{Config.Audit, true,
                                             Config.OnViolation});
  const size_t N = V.size();
  if (!Config.Cancel) {
    for (size_t I = 0; I < N; ++I)
      Engine.access(V.recordFor(V.idAt(I)));
  } else {
    const size_t Chunk = std::max<uint32_t>(1, Config.CancelCheckInterval);
    size_t I = 0;
    while (I < N) {
      if (const char *Reason = Config.Cancel->stopReason())
        throwCancelled(V.name(), I, N, Reason, *Config.Cancel);
      const size_t End = std::min(N, I + Chunk);
      for (; I < End; ++I)
        Engine.access(V.recordFor(V.idAt(I)));
    }
  }

  Result.Stats = Engine.stats();
  Result.Contention = Engine.contention();
  if (Tel) {
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 0, Result.Stats.Accesses);
    char Pressure[32];
    std::snprintf(Pressure, sizeof(Pressure), "%g", Config.PressureFactor);
    Result.Stats.recordMetrics(Tel->Metrics,
                          {{"benchmark", Result.BenchmarkName},
                           {"policy", Result.PolicyName},
                           {"pressure", Pressure}});
  }
  return Result;
}

/// The K > 1 path: guests claim GrabBlock-sized runs of the access
/// stream from a shared cursor. Structural validation happens at
/// quiesce points (the guest that carries the global done-counter past
/// the next threshold runs the audit) and once after the join.
template <typename View>
SharedRunResult runThreaded(const View &V,
                            std::unique_ptr<EvictionPolicy> Policy,
                            const SharedRunConfig &Config) {
  SharedRunResult Result;
  Result.BenchmarkName = V.name();
  Result.PolicyName = Policy->name();
  Result.MaxCacheBytes = V.maxCacheBytes();
  Result.CapacityBytes = capacityFor(V, Config);
  Result.Mode = SharedCacheEngine::preferredMode(Config.GuestThreads, *Policy);
  Result.GuestThreads = Config.GuestThreads;

  SharedEngineConfig SC;
  SC.Engine.CapacityBytes = Result.CapacityBytes;
  SC.Engine.Costs = Config.Costs;
  SC.Engine.EnableChaining = Config.EnableChaining;
  SC.Engine.Telemetry = Config.Telemetry;
  SC.Shards = Config.Shards;
  SC.Fences = Config.Fences;

  telemetry::TelemetrySink *Tel = Config.Telemetry;
  uint32_t MarkId = 0;
  if (Tel) {
    MarkId = Tel->Tracer.internLabel("shared:" + Result.BenchmarkName + "/" +
                                     Result.PolicyName);
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 1, 0);
  }

  SharedCacheEngine Engine(SC, std::move(Policy), Result.Mode);

  const size_t N = V.size();
  const size_t Grab = std::max<size_t>(1, Config.GrabBlock);
  const uint64_t QuiesceEvery =
      Config.Audit != AuditLevel::Off ? Config.QuiesceInterval : 0;

  std::atomic<uint64_t> NextStart{0};
  std::atomic<uint64_t> Done{0};
  std::atomic<uint64_t> NextQuiesce{QuiesceEvery};
  std::atomic<uint64_t> Audits{0};
  std::atomic<bool> Stop{false};
  ccsim::Mutex ErrMu;
  std::exception_ptr FirstError;

  auto Guest = [&] {
    try {
      uint64_t SincePoll = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        const uint64_t Start =
            NextStart.fetch_add(Grab, std::memory_order_relaxed);
        if (Start >= N)
          break;
        const uint64_t End = std::min<uint64_t>(N, Start + Grab);
        for (uint64_t I = Start; I < End; ++I) {
          if (Config.Cancel &&
              ++SincePoll >=
                  std::max<uint32_t>(1, Config.CancelCheckInterval)) {
            SincePoll = 0;
            if (const char *Reason = Config.Cancel->stopReason())
              throwCancelled(V.name(), Done.load(std::memory_order_relaxed), N,
                             Reason, *Config.Cancel);
          }
          Engine.access(V.recordFor(V.idAt(I)));
        }
        const uint64_t DoneNow =
            Done.fetch_add(End - Start, std::memory_order_relaxed) +
            (End - Start);
        if (QuiesceEvery != 0) {
          uint64_t NQ = NextQuiesce.load(std::memory_order_relaxed);
          while (DoneNow >= NQ) {
            if (NextQuiesce.compare_exchange_weak(NQ, NQ + QuiesceEvery,
                                                  std::memory_order_relaxed)) {
              runQuiesceAudit(Engine, Config, "quiesce-point audit");
              Audits.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
      }
    } catch (...) {
      {
        MutexLock Lock(ErrMu);
        if (!FirstError)
          FirstError = std::current_exception();
      }
      Stop.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> Guests;
  Guests.reserve(Config.GuestThreads);
  for (unsigned I = 0; I < Config.GuestThreads; ++I)
    Guests.emplace_back(Guest);
  for (std::thread &G : Guests)
    G.join();

  if (FirstError)
    std::rethrow_exception(FirstError);
  CCSIM_ASSERT(Done.load() == N, "guests joined before the trace drained");

  if (Result.Mode == ShareMode::Concurrent)
    Engine.settle(Done.load());
  if (Config.Audit != AuditLevel::Off) {
    runQuiesceAudit(Engine, Config, "final shared-engine audit");
    Audits.fetch_add(1, std::memory_order_relaxed);
  }

  Result.Stats = Engine.stats();
  Result.Contention = Engine.contention();
  Result.QuiesceAudits = Audits.load();
  if (Tel) {
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 0, Result.Stats.Accesses);
    char Pressure[32];
    std::snprintf(Pressure, sizeof(Pressure), "%g", Config.PressureFactor);
    const telemetry::MetricLabels Labels = {
        {"benchmark", Result.BenchmarkName},
        {"policy", Result.PolicyName},
        {"pressure", Pressure},
        {"guest-threads", std::to_string(Result.GuestThreads)}};
    Result.Stats.recordMetrics(Tel->Metrics, Labels);
    Engine.publishContention(Tel->Metrics, Labels);
    Tel->Tracer.record(telemetry::EventKind::Contention, Result.GuestThreads,
                       telemetry::NoBlock, MarkId,
                       Result.Contention.EngineLockStalls,
                       Result.Stats.Accesses);
  }
  return Result;
}

template <typename View>
SharedRunResult runSharedImpl(const View &V, const GranularitySpec &Spec,
                              const SharedRunConfig &Config) {
  CCSIM_REQUIRE(Config.GuestThreads >= 1, "at least one guest thread");
  std::unique_ptr<EvictionPolicy> Policy = makePolicy(Spec);
  if (Config.GuestThreads == 1)
    return runSerial(V, std::move(Policy), Config);
  return runThreaded(V, std::move(Policy), Config);
}

} // namespace

SharedRunResult concurrent::runShared(const Trace &T,
                                      const GranularitySpec &Spec,
                                      const SharedRunConfig &Config) {
  return runSharedImpl(OwnedTraceView{T}, Spec, Config);
}

SharedRunResult concurrent::runShared(const trace::MappedTrace &T,
                                      const GranularitySpec &Spec,
                                      const SharedRunConfig &Config) {
  return runSharedImpl(MappedTraceView{T}, Spec, Config);
}
