//===- concurrent/TenancyPolicy.cpp - Unified tenancy configuration ------===//

#include "concurrent/TenancyPolicy.h"

#include <cstdio>

using namespace ccsim;

std::optional<PartitionMode> ccsim::parsePartitionMode(std::string_view Text) {
  if (Text == "shared")
    return PartitionMode::Shared;
  if (Text == "static")
    return PartitionMode::StaticPartition;
  if (Text == "quota")
    return PartitionMode::UnitQuota;
  return std::nullopt;
}

std::optional<InterleaveKind>
ccsim::parseInterleaveKind(std::string_view Text) {
  if (Text == "rr" || Text == "round-robin")
    return InterleaveKind::RoundRobin;
  if (Text == "weighted")
    return InterleaveKind::Weighted;
  return std::nullopt;
}

const char *ccsim::partitionModeLabel(PartitionMode Mode) {
  switch (Mode) {
  case PartitionMode::Shared:
    return "shared";
  case PartitionMode::StaticPartition:
    return "static-partition";
  case PartitionMode::UnitQuota:
    return "unit-quota";
  }
  return "unknown";
}

const char *ccsim::interleaveKindLabel(InterleaveKind Kind) {
  return Kind == InterleaveKind::RoundRobin ? "round-robin" : "weighted";
}

std::string TenancyPolicy::validate() const {
  if (ExplicitCapacityBytes == 0 && PressureFactor < 1.0) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "pressure factor %g below 1 would be an over-provisioned "
                  "cache (set an explicit capacity instead)",
                  PressureFactor);
    return Buf;
  }
  if (Granularity.Kind == GranularitySpec::KindType::Units &&
      Granularity.Units < 1)
    return "unit granularity needs at least one unit";
  for (size_t I = 0; I < Tenants.size(); ++I)
    if (!(Tenants[I].Weight > 0.0)) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf),
                    "tenant %zu weight %g must be positive", I,
                    Tenants[I].Weight);
      return Buf;
    }
  if (Costs.EvictionPerByte < 0.0 || Costs.MissPerByte < 0.0 ||
      Costs.UnlinkPerLink < 0.0 || Costs.EvictionBase < 0.0 ||
      Costs.MissBase < 0.0 || Costs.UnlinkBase < 0.0)
    return "cost model coefficients must be nonnegative";
  return {};
}

std::string TenantRunHooks::validate() const {
  if (CancelCheckInterval == 0)
    return "cancellation check interval must be at least 1 access";
  return {};
}
