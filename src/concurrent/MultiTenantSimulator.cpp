//===- concurrent/MultiTenantSimulator.cpp - Shared-cache multi-tenancy ---===//

#include "concurrent/MultiTenantSimulator.h"

#include "check/Paranoia.h"
#include "support/Random.h"
#include "support/Contracts.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace ccsim;

std::string MultiTenantConfig::validate() const {
  if (ExplicitCapacityBytes == 0 && PressureFactor < 1.0) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "pressure factor %g below 1 would be an over-provisioned "
                  "cache (set an explicit capacity instead)",
                  PressureFactor);
    return Buf;
  }
  if (Granularity.Kind == GranularitySpec::KindType::Units &&
      Granularity.Units < 1)
    return "unit granularity needs at least one unit";
  for (size_t I = 0; I < Tenants.size(); ++I)
    if (!(Tenants[I].Weight > 0.0)) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "tenant %zu weight %g must be positive",
                    I, Tenants[I].Weight);
      return Buf;
    }
  if (Costs.EvictionPerByte < 0.0 || Costs.MissPerByte < 0.0 ||
      Costs.UnlinkPerLink < 0.0 || Costs.EvictionBase < 0.0 ||
      Costs.MissBase < 0.0 || Costs.UnlinkBase < 0.0)
    return "cost model coefficients must be nonnegative";
  if (CancelCheckInterval == 0)
    return "cancellation check interval must be at least 1 access";
  return {};
}

uint64_t MultiTenantResult::blocksLostToOthers(size_t Victim) const {
  const size_t K = Tenants.size();
  uint64_t Lost = 0;
  for (size_t Evictor = 0; Evictor < K; ++Evictor)
    if (Evictor != Victim)
      Lost += CrossEvictedBlocks[Evictor * K + Victim];
  return Lost;
}

MultiTenantSimulator::MultiTenantSimulator(const std::vector<Trace> &Traces,
                                           const MultiTenantConfig &Config)
    : Traces(Traces), Config(Config) {
  CCSIM_REQUIRE(!Traces.empty(),
                "multi-tenant run needs at least one trace");

  const size_t K = Traces.size();
  Weights.resize(K, 1.0);
  for (size_t I = 0; I < std::min(K, Config.Tenants.size()); ++I) {
    CCSIM_REQUIRE(Config.Tenants[I].Weight > 0.0,
                  "tenant %zu weight %g must be positive", I,
                  Config.Tenants[I].Weight);
    Weights[I] = Config.Tenants[I].Weight;
  }

  // Tenants keep their trace-local dense ids but are shifted into disjoint
  // global ranges, so one shared CacheManager can tell them apart. Edge
  // lists are remapped once up front; the per-access records then alias
  // these vectors.
  IdBase.resize(K, 0);
  RemappedEdges.resize(K);
  SuperblockId NextBase = 0;
  for (size_t T = 0; T < K; ++T) {
    IdBase[T] = NextBase;
    NextBase += static_cast<SuperblockId>(Traces[T].Blocks.size());
    RemappedEdges[T].reserve(Traces[T].Blocks.size());
    for (const SuperblockDef &B : Traces[T].Blocks) {
      std::vector<SuperblockId> Edges;
      Edges.reserve(B.OutEdges.size());
      for (SuperblockId E : B.OutEdges)
        Edges.push_back(E + IdBase[T]);
      RemappedEdges[T].push_back(std::move(Edges));
    }
  }

  TotalCapacity = deriveTotalCapacity();
  planPartitions();
}

uint64_t MultiTenantSimulator::deriveTotalCapacity() const {
  if (Config.ExplicitCapacityBytes != 0)
    return Config.ExplicitCapacityBytes;
  CCSIM_REQUIRE(Config.PressureFactor >= 1.0,
                "pressure factor %g below 1 would be an over-provisioned cache",
                Config.PressureFactor);
  uint64_t SuiteMaxCache = 0;
  for (const Trace &T : Traces)
    SuiteMaxCache += T.maxCacheBytes();
  const double Derived =
      static_cast<double>(SuiteMaxCache) / Config.PressureFactor;
  return std::max<uint64_t>(1, static_cast<uint64_t>(Derived));
}

void MultiTenantSimulator::planPartitions() {
  const size_t K = Traces.size();
  TenantCapacities.assign(K, TotalCapacity);
  ManagerOf.resize(K);
  if (Config.Mode == PartitionMode::Shared) {
    std::fill(ManagerOf.begin(), ManagerOf.end(), size_t(0));
    return;
  }
  for (size_t T = 0; T < K; ++T)
    ManagerOf[T] = T;

  double WeightSum = 0.0;
  for (double W : Weights)
    WeightSum += W;

  const bool QuotaInUnits =
      Config.Mode == PartitionMode::UnitQuota &&
      Config.Granularity.Kind == GranularitySpec::KindType::Units &&
      Config.Granularity.Units >= 2;
  if (QuotaInUnits) {
    // Quotas are expressed in whole eviction units of the shared cache:
    // at N units, the unit currency is C / N bytes and tenant i receives
    // round(N * share_i) of them (at least one). Eviction stays unit-FIFO
    // within each tenant's own units, so cross-tenant eviction is
    // impossible by construction.
    const uint64_t UnitBytes =
        std::max<uint64_t>(1, TotalCapacity / Config.Granularity.Units);
    for (size_t T = 0; T < K; ++T) {
      const double Share = Weights[T] / WeightSum;
      const double Units = static_cast<double>(Config.Granularity.Units);
      const uint64_t Quota = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(Units * Share)));
      TenantCapacities[T] = Quota * UnitBytes;
    }
    return;
  }
  // Static partition (and the quota mode's byte-granular degenerate cases
  // FLUSH and fine FIFO): capacity split proportionally to weight.
  for (size_t T = 0; T < K; ++T) {
    const double Share = Weights[T] / WeightSum;
    TenantCapacities[T] = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(TotalCapacity) * Share));
  }
}

std::string MultiTenantSimulator::modeLabel() const {
  switch (Config.Mode) {
  case PartitionMode::Shared:
    return "shared";
  case PartitionMode::StaticPartition:
    return "static-partition";
  case PartitionMode::UnitQuota:
    return "unit-quota";
  }
  return "unknown";
}

std::string MultiTenantSimulator::scheduleLabel() const {
  return Config.Schedule == InterleaveKind::RoundRobin ? "round-robin"
                                                       : "weighted";
}

MultiTenantResult MultiTenantSimulator::run() {
  const size_t K = Traces.size();

  MultiTenantResult Result;
  Result.ModeLabel = modeLabel();
  Result.PolicyLabel = Config.Granularity.label();
  Result.ScheduleLabel = scheduleLabel();
  Result.TotalCapacityBytes = TotalCapacity;
  Result.Tenants.resize(K);
  Result.CrossEvictedBlocks.assign(K * K, 0);

  for (size_t T = 0; T < K; ++T) {
    TenantResult &TR = Result.Tenants[T];
    TR.Name = Traces[T].Name;
    TR.MaxCacheBytes = Traces[T].maxCacheBytes();
    TR.CapacityBytes =
        Config.Mode == PartitionMode::Shared ? 0 : TenantCapacities[T];
  }

  // Eviction attribution: the observer charges invocation costs to the
  // evictor and victim costs to each victim's owner.
  auto Observer = [&Result, K, this](const EvictionBatchEvent &Event) {
    TenantResult &Evictor = Result.Tenants[Event.Evictor];
    ++Evictor.EvictionInvocationsTriggered;
    uint64_t BatchBytes = 0;
    for (size_t I = 0; I < Event.Victims.size(); ++I) {
      const CodeCache::Resident &V = Event.Victims[I];
      const TenantId Owner = Event.VictimTenants[I];
      TenantResult &Victim = Result.Tenants[Owner];
      BatchBytes += V.Size;
      ++Victim.BlocksEvicted;
      Victim.BytesEvicted += V.Size;
      if (Owner != Event.Evictor)
        ++Victim.BlocksLostToOthers;
      ++Result.CrossEvictedBlocks[size_t(Event.Evictor) * K + Owner];
      if (I < Event.DanglingLinks.size() && Event.DanglingLinks[I] > 0) {
        ++Victim.UnlinkOperations;
        Victim.UnlinkedLinks += Event.DanglingLinks[I];
        Victim.UnlinkOverhead +=
            Config.Costs.unlinkingOverhead(Event.DanglingLinks[I]);
      }
    }
    Evictor.EvictionOverhead += Config.Costs.evictionOverhead(BatchBytes);
  };

  // Tenant roster: one TenantTag record per tenant so trace viewers can
  // resolve the tenant lanes to benchmark names.
  if (telemetry::TelemetrySink *Tel = Config.Telemetry)
    for (size_t T = 0; T < K; ++T)
      Tel->Tracer.record(telemetry::EventKind::TenantTag,
                         static_cast<uint32_t>(T), telemetry::NoBlock,
                         Tel->Tracer.internLabel(Traces[T].Name), 0, 0);

  // Build the manager(s).
  const size_t NumManagers = Config.Mode == PartitionMode::Shared ? 1 : K;
  std::vector<std::unique_ptr<CacheManager>> Managers;
  Managers.reserve(NumManagers);
  const bool QuotaInUnits =
      Config.Mode == PartitionMode::UnitQuota &&
      Config.Granularity.Kind == GranularitySpec::KindType::Units &&
      Config.Granularity.Units >= 2;
  for (size_t M = 0; M < NumManagers; ++M) {
    CacheManagerConfig MC;
    MC.CapacityBytes =
        Config.Mode == PartitionMode::Shared ? TotalCapacity
                                             : TenantCapacities[M];
    MC.Costs = Config.Costs;
    MC.EnableChaining = Config.EnableChaining;
    MC.OnEviction = Observer;
    MC.Telemetry = Config.Telemetry;
    std::unique_ptr<EvictionPolicy> Policy;
    if (QuotaInUnits) {
      // Keep the shared unit size: a tenant holding Q units runs Q-unit
      // FIFO over its own region.
      const uint64_t UnitBytes =
          std::max<uint64_t>(1, TotalCapacity / Config.Granularity.Units);
      const unsigned Quota = static_cast<unsigned>(
          std::max<uint64_t>(1, TenantCapacities[M] / UnitBytes));
      Policy = std::make_unique<UnitFifoPolicy>(Quota);
    } else {
      Policy = makePolicy(Config.Granularity);
    }
    Managers.push_back(
        std::make_unique<CacheManager>(MC, std::move(Policy)));
    if (Config.Audit != AuditLevel::Off)
      check::armAuditor(*Managers.back(),
                        check::ParanoiaOptions{Config.Audit, true, {}});
  }

  // Replay the deterministic interleaving until every stream is consumed.
  std::vector<size_t> Cursor(K, 0);
  std::vector<uint8_t> SeenGlobal; // Cold-miss detection over global ids.
  size_t LiveCount = 0;
  for (size_t T = 0; T < K; ++T)
    if (!Traces[T].Accesses.empty())
      ++LiveCount;

  // Cancellation at interleave-chunk granularity, mirroring sim::run.
  uint64_t StepsUntilCheck = std::max<uint32_t>(1, Config.CancelCheckInterval);
  auto CheckCancel = [&]() {
    if (!Config.Cancel)
      return;
    if (--StepsUntilCheck > 0)
      return;
    StepsUntilCheck = std::max<uint32_t>(1, Config.CancelCheckInterval);
    if (const char *Reason = Config.Cancel->stopReason())
      throw ReplayCancelled(
          "multi-tenant replay stopped mid-interleave: " +
              std::string(Reason),
          Config.Cancel->deadlineExpired() &&
              !Config.Cancel->cancelRequested());
  };

  auto Step = [&](size_t T) {
    CheckCancel();
    const Trace &Tr = Traces[T];
    const SuperblockId Local = Tr.Accesses[Cursor[T]++];
    const SuperblockDef &Def = Tr.Blocks[Local];
    SuperblockRecord Rec;
    Rec.Id = IdBase[T] + Local;
    Rec.SizeBytes = Def.SizeBytes;
    Rec.OutEdges = RemappedEdges[T][Local];
    Rec.Tenant = static_cast<TenantId>(T);

    const AccessKind Kind = Managers[ManagerOf[T]]->access(Rec);

    TenantResult &TR = Result.Tenants[T];
    ++TR.Accesses;
    if (Kind == AccessKind::Hit) {
      ++TR.Hits;
    } else {
      ++TR.Misses;
      TR.MissOverhead += Config.Costs.missOverhead(Rec.SizeBytes);
      if (Rec.Id >= SeenGlobal.size())
        SeenGlobal.resize(
            std::max<size_t>(Rec.Id + 1, SeenGlobal.size() * 2), 0);
      if (SeenGlobal[Rec.Id])
        ++TR.CapacityMisses;
      else
        ++TR.ColdMisses;
      SeenGlobal[Rec.Id] = 1;
    }
    if (Cursor[T] == Tr.Accesses.size())
      --LiveCount;
  };

  if (Config.Schedule == InterleaveKind::RoundRobin) {
    while (LiveCount > 0) {
      for (size_t T = 0; T < K; ++T)
        if (Cursor[T] < Traces[T].Accesses.size())
          Step(T);
    }
  } else {
    Rng R(Config.ScheduleSeed);
    double LiveWeight = 0.0;
    for (size_t T = 0; T < K; ++T)
      if (!Traces[T].Accesses.empty())
        LiveWeight += Weights[T];
    while (LiveCount > 0) {
      // Weighted draw over the still-live tenants.
      double Pick = R.nextDouble() * LiveWeight;
      size_t Chosen = K;
      for (size_t T = 0; T < K; ++T) {
        if (Cursor[T] >= Traces[T].Accesses.size())
          continue;
        Chosen = T; // Fall back to the last live tenant on FP round-off.
        Pick -= Weights[T];
        if (Pick < 0.0)
          break;
      }
      CCSIM_ASSERT(Chosen < K, "live count and cursors disagree");
      Step(Chosen);
      if (Cursor[Chosen] == Traces[Chosen].Accesses.size())
        LiveWeight -= Weights[Chosen];
    }
  }

  for (const auto &M : Managers)
    Result.Global.merge(M->stats());

  // Publish attributed metrics: one label set per tenant, plus the merged
  // manager counters under scope=global.
  if (telemetry::TelemetrySink *Tel = Config.Telemetry) {
    for (const TenantResult &TR : Result.Tenants) {
      const telemetry::MetricLabels Labels = {{"tenant", TR.Name},
                                              {"mode", Result.ModeLabel}};
      auto Count = [&](const char *Name, uint64_t Value) {
        Tel->Metrics.counter(Name, Labels).add(Value);
      };
      Count("tenant.accesses", TR.Accesses);
      Count("tenant.hits", TR.Hits);
      Count("tenant.misses", TR.Misses);
      Count("tenant.misses.cold", TR.ColdMisses);
      Count("tenant.misses.capacity", TR.CapacityMisses);
      Count("tenant.evictions.triggered", TR.EvictionInvocationsTriggered);
      Count("tenant.blocks_evicted", TR.BlocksEvicted);
      Count("tenant.bytes_evicted", TR.BytesEvicted);
      Count("tenant.blocks_lost_to_others", TR.BlocksLostToOthers);
      Count("tenant.unlink.operations", TR.UnlinkOperations);
      Count("tenant.unlink.links_repaired", TR.UnlinkedLinks);
      Tel->Metrics.gauge("tenant.miss_rate", Labels).set(TR.missRate());
      Tel->Metrics.gauge("tenant.overhead.total", Labels)
          .set(TR.totalOverhead(true));
    }
    Result.Global.recordTo(Tel->Metrics, {{"scope", "global"},
                                          {"mode", Result.ModeLabel}});
  }
  return Result;
}
