//===- concurrent/MultiTenantSimulator.cpp - Shared-cache multi-tenancy ---===//

#include "concurrent/MultiTenantSimulator.h"

#include "check/Paranoia.h"
#include "support/Contracts.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace ccsim;

uint64_t MultiTenantResult::blocksLostToOthers(size_t Victim) const {
  const size_t K = Tenants.size();
  uint64_t Lost = 0;
  for (size_t Evictor = 0; Evictor < K; ++Evictor)
    if (Evictor != Victim)
      Lost += CrossEvictedBlocks[Evictor * K + Victim];
  return Lost;
}

void TenantResult::recordMetrics(
    telemetry::MetricsRegistry &Metrics,
    const telemetry::MetricLabels &Labels) const {
  auto Count = [&](const char *Name, uint64_t Value) {
    Metrics.counter(Name, Labels).add(Value);
  };
  Count("tenant.accesses", Accesses);
  Count("tenant.hits", Hits);
  Count("tenant.misses", Misses);
  Count("tenant.misses.cold", ColdMisses);
  Count("tenant.misses.capacity", CapacityMisses);
  Count("tenant.evictions.triggered", EvictionInvocationsTriggered);
  Count("tenant.blocks_evicted", BlocksEvicted);
  Count("tenant.bytes_evicted", BytesEvicted);
  Count("tenant.blocks_lost_to_others", BlocksLostToOthers);
  Count("tenant.unlink.operations", UnlinkOperations);
  Count("tenant.unlink.links_repaired", UnlinkedLinks);
  Metrics.gauge("tenant.miss_rate", Labels).set(missRate());
  Metrics.gauge("tenant.overhead.total", Labels).set(totalOverhead(true));

  // The sharing series rides behind the activity gate, exactly like
  // CacheStats::recordMetrics: disabled runs export the same bytes they
  // always did.
  if (SharingActive) {
    Count("tenant.share.installs", SharedInstalls);
    Count("tenant.share.bytes_saved", SharedBytesSaved);
    Count("tenant.share.unshare_unlinks", UnshareUnlinks);
  }
}

MultiTenantSimulator::MultiTenantSimulator(const std::vector<Trace> &Traces,
                                           const TenancyPolicy &Policy,
                                           const TenantRunHooks &Hooks)
    : Traces(Traces), Policy(Policy), Hooks(Hooks) {
  CCSIM_REQUIRE(!Traces.empty(),
                "multi-tenant run needs at least one trace");

  const size_t K = Traces.size();
  Weights.resize(K, 1.0);
  for (size_t I = 0; I < std::min(K, Policy.Tenants.size()); ++I) {
    CCSIM_REQUIRE(Policy.Tenants[I].Weight > 0.0,
                  "tenant %zu weight %g must be positive", I,
                  Policy.Tenants[I].Weight);
    Weights[I] = Policy.Tenants[I].Weight;
  }

  // Tenants keep their trace-local dense ids but are shifted into disjoint
  // global ranges, so one shared CacheManager can tell them apart. Edge
  // lists are remapped once up front; the per-access records then alias
  // these vectors.
  IdBase.resize(K, 0);
  RemappedEdges.resize(K);
  SuperblockId NextBase = 0;
  for (size_t T = 0; T < K; ++T) {
    IdBase[T] = NextBase;
    NextBase += static_cast<SuperblockId>(Traces[T].Blocks.size());
    RemappedEdges[T].reserve(Traces[T].Blocks.size());
    for (const SuperblockDef &B : Traces[T].Blocks) {
      std::vector<SuperblockId> Edges;
      Edges.reserve(B.OutEdges.size());
      for (SuperblockId E : B.OutEdges)
        Edges.push_back(E + IdBase[T]);
      RemappedEdges[T].push_back(std::move(Edges));
    }
  }

  // Content identity for sharing runs: a generator-set ContentTag wins;
  // untagged blocks derive identity from (trace name, local id, size,
  // local edges), so identical benchmark traces share every block and
  // distinct benchmarks never collide.
  if (Policy.ShareCode) {
    ContentKeys.resize(K);
    for (size_t T = 0; T < K; ++T) {
      const Trace &Tr = Traces[T];
      ContentKeys[T].reserve(Tr.Blocks.size());
      for (size_t L = 0; L < Tr.Blocks.size(); ++L) {
        const SuperblockDef &B = Tr.Blocks[L];
        ContentKeys[T].push_back(
            B.ContentTag != 0
                ? contentKeyForTag(B.ContentTag)
                : contentKeyForBlock(Tr.Name,
                                     static_cast<SuperblockId>(L),
                                     B.SizeBytes, B.OutEdges));
      }
    }
  }

  TotalCapacity = deriveTotalCapacity();
  planPartitions();
}

uint64_t MultiTenantSimulator::deriveTotalCapacity() const {
  if (Policy.ExplicitCapacityBytes != 0)
    return Policy.ExplicitCapacityBytes;
  CCSIM_REQUIRE(Policy.PressureFactor >= 1.0,
                "pressure factor %g below 1 would be an over-provisioned cache",
                Policy.PressureFactor);
  uint64_t SuiteMaxCache = 0;
  for (const Trace &T : Traces)
    SuiteMaxCache += T.maxCacheBytes();
  const double Derived =
      static_cast<double>(SuiteMaxCache) / Policy.PressureFactor;
  return std::max<uint64_t>(1, static_cast<uint64_t>(Derived));
}

void MultiTenantSimulator::planPartitions() {
  const size_t K = Traces.size();
  TenantCapacities.assign(K, TotalCapacity);
  ManagerOf.resize(K);
  if (Policy.Mode == PartitionMode::Shared) {
    std::fill(ManagerOf.begin(), ManagerOf.end(), size_t(0));
    return;
  }
  for (size_t T = 0; T < K; ++T)
    ManagerOf[T] = T;

  double WeightSum = 0.0;
  for (double W : Weights)
    WeightSum += W;

  const bool QuotaInUnits =
      Policy.Mode == PartitionMode::UnitQuota &&
      Policy.Granularity.Kind == GranularitySpec::KindType::Units &&
      Policy.Granularity.Units >= 2;
  if (QuotaInUnits) {
    // Quotas are expressed in whole eviction units of the shared cache:
    // at N units, the unit currency is C / N bytes and tenant i receives
    // round(N * share_i) of them (at least one). Eviction stays unit-FIFO
    // within each tenant's own units, so cross-tenant eviction is
    // impossible by construction.
    const uint64_t UnitBytes =
        std::max<uint64_t>(1, TotalCapacity / Policy.Granularity.Units);
    for (size_t T = 0; T < K; ++T) {
      const double Share = Weights[T] / WeightSum;
      const double Units = static_cast<double>(Policy.Granularity.Units);
      const uint64_t Quota = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(Units * Share)));
      TenantCapacities[T] = Quota * UnitBytes;
    }
    return;
  }
  // Static partition (and the quota mode's byte-granular degenerate cases
  // FLUSH and fine FIFO): capacity split proportionally to weight.
  for (size_t T = 0; T < K; ++T) {
    const double Share = Weights[T] / WeightSum;
    TenantCapacities[T] = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(TotalCapacity) * Share));
  }
}

MultiTenantResult MultiTenantSimulator::run() {
  const size_t K = Traces.size();
  // The managers are rebuilt per run; the index must restart empty with
  // them (its entries describe their residency).
  ContentIdx.clear();

  MultiTenantResult Result;
  Result.ModeLabel = partitionModeLabel(Policy.Mode);
  Result.PolicyLabel = Policy.Granularity.label();
  Result.ScheduleLabel = interleaveKindLabel(Policy.Schedule);
  Result.TotalCapacityBytes = TotalCapacity;
  Result.Tenants.resize(K);
  Result.CrossEvictedBlocks.assign(K * K, 0);

  for (size_t T = 0; T < K; ++T) {
    TenantResult &TR = Result.Tenants[T];
    TR.Name = Traces[T].Name;
    TR.MaxCacheBytes = Traces[T].maxCacheBytes();
    TR.CapacityBytes =
        Policy.Mode == PartitionMode::Shared ? 0 : TenantCapacities[T];
    TR.SharingActive = Policy.ShareCode;
  }

  // Eviction attribution: the observer charges invocation costs to the
  // evictor and victim costs to each victim's owner.
  auto Observer = [&Result, K, this](const EvictionBatchEvent &Event) {
    TenantResult &Evictor = Result.Tenants[Event.Evictor];
    ++Evictor.EvictionInvocationsTriggered;
    uint64_t BatchBytes = 0;
    for (size_t I = 0; I < Event.Victims.size(); ++I) {
      const CodeCache::Resident &V = Event.Victims[I];
      const TenantId Owner = Event.VictimTenants[I];
      TenantResult &Victim = Result.Tenants[Owner];
      BatchBytes += V.Size;
      ++Victim.BlocksEvicted;
      Victim.BytesEvicted += V.Size;
      if (Owner != Event.Evictor)
        ++Victim.BlocksLostToOthers;
      ++Result.CrossEvictedBlocks[size_t(Event.Evictor) * K + Owner];
      if (I < Event.DanglingLinks.size() && Event.DanglingLinks[I] > 0) {
        ++Victim.UnlinkOperations;
        Victim.UnlinkedLinks += Event.DanglingLinks[I];
        Victim.UnlinkOverhead +=
            Policy.Costs.unlinkingOverhead(Event.DanglingLinks[I]);
      }
    }
    Evictor.EvictionOverhead += Policy.Costs.evictionOverhead(BatchBytes);
  };

  // Unshare attribution: every drained link is one Eq. 4 unlink on the
  // tenant that loses the shared copy, mirroring the engine's own charge
  // so per-tenant sums stay equal to the merged global stats.
  auto ShareObserver = [&Result, this](const UnshareEvent &Event) {
    for (const SharedContentIndex::Link &L : Event.Links) {
      TenantResult &Loser = Result.Tenants[L.Tenant];
      ++Loser.UnshareUnlinks;
      Loser.UnlinkOverhead += Policy.Costs.unlinkingOverhead(1);
    }
  };

  // Tenant roster: one TenantTag record per tenant so trace viewers can
  // resolve the tenant lanes to benchmark names.
  if (telemetry::TelemetrySink *Tel = Hooks.Telemetry)
    for (size_t T = 0; T < K; ++T)
      Tel->Tracer.record(telemetry::EventKind::TenantTag,
                         static_cast<uint32_t>(T), telemetry::NoBlock,
                         Tel->Tracer.internLabel(Traces[T].Name), 0, 0);

  // Build the manager(s).
  const size_t NumManagers = Policy.Mode == PartitionMode::Shared ? 1 : K;
  std::vector<std::unique_ptr<CacheManager>> Managers;
  Managers.reserve(NumManagers);
  const bool QuotaInUnits =
      Policy.Mode == PartitionMode::UnitQuota &&
      Policy.Granularity.Kind == GranularitySpec::KindType::Units &&
      Policy.Granularity.Units >= 2;
  for (size_t M = 0; M < NumManagers; ++M) {
    CacheManagerConfig MC;
    MC.CapacityBytes =
        Policy.Mode == PartitionMode::Shared ? TotalCapacity
                                             : TenantCapacities[M];
    MC.Costs = Policy.Costs;
    MC.EnableChaining = Policy.EnableChaining;
    MC.OnEviction = Observer;
    MC.Telemetry = Hooks.Telemetry;
    if (Policy.ShareCode) {
      MC.ContentIndex = &ContentIdx;
      MC.OnUnshare = ShareObserver;
    }
    std::unique_ptr<EvictionPolicy> EP;
    if (QuotaInUnits) {
      // Keep the shared unit size: a tenant holding Q units runs Q-unit
      // FIFO over its own region.
      const uint64_t UnitBytes =
          std::max<uint64_t>(1, TotalCapacity / Policy.Granularity.Units);
      const unsigned Quota = static_cast<unsigned>(
          std::max<uint64_t>(1, TenantCapacities[M] / UnitBytes));
      EP = std::make_unique<UnitFifoPolicy>(Quota);
    } else {
      EP = makePolicy(Policy.Granularity);
    }
    Managers.push_back(std::make_unique<CacheManager>(MC, std::move(EP)));
  }
  if (Hooks.Audit != AuditLevel::Off) {
    if (Policy.ShareCode) {
      // Sharing couples the managers through the content index, so every
      // audit must see all caches at once (orphan and alias-residency
      // rules are cross-manager properties).
      std::vector<CacheManager *> Raw;
      Raw.reserve(Managers.size());
      for (const auto &M : Managers)
        Raw.push_back(M.get());
      check::armSharedTenancyAuditors(
          Raw, ContentIdx, check::ParanoiaOptions{Hooks.Audit, true, {}});
    } else {
      for (const auto &M : Managers)
        check::armAuditor(*M, check::ParanoiaOptions{Hooks.Audit, true, {}});
    }
  }

  // Replay the deterministic interleaving until every stream is consumed.
  std::vector<size_t> Cursor(K, 0);
  std::vector<uint8_t> SeenGlobal; // Cold-miss detection over global ids.
  size_t LiveCount = 0;
  for (size_t T = 0; T < K; ++T)
    if (!Traces[T].Accesses.empty())
      ++LiveCount;

  // Cancellation at interleave-chunk granularity, mirroring sim::run.
  uint64_t StepsUntilCheck = std::max<uint32_t>(1, Hooks.CancelCheckInterval);
  auto CheckCancel = [&]() {
    if (!Hooks.Cancel)
      return;
    if (--StepsUntilCheck > 0)
      return;
    StepsUntilCheck = std::max<uint32_t>(1, Hooks.CancelCheckInterval);
    if (const char *Reason = Hooks.Cancel->stopReason())
      throw ReplayCancelled(
          "multi-tenant replay stopped mid-interleave: " +
              std::string(Reason),
          Hooks.Cancel->deadlineExpired() &&
              !Hooks.Cancel->cancelRequested());
  };

  auto Step = [&](size_t T) {
    CheckCancel();
    const Trace &Tr = Traces[T];
    const SuperblockId Local = Tr.Accesses[Cursor[T]++];
    const SuperblockDef &Def = Tr.Blocks[Local];
    SuperblockRecord Rec;
    Rec.Id = IdBase[T] + Local;
    Rec.SizeBytes = Def.SizeBytes;
    Rec.OutEdges = RemappedEdges[T][Local];
    Rec.Tenant = static_cast<TenantId>(T);
    if (Policy.ShareCode)
      Rec.ContentKey = ContentKeys[T][Local];

    CacheManager &Mgr = *Managers[ManagerOf[T]];
    const AccessKind Kind = Mgr.access(Rec);

    TenantResult &TR = Result.Tenants[T];
    ++TR.Accesses;
    if (Kind == AccessKind::Hit) {
      ++TR.Hits;
    } else if (Kind == AccessKind::SharedHit) {
      // Linked a resident identical copy: a hit with no insert. The first
      // such link per (tenant, block) is this tenant's shared install.
      ++TR.Hits;
      if (Mgr.lastAccessShareLinked()) {
        ++TR.SharedInstalls;
        TR.SharedBytesSaved += Def.SizeBytes;
      }
    } else {
      ++TR.Misses;
      TR.MissOverhead += Policy.Costs.missOverhead(Rec.SizeBytes);
      if (Rec.Id >= SeenGlobal.size())
        SeenGlobal.resize(
            std::max<size_t>(Rec.Id + 1, SeenGlobal.size() * 2), 0);
      if (SeenGlobal[Rec.Id])
        ++TR.CapacityMisses;
      else
        ++TR.ColdMisses;
      SeenGlobal[Rec.Id] = 1;
    }
    if (Cursor[T] == Tr.Accesses.size())
      --LiveCount;
  };

  if (Policy.Schedule == InterleaveKind::RoundRobin) {
    while (LiveCount > 0) {
      for (size_t T = 0; T < K; ++T)
        if (Cursor[T] < Traces[T].Accesses.size())
          Step(T);
    }
  } else {
    Rng R(Policy.ScheduleSeed);
    double LiveWeight = 0.0;
    for (size_t T = 0; T < K; ++T)
      if (!Traces[T].Accesses.empty())
        LiveWeight += Weights[T];
    while (LiveCount > 0) {
      // Weighted draw over the still-live tenants.
      double Pick = R.nextDouble() * LiveWeight;
      size_t Chosen = K;
      for (size_t T = 0; T < K; ++T) {
        if (Cursor[T] >= Traces[T].Accesses.size())
          continue;
        Chosen = T; // Fall back to the last live tenant on FP round-off.
        Pick -= Weights[T];
        if (Pick < 0.0)
          break;
      }
      CCSIM_ASSERT(Chosen < K, "live count and cursors disagree");
      Step(Chosen);
      if (Cursor[Chosen] == Traces[Chosen].Accesses.size())
        LiveWeight -= Weights[Chosen];
    }
  }

  for (const auto &M : Managers)
    Result.Global.merge(M->stats());
  if (Policy.ShareCode) {
    Result.FinalSharedEntries = ContentIdx.entryCount();
    Result.FinalShareLinks = ContentIdx.liveLinkCount();
  }

  // Publish attributed metrics: one label set per tenant, plus the merged
  // manager counters under scope=global.
  if (telemetry::TelemetrySink *Tel = Hooks.Telemetry) {
    for (const TenantResult &TR : Result.Tenants)
      TR.recordMetrics(Tel->Metrics, {{"tenant", TR.Name},
                                      {"mode", Result.ModeLabel}});
    Result.Global.recordMetrics(Tel->Metrics, {{"scope", "global"},
                                               {"mode", Result.ModeLabel}});
  }
  return Result;
}
