//===- concurrent/ThreadPool.h - Fixed worker pool + parallel-for ---------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker thread pool and a chunked parallel-for built on it.
/// This is the execution substrate for every concurrent path in the
/// project (parallel sweeps, multi-tenant experiments): simulation cells
/// are pure functions of their inputs, so all parallelism here is
/// embarrassingly parallel fan-out with deterministic, index-ordered
/// result placement.
///
/// Guarantees:
///   - parallelFor(N, Body) invokes Body(I) exactly once for every
///     I in [0, N); callers write results into slot I, so output is
///     identical regardless of thread count or scheduling,
///   - exceptions thrown by Body are captured and the one from the
///     lowest failing index is rethrown on the calling thread after all
///     workers quiesce (no index after the first failure is guaranteed to
///     run, every index before it is),
///   - N == 0 is a no-op; N smaller than the thread count and pools
///     larger than the hardware both work (oversubscription-safe),
///   - a pool of one thread executes inline on the calling thread.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CONCURRENT_THREADPOOL_H
#define CCSIM_CONCURRENT_THREADPOOL_H

#include "support/ThreadSafety.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

namespace ccsim {

/// Fixed worker pool with a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means hardwareThreads(). By default
  /// a one-thread pool executes inline on the calling thread;
  /// \p AlwaysSpawnWorkers forces a real worker even then, so submit()
  /// never blocks the submitter (what an asynchronous service needs).
  explicit ThreadPool(unsigned NumThreads = 0,
                      bool AlwaysSpawnWorkers = false);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const { return NumThreads; }

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task) CCSIM_EXCLUDES(Mu);

  /// Blocks until the queue is empty and every worker is idle.
  void waitIdle() CCSIM_EXCLUDES(Mu);

  /// Tasks submitted but not yet picked up by a worker.
  size_t pendingTasks() const CCSIM_EXCLUDES(Mu);

  /// Tasks currently executing on a worker.
  size_t activeTaskCount() const CCSIM_EXCLUDES(Mu);

  /// Runs Body(0) .. Body(N-1) across the pool in contiguous chunks and
  /// blocks until all have finished. \p ChunkSize 0 picks a chunk that
  /// yields ~4 chunks per worker (good load balance for uneven cells).
  /// Rethrows the exception of the lowest failing index, if any.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body,
                   size_t ChunkSize = 0) CCSIM_EXCLUDES(Mu);

  /// Hardware concurrency with a sane fallback.
  static unsigned hardwareThreads();

private:
  unsigned NumThreads;           ///< Immutable after construction.
  std::vector<std::thread> Workers; ///< Immutable after construction.

  mutable Mutex Mu;
  std::condition_variable WorkAvailable;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue CCSIM_GUARDED_BY(Mu);
  size_t ActiveTasks CCSIM_GUARDED_BY(Mu) = 0;
  bool Stopping CCSIM_GUARDED_BY(Mu) = false;

  void workerLoop() CCSIM_EXCLUDES(Mu);
};

/// One-shot convenience: runs \p Body over [0, N) on a transient pool of
/// \p NumThreads workers (0 = hardware). Use a long-lived ThreadPool when
/// issuing many parallel regions.
void parallelFor(unsigned NumThreads, size_t N,
                 const std::function<void(size_t)> &Body);

} // namespace ccsim

#endif // CCSIM_CONCURRENT_THREADPOOL_H
