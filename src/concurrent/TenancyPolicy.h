//===- concurrent/TenancyPolicy.h - Unified tenancy configuration --------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one tenancy surface. A TenancyPolicy is a pure value describing
/// *what* a multi-tenant run simulates — isolation mode, interleave
/// schedule, eviction granularity, capacity/pressure, cost model,
/// chaining, cross-tenant content sharing, and per-tenant weights — and
/// TenantRunHooks carries *how* one particular execution is instrumented
/// (telemetry sink, audit level, cancellation). Every construction path
/// (`ccsim_cli tenants`, batch manifests, service::TenantJob, tests,
/// benches) builds the same TenancyPolicy and validates it with the same
/// validate(); the legacy MultiTenantConfig bundle survives one release as
/// a deprecated shim over these two types (and the ccsim_lint rule
/// tenancy.legacy-config bans new uses).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CONCURRENT_TENANCYPOLICY_H
#define CCSIM_CONCURRENT_TENANCYPOLICY_H

#include "core/CacheManager.h"
#include "support/Cancellation.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ccsim {

/// How the shared capacity is divided between tenants.
enum class PartitionMode {
  Shared,          ///< One cache, one FIFO: any tenant may evict any other.
  StaticPartition, ///< Capacity split by weight; full isolation.
  UnitQuota,       ///< Capacity split in whole eviction units; each tenant
                   ///< keeps unit-FIFO eviction inside its own quota.
};

/// How tenant access streams are interleaved.
enum class InterleaveKind {
  RoundRobin, ///< One access per live tenant, in tenant order.
  Weighted,   ///< Seeded draw proportional to tenant weight.
};

/// Per-tenant configuration. Weight scales both the Weighted schedule and
/// the tenant's capacity share under the partitioned modes.
struct TenantSpec {
  double Weight = 1.0;
};

/// Parses the CLI/manifest spelling of a partition mode ("shared",
/// "static", "quota"); std::nullopt on anything else.
std::optional<PartitionMode> parsePartitionMode(std::string_view Text);

/// Parses the CLI/manifest spelling of a schedule ("rr", "weighted").
std::optional<InterleaveKind> parseInterleaveKind(std::string_view Text);

/// Report/metric label of \p Mode ("shared", "static-partition",
/// "unit-quota").
const char *partitionModeLabel(PartitionMode Mode);

/// Report/metric label of \p Kind ("round-robin", "weighted").
const char *interleaveKindLabel(InterleaveKind Kind);

/// What a multi-tenant run simulates. Pure value type: no pointers to
/// live objects, copyable, comparable by field.
struct TenancyPolicy {
  PartitionMode Mode = PartitionMode::Shared;
  InterleaveKind Schedule = InterleaveKind::RoundRobin;
  uint64_t ScheduleSeed = 0x7e9a9751ULL;

  /// Eviction granularity. Under UnitQuota the unit count also defines the
  /// quota currency: a cache of capacity C run at N units has units of
  /// C / N bytes, and tenant i receives round(N * share_i) of them.
  GranularitySpec Granularity = GranularitySpec::units(8);

  /// Shared capacity = sum of tenant maxCache / PressureFactor, unless
  /// ExplicitCapacityBytes overrides it.
  double PressureFactor = 2.0;
  uint64_t ExplicitCapacityBytes = 0;

  CostModel Costs = CostModel::paperDefaults();
  bool EnableChaining = true;

  /// ShareJIT-style cross-tenant content sharing: misses on content that
  /// is already resident under another tenant's id link the shared copy
  /// (core/SharedContentIndex) instead of installing a duplicate. Off by
  /// default — disabled runs are byte-identical to pre-sharing builds.
  bool ShareCode = false;

  /// Optional per-tenant weights; defaults to 1.0 each.
  std::vector<TenantSpec> Tenants;

  // Fluent setters, mirroring SimConfig's.
  TenancyPolicy &withMode(PartitionMode M) {
    Mode = M;
    return *this;
  }
  TenancyPolicy &withSchedule(InterleaveKind K) {
    Schedule = K;
    return *this;
  }
  TenancyPolicy &withScheduleSeed(uint64_t Seed) {
    ScheduleSeed = Seed;
    return *this;
  }
  TenancyPolicy &withGranularity(const GranularitySpec &Spec) {
    Granularity = Spec;
    return *this;
  }
  TenancyPolicy &withPressure(double Factor) {
    PressureFactor = Factor;
    return *this;
  }
  TenancyPolicy &withCapacityBytes(uint64_t Bytes) {
    ExplicitCapacityBytes = Bytes;
    return *this;
  }
  TenancyPolicy &withCosts(const CostModel &Model) {
    Costs = Model;
    return *this;
  }
  TenancyPolicy &withChaining(bool Enable) {
    EnableChaining = Enable;
    return *this;
  }
  TenancyPolicy &withShareCode(bool Enable) {
    ShareCode = Enable;
    return *this;
  }
  TenancyPolicy &withTenants(std::vector<TenantSpec> Specs) {
    Tenants = std::move(Specs);
    return *this;
  }

  /// Empty when the policy is usable, else a descriptive error (same
  /// contract as SimConfig::validate).
  std::string validate() const;
};

/// How one execution of a policy is instrumented. Separated from
/// TenancyPolicy because these are pointers to live objects owned by the
/// caller, not part of the experiment's identity.
struct TenantRunHooks {
  /// Optional telemetry endpoint. run() tags every tenant with a
  /// TenantTag record, forwards the sink into the underlying cache
  /// manager(s), and publishes per-tenant and global metrics labeled by
  /// tenant name and partition mode. Null costs nothing.
  telemetry::TelemetrySink *Telemetry = nullptr;

  /// Deep structural auditing of every underlying manager during the
  /// replay (check::armAuditor; check::armSharedTenancyAuditors when the
  /// policy shares code). Defaults to Full in CCSIM_PARANOID builds, Off
  /// otherwise; violations print their report and abort.
  AuditLevel Audit = defaultAuditLevel();

  /// Optional cooperative cancellation. When set, run() polls the token
  /// every CancelCheckInterval interleaved accesses and throws
  /// ReplayCancelled when it asks to stop.
  CancelToken *Cancel = nullptr;

  /// Interleaved accesses between cancellation checks.
  uint32_t CancelCheckInterval = 1024;

  TenantRunHooks &withTelemetry(telemetry::TelemetrySink *Sink) {
    Telemetry = Sink;
    return *this;
  }
  TenantRunHooks &withAudit(AuditLevel Level) {
    Audit = Level;
    return *this;
  }
  TenantRunHooks &withCancel(CancelToken *Token) {
    Cancel = Token;
    return *this;
  }
  TenantRunHooks &withCancelCheckInterval(uint32_t Interval) {
    CancelCheckInterval = Interval;
    return *this;
  }

  /// Empty when the hooks are usable, else a descriptive error.
  std::string validate() const;
};

} // namespace ccsim

#endif // CCSIM_CONCURRENT_TENANCYPOLICY_H
