//===- concurrent/MultiTenantSimulator.h - Shared-cache multi-tenancy -----===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates one guest process at a time; production dynamic
/// optimization systems (ShareJIT-style cross-process code caches,
/// Memshare-style multi-tenant memory partitioning) serve many guests at
/// once. This simulator asks the paper's granularity question under
/// contention: K benchmark traces are deterministically interleaved into
/// one code cache, and the cache is either fully shared, statically
/// partitioned per tenant, or partitioned in whole eviction units
/// ("unit quotas" layered on UnitFifoPolicy).
///
/// Everything is deterministic: the interleaving is a pure function of the
/// schedule kind, tenant weights, and a seed, so every run of the same
/// configuration produces identical counters. Attribution works through
/// the CacheManager eviction observer: each superblock is tagged with its
/// owning tenant, and every eviction batch reports which tenant triggered
/// it and which tenants lost blocks — the "who evicted whom" matrix.
///
/// With TenancyPolicy::ShareCode the run adds ShareJIT-style
/// content-addressed sharing: one SharedContentIndex spans all managers,
/// a tenant missing on content another tenant already has resident links
/// the shared copy (AccessKind::SharedHit, counted as a hit), and
/// evicting a representative force-drains its links with per-link Eq. 4
/// unshare charges attributed to the linking tenants. Content identity is
/// the block's ContentTag when the generator set one, else a hash of the
/// trace name, local id, size, and static edges — so K tenants replaying
/// the same benchmark share 100% of their code, and distinct benchmarks
/// never collide.
///
/// Configuration lives in concurrent/TenancyPolicy.h: TenancyPolicy (what
/// to simulate) + TenantRunHooks (how to instrument this execution). The
/// MultiTenantConfig bundle below is a deprecated one-release shim.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CONCURRENT_MULTITENANTSIMULATOR_H
#define CCSIM_CONCURRENT_MULTITENANTSIMULATOR_H

#include "concurrent/TenancyPolicy.h"
#include "core/CacheManager.h"
#include "core/SharedContentIndex.h"
#include "support/Cancellation.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace ccsim {

/// Deprecated pre-TenancyPolicy configuration bundle: the policy fields
/// and the run hooks flattened into one struct. Kept for one release so
/// existing construction paths keep compiling; new code builds a
/// TenancyPolicy + TenantRunHooks instead (ccsim_lint rule
/// tenancy.legacy-config flags new uses under src/ and examples/).
struct MultiTenantConfig : TenancyPolicy, TenantRunHooks {
  // Fluent setters re-exposed so legacy chains keep returning the legacy
  // type (the base versions return their slice).
  MultiTenantConfig &withMode(PartitionMode M) {
    Mode = M;
    return *this;
  }
  MultiTenantConfig &withSchedule(InterleaveKind K) {
    Schedule = K;
    return *this;
  }
  MultiTenantConfig &withScheduleSeed(uint64_t Seed) {
    ScheduleSeed = Seed;
    return *this;
  }
  MultiTenantConfig &withGranularity(const GranularitySpec &Spec) {
    Granularity = Spec;
    return *this;
  }
  MultiTenantConfig &withPressure(double Factor) {
    PressureFactor = Factor;
    return *this;
  }
  MultiTenantConfig &withCapacityBytes(uint64_t Bytes) {
    ExplicitCapacityBytes = Bytes;
    return *this;
  }
  MultiTenantConfig &withCosts(const CostModel &Model) {
    Costs = Model;
    return *this;
  }
  MultiTenantConfig &withChaining(bool Enable) {
    EnableChaining = Enable;
    return *this;
  }
  MultiTenantConfig &withShareCode(bool Enable) {
    ShareCode = Enable;
    return *this;
  }
  MultiTenantConfig &withTenants(std::vector<TenantSpec> Specs) {
    Tenants = std::move(Specs);
    return *this;
  }
  MultiTenantConfig &withTelemetry(telemetry::TelemetrySink *Sink) {
    Telemetry = Sink;
    return *this;
  }
  MultiTenantConfig &withAudit(AuditLevel Level) {
    Audit = Level;
    return *this;
  }
  MultiTenantConfig &withCancel(CancelToken *Token) {
    Cancel = Token;
    return *this;
  }

  /// The policy slice (what to simulate).
  const TenancyPolicy &policy() const { return *this; }

  /// The hooks slice (how this execution is instrumented).
  const TenantRunHooks &hooks() const { return *this; }

  /// Empty when usable: policy validation, then hook validation.
  std::string validate() const {
    std::string Error = TenancyPolicy::validate();
    if (Error.empty())
      Error = TenantRunHooks::validate();
    return Error;
  }
};

/// Counters attributed to one tenant. Access-side counters (accesses,
/// misses, miss overhead, triggered evictions) are charged to the tenant
/// whose dispatch caused them; victim-side counters (blocks/bytes lost,
/// unlink work) are charged to the tenant that owned the evicted block.
struct TenantResult {
  std::string Name;
  uint64_t CapacityBytes = 0; ///< This tenant's partition; 0 when shared.
  uint64_t MaxCacheBytes = 0; ///< Unbounded-cache size of its trace.

  uint64_t Accesses = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t ColdMisses = 0;
  uint64_t CapacityMisses = 0;

  uint64_t EvictionInvocationsTriggered = 0; ///< Batches this tenant caused.
  uint64_t BlocksEvicted = 0;        ///< Own blocks removed (any evictor).
  uint64_t BytesEvicted = 0;         ///< Own bytes removed.
  uint64_t BlocksLostToOthers = 0;   ///< Own blocks evicted by another
                                     ///< tenant's miss (contention damage).
  uint64_t UnlinkOperations = 0;     ///< Own evicted blocks with dangling
                                     ///< incoming links.
  uint64_t UnlinkedLinks = 0;

  // Cross-tenant content sharing (TenancyPolicy::ShareCode runs only).
  // Shared installs go to the tenant whose miss linked the resident copy;
  // unshare unlinks go to the tenant that lost its link.
  bool SharingActive = false;
  uint64_t SharedInstalls = 0;
  uint64_t SharedBytesSaved = 0;
  uint64_t UnshareUnlinks = 0;

  // Modeled instruction overheads (Eqs. 2-4): miss and eviction charges go
  // to the evictor, unlink charges to the victim's owner (including
  // unshare drains, charged to each losing linker).
  double MissOverhead = 0.0;
  double EvictionOverhead = 0.0;
  double UnlinkOverhead = 0.0;

  double missRate() const {
    return Accesses ? static_cast<double>(Misses) /
                          static_cast<double>(Accesses)
                    : 0.0;
  }

  double totalOverhead(bool IncludeLinkMaintenance) const {
    double Total = MissOverhead + EvictionOverhead;
    if (IncludeLinkMaintenance)
      Total += UnlinkOverhead;
    return Total;
  }

  /// Publishes this tenant's counters into \p Metrics under \p Labels —
  /// the per-tenant twin of CacheStats::recordMetrics, and the one place
  /// the tenant.* metric series is defined. The tenant.share.* series is
  /// appended only when SharingActive, keeping sharing-disabled exports
  /// byte-identical.
  void recordMetrics(telemetry::MetricsRegistry &Metrics,
                     const telemetry::MetricLabels &Labels) const;
};

/// Outcome of one multi-tenant run.
struct MultiTenantResult {
  std::string ModeLabel;
  std::string PolicyLabel;
  std::string ScheduleLabel;
  uint64_t TotalCapacityBytes = 0;

  std::vector<TenantResult> Tenants;

  /// Merged counters of the underlying cache manager(s); per-tenant
  /// integer counters sum exactly to these.
  CacheStats Global;

  /// Blocks evicted, cross-tabulated: entry [Evictor * K + Victim].
  /// Off-diagonal mass is inter-tenant interference; the partitioned
  /// modes keep it at zero by construction.
  std::vector<uint64_t> CrossEvictedBlocks;

  /// Content-index state when the replay finished (ShareCode runs only;
  /// both 0 otherwise). The conservation identity Global.SharedInstalls -
  /// Global.UnshareUnlinks == FinalShareLinks holds at this point.
  uint64_t FinalSharedEntries = 0;
  uint64_t FinalShareLinks = 0;

  uint64_t crossEvictions(size_t Evictor, size_t Victim) const {
    return CrossEvictedBlocks[Evictor * Tenants.size() + Victim];
  }

  /// Total blocks one tenant lost to a *different* tenant's misses.
  uint64_t blocksLostToOthers(size_t Victim) const;

  /// Eq. 1 aggregate miss rate over all tenants.
  double aggregateMissRate() const { return Global.missRate(); }
};

/// Deterministic shared-code-cache simulator over K benchmark traces.
/// The traces must outlive the simulator.
class MultiTenantSimulator {
public:
  MultiTenantSimulator(const std::vector<Trace> &Traces,
                       const TenancyPolicy &Policy,
                       const TenantRunHooks &Hooks = {});

  /// Deprecated shim over the two-argument constructor.
  MultiTenantSimulator(const std::vector<Trace> &Traces,
                       const MultiTenantConfig &Config)
      : MultiTenantSimulator(Traces, Config.policy(), Config.hooks()) {}

  /// Replays the interleaved streams to completion (every tenant's trace
  /// is fully consumed) and returns attributed results.
  MultiTenantResult run();

  /// Total capacity the run will use (derived or explicit).
  uint64_t totalCapacityBytes() const { return TotalCapacity; }

  /// Capacity assigned to tenant \p I (equals totalCapacityBytes() for
  /// every tenant under the Shared mode).
  uint64_t tenantCapacityBytes(size_t I) const {
    return TenantCapacities[I];
  }

private:
  const std::vector<Trace> &Traces;
  TenancyPolicy Policy;
  TenantRunHooks Hooks;

  std::vector<SuperblockId> IdBase;   ///< Global-id offset per tenant.
  std::vector<std::vector<std::vector<SuperblockId>>> RemappedEdges;
  std::vector<double> Weights;
  uint64_t TotalCapacity = 0;
  std::vector<uint64_t> TenantCapacities;

  /// Index of the manager serving tenant \p I (always 0 when shared).
  std::vector<size_t> ManagerOf;

  /// ShareCode state: one content index spanning every manager (global
  /// ids are disjoint, so representative lookups stay unambiguous across
  /// partitions), plus precomputed per-block content keys.
  SharedContentIndex ContentIdx;
  std::vector<std::vector<uint64_t>> ContentKeys;

  uint64_t deriveTotalCapacity() const;
  void planPartitions();
};

} // namespace ccsim

#endif // CCSIM_CONCURRENT_MULTITENANTSIMULATOR_H
