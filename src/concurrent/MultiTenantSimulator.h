//===- concurrent/MultiTenantSimulator.h - Shared-cache multi-tenancy -----===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates one guest process at a time; production dynamic
/// optimization systems (ShareJIT-style cross-process code caches,
/// Memshare-style multi-tenant memory partitioning) serve many guests at
/// once. This simulator asks the paper's granularity question under
/// contention: K benchmark traces are deterministically interleaved into
/// one code cache, and the cache is either fully shared, statically
/// partitioned per tenant, or partitioned in whole eviction units
/// ("unit quotas" layered on UnitFifoPolicy).
///
/// Everything is deterministic: the interleaving is a pure function of the
/// schedule kind, tenant weights, and a seed, so every run of the same
/// configuration produces identical counters. Attribution works through
/// the CacheManager eviction observer: each superblock is tagged with its
/// owning tenant, and every eviction batch reports which tenant triggered
/// it and which tenants lost blocks — the "who evicted whom" matrix.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_CONCURRENT_MULTITENANTSIMULATOR_H
#define CCSIM_CONCURRENT_MULTITENANTSIMULATOR_H

#include "core/CacheManager.h"
#include "support/Cancellation.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace ccsim {

/// How the shared capacity is divided between tenants.
enum class PartitionMode {
  Shared,          ///< One cache, one FIFO: any tenant may evict any other.
  StaticPartition, ///< Capacity split by weight; full isolation.
  UnitQuota,       ///< Capacity split in whole eviction units; each tenant
                   ///< keeps unit-FIFO eviction inside its own quota.
};

/// How tenant access streams are interleaved.
enum class InterleaveKind {
  RoundRobin, ///< One access per live tenant, in tenant order.
  Weighted,   ///< Seeded draw proportional to tenant weight.
};

/// Per-tenant configuration. Weight scales both the Weighted schedule and
/// the tenant's capacity share under the partitioned modes.
struct TenantSpec {
  double Weight = 1.0;
};

/// Configuration of one multi-tenant run.
struct MultiTenantConfig {
  PartitionMode Mode = PartitionMode::Shared;
  InterleaveKind Schedule = InterleaveKind::RoundRobin;
  uint64_t ScheduleSeed = 0x7e9a9751ULL;

  /// Eviction granularity. Under UnitQuota the unit count also defines the
  /// quota currency: a cache of capacity C run at N units has units of
  /// C / N bytes, and tenant i receives round(N * share_i) of them.
  GranularitySpec Granularity = GranularitySpec::units(8);

  /// Shared capacity = sum of tenant maxCache / PressureFactor, unless
  /// ExplicitCapacityBytes overrides it.
  double PressureFactor = 2.0;
  uint64_t ExplicitCapacityBytes = 0;

  CostModel Costs = CostModel::paperDefaults();
  bool EnableChaining = true;

  /// Optional per-tenant weights; defaults to 1.0 each.
  std::vector<TenantSpec> Tenants;

  /// Optional telemetry endpoint. run() tags every tenant with a
  /// TenantTag record, forwards the sink into the underlying cache
  /// manager(s), and publishes per-tenant and global metrics labeled by
  /// tenant name and partition mode. Null costs nothing.
  telemetry::TelemetrySink *Telemetry = nullptr;

  /// Deep structural auditing of every underlying manager during the
  /// replay (check::armAuditor). Defaults to Full in CCSIM_PARANOID
  /// builds, Off otherwise; violations print their report and abort.
  AuditLevel Audit = defaultAuditLevel();

  /// Optional cooperative cancellation. When set, run() polls the token
  /// every CancelCheckInterval interleaved accesses and throws
  /// ReplayCancelled when it asks to stop.
  CancelToken *Cancel = nullptr;

  /// Interleaved accesses between cancellation checks.
  uint32_t CancelCheckInterval = 1024;

  // Fluent setters, mirroring SimConfig's.
  MultiTenantConfig &withMode(PartitionMode M) {
    Mode = M;
    return *this;
  }
  MultiTenantConfig &withSchedule(InterleaveKind K) {
    Schedule = K;
    return *this;
  }
  MultiTenantConfig &withScheduleSeed(uint64_t Seed) {
    ScheduleSeed = Seed;
    return *this;
  }
  MultiTenantConfig &withGranularity(const GranularitySpec &Spec) {
    Granularity = Spec;
    return *this;
  }
  MultiTenantConfig &withPressure(double Factor) {
    PressureFactor = Factor;
    return *this;
  }
  MultiTenantConfig &withCapacityBytes(uint64_t Bytes) {
    ExplicitCapacityBytes = Bytes;
    return *this;
  }
  MultiTenantConfig &withCosts(const CostModel &Model) {
    Costs = Model;
    return *this;
  }
  MultiTenantConfig &withChaining(bool Enable) {
    EnableChaining = Enable;
    return *this;
  }
  MultiTenantConfig &withTenants(std::vector<TenantSpec> Specs) {
    Tenants = std::move(Specs);
    return *this;
  }
  MultiTenantConfig &withTelemetry(telemetry::TelemetrySink *Sink) {
    Telemetry = Sink;
    return *this;
  }
  MultiTenantConfig &withAudit(AuditLevel Level) {
    Audit = Level;
    return *this;
  }
  MultiTenantConfig &withCancel(CancelToken *Token) {
    Cancel = Token;
    return *this;
  }

  /// Empty when the config is usable, else a descriptive error (same
  /// contract as SimConfig::validate).
  std::string validate() const;
};

/// Counters attributed to one tenant. Access-side counters (accesses,
/// misses, miss overhead, triggered evictions) are charged to the tenant
/// whose dispatch caused them; victim-side counters (blocks/bytes lost,
/// unlink work) are charged to the tenant that owned the evicted block.
struct TenantResult {
  std::string Name;
  uint64_t CapacityBytes = 0; ///< This tenant's partition; 0 when shared.
  uint64_t MaxCacheBytes = 0; ///< Unbounded-cache size of its trace.

  uint64_t Accesses = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t ColdMisses = 0;
  uint64_t CapacityMisses = 0;

  uint64_t EvictionInvocationsTriggered = 0; ///< Batches this tenant caused.
  uint64_t BlocksEvicted = 0;        ///< Own blocks removed (any evictor).
  uint64_t BytesEvicted = 0;         ///< Own bytes removed.
  uint64_t BlocksLostToOthers = 0;   ///< Own blocks evicted by another
                                     ///< tenant's miss (contention damage).
  uint64_t UnlinkOperations = 0;     ///< Own evicted blocks with dangling
                                     ///< incoming links.
  uint64_t UnlinkedLinks = 0;

  // Modeled instruction overheads (Eqs. 2-4): miss and eviction charges go
  // to the evictor, unlink charges to the victim's owner.
  double MissOverhead = 0.0;
  double EvictionOverhead = 0.0;
  double UnlinkOverhead = 0.0;

  double missRate() const {
    return Accesses ? static_cast<double>(Misses) /
                          static_cast<double>(Accesses)
                    : 0.0;
  }

  double totalOverhead(bool IncludeLinkMaintenance) const {
    double Total = MissOverhead + EvictionOverhead;
    if (IncludeLinkMaintenance)
      Total += UnlinkOverhead;
    return Total;
  }
};

/// Outcome of one multi-tenant run.
struct MultiTenantResult {
  std::string ModeLabel;
  std::string PolicyLabel;
  std::string ScheduleLabel;
  uint64_t TotalCapacityBytes = 0;

  std::vector<TenantResult> Tenants;

  /// Merged counters of the underlying cache manager(s); per-tenant
  /// integer counters sum exactly to these.
  CacheStats Global;

  /// Blocks evicted, cross-tabulated: entry [Evictor * K + Victim].
  /// Off-diagonal mass is inter-tenant interference; the partitioned
  /// modes keep it at zero by construction.
  std::vector<uint64_t> CrossEvictedBlocks;

  uint64_t crossEvictions(size_t Evictor, size_t Victim) const {
    return CrossEvictedBlocks[Evictor * Tenants.size() + Victim];
  }

  /// Total blocks one tenant lost to a *different* tenant's misses.
  uint64_t blocksLostToOthers(size_t Victim) const;

  /// Eq. 1 aggregate miss rate over all tenants.
  double aggregateMissRate() const { return Global.missRate(); }
};

/// Deterministic shared-code-cache simulator over K benchmark traces.
/// The traces must outlive the simulator.
class MultiTenantSimulator {
public:
  MultiTenantSimulator(const std::vector<Trace> &Traces,
                       const MultiTenantConfig &Config);

  /// Replays the interleaved streams to completion (every tenant's trace
  /// is fully consumed) and returns attributed results.
  MultiTenantResult run();

  /// Total capacity the run will use (derived or explicit).
  uint64_t totalCapacityBytes() const { return TotalCapacity; }

  /// Capacity assigned to tenant \p I (equals totalCapacityBytes() for
  /// every tenant under the Shared mode).
  uint64_t tenantCapacityBytes(size_t I) const {
    return TenantCapacities[I];
  }

private:
  const std::vector<Trace> &Traces;
  MultiTenantConfig Config;

  std::vector<SuperblockId> IdBase;   ///< Global-id offset per tenant.
  std::vector<std::vector<std::vector<SuperblockId>>> RemappedEdges;
  std::vector<double> Weights;
  uint64_t TotalCapacity = 0;
  std::vector<uint64_t> TenantCapacities;

  /// Index of the manager serving tenant \p I (always 0 when shared).
  std::vector<size_t> ManagerOf;

  uint64_t deriveTotalCapacity() const;
  void planPartitions();
  std::string modeLabel() const;
  std::string scheduleLabel() const;
};

} // namespace ccsim

#endif // CCSIM_CONCURRENT_MULTITENANTSIMULATOR_H
