//===- sim/Simulator.h - Trace-driven code cache simulation ---------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-driven code cache simulator of Section 4.1: replays a
/// benchmark trace through a CacheManager configured with one eviction
/// policy and one cache pressure factor. The cache is sized to
/// maxCache / pressure, where maxCache is the size an unbounded cache
/// would reach for that benchmark (Section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SIM_SIMULATOR_H
#define CCSIM_SIM_SIMULATOR_H

#include "core/CacheManager.h"
#include "support/Cancellation.h"
#include "trace/Trace.h"

#include <memory>
#include <string>

namespace ccsim {

/// Configuration shared by simulation runs.
struct SimConfig {
  /// Cache pressure factor n: capacity = maxCache / n (Section 4.2).
  double PressureFactor = 2.0;

  /// Overrides the derived capacity when nonzero.
  uint64_t ExplicitCapacityBytes = 0;

  /// Analytical instruction-cost model (Eqs. 2-4).
  CostModel Costs = CostModel::paperDefaults();

  /// Maintain superblock chaining state.
  bool EnableChaining = true;

  /// Optional telemetry endpoint, forwarded into the CacheManager. When
  /// set, run() wraps the replay in Mark records and publishes the final
  /// CacheStats into the sink's registry under
  /// {benchmark, policy, pressure} labels. Null costs nothing.
  telemetry::TelemetrySink *Telemetry = nullptr;

  /// Deep structural auditing during the replay (check::armAuditor).
  /// Defaults to Full in CCSIM_PARANOID builds, Off otherwise; any
  /// violation prints its report and aborts the process.
  AuditLevel Audit = defaultAuditLevel();

  /// Optional cooperative cancellation. When set, run() polls the token
  /// every CancelCheckInterval accesses and throws ReplayCancelled when it
  /// asks to stop. Null costs one branch per run.
  CancelToken *Cancel = nullptr;

  /// Accesses replayed between cancellation checks (the trace-chunk
  /// granularity of cancellation and deadline enforcement).
  uint32_t CancelCheckInterval = 1024;

  // Fluent setters, so drivers can assemble a config in one expression.
  SimConfig &withPressure(double Factor) {
    PressureFactor = Factor;
    return *this;
  }
  SimConfig &withCapacityBytes(uint64_t Bytes) {
    ExplicitCapacityBytes = Bytes;
    return *this;
  }
  SimConfig &withCosts(const CostModel &Model) {
    Costs = Model;
    return *this;
  }
  SimConfig &withChaining(bool Enable) {
    EnableChaining = Enable;
    return *this;
  }
  SimConfig &withTelemetry(telemetry::TelemetrySink *Sink) {
    Telemetry = Sink;
    return *this;
  }
  SimConfig &withAudit(AuditLevel Level) {
    Audit = Level;
    return *this;
  }
  SimConfig &withCancel(CancelToken *Token) {
    Cancel = Token;
    return *this;
  }

  /// Checks every field for consistency. Returns an empty string when the
  /// config is usable and a descriptive error otherwise; callers that
  /// cannot abort (SimService) reject the job with this message instead
  /// of tripping the CCSIM_REQUIRE contracts mid-run.
  std::string validate() const;
};

/// Outcome of simulating one (trace, policy, capacity) combination.
struct SimResult {
  std::string BenchmarkName;
  std::string PolicyName;
  uint64_t CapacityBytes = 0;
  uint64_t MaxCacheBytes = 0;
  CacheStats Stats;
};

/// Stateless driver functions.
namespace sim {

/// Derives the cache capacity for \p T under \p Config.
uint64_t capacityFor(const Trace &T, const SimConfig &Config);

/// Replays \p T through a fresh CacheManager running \p Policy.
SimResult run(const Trace &T, std::unique_ptr<EvictionPolicy> Policy,
              const SimConfig &Config);

/// Replays \p T under the policy named by \p Spec.
SimResult run(const Trace &T, const GranularitySpec &Spec,
              const SimConfig &Config);

} // namespace sim

/// Execution-time model used for the Section 5.3 estimate: total time is
/// proportional to application instructions (accesses times the mean
/// number of instructions executed inside the cache per dispatch) plus
/// the modeled cache management overhead.
struct ExecutionTimeModel {
  /// Instructions the application retires inside the code cache between
  /// consecutive dispatch events. Calibrated so that cache management
  /// overhead "becomes a dominant factor" at the paper's high-pressure
  /// configuration (Section 5.3).
  double InstructionsPerDispatch = 6000.0;

  /// Total modeled instructions for a run.
  double totalInstructions(const SimResult &Result,
                           bool IncludeLinkMaintenance) const {
    return static_cast<double>(Result.Stats.Accesses) *
               InstructionsPerDispatch +
           Result.Stats.totalOverhead(IncludeLinkMaintenance);
  }

  /// Relative execution-time reduction going from \p Base to \p Improved.
  double reductionFraction(const SimResult &Base, const SimResult &Improved,
                           bool IncludeLinkMaintenance) const {
    const double TB = totalInstructions(Base, IncludeLinkMaintenance);
    const double TI = totalInstructions(Improved, IncludeLinkMaintenance);
    if (TB <= 0.0)
      return 0.0;
    return (TB - TI) / TB;
  }
};

} // namespace ccsim

#endif // CCSIM_SIM_SIMULATOR_H
