//===- sim/Sweep.h - Suite-wide granularity and pressure sweeps -----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment engine behind Figures 6-8, 10-11, and 13-15: it
/// generates (once) the traces for a benchmark suite, replays every
/// benchmark under a (granularity, pressure) grid, and aggregates results
/// across benchmarks with the paper's Equation 1 weighting:
///
///   unifiedMissRate = sum(cacheMisses_i) / sum(cacheAccesses_i)
///
/// which is exactly what merging the per-benchmark counters produces.
/// Benchmarks run in parallel across hardware threads; results are
/// deterministic regardless of thread count.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_SIM_SWEEP_H
#define CCSIM_SIM_SWEEP_H

#include "sim/Simulator.h"
#include "trace/TraceGenerator.h"
#include "trace/WorkloadModel.h"

#include <functional>
#include <vector>

namespace ccsim {

/// Default suite seed shared by all bench binaries so every figure is
/// computed from the same traces.
inline constexpr uint64_t DefaultSuiteSeed = 0xCC512004ULL;

/// Aggregated outcome of one suite run at one sweep point.
struct SuiteResult {
  std::string PolicyLabel;
  double PressureFactor = 0.0;
  CacheStats Combined; ///< Eq. 1 aggregation over all benchmarks.
  std::vector<SimResult> PerBenchmark;
};

/// One sweep-grid point: a (granularity, configuration) pair. A job
/// expands to one simulation cell per benchmark in the suite.
struct SweepJob {
  GranularitySpec Spec;
  SimConfig Config;

  SweepJob &withSpec(const GranularitySpec &S) {
    Spec = S;
    return *this;
  }
  SweepJob &withConfig(const SimConfig &C) {
    Config = C;
    return *this;
  }

  /// Empty when the job is runnable, else a descriptive error (same
  /// contract as SimConfig::validate).
  std::string validate() const {
    if (Spec.Kind == GranularitySpec::KindType::Units && Spec.Units < 1)
      return "unit-granularity sweep point needs at least one unit";
    return Config.validate();
  }

  /// Whether \p Other describes the exact same simulation: same spec and
  /// the same simulation-affecting config fields (pressure, capacity,
  /// cost model, chaining, audit level, cancellation wiring, telemetry
  /// endpoint). Two such points produce bit-identical results, which is
  /// what lets the sweep engines simulate one and copy the other.
  bool sameSimulation(const SweepJob &Other) const;
};

/// Cartesian helper: one SweepJob per (spec, pressure), each with \p Base
/// at that pressure. This is the fig7/fig11-style grid.
std::vector<SweepJob> makeSweepGrid(const std::vector<GranularitySpec> &Specs,
                                    const std::vector<double> &Pressures,
                                    const SimConfig &Base);

/// Validates a whole sweep lattice: rejects an empty/degenerate grid with
/// a message and returns the first failing point's error (prefixed with
/// its index) otherwise. Empty string means runnable.
std::string validateSweepGrid(const std::vector<SweepJob> &Jobs);

/// Publishes one suite-level aggregate into \p Tel's registry, labeled by
/// the sweep point. Callers must invoke it in canonical job order, which
/// is what keeps registries byte-identical across serial, parallel, and
/// one-pass execution. Null sink is a no-op.
void recordSuiteMetrics(telemetry::TelemetrySink *Tel,
                        const SuiteResult &Result);

/// Generates and owns the traces for a benchmark suite and replays them
/// under arbitrary policies.
class SweepEngine {
public:
  /// Generates traces for \p Models with per-benchmark seeds derived from
  /// \p SuiteSeed.
  SweepEngine(const std::vector<WorkloadModel> &Models, uint64_t SuiteSeed);

  /// Engine over explicit, pre-generated traces (adversarial suites,
  /// saved logs). Takes ownership; traces must be validate()-clean and
  /// nonempty. Every runner below treats these exactly like generated
  /// benchmarks.
  explicit SweepEngine(std::vector<Trace> TraceList);

  /// Engine over the paper's full Table 1 suite.
  static SweepEngine forTable1(uint64_t SuiteSeed = DefaultSuiteSeed);

  /// Engine over a size-scaled copy of Table 1 (fast tests/smoke runs).
  static SweepEngine forScaledTable1(double Factor,
                                     uint64_t SuiteSeed = DefaultSuiteSeed);

  const std::vector<Trace> &traces() const { return Traces; }

  /// Runs every benchmark under the policy named by \p Spec at
  /// \p Config.PressureFactor and aggregates.
  SuiteResult runSuite(const GranularitySpec &Spec,
                       const SimConfig &Config) const;

  /// Runs every benchmark under policies minted by \p MakePolicy (called
  /// once per benchmark). \p Label names the sweep point.
  SuiteResult
  runSuite(const std::function<std::unique_ptr<EvictionPolicy>()> &MakePolicy,
           const std::string &Label, const SimConfig &Config) const;

  /// Full granularity sweep (standardGranularitySweep()) at one pressure.
  std::vector<SuiteResult> sweepGranularities(const SimConfig &Config) const;

  /// Runs every grid cell of \p Jobs (|Jobs| x |benchmarks| independent
  /// simulations) across the worker pool and merges results in canonical
  /// (job, benchmark) order. The output is bit-identical to calling
  /// runSuite() on each job serially: every cell simulates on its own
  /// CacheManager, and aggregation order never depends on scheduling.
  /// Duplicate grid points (sameSimulation) without a telemetry endpoint
  /// simulate once and share the result; telemetry-carrying points are
  /// never deduplicated, since each replay records observable events.
  std::vector<SuiteResult> runParallel(const std::vector<SweepJob> &Jobs) const;

  /// Number of worker threads (defaults to hardware concurrency; set to 1
  /// for strictly serial runs).
  void setNumThreads(unsigned Threads) { NumThreads = Threads ? Threads : 1; }
  unsigned numThreads() const { return NumThreads; }

private:
  std::vector<Trace> Traces;
  unsigned NumThreads;
};

} // namespace ccsim

#endif // CCSIM_SIM_SWEEP_H
