//===- sim/Simulator.cpp - Trace-driven code cache simulation -------------===//

#include "sim/Simulator.h"
#include "check/Paranoia.h"
#include "support/Contracts.h"

#include <algorithm>
#include <cstdio>

using namespace ccsim;

std::string SimConfig::validate() const {
  if (ExplicitCapacityBytes == 0 && PressureFactor < 1.0) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "pressure factor %g below 1 would be an over-provisioned "
                  "cache (set an explicit capacity instead)",
                  PressureFactor);
    return Buf;
  }
  if (Costs.EvictionPerByte < 0.0 || Costs.MissPerByte < 0.0 ||
      Costs.UnlinkPerLink < 0.0 || Costs.EvictionBase < 0.0 ||
      Costs.MissBase < 0.0 || Costs.UnlinkBase < 0.0)
    return "cost model coefficients must be nonnegative";
  if (CancelCheckInterval == 0)
    return "cancellation check interval must be at least 1 access";
  return {};
}

uint64_t ccsim::sim::capacityFor(const Trace &T, const SimConfig &Config) {
  if (Config.ExplicitCapacityBytes != 0)
    return Config.ExplicitCapacityBytes;
  CCSIM_REQUIRE(Config.PressureFactor >= 1.0,
                "pressure factor %g below 1 would be an over-provisioned cache",
                Config.PressureFactor);
  const double Derived =
      static_cast<double>(T.maxCacheBytes()) / Config.PressureFactor;
  return std::max<uint64_t>(1, static_cast<uint64_t>(Derived));
}

SimResult ccsim::sim::run(const Trace &T,
                          std::unique_ptr<EvictionPolicy> Policy,
                          const SimConfig &Config) {
  CCSIM_REQUIRE(Policy, "simulation requires a policy");
  SimResult Result;
  Result.BenchmarkName = T.Name;
  Result.PolicyName = Policy->name();
  Result.MaxCacheBytes = T.maxCacheBytes();
  Result.CapacityBytes = capacityFor(T, Config);

  CacheManagerConfig MC;
  MC.CapacityBytes = Result.CapacityBytes;
  MC.Costs = Config.Costs;
  MC.EnableChaining = Config.EnableChaining;
  MC.Telemetry = Config.Telemetry;

  telemetry::TelemetrySink *Tel = Config.Telemetry;
  uint32_t MarkId = 0;
  if (Tel) {
    MarkId = Tel->Tracer.internLabel("sim:" + Result.BenchmarkName + "/" +
                                     Result.PolicyName);
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 1, 0);
  }

  CacheManager Manager(MC, std::move(Policy));
  if (Config.Audit != AuditLevel::Off)
    check::armAuditor(Manager, check::ParanoiaOptions{Config.Audit, true, {}});
  if (!Config.Cancel) {
    for (SuperblockId Id : T.Accesses)
      Manager.access(T.recordFor(Id));
  } else {
    // Cancellable replay: poll the token once per trace chunk so a
    // cancellation or deadline lands within CancelCheckInterval accesses.
    const size_t N = T.Accesses.size();
    const size_t Chunk = std::max<uint32_t>(1, Config.CancelCheckInterval);
    size_t I = 0;
    while (I < N) {
      if (const char *Reason = Config.Cancel->stopReason())
        throw ReplayCancelled("replay of " + T.Name + " stopped after " +
                                  std::to_string(I) + " of " +
                                  std::to_string(N) + " accesses: " + Reason,
                              Config.Cancel->deadlineExpired() &&
                                  !Config.Cancel->cancelRequested());
      const size_t End = std::min(N, I + Chunk);
      for (; I < End; ++I)
        Manager.access(T.recordFor(T.Accesses[I]));
    }
  }

  Result.Stats = Manager.stats();
  if (Tel) {
    Tel->Tracer.record(telemetry::EventKind::Mark, 0, telemetry::NoBlock,
                       MarkId, 0, Result.Stats.Accesses);
    char Pressure[32];
    std::snprintf(Pressure, sizeof(Pressure), "%g", Config.PressureFactor);
    Result.Stats.recordMetrics(Tel->Metrics,
                          {{"benchmark", Result.BenchmarkName},
                           {"policy", Result.PolicyName},
                           {"pressure", Pressure}});
  }
  return Result;
}

SimResult ccsim::sim::run(const Trace &T, const GranularitySpec &Spec,
                          const SimConfig &Config) {
  return run(T, makePolicy(Spec), Config);
}
