//===- sim/Simulator.cpp - Trace-driven code cache simulation -------------===//

#include "sim/Simulator.h"

#include <algorithm>
#include <cassert>

using namespace ccsim;

uint64_t ccsim::sim::capacityFor(const Trace &T, const SimConfig &Config) {
  if (Config.ExplicitCapacityBytes != 0)
    return Config.ExplicitCapacityBytes;
  assert(Config.PressureFactor >= 1.0 &&
         "pressure factor below 1 would be an over-provisioned cache");
  const double Derived =
      static_cast<double>(T.maxCacheBytes()) / Config.PressureFactor;
  return std::max<uint64_t>(1, static_cast<uint64_t>(Derived));
}

SimResult ccsim::sim::run(const Trace &T,
                          std::unique_ptr<EvictionPolicy> Policy,
                          const SimConfig &Config) {
  assert(Policy && "simulation requires a policy");
  SimResult Result;
  Result.BenchmarkName = T.Name;
  Result.PolicyName = Policy->name();
  Result.MaxCacheBytes = T.maxCacheBytes();
  Result.CapacityBytes = capacityFor(T, Config);

  CacheManagerConfig MC;
  MC.CapacityBytes = Result.CapacityBytes;
  MC.Costs = Config.Costs;
  MC.EnableChaining = Config.EnableChaining;
  CacheManager Manager(MC, std::move(Policy));

  for (SuperblockId Id : T.Accesses)
    Manager.access(T.recordFor(Id));

  Result.Stats = Manager.stats();
  return Result;
}

SimResult ccsim::sim::run(const Trace &T, const GranularitySpec &Spec,
                          const SimConfig &Config) {
  return run(T, makePolicy(Spec), Config);
}
