//===- sim/Sweep.cpp - Suite-wide granularity and pressure sweeps ---------===//

#include "sim/Sweep.h"

#include <atomic>
#include <cassert>
#include <thread>

using namespace ccsim;

SweepEngine::SweepEngine(const std::vector<WorkloadModel> &Models,
                         uint64_t SuiteSeed) {
  Traces.reserve(Models.size());
  for (const WorkloadModel &M : Models)
    Traces.push_back(TraceGenerator::generateBenchmark(M, SuiteSeed));
  const unsigned HW = std::thread::hardware_concurrency();
  NumThreads = HW ? HW : 4;
}

SweepEngine SweepEngine::forTable1(uint64_t SuiteSeed) {
  return SweepEngine(table1Workloads(), SuiteSeed);
}

SweepEngine SweepEngine::forScaledTable1(double Factor, uint64_t SuiteSeed) {
  std::vector<WorkloadModel> Scaled;
  Scaled.reserve(table1Workloads().size());
  for (const WorkloadModel &M : table1Workloads())
    Scaled.push_back(scaledWorkload(M, Factor));
  return SweepEngine(Scaled, SuiteSeed);
}

SuiteResult SweepEngine::runSuite(
    const std::function<std::unique_ptr<EvictionPolicy>()> &MakePolicy,
    const std::string &Label, const SimConfig &Config) const {
  SuiteResult Result;
  Result.PolicyLabel = Label;
  Result.PressureFactor = Config.PressureFactor;
  Result.PerBenchmark.resize(Traces.size());

  // Benchmarks are independent; fan them out over a small worker pool.
  std::atomic<size_t> NextIndex{0};
  auto Worker = [&]() {
    for (;;) {
      const size_t I = NextIndex.fetch_add(1);
      if (I >= Traces.size())
        return;
      Result.PerBenchmark[I] = sim::run(Traces[I], MakePolicy(), Config);
    }
  };

  const unsigned Threads =
      std::max(1u, std::min<unsigned>(NumThreads, Traces.size()));
  if (Threads == 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  // Equation 1: the unified metric weights every benchmark by its own
  // access count, which is what summing raw counters does.
  for (const SimResult &R : Result.PerBenchmark)
    Result.Combined.merge(R.Stats);
  return Result;
}

SuiteResult SweepEngine::runSuite(const GranularitySpec &Spec,
                                  const SimConfig &Config) const {
  return runSuite([&Spec]() { return makePolicy(Spec); }, Spec.label(),
                  Config);
}

std::vector<SuiteResult>
SweepEngine::sweepGranularities(const SimConfig &Config) const {
  std::vector<SuiteResult> Results;
  for (const GranularitySpec &Spec : standardGranularitySweep())
    Results.push_back(runSuite(Spec, Config));
  return Results;
}
