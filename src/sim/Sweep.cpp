//===- sim/Sweep.cpp - Suite-wide granularity and pressure sweeps ---------===//

#include "sim/Sweep.h"

#include "concurrent/ThreadPool.h"

#include <cassert>
#include <cstdio>

using namespace ccsim;

void ccsim::recordSuiteMetrics(telemetry::TelemetrySink *Tel,
                               const SuiteResult &Result) {
  if (!Tel)
    return;
  char Pressure[32];
  std::snprintf(Pressure, sizeof(Pressure), "%g", Result.PressureFactor);
  Result.Combined.recordMetrics(Tel->Metrics, {{"suite", Result.PolicyLabel},
                                          {"pressure", Pressure}});
}

bool SweepJob::sameSimulation(const SweepJob &Other) const {
  const SimConfig &A = Config;
  const SimConfig &B = Other.Config;
  return Spec.Kind == Other.Spec.Kind && Spec.Units == Other.Spec.Units &&
         A.PressureFactor == B.PressureFactor &&
         A.ExplicitCapacityBytes == B.ExplicitCapacityBytes &&
         A.Costs.EvictionPerByte == B.Costs.EvictionPerByte &&
         A.Costs.EvictionBase == B.Costs.EvictionBase &&
         A.Costs.MissPerByte == B.Costs.MissPerByte &&
         A.Costs.MissBase == B.Costs.MissBase &&
         A.Costs.UnlinkPerLink == B.Costs.UnlinkPerLink &&
         A.Costs.UnlinkBase == B.Costs.UnlinkBase &&
         A.EnableChaining == B.EnableChaining &&
         A.Telemetry == B.Telemetry && A.Audit == B.Audit &&
         A.Cancel == B.Cancel &&
         A.CancelCheckInterval == B.CancelCheckInterval;
}

std::string ccsim::validateSweepGrid(const std::vector<SweepJob> &Jobs) {
  if (Jobs.empty())
    return "sweep grid has no points (empty lattice)";
  for (size_t I = 0; I < Jobs.size(); ++I) {
    std::string Err = Jobs[I].validate();
    if (!Err.empty()) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "sweep point %zu: ", I);
      return Buf + Err;
    }
  }
  return {};
}

SweepEngine::SweepEngine(const std::vector<WorkloadModel> &Models,
                         uint64_t SuiteSeed) {
  Traces.reserve(Models.size());
  for (const WorkloadModel &M : Models)
    Traces.push_back(TraceGenerator::generateBenchmark(M, SuiteSeed));
  NumThreads = ThreadPool::hardwareThreads();
}

SweepEngine::SweepEngine(std::vector<Trace> TraceList)
    : Traces(std::move(TraceList)) {
  NumThreads = ThreadPool::hardwareThreads();
}

SweepEngine SweepEngine::forTable1(uint64_t SuiteSeed) {
  return SweepEngine(table1Workloads(), SuiteSeed);
}

SweepEngine SweepEngine::forScaledTable1(double Factor, uint64_t SuiteSeed) {
  std::vector<WorkloadModel> Scaled;
  Scaled.reserve(table1Workloads().size());
  for (const WorkloadModel &M : table1Workloads())
    Scaled.push_back(scaledWorkload(M, Factor));
  return SweepEngine(Scaled, SuiteSeed);
}

std::vector<SweepJob>
ccsim::makeSweepGrid(const std::vector<GranularitySpec> &Specs,
                     const std::vector<double> &Pressures,
                     const SimConfig &Base) {
  std::vector<SweepJob> Jobs;
  Jobs.reserve(Specs.size() * Pressures.size());
  for (double Pressure : Pressures)
    for (const GranularitySpec &Spec : Specs) {
      SweepJob Job;
      Job.Spec = Spec;
      Job.Config = Base;
      Job.Config.PressureFactor = Pressure;
      Jobs.push_back(Job);
    }
  return Jobs;
}

SuiteResult SweepEngine::runSuite(
    const std::function<std::unique_ptr<EvictionPolicy>()> &MakePolicy,
    const std::string &Label, const SimConfig &Config) const {
  SuiteResult Result;
  Result.PolicyLabel = Label;
  Result.PressureFactor = Config.PressureFactor;
  Result.PerBenchmark.resize(Traces.size());

  // Benchmarks are independent; fan them out over the worker pool. Each
  // result lands in its own index, so aggregation below is deterministic.
  ThreadPool Pool(std::max(1u, std::min<unsigned>(NumThreads, Traces.size())));
  Pool.parallelFor(
      Traces.size(),
      [&](size_t I) {
        Result.PerBenchmark[I] = sim::run(Traces[I], MakePolicy(), Config);
      },
      /*ChunkSize=*/1);

  // Equation 1: the unified metric weights every benchmark by its own
  // access count, which is what summing raw counters does.
  for (const SimResult &R : Result.PerBenchmark)
    Result.Combined.merge(R.Stats);
  recordSuiteMetrics(Config.Telemetry, Result);
  return Result;
}

SuiteResult SweepEngine::runSuite(const GranularitySpec &Spec,
                                  const SimConfig &Config) const {
  return runSuite([&Spec]() { return makePolicy(Spec); }, Spec.label(),
                  Config);
}

std::vector<SuiteResult>
SweepEngine::sweepGranularities(const SimConfig &Config) const {
  std::vector<SuiteResult> Results;
  for (const GranularitySpec &Spec : standardGranularitySweep())
    Results.push_back(runSuite(Spec, Config));
  return Results;
}

std::vector<SuiteResult>
SweepEngine::runParallel(const std::vector<SweepJob> &Jobs) const {
  const size_t NumBenchmarks = Traces.size();

  // Identical grid points without a telemetry endpoint are simulated once
  // and copied; Rep[J] is the index of the point J's cells come from. A
  // point that records into a sink is its own representative: deduping it
  // would drop observable tracer events and registry recordings.
  std::vector<size_t> Rep(Jobs.size());
  for (size_t J = 0; J < Jobs.size(); ++J) {
    Rep[J] = J;
    if (Jobs[J].Config.Telemetry)
      continue;
    for (size_t Earlier = 0; Earlier < J; ++Earlier)
      if (Rep[Earlier] == Earlier && !Jobs[Earlier].Config.Telemetry &&
          Jobs[J].sameSimulation(Jobs[Earlier])) {
        Rep[J] = Earlier;
        break;
      }
  }

  // Every unique (job, benchmark) cell is an independent simulation on
  // its own CacheManager; flatten the grid so the pool load-balances
  // across both axes at once (a single heavy benchmark no longer
  // serializes a job).
  std::vector<size_t> Unique;
  for (size_t J = 0; J < Jobs.size(); ++J)
    if (Rep[J] == J)
      Unique.push_back(J);
  const size_t Cells = Unique.size() * NumBenchmarks;
  std::vector<SimResult> Flat(Cells);
  ThreadPool Pool(std::max<unsigned>(1, NumThreads));
  Pool.parallelFor(
      Cells,
      [&](size_t Cell) {
        const size_t Job = Unique[Cell / NumBenchmarks];
        const size_t Bench = Cell % NumBenchmarks;
        Flat[Cell] = sim::run(Traces[Bench], makePolicy(Jobs[Job].Spec),
                              Jobs[Job].Config);
      },
      /*ChunkSize=*/1);

  // Index of each representative's first cell in Flat.
  std::vector<size_t> FlatBase(Jobs.size(), 0);
  for (size_t U = 0; U < Unique.size(); ++U)
    FlatBase[Unique[U]] = U * NumBenchmarks;

  // Merge in canonical (job, benchmark) order: bit-identical to running
  // runSuite() per job serially.
  std::vector<SuiteResult> Results(Jobs.size());
  for (size_t J = 0; J < Jobs.size(); ++J) {
    SuiteResult &R = Results[J];
    R.PolicyLabel = Jobs[J].Spec.label();
    R.PressureFactor = Jobs[J].Config.PressureFactor;
    const size_t Base = FlatBase[Rep[J]];
    R.PerBenchmark.assign(Flat.begin() + Base,
                          Flat.begin() + Base + NumBenchmarks);
    for (const SimResult &B : R.PerBenchmark)
      R.Combined.merge(B.Stats);
    recordSuiteMetrics(Jobs[J].Config.Telemetry, R);
  }
  return Results;
}
