//===- sim/Sweep.cpp - Suite-wide granularity and pressure sweeps ---------===//

#include "sim/Sweep.h"

#include "concurrent/ThreadPool.h"

#include <cassert>
#include <cstdio>

using namespace ccsim;

namespace {

/// Publishes one suite-level aggregate into the sink, labeled by the sweep
/// point. Always called in canonical job order, which keeps registries
/// byte-identical between serial and parallel execution.
void recordSuiteResult(telemetry::TelemetrySink *Tel,
                       const SuiteResult &Result) {
  if (!Tel)
    return;
  char Pressure[32];
  std::snprintf(Pressure, sizeof(Pressure), "%g", Result.PressureFactor);
  Result.Combined.recordTo(Tel->Metrics, {{"suite", Result.PolicyLabel},
                                          {"pressure", Pressure}});
}

} // namespace

SweepEngine::SweepEngine(const std::vector<WorkloadModel> &Models,
                         uint64_t SuiteSeed) {
  Traces.reserve(Models.size());
  for (const WorkloadModel &M : Models)
    Traces.push_back(TraceGenerator::generateBenchmark(M, SuiteSeed));
  NumThreads = ThreadPool::hardwareThreads();
}

SweepEngine SweepEngine::forTable1(uint64_t SuiteSeed) {
  return SweepEngine(table1Workloads(), SuiteSeed);
}

SweepEngine SweepEngine::forScaledTable1(double Factor, uint64_t SuiteSeed) {
  std::vector<WorkloadModel> Scaled;
  Scaled.reserve(table1Workloads().size());
  for (const WorkloadModel &M : table1Workloads())
    Scaled.push_back(scaledWorkload(M, Factor));
  return SweepEngine(Scaled, SuiteSeed);
}

std::vector<SweepJob>
ccsim::makeSweepGrid(const std::vector<GranularitySpec> &Specs,
                     const std::vector<double> &Pressures,
                     const SimConfig &Base) {
  std::vector<SweepJob> Jobs;
  Jobs.reserve(Specs.size() * Pressures.size());
  for (double Pressure : Pressures)
    for (const GranularitySpec &Spec : Specs) {
      SweepJob Job;
      Job.Spec = Spec;
      Job.Config = Base;
      Job.Config.PressureFactor = Pressure;
      Jobs.push_back(Job);
    }
  return Jobs;
}

SuiteResult SweepEngine::runSuite(
    const std::function<std::unique_ptr<EvictionPolicy>()> &MakePolicy,
    const std::string &Label, const SimConfig &Config) const {
  SuiteResult Result;
  Result.PolicyLabel = Label;
  Result.PressureFactor = Config.PressureFactor;
  Result.PerBenchmark.resize(Traces.size());

  // Benchmarks are independent; fan them out over the worker pool. Each
  // result lands in its own index, so aggregation below is deterministic.
  ThreadPool Pool(std::max(1u, std::min<unsigned>(NumThreads, Traces.size())));
  Pool.parallelFor(
      Traces.size(),
      [&](size_t I) {
        Result.PerBenchmark[I] = sim::run(Traces[I], MakePolicy(), Config);
      },
      /*ChunkSize=*/1);

  // Equation 1: the unified metric weights every benchmark by its own
  // access count, which is what summing raw counters does.
  for (const SimResult &R : Result.PerBenchmark)
    Result.Combined.merge(R.Stats);
  recordSuiteResult(Config.Telemetry, Result);
  return Result;
}

SuiteResult SweepEngine::runSuite(const GranularitySpec &Spec,
                                  const SimConfig &Config) const {
  return runSuite([&Spec]() { return makePolicy(Spec); }, Spec.label(),
                  Config);
}

std::vector<SuiteResult>
SweepEngine::sweepGranularities(const SimConfig &Config) const {
  std::vector<SuiteResult> Results;
  for (const GranularitySpec &Spec : standardGranularitySweep())
    Results.push_back(runSuite(Spec, Config));
  return Results;
}

std::vector<SuiteResult>
SweepEngine::runParallel(const std::vector<SweepJob> &Jobs) const {
  const size_t NumBenchmarks = Traces.size();
  const size_t Cells = Jobs.size() * NumBenchmarks;

  // Every (job, benchmark) cell is an independent simulation on its own
  // CacheManager; flatten the grid so the pool load-balances across both
  // axes at once (a single heavy benchmark no longer serializes a job).
  std::vector<SimResult> Flat(Cells);
  ThreadPool Pool(std::max<unsigned>(1, NumThreads));
  Pool.parallelFor(
      Cells,
      [&](size_t Cell) {
        const size_t Job = Cell / NumBenchmarks;
        const size_t Bench = Cell % NumBenchmarks;
        Flat[Cell] = sim::run(Traces[Bench], makePolicy(Jobs[Job].Spec),
                              Jobs[Job].Config);
      },
      /*ChunkSize=*/1);

  // Merge in canonical (job, benchmark) order: bit-identical to running
  // runSuite() per job serially.
  std::vector<SuiteResult> Results(Jobs.size());
  for (size_t J = 0; J < Jobs.size(); ++J) {
    SuiteResult &R = Results[J];
    R.PolicyLabel = Jobs[J].Spec.label();
    R.PressureFactor = Jobs[J].Config.PressureFactor;
    R.PerBenchmark.assign(Flat.begin() + J * NumBenchmarks,
                          Flat.begin() + (J + 1) * NumBenchmarks);
    for (const SimResult &B : R.PerBenchmark)
      R.Combined.merge(B.Stats);
    recordSuiteResult(Jobs[J].Config.Telemetry, R);
  }
  return Results;
}
