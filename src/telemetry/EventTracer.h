//===- telemetry/EventTracer.h - Bounded ring buffer of trace events -----===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe bounded ring buffer of TraceEvent records. The ring is
/// allocated once at construction; record() never allocates, and when the
/// buffer is full the oldest records are overwritten (the drop count is
/// kept so exporters can report truncation). Sequence numbers are assigned
/// under the lock, so the snapshot order is globally monotone even when
/// several cache managers share one tracer across threads.
///
/// Disabled telemetry never reaches this class at all: the hot paths test
/// a null TelemetrySink pointer and skip everything.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TELEMETRY_EVENTTRACER_H
#define CCSIM_TELEMETRY_EVENTTRACER_H

#include "support/ThreadSafety.h"
#include "telemetry/TraceEvent.h"

#include <unordered_map>
#include <vector>

namespace ccsim {
namespace telemetry {

class EventTracer {
public:
  /// \param Capacity ring size in records (> 0); the default comfortably
  /// holds the interesting window of a scaled benchmark run.
  explicit EventTracer(size_t Capacity = 1 << 16);

  /// Appends one record. Constant time, no allocation; overwrites the
  /// oldest record when full.
  void record(EventKind Kind, uint32_t Tenant, uint32_t Block, uint64_t A,
              uint64_t B, uint64_t Tick) CCSIM_EXCLUDES(Mu);

  /// Interns \p Text and returns its stable id (same text, same id).
  /// Not a hot-path operation: used for tenant names and phase marks.
  uint32_t internLabel(const std::string &Text) CCSIM_EXCLUDES(Mu);

  /// Text of label \p Id; empty string for unknown ids. The reference is
  /// only stable until the next clear(); callers copy before publishing.
  const std::string &labelText(uint32_t Id) const CCSIM_EXCLUDES(Mu);

  /// Copies the retained records oldest-first.
  std::vector<TraceEvent> snapshot() const CCSIM_EXCLUDES(Mu);

  /// Records ever passed to record(), including overwritten ones.
  uint64_t totalRecorded() const CCSIM_EXCLUDES(Mu);

  /// Records lost to ring overwrites.
  uint64_t droppedCount() const CCSIM_EXCLUDES(Mu);

  /// Per-kind tally over all records ever seen (survives overwrites).
  uint64_t kindCount(EventKind K) const CCSIM_EXCLUDES(Mu);

  size_t capacity() const CCSIM_EXCLUDES(Mu);

  /// Forgets all records and labels (capacity is kept).
  void clear() CCSIM_EXCLUDES(Mu);

private:
  mutable Mutex Mu;
  /// Fixed size; Next is the write cursor.
  std::vector<TraceEvent> Ring CCSIM_GUARDED_BY(Mu);
  size_t Next CCSIM_GUARDED_BY(Mu) = 0;
  uint64_t Recorded CCSIM_GUARDED_BY(Mu) = 0;
  uint64_t NextSeq CCSIM_GUARDED_BY(Mu) = 0;
  uint64_t KindCounts[NumEventKinds] CCSIM_GUARDED_BY(Mu) = {};
  std::vector<std::string> Labels CCSIM_GUARDED_BY(Mu);
  std::unordered_map<std::string, uint32_t> LabelIds CCSIM_GUARDED_BY(Mu);
  std::string EmptyLabel; ///< Immutable after construction.
};

} // namespace telemetry
} // namespace ccsim

#endif // CCSIM_TELEMETRY_EVENTTRACER_H
