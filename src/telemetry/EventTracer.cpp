//===- telemetry/EventTracer.cpp - Bounded ring buffer of trace events ----===//

#include "telemetry/EventTracer.h"

#include "support/Contracts.h"

using namespace ccsim;
using namespace ccsim::telemetry;

const char *ccsim::telemetry::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Miss:
    return "miss";
  case EventKind::Insert:
    return "insert";
  case EventKind::Evict:
    return "evict";
  case EventKind::EvictionBatch:
    return "eviction-batch";
  case EventKind::Unlink:
    return "unlink";
  case EventKind::Flush:
    return "flush";
  case EventKind::QuantumChange:
    return "quantum-change";
  case EventKind::TenantTag:
    return "tenant-tag";
  case EventKind::Mark:
    return "mark";
  case EventKind::JobState:
    return "job-state";
  case EventKind::Contention:
    return "contention";
  }
  return "unknown";
}

EventTracer::EventTracer(size_t Capacity) {
  CCSIM_REQUIRE(Capacity > 0, "tracer needs a positive capacity");
  MutexLock Lock(Mu); // No sharing yet; satisfies the capability checker.
  Ring.resize(Capacity);
}

void EventTracer::record(EventKind Kind, uint32_t Tenant, uint32_t Block,
                         uint64_t A, uint64_t B, uint64_t Tick) {
  MutexLock Lock(Mu);
  TraceEvent &E = Ring[Next];
  E.Seq = NextSeq++;
  E.Tick = Tick;
  E.A = A;
  E.B = B;
  E.Tenant = Tenant;
  E.Block = Block;
  E.Kind = Kind;
  Next = Next + 1 == Ring.size() ? 0 : Next + 1;
  ++Recorded;
  ++KindCounts[static_cast<size_t>(Kind)];
}

uint32_t EventTracer::internLabel(const std::string &Text) {
  MutexLock Lock(Mu);
  auto It = LabelIds.find(Text);
  if (It != LabelIds.end())
    return It->second;
  const uint32_t Id = static_cast<uint32_t>(Labels.size());
  Labels.push_back(Text);
  LabelIds.emplace(Text, Id);
  return Id;
}

const std::string &EventTracer::labelText(uint32_t Id) const {
  MutexLock Lock(Mu);
  return Id < Labels.size() ? Labels[Id] : EmptyLabel;
}

std::vector<TraceEvent> EventTracer::snapshot() const {
  MutexLock Lock(Mu);
  std::vector<TraceEvent> Out;
  const size_t Kept = Recorded < Ring.size() ? Recorded : Ring.size();
  Out.reserve(Kept);
  // Oldest record: the write cursor when the ring has wrapped, index 0
  // otherwise.
  const size_t Start = Recorded < Ring.size() ? 0 : Next;
  for (size_t I = 0; I < Kept; ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

uint64_t EventTracer::totalRecorded() const {
  MutexLock Lock(Mu);
  return Recorded;
}

uint64_t EventTracer::droppedCount() const {
  MutexLock Lock(Mu);
  return Recorded < Ring.size() ? 0 : Recorded - Ring.size();
}

size_t EventTracer::capacity() const {
  // Annotation-driven fix: this read used to bypass the lock. The ring
  // never resizes after construction, but the checker (rightly) has no
  // way to know that.
  MutexLock Lock(Mu);
  return Ring.size();
}

uint64_t EventTracer::kindCount(EventKind K) const {
  MutexLock Lock(Mu);
  return KindCounts[static_cast<size_t>(K)];
}

void EventTracer::clear() {
  MutexLock Lock(Mu);
  Next = 0;
  Recorded = 0;
  NextSeq = 0;
  for (uint64_t &C : KindCounts)
    C = 0;
  Labels.clear();
  LabelIds.clear();
}
