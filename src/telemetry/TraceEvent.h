//===- telemetry/TraceEvent.h - Typed trace event records ----------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed-size typed records the event tracer stores. One record is one
/// observable action somewhere in the stack: a cache miss, a committed
/// insert, an evicted victim, a whole eviction batch, a dangling-link
/// repair, a flush, a policy quantum change, a tenant registration, or a
/// free-form phase mark emitted by the drivers. Records are PODs so the
/// tracer's ring buffer never allocates while recording.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TELEMETRY_TRACEEVENT_H
#define CCSIM_TELEMETRY_TRACEEVENT_H

#include <cstdint>
#include <string>

namespace ccsim {
namespace telemetry {

/// What a record describes. The payload fields A/B are interpreted per
/// kind; see TraceEvent.
enum class EventKind : uint8_t {
  Miss,          ///< Cache miss. A = superblock bytes, B = 1 for a cold
                 ///< miss, 0 for a capacity re-miss.
  Insert,        ///< Superblock committed into the cache. A = bytes.
  Evict,         ///< One victim removed. A = victim bytes, B = dangling
                 ///< incoming links repaired for this victim.
  EvictionBatch, ///< Summary after a batch. A = victim count, B = victim
                 ///< bytes total (must equal the sum of the batch's Evict
                 ///< records).
  Unlink,        ///< Dangling-link repair for one victim. A = links.
  Flush,         ///< Whole-cache flush. A = resident blocks cleared,
                 ///< B = 1 when policy-preemptive, 0 otherwise.
  QuantumChange, ///< Eviction quantum changed. A = new bytes, B = old
                 ///< bytes (0 on the first observation).
  TenantTag,     ///< Tenant registered. A = interned label id.
  Mark,          ///< Driver phase mark. A = interned label id, B = 1 for
                 ///< begin, 0 for end.
  JobState,      ///< SimService job transition. Tenant = job id,
                 ///< A = interned job label id, B = numeric JobStatus.
  Contention,    ///< Shared-engine contention summary after a K-guest
                 ///< run. Tenant = guest threads, A = interned run label
                 ///< id, B = engine-lock stalls.
};

/// Number of distinct EventKind values (for per-kind tallies).
inline constexpr size_t NumEventKinds =
    static_cast<size_t>(EventKind::Contention) + 1;

/// Stable lower-case name of \p K ("miss", "eviction-batch", ...). Used
/// as the category string of every exporter.
const char *eventKindName(EventKind K);

/// Sentinel for records that do not concern a specific superblock.
inline constexpr uint32_t NoBlock = ~static_cast<uint32_t>(0);

/// One tracer record. Tick is logical time: the emitting cache manager's
/// access count when the record was made (drivers emitting Mark records
/// reuse the tick of the run they wrap). Seq is a tracer-global monotone
/// sequence number, so records from several managers interleave in a
/// well-defined order.
struct TraceEvent {
  uint64_t Seq = 0;
  uint64_t Tick = 0;
  uint64_t A = 0;
  uint64_t B = 0;
  uint32_t Tenant = 0;
  uint32_t Block = NoBlock;
  EventKind Kind = EventKind::Mark;
};

} // namespace telemetry
} // namespace ccsim

#endif // CCSIM_TELEMETRY_TRACEEVENT_H
