//===- telemetry/MetricsRegistry.cpp - Labeled metric instruments ---------===//

#include "telemetry/MetricsRegistry.h"

#include "support/Contracts.h"

#include <algorithm>

using namespace ccsim;
using namespace ccsim::telemetry;

static MetricLabels sortedLabels(MetricLabels Labels) {
  std::stable_sort(Labels.begin(), Labels.end(),
                   [](const auto &A, const auto &B) {
                     return A.first < B.first;
                   });
  return Labels;
}

std::string MetricsRegistry::canonicalKey(const std::string &Name,
                                          const MetricLabels &Labels) {
  const MetricLabels Sorted = sortedLabels(Labels);
  std::string Key = Name;
  // An unlabeled metric is just its name; braces only appear with labels,
  // so unlabeled series sort ahead of every labeled series of the same
  // name.
  if (Sorted.empty())
    return Key;
  Key.push_back('{');
  for (size_t I = 0; I < Sorted.size(); ++I) {
    if (I)
      Key.push_back(',');
    Key += Sorted[I].first;
    Key.push_back('=');
    Key += Sorted[I].second;
  }
  Key.push_back('}');
  return Key;
}

MetricsRegistry::Metric &
MetricsRegistry::fetch(MetricSample::Type Kind, const std::string &Name,
                       MetricLabels Labels, double BucketWidth,
                       size_t NumBuckets) {
  MetricLabels Sorted = sortedLabels(std::move(Labels));
  const std::string Key = canonicalKey(Name, Sorted);
  MutexLock Lock(Mu);
  auto It = Metrics.find(Key);
  if (It != Metrics.end()) {
    CCSIM_REQUIRE(It->second->Kind == Kind,
                  "metric '%s' re-registered as a different type",
                  Key.c_str());
    return *It->second;
  }
  auto M = std::make_unique<Metric>();
  M->Kind = Kind;
  M->Name = Name;
  M->Labels = std::move(Sorted);
  if (Kind == MetricSample::Type::Histogram)
    M->H = std::make_unique<HistogramMetric>(BucketWidth, NumBuckets);
  Metric &Ref = *M;
  Metrics.emplace(Key, std::move(M));
  return Ref;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  MetricLabels Labels) {
  return fetch(MetricSample::Type::Counter, Name, std::move(Labels), 0, 0).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name, MetricLabels Labels) {
  return fetch(MetricSample::Type::Gauge, Name, std::move(Labels), 0, 0).G;
}

HistogramMetric &MetricsRegistry::histogram(const std::string &Name,
                                            double BucketWidth,
                                            size_t NumBuckets,
                                            MetricLabels Labels) {
  return *fetch(MetricSample::Type::Histogram, Name, std::move(Labels),
                BucketWidth, NumBuckets)
              .H;
}

const MetricsRegistry::Metric *
MetricsRegistry::find(const std::string &Name,
                      const MetricLabels &Labels) const {
  const std::string Key = canonicalKey(Name, Labels);
  MutexLock Lock(Mu);
  auto It = Metrics.find(Key);
  return It == Metrics.end() ? nullptr : It->second.get();
}

uint64_t MetricsRegistry::counterValue(const std::string &Name,
                                       const MetricLabels &Labels) const {
  const Metric *M = find(Name, Labels);
  return M && M->Kind == MetricSample::Type::Counter ? M->C.value() : 0;
}

double MetricsRegistry::gaugeValue(const std::string &Name,
                                   const MetricLabels &Labels) const {
  const Metric *M = find(Name, Labels);
  return M && M->Kind == MetricSample::Type::Gauge ? M->G.value() : 0.0;
}

bool MetricsRegistry::has(const std::string &Name,
                          const MetricLabels &Labels) const {
  return find(Name, Labels) != nullptr;
}

size_t MetricsRegistry::size() const {
  MutexLock Lock(Mu);
  return Metrics.size();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  MutexLock Lock(Mu);
  std::vector<MetricSample> Out;
  Out.reserve(Metrics.size());
  // std::map iterates in key order: the canonical, thread-independent
  // order exporters rely on.
  for (const auto &[Key, M] : Metrics) {
    MetricSample S;
    S.Kind = M->Kind;
    S.Name = M->Name;
    S.Labels = M->Labels;
    switch (M->Kind) {
    case MetricSample::Type::Counter:
      S.CounterValue = M->C.value();
      break;
    case MetricSample::Type::Gauge:
      S.GaugeValue = M->G.value();
      break;
    case MetricSample::Type::Histogram: {
      const Histogram H = M->H->snapshot();
      S.HistogramBucketWidth = H.numBuckets() ? H.bucketHigh(0) : 0.0;
      S.HistogramCounts.reserve(H.numBuckets() + 1);
      for (size_t I = 0; I < H.numBuckets(); ++I)
        S.HistogramCounts.push_back(H.bucketCount(I));
      S.HistogramCounts.push_back(H.overflowCount());
      S.HistogramTotal = H.totalCount();
      break;
    }
    }
    Out.push_back(std::move(S));
  }
  return Out;
}
