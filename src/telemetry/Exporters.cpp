//===- telemetry/Exporters.cpp - Trace and metrics export formats ---------===//

#include "telemetry/Exporters.h"

#include "support/Csv.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>

using namespace ccsim;
using namespace ccsim::telemetry;

std::optional<TraceFormat>
ccsim::telemetry::parseTraceFormat(const std::string &Text) {
  if (Text == "chrome")
    return TraceFormat::Chrome;
  if (Text == "jsonl")
    return TraceFormat::JsonLines;
  if (Text == "csv")
    return TraceFormat::Csv;
  return std::nullopt;
}

std::string ccsim::telemetry::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  return Out;
}

namespace {

/// Whether records of kind \p K carry an interned label id in A.
bool hasLabel(EventKind K) {
  return K == EventKind::TenantTag || K == EventKind::Mark ||
         K == EventKind::JobState || K == EventKind::Contention;
}

std::string formatDouble(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  return Buf;
}

bool writeStringToFile(const std::string &Text, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(Text.data(), static_cast<std::streamsize>(Text.size()));
  return static_cast<bool>(Out);
}

std::string labelsJson(const MetricLabels &Labels) {
  std::string Out = "{";
  for (size_t I = 0; I < Labels.size(); ++I) {
    if (I)
      Out.push_back(',');
    Out += "\"" + jsonEscape(Labels[I].first) + "\":\"" +
           jsonEscape(Labels[I].second) + "\"";
  }
  Out.push_back('}');
  return Out;
}

std::string labelsText(const MetricLabels &Labels) {
  std::string Out;
  for (size_t I = 0; I < Labels.size(); ++I) {
    if (I)
      Out.push_back(',');
    Out += Labels[I].first + "=" + Labels[I].second;
  }
  return Out;
}

} // namespace

std::string ccsim::telemetry::renderTraceJsonLines(const EventTracer &Tracer) {
  std::string Out;
  for (const TraceEvent &E : Tracer.snapshot()) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"seq\":%" PRIu64 ",\"tick\":%" PRIu64
                  ",\"kind\":\"%s\",\"tenant\":%u,\"block\":%" PRId64
                  ",\"a\":%" PRIu64 ",\"b\":%" PRIu64,
                  E.Seq, E.Tick, eventKindName(E.Kind), E.Tenant,
                  E.Block == NoBlock ? int64_t(-1) : int64_t(E.Block), E.A,
                  E.B);
    Out += Buf;
    if (hasLabel(E.Kind))
      Out += ",\"label\":\"" +
             jsonEscape(Tracer.labelText(static_cast<uint32_t>(E.A))) + "\"";
    Out += "}\n";
  }
  return Out;
}

std::string ccsim::telemetry::renderTraceCsv(const EventTracer &Tracer) {
  CsvWriter Csv({"seq", "tick", "kind", "tenant", "block", "a", "b",
                 "label"});
  for (const TraceEvent &E : Tracer.snapshot()) {
    Csv.beginRow();
    Csv.cell(E.Seq);
    Csv.cell(E.Tick);
    Csv.cell(std::string(eventKindName(E.Kind)));
    Csv.cell(static_cast<uint64_t>(E.Tenant));
    Csv.cell(E.Block == NoBlock ? std::string("-")
                                : std::to_string(E.Block));
    Csv.cell(E.A);
    Csv.cell(E.B);
    Csv.cell(hasLabel(E.Kind)
                 ? Tracer.labelText(static_cast<uint32_t>(E.A))
                 : std::string());
  }
  return Csv.render();
}

std::string ccsim::telemetry::renderChromeTrace(const EventTracer &Tracer) {
  // The trace_event JSON object format: instant events ("ph":"i") on one
  // process, with the tenant as the thread lane and the logical tick as
  // the microsecond clock. chrome://tracing and Perfetto open this
  // directly.
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Tracer.snapshot()) {
    if (!First)
      Out += ",\n";
    First = false;
    const char *Kind = eventKindName(E.Kind);
    std::string Name = Kind;
    if (hasLabel(E.Kind))
      Name = jsonEscape(Tracer.labelText(static_cast<uint32_t>(E.A)));
    char Buf[320];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                  "\"ts\":%" PRIu64 ",\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"seq\":%" PRIu64 ",\"block\":%" PRId64
                  ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                  Name.c_str(), Kind, E.Tick, E.Tenant, E.Seq,
                  E.Block == NoBlock ? int64_t(-1) : int64_t(E.Block), E.A,
                  E.B);
    Out += Buf;
  }
  char Tail[128];
  std::snprintf(Tail, sizeof(Tail),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64 "}}",
                Tracer.totalRecorded(), Tracer.droppedCount());
  Out += Tail;
  Out.push_back('\n');
  return Out;
}

bool ccsim::telemetry::writeTraceFile(const EventTracer &Tracer,
                                      const std::string &Path,
                                      TraceFormat Format) {
  switch (Format) {
  case TraceFormat::Chrome:
    return writeStringToFile(renderChromeTrace(Tracer), Path);
  case TraceFormat::JsonLines:
    return writeStringToFile(renderTraceJsonLines(Tracer), Path);
  case TraceFormat::Csv:
    return writeStringToFile(renderTraceCsv(Tracer), Path);
  }
  return false;
}

std::string
ccsim::telemetry::renderMetricsJsonLines(const MetricsRegistry &Metrics) {
  std::string Out;
  for (const MetricSample &S : Metrics.snapshot()) {
    Out += "{\"name\":\"" + jsonEscape(S.Name) + "\",\"labels\":" +
           labelsJson(S.Labels);
    switch (S.Kind) {
    case MetricSample::Type::Counter:
      Out += ",\"type\":\"counter\",\"value\":" +
             std::to_string(S.CounterValue);
      break;
    case MetricSample::Type::Gauge:
      Out += ",\"type\":\"gauge\",\"value\":" + formatDouble(S.GaugeValue);
      break;
    case MetricSample::Type::Histogram: {
      Out += ",\"type\":\"histogram\",\"bucket_width\":" +
             formatDouble(S.HistogramBucketWidth) + ",\"counts\":[";
      for (size_t I = 0; I < S.HistogramCounts.size(); ++I) {
        if (I)
          Out.push_back(',');
        Out += std::to_string(S.HistogramCounts[I]);
      }
      Out += "],\"total\":" + std::to_string(S.HistogramTotal);
      break;
    }
    }
    Out += "}\n";
  }
  return Out;
}

std::string
ccsim::telemetry::renderMetricsCsv(const MetricsRegistry &Metrics) {
  CsvWriter Csv({"name", "labels", "type", "value"});
  for (const MetricSample &S : Metrics.snapshot()) {
    Csv.beginRow();
    Csv.cell(S.Name);
    Csv.cell(labelsText(S.Labels));
    switch (S.Kind) {
    case MetricSample::Type::Counter:
      Csv.cell(std::string("counter"));
      Csv.cell(S.CounterValue);
      break;
    case MetricSample::Type::Gauge:
      Csv.cell(std::string("gauge"));
      Csv.cell(formatDouble(S.GaugeValue));
      break;
    case MetricSample::Type::Histogram:
      Csv.cell(std::string("histogram"));
      Csv.cell(S.HistogramTotal);
      break;
    }
  }
  return Csv.render();
}

bool ccsim::telemetry::writeMetricsFile(const MetricsRegistry &Metrics,
                                        const std::string &Path) {
  const bool IsCsv =
      Path.size() >= 4 && Path.compare(Path.size() - 4, 4, ".csv") == 0;
  return writeStringToFile(IsCsv ? renderMetricsCsv(Metrics)
                                 : renderMetricsJsonLines(Metrics),
                           Path);
}

//===----------------------------------------------------------------------===//
// Chrome trace validation: a minimal recursive-descent JSON parser that
// counts "cat" string values as it goes.
//===----------------------------------------------------------------------===//

namespace {

class JsonValidator {
public:
  JsonValidator(const std::string &Text,
                std::map<std::string, size_t> *Categories)
      : P(Text.data()), End(Text.data() + Text.size()),
        Categories(Categories) {}

  bool run(std::string *Error) {
    skipWs();
    bool SawTraceEvents = false;
    if (!parseTopLevel(SawTraceEvents)) {
      if (Error)
        *Error = Err.empty() ? "malformed JSON" : Err;
      return false;
    }
    skipWs();
    if (P != End) {
      if (Error)
        *Error = "trailing garbage after JSON document";
      return false;
    }
    if (!SawTraceEvents) {
      if (Error)
        *Error = "top-level object has no \"traceEvents\" array";
      return false;
    }
    return true;
  }

private:
  const char *P;
  const char *End;
  std::map<std::string, size_t> *Categories;
  std::string Err;

  void skipWs() {
    while (P != End && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }

  bool fail(const char *Message) {
    if (Err.empty())
      Err = Message;
    return false;
  }

  bool consume(char C, const char *Message) {
    if (P == End || *P != C)
      return fail(Message);
    ++P;
    return true;
  }

  /// The Chrome trace container itself: an object that must hold a
  /// "traceEvents" key mapped to an array.
  bool parseTopLevel(bool &SawTraceEvents) {
    if (P == End || *P != '{')
      return fail("expected a top-level object");
    return parseObject(&SawTraceEvents);
  }

  bool parseValue() {
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case '{':
      return parseObject(nullptr);
    case '[':
      return parseArray();
    case '"': {
      std::string S;
      return parseString(S);
    }
    case 't':
      return parseLiteral("true");
    case 'f':
      return parseLiteral("false");
    case 'n':
      return parseLiteral("null");
    default:
      return parseNumber();
    }
  }

  bool parseObject(bool *SawTraceEvents) {
    if (!consume('{', "expected '{'"))
      return false;
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':', "expected ':' after object key"))
        return false;
      skipWs();
      if (Key == "cat" && Categories && P != End && *P == '"') {
        std::string Cat;
        if (!parseString(Cat))
          return false;
        ++(*Categories)[Cat];
      } else {
        const bool IsTraceEvents = Key == "traceEvents";
        if (IsTraceEvents && SawTraceEvents) {
          if (P == End || *P != '[')
            return fail("\"traceEvents\" must be an array");
          *SawTraceEvents = true;
        }
        if (!parseValue())
          return false;
      }
      skipWs();
      if (P != End && *P == ',') {
        ++P;
        continue;
      }
      return consume('}', "expected ',' or '}' in object");
    }
  }

  bool parseArray() {
    if (!consume('[', "expected '['"))
      return false;
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (P != End && *P == ',') {
        ++P;
        continue;
      }
      return consume(']', "expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "expected '\"'"))
      return false;
    Out.clear();
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return fail("unterminated escape");
        switch (*P) {
        case '"':
        case '\\':
        case '/':
          Out.push_back(*P);
          break;
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          Out.push_back(' ');
          break;
        case 'u':
          for (int I = 0; I < 4; ++I) {
            ++P;
            if (P == End ||
                !std::isxdigit(static_cast<unsigned char>(*P)))
              return fail("bad \\u escape");
          }
          Out.push_back('?');
          break;
        default:
          return fail("unknown escape");
        }
        ++P;
      } else if (static_cast<unsigned char>(*P) < 0x20) {
        return fail("raw control character in string");
      } else {
        Out.push_back(*P);
        ++P;
      }
    }
    return consume('"', "unterminated string");
  }

  bool parseNumber() {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    while (P != End &&
           (std::isdigit(static_cast<unsigned char>(*P)) || *P == '.' ||
            *P == 'e' || *P == 'E' || *P == '+' || *P == '-'))
      ++P;
    if (P == Start || (P == Start + 1 && *Start == '-'))
      return fail("expected a number");
    return true;
  }

  bool parseLiteral(const char *Word) {
    for (const char *W = Word; *W; ++W) {
      if (P == End || *P != *W)
        return fail("bad literal");
      ++P;
    }
    return true;
  }
};

} // namespace

bool ccsim::telemetry::validateChromeTrace(
    const std::string &Json, std::map<std::string, size_t> *CategoryCounts,
    std::string *Error) {
  std::map<std::string, size_t> Local;
  JsonValidator V(Json, CategoryCounts ? CategoryCounts : &Local);
  if (CategoryCounts)
    CategoryCounts->clear();
  return V.run(Error);
}
