//===- telemetry/Exporters.h - Trace and metrics export formats ----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes tracer snapshots and metric registries:
///
///   JSON-lines   one JSON object per record/metric; jq/grep friendly,
///   CSV          RFC-4180 via support/Csv; spreadsheet friendly,
///   Chrome       the `trace_event` JSON understood by chrome://tracing
///                and Perfetto (https://ui.perfetto.dev), using the
///                logical tick as the microsecond timestamp and the
///                tenant as the thread lane.
///
/// Also provides a self-contained Chrome-trace validator (a minimal JSON
/// parser) so tests and `ccsim_cli --validate` can confirm an emitted
/// trace is well-formed and count events per category without external
/// tooling.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TELEMETRY_EXPORTERS_H
#define CCSIM_TELEMETRY_EXPORTERS_H

#include "telemetry/EventTracer.h"
#include "telemetry/MetricsRegistry.h"

#include <map>
#include <optional>
#include <string>

namespace ccsim {
namespace telemetry {

/// Event-trace serialization formats.
enum class TraceFormat { Chrome, JsonLines, Csv };

/// Parses "chrome" | "jsonl" | "csv" (case-sensitive).
std::optional<TraceFormat> parseTraceFormat(const std::string &Text);

/// Escapes \p Text for inclusion inside a JSON string literal.
std::string jsonEscape(const std::string &Text);

// Event-trace renderers.
std::string renderTraceJsonLines(const EventTracer &Tracer);
std::string renderTraceCsv(const EventTracer &Tracer);
std::string renderChromeTrace(const EventTracer &Tracer);

/// Renders \p Tracer as \p Format and writes it to \p Path. Returns false
/// on I/O failure.
bool writeTraceFile(const EventTracer &Tracer, const std::string &Path,
                    TraceFormat Format);

// Metrics renderers (canonical key order; byte-identical for identical
// registry contents).
std::string renderMetricsJsonLines(const MetricsRegistry &Metrics);
std::string renderMetricsCsv(const MetricsRegistry &Metrics);

/// Writes the registry to \p Path, as CSV when the path ends in ".csv"
/// and JSON-lines otherwise. Returns false on I/O failure.
bool writeMetricsFile(const MetricsRegistry &Metrics,
                      const std::string &Path);

/// Validates that \p Json is a well-formed Chrome trace: syntactically
/// valid JSON whose top level is an object with a "traceEvents" array.
/// On success fills \p CategoryCounts (if non-null) with the number of
/// events per "cat" value. On failure returns false and sets \p Error
/// (if non-null).
bool validateChromeTrace(const std::string &Json,
                         std::map<std::string, size_t> *CategoryCounts,
                         std::string *Error);

} // namespace telemetry
} // namespace ccsim

#endif // CCSIM_TELEMETRY_EXPORTERS_H
