//===- telemetry/Telemetry.h - Telemetry sink facade ---------------------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one object drivers thread through the stack: an event tracer plus a
/// metrics registry. Every configuration struct that can emit telemetry
/// (CacheManagerConfig, SimConfig, TenantRunHooks) carries a
/// `TelemetrySink *` defaulting to null; a null sink is the disabled fast
/// path and costs one predictable branch per emission site, with no
/// allocation and no locking.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TELEMETRY_TELEMETRY_H
#define CCSIM_TELEMETRY_TELEMETRY_H

#include "telemetry/EventTracer.h"
#include "telemetry/MetricsRegistry.h"

namespace ccsim {
namespace telemetry {

/// Shared observability endpoint. Thread-safe: one sink may serve many
/// cache managers across sweep worker threads.
struct TelemetrySink {
  EventTracer Tracer;
  MetricsRegistry Metrics;

  explicit TelemetrySink(size_t RingCapacity = 1 << 16)
      : Tracer(RingCapacity) {}
};

} // namespace telemetry
} // namespace ccsim

#endif // CCSIM_TELEMETRY_TELEMETRY_H
