//===- telemetry/MetricsRegistry.h - Labeled counters/gauges/histograms --===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named metrics with label sets, in the style of a
/// Prometheus client: counters (monotone integers), gauges (last-written
/// doubles), and histograms (fixed-width buckets, reusing
/// support/Histogram). Metric identity is the (name, sorted labels) pair;
/// asking for the same pair twice returns the same instrument.
///
/// Determinism: instruments are stored under their canonical key and
/// snapshots iterate in key order, so two runs that record the same values
/// render byte-identical exports regardless of creation or thread order.
/// Counter increments are commutative, which is what makes suite metrics
/// identical between serial and parallel sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TELEMETRY_METRICSREGISTRY_H
#define CCSIM_TELEMETRY_METRICSREGISTRY_H

#include "support/Histogram.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ccsim {
namespace telemetry {

/// Label set of one metric, e.g. {{"benchmark","gzip"},{"policy","FIFO"}}.
/// Stored sorted by key; duplicate keys keep the last value.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone integer counter. add() is lock-free and safe to call from the
/// sweep worker threads.
class Counter {
public:
  void add(uint64_t Delta) { V.fetch_add(Delta, std::memory_order_relaxed); }
  void increment() { add(1); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written double (overheads, peaks, rates).
class Gauge {
public:
  void set(double Value) { V.store(Value, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Fixed-width bucket histogram instrument (a locked support/Histogram).
class HistogramMetric {
public:
  HistogramMetric(double BucketWidth, size_t NumBuckets)
      : H(BucketWidth, NumBuckets) {}

  void observe(double Sample) CCSIM_EXCLUDES(Mu) {
    MutexLock Lock(Mu);
    H.add(Sample);
  }

  /// Copies the underlying histogram (snapshot for exporters/tests).
  Histogram snapshot() const CCSIM_EXCLUDES(Mu) {
    MutexLock Lock(Mu);
    return H;
  }

private:
  mutable Mutex Mu;
  Histogram H CCSIM_GUARDED_BY(Mu);
};

/// Read-only view of one instrument, in canonical key order.
struct MetricSample {
  enum class Type { Counter, Gauge, Histogram };

  Type Kind = Type::Counter;
  std::string Name;
  MetricLabels Labels; // Sorted by key.
  uint64_t CounterValue = 0;
  double GaugeValue = 0.0;
  double HistogramBucketWidth = 0.0;
  std::vector<uint64_t> HistogramCounts; // Regular buckets + overflow.
  uint64_t HistogramTotal = 0;
};

class MetricsRegistry {
public:
  /// Fetches (creating on first use) the instrument for (Name, Labels).
  /// References stay valid for the registry's lifetime.
  Counter &counter(const std::string &Name, MetricLabels Labels = {})
      CCSIM_EXCLUDES(Mu);
  Gauge &gauge(const std::string &Name, MetricLabels Labels = {})
      CCSIM_EXCLUDES(Mu);
  HistogramMetric &histogram(const std::string &Name, double BucketWidth,
                             size_t NumBuckets, MetricLabels Labels = {})
      CCSIM_EXCLUDES(Mu);

  /// Current value of a counter; 0 when it was never created.
  uint64_t counterValue(const std::string &Name,
                        const MetricLabels &Labels = {}) const
      CCSIM_EXCLUDES(Mu);

  /// Current value of a gauge; 0.0 when it was never created.
  double gaugeValue(const std::string &Name,
                    const MetricLabels &Labels = {}) const CCSIM_EXCLUDES(Mu);

  /// Whether any instrument exists under (Name, Labels).
  bool has(const std::string &Name, const MetricLabels &Labels = {}) const
      CCSIM_EXCLUDES(Mu);

  /// Copies every instrument in canonical key order.
  std::vector<MetricSample> snapshot() const CCSIM_EXCLUDES(Mu);

  size_t size() const CCSIM_EXCLUDES(Mu);

  /// Canonical key: name{k1=v1,k2=v2} with labels sorted by key.
  static std::string canonicalKey(const std::string &Name,
                                  const MetricLabels &Labels);

private:
  struct Metric {
    MetricSample::Type Kind;
    std::string Name;
    MetricLabels Labels;
    Counter C;
    Gauge G;
    std::unique_ptr<HistogramMetric> H;
  };

  mutable Mutex Mu;
  /// Instrument objects are never destroyed while the registry lives, so
  /// handing out Counter/Gauge references is safe; the map itself (and
  /// the Kind/Name/Labels identity of each entry) is guarded.
  std::map<std::string, std::unique_ptr<Metric>> Metrics CCSIM_GUARDED_BY(Mu);

  Metric &fetch(MetricSample::Type Kind, const std::string &Name,
                MetricLabels Labels, double BucketWidth, size_t NumBuckets)
      CCSIM_EXCLUDES(Mu);
  const Metric *find(const std::string &Name,
                     const MetricLabels &Labels) const CCSIM_EXCLUDES(Mu);
};

} // namespace telemetry
} // namespace ccsim

#endif // CCSIM_TELEMETRY_METRICSREGISTRY_H
