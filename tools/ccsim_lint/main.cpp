//===- tools/ccsim_lint/main.cpp - Lint CLI driver ------------------------===//
//
// ccsim_lint — project-rule linter for the ccsim source tree.
//
// Usage:
//   ccsim_lint --compile-commands=build/compile_commands.json
//   ccsim_lint --dir=src --dir=tools
//   ccsim_lint [--only=rule.id] file.cpp ...
//   ccsim_lint --list-rules
//
// Exit codes follow the repo CLI convention: 0 = clean, 1 = violations
// found, 2 = usage or IO error.
//
//===----------------------------------------------------------------------===//

#include "Linter.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ccsim::lint;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--only=RULE] (--compile-commands=FILE | --dir=DIR... "
      "| FILE...)\n"
      "       %s --list-rules\n"
      "\n"
      "Lints ccsim sources against the project determinism/correctness\n"
      "rules. Violations go to stdout as 'file:line: [rule.id] message'.\n"
      "Suppress a finding with:\n"
      "  // ccsim-lint: allow(rule.id) -- reason the code is sound\n",
      Argv0, Argv0);
  return 2;
}

bool consumeFlag(const std::string &Arg, const char *Name,
                 std::string &Value) {
  const std::string Prefix = std::string(Name) + "=";
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Value = Arg.substr(Prefix.size());
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  LintOptions Options;
  std::vector<std::string> Files;
  bool ListRules = false;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    std::string Value;
    if (Arg == "--list-rules") {
      ListRules = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (consumeFlag(Arg, "--only", Value)) {
      if (!isKnownRule(Value)) {
        std::fprintf(stderr, "ccsim_lint: unknown rule '%s'\n",
                     Value.c_str());
        return 2;
      }
      Options.OnlyRule = Value;
    } else if (consumeFlag(Arg, "--compile-commands", Value)) {
      std::string Error;
      std::vector<std::string> FromDb =
          collectFromCompileCommands(Value, Error);
      if (!Error.empty()) {
        std::fprintf(stderr, "ccsim_lint: %s\n", Error.c_str());
        return 2;
      }
      Files.insert(Files.end(), FromDb.begin(), FromDb.end());
    } else if (consumeFlag(Arg, "--dir", Value)) {
      std::vector<std::string> FromDir = collectFromDirectory(Value);
      if (FromDir.empty()) {
        std::fprintf(stderr, "ccsim_lint: no sources under '%s'\n",
                     Value.c_str());
        return 2;
      }
      Files.insert(Files.end(), FromDir.begin(), FromDir.end());
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "ccsim_lint: unknown flag '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Files.push_back(Arg);
    }
  }

  if (ListRules) {
    for (const Rule &R : ruleCatalog())
      std::printf("%-34s %s\n", R.Id.c_str(), R.Summary.c_str());
    return 0;
  }

  if (Files.empty())
    return usage(Argv[0]);

  const std::vector<Violation> Violations = lintFiles(Files, Options);
  for (const Violation &V : Violations)
    std::printf("%s\n", renderViolation(V).c_str());
  if (!Violations.empty()) {
    std::fprintf(stderr, "ccsim_lint: %zu violation%s\n", Violations.size(),
                 Violations.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
