//===- tools/ccsim_lint/Linter.h - Project determinism/correctness lint --===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-time mirror of the runtime invariant auditor (src/check):
/// where the auditor proves the cache *structures* consistent after every
/// mutation, ccsim_lint proves the *source tree* obeys the project rules
/// that keep every replay backend byte-identical — rules clang-tidy has
/// no checks for. Each rule has a stable dotted id in the auditor's
/// naming convention, and every violation carries file:line, the id, and
/// a fix hint.
///
/// Rule catalog (see ruleCatalog()):
///   determinism.unordered-iteration  no iterating std::unordered_map/set
///                                    in src/ — hash order leaks into
///                                    reports/exports/audit output
///   determinism.wall-clock           no rand()/random_device/time()/
///                                    clock reads in src/ outside the
///                                    deadline machinery allowlist
///   contracts.raw-assert             no raw assert(); use CCSIM_ASSERT /
///                                    CCSIM_REQUIRE (support/Contracts.h)
///   locking.engine-raw-mutex         no raw std:: mutex types in
///                                    src/core or src/concurrent; use the
///                                    annotated ccsim::Mutex wrappers
///   locking.naked-lock               no manual mutex .lock()/.unlock();
///                                    use ccsim::MutexLock RAII
///   exceptions.swallowed-catch-all   no catch (...) that swallows the
///                                    exception without rethrow/capture
///   lint.suppression-without-reason  every suppression comment must say
///                                    why it is sound
///   tenancy.legacy-config            no new MultiTenantConfig uses in
///                                    src/, examples/, or bench/; build a
///                                    TenancyPolicy (+ TenantRunHooks)
///
/// Suppressions: a comment naming one or more rule ids, e.g.
///   // ccsim-lint: allow(contracts.raw-assert) -- third-party macro
/// silences the named rules on its own line (when it trails code) or on
/// the next line that contains code (when it stands alone). The reason
/// after "--" is mandatory; an allow() without one is itself a violation.
///
/// The scanner is token-level, not a full parser: comments and string
/// literals are blanked before rules run, so quoted text never triggers
/// a rule, and declarations are recognized lexically. That is exactly
/// the right fidelity for these rules — each one keys off a token the
/// project bans outright, with the allow() comment as the narrow,
/// audited escape hatch.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_TOOLS_LINTER_H
#define CCSIM_TOOLS_LINTER_H

#include <string>
#include <vector>

namespace ccsim::lint {

/// One lint rule: stable dotted id plus the hint printed with every
/// violation.
struct Rule {
  std::string Id;          ///< Stable dotted id, e.g. "contracts.raw-assert".
  std::string Summary;     ///< One-line description for --list-rules.
  std::string Hint;        ///< Fix hint appended to each violation.
};

/// Every rule the linter enforces, in stable (alphabetical) order.
const std::vector<Rule> &ruleCatalog();

/// True when \p Id names a rule in ruleCatalog().
bool isKnownRule(const std::string &Id);

/// One finding. Line numbers are 1-based.
struct Violation {
  std::string File;
  size_t Line = 0;
  std::string RuleId;
  std::string Message;
  std::string Hint;
};

/// Scanner configuration.
struct LintOptions {
  /// Restrict to one rule id (empty = all rules).
  std::string OnlyRule;

  /// Path fragments (substring match on the normalized path) exempt from
  /// the determinism.wall-clock rule. Defaults to the deadline machinery
  /// that deliberately reads the clock.
  std::vector<std::string> WallClockAllowlist = {
      "src/service/SimService.cpp",
      "src/service/Job.h",
      "src/support/Cancellation.h",
  };

  /// Path fragments exempt from the tenancy.legacy-config rule. Defaults
  /// to the one place the deprecated MultiTenantConfig shim is allowed to
  /// live: its own definition next to MultiTenantSimulator.
  std::vector<std::string> LegacyTenancyAllowlist = {
      "src/concurrent/MultiTenantSimulator",
  };
};

/// Lints one in-memory source. \p Path decides rule scoping (src/ vs
/// tests/ etc.) and is echoed into each violation.
std::vector<Violation> lintSource(const std::string &Path,
                                  const std::string &Text,
                                  const LintOptions &Options = {});

/// Reads and lints one file. IO failures surface as a violation with
/// rule id "lint.io-error" so a vanished file can never pass silently.
std::vector<Violation> lintFile(const std::string &Path,
                                const LintOptions &Options = {});

/// Lints every file, deduplicating the list first (same order-stable
/// normalized path lints once). Results are sorted file-then-line.
std::vector<Violation> lintFiles(const std::vector<std::string> &Paths,
                                 const LintOptions &Options = {});

/// Extracts the "file" entry of every translation unit in a CMake
/// compile_commands.json (relative entries are resolved against their
/// "directory"). Returns an empty list and sets \p Error on parse
/// failure.
std::vector<std::string> collectFromCompileCommands(const std::string &Path,
                                                    std::string &Error);

/// Recursively collects *.h / *.cpp under \p Dir, sorted.
std::vector<std::string> collectFromDirectory(const std::string &Dir);

/// Renders one violation as "file:line: [rule.id] message (hint: ...)".
std::string renderViolation(const Violation &V);

} // namespace ccsim::lint

#endif // CCSIM_TOOLS_LINTER_H
