//===- tools/ccsim_lint/Linter.cpp - Project determinism lint -------------===//

#include "Linter.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace ccsim::lint;

//===----------------------------------------------------------------------===//
// Rule catalog
//===----------------------------------------------------------------------===//

const std::vector<Rule> &ccsim::lint::ruleCatalog() {
  static const std::vector<Rule> Catalog = {
      {"contracts.raw-assert",
       "raw assert() call; the project builds with assertions armed in "
       "Release and wants formatted diagnostics",
       "use CCSIM_ASSERT or CCSIM_REQUIRE from support/Contracts.h"},
      {"determinism.unordered-iteration",
       "iteration over std::unordered_map/set in src/; hash order leaks "
       "into reports, exports, and audit output",
       "iterate a sorted copy, or collect-then-sort before emitting "
       "(see telemetry's canonical-order contract)"},
      {"determinism.wall-clock",
       "clock or PRNG read in src/ outside the deadline machinery; "
       "wall-clock state breaks replay bit-identity",
       "thread timestamps through the config, use support/Random.h for "
       "seeded randomness, or route deadlines via support/Cancellation.h"},
      {"exceptions.swallowed-catch-all",
       "catch (...) that neither rethrows nor captures the exception; a "
       "worker swallowing failures turns them into silent wrong results",
       "capture std::current_exception() for the controller thread, "
       "rethrow, or narrow the catch to the types you can handle"},
      {"lint.suppression-without-reason",
       "ccsim-lint allow() comment with no reason text",
       "append '-- <why this is sound>' to the suppression comment"},
      {"lint.unknown-rule",
       "ccsim-lint allow() comment naming a rule id that does not exist",
       "use an id from ccsim_lint --list-rules"},
      {"locking.engine-raw-mutex",
       "raw std:: mutex type in src/core or src/concurrent; locks in the "
       "thread-shared engine must be the annotated ccsim wrappers so the "
       "Clang thread-safety analysis sees every acquisition",
       "declare ccsim::Mutex / ccsim::SharedMutex from "
       "support/ThreadSafety.h instead of the std:: type"},
      {"locking.naked-lock",
       "manual mutex lock()/unlock() call; an early return or exception "
       "between the pair deadlocks the next acquirer",
       "use ccsim::MutexLock from support/ThreadSafety.h (RAII, visible "
       "to the Clang thread-safety analysis)"},
      {"tenancy.legacy-config",
       "use of the deprecated MultiTenantConfig bundle outside its shim; "
       "new code must configure tenancy through the unified policy type",
       "build a TenancyPolicy (and TenantRunHooks for telemetry/audit/"
       "cancellation) from concurrent/TenancyPolicy.h instead"},
  };
  return Catalog;
}

bool ccsim::lint::isKnownRule(const std::string &Id) {
  for (const Rule &R : ruleCatalog())
    if (R.Id == Id)
      return true;
  return false;
}

static const Rule &ruleById(const std::string &Id) {
  for (const Rule &R : ruleCatalog())
    if (R.Id == Id)
      return R;
  static const Rule Unknown = {"lint.internal", "", ""};
  return Unknown;
}

//===----------------------------------------------------------------------===//
// Lexical helpers
//===----------------------------------------------------------------------===//

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// One comment in the original text (raw content without the delimiters).
struct Comment {
  size_t Line = 0;      ///< 1-based line of the comment's first character.
  size_t Column = 0;    ///< 0-based column of the opening delimiter.
  std::string Text;     ///< Comment body, newlines preserved.
  size_t EndLine = 0;   ///< 1-based line of the comment's last character.
};

/// The original text with comments, string literals, and char literals
/// replaced by spaces (newlines kept), so token scans never fire inside
/// quoted or commented text.
struct CodeView {
  std::string Code;
  std::vector<Comment> Comments;
};

CodeView stripToCode(const std::string &Text) {
  CodeView View;
  View.Code = Text;
  std::string &Code = View.Code;
  size_t Line = 1;
  size_t LineStart = 0;
  size_t I = 0;
  const size_t N = Text.size();
  auto blank = [&](size_t Pos) {
    if (Code[Pos] != '\n')
      Code[Pos] = ' ';
  };
  while (I < N) {
    const char C = Text[I];
    if (C == '\n') {
      ++Line;
      LineStart = I + 1;
      ++I;
    } else if (C == '/' && I + 1 < N && Text[I + 1] == '/') {
      Comment Cm;
      Cm.Line = Line;
      Cm.Column = I - LineStart;
      size_t J = I + 2;
      while (J < N && Text[J] != '\n')
        ++J;
      Cm.Text = Text.substr(I + 2, J - (I + 2));
      Cm.EndLine = Line;
      for (size_t K = I; K < J; ++K)
        blank(K);
      View.Comments.push_back(std::move(Cm));
      I = J;
    } else if (C == '/' && I + 1 < N && Text[I + 1] == '*') {
      Comment Cm;
      Cm.Line = Line;
      Cm.Column = I - LineStart;
      size_t J = I + 2;
      while (J + 1 < N && !(Text[J] == '*' && Text[J + 1] == '/')) {
        if (Text[J] == '\n') {
          ++Line;
          LineStart = J + 1;
        }
        ++J;
      }
      const size_t End = J + 1 < N ? J + 2 : N;
      Cm.Text = Text.substr(I + 2, J - (I + 2));
      Cm.EndLine = Line;
      for (size_t K = I; K < End; ++K)
        blank(K);
      View.Comments.push_back(std::move(Cm));
      I = End;
    } else if (C == '"' &&
               !(I >= 1 && Text[I - 1] == 'R')) { // Plain string literal.
      blank(I);
      size_t J = I + 1;
      while (J < N && Text[J] != '"') {
        if (Text[J] == '\\' && J + 1 < N) {
          blank(J);
          ++J;
        }
        if (Text[J] == '\n') {
          ++Line;
          LineStart = J + 1;
        }
        blank(J);
        ++J;
      }
      if (J < N)
        blank(J);
      I = J + 1;
    } else if (C == '"') { // Raw string literal R"delim( ... )delim".
      blank(I);
      size_t J = I + 1;
      std::string Delim;
      while (J < N && Text[J] != '(') {
        Delim.push_back(Text[J]);
        blank(J);
        ++J;
      }
      const std::string Close = ")" + Delim + "\"";
      size_t End = Text.find(Close, J);
      End = End == std::string::npos ? N : End + Close.size();
      for (size_t K = J; K < End; ++K) {
        if (Text[K] == '\n') {
          ++Line;
          LineStart = K + 1;
        }
        blank(K);
      }
      I = End;
    } else if (C == '\'') { // Char literal.
      blank(I);
      size_t J = I + 1;
      while (J < N && Text[J] != '\'') {
        if (Text[J] == '\\' && J + 1 < N) {
          blank(J);
          ++J;
        }
        blank(J);
        ++J;
      }
      if (J < N)
        blank(J);
      I = J + 1;
    } else {
      ++I;
    }
  }
  return View;
}

/// 1-based line number of offset \p Pos, via a precomputed table.
class LineIndex {
public:
  explicit LineIndex(const std::string &Text) {
    Starts.push_back(0);
    for (size_t I = 0; I < Text.size(); ++I)
      if (Text[I] == '\n')
        Starts.push_back(I + 1);
  }

  size_t lineOf(size_t Pos) const {
    const auto It = std::upper_bound(Starts.begin(), Starts.end(), Pos);
    return static_cast<size_t>(It - Starts.begin());
  }

  /// True when [start-of-line, Pos) holds only whitespace in \p Code.
  bool blankBefore(const std::string &Code, size_t Line, size_t Col) const {
    const size_t Start = Starts[Line - 1];
    for (size_t I = Start; I < Start + Col && I < Code.size(); ++I)
      if (!std::isspace(static_cast<unsigned char>(Code[I])))
        return false;
    return true;
  }

  /// First line >= \p Line that contains a non-space character in Code;
  /// 0 when none exists.
  size_t nextCodeLine(const std::string &Code, size_t Line) const {
    for (size_t L = Line; L <= Starts.size(); ++L) {
      const size_t Begin = Starts[L - 1];
      const size_t End = L < Starts.size() ? Starts[L] : Code.size();
      for (size_t I = Begin; I < End; ++I)
        if (!std::isspace(static_cast<unsigned char>(Code[I])))
          return L;
    }
    return 0;
  }

private:
  std::vector<size_t> Starts;
};

/// Occurrences of identifier token \p Tok (identifier-boundary on both
/// sides) in \p Code, as offsets.
std::vector<size_t> tokenOffsets(const std::string &Code,
                                 const std::string &Tok) {
  std::vector<size_t> Out;
  size_t Pos = 0;
  while ((Pos = Code.find(Tok, Pos)) != std::string::npos) {
    const bool StartOk = Pos == 0 || !isIdentChar(Code[Pos - 1]);
    const size_t After = Pos + Tok.size();
    const bool EndOk = After >= Code.size() || !isIdentChar(Code[After]);
    if (StartOk && EndOk)
      Out.push_back(Pos);
    Pos = After;
  }
  return Out;
}

size_t skipSpaces(const std::string &S, size_t I) {
  while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
    ++I;
  return I;
}

/// With S[Open] == \p OpenCh, returns the offset of the matching closer
/// (or npos). Works on a code view, so quotes are already blanked.
size_t matchBalanced(const std::string &S, size_t Open, char OpenCh,
                     char CloseCh) {
  size_t Depth = 0;
  for (size_t I = Open; I < S.size(); ++I) {
    if (S[I] == OpenCh)
      ++Depth;
    else if (S[I] == CloseCh && --Depth == 0)
      return I;
  }
  return std::string::npos;
}

std::string trimCopy(const std::string &S) {
  size_t B = 0;
  size_t E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::string normalizePath(std::string P) {
  std::replace(P.begin(), P.end(), '\\', '/');
  size_t Pos = 0;
  while ((Pos = P.find("/./")) != std::string::npos)
    P.erase(Pos, 2);
  while (P.rfind("./", 0) == 0)
    P.erase(0, 2);
  return P;
}

/// True when the normalized path sits under top-level directory \p Dir
/// ("src", "tests", ...), at any nesting below the repo root.
bool underTree(const std::string &NormPath, const std::string &Dir) {
  if (NormPath.rfind(Dir + "/", 0) == 0)
    return true;
  return NormPath.find("/" + Dir + "/") != std::string::npos;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

//===----------------------------------------------------------------------===//
// Suppressions
//===----------------------------------------------------------------------===//

struct Suppression {
  size_t Line = 0; ///< Line the allow() applies to.
  std::string RuleId;
};

struct SuppressionScan {
  std::vector<Suppression> Allows;
  std::vector<Violation> Meta; ///< Malformed-suppression violations.
};

SuppressionScan scanSuppressions(const std::string &Path,
                                 const CodeView &View,
                                 const LineIndex &Lines) {
  SuppressionScan Scan;
  for (const Comment &Cm : View.Comments) {
    const size_t Key = Cm.Text.find("ccsim-lint:");
    if (Key == std::string::npos)
      continue;
    size_t I = Cm.Text.find("allow", Key);
    Violation V;
    V.File = Path;
    V.Line = Cm.Line;
    if (I == std::string::npos) {
      V.RuleId = "lint.unknown-rule";
      V.Message = "ccsim-lint comment without an allow(...) clause";
      V.Hint = ruleById(V.RuleId).Hint;
      Scan.Meta.push_back(std::move(V));
      continue;
    }
    I = skipSpaces(Cm.Text, I + 5);
    if (I >= Cm.Text.size() || Cm.Text[I] != '(') {
      V.RuleId = "lint.unknown-rule";
      V.Message = "malformed ccsim-lint allow clause (missing rule list)";
      V.Hint = ruleById(V.RuleId).Hint;
      Scan.Meta.push_back(std::move(V));
      continue;
    }
    const size_t Close = Cm.Text.find(')', I);
    if (Close == std::string::npos) {
      V.RuleId = "lint.unknown-rule";
      V.Message = "malformed ccsim-lint allow clause (unterminated list)";
      V.Hint = ruleById(V.RuleId).Hint;
      Scan.Meta.push_back(std::move(V));
      continue;
    }

    // Which line does the suppression govern? Trailing a code line: that
    // line. Standing alone: the next line that contains code.
    size_t Target = Cm.Line;
    if (Lines.blankBefore(View.Code, Cm.Line, Cm.Column))
      Target = Lines.nextCodeLine(View.Code, Cm.EndLine + 1);

    // Parse the comma-separated rule ids.
    std::stringstream List(Cm.Text.substr(I + 1, Close - I - 1));
    std::string Id;
    bool AnyRule = false;
    while (std::getline(List, Id, ',')) {
      Id = trimCopy(Id);
      if (Id.empty())
        continue;
      AnyRule = true;
      if (!isKnownRule(Id)) {
        Violation U;
        U.File = Path;
        U.Line = Cm.Line;
        U.RuleId = "lint.unknown-rule";
        U.Message = "allow() names unknown rule '" + Id + "'";
        U.Hint = ruleById(U.RuleId).Hint;
        Scan.Meta.push_back(std::move(U));
        continue;
      }
      if (Target != 0)
        Scan.Allows.push_back({Target, Id});
    }
    if (!AnyRule) {
      V.RuleId = "lint.unknown-rule";
      V.Message = "allow() with an empty rule list";
      V.Hint = ruleById(V.RuleId).Hint;
      Scan.Meta.push_back(std::move(V));
      continue;
    }

    // The reason is mandatory: "-- why" or ": why" after the ')'.
    std::string Tail = trimCopy(Cm.Text.substr(Close + 1));
    if (Tail.rfind("--", 0) == 0)
      Tail = trimCopy(Tail.substr(2));
    else if (Tail.rfind(":", 0) == 0)
      Tail = trimCopy(Tail.substr(1));
    else
      Tail.clear(); // Reason must be introduced by -- or :.
    if (Tail.empty()) {
      Violation R;
      R.File = Path;
      R.Line = Cm.Line;
      R.RuleId = "lint.suppression-without-reason";
      R.Message = "suppression comment has no reason text";
      R.Hint = ruleById(R.RuleId).Hint;
      Scan.Meta.push_back(std::move(R));
    }
  }
  return Scan;
}

bool isSuppressed(const std::vector<Suppression> &Allows, size_t Line,
                  const std::string &RuleId) {
  for (const Suppression &S : Allows)
    if (S.Line == Line && S.RuleId == RuleId)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Rules
//===----------------------------------------------------------------------===//

void addViolation(std::vector<Violation> &Out, const std::string &Path,
                  size_t Line, const std::string &RuleId,
                  std::string Message) {
  Violation V;
  V.File = Path;
  V.Line = Line;
  V.RuleId = RuleId;
  V.Message = std::move(Message);
  V.Hint = ruleById(RuleId).Hint;
  Out.push_back(std::move(V));
}

/// contracts.raw-assert — a call spelled exactly assert(...). The token
/// scan cannot fire on static_assert (the char before 'assert' is an
/// identifier char) or CCSIM_ASSERT (case-sensitive search).
void checkRawAssert(const std::string &Path, const std::string &Code,
                    const LineIndex &Lines, std::vector<Violation> &Out) {
  for (size_t Pos : tokenOffsets(Code, "assert")) {
    const size_t After = skipSpaces(Code, Pos + 6);
    if (After < Code.size() && Code[After] == '(')
      addViolation(Out, Path, Lines.lineOf(Pos), "contracts.raw-assert",
                   "raw assert() call");
  }
}

/// determinism.wall-clock — clock and PRNG state reads in src/.
void checkWallClock(const std::string &Path, const std::string &NormPath,
                    const std::string &Code, const LineIndex &Lines,
                    const LintOptions &Options,
                    std::vector<Violation> &Out) {
  if (!underTree(NormPath, "src"))
    return;
  for (const std::string &Allowed : Options.WallClockAllowlist)
    if (NormPath.find(Allowed) != std::string::npos)
      return;
  // Call-shaped tokens: only flagged when followed by '('.
  static const char *CallTokens[] = {"rand", "srand", "time", "clock"};
  for (const char *Tok : CallTokens)
    for (size_t Pos : tokenOffsets(Code, Tok)) {
      const size_t After = skipSpaces(Code, Pos + std::strlen(Tok));
      if (After < Code.size() && Code[After] == '(')
        addViolation(Out, Path, Lines.lineOf(Pos), "determinism.wall-clock",
                     std::string("call to ") + Tok + "()");
    }
  // Type/namespace tokens: any identifier-boundary mention counts.
  static const char *NameTokens[] = {
      "random_device",  "system_clock", "steady_clock",
      "high_resolution_clock", "gettimeofday", "clock_gettime",
      "localtime",      "gmtime"};
  for (const char *Tok : NameTokens)
    for (size_t Pos : tokenOffsets(Code, Tok))
      addViolation(Out, Path, Lines.lineOf(Pos), "determinism.wall-clock",
                   std::string("use of ") + Tok);
}

/// determinism.unordered-iteration — range-for or .begin() iteration
/// over a variable declared with an unordered container type in the
/// same file.
void checkUnorderedIteration(const std::string &Path,
                             const std::string &NormPath,
                             const std::string &Code, const LineIndex &Lines,
                             std::vector<Violation> &Out) {
  if (!underTree(NormPath, "src"))
    return;
  // Pass 1: names declared as unordered containers.
  std::set<std::string> Unordered;
  static const char *Types[] = {"unordered_map", "unordered_set",
                                "unordered_multimap", "unordered_multiset"};
  for (const char *Ty : Types)
    for (size_t Pos : tokenOffsets(Code, Ty)) {
      size_t I = skipSpaces(Code, Pos + std::strlen(Ty));
      if (I >= Code.size() || Code[I] != '<')
        continue;
      size_t Depth = 0;
      while (I < Code.size()) {
        if (Code[I] == '<')
          ++Depth;
        else if (Code[I] == '>' && --Depth == 0)
          break;
        ++I;
      }
      if (I >= Code.size())
        continue;
      I = skipSpaces(Code, I + 1);
      while (I < Code.size() && (Code[I] == '&' || Code[I] == '*'))
        I = skipSpaces(Code, I + 1);
      std::string Name;
      while (I < Code.size() && isIdentChar(Code[I]))
        Name.push_back(Code[I++]);
      if (!Name.empty() && Name != "const")
        Unordered.insert(Name);
    }
  if (Unordered.empty())
    return;

  // Pass 2a: range-for over a tracked name.
  for (size_t Pos : tokenOffsets(Code, "for")) {
    const size_t Open = skipSpaces(Code, Pos + 3);
    if (Open >= Code.size() || Code[Open] != '(')
      continue;
    const size_t Close = matchBalanced(Code, Open, '(', ')');
    if (Close == std::string::npos)
      continue;
    const std::string Inside = Code.substr(Open + 1, Close - Open - 1);
    // The last single ':' at paren depth 0 separates decl from range.
    size_t RangeStart = std::string::npos;
    size_t Depth = 0;
    for (size_t I = 0; I < Inside.size(); ++I) {
      const char C = Inside[I];
      if (C == '(' || C == '[' || C == '{')
        ++Depth;
      else if (C == ')' || C == ']' || C == '}')
        --Depth;
      else if (C == ':' && Depth == 0) {
        if (I + 1 < Inside.size() && Inside[I + 1] == ':') {
          ++I;
          continue;
        }
        if (I > 0 && Inside[I - 1] == ':')
          continue;
        RangeStart = I + 1;
      }
    }
    if (RangeStart == std::string::npos)
      continue;
    std::string Range = trimCopy(Inside.substr(RangeStart));
    std::string Head;
    for (char C : Range) {
      if (!isIdentChar(C))
        break;
      Head.push_back(C);
    }
    if (Unordered.count(Head))
      addViolation(Out, Path, Lines.lineOf(Pos),
                   "determinism.unordered-iteration",
                   "range-for over unordered container '" + Head + "'");
  }

  // Pass 2b: explicit .begin()/.cbegin() on a tracked name.
  for (const std::string &Name : Unordered)
    for (size_t Pos : tokenOffsets(Code, Name)) {
      size_t I = skipSpaces(Code, Pos + Name.size());
      if (I >= Code.size() || Code[I] != '.')
        continue;
      I = skipSpaces(Code, I + 1);
      if (Code.compare(I, 5, "begin") == 0 ||
          Code.compare(I, 6, "cbegin") == 0)
        addViolation(Out, Path, Lines.lineOf(Pos),
                     "determinism.unordered-iteration",
                     "iterator walk of unordered container '" + Name + "'");
    }
}

/// locking.engine-raw-mutex — raw std:: mutex types inside the
/// thread-shared engine trees (src/core, src/concurrent), where every
/// lock must be one of the annotated ccsim wrappers. Only the std::
/// spelling is banned; the wrappers themselves (and <mutex> includes)
/// never match.
void checkEngineRawMutex(const std::string &Path,
                         const std::string &NormPath,
                         const std::string &Code, const LineIndex &Lines,
                         std::vector<Violation> &Out) {
  const bool InScope = NormPath.find("src/core/") != std::string::npos ||
                       NormPath.find("src/concurrent/") != std::string::npos;
  if (!InScope)
    return;
  static const char *Types[] = {"mutex", "shared_mutex", "recursive_mutex",
                                "timed_mutex", "shared_timed_mutex"};
  for (const char *Ty : Types)
    for (size_t Pos : tokenOffsets(Code, Ty)) {
      if (Pos < 5 || Code.compare(Pos - 5, 5, "std::") != 0)
        continue;
      addViolation(Out, Path, Lines.lineOf(Pos), "locking.engine-raw-mutex",
                   std::string("std::") + Ty +
                       " in the shared-engine tree");
    }
}

/// locking.naked-lock — manual .lock()/.unlock() outside an RAII guard
/// declaration.
void checkNakedLock(const std::string &Path, const std::string &NormPath,
                    const std::string &Code, const LineIndex &Lines,
                    std::vector<Violation> &Out) {
  if (endsWith(NormPath, "support/ThreadSafety.h"))
    return; // The annotated wrapper is the one sanctioned caller.
  static const char *Calls[] = {"lock", "unlock"};
  for (const char *Call : Calls)
    for (size_t Pos : tokenOffsets(Code, Call)) {
      // Must be a member call: preceded by '.' or '->'.
      size_t B = Pos;
      while (B > 0 && std::isspace(static_cast<unsigned char>(Code[B - 1])))
        --B;
      const bool Dot = B >= 1 && Code[B - 1] == '.';
      const bool Arrow = B >= 2 && Code[B - 2] == '-' && Code[B - 1] == '>';
      if (!Dot && !Arrow)
        continue;
      const size_t After = skipSpaces(Code, Pos + std::strlen(Call));
      if (After >= Code.size() || Code[After] != '(')
        continue;
      const size_t Close = matchBalanced(Code, After, '(', ')');
      if (Close == std::string::npos ||
          trimCopy(Code.substr(After + 1, Close - After - 1)) != "")
        continue; // lock(a, b) / try_lock variants are not this pattern.
      // An RAII declaration mentioning a guard type on the same line is
      // fine (e.g. "std::unique_lock<std::mutex> L(M); L.lock();" is
      // still manual, but the common false positive is the declaration
      // itself, which contains no member call).
      const size_t Line = Lines.lineOf(Pos);
      addViolation(Out, Path, Line, "locking.naked-lock",
                   std::string("manual .") + Call + "() call");
    }
}

/// exceptions.swallowed-catch-all — catch (...) with no rethrow and no
/// exception capture in its body.
void checkSwallowedCatchAll(const std::string &Path,
                            const std::string &NormPath,
                            const std::string &Code, const LineIndex &Lines,
                            std::vector<Violation> &Out) {
  if (!underTree(NormPath, "src") && !underTree(NormPath, "tools"))
    return;
  for (size_t Pos : tokenOffsets(Code, "catch")) {
    const size_t Open = skipSpaces(Code, Pos + 5);
    if (Open >= Code.size() || Code[Open] != '(')
      continue;
    const size_t Close = matchBalanced(Code, Open, '(', ')');
    if (Close == std::string::npos)
      continue;
    if (trimCopy(Code.substr(Open + 1, Close - Open - 1)) != "...")
      continue;
    const size_t BodyOpen = skipSpaces(Code, Close + 1);
    if (BodyOpen >= Code.size() || Code[BodyOpen] != '{')
      continue;
    const size_t BodyClose = matchBalanced(Code, BodyOpen, '{', '}');
    if (BodyClose == std::string::npos)
      continue;
    const std::string Body = Code.substr(BodyOpen, BodyClose - BodyOpen + 1);
    const bool Rethrows = !tokenOffsets(Body, "throw").empty() ||
                          Body.find("rethrow") != std::string::npos ||
                          Body.find("current_exception") != std::string::npos;
    if (!Rethrows)
      addViolation(Out, Path, Lines.lineOf(Pos),
                   "exceptions.swallowed-catch-all",
                   "catch (...) swallows the exception");
  }
}

/// tenancy.legacy-config — any mention of the deprecated MultiTenantConfig
/// bundle in production trees (src/, examples/, bench/). Tests keep
/// exercising the shim until it is deleted, so tests/ stays out of scope,
/// and the shim's own definition is allowlisted.
void checkLegacyTenancyConfig(const std::string &Path,
                              const std::string &NormPath,
                              const std::string &Code, const LineIndex &Lines,
                              const LintOptions &Options,
                              std::vector<Violation> &Out) {
  if (!underTree(NormPath, "src") && !underTree(NormPath, "examples") &&
      !underTree(NormPath, "bench"))
    return;
  for (const std::string &Allowed : Options.LegacyTenancyAllowlist)
    if (NormPath.find(Allowed) != std::string::npos)
      return;
  for (size_t Pos : tokenOffsets(Code, "MultiTenantConfig"))
    addViolation(Out, Path, Lines.lineOf(Pos), "tenancy.legacy-config",
                 "use of deprecated MultiTenantConfig");
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::vector<Violation> ccsim::lint::lintSource(const std::string &Path,
                                               const std::string &Text,
                                               const LintOptions &Options) {
  const std::string NormPath = normalizePath(Path);
  const CodeView View = stripToCode(Text);
  const LineIndex Lines(Text);
  const SuppressionScan Suppressions =
      scanSuppressions(Path, View, Lines);

  std::vector<Violation> Raw;
  checkRawAssert(Path, View.Code, Lines, Raw);
  checkWallClock(Path, NormPath, View.Code, Lines, Options, Raw);
  checkUnorderedIteration(Path, NormPath, View.Code, Lines, Raw);
  checkEngineRawMutex(Path, NormPath, View.Code, Lines, Raw);
  checkNakedLock(Path, NormPath, View.Code, Lines, Raw);
  checkSwallowedCatchAll(Path, NormPath, View.Code, Lines, Raw);
  checkLegacyTenancyConfig(Path, NormPath, View.Code, Lines, Options, Raw);

  std::vector<Violation> Out;
  for (Violation &V : Raw) {
    if (isSuppressed(Suppressions.Allows, V.Line, V.RuleId))
      continue;
    Out.push_back(std::move(V));
  }
  for (const Violation &V : Suppressions.Meta)
    Out.push_back(V);

  if (!Options.OnlyRule.empty()) {
    Out.erase(std::remove_if(Out.begin(), Out.end(),
                             [&](const Violation &V) {
                               return V.RuleId != Options.OnlyRule;
                             }),
              Out.end());
  }
  std::sort(Out.begin(), Out.end(),
            [](const Violation &A, const Violation &B) {
              if (A.Line != B.Line)
                return A.Line < B.Line;
              return A.RuleId < B.RuleId;
            });
  return Out;
}

std::vector<Violation> ccsim::lint::lintFile(const std::string &Path,
                                             const LintOptions &Options) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Violation V;
    V.File = Path;
    V.Line = 0;
    V.RuleId = "lint.io-error";
    V.Message = "cannot read file";
    V.Hint = "check the path passed to ccsim_lint";
    return {V};
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return lintSource(Path, Buffer.str(), Options);
}

std::vector<Violation>
ccsim::lint::lintFiles(const std::vector<std::string> &Paths,
                       const LintOptions &Options) {
  std::vector<std::string> Unique;
  std::set<std::string> Seen;
  for (const std::string &P : Paths)
    if (Seen.insert(normalizePath(P)).second)
      Unique.push_back(P);
  std::sort(Unique.begin(), Unique.end(),
            [](const std::string &A, const std::string &B) {
              return normalizePath(A) < normalizePath(B);
            });
  std::vector<Violation> Out;
  for (const std::string &P : Unique) {
    std::vector<Violation> V = lintFile(P, Options);
    Out.insert(Out.end(), V.begin(), V.end());
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// compile_commands.json
//===----------------------------------------------------------------------===//

namespace {

/// Minimal reader for the subset of JSON CMake emits: an array of flat
/// objects whose values are strings (or, for the "arguments" variant, an
/// array of strings).
struct JsonCursor {
  const std::string &S;
  size_t I = 0;

  explicit JsonCursor(const std::string &Text) : S(Text) {}

  void skipWs() {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
  }

  bool eat(char C) {
    skipWs();
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return I < S.size() && S[I] == C;
  }

  bool readString(std::string &Out) {
    skipWs();
    if (I >= S.size() || S[I] != '"')
      return false;
    ++I;
    Out.clear();
    while (I < S.size() && S[I] != '"') {
      if (S[I] == '\\' && I + 1 < S.size()) {
        ++I;
        switch (S[I]) {
        case 'n':
          Out.push_back('\n');
          break;
        case 't':
          Out.push_back('\t');
          break;
        case 'u': // Keep it simple: skip the four hex digits.
          I += std::min<size_t>(4, S.size() - I - 1);
          Out.push_back('?');
          break;
        default:
          Out.push_back(S[I]);
        }
      } else {
        Out.push_back(S[I]);
      }
      ++I;
    }
    if (I >= S.size())
      return false;
    ++I; // Closing quote.
    return true;
  }

  /// Skips any value (string, array of strings, number, literal).
  bool skipValue() {
    skipWs();
    if (I >= S.size())
      return false;
    if (S[I] == '"') {
      std::string Ignored;
      return readString(Ignored);
    }
    if (S[I] == '[') {
      ++I;
      if (eat(']'))
        return true;
      do {
        if (!skipValue())
          return false;
      } while (eat(','));
      return eat(']');
    }
    while (I < S.size() && S[I] != ',' && S[I] != '}' && S[I] != ']')
      ++I;
    return true;
  }
};

} // namespace

std::vector<std::string>
ccsim::lint::collectFromCompileCommands(const std::string &Path,
                                        std::string &Error) {
  Error.clear();
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read " + Path;
    return {};
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  const std::string Text = Buffer.str();

  std::vector<std::string> Files;
  JsonCursor C(Text);
  if (!C.eat('[')) {
    Error = Path + " is not a JSON array";
    return {};
  }
  if (C.eat(']'))
    return Files;
  do {
    if (!C.eat('{')) {
      Error = Path + ": expected an object";
      return {};
    }
    std::string File;
    std::string Directory;
    if (!C.peek('}')) {
      do {
        std::string Key;
        if (!C.readString(Key) || !C.eat(':')) {
          Error = Path + ": malformed object key";
          return {};
        }
        if (Key == "file" || Key == "directory") {
          std::string Value;
          if (!C.readString(Value)) {
            Error = Path + ": '" + Key + "' is not a string";
            return {};
          }
          (Key == "file" ? File : Directory) = Value;
        } else if (!C.skipValue()) {
          Error = Path + ": malformed value for key '" + Key + "'";
          return {};
        }
      } while (C.eat(','));
    }
    if (!C.eat('}')) {
      Error = Path + ": unterminated object";
      return {};
    }
    if (!File.empty()) {
      if (File[0] != '/' && !Directory.empty())
        File = Directory + "/" + File;
      Files.push_back(File);
    }
  } while (C.eat(','));
  if (!C.eat(']'))
    Error = Path + ": unterminated array";
  return Files;
}

std::vector<std::string>
ccsim::lint::collectFromDirectory(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  std::error_code EC;
  for (fs::recursive_directory_iterator
           It(Dir, fs::directory_options::skip_permission_denied, EC),
       End;
       It != End; It.increment(EC)) {
    if (EC)
      break;
    if (!It->is_regular_file(EC))
      continue;
    const std::string Ext = It->path().extension().string();
    if (Ext == ".h" || Ext == ".cpp")
      Out.push_back(It->path().string());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string ccsim::lint::renderViolation(const Violation &V) {
  std::ostringstream Out;
  Out << V.File << ":" << V.Line << ": [" << V.RuleId << "] " << V.Message;
  if (!V.Hint.empty())
    Out << " (hint: " << V.Hint << ")";
  return Out.str();
}
