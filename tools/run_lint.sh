#!/usr/bin/env bash
# run_lint.sh - build ccsim_lint and run it over every translation unit in
# the build's compile_commands.json. This is the CI static-analysis entry
# point and the pre-commit check for humans.
#
# Usage:
#   tools/run_lint.sh                          # lint the whole build
#   tools/run_lint.sh --only=contracts.raw-assert
#   tools/run_lint.sh --list-rules
#
# Extra flags are forwarded to the ccsim_lint binary. The build tree
# defaults to ./build (override with BUILD_DIR); the tree is configured
# with CMAKE_EXPORT_COMPILE_COMMANDS=ON if the database is missing, so the
# lint always sees exactly the files the build compiles. Exit codes follow
# the repo convention: 0 clean, 1 violations, 2 usage/IO error.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$BUILD" --target ccsim_lint -j "$(nproc)" >/dev/null

LINT="$BUILD/tools/ccsim_lint/ccsim_lint"
if [[ $# -gt 0 && $1 == --list-rules ]]; then
  exec "$LINT" --list-rules
fi

exec "$LINT" --compile-commands="$BUILD/compile_commands.json" "$@"
