//===- bench/fig15_overhead_links_pressure.cpp - Reproduces Figure 15 -----===//
//
// Figure 15: relative overhead including link maintenance as cache
// pressure increases, normalized to FLUSH at each pressure.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 15: relative overhead (incl. links) vs pressure.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 15: Relative overhead incl. link maintenance vs pressure",
      "Figure 15: same crossover trend as Figure 11, with link removal "
      "raising every policy except FLUSH");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  const auto Pressures = benchutil::pressureAxis();
  std::vector<std::string> Labels;
  std::vector<std::vector<double>> MeanSeries;
  for (double P : Pressures) {
    SimConfig Config;
    Config.PressureFactor = P;
    const auto Results = Engine.sweepGranularities(Config);
    if (Labels.empty())
      for (const SuiteResult &R : Results)
        Labels.push_back(R.PolicyLabel);
    MeanSeries.push_back(relativeOverheadPerBenchmarkMean(Results, true));
  }

  std::vector<std::string> Header = {"Granularity"};
  for (double P : Pressures)
    Header.push_back("n=" + formatDouble(P, 0));
  Table Out(Header);
  for (size_t G = 0; G < Labels.size(); ++G) {
    Out.beginRow();
    Out.cell(Labels[G]);
    for (size_t PI = 0; PI < Pressures.size(); ++PI)
      Out.cell(MeanSeries[PI][G], 3);
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nfine-grained FIFO (incl. links): %.3f at n=2 -> %.3f at "
              "n=10 (paper: approaches and crosses FLUSH)\n",
              MeanSeries.front().back(), MeanSeries.back().back());
  benchutil::maybeWriteCsv(Flags, Labels, Pressures, MeanSeries);
  return 0;
}
