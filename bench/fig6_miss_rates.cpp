//===- bench/fig6_miss_rates.cpp - Reproduces Figure 6 --------------------===//
//
// Figure 6: unified (Eq. 1) miss rate at each eviction granularity with
// the cache pressure factor fixed at 2.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"
#include "support/AsciiChart.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 6: miss rates at varying granularities, pressure 2.");
  Flags.addDouble("pressure", 2.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 6: Miss rates at varying granularities (pressure " +
          formatDouble(Flags.getDouble("pressure"), 0) + ")",
      "Figure 6: miss rate declines monotonically from FLUSH to the "
      "finest-grained FIFO");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");
  const auto Results = Engine.sweepGranularities(Config);
  const auto Rates = unifiedMissRates(Results);

  Table Out({"Granularity", "Unified miss rate", "Misses", "Accesses"});
  for (size_t I = 0; I < Results.size(); ++I) {
    Out.beginRow();
    Out.cell(Results[I].PolicyLabel);
    Out.cell(formatPercent(Rates[I], 3));
    Out.cell(Results[I].Combined.Misses);
    Out.cell(Results[I].Combined.Accesses);
  }
  std::fputs(Out.render().c_str(), stdout);

  BarChart Chart;
  for (size_t I = 0; I < Results.size(); ++I)
    Chart.add(Results[I].PolicyLabel, Rates[I],
              formatPercent(Rates[I], 3));
  std::printf("\n%s", Chart.render().c_str());

  std::printf("\nFLUSH/FIFO miss ratio: %.2fx (paper: >1, declining "
              "curve)\n",
              Rates.front() / Rates.back());
  return 0;
}
