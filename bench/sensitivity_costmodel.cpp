//===- bench/sensitivity_costmodel.cpp - Cost-coefficient sensitivity -----===//
//
// How robust is the paper's conclusion to its measured coefficients?
// The medium-grain optimum exists because the eviction fixed cost
// (Eq. 2's 3055) punishes frequent invocations while the miss cost
// (Eq. 3) punishes coarse grains. This bench scales the two knobs and
// reports, for each combination, which granularity minimizes total
// overhead — showing the regime in which "medium-grained is best" holds
// and where it degenerates to the extremes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Sensitivity: optimal granularity vs cost-model coefficients.");
  Flags.addDouble("pressure", 6.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Sensitivity: where does the medium-grain optimum live?",
      "Section 4.3-4.4: the eviction fixed cost (3055) drives the "
      "fine-end penalty; the miss cost (75.4x+1922) drives the coarse-end "
      "penalty");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  const std::vector<double> EvictScales = {0.1, 1.0, 10.0, 100.0};
  const std::vector<double> MissScales = {0.1, 1.0, 10.0};

  Table Out({"Eq.2 fixed x", "Eq.3 x", "Best granularity", "Best rel",
             "FIFO rel", "FLUSH penalty"});
  for (double MissScale : MissScales) {
    for (double EvictScale : EvictScales) {
      SimConfig Config;
      Config.PressureFactor = Flags.getDouble("pressure");
      Config.Costs = CostModel::paperDefaults();
      Config.Costs.EvictionBase *= EvictScale;
      Config.Costs.MissBase *= MissScale;
      Config.Costs.MissPerByte *= MissScale;

      const auto Results = Engine.sweepGranularities(Config);
      const auto Rel = relativeOverheadPerBenchmarkMean(Results, true);
      size_t Best = 0;
      for (size_t I = 1; I < Rel.size(); ++I)
        if (Rel[I] < Rel[Best])
          Best = I;
      Out.beginRow();
      Out.cell(formatDouble(EvictScale, 1) + "x");
      Out.cell(formatDouble(MissScale, 1) + "x");
      Out.cell(Results[Best].PolicyLabel);
      Out.cell(Rel[Best], 3);
      Out.cell(Rel.back(), 3);
      Out.cell(formatDouble(1.0 / std::max(1e-9, Rel[Best]), 2) + "x");
    }
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nExpected regimes: cheap evictions (0.1x) reward the "
              "finest grains; expensive invocations (10-100x) push the "
              "optimum toward coarse units; scaling misses moves it the "
              "other way. The paper's coefficients sit in the "
              "medium-grain regime.\n");
  return 0;
}
