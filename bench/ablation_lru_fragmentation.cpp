//===- bench/ablation_lru_fragmentation.cpp - Section 3.3 study ----------===//
//
// The design alternative the paper rules out in Section 3.3: "an LRU or
// LRU-like eviction algorithm would lead to internal fragmentation in
// the code cache. To make matters worse, compaction ... would require
// adjusting all the link pointers. Consequently ... we focus on FIFO
// algorithms, which, with circular buffer code cache implementations, do
// not lead to internal fragmentation."
//
// This bench measures that argument: the same traces replayed through
// (a) the circular-buffer fine-grained FIFO, (b) an LRU free-list cache
// without compaction, and (c) the same with compaction. LRU buys a lower
// miss rate, but pays fragmentation stalls (extra evictions) or
// compaction traffic with link-pointer fixups.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/FreeListCache.h"

using namespace ccsim;

namespace {

struct LruOutcome {
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
  double Overhead = 0.0; ///< Modeled instructions (Eqs. 2-4 + compaction).
  FreeListStats Fl;
};

/// Replays \p T through the LRU free-list cache with the paper's cost
/// model. Compaction is charged per byte moved at the eviction per-byte
/// rate plus Eq. 4 per link fixup.
LruOutcome runLru(const Trace &T, uint64_t Capacity, bool Compaction) {
  const CostModel Costs = CostModel::paperDefaults();
  FreeListCache Cache(Capacity, Compaction);
  LruOutcome Out;
  const double MeanDegree = T.meanOutDegree();
  std::vector<SuperblockId> Evicted;
  for (SuperblockId Id : T.Accesses) {
    ++Out.Accesses;
    if (Cache.contains(Id)) {
      Cache.touch(Id);
      continue;
    }
    ++Out.Misses;
    const uint32_t Size = T.Blocks[Id].SizeBytes;
    Out.Overhead += Costs.missOverhead(Size);
    if (Size > Capacity)
      continue;
    Evicted.clear();
    const uint64_t MovedBefore = Cache.stats().BytesMoved;
    const uint64_t FixupsBefore = Cache.stats().LinkFixups;
    Cache.insert(Id, Size, MeanDegree, Evicted);
    if (!Evicted.empty()) {
      uint64_t Bytes = 0;
      for (SuperblockId V : Evicted)
        Bytes += T.Blocks[V].SizeBytes;
      Out.Overhead += Costs.evictionOverhead(Bytes);
      // Every evicted block's incoming links must be repaired; estimate
      // with the mean degree (the trace-level LinkGraph is FIFO-order
      // specific, so the analytic estimate keeps the comparison fair).
      Out.Overhead += static_cast<double>(Evicted.size()) *
                      Costs.unlinkingOverhead(
                          static_cast<uint64_t>(MeanDegree + 0.5));
    }
    const uint64_t Moved = Cache.stats().BytesMoved - MovedBefore;
    const uint64_t Fixups = Cache.stats().LinkFixups - FixupsBefore;
    if (Moved)
      Out.Overhead += Costs.EvictionPerByte * static_cast<double>(Moved);
    if (Fixups)
      Out.Overhead += static_cast<double>(Fixups) *
                      Costs.unlinkingOverhead(1);
  }
  Out.Fl = Cache.stats();
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Section 3.3 ablation: circular FIFO vs LRU free-list caches.");
  Flags.addDouble("pressure", 10.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Ablation: why FIFO circular buffers instead of LRU (Section 3.3)",
      "Section 3.3: LRU fragments a variable-entry cache; compaction "
      "requires adjusting all the link pointers");
  const SweepEngine Engine = benchutil::makeEngine(Flags);
  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");

  // Aggregate across the suite.
  const SuiteResult Fifo =
      Engine.runSuite(GranularitySpec::fine(), Config);
  uint64_t LruMissesNoC = 0, LruMissesC = 0, Accesses = 0;
  double LruOvNoC = 0, LruOvC = 0;
  uint64_t Stalls = 0, Compactions = 0, BytesMoved = 0, Fixups = 0;
  double FragSum = 0.0;
  for (const Trace &T : Engine.traces()) {
    const uint64_t Capacity = sim::capacityFor(T, Config);
    const LruOutcome NoC = runLru(T, Capacity, /*Compaction=*/false);
    const LruOutcome WithC = runLru(T, Capacity, /*Compaction=*/true);
    Accesses += NoC.Accesses;
    LruMissesNoC += NoC.Misses;
    LruMissesC += WithC.Misses;
    LruOvNoC += NoC.Overhead;
    LruOvC += WithC.Overhead;
    Stalls += NoC.Fl.FragmentationStalls;
    Compactions += WithC.Fl.Compactions;
    BytesMoved += WithC.Fl.BytesMoved;
    Fixups += WithC.Fl.LinkFixups;
    FragSum += NoC.Fl.meanFragmentation();
  }

  Table Out({"Design", "Miss rate", "Overhead vs FIFO", "Notes"});
  const double FifoOv = Fifo.Combined.totalOverhead(true);
  Out.beginRow();
  Out.cell("FIFO circular buffer");
  Out.cell(formatPercent(Fifo.Combined.missRate(), 2));
  Out.cell(1.0, 3);
  Out.cell("no external fragmentation by construction");
  Out.beginRow();
  Out.cell("LRU free list");
  Out.cell(formatPercent(static_cast<double>(LruMissesNoC) / Accesses, 2));
  Out.cell(LruOvNoC / FifoOv, 3);
  Out.cell(formatWithCommas(Stalls) + " fragmentation stalls");
  Out.beginRow();
  Out.cell("LRU free list + compaction");
  Out.cell(formatPercent(static_cast<double>(LruMissesC) / Accesses, 2));
  Out.cell(LruOvC / FifoOv, 3);
  Out.cell(formatWithCommas(Compactions) + " compactions, " +
           formatBytes(BytesMoved) + " moved, " +
           formatWithCommas(Fixups) + " link fixups");
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nmean external fragmentation under LRU (1 - largest "
              "hole / free space): %s\n",
              formatPercent(FragSum / Engine.traces().size(), 1).c_str());
  std::printf("The paper's Section 3.3 conclusion holds when LRU's miss "
              "advantage does not pay for stalls/compaction.\n");
  return 0;
}
