//===- bench/micro_cache_ops.cpp - google-benchmark microbenchmarks -------===//
//
// Microbenchmarks of the core cache operations themselves (wall-clock
// cost of this library, not the modeled instruction overheads): hit
// lookups, miss+insert churn at each granularity, and link maintenance.
//
//===----------------------------------------------------------------------===//

#include "core/CacheManager.h"
#include "support/Random.h"
#include "telemetry/Telemetry.h"
#include "trace/TraceGenerator.h"
#include "trace/WorkloadModel.h"

#include "benchmark/benchmark.h"

using namespace ccsim;

namespace {

/// A reusable medium-size trace.
const Trace &benchTrace() {
  static const Trace T = [] {
    WorkloadModel M = scaledWorkload(*findWorkload("crafty"), 0.5);
    return TraceGenerator::generateBenchmark(M, 7);
  }();
  return T;
}

CacheManager makeManager(GranularitySpec Spec, double Pressure,
                         bool Chaining = true) {
  CacheManagerConfig Config;
  Config.CapacityBytes = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             static_cast<double>(benchTrace().maxCacheBytes()) / Pressure));
  Config.EnableChaining = Chaining;
  return CacheManager(Config, makePolicy(Spec));
}

} // namespace

static void BM_HitLookup(benchmark::State &State) {
  CacheManager M = makeManager(GranularitySpec::fine(), 1.0);
  const SuperblockRecord Rec = benchTrace().recordFor(0);
  M.access(Rec);
  for (auto _ : State)
    benchmark::DoNotOptimize(M.access(Rec));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_HitLookup);

static void BM_AccessStream(benchmark::State &State) {
  // Replays the trace under the granularity selected by the range arg:
  // 0 = FLUSH, k = 2^k units, 99 = fine FIFO.
  const int Arg = static_cast<int>(State.range(0));
  const GranularitySpec Spec =
      Arg == 0 ? GranularitySpec::flush()
               : (Arg == 99 ? GranularitySpec::fine()
                            : GranularitySpec::units(1u << Arg));
  const Trace &T = benchTrace();
  for (auto _ : State) {
    CacheManager M = makeManager(Spec, 8.0);
    for (SuperblockId Id : T.Accesses)
      M.access(T.recordFor(Id));
    benchmark::DoNotOptimize(M.stats().Misses);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(T.numAccesses()));
}
BENCHMARK(BM_AccessStream)->Arg(0)->Arg(3)->Arg(6)->Arg(99);

static void BM_AccessStreamTraced(benchmark::State &State) {
  // Same replay as BM_AccessStream(3) but with a telemetry sink attached;
  // the delta against the null-sink run is the full cost of tracing every
  // miss, eviction, and unlink. The disabled path (BM_AccessStream) must
  // not regress when telemetry code is compiled in.
  const Trace &T = benchTrace();
  telemetry::TelemetrySink Sink(1 << 16);
  for (auto _ : State) {
    CacheManagerConfig Config;
    Config.CapacityBytes = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(T.maxCacheBytes()) / 8.0));
    Config.Telemetry = &Sink;
    CacheManager Traced(Config, makePolicy(GranularitySpec::units(8)));
    for (SuperblockId Id : T.Accesses)
      Traced.access(T.recordFor(Id));
    benchmark::DoNotOptimize(Traced.stats().Misses);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(T.numAccesses()));
}
BENCHMARK(BM_AccessStreamTraced);

static void BM_AccessStreamNoChaining(benchmark::State &State) {
  const Trace &T = benchTrace();
  for (auto _ : State) {
    CacheManager M = makeManager(GranularitySpec::units(8), 8.0,
                                 /*Chaining=*/false);
    for (SuperblockId Id : T.Accesses)
      M.access(T.recordFor(Id));
    benchmark::DoNotOptimize(M.stats().Misses);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(T.numAccesses()));
}
BENCHMARK(BM_AccessStreamNoChaining);

static void BM_EvictionChurn(benchmark::State &State) {
  // Tiny cache: nearly every access is a miss + eviction.
  CacheManagerConfig Config;
  Config.CapacityBytes = 2048;
  CacheManager M(Config, makePolicy(GranularitySpec::fine()));
  Rng R(3);
  std::vector<SuperblockId> Ids(4096);
  for (auto &Id : Ids)
    Id = static_cast<SuperblockId>(R.nextBelow(1u << 16));
  size_t I = 0;
  for (auto _ : State) {
    SuperblockRecord Rec;
    Rec.Id = Ids[I++ & 4095];
    Rec.SizeBytes = 300;
    benchmark::DoNotOptimize(M.access(Rec));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_EvictionChurn);

static void BM_InstallEvictWithPayloads(benchmark::State &State) {
  // The execution-driven hot path: install() front door (the miss half of
  // access, used by the translator) on a tiny cache so nearly every
  // install evicts, with both payload hooks wired the way the translator
  // wires them. The delta against BM_EvictionChurn is the cost of the
  // hook dispatch itself.
  CacheEngineConfig Config;
  Config.CapacityBytes = 2048;
  uint64_t TornDown = 0;
  Config.OnEvictPayload =
      [&TornDown](std::span<const CodeCache::Resident> Victims) {
        TornDown += Victims.size();
      };
  Config.OnUnlinkPayload = [](std::span<const CodeCache::Resident>,
                              std::span<const uint32_t> Dangling) {
    uint64_t Links = 0;
    for (uint32_t D : Dangling)
      Links += D;
    benchmark::DoNotOptimize(Links);
  };
  CacheEngine E(Config, makePolicy(GranularitySpec::fine()));
  Rng R(3);
  std::vector<SuperblockId> Ids(4096);
  for (auto &Id : Ids)
    Id = static_cast<SuperblockId>(R.nextBelow(1u << 16));
  size_t I = 0;
  for (auto _ : State) {
    SuperblockRecord Rec;
    Rec.Id = Ids[I++ & 4095];
    Rec.SizeBytes = 300;
    if (E.cache().contains(Rec.Id))
      benchmark::DoNotOptimize(E.access(Rec));
    else
      benchmark::DoNotOptimize(E.install(Rec));
  }
  benchmark::DoNotOptimize(TornDown);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_InstallEvictWithPayloads);

static void BM_TraceGeneration(benchmark::State &State) {
  const WorkloadModel M = scaledWorkload(*findWorkload("gcc"), 0.2);
  for (auto _ : State) {
    TraceGenerator Gen(11);
    benchmark::DoNotOptimize(Gen.generate(M).numAccesses());
  }
}
BENCHMARK(BM_TraceGeneration);

BENCHMARK_MAIN();
