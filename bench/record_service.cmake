# record_service.cmake - run/validate the thread-shared engine stress
# record.
#
# Script mode (cmake -P) helper behind bench/record_bench.sh service and
# the CI bench step. Two jobs:
#
#   1. Optionally run the service_stress binary first:
#        cmake -DSERVICE_BIN=<path/to/service_stress> \
#              -DSERVICE_JSON=<out.json> \
#              [-DSERVICE_ARGS=--ops=2000000] \
#              -P bench/record_service.cmake
#      (SERVICE_ARGS is a semicolon-separated list of extra flags.)
#
#   2. Validate the BENCH_service.json schema and gate the correctness
#      claims: conservation_ok, audit_clean, dispatch_consistent, and
#      accounted_ok must all be true -- the operation conservation
#      identities held on every engine-stress row, every final-quiesce
#      structural audit was clean, the dispatch table mirrored residency
#      exactly, and every sustained-load job landed in exactly one
#      terminal state. Wall-clock numbers (rates, speedups) are recorded
#      but never gated: scaling depends on the host, correctness does not.
#
# Exits nonzero (FATAL_ERROR) on any schema violation or gate miss.

cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED SERVICE_JSON)
  message(FATAL_ERROR "pass -DSERVICE_JSON=<path to BENCH_service.json>")
endif()

if(DEFINED SERVICE_BIN)
  message(STATUS "running ${SERVICE_BIN} --out=${SERVICE_JSON} "
                 "${SERVICE_ARGS}")
  execute_process(
    COMMAND "${SERVICE_BIN}" "--out=${SERVICE_JSON}" ${SERVICE_ARGS}
    RESULT_VARIABLE RunResult)
  if(NOT RunResult EQUAL 0)
    message(FATAL_ERROR "service_stress exited ${RunResult}")
  endif()
endif()

if(NOT EXISTS "${SERVICE_JSON}")
  message(FATAL_ERROR "no record at ${SERVICE_JSON}")
endif()
file(READ "${SERVICE_JSON}" Record)

# Every key service_stress writes; a missing or retyped key breaks the
# consumers (CI trend tracking, bench/record_bench.sh).
set(RequiredKeys
  bench ops threads_max working_set capacity_bytes seed
  conservation_ok audit_clean dispatch_consistent accounted_ok
  engine_rows load_rows)
foreach(Key IN LISTS RequiredKeys)
  string(JSON Value ERROR_VARIABLE JsonError GET "${Record}" "${Key}")
  if(JsonError)
    message(FATAL_ERROR
            "BENCH_service.json: missing key '${Key}': ${JsonError}")
  endif()
endforeach()

string(JSON BenchName GET "${Record}" bench)
if(NOT BenchName STREQUAL "service_stress")
  message(FATAL_ERROR "BENCH_service.json: bench is '${BenchName}', "
                      "expected 'service_stress'")
endif()

foreach(Key ops threads_max)
  string(JSON Value GET "${Record}" "${Key}")
  if(Value LESS_EQUAL 0)
    message(FATAL_ERROR
            "BENCH_service.json: ${Key}=${Value} must be positive")
  endif()
endforeach()

# The correctness gates: this record claims the shared engine survived
# the stress with every invariant intact.
foreach(Gate conservation_ok audit_clean dispatch_consistent accounted_ok)
  string(JSON Value GET "${Record}" "${Gate}")
  if(NOT Value STREQUAL "ON" AND NOT Value STREQUAL "true")
    message(FATAL_ERROR
            "BENCH_service.json: gate ${Gate}=${Value}, expected true")
  endif()
endforeach()

# Rows must be non-empty and row 0 of the engine section single-threaded
# (the scaling baseline every speedup is relative to).
string(JSON EngineRowCount LENGTH "${Record}" engine_rows)
if(EngineRowCount LESS 1)
  message(FATAL_ERROR "BENCH_service.json: engine_rows is empty")
endif()
string(JSON BaselineThreads GET "${Record}" engine_rows 0 threads)
if(NOT BaselineThreads EQUAL 1)
  message(FATAL_ERROR "BENCH_service.json: engine_rows[0].threads="
                      "${BaselineThreads}, expected the 1-thread baseline")
endif()
string(JSON LoadRowCount LENGTH "${Record}" load_rows)
if(LoadRowCount LESS 1)
  message(FATAL_ERROR "BENCH_service.json: load_rows is empty")
endif()

string(JSON Threads GET "${Record}" threads_max)
math(EXPR LastRow "${EngineRowCount} - 1")
string(JSON PeakRate GET "${Record}" engine_rows ${LastRow} mops_per_sec)
string(JSON PeakSpeedup GET "${Record}" engine_rows ${LastRow} speedup)
message(STATUS "BENCH_service.json ok: ${EngineRowCount} engine rows up "
               "to ${Threads} threads (last row ${PeakRate} Mops/s, "
               "speedup ${PeakSpeedup}), ${LoadRowCount} load rows, all "
               "gates clean")
