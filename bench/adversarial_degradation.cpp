//===- bench/adversarial_degradation.cpp - Worst-case overhead record -----===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
//
// Runs the adversarial degradation study (src/workloads/Degradation.h):
// every catalog adversary replayed at its tuned capacity against the
// benign statistical baseline at equal trace length and equal relative
// pressure, per eviction granularity. Prints the ranking table and writes
// a machine-readable BENCH_adversarial.json so CI can track the
// worst-case blowup over time.
//
// The correctness gate is the degradation floor, not wall-clock: the
// record promises at least one (adversary, granularity) cell degrading
// >= 5x over the benign baseline, and bench/record_adversarial.cmake
// fails the record otherwise. Timings are informational.
//
// Run: ./adversarial_degradation --scale=0.25 --out=BENCH_adversarial.json
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "workloads/Degradation.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags("Measure how badly each adversarial workload degrades "
                "each eviction granularity and record the result as JSON.");
  Flags.addString("benchmark", "crafty",
                  "Table 1 benchmark used as the benign baseline.");
  Flags.addDouble("scale", 0.25, "Working-set multiplier (both sides).");
  Flags.addInt("seed", 42, "Trace generation seed.");
  Flags.addString("out", "BENCH_adversarial.json",
                  "Path for the machine-readable result record.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  workloads::DegradationConfig Config;
  Config.Scale = Flags.getDouble("scale");
  Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));
  Config.BaselineBenchmark = Flags.getString("benchmark");

  benchutil::printHeader("adversarial degradation",
                         "worst-case overhead vs benign baseline");

  const auto Start = std::chrono::steady_clock::now();
  const std::vector<workloads::DegradationCell> Cells =
      workloads::computeDegradation(Config);
  const auto End = std::chrono::steady_clock::now();
  const double ElapsedMs =
      std::chrono::duration<double, std::milli>(End - Start).count();

  Table Out({"Adversary", "Granularity", "Miss rate", "Overhead (instr)",
             "Degradation"});
  uint64_t Accesses = 0;
  for (const workloads::DegradationCell &Cell : Cells) {
    Accesses = Cell.Adversarial.Accesses;
    Out.beginRow();
    Out.cell(Cell.Adversary);
    Out.cell(Cell.PolicyLabel);
    Out.cell(formatPercent(Cell.Adversarial.missRate(), 2));
    Out.cell(Cell.Adversarial.totalOverhead(true), 0);
    Out.cell(Cell.degradation(), 2);
  }
  std::fputs(Out.render().c_str(), stdout);

  const workloads::DegradationCell *Worst = workloads::worstCell(Cells);
  if (!Worst) {
    std::fprintf(stderr, "error: empty degradation study\n");
    return 1;
  }
  std::printf("\nworst case: %s under %s degrades %.2fx (%.1f ms total)\n",
              Worst->Adversary.c_str(), Worst->PolicyLabel.c_str(),
              Worst->degradation(), ElapsedMs);

  const std::string OutPath = Flags.getString("out");
  std::FILE *Json = std::fopen(OutPath.c_str(), "w");
  if (!Json) {
    std::fprintf(stderr, "error: could not write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Json,
               "{\n"
               "  \"bench\": \"adversarial_degradation\",\n"
               "  \"baseline\": \"%s\",\n"
               "  \"scale\": %g,\n"
               "  \"seed\": %llu,\n"
               "  \"accesses\": %llu,\n"
               "  \"adversaries\": %zu,\n"
               "  \"policies\": %zu,\n"
               "  \"max_degradation\": %.3f,\n"
               "  \"max_adversary\": \"%s\",\n"
               "  \"max_policy\": \"%s\",\n"
               "  \"elapsed_ms\": %.3f,\n"
               "  \"rows\": [\n",
               Config.BaselineBenchmark.c_str(), Config.Scale,
               static_cast<unsigned long long>(Config.Seed),
               static_cast<unsigned long long>(Accesses),
               workloads::adversarialCatalog().size(), Config.Policies.size(),
               Worst->degradation(), Worst->Adversary.c_str(),
               Worst->PolicyLabel.c_str(), ElapsedMs);
  for (size_t I = 0; I < Cells.size(); ++I) {
    const workloads::DegradationCell &Cell = Cells[I];
    std::fprintf(Json,
                 "    {\"adversary\": \"%s\", \"policy\": \"%s\", "
                 "\"misses\": %llu, \"overhead\": %.3f, "
                 "\"degradation\": %.3f}%s\n",
                 Cell.Adversary.c_str(), Cell.PolicyLabel.c_str(),
                 static_cast<unsigned long long>(Cell.Adversarial.Misses),
                 Cell.Adversarial.totalOverhead(true), Cell.degradation(),
                 I + 1 < Cells.size() ? "," : "");
  }
  std::fprintf(Json, "  ]\n}\n");
  std::fclose(Json);
  std::printf("record written to %s\n", OutPath.c_str());
  return 0;
}
