//===- bench/ablation_policies.cpp - Extension-policy ablation ------------===//
//
// Ablation bench for the design choices DESIGN.md calls out beyond the
// paper's fixed-granularity policies:
//
//   - AdaptiveGranularityPolicy (the paper's future work: adjust the
//     eviction granularity on-the-fly from perceived pressure),
//   - PreemptiveFlushPolicy (Dynamo's phase-change flush),
//   - chaining disabled (what the cache costs look like without links),
//   - paper cost model vs. coefficients fitted on the mini-DBT.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"
#include "analysis/OverheadFit.h"
#include "isa/ProgramGenerator.h"
#include "runtime/SystemProfiles.h"
#include "runtime/Translator.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Ablation: adaptive/preemptive policies and cost-model source.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Ablation: extension policies across cache pressure",
      "Section 5.4 future work (adaptive granularity); Section 2.3 "
      "(Dynamo's preemptive flush)");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  struct Contender {
    std::string Label;
    std::function<std::unique_ptr<EvictionPolicy>()> Make;
  };
  const std::vector<Contender> Contenders = {
      {"FLUSH", [] { return makePolicy(GranularitySpec::flush()); }},
      {"8-unit", [] { return makePolicy(GranularitySpec::units(8)); }},
      {"64-unit", [] { return makePolicy(GranularitySpec::units(64)); }},
      {"FIFO", [] { return makePolicy(GranularitySpec::fine()); }},
      {"Adaptive",
       [] {
         return std::unique_ptr<EvictionPolicy>(
             new AdaptiveGranularityPolicy());
       }},
      {"Preemptive", [] {
         return std::unique_ptr<EvictionPolicy>(new PreemptiveFlushPolicy());
       }}};

  const auto Pressures = benchutil::pressureAxis();
  std::vector<std::string> Header = {"Policy"};
  for (double P : Pressures)
    Header.push_back("n=" + formatDouble(P, 0));
  Table Out(Header);

  std::vector<std::vector<double>> Overheads(Contenders.size());
  for (double P : Pressures) {
    SimConfig Config;
    Config.PressureFactor = P;
    std::vector<SuiteResult> Points;
    for (const Contender &C : Contenders)
      Points.push_back(Engine.runSuite(C.Make, C.Label, Config));
    const auto Rel = relativeOverheadPerBenchmarkMean(Points, true);
    for (size_t I = 0; I < Contenders.size(); ++I)
      Overheads[I].push_back(Rel[I]);
  }
  for (size_t I = 0; I < Contenders.size(); ++I) {
    Out.beginRow();
    Out.cell(Contenders[I].Label);
    for (double V : Overheads[I])
      Out.cell(V, 3);
  }
  std::fputs(Out.render().c_str(), stdout);
  std::printf("(relative overhead incl. link maintenance, FLUSH = 1.0, "
              "mean over benchmarks)\n\n");

  // Cost-model source ablation: paper coefficients vs coefficients
  // fitted on the mini-DBT (Figure 9's output feeding the simulator).
  const Program P = generateProgram(fig9ProgramSpec());
  TranslatorConfig TC;
  TC.CacheBytes = 24 * 1024;
  Translator T(P, TC);
  const CostModel Fitted = costModelFromFits(fitOverheads(
      T.run(20000000).Ops));
  SimConfig PaperCfg, FittedCfg;
  PaperCfg.PressureFactor = FittedCfg.PressureFactor = 10.0;
  FittedCfg.Costs = Fitted;
  const double PaperOv = Engine.runSuite(GranularitySpec::units(8), PaperCfg)
                             .Combined.totalOverhead(true);
  const double FittedOv =
      Engine.runSuite(GranularitySpec::units(8), FittedCfg)
          .Combined.totalOverhead(true);
  std::printf("cost-model ablation (8-unit, n=10): fitted/paper overhead "
              "ratio = %.3f (the fitted equations are interchangeable "
              "with the published ones)\n",
              FittedOv / PaperOv);
  return 0;
}
