//===- bench/BenchCommon.h - Shared experiment-harness helpers -----------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: a common flag set
/// (--scale, --seed, pressure controls), engine construction, and uniform
/// headers so EXPERIMENTS.md can be assembled from bench output directly.
///
//===----------------------------------------------------------------------===//

#ifndef CCSIM_BENCH_BENCHCOMMON_H
#define CCSIM_BENCH_BENCHCOMMON_H

#include "sim/Sweep.h"
#include "support/Csv.h"
#include "support/Flags.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>
#include <string>
#include <vector>

namespace ccsim {
namespace benchutil {

/// Flag set shared by figure benches. --scale shrinks the suite for
/// smoke runs; 1.0 reproduces the full Table 1 suite.
inline FlagSet standardFlags(const std::string &Description) {
  FlagSet Flags(Description);
  Flags.addDouble("scale", 1.0,
                  "Suite size multiplier (1.0 = full Table 1 suite).");
  Flags.addInt("seed", static_cast<int64_t>(DefaultSuiteSeed),
               "Suite trace-generation seed.");
  Flags.addString("csv", "", "Optional path to also write the series as CSV.");
  return Flags;
}

/// Saves a label x pressure matrix as CSV when --csv was given.
inline void maybeWriteCsv(const FlagSet &Flags,
                          const std::vector<std::string> &Labels,
                          const std::vector<double> &Pressures,
                          const std::vector<std::vector<double>> &Series) {
  const std::string Path = Flags.getString("csv");
  if (Path.empty())
    return;
  std::vector<std::string> Header = {"granularity"};
  for (double P : Pressures)
    Header.push_back("n" + formatDouble(P, 0));
  CsvWriter Csv(Header);
  for (size_t G = 0; G < Labels.size(); ++G) {
    Csv.beginRow();
    Csv.cell(Labels[G]);
    for (size_t PI = 0; PI < Pressures.size(); ++PI)
      Csv.cell(Series[PI][G], 6);
  }
  if (Csv.writeFile(Path))
    std::printf("csv series written to %s\n", Path.c_str());
  else
    std::fprintf(stderr, "warning: could not write %s\n", Path.c_str());
}

/// Builds the sweep engine for the parsed flags.
inline SweepEngine makeEngine(const FlagSet &Flags) {
  const double Scale = Flags.getDouble("scale");
  const uint64_t Seed = static_cast<uint64_t>(Flags.getInt("seed"));
  if (Scale >= 0.999)
    return SweepEngine::forTable1(Seed);
  return SweepEngine::forScaledTable1(Scale, Seed);
}

/// Prints the uniform experiment header.
inline void printHeader(const std::string &Title,
                        const std::string &PaperReference) {
  std::printf("== %s ==\n", Title.c_str());
  std::printf("paper reference: %s\n\n", PaperReference.c_str());
}

/// The pressure axis of Figures 7, 11 and 15.
inline std::vector<double> pressureAxis() { return {2, 4, 6, 8, 10}; }

} // namespace benchutil
} // namespace ccsim

#endif // CCSIM_BENCH_BENCHCOMMON_H
