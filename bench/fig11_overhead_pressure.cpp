//===- bench/fig11_overhead_pressure.cpp - Reproduces Figure 11 -----------===//
//
// Figure 11: relative overhead (miss + eviction, no link maintenance) of
// each granularity as pressure increases, normalized to FLUSH at each
// pressure.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 11: relative overhead as cache pressure increases.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 11: Relative overhead (miss + eviction) vs cache pressure",
      "Figure 11: the finest-grained policy starts out better than FLUSH "
      "and loses ground as pressure increases, eventually crossing it; "
      "medium grains stay best");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  const auto Pressures = benchutil::pressureAxis();
  std::vector<std::string> Labels;
  std::vector<std::vector<double>> MeanSeries, WeightedSeries;
  for (double P : Pressures) {
    SimConfig Config;
    Config.PressureFactor = P;
    const auto Results = Engine.sweepGranularities(Config);
    if (Labels.empty())
      for (const SuiteResult &R : Results)
        Labels.push_back(R.PolicyLabel);
    MeanSeries.push_back(relativeOverheadPerBenchmarkMean(Results, false));
    WeightedSeries.push_back(relativeOverheadWeighted(Results, false));
  }

  auto Emit = [&](const char *Title,
                  const std::vector<std::vector<double>> &Series) {
    std::printf("%s\n", Title);
    std::vector<std::string> Header = {"Granularity"};
    for (double P : Pressures)
      Header.push_back("n=" + formatDouble(P, 0));
    Table Out(Header);
    for (size_t G = 0; G < Labels.size(); ++G) {
      Out.beginRow();
      Out.cell(Labels[G]);
      for (size_t PI = 0; PI < Pressures.size(); ++PI)
        Out.cell(Series[PI][G], 3);
    }
    std::fputs(Out.render().c_str(), stdout);
    std::printf("\n");
  };

  Emit("mean of per-benchmark relative overheads:", MeanSeries);
  Emit("Eq.1-weighted relative overheads:", WeightedSeries);

  std::printf("fine-grained FIFO trend (mean aggregation): %.3f at n=2 "
              "-> %.3f at n=10 (paper: rises toward and past 1.0)\n",
              MeanSeries.front().back(), MeanSeries.back().back());
  benchutil::maybeWriteCsv(Flags, Labels, Pressures, MeanSeries);
  return 0;
}
