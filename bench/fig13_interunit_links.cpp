//===- bench/fig13_interunit_links.cpp - Reproduces Figure 13 -------------===//
//
// Figure 13: percentage of materialized links whose endpoints live in
// different cache units, per granularity (0% for FLUSH, 24.3% at 2
// units in the paper, approaching—but not reaching—100% for fine FIFO).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 13: inter-unit link percentage per granularity.");
  Flags.addDouble("pressure", 2.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 13: Links that target superblocks in different cache units",
      "Figure 13: 0% under FLUSH; 24.3% with two units; grows with the "
      "unit count; self-links keep fine FIFO below 100%");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");
  const auto Results = Engine.sweepGranularities(Config);

  Table Out({"Granularity", "Inter-unit links (Eq.1)",
             "Inter-unit links (mean/benchmark)", "Links created"});
  for (const SuiteResult &R : Results) {
    double MeanFraction = 0.0;
    size_t Count = 0;
    for (const SimResult &B : R.PerBenchmark) {
      if (B.Stats.LinksCreated == 0)
        continue;
      MeanFraction += B.Stats.interUnitLinkFraction();
      ++Count;
    }
    if (Count)
      MeanFraction /= static_cast<double>(Count);
    Out.beginRow();
    Out.cell(R.PolicyLabel);
    Out.cell(formatPercent(R.Combined.interUnitLinkFraction(), 1));
    Out.cell(formatPercent(MeanFraction, 1));
    Out.cell(R.Combined.LinksCreated);
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\n2-unit inter-unit fraction: %s (paper: 24.3%%)\n",
              formatPercent(Results[1].Combined.interUnitLinkFraction(), 1)
                  .c_str());
  return 0;
}
