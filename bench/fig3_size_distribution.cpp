//===- bench/fig3_size_distribution.cpp - Reproduces Figure 3 -------------===//
//
// Figure 3: size distribution of superblocks, SPECint2000 versus the
// interactive Windows applications (64-byte buckets, long right tails).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Histogram.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 3: superblock size distributions per suite.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 3: Size distribution of superblocks",
      "Figure 3: both suites peak in the 64-320 byte range with a long "
      "tail; the Windows tail is markedly heavier");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  Histogram Spec(64.0, 12), Windows(64.0, 12);
  for (size_t I = 0; I < Engine.traces().size(); ++I) {
    const bool IsSpec =
        table1Workloads()[I].Suite == SuiteKind::SpecInt2000;
    for (const SuperblockDef &B : Engine.traces()[I].Blocks)
      (IsSpec ? Spec : Windows).add(B.SizeBytes);
  }

  std::printf("SPECint2000 benchmarks (%s superblocks):\n",
              formatWithCommas(Spec.totalCount()).c_str());
  std::fputs(Spec.render().c_str(), stdout);
  std::printf("\nWindows benchmarks (%s superblocks):\n",
              formatWithCommas(Windows.totalCount()).c_str());
  std::fputs(Windows.render().c_str(), stdout);

  std::printf("\ntail mass above 768 bytes: SPEC %s vs Windows %s "
              "(Windows tail must be heavier)\n",
              formatPercent(Spec.bucketFraction(Spec.numBuckets())).c_str(),
              formatPercent(Windows.bucketFraction(Windows.numBuckets()))
                  .c_str());
  return 0;
}
