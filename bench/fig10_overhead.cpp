//===- bench/fig10_overhead.cpp - Reproduces Figure 10 --------------------===//
//
// Figure 10: relative overhead (miss + eviction penalties, no link
// maintenance) of each granularity, normalized to FLUSH, with the cache
// sized at maxCache/10.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"
#include "support/AsciiChart.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 10: relative overhead of eviction granularities.");
  Flags.addDouble("pressure", 10.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 10: Relative overhead (miss + eviction), cache = maxCache/" +
          formatDouble(Flags.getDouble("pressure"), 0),
      "Figure 10: coarse policies on the far left perform worst; the "
      "minimum is at medium granularity; the finest grains rise again "
      "due to frequent eviction invocations");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");
  const auto Results = Engine.sweepGranularities(Config);
  const auto Weighted = relativeOverheadWeighted(Results, false);
  const auto Mean = relativeOverheadPerBenchmarkMean(Results, false);

  Table Out({"Granularity", "Relative (Eq.1)", "Relative (mean/benchmark)",
             "Miss rate", "Evictions"});
  for (size_t I = 0; I < Results.size(); ++I) {
    Out.beginRow();
    Out.cell(Results[I].PolicyLabel);
    Out.cell(Weighted[I], 3);
    Out.cell(Mean[I], 3);
    Out.cell(formatPercent(Results[I].Combined.missRate(), 2));
    Out.cell(Results[I].Combined.EvictionInvocations);
  }
  std::fputs(Out.render().c_str(), stdout);

  BarChart Chart;
  for (size_t I = 0; I < Results.size(); ++I)
    Chart.add(Results[I].PolicyLabel, Mean[I]);
  std::printf("\n%s", Chart.render().c_str());

  // Locate the minimum of the per-benchmark-mean curve.
  size_t Best = 0;
  for (size_t I = 1; I < Mean.size(); ++I)
    if (Mean[I] < Mean[Best])
      Best = I;
  std::printf("\nminimum of the curve: %s at %.3f; fine end (FIFO) at "
              "%.3f (paper: minimum at medium granularity, fine end "
              "higher)\n",
              Results[Best].PolicyLabel.c_str(), Mean[Best], Mean.back());
  return 0;
}
