//===- bench/sensitivity_hotness.cpp - Hotness threshold sensitivity ------===//
//
// Section 4.1 fixes DynamoRIO's hotness threshold at 50 executions.
// This bench sweeps the threshold on the mini-DBT and shows the
// interpretation-vs-translation tradeoff it controls: a low threshold
// translates cold code (wasting regeneration work and cache space), a
// high threshold interprets hot code for too long.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "isa/ProgramGenerator.h"
#include "runtime/SystemProfiles.h"
#include "runtime/Translator.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags("Sensitivity: mini-DBT cost vs hotness threshold.");
  Flags.addInt("budget", 20000000, "Guest instruction budget per run.");
  Flags.addInt("cache-kb", 10, "Code cache size in KB.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Sensitivity: the hotness threshold (DynamoRIO uses 50)",
      "Section 4.1: 'a superblock is considered hot when it has been "
      "executed 50 times'");

  // A cold-heavy program: many phases over a wide call graph, so much
  // of the code runs only a handful of times. Eager translation then
  // wastes regeneration work and churns the (small) cache.
  ProgramSpec Spec;
  Spec.NumFunctions = 110;
  Spec.MinBlocksPerFunction = 4;
  Spec.MaxBlocksPerFunction = 10;
  Spec.MinAluPerBlock = 5;
  Spec.MaxAluPerBlock = 16;
  Spec.OuterIterations = 160;
  Spec.MainPhases = 10;
  Spec.InnerIterations = 4;
  Spec.TopLevelCalls = 10;
  Spec.MeanCallsPerFunction = 0.6;
  Spec.RareBranchProb = 0.25;
  Spec.Seed = 4242;
  const Program P = generateProgram(Spec);

  Table Out({"Threshold", "Fragments", "Interp instrs", "Cache instrs",
             "Evictions", "Total ops", "vs t=50"});
  double Baseline = 0.0;
  std::vector<std::pair<uint32_t, double>> Series;
  for (uint32_t Threshold : {2u, 5u, 10u, 25u, 50u, 100u, 250u, 1000u}) {
    TranslatorConfig Config;
    Config.CacheBytes = static_cast<uint64_t>(Flags.getInt("cache-kb"))
                        << 10;
    Config.HotThreshold = Threshold;
    Translator T(P, Config);
    const TranslatorStats &S =
        T.run(static_cast<uint64_t>(Flags.getInt("budget")));
    if (Threshold == 50)
      Baseline = S.Ops.total();
    Series.emplace_back(Threshold, S.Ops.total());
    Out.beginRow();
    Out.cell("t=" + std::to_string(Threshold));
    Out.cell(S.FragmentsBuilt);
    Out.cell(S.InterpretedInstructions);
    Out.cell(S.CacheInstructions);
    Out.cell(S.EvictionInvocations);
    Out.cell(static_cast<uint64_t>(S.Ops.total()));
    Out.cell("-"); // Filled below once the baseline is known.
  }
  // Re-render with the relative column now that t=50 is known.
  Table Final({"Threshold", "Total ops", "vs t=50"});
  for (const auto &[Threshold, Ops] : Series) {
    Final.beginRow();
    Final.cell("t=" + std::to_string(Threshold));
    Final.cell(static_cast<uint64_t>(Ops));
    Final.cell(Baseline > 0 ? Ops / Baseline : 0.0, 3);
  }
  std::fputs(Out.render().c_str(), stdout);
  std::printf("\nrelative cost:\n%s", Final.render().c_str());
  std::printf("\nBoth extremes lose: translating at t=2 wastes "
              "regeneration on cold code; waiting until t=1000 keeps hot "
              "code in the (20x slower) interpreter.\n");
  return 0;
}
