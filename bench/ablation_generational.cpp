//===- bench/ablation_generational.cpp - Generational cache study --------===//
//
// Section 2.2's citation [15] (Hazelwood & Smith, MICRO 2003) extends
// single code caches to "multiple superblock code caches distinguished
// by the lifetimes of the superblocks they contain". This ablation pits
// a single 8-unit FIFO cache against a two-generation design (nursery +
// tenured) on the same traces, same total capacity: regeneration-prone
// long-lived blocks are tenured, so phase churn cannot evict them.
//
// Overheads here are miss + eviction (the Figure 10/11 model): the
// generational manager does not model cross-generation chaining.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/GenerationalCache.h"

using namespace ccsim;

namespace {

struct GenOutcome {
  CacheStats Stats;
  uint64_t Promotions = 0;
};

GenOutcome runGenerational(const Trace &T, uint64_t Capacity,
                           double TenuredFraction) {
  GenerationalConfig Config;
  Config.CapacityBytes = Capacity;
  Config.TenuredFraction = TenuredFraction;
  Config.PromoteAfterInserts = 3;
  GenerationalCacheManager M(Config);
  for (SuperblockId Id : T.Accesses)
    M.access(T.recordFor(Id));
  return {M.stats(), M.promotions()};
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Ablation: single cache vs generational (nursery + tenured).");
  Flags.addDouble("pressure", 6.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Ablation: generational cache management (Section 2.2, ref [15])",
      "Generational caches protect long-lived superblocks from phase "
      "churn; compare against a single 8-unit FIFO at equal capacity");
  const SweepEngine Engine = benchutil::makeEngine(Flags);
  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");

  const SuiteResult Single =
      Engine.runSuite(GranularitySpec::units(8), Config);

  Table Out({"Design", "Miss rate", "Overhead vs single", "Promotions"});
  Out.beginRow();
  Out.cell("single 8-unit FIFO");
  Out.cell(formatPercent(Single.Combined.missRate(), 2));
  Out.cell(1.0, 3);
  Out.cell("-");

  const double SingleOverhead = Single.Combined.totalOverhead(false);
  for (double Fraction : {0.25, 0.5, 0.75}) {
    CacheStats Combined;
    uint64_t Promotions = 0;
    for (const Trace &T : Engine.traces()) {
      const GenOutcome R = runGenerational(
          T, sim::capacityFor(T, Config), Fraction);
      Combined.merge(R.Stats);
      Promotions += R.Promotions;
    }
    Out.beginRow();
    Out.cell("generational " + formatPercent(Fraction, 0) + " tenured");
    Out.cell(formatPercent(Combined.missRate(), 2));
    Out.cell(Combined.totalOverhead(false) / SingleOverhead, 3);
    Out.cell(Promotions);
  }
  std::fputs(Out.render().c_str(), stdout);
  std::printf("\n(ratios below 1.0 mean the generational design saved "
              "management overhead at this pressure)\n");
  return 0;
}
