//===- bench/fig14_overhead_links.cpp - Reproduces Figure 14 --------------===//
//
// Figure 14: relative overhead including cache miss, eviction, AND
// superblock link maintenance (Eq. 4), cache sized at maxCache/10,
// normalized to FLUSH (which pays no unlink costs).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 14: relative overhead including link maintenance.");
  Flags.addDouble("pressure", 10.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 14: Relative overhead incl. link maintenance, cache = "
      "maxCache/" +
          formatDouble(Flags.getDouble("pressure"), 0),
      "Figure 14: adding link maintenance moves every finer-grained "
      "policy closer to FLUSH (which needs no back-pointer table); the "
      "finest grains shift the most");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");
  const auto Results = Engine.sweepGranularities(Config);
  const auto WithLinks = relativeOverheadPerBenchmarkMean(Results, true);
  const auto WithoutLinks =
      relativeOverheadPerBenchmarkMean(Results, false);

  Table Out({"Granularity", "Relative (with links)",
             "Relative (Fig.10, no links)", "Shift", "Unlinked links"});
  for (size_t I = 0; I < Results.size(); ++I) {
    Out.beginRow();
    Out.cell(Results[I].PolicyLabel);
    Out.cell(WithLinks[I], 3);
    Out.cell(WithoutLinks[I], 3);
    Out.cell("+" + formatDouble((WithLinks[I] - WithoutLinks[I]) * 100.0, 2) +
             "pp");
    Out.cell(Results[I].Combined.UnlinkedLinks);
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nFLUSH shift must be zero; the fine end shifts the most "
              "(paper, Section 5.3: 'the largest changes occurred in the "
              "finer-grained policies')\n");
  return 0;
}
