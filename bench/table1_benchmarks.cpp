//===- bench/table1_benchmarks.cpp - Reproduces Table 1 -------------------===//
//
// Table 1 of the paper: the benchmark suite with the number of hot
// superblocks each contributes to the code cache, plus this
// reproduction's derived statistics (maxCache, accesses, link degree).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Statistics.h"
#include "trace/TraceGenerator.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Table 1: benchmarks and hot superblock counts.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader("Table 1: Benchmarks used in the evaluation",
                         "Table 1 (superblock counts are exact); Section "
                         "4.2 (maxCache 171 KB for gzip .. 34.2 MB for "
                         "word)");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  Table Out({"Name", "Superblocks", "Description", "Suite", "maxCache",
             "Accesses", "MeanDeg"});
  for (size_t I = 0; I < Engine.traces().size(); ++I) {
    const Trace &T = Engine.traces()[I];
    const WorkloadModel &M = table1Workloads()[I];
    Out.beginRow();
    Out.cell(M.Name);
    Out.cell(static_cast<uint64_t>(T.numSuperblocks()));
    Out.cell(M.Description);
    Out.cell(M.Suite == SuiteKind::SpecInt2000 ? "SPECint2000" : "Windows");
    Out.cell(formatBytes(T.maxCacheBytes()));
    Out.cell(static_cast<uint64_t>(T.numAccesses()));
    Out.cell(T.meanOutDegree(), 2);
  }
  std::fputs(Out.render().c_str(), stdout);

  uint64_t TotalBlocks = 0;
  for (const Trace &T : Engine.traces())
    TotalBlocks += T.numSuperblocks();
  std::printf("\ntotal hot superblocks across the suite: %s\n",
              formatWithCommas(TotalBlocks).c_str());
  return 0;
}
