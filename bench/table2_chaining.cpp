//===- bench/table2_chaining.cpp - Reproduces Table 2 ---------------------===//
//
// Table 2: slowdown from disabling superblock chaining, measured by
// running each SPEC proxy program through the mini dynamic binary
// translator with chaining enabled and disabled. The paper measured
// wall-clock seconds on a dual-Xeon; the reproducible quantity is the
// ratio, dominated by the memory protection changes on every dispatcher
// entry.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>
#include "runtime/SystemProfiles.h"
#include "runtime/Translator.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags("Table 2: slowdown from disabling superblock chaining.");
  Flags.addInt("budget", static_cast<int64_t>(table2RunBudget()),
               "Guest instruction budget per run.");
  Flags.addBool("no-protection", false,
                "Model a translator without memory protection (the "
                "paper's 'systems where this is not necessary').");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Table 2: Slowdown resulting from disabling superblock chaining",
      "Table 2: slowdowns range 447% (mcf) to 3357% (gzip); 'the cost "
      "... is caused by the memory protection changes'");

  const uint64_t Budget = static_cast<uint64_t>(Flags.getInt("budget"));
  Table Out({"Benchmark", "Guest instrs", "Linked (ops)", "Unlinked (ops)",
             "Slowdown", "Paper", "State eq"});
  double LogRatioSum = 0.0, PaperLogRatioSum = 0.0;
  for (const Table2Profile &Row : table2Profiles()) {
    const Program P = generateProgram(Row.Spec);
    TranslatorConfig On;
    On.CacheBytes = 32ULL << 20; // Effectively unbounded, as in the paper.
    On.Weights.ProtectTranslator = !Flags.getBool("no-protection");
    TranslatorConfig Off = On;
    Off.EnableChaining = false;

    Translator TOn(P, On), TOff(P, Off);
    const double OpsOn = TOn.run(Budget).Ops.total();
    const double OpsOff = TOff.run(Budget).Ops.total();
    const double SlowdownPct = (OpsOff / OpsOn - 1.0) * 100.0;
    LogRatioSum += std::log(OpsOff / OpsOn);
    PaperLogRatioSum += std::log(Row.PaperSlowdownPercent / 100.0 + 1.0);

    Out.beginRow();
    Out.cell(Row.Name);
    Out.cell(TOn.stats().GuestInstructions);
    Out.cell(static_cast<uint64_t>(OpsOn));
    Out.cell(static_cast<uint64_t>(OpsOff));
    Out.cell(formatDouble(SlowdownPct, 0) + "%");
    Out.cell(formatDouble(Row.PaperSlowdownPercent, 0) + "%");
    Out.cell(TOn.guestState().digest() == TOff.guestState().digest()
                 ? "yes"
                 : "NO");
  }
  std::fputs(Out.render().c_str(), stdout);

  const double N = static_cast<double>(table2Profiles().size());
  std::printf("\ngeometric-mean slowdown: %.0f%% measured vs %.0f%% paper "
              "(chaining is crucial; removing it is not an option)\n",
              (std::exp(LogRatioSum / N) - 1.0) * 100.0,
              (std::exp(PaperLogRatioSum / N) - 1.0) * 100.0);
  return 0;
}
