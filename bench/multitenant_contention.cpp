//===- bench/multitenant_contention.cpp - Shared vs partitioned caches ----===//
//
// Extension experiment (multi-tenant serving): K Table 1 benchmarks run as
// tenants of ONE code cache, their dispatch streams deterministically
// interleaved. We compare the paper's eviction granularities under three
// capacity regimes:
//
//   shared           one FIFO over everyone's code: tenants evict each
//                    other (the cross-tenant matrix quantifies it),
//   static-partition capacity split by weight, full isolation,
//   unit-quota       capacity split in whole eviction units, unit-FIFO
//                    eviction inside each tenant's own quota.
//
// Output per (granularity, mode): per-tenant and aggregate miss rates and
// modeled overheads (Eqs. 2-4), plus blocks lost to other tenants.
//
// Run: ./multitenant_contention --tenants=gzip,vpr,crafty,twolf --scale=0.2
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "concurrent/MultiTenantSimulator.h"
#include "trace/TraceGenerator.h"

#include <cstdio>

using namespace ccsim;

namespace {

std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : Text) {
    if (C == ',') {
      if (!Cur.empty())
        Parts.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Parts.push_back(Cur);
  return Parts;
}

GranularitySpec parseGranularity(const std::string &Text) {
  if (Text == "flush" || Text == "FLUSH")
    return GranularitySpec::flush();
  if (Text == "fine" || Text == "fifo" || Text == "FIFO")
    return GranularitySpec::fine();
  const long Units = std::strtol(Text.c_str(), nullptr, 10);
  if (Units >= 1)
    return GranularitySpec::units(static_cast<unsigned>(Units));
  std::fprintf(stderr, "warning: bad granularity '%s', using 8 units\n",
               Text.c_str());
  return GranularitySpec::units(8);
}

void printRun(const MultiTenantResult &R) {
  std::printf("-- %s / %s (schedule %s, capacity %s)\n", R.PolicyLabel.c_str(),
              R.ModeLabel.c_str(), R.ScheduleLabel.c_str(),
              formatBytes(R.TotalCapacityBytes).c_str());
  Table Out({"Tenant", "Capacity", "Miss rate", "Evictions", "Lost blocks",
             "Lost to others", "Overhead (instr)"});
  for (size_t T = 0; T < R.Tenants.size(); ++T) {
    const TenantResult &TR = R.Tenants[T];
    Out.beginRow();
    Out.cell(TR.Name);
    Out.cell(TR.CapacityBytes ? formatBytes(TR.CapacityBytes)
                              : std::string("(shared)"));
    Out.cell(formatPercent(TR.missRate(), 3));
    Out.cell(TR.EvictionInvocationsTriggered);
    Out.cell(TR.BlocksEvicted);
    Out.cell(TR.BlocksLostToOthers);
    Out.cell(TR.totalOverhead(true), 0);
  }
  double TenantOverhead = 0.0;
  uint64_t LostToOthers = 0;
  for (const TenantResult &TR : R.Tenants) {
    TenantOverhead += TR.totalOverhead(true);
    LostToOthers += TR.BlocksLostToOthers;
  }
  Out.beginRow();
  Out.cell("ALL");
  Out.cell(formatBytes(R.TotalCapacityBytes));
  Out.cell(formatPercent(R.aggregateMissRate(), 3));
  Out.cell(R.Global.EvictionInvocations);
  Out.cell(R.Global.EvictedBlocks);
  Out.cell(LostToOthers);
  Out.cell(TenantOverhead, 0);
  std::fputs(Out.render().c_str(), stdout);

  if (LostToOthers > 0) {
    std::printf("cross-tenant evictions (row evicts column, blocks):\n");
    std::vector<std::string> Header = {"evictor \\ victim"};
    for (const TenantResult &TR : R.Tenants)
      Header.push_back(TR.Name);
    Table Cross(Header);
    for (size_t E = 0; E < R.Tenants.size(); ++E) {
      Cross.beginRow();
      Cross.cell(R.Tenants[E].Name);
      for (size_t V = 0; V < R.Tenants.size(); ++V)
        Cross.cell(R.crossEvictions(E, V));
    }
    std::fputs(Cross.render().c_str(), stdout);
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Multi-tenant contention: shared vs partitioned code "
                "caches across eviction granularities.");
  Flags.addString("tenants", "gzip,vpr,crafty,twolf",
                  "Comma-separated Table 1 benchmark names.");
  Flags.addString("granularities", "flush,8,fine",
                  "Comma-separated granularities (flush | fine | <units>).");
  Flags.addString("modes", "shared,static,quota",
                  "Comma-separated partition modes.");
  Flags.addString("schedule", "rr", "Interleaving: rr | weighted.");
  Flags.addDouble("pressure", 2.0,
                  "Cache pressure (capacity = sum maxCache / pressure).");
  Flags.addDouble("scale", 0.25, "Workload size multiplier.");
  Flags.addInt("seed", 42, "Trace generation seed.");
  Flags.addInt("schedule-seed", 0x7e9a9751LL, "Weighted schedule seed.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Multi-tenant contention: shared code caches across guests",
      "extension of Sections 4-5 (ShareJIT/Memshare-style multi-tenancy)");

  std::vector<Trace> Traces;
  for (const std::string &Name : splitList(Flags.getString("tenants"))) {
    const WorkloadModel *M = findWorkload(Name);
    if (!M) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n", Name.c_str());
      return 1;
    }
    WorkloadModel Chosen = *M;
    if (Flags.getDouble("scale") < 0.999)
      Chosen = scaledWorkload(*M, Flags.getDouble("scale"));
    Traces.push_back(TraceGenerator::generateBenchmark(
        Chosen, static_cast<uint64_t>(Flags.getInt("seed"))));
  }
  if (Traces.size() < 2) {
    std::fprintf(stderr, "error: need at least two tenants\n");
    return 1;
  }

  for (const std::string &GranText :
       splitList(Flags.getString("granularities"))) {
    for (const std::string &ModeText : splitList(Flags.getString("modes"))) {
      const std::optional<PartitionMode> Mode = parsePartitionMode(ModeText);
      if (!Mode) {
        std::fprintf(stderr, "warning: unknown mode '%s', skipping\n",
                     ModeText.c_str());
        continue;
      }
      TenancyPolicy Policy =
          TenancyPolicy()
              .withGranularity(parseGranularity(GranText))
              .withMode(*Mode)
              .withSchedule(Flags.getString("schedule") == "weighted"
                                ? InterleaveKind::Weighted
                                : InterleaveKind::RoundRobin)
              .withScheduleSeed(
                  static_cast<uint64_t>(Flags.getInt("schedule-seed")))
              .withPressure(Flags.getDouble("pressure"));

      MultiTenantSimulator Sim(Traces, Policy);
      printRun(Sim.run());
    }
  }
  return 0;
}
