//===- bench/fig9_eviction_regression.cpp - Reproduces Figure 9 / Eqs 2-4 -===//
//
// Figure 9 and Equations 2-4: run the mini dynamic binary translator (the
// DynamoRIO substitute) against a small code cache, log every eviction /
// regeneration / unlink event with its instrumented instruction count
// (the PAPI substitute), and fit least-squares lines:
//
//   Eq. 2  evictionOverhead  = 2.77  * sizeBytes + 3055
//   Eq. 3  missOverhead      = 75.4  * sizeBytes + 1922
//   Eq. 4  unlinkingOverhead = 296.5 * numLinks  + 95.7
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/OverheadFit.h"
#include "isa/ProgramGenerator.h"
#include "runtime/SystemProfiles.h"
#include "runtime/Translator.h"
#include "support/Histogram.h"

using namespace ccsim;

static void printFit(const char *Name, const LinearFit &Fit,
                     double PaperSlope, double PaperIntercept,
                     const char *Unit) {
  std::printf("%-10s fitted: %7.2f * %s + %7.1f   (R^2 = %.4f, n = %s)\n",
              Name, Fit.Slope, Unit, Fit.Intercept, Fit.R2,
              formatWithCommas(Fit.NumSamples).c_str());
  std::printf("%-10s paper:  %7.2f * %s + %7.1f   (slope err %.1f%%, "
              "intercept err %.1f%%)\n",
              "", PaperSlope, Unit, PaperIntercept,
              relativeError(Fit.Slope, PaperSlope) * 100.0,
              relativeError(Fit.Intercept, PaperIntercept) * 100.0);
}

int main(int Argc, char **Argv) {
  FlagSet Flags("Figure 9 / Equations 2-4: overhead regressions measured "
                "on the mini-DBT.");
  Flags.addInt("cache-kb", 24, "Code cache size for the eviction study.");
  Flags.addInt("budget", 30000000, "Guest instruction budget.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 9: Overhead (instruction count) of code cache evictions",
      "Section 4.3: 'a log of over 10,000 code cache evictions'; Eq. 2 = "
      "2.77x+3055, Eq. 3 = 75.4x+1922, Eq. 4 = 296.5x+95.7");

  const Program P = generateProgram(fig9ProgramSpec());
  TranslatorConfig Config;
  Config.CacheBytes = static_cast<uint64_t>(Flags.getInt("cache-kb")) * 1024;
  Translator T(P, Config);
  const TranslatorStats &Stats =
      T.run(static_cast<uint64_t>(Flags.getInt("budget")));

  std::printf("mini-DBT run: %s guest instructions, %s fragments built, "
              "%s evictions logged\n\n",
              formatWithCommas(Stats.GuestInstructions).c_str(),
              formatWithCommas(Stats.FragmentsBuilt).c_str(),
              formatWithCommas(Stats.EvictionInvocations).c_str());

  const OverheadFits Fits = fitOverheads(Stats.Ops);
  printFit("eviction", Fits.Eviction, 2.77, 3055.0, "bytes");
  std::printf("\n");
  printFit("miss", Fits.Miss, 75.4, 1922.0, "bytes");
  std::printf("\n");
  printFit("unlinking", Fits.Unlink, 296.5, 95.7, "links");

  // The scatter of Figure 9: eviction sizes vs instructions, as a
  // bucketed profile.
  std::printf("\neviction size distribution (the regression's x axis):\n");
  Histogram Sizes(256.0, 10);
  for (const OpCounter::Sample &S : Stats.Ops.EvictionSamples)
    Sizes.add(S.X);
  std::fputs(Sizes.render(40).c_str(), stdout);

  // Sanity check mirrored from the paper's discussion.
  const double EvictAt230 = Fits.Eviction.eval(230.0);
  const double MissAt230 = Fits.Miss.eval(230.0);
  std::printf("\nfitted eviction of 230 bytes: %.0f instructions (paper: "
              "~3,690)\n",
              EvictAt230);
  std::printf("fitted miss for 230 bytes:    %.0f instructions (paper: "
              "~19,264)\n",
              MissAt230);
  return 0;
}
