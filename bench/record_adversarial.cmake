# record_adversarial.cmake - run/validate the adversarial degradation
# benchmark record.
#
# Script mode (cmake -P) helper behind bench/record_bench.sh adversarial
# and the CI bench step. Two jobs:
#
#   1. Optionally run the adversarial_degradation binary first:
#        cmake -DADVERSARIAL_BIN=<path/to/adversarial_degradation> \
#              -DADVERSARIAL_JSON=<out.json> \
#              [-DADVERSARIAL_ARGS=--scale=0.25] \
#              -P bench/record_adversarial.cmake
#      (ADVERSARIAL_ARGS is a semicolon-separated list of extra flags.)
#
#   2. Validate the BENCH_adversarial.json schema, and gate the
#      correctness claim: max_degradation must be >= 5.0 — the acceptance
#      floor of the adversarial suite (at least one granularity degrades
#      fivefold against a benign workload of equal length). Wall-clock
#      numbers are never gated.
#
# Exits nonzero (FATAL_ERROR) on any schema violation or a degradation
# floor miss.

cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED ADVERSARIAL_JSON)
  message(FATAL_ERROR "pass -DADVERSARIAL_JSON=<path to BENCH_adversarial.json>")
endif()

if(DEFINED ADVERSARIAL_BIN)
  message(STATUS "running ${ADVERSARIAL_BIN} --out=${ADVERSARIAL_JSON} "
                 "${ADVERSARIAL_ARGS}")
  execute_process(
    COMMAND "${ADVERSARIAL_BIN}" "--out=${ADVERSARIAL_JSON}"
            ${ADVERSARIAL_ARGS}
    RESULT_VARIABLE RunResult)
  if(NOT RunResult EQUAL 0)
    message(FATAL_ERROR "adversarial_degradation exited ${RunResult}")
  endif()
endif()

if(NOT EXISTS "${ADVERSARIAL_JSON}")
  message(FATAL_ERROR "no record at ${ADVERSARIAL_JSON}")
endif()
file(READ "${ADVERSARIAL_JSON}" Record)

# Every key adversarial_degradation writes; a missing or retyped key
# breaks the consumers (CI trend tracking, bench/record_bench.sh).
set(RequiredKeys
  bench baseline scale seed accesses adversaries policies
  max_degradation max_adversary max_policy elapsed_ms rows)
foreach(Key IN LISTS RequiredKeys)
  string(JSON Value ERROR_VARIABLE JsonError GET "${Record}" "${Key}")
  if(JsonError)
    message(FATAL_ERROR
            "BENCH_adversarial.json: missing key '${Key}': ${JsonError}")
  endif()
endforeach()

string(JSON BenchName GET "${Record}" bench)
if(NOT BenchName STREQUAL "adversarial_degradation")
  message(FATAL_ERROR "BENCH_adversarial.json: bench is '${BenchName}', "
                      "expected 'adversarial_degradation'")
endif()

foreach(Key accesses adversaries policies)
  string(JSON Value GET "${Record}" "${Key}")
  if(Value LESS_EQUAL 0)
    message(FATAL_ERROR
            "BENCH_adversarial.json: ${Key}=${Value} must be positive")
  endif()
endforeach()

# The acceptance floor: some granularity must degrade at least fivefold
# under some adversary, or the suite has stopped being adversarial.
string(JSON MaxDegradation GET "${Record}" max_degradation)
if(MaxDegradation LESS 5.0)
  message(FATAL_ERROR "BENCH_adversarial.json: max_degradation="
                      "${MaxDegradation} is below the 5.0 acceptance floor")
endif()

string(JSON MaxAdversary GET "${Record}" max_adversary)
string(JSON MaxPolicy GET "${Record}" max_policy)
message(STATUS "BENCH_adversarial.json ok: worst case ${MaxAdversary} under "
               "${MaxPolicy} at ${MaxDegradation}x")
