#!/usr/bin/env bash
# record_bench.sh - build and run a recorded benchmark, then validate and
# install its BENCH_*.json record at the repo root.
#
# Usage:
#   bench/record_bench.sh                      # sweep lattice, scale 0.1
#   bench/record_bench.sh --scale=0.02         # quicker sweep smoke
#   bench/record_bench.sh --pressures=2        # hit-dominated slice
#   bench/record_bench.sh adversarial          # degradation, scale 0.25
#   bench/record_bench.sh adversarial --seed=7 # custom adversarial run
#   bench/record_bench.sh service              # 20M-op shared-engine run
#   bench/record_bench.sh service --ops=500000 # quicker service smoke
#   bench/record_bench.sh sharing              # cross-tenant sharing study
#   bench/record_bench.sh sharing --scale=0.5  # quicker sharing smoke
#
# The first argument selects the benchmark ("sweep", the default,
# "adversarial", "service", or "sharing"); every other flag is forwarded
# to the binary. The build tree defaults to ./build (override with
# BUILD_DIR). A record is only installed if its binary exits 0 AND its
# validator passes: sweep gates bit-identity of the one-pass results,
# adversarial gates the 5x degradation floor, service gates the
# shared-engine conservation/audit/accounting invariants, sharing gates
# the refcount-conservation and footprint-dedup claims. Schema
# validation happens in the record_*.cmake scripts so CI can reuse them
# without a shell.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

MODE=sweep
if [[ $# -gt 0 && $1 != --* ]]; then
  MODE="$1"
  shift
fi

case "$MODE" in
sweep)
  SCALE_ARGS=("$@")
  if [[ $# -eq 0 ]]; then
    SCALE_ARGS=(--scale=0.1)
  fi
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" --target sweep_onepass -j "$(nproc)"
  ARGS_LIST="$(IFS=';'; echo "${SCALE_ARGS[*]}")"
  cmake -DSWEEP_ONEPASS="$BUILD/bench/sweep_onepass" \
        -DSWEEP_JSON="$ROOT/BENCH_sweep.json" \
        -DSWEEP_ARGS="$ARGS_LIST" \
        -P "$ROOT/bench/record_bench.cmake"
  echo "recorded $ROOT/BENCH_sweep.json"
  ;;
adversarial)
  SCALE_ARGS=("$@")
  if [[ $# -eq 0 ]]; then
    SCALE_ARGS=(--scale=0.25)
  fi
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" --target adversarial_degradation -j "$(nproc)"
  ARGS_LIST="$(IFS=';'; echo "${SCALE_ARGS[*]}")"
  cmake -DADVERSARIAL_BIN="$BUILD/bench/adversarial_degradation" \
        -DADVERSARIAL_JSON="$ROOT/BENCH_adversarial.json" \
        -DADVERSARIAL_ARGS="$ARGS_LIST" \
        -P "$ROOT/bench/record_adversarial.cmake"
  echo "recorded $ROOT/BENCH_adversarial.json"
  ;;
service)
  SCALE_ARGS=("$@")
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" --target service_stress -j "$(nproc)"
  ARGS_LIST="$(IFS=';'; echo "${SCALE_ARGS[*]}")"
  cmake -DSERVICE_BIN="$BUILD/bench/service_stress" \
        -DSERVICE_JSON="$ROOT/BENCH_service.json" \
        -DSERVICE_ARGS="$ARGS_LIST" \
        -P "$ROOT/bench/record_service.cmake"
  echo "recorded $ROOT/BENCH_service.json"
  ;;
sharing)
  SCALE_ARGS=("$@")
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" --target tenant_sharing -j "$(nproc)"
  ARGS_LIST="$(IFS=';'; echo "${SCALE_ARGS[*]}")"
  cmake -DSHARING_BIN="$BUILD/bench/tenant_sharing" \
        -DSHARING_JSON="$ROOT/BENCH_sharing.json" \
        -DSHARING_ARGS="$ARGS_LIST" \
        -P "$ROOT/bench/record_sharing.cmake"
  echo "recorded $ROOT/BENCH_sharing.json"
  ;;
*)
  echo "unknown benchmark '$MODE' (sweep | adversarial | service | sharing)" >&2
  exit 1
  ;;
esac
