#!/usr/bin/env bash
# record_bench.sh - build and run the one-pass sweep benchmark, then
# validate and install the BENCH_sweep.json record at the repo root.
#
# Usage:
#   bench/record_bench.sh                 # paper lattice at scale 0.1
#   bench/record_bench.sh --scale=0.02    # quicker smoke record
#   bench/record_bench.sh --pressures=2   # hit-dominated slice
#
# All flags are forwarded to bench/sweep_onepass. The build tree defaults
# to ./build (override with BUILD_DIR). The record is only installed if
# sweep_onepass exits 0, i.e. the one-pass and per-config results were
# bit-identical; schema validation happens in record_bench.cmake so CI
# can reuse it without a shell.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

SCALE_ARGS=("$@")
if [[ $# -eq 0 ]]; then
  SCALE_ARGS=(--scale=0.1)
fi

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" --target sweep_onepass -j "$(nproc)"

ARGS_LIST="$(IFS=';'; echo "${SCALE_ARGS[*]}")"
cmake -DSWEEP_ONEPASS="$BUILD/bench/sweep_onepass" \
      -DSWEEP_JSON="$ROOT/BENCH_sweep.json" \
      -DSWEEP_ARGS="$ARGS_LIST" \
      -P "$ROOT/bench/record_bench.cmake"

echo "recorded $ROOT/BENCH_sweep.json"
