//===- bench/service_stress.cpp - Thread-shared engine stress record ------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
//
// The scaling record of the thread-shared CacheEngine, in two sections:
//
//   1. Engine stress: a fixed budget of find/add/evict operations (20M by
//      default) hammered through one SharedCacheEngine by 1..K installer
//      threads (runConcurrentInstall). Every row replays the same total
//      work, so rows compare directly; each row ends in a full structural
//      audit (auditSharedEngine at the final quiesce) plus the operation
//      conservation identities.
//
//   2. Service scale-out: thousands of shared-replay jobs pushed through a
//      bounded SimService queue faster than the workers drain it, once per
//      backpressure policy. The gate is exact accounting: every submitted
//      job ends in exactly one terminal state and the tallies sum back to
//      the submission count.
//
// Correctness (conservation, audits, accounting) is gated by
// bench/record_service.cmake; wall-clock numbers are recorded but never
// gated. Scaling is reported honestly: misses serialize on the engine
// lock by design (the deferred-settlement contract), so find-dominated
// mixes scale and miss-dominated mixes flatten -- the record keeps both
// the rates and the contention counters that explain them.
//
// Run: ./service_stress --ops=20000000 --threads=8 --out=BENCH_service.json
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "check/CacheAuditor.h"
#include "runtime/ConcurrentInstaller.h"
#include "service/LoadDriver.h"
#include "trace/TraceGenerator.h"
#include "trace/WorkloadModel.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ccsim;

namespace {

struct EngineRow {
  unsigned Threads = 0;
  double ElapsedMs = 0.0;
  double MopsPerSec = 0.0;
  double Speedup = 1.0;
  InstallerReport Report;
  bool ConservationOk = false;
  bool AuditClean = false;
};

struct LoadRow {
  const char *Policy = "";
  double ElapsedMs = 0.0;
  service::LoadDriverReport Report;
};

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Stress the thread-shared CacheEngine over 1..K guest "
                "threads and the SimService under sustained load, "
                "recording scaling and contention as JSON.");
  Flags.addInt("ops", 20000000,
               "Total find/add/evict operations per engine-stress row.");
  Flags.addInt("threads", 8, "Max installer threads (rows double up to "
                             "this).");
  Flags.addInt("working-set", 16384, "Distinct fragments in the shared "
                                     "working set.");
  Flags.addInt("fragment-bytes", 64, "Mean fragment size in bytes.");
  Flags.addInt("capacity-kb", 512, "Shared cache capacity in KB.");
  Flags.addInt("seed", 1, "Operation-stream seed.");
  Flags.addInt("load-jobs", 2000,
               "Shared-replay jobs per sustained-load row.");
  Flags.addInt("load-workers", 2, "Service worker threads under load.");
  Flags.addInt("load-queue", 64, "Service admission-queue capacity.");
  Flags.addInt("load-guests", 2, "Guest threads per load job.");
  Flags.addString("benchmark", "gzip",
                  "Table 1 benchmark replayed by the load jobs.");
  Flags.addDouble("load-scale", 0.05,
                  "Workload scale of the load-job trace.");
  Flags.addString("out", "BENCH_service.json",
                  "Path for the machine-readable result record.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader("service stress",
                         "thread-shared engine scaling + service "
                         "scale-out (no paper counterpart)");

  //===--------------------------------------------------------------------===//
  // Section 1: find/add/evict stress over 1..K threads.
  //===--------------------------------------------------------------------===//

  const uint64_t Ops = static_cast<uint64_t>(Flags.getInt("ops"));
  const unsigned MaxThreads =
      Flags.getInt("threads") >= 1
          ? static_cast<unsigned>(Flags.getInt("threads"))
          : 1;

  std::vector<EngineRow> Rows;
  bool ConservationOk = true;
  bool AuditClean = true;
  bool DispatchConsistent = true;
  for (unsigned T = 1; T <= MaxThreads; T *= 2) {
    InstallerConfig Config;
    Config.CapacityBytes = static_cast<uint64_t>(Flags.getInt("capacity-kb"))
                           << 10;
    Config.Threads = T;
    Config.Operations = Ops;
    Config.WorkingSet = static_cast<uint32_t>(Flags.getInt("working-set"));
    Config.MeanFragmentBytes =
        static_cast<uint32_t>(Flags.getInt("fragment-bytes"));
    Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

    EngineRow Row;
    Row.Threads = T;
    Config.OnFinalQuiesce = [&Row](const SharedCacheEngine &Engine) {
      const check::AuditReport Report = check::auditSharedEngine(Engine);
      Row.AuditClean = Report.clean();
      if (!Report.clean())
        std::fprintf(stderr, "audit FAILED (%u threads):\n%s", Row.Threads,
                     Report.render().c_str());
    };

    const auto Start = std::chrono::steady_clock::now();
    Row.Report = runConcurrentInstall(Config);
    Row.ElapsedMs = msSince(Start);
    Row.MopsPerSec =
        Row.ElapsedMs > 0.0
            ? static_cast<double>(Ops) / (Row.ElapsedMs * 1000.0)
            : 0.0;
    Row.Speedup = Rows.empty() || Rows.front().MopsPerSec <= 0.0
                      ? 1.0
                      : Row.MopsPerSec / Rows.front().MopsPerSec;

    const InstallerReport &R = Row.Report;
    Row.ConservationOk =
        R.Finds + R.Misses == Ops &&
        R.Installs + R.InstallRaces + R.TooBig == R.Misses;
    ConservationOk = ConservationOk && Row.ConservationOk;
    AuditClean = AuditClean && Row.AuditClean;
    DispatchConsistent = DispatchConsistent && R.DispatchConsistent;
    Rows.push_back(Row);
  }

  Table EngineOut({"Threads", "Mops/s", "Speedup", "Finds", "Installs",
                   "Races", "Lock stalls", "Fence stalls", "Audit"});
  for (const EngineRow &Row : Rows) {
    const InstallerReport &R = Row.Report;
    EngineOut.beginRow();
    EngineOut.cell(Row.Threads);
    EngineOut.cell(Row.MopsPerSec, 2);
    EngineOut.cell(Row.Speedup, 2);
    EngineOut.cell(R.Finds);
    EngineOut.cell(R.Installs);
    EngineOut.cell(R.InstallRaces);
    EngineOut.cell(R.Contention.EngineLockStalls);
    EngineOut.cell(R.Contention.FenceSharedStalls +
                   R.Contention.FenceExclusiveStalls);
    EngineOut.cell(Row.ConservationOk && Row.AuditClean &&
                           R.DispatchConsistent
                       ? "clean"
                       : "FAILED");
  }
  std::fputs(EngineOut.render().c_str(), stdout);

  //===--------------------------------------------------------------------===//
  // Section 2: sustained service load, one row per backpressure policy.
  //===--------------------------------------------------------------------===//

  const WorkloadModel *Model = findWorkload(Flags.getString("benchmark"));
  if (!Model) {
    std::fprintf(stderr, "error: unknown benchmark '%s'\n",
                 Flags.getString("benchmark").c_str());
    return 1;
  }
  const WorkloadModel Scaled =
      Flags.getDouble("load-scale") < 0.999
          ? scaledWorkload(*Model, Flags.getDouble("load-scale"))
          : *Model;
  const Trace LoadTrace = TraceGenerator::generateBenchmark(
      Scaled, static_cast<uint64_t>(Flags.getInt("seed")));

  const service::BackpressurePolicy Policies[] = {
      service::BackpressurePolicy::ShedOldest,
      service::BackpressurePolicy::Reject,
  };
  std::vector<LoadRow> LoadRows;
  bool AccountedOk = true;
  for (service::BackpressurePolicy Policy : Policies) {
    service::LoadDriverConfig Config;
    Config.TraceData = LoadTrace;
    Config.GuestThreads =
        Flags.getInt("load-guests") >= 1
            ? static_cast<unsigned>(Flags.getInt("load-guests"))
            : 1;
    Config.TotalJobs = static_cast<uint64_t>(Flags.getInt("load-jobs"));
    Config.Workers = static_cast<unsigned>(Flags.getInt("load-workers"));
    Config.QueueCapacity =
        static_cast<size_t>(Flags.getInt("load-queue"));
    Config.Pressure = Policy;

    LoadRow Row;
    Row.Policy = service::backpressurePolicyName(Policy);
    const auto Start = std::chrono::steady_clock::now();
    Row.Report = service::runSustainedLoad(Config);
    Row.ElapsedMs = msSince(Start);
    AccountedOk = AccountedOk && Row.Report.Accounted;
    LoadRows.push_back(Row);
  }

  Table LoadOut({"Backpressure", "Jobs", "Done", "Shed", "Rejected",
                 "Jobs/s", "Accounted"});
  for (const LoadRow &Row : LoadRows) {
    const service::LoadDriverReport &R = Row.Report;
    LoadOut.beginRow();
    LoadOut.cell(Row.Policy);
    LoadOut.cell(R.Submitted);
    LoadOut.cell(R.Done);
    LoadOut.cell(R.Shed);
    LoadOut.cell(R.Rejected);
    LoadOut.cell(Row.ElapsedMs > 0.0
                     ? static_cast<double>(R.Submitted) /
                           (Row.ElapsedMs / 1000.0)
                     : 0.0,
                 0);
    LoadOut.cell(R.Accounted ? "yes" : "NO");
  }
  std::fputs(LoadOut.render().c_str(), stdout);

  const bool AllClean =
      ConservationOk && AuditClean && DispatchConsistent && AccountedOk;
  std::printf("\n%s: conservation %s, audits %s, dispatch %s, "
              "accounting %s\n",
              AllClean ? "clean" : "FAILED",
              ConservationOk ? "ok" : "VIOLATED",
              AuditClean ? "clean" : "VIOLATED",
              DispatchConsistent ? "consistent" : "VIOLATED",
              AccountedOk ? "exact" : "VIOLATED");

  //===--------------------------------------------------------------------===//
  // Record
  //===--------------------------------------------------------------------===//

  const std::string OutPath = Flags.getString("out");
  std::FILE *Json = std::fopen(OutPath.c_str(), "w");
  if (!Json) {
    std::fprintf(stderr, "error: could not write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Json,
               "{\n"
               "  \"bench\": \"service_stress\",\n"
               "  \"ops\": %llu,\n"
               "  \"threads_max\": %u,\n"
               "  \"working_set\": %lld,\n"
               "  \"capacity_bytes\": %llu,\n"
               "  \"seed\": %lld,\n"
               "  \"conservation_ok\": %s,\n"
               "  \"audit_clean\": %s,\n"
               "  \"dispatch_consistent\": %s,\n"
               "  \"accounted_ok\": %s,\n"
               "  \"engine_rows\": [\n",
               static_cast<unsigned long long>(Ops), MaxThreads,
               static_cast<long long>(Flags.getInt("working-set")),
               static_cast<unsigned long long>(
                   static_cast<uint64_t>(Flags.getInt("capacity-kb")) << 10),
               static_cast<long long>(Flags.getInt("seed")),
               ConservationOk ? "true" : "false",
               AuditClean ? "true" : "false",
               DispatchConsistent ? "true" : "false",
               AccountedOk ? "true" : "false");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const EngineRow &Row = Rows[I];
    const InstallerReport &R = Row.Report;
    std::fprintf(
        Json,
        "    {\"threads\": %u, \"elapsed_ms\": %.3f, "
        "\"mops_per_sec\": %.3f, \"speedup\": %.3f, "
        "\"finds\": %llu, \"misses\": %llu, \"installs\": %llu, "
        "\"install_races\": %llu, \"too_big\": %llu, "
        "\"evicted_blocks\": %llu, \"fast_hits\": %llu, "
        "\"engine_lock_stalls\": %llu, \"engine_lock_wait_us\": %llu, "
        "\"fence_shared_stalls\": %llu, \"fence_exclusive_stalls\": %llu, "
        "\"dispatch_entries\": %llu}%s\n",
        Row.Threads, Row.ElapsedMs, Row.MopsPerSec, Row.Speedup,
        static_cast<unsigned long long>(R.Finds),
        static_cast<unsigned long long>(R.Misses),
        static_cast<unsigned long long>(R.Installs),
        static_cast<unsigned long long>(R.InstallRaces),
        static_cast<unsigned long long>(R.TooBig),
        static_cast<unsigned long long>(R.Stats.EvictedBlocks),
        static_cast<unsigned long long>(R.Contention.FastHits),
        static_cast<unsigned long long>(R.Contention.EngineLockStalls),
        static_cast<unsigned long long>(R.Contention.EngineLockWaitMicros),
        static_cast<unsigned long long>(R.Contention.FenceSharedStalls),
        static_cast<unsigned long long>(R.Contention.FenceExclusiveStalls),
        static_cast<unsigned long long>(R.DispatchEntries),
        I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Json, "  ],\n  \"load_rows\": [\n");
  for (size_t I = 0; I < LoadRows.size(); ++I) {
    const LoadRow &Row = LoadRows[I];
    const service::LoadDriverReport &R = Row.Report;
    std::fprintf(
        Json,
        "    {\"backpressure\": \"%s\", \"elapsed_ms\": %.3f, "
        "\"submitted\": %llu, \"done\": %llu, \"failed\": %llu, "
        "\"cancelled\": %llu, \"timed_out\": %llu, \"rejected\": %llu, "
        "\"shed\": %llu, \"accesses_replayed\": %llu, "
        "\"accounted\": %s}%s\n",
        Row.Policy, Row.ElapsedMs,
        static_cast<unsigned long long>(R.Submitted),
        static_cast<unsigned long long>(R.Done),
        static_cast<unsigned long long>(R.Failed),
        static_cast<unsigned long long>(R.Cancelled),
        static_cast<unsigned long long>(R.TimedOut),
        static_cast<unsigned long long>(R.Rejected),
        static_cast<unsigned long long>(R.Shed),
        static_cast<unsigned long long>(R.AccessesReplayed),
        R.Accounted ? "true" : "false",
        I + 1 < LoadRows.size() ? "," : "");
  }
  std::fprintf(Json, "  ]\n}\n");
  std::fclose(Json);
  std::printf("record written to %s\n", OutPath.c_str());
  return AllClean ? 0 : 2;
}
