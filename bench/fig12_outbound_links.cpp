//===- bench/fig12_outbound_links.cpp - Reproduces Figure 12 --------------===//
//
// Figure 12: average number of outbound links originating from each
// superblock (suite average ~1.7), and the back-pointer table memory
// estimate of Section 5.1 (~11.5% of the code cache).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/LinkGraph.h"
#include "support/Statistics.h"
#include "trace/TraceGenerator.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 12: mean outbound links per superblock.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 12: Average outbound links per superblock",
      "Figure 12: suite average ~1.7 links/superblock; Section 5.1: 16 "
      "bytes per back pointer => table ~11.5% of the code cache");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  Table Out({"Benchmark", "Mean out-degree", "Backptr bytes/block",
             "vs mean block", "vs median block"});
  double DegreeSum = 0.0, MeanFractionSum = 0.0, MedianFractionSum = 0.0;
  for (size_t I = 0; I < Engine.traces().size(); ++I) {
    const Trace &T = Engine.traces()[I];
    const double Degree = T.meanOutDegree();
    const double BytesPerBlock = Degree * LinkGraph::BytesPerBackPointer;
    const double CodePerBlock =
        static_cast<double>(T.maxCacheBytes()) /
        static_cast<double>(T.numSuperblocks());
    const double MedianBlock = median(T.sizesAsDoubles());
    DegreeSum += Degree;
    MeanFractionSum += BytesPerBlock / CodePerBlock;
    MedianFractionSum += BytesPerBlock / MedianBlock;
    Out.beginRow();
    Out.cell(table1Workloads()[I].Name);
    Out.cell(Degree, 2);
    Out.cell(BytesPerBlock, 1);
    Out.cell(formatPercent(BytesPerBlock / CodePerBlock, 1));
    Out.cell(formatPercent(BytesPerBlock / MedianBlock, 1));
  }
  std::fputs(Out.render().c_str(), stdout);

  const double N = static_cast<double>(Engine.traces().size());
  std::printf("\nsuite mean out-degree: %.2f (paper: 1.7)\n",
              DegreeSum / N);
  std::printf("back-pointer table vs the MEDIAN superblock (the paper's "
              "arithmetic: 1.7 links x 16 bytes / ~235-byte blocks): %s "
              "(paper: ~11.5%%)\n",
              formatPercent(MedianFractionSum / N, 1).c_str());
  std::printf("back-pointer table vs total code bytes: %s (lower, since "
              "mean block sizes exceed medians)\n",
              formatPercent(MeanFractionSum / N, 1).c_str());
  return 0;
}
