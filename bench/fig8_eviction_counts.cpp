//===- bench/fig8_eviction_counts.cpp - Reproduces Figure 8 ---------------===//
//
// Figure 8: number of eviction-mechanism invocations at each granularity
// relative to the finest-grained FIFO (= 100%).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"
#include "support/AsciiChart.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 8: eviction invocations relative to fine-grained FIFO.");
  Flags.addDouble("pressure", 2.0, "Cache pressure factor.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 8: Relative number of evictions vs finest-grained FIFO",
      "Figure 8: invocations fall steeply with coarser units; the paper "
      "reports ~3x fewer at 64 units than fine-grained FIFO");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");
  const auto Results = Engine.sweepGranularities(Config);
  const size_t Baseline = Results.size() - 1; // Fine FIFO.
  const auto Weighted = relativeEvictionsWeighted(Results, Baseline);
  const auto Mean = relativeEvictionsPerBenchmarkMean(Results, Baseline);

  Table Out({"Granularity", "Invocations", "Relative (Eq.1)",
             "Relative (mean/benchmark)"});
  for (size_t I = 0; I < Results.size(); ++I) {
    Out.beginRow();
    Out.cell(Results[I].PolicyLabel);
    Out.cell(Results[I].Combined.EvictionInvocations);
    Out.cell(formatPercent(Weighted[I], 1));
    Out.cell(formatPercent(Mean[I], 1));
  }
  std::fputs(Out.render().c_str(), stdout);

  BarChart Chart;
  for (size_t I = 0; I < Results.size(); ++I)
    Chart.add(Results[I].PolicyLabel, Mean[I], formatPercent(Mean[I], 1));
  std::printf("\n%s", Chart.render().c_str());

  // The paper's headline comparison point.
  for (size_t I = 0; I < Results.size(); ++I)
    if (Results[I].PolicyLabel == "64-unit")
      std::printf("\n64-unit vs FIFO invocation reduction: %.2fx (Eq.1) / "
                  "%.2fx (mean) -- paper: ~3x\n",
                  1.0 / Weighted[I], 1.0 / Mean[I]);
  return 0;
}
