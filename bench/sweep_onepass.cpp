//===- bench/sweep_onepass.cpp - One-pass vs per-config sweep timing ------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
//
// Times the Figure 6/7/8 granularity x pressure lattice (the
// standardGranularitySweep() at the five paper pressures) under both sweep
// backends: dense per-config replay (SweepEngine::runParallel) and the
// one-pass multi-configuration engine (multisweep::runSweepGrid). The two
// must produce bit-identical suite results — the binary exits 2 if they
// ever diverge, so the recorded speedup is always a speedup of *equal*
// work.
//
// Besides the human-readable table the run writes a machine-readable
// BENCH_sweep.json (see --out) so CI and bench/record_bench.sh can track
// the one-pass speedup over time.
//
// Run: ./sweep_onepass --scale=0.2 --out=BENCH_sweep.json
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "multisweep/MultiConfigEngine.h"
#include "sim/Sweep.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ccsim;

namespace {

/// Bitwise equality over every CacheStats counter. The one-pass contract
/// is bit-identity, not tolerance — double fields compare with ==.
bool statsEqual(const CacheStats &A, const CacheStats &B) {
  return A.Accesses == B.Accesses && A.Hits == B.Hits &&
         A.Misses == B.Misses && A.ColdMisses == B.ColdMisses &&
         A.CapacityMisses == B.CapacityMisses &&
         A.TooBigMisses == B.TooBigMisses && A.Inserts == B.Inserts &&
         A.InsertedBytes == B.InsertedBytes &&
         A.EvictionInvocations == B.EvictionInvocations &&
         A.EvictedBlocks == B.EvictedBlocks &&
         A.EvictedBytes == B.EvictedBytes &&
         A.UnitsFlushed == B.UnitsFlushed &&
         A.PreemptiveFlushes == B.PreemptiveFlushes &&
         A.WastedBytes == B.WastedBytes &&
         A.LinksCreated == B.LinksCreated &&
         A.InterUnitLinksCreated == B.InterUnitLinksCreated &&
         A.SelfLinksCreated == B.SelfLinksCreated &&
         A.UnlinkedLinks == B.UnlinkedLinks &&
         A.UnlinkOperations == B.UnlinkOperations &&
         A.LinksDestroyed == B.LinksDestroyed &&
         A.MissOverhead == B.MissOverhead &&
         A.EvictionOverhead == B.EvictionOverhead &&
         A.UnlinkOverhead == B.UnlinkOverhead &&
         A.BackPointerBytesPeak == B.BackPointerBytesPeak &&
         A.BackPointerBytesSum == B.BackPointerBytesSum;
}

bool suitesEqual(const std::vector<SuiteResult> &A,
                 const std::vector<SuiteResult> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].PolicyLabel != B[I].PolicyLabel ||
        A[I].PressureFactor != B[I].PressureFactor ||
        !statsEqual(A[I].Combined, B[I].Combined) ||
        A[I].PerBenchmark.size() != B[I].PerBenchmark.size())
      return false;
    for (size_t P = 0; P < A[I].PerBenchmark.size(); ++P) {
      const SimResult &X = A[I].PerBenchmark[P];
      const SimResult &Y = B[I].PerBenchmark[P];
      if (X.BenchmarkName != Y.BenchmarkName ||
          X.PolicyName != Y.PolicyName ||
          X.CapacityBytes != Y.CapacityBytes || !statsEqual(X.Stats, Y.Stats))
        return false;
    }
  }
  return true;
}

double elapsedMs(std::chrono::steady_clock::time_point Start,
                 std::chrono::steady_clock::time_point End) {
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Time the fig6/7/8 sweep lattice under the per-config and one-pass "
      "backends and record the speedup as JSON.");
  Flags.addString("out", "BENCH_sweep.json",
                  "Path for the machine-readable result record.");
  Flags.addString("pressures", "",
                  "Comma-separated pressure axis override (default: the "
                  "paper's 2,4,6,8,10).");
  if (!Flags.parse(Argc, Argv))
    return 1;

  std::vector<double> Pressures = benchutil::pressureAxis();
  if (!Flags.getString("pressures").empty()) {
    Pressures.clear();
    const std::string &Text = Flags.getString("pressures");
    size_t Pos = 0;
    while (Pos < Text.size()) {
      size_t End = Text.find(',', Pos);
      if (End == std::string::npos)
        End = Text.size();
      Pressures.push_back(std::atof(Text.substr(Pos, End - Pos).c_str()));
      Pos = End + 1;
    }
  }

  benchutil::printHeader("one-pass multi-configuration sweep",
                         "Figures 6-8 lattice (granularity x pressure)");

  const SweepEngine Engine = benchutil::makeEngine(Flags);
  SimConfig Base; // Paper-default costs; pressure comes from the grid.
  const std::vector<SweepJob> Grid =
      makeSweepGrid(standardGranularitySweep(), Pressures, Base);
  std::printf("lattice: %zu configs x %zu benchmarks (scale %.3f, "
              "%u threads)\n\n",
              Grid.size(), Engine.traces().size(), Flags.getDouble("scale"),
              Engine.numThreads());

  const auto PerConfigStart = std::chrono::steady_clock::now();
  const std::vector<SuiteResult> Dense = Engine.runParallel(Grid);
  const auto PerConfigEnd = std::chrono::steady_clock::now();
  const double PerConfigMs = elapsedMs(PerConfigStart, PerConfigEnd);
  std::printf("per-config: %.1f ms\n", PerConfigMs);

  multisweep::MultiSweepOptions Options;
  Options.Mode = multisweep::SweepMode::OnePass;
  Options.Log = [](const std::string &Line) {
    std::fprintf(stderr, "sweep: %s\n", Line.c_str());
  };
  multisweep::OnePassAccounting Accounting;
  const auto OnePassStart = std::chrono::steady_clock::now();
  const std::vector<SuiteResult> OnePass =
      multisweep::runSweepGrid(Engine, Grid, Options, &Accounting);
  const auto OnePassEnd = std::chrono::steady_clock::now();
  const double OnePassMs = elapsedMs(OnePassStart, OnePassEnd);
  std::printf("one-pass:   %.1f ms\n", OnePassMs);

  const bool Equal = suitesEqual(Dense, OnePass);
  const double Speedup = OnePassMs > 0.0 ? PerConfigMs / OnePassMs : 0.0;
  const double AllHitFraction =
      Accounting.DecodedAccesses
          ? static_cast<double>(Accounting.AllResidentShortcuts) /
                static_cast<double>(Accounting.DecodedAccesses)
          : 0.0;
  std::printf("speedup:    %.2fx (%s), all-resident shortcut on %.1f%% of "
              "accesses\n",
              Speedup, Equal ? "results bit-identical" : "RESULTS DIVERGED",
              AllHitFraction * 100.0);

  const std::string OutPath = Flags.getString("out");
  if (std::FILE *Out = std::fopen(OutPath.c_str(), "w")) {
    std::fprintf(Out,
                 "{\n"
                 "  \"bench\": \"sweep_onepass\",\n"
                 "  \"suite\": \"fig6_7_8_lattice\",\n"
                 "  \"scale\": %g,\n"
                 "  \"seed\": %llu,\n"
                 "  \"benchmarks\": %zu,\n"
                 "  \"configs_per_pass\": %zu,\n"
                 "  \"accesses_per_pass\": %llu,\n"
                 "  \"shared_misses\": %llu,\n"
                 "  \"all_hit_fraction\": %.6f,\n"
                 "  \"threads\": %u,\n"
                 "  \"per_config_ms\": %.3f,\n"
                 "  \"one_pass_ms\": %.3f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"equal\": %s\n"
                 "}\n",
                 Flags.getDouble("scale"),
                 static_cast<unsigned long long>(Flags.getInt("seed")),
                 Engine.traces().size(), Grid.size(),
                 static_cast<unsigned long long>(Accounting.DecodedAccesses),
                 static_cast<unsigned long long>(Accounting.SharedMisses),
                 AllHitFraction, Engine.numThreads(), PerConfigMs, OnePassMs,
                 Speedup, Equal ? "true" : "false");
    std::fclose(Out);
    std::printf("record written to %s\n", OutPath.c_str());
  } else {
    std::fprintf(stderr, "error: could not write %s\n", OutPath.c_str());
    return 1;
  }
  return Equal ? 0 : 2;
}
