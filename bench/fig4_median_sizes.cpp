//===- bench/fig4_median_sizes.cpp - Reproduces Figure 4 ------------------===//
//
// Figure 4: median superblock size (bytes) per benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Statistics.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 4: median superblock size per benchmark.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 4: Median superblock size (bytes)",
      "Figure 4: SPEC medians ~190-245 bytes (gzip highest at 244), "
      "Windows medians larger");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  Table Out({"Benchmark", "Suite", "Median (model)", "Median (measured)",
             "Mean (measured)"});
  for (size_t I = 0; I < Engine.traces().size(); ++I) {
    const Trace &T = Engine.traces()[I];
    const WorkloadModel &M = table1Workloads()[I];
    const auto Sizes = T.sizesAsDoubles();
    Out.beginRow();
    Out.cell(M.Name);
    Out.cell(M.Suite == SuiteKind::SpecInt2000 ? "SPEC" : "Windows");
    Out.cell(M.MedianBlockBytes, 0);
    Out.cell(median(Sizes), 0);
    Out.cell(mean(Sizes), 0);
  }
  std::fputs(Out.render().c_str(), stdout);
  return 0;
}
