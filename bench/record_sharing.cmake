# record_sharing.cmake - run/validate the cross-tenant sharing record.
#
# Script mode (cmake -P) helper behind bench/record_bench.sh sharing and
# the CI bench step. Two jobs:
#
#   1. Optionally run the tenant_sharing binary first:
#        cmake -DSHARING_BIN=<path/to/tenant_sharing> \
#              -DSHARING_JSON=<out.json> \
#              [-DSHARING_ARGS=--scale=0.25] \
#              -P bench/record_sharing.cmake
#      (SHARING_ARGS is a semicolon-separated list of extra flags.)
#
#   2. Validate the BENCH_sharing.json schema and gate the correctness
#      claims: conservation_ok, disabled_silent_ok, zero_overlap_inert_ok,
#      and full_overlap_saves_ok must all be true -- every sharing run
#      ended with SharedInstalls == UnshareUnlinks + live links, the
#      disabled path stayed byte-inert, disjoint tenants never linked,
#      and identical tenants deduplicated to a strictly smaller installed
#      footprint. Footprint percentages are recorded but never gated
#      beyond positivity: how much sharing saves depends on the lattice,
#      that it conserves does not.
#
# Exits nonzero (FATAL_ERROR) on any schema violation or gate miss.

cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED SHARING_JSON)
  message(FATAL_ERROR "pass -DSHARING_JSON=<path to BENCH_sharing.json>")
endif()

if(DEFINED SHARING_BIN)
  message(STATUS "running ${SHARING_BIN} --out=${SHARING_JSON} "
                 "${SHARING_ARGS}")
  execute_process(
    COMMAND "${SHARING_BIN}" "--out=${SHARING_JSON}" ${SHARING_ARGS}
    RESULT_VARIABLE RunResult)
  if(NOT RunResult EQUAL 0)
    message(FATAL_ERROR "tenant_sharing exited ${RunResult}")
  endif()
endif()

if(NOT EXISTS "${SHARING_JSON}")
  message(FATAL_ERROR "no record at ${SHARING_JSON}")
endif()
file(READ "${SHARING_JSON}" Record)

# Every key tenant_sharing writes; a missing or retyped key breaks the
# consumers (CI trend tracking, bench/record_bench.sh).
set(RequiredKeys
  bench tenants pressure scale seed
  conservation_ok disabled_silent_ok zero_overlap_inert_ok
  full_overlap_saves_ok max_saved_pct rows)
foreach(Key IN LISTS RequiredKeys)
  string(JSON Value ERROR_VARIABLE JsonError GET "${Record}" "${Key}")
  if(JsonError)
    message(FATAL_ERROR
            "BENCH_sharing.json: missing key '${Key}': ${JsonError}")
  endif()
endforeach()

string(JSON BenchName GET "${Record}" bench)
if(NOT BenchName STREQUAL "tenant_sharing")
  message(FATAL_ERROR "BENCH_sharing.json: bench is '${BenchName}', "
                      "expected 'tenant_sharing'")
endif()

string(JSON TenantCount GET "${Record}" tenants)
if(TenantCount LESS 2)
  message(FATAL_ERROR "BENCH_sharing.json: tenants=${TenantCount}, need "
                      "at least 2 for sharing to mean anything")
endif()

# The correctness gates: this record claims the sharing machinery held
# its refcount-conservation and inertness contracts over the lattice.
foreach(Gate conservation_ok disabled_silent_ok zero_overlap_inert_ok
             full_overlap_saves_ok)
  string(JSON Value GET "${Record}" "${Gate}")
  if(NOT Value STREQUAL "ON" AND NOT Value STREQUAL "true")
    message(FATAL_ERROR
            "BENCH_sharing.json: gate ${Gate}=${Value}, expected true")
  endif()
endforeach()

string(JSON RowCount LENGTH "${Record}" rows)
if(RowCount LESS 1)
  message(FATAL_ERROR "BENCH_sharing.json: rows is empty")
endif()

# Per-row sanity: every row carries both sides of the comparison.
math(EXPR LastRow "${RowCount} - 1")
foreach(Key overlap policy mode inserted_off inserted_on shared_installs)
  string(JSON Value ERROR_VARIABLE JsonError GET "${Record}" rows 0 "${Key}")
  if(JsonError)
    message(FATAL_ERROR
            "BENCH_sharing.json: rows[0] missing '${Key}': ${JsonError}")
  endif()
endforeach()

string(JSON MaxSaved GET "${Record}" max_saved_pct)
if(MaxSaved LESS_EQUAL 0)
  message(FATAL_ERROR "BENCH_sharing.json: max_saved_pct=${MaxSaved}, "
                      "sharing saved nothing anywhere on the lattice")
endif()

message(STATUS "BENCH_sharing.json ok: ${RowCount} rows, ${TenantCount} "
               "tenants, best footprint cut ${MaxSaved}%, all gates clean")
