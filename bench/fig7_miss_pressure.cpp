//===- bench/fig7_miss_pressure.cpp - Reproduces Figure 7 -----------------===//
//
// Figure 7: unified miss rates at each granularity as the cache pressure
// factor increases from 2 to 10.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/Aggregate.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Figure 7: miss rates as cache pressure increases.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Figure 7: Miss rates at varying granularities vs cache pressure",
      "Figure 7: miss-rate differences between granularities become much "
      "more pronounced as pressure increases");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  const auto Pressures = benchutil::pressureAxis();
  std::vector<std::vector<double>> Series; // [pressure][granularity].
  std::vector<std::string> Labels;
  for (double P : Pressures) {
    SimConfig Config;
    Config.PressureFactor = P;
    const auto Results = Engine.sweepGranularities(Config);
    if (Labels.empty())
      for (const SuiteResult &R : Results)
        Labels.push_back(R.PolicyLabel);
    Series.push_back(unifiedMissRates(Results));
  }

  std::vector<std::string> Header = {"Granularity"};
  for (double P : Pressures)
    Header.push_back("n=" + formatDouble(P, 0));
  Table Out(Header);
  for (size_t G = 0; G < Labels.size(); ++G) {
    Out.beginRow();
    Out.cell(Labels[G]);
    for (size_t PI = 0; PI < Pressures.size(); ++PI)
      Out.cell(formatPercent(Series[PI][G], 2));
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nFLUSH-FIFO miss gap (absolute): %.2f pp at n=2 -> %.2f "
              "pp at n=10 (paper: widens with pressure)\n",
              (Series.front().front() - Series.front().back()) * 100.0,
              (Series.back().front() - Series.back().back()) * 100.0);
  benchutil::maybeWriteCsv(Flags, Labels, Pressures, Series);
  return 0;
}
