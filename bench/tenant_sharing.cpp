//===- bench/tenant_sharing.cpp - Cross-tenant sharing study record -------===//
//
// Part of the ccsim project (CGO 2004 code cache eviction reproduction).
//
//===----------------------------------------------------------------------===//
//
// Runs the tenant-overlap suite (workloads catalog "overlap") across a
// lattice of overlap fraction x eviction granularity x partition mode,
// once with content sharing OFF and once ON, holding everything else
// identical. The interesting numbers are the installed-byte footprint
// (how much duplicate code sharing avoided), the modeled overhead shift
// (links still pay Eq. 4 when a representative drains), and the share
// counters themselves.
//
// The correctness gates are structural, never wall-clock:
//
//   conservation_ok       every sharing run ends with
//                         SharedInstalls == UnshareUnlinks + live links,
//   disabled_silent_ok    every sharing-OFF run has all-zero share
//                         counters (the disabled path is inert),
//   zero_overlap_inert_ok no links form when tenants share no code,
//   full_overlap_saves_ok at 100% overlap sharing links at least once
//                         and strictly shrinks the installed footprint.
//
// bench/record_sharing.cmake validates the record and fails on any gate.
//
// Run: ./tenant_sharing --tenants=3 --overlaps=0,0.5,1
//                       --out=BENCH_sharing.json
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "concurrent/MultiTenantSimulator.h"
#include "workloads/Adversary.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ccsim;

namespace {

std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : Text) {
    if (C == ',') {
      if (!Cur.empty())
        Parts.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Parts.push_back(Cur);
  return Parts;
}

GranularitySpec parseGranularity(const std::string &Text) {
  if (Text == "flush" || Text == "FLUSH")
    return GranularitySpec::flush();
  if (Text == "fine" || Text == "fifo" || Text == "FIFO")
    return GranularitySpec::fine();
  const long Units = std::strtol(Text.c_str(), nullptr, 10);
  if (Units >= 1)
    return GranularitySpec::units(static_cast<unsigned>(Units));
  std::fprintf(stderr, "warning: bad granularity '%s', using 8 units\n",
               Text.c_str());
  return GranularitySpec::units(8);
}

/// One lattice cell: the same suite replayed sharing-OFF then sharing-ON.
struct Cell {
  double Overlap = 0.0;
  std::string PolicyLabel;
  std::string ModeLabel;
  MultiTenantResult Off;
  MultiTenantResult On;

  bool conservationOk() const {
    return On.Global.SharedInstalls ==
           On.Global.UnshareUnlinks + On.FinalShareLinks;
  }
  bool disabledSilent() const {
    return !Off.Global.SharingActive && Off.Global.SharedInstalls == 0 &&
           Off.Global.SharedBytesSaved == 0 &&
           Off.Global.UnshareUnlinks == 0 && Off.FinalSharedEntries == 0 &&
           Off.FinalShareLinks == 0;
  }
  double savedPct() const {
    if (Off.Global.InsertedBytes == 0)
      return 0.0;
    const double OffBytes = static_cast<double>(Off.Global.InsertedBytes);
    const double OnBytes = static_cast<double>(On.Global.InsertedBytes);
    return 100.0 * (OffBytes - OnBytes) / OffBytes;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Cross-tenant content sharing: footprint and overhead "
                "with sharing off vs on across the tenancy lattice.");
  Flags.addInt("tenants", 3, "Tenant count for the overlap suite.");
  Flags.addString("overlaps", "0,0.5,1",
                  "Comma-separated overlap fractions in [0,1].");
  Flags.addString("granularities", "flush,8,fine",
                  "Comma-separated granularities (flush | fine | <units>).");
  Flags.addString("modes", "shared,static,quota",
                  "Comma-separated partition modes.");
  Flags.addDouble("pressure", 2.0,
                  "Cache pressure (capacity = working set / pressure).");
  Flags.addDouble("scale", 1.0, "Adversary working-set multiplier.");
  Flags.addInt("seed", 42, "Suite generation seed.");
  Flags.addString("out", "BENCH_sharing.json",
                  "Path for the machine-readable result record.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Cross-tenant superblock sharing: footprint vs duplication",
      "extension of Sections 4-5 (ShareJIT-style content dedup)");

  const uint32_t Tenants = static_cast<uint32_t>(Flags.getInt("tenants"));
  const uint64_t Seed = static_cast<uint64_t>(Flags.getInt("seed"));
  const double Scale = Flags.getDouble("scale");

  const auto Start = std::chrono::steady_clock::now();
  std::vector<Cell> Cells;
  for (const std::string &OverlapText :
       splitList(Flags.getString("overlaps"))) {
    const double Overlap = std::strtod(OverlapText.c_str(), nullptr);
    workloads::AdversarySpec Spec = *workloads::findAdversarial("overlap");
    if (Scale < 0.999 || Scale > 1.001)
      Spec = workloads::scaledAdversary(Spec, Scale);
    Spec.Tenants = Tenants;
    Spec.OverlapFraction = Overlap;
    const std::vector<Trace> Suite =
        workloads::generateTenantOverlapSuite(Spec, Seed);

    for (const std::string &GranText :
         splitList(Flags.getString("granularities"))) {
      for (const std::string &ModeText :
           splitList(Flags.getString("modes"))) {
        const std::optional<PartitionMode> Mode =
            parsePartitionMode(ModeText);
        if (!Mode) {
          std::fprintf(stderr, "warning: unknown mode '%s', skipping\n",
                       ModeText.c_str());
          continue;
        }
        TenancyPolicy Policy = TenancyPolicy()
                                   .withGranularity(parseGranularity(GranText))
                                   .withMode(*Mode)
                                   .withPressure(Flags.getDouble("pressure"));

        Cell C;
        C.Overlap = Overlap;
        Policy.ShareCode = false;
        {
          MultiTenantSimulator Sim(Suite, Policy);
          C.Off = Sim.run();
        }
        Policy.ShareCode = true;
        {
          MultiTenantSimulator Sim(Suite, Policy);
          C.On = Sim.run();
        }
        C.PolicyLabel = C.On.PolicyLabel;
        C.ModeLabel = C.On.ModeLabel;
        Cells.push_back(std::move(C));
      }
    }
  }
  const auto End = std::chrono::steady_clock::now();
  const double ElapsedMs =
      std::chrono::duration<double, std::milli>(End - Start).count();

  Table Out({"Overlap", "Granularity", "Mode", "Inserted off", "Inserted on",
             "Saved", "Links", "Unshares", "Live links"});
  bool ConservationOk = true;
  bool DisabledSilentOk = true;
  bool ZeroOverlapInertOk = true;
  bool FullOverlapSavesOk = true;
  bool SawFullOverlap = false;
  double MaxSavedPct = 0.0;
  for (const Cell &C : Cells) {
    Out.beginRow();
    Out.cell(formatPercent(C.Overlap, 0));
    Out.cell(C.PolicyLabel);
    Out.cell(C.ModeLabel);
    Out.cell(formatBytes(C.Off.Global.InsertedBytes));
    Out.cell(formatBytes(C.On.Global.InsertedBytes));
    Out.cell(formatBytes(C.On.Global.SharedBytesSaved));
    Out.cell(C.On.Global.SharedInstalls);
    Out.cell(C.On.Global.UnshareUnlinks);
    Out.cell(C.On.FinalShareLinks);

    ConservationOk = ConservationOk && C.conservationOk();
    DisabledSilentOk = DisabledSilentOk && C.disabledSilent();
    if (C.Overlap == 0.0)
      ZeroOverlapInertOk =
          ZeroOverlapInertOk && C.On.Global.SharedInstalls == 0;
    if (C.Overlap == 1.0) {
      SawFullOverlap = true;
      FullOverlapSavesOk = FullOverlapSavesOk &&
                           C.On.Global.SharedInstalls > 0 &&
                           C.On.Global.InsertedBytes <
                               C.Off.Global.InsertedBytes;
    }
    if (C.savedPct() > MaxSavedPct)
      MaxSavedPct = C.savedPct();
  }
  FullOverlapSavesOk = FullOverlapSavesOk && SawFullOverlap;
  std::fputs(Out.render().c_str(), stdout);
  std::printf("\nbest footprint cut %.1f%%; gates: conservation %s, "
              "disabled-silent %s, zero-overlap-inert %s, "
              "full-overlap-saves %s (%.1f ms total)\n",
              MaxSavedPct, ConservationOk ? "ok" : "FAIL",
              DisabledSilentOk ? "ok" : "FAIL",
              ZeroOverlapInertOk ? "ok" : "FAIL",
              FullOverlapSavesOk ? "ok" : "FAIL", ElapsedMs);

  const std::string OutPath = Flags.getString("out");
  std::FILE *Json = std::fopen(OutPath.c_str(), "w");
  if (!Json) {
    std::fprintf(stderr, "error: could not write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Json,
               "{\n"
               "  \"bench\": \"tenant_sharing\",\n"
               "  \"tenants\": %u,\n"
               "  \"pressure\": %g,\n"
               "  \"scale\": %g,\n"
               "  \"seed\": %llu,\n"
               "  \"conservation_ok\": %s,\n"
               "  \"disabled_silent_ok\": %s,\n"
               "  \"zero_overlap_inert_ok\": %s,\n"
               "  \"full_overlap_saves_ok\": %s,\n"
               "  \"max_saved_pct\": %.3f,\n"
               "  \"elapsed_ms\": %.3f,\n"
               "  \"rows\": [\n",
               Tenants, Flags.getDouble("pressure"), Scale,
               static_cast<unsigned long long>(Seed),
               ConservationOk ? "true" : "false",
               DisabledSilentOk ? "true" : "false",
               ZeroOverlapInertOk ? "true" : "false",
               FullOverlapSavesOk ? "true" : "false", MaxSavedPct, ElapsedMs);
  for (size_t I = 0; I < Cells.size(); ++I) {
    const Cell &C = Cells[I];
    std::fprintf(
        Json,
        "    {\"overlap\": %g, \"policy\": \"%s\", \"mode\": \"%s\", "
        "\"inserted_off\": %llu, \"inserted_on\": %llu, "
        "\"saved_pct\": %.3f, "
        "\"miss_rate_off\": %.6f, \"miss_rate_on\": %.6f, "
        "\"overhead_off\": %.3f, \"overhead_on\": %.3f, "
        "\"shared_installs\": %llu, \"shared_bytes_saved\": %llu, "
        "\"unshare_unlinks\": %llu, \"final_links\": %llu, "
        "\"final_entries\": %llu}%s\n",
        C.Overlap, C.PolicyLabel.c_str(), C.ModeLabel.c_str(),
        static_cast<unsigned long long>(C.Off.Global.InsertedBytes),
        static_cast<unsigned long long>(C.On.Global.InsertedBytes),
        C.savedPct(), C.Off.Global.missRate(), C.On.Global.missRate(),
        C.Off.Global.totalOverhead(true), C.On.Global.totalOverhead(true),
        static_cast<unsigned long long>(C.On.Global.SharedInstalls),
        static_cast<unsigned long long>(C.On.Global.SharedBytesSaved),
        static_cast<unsigned long long>(C.On.Global.UnshareUnlinks),
        static_cast<unsigned long long>(C.On.FinalShareLinks),
        static_cast<unsigned long long>(C.On.FinalSharedEntries),
        I + 1 < Cells.size() ? "," : "");
  }
  std::fprintf(Json, "  ]\n}\n");
  std::fclose(Json);
  std::printf("record written to %s\n", OutPath.c_str());
  return 0;
}
