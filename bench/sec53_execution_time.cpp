//===- bench/sec53_execution_time.cpp - Reproduces Section 5.3 ------------===//
//
// Section 5.3's execution-time estimate: with a cache pressure factor of
// 10, changing the eviction granularity from FLUSH to 8-unit FIFO
// reduces overall execution time by 19.33% for crafty and 19.79% for
// twolf. Execution time = application instructions (accesses x mean
// instructions per dispatch) + modeled management overhead (miss +
// eviction + link maintenance).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ccsim;

int main(int Argc, char **Argv) {
  FlagSet Flags = benchutil::standardFlags(
      "Section 5.3: execution-time reduction, FLUSH -> 8-unit FIFO.");
  Flags.addDouble("pressure", 10.0, "Cache pressure factor.");
  Flags.addDouble("ipd", 6000.0,
                  "Application instructions retired per dispatch event.");
  if (!Flags.parse(Argc, Argv))
    return 1;

  benchutil::printHeader(
      "Section 5.3: Execution-time reduction from FLUSH to 8-unit FIFO",
      "Section 5.3: at pressure 10, crafty improves 19.33% and twolf "
      "19.79%; stressed applications improve most");
  const SweepEngine Engine = benchutil::makeEngine(Flags);

  SimConfig Config;
  Config.PressureFactor = Flags.getDouble("pressure");
  const SuiteResult Flush =
      Engine.runSuite(GranularitySpec::flush(), Config);
  const SuiteResult Units8 =
      Engine.runSuite(GranularitySpec::units(8), Config);

  ExecutionTimeModel Model;
  Model.InstructionsPerDispatch = Flags.getDouble("ipd");

  Table Out({"Benchmark", "Overhead share (FLUSH)", "Time reduction",
             "Overhead reduction"});
  for (size_t I = 0; I < Flush.PerBenchmark.size(); ++I) {
    const SimResult &A = Flush.PerBenchmark[I];
    const SimResult &B = Units8.PerBenchmark[I];
    const double Total = Model.totalInstructions(A, true);
    const double OverheadShare = A.Stats.totalOverhead(true) / Total;
    const double TimeReduction = Model.reductionFraction(A, B, true);
    const double OverheadReduction =
        1.0 - B.Stats.totalOverhead(true) / A.Stats.totalOverhead(true);
    Out.beginRow();
    Out.cell(A.BenchmarkName);
    Out.cell(formatPercent(OverheadShare, 1));
    Out.cell(formatPercent(TimeReduction, 2));
    Out.cell(formatPercent(OverheadReduction, 2));
  }
  std::fputs(Out.render().c_str(), stdout);

  for (size_t I = 0; I < Flush.PerBenchmark.size(); ++I) {
    const std::string &Name = Flush.PerBenchmark[I].BenchmarkName;
    if (Name.rfind("crafty", 0) == 0 || Name.rfind("twolf", 0) == 0)
      std::printf("\n%s: %.2f%% execution-time reduction (paper: %s)",
                  Name.c_str(),
                  Model.reductionFraction(Flush.PerBenchmark[I],
                                          Units8.PerBenchmark[I], true) *
                      100.0,
                  Name.rfind("crafty", 0) == 0 ? "19.33%" : "19.79%");
  }
  std::printf("\n");
  return 0;
}
