# record_bench.cmake - run/validate the sweep_onepass benchmark record.
#
# Script mode (cmake -P) helper behind bench/record_bench.sh and the CI
# bench smoke step. Two jobs:
#
#   1. Optionally run the sweep_onepass binary first:
#        cmake -DSWEEP_ONEPASS=<path/to/sweep_onepass> \
#              -DSWEEP_JSON=<out.json> [-DSWEEP_ARGS=--scale=0.02] \
#              -P bench/record_bench.cmake
#      (SWEEP_ARGS is a semicolon-separated list of extra flags.)
#
#   2. Validate the BENCH_sweep.json schema: every key the record
#      promises must be present and well-typed, and the `equal` bit —
#      the correctness contract, not a performance number — must be
#      true. Wall-clock numbers are never gated: this box's timings are
#      too noisy for that, and the recorded speedup is informational.
#
# Exits nonzero (FATAL_ERROR) on any schema violation or divergence.

cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED SWEEP_JSON)
  message(FATAL_ERROR "pass -DSWEEP_JSON=<path to BENCH_sweep.json>")
endif()

if(DEFINED SWEEP_ONEPASS)
  message(STATUS "running ${SWEEP_ONEPASS} --out=${SWEEP_JSON} ${SWEEP_ARGS}")
  execute_process(
    COMMAND "${SWEEP_ONEPASS}" "--out=${SWEEP_JSON}" ${SWEEP_ARGS}
    RESULT_VARIABLE RunResult)
  if(NOT RunResult EQUAL 0)
    message(FATAL_ERROR "sweep_onepass exited ${RunResult} (2 means the "
                        "one-pass and per-config results diverged)")
  endif()
endif()

if(NOT EXISTS "${SWEEP_JSON}")
  message(FATAL_ERROR "no record at ${SWEEP_JSON}")
endif()
file(READ "${SWEEP_JSON}" Record)

# Every key sweep_onepass writes; a missing or retyped key breaks the
# consumers (CI trend tracking, bench/record_bench.sh).
set(RequiredKeys
  bench suite scale seed benchmarks configs_per_pass accesses_per_pass
  shared_misses all_hit_fraction threads per_config_ms one_pass_ms
  speedup equal)
foreach(Key IN LISTS RequiredKeys)
  string(JSON Value ERROR_VARIABLE JsonError GET "${Record}" "${Key}")
  if(JsonError)
    message(FATAL_ERROR "BENCH_sweep.json: missing key '${Key}': ${JsonError}")
  endif()
endforeach()

string(JSON BenchName GET "${Record}" bench)
if(NOT BenchName STREQUAL "sweep_onepass")
  message(FATAL_ERROR "BENCH_sweep.json: bench is '${BenchName}', expected "
                      "'sweep_onepass'")
endif()

string(JSON Equal GET "${Record}" equal)
if(NOT Equal STREQUAL "ON")  # string(JSON) maps JSON true to ON.
  message(FATAL_ERROR "BENCH_sweep.json: equal=${Equal} — one-pass results "
                      "diverged from per-config replay")
endif()

foreach(Key accesses_per_pass configs_per_pass benchmarks)
  string(JSON Value GET "${Record}" "${Key}")
  if(Value LESS_EQUAL 0)
    message(FATAL_ERROR "BENCH_sweep.json: ${Key}=${Value} must be positive")
  endif()
endforeach()

string(JSON Speedup GET "${Record}" speedup)
string(JSON Configs GET "${Record}" configs_per_pass)
message(STATUS "BENCH_sweep.json ok: ${Configs} configs/pass, "
               "speedup ${Speedup}x, results bit-identical")
