file(REMOVE_RECURSE
  "CMakeFiles/ablation_generational.dir/ablation_generational.cpp.o"
  "CMakeFiles/ablation_generational.dir/ablation_generational.cpp.o.d"
  "ablation_generational"
  "ablation_generational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
