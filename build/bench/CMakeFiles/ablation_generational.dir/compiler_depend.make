# Empty compiler generated dependencies file for ablation_generational.
# This may be replaced when dependencies are built.
