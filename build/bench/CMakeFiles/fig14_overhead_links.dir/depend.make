# Empty dependencies file for fig14_overhead_links.
# This may be replaced when dependencies are built.
