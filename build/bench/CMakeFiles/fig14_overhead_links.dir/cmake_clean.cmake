file(REMOVE_RECURSE
  "CMakeFiles/fig14_overhead_links.dir/fig14_overhead_links.cpp.o"
  "CMakeFiles/fig14_overhead_links.dir/fig14_overhead_links.cpp.o.d"
  "fig14_overhead_links"
  "fig14_overhead_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overhead_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
