# Empty compiler generated dependencies file for fig4_median_sizes.
# This may be replaced when dependencies are built.
