file(REMOVE_RECURSE
  "CMakeFiles/fig4_median_sizes.dir/fig4_median_sizes.cpp.o"
  "CMakeFiles/fig4_median_sizes.dir/fig4_median_sizes.cpp.o.d"
  "fig4_median_sizes"
  "fig4_median_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_median_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
