# Empty compiler generated dependencies file for sec53_execution_time.
# This may be replaced when dependencies are built.
