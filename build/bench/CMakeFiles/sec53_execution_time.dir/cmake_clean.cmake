file(REMOVE_RECURSE
  "CMakeFiles/sec53_execution_time.dir/sec53_execution_time.cpp.o"
  "CMakeFiles/sec53_execution_time.dir/sec53_execution_time.cpp.o.d"
  "sec53_execution_time"
  "sec53_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
