# Empty dependencies file for fig3_size_distribution.
# This may be replaced when dependencies are built.
