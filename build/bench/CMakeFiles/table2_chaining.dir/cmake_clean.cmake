file(REMOVE_RECURSE
  "CMakeFiles/table2_chaining.dir/table2_chaining.cpp.o"
  "CMakeFiles/table2_chaining.dir/table2_chaining.cpp.o.d"
  "table2_chaining"
  "table2_chaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
