# Empty compiler generated dependencies file for table2_chaining.
# This may be replaced when dependencies are built.
