# Empty compiler generated dependencies file for sensitivity_costmodel.
# This may be replaced when dependencies are built.
