file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_costmodel.dir/sensitivity_costmodel.cpp.o"
  "CMakeFiles/sensitivity_costmodel.dir/sensitivity_costmodel.cpp.o.d"
  "sensitivity_costmodel"
  "sensitivity_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
