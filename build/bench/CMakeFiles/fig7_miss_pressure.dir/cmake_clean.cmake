file(REMOVE_RECURSE
  "CMakeFiles/fig7_miss_pressure.dir/fig7_miss_pressure.cpp.o"
  "CMakeFiles/fig7_miss_pressure.dir/fig7_miss_pressure.cpp.o.d"
  "fig7_miss_pressure"
  "fig7_miss_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_miss_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
