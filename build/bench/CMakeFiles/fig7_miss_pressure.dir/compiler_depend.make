# Empty compiler generated dependencies file for fig7_miss_pressure.
# This may be replaced when dependencies are built.
