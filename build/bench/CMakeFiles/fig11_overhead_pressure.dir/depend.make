# Empty dependencies file for fig11_overhead_pressure.
# This may be replaced when dependencies are built.
