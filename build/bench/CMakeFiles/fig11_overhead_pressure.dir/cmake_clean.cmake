file(REMOVE_RECURSE
  "CMakeFiles/fig11_overhead_pressure.dir/fig11_overhead_pressure.cpp.o"
  "CMakeFiles/fig11_overhead_pressure.dir/fig11_overhead_pressure.cpp.o.d"
  "fig11_overhead_pressure"
  "fig11_overhead_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_overhead_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
