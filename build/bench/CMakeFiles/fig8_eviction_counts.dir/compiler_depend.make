# Empty compiler generated dependencies file for fig8_eviction_counts.
# This may be replaced when dependencies are built.
