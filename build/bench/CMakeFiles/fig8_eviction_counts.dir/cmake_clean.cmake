file(REMOVE_RECURSE
  "CMakeFiles/fig8_eviction_counts.dir/fig8_eviction_counts.cpp.o"
  "CMakeFiles/fig8_eviction_counts.dir/fig8_eviction_counts.cpp.o.d"
  "fig8_eviction_counts"
  "fig8_eviction_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_eviction_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
