
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_overhead_links_pressure.cpp" "bench/CMakeFiles/fig15_overhead_links_pressure.dir/fig15_overhead_links_pressure.cpp.o" "gcc" "bench/CMakeFiles/fig15_overhead_links_pressure.dir/fig15_overhead_links_pressure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ccsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ccsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
