# Empty dependencies file for fig15_overhead_links_pressure.
# This may be replaced when dependencies are built.
