file(REMOVE_RECURSE
  "CMakeFiles/fig15_overhead_links_pressure.dir/fig15_overhead_links_pressure.cpp.o"
  "CMakeFiles/fig15_overhead_links_pressure.dir/fig15_overhead_links_pressure.cpp.o.d"
  "fig15_overhead_links_pressure"
  "fig15_overhead_links_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_overhead_links_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
