# Empty dependencies file for fig9_eviction_regression.
# This may be replaced when dependencies are built.
