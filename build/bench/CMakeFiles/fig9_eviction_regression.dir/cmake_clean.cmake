file(REMOVE_RECURSE
  "CMakeFiles/fig9_eviction_regression.dir/fig9_eviction_regression.cpp.o"
  "CMakeFiles/fig9_eviction_regression.dir/fig9_eviction_regression.cpp.o.d"
  "fig9_eviction_regression"
  "fig9_eviction_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_eviction_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
