file(REMOVE_RECURSE
  "CMakeFiles/ablation_lru_fragmentation.dir/ablation_lru_fragmentation.cpp.o"
  "CMakeFiles/ablation_lru_fragmentation.dir/ablation_lru_fragmentation.cpp.o.d"
  "ablation_lru_fragmentation"
  "ablation_lru_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lru_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
