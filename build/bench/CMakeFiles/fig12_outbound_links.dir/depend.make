# Empty dependencies file for fig12_outbound_links.
# This may be replaced when dependencies are built.
