file(REMOVE_RECURSE
  "CMakeFiles/fig12_outbound_links.dir/fig12_outbound_links.cpp.o"
  "CMakeFiles/fig12_outbound_links.dir/fig12_outbound_links.cpp.o.d"
  "fig12_outbound_links"
  "fig12_outbound_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_outbound_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
