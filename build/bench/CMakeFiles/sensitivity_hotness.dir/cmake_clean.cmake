file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_hotness.dir/sensitivity_hotness.cpp.o"
  "CMakeFiles/sensitivity_hotness.dir/sensitivity_hotness.cpp.o.d"
  "sensitivity_hotness"
  "sensitivity_hotness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_hotness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
