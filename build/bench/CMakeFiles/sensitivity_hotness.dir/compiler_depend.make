# Empty compiler generated dependencies file for sensitivity_hotness.
# This may be replaced when dependencies are built.
