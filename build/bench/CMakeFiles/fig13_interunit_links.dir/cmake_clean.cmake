file(REMOVE_RECURSE
  "CMakeFiles/fig13_interunit_links.dir/fig13_interunit_links.cpp.o"
  "CMakeFiles/fig13_interunit_links.dir/fig13_interunit_links.cpp.o.d"
  "fig13_interunit_links"
  "fig13_interunit_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_interunit_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
