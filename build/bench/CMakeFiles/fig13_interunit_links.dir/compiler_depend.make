# Empty compiler generated dependencies file for fig13_interunit_links.
# This may be replaced when dependencies are built.
