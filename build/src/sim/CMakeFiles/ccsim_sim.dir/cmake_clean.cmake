file(REMOVE_RECURSE
  "CMakeFiles/ccsim_sim.dir/Simulator.cpp.o"
  "CMakeFiles/ccsim_sim.dir/Simulator.cpp.o.d"
  "CMakeFiles/ccsim_sim.dir/Sweep.cpp.o"
  "CMakeFiles/ccsim_sim.dir/Sweep.cpp.o.d"
  "libccsim_sim.a"
  "libccsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
