file(REMOVE_RECURSE
  "CMakeFiles/ccsim_analysis.dir/Aggregate.cpp.o"
  "CMakeFiles/ccsim_analysis.dir/Aggregate.cpp.o.d"
  "CMakeFiles/ccsim_analysis.dir/OverheadFit.cpp.o"
  "CMakeFiles/ccsim_analysis.dir/OverheadFit.cpp.o.d"
  "libccsim_analysis.a"
  "libccsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
