file(REMOVE_RECURSE
  "libccsim_analysis.a"
)
