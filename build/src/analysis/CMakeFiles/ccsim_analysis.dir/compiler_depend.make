# Empty compiler generated dependencies file for ccsim_analysis.
# This may be replaced when dependencies are built.
