
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CacheManager.cpp" "src/core/CMakeFiles/ccsim_core.dir/CacheManager.cpp.o" "gcc" "src/core/CMakeFiles/ccsim_core.dir/CacheManager.cpp.o.d"
  "/root/repo/src/core/CacheStats.cpp" "src/core/CMakeFiles/ccsim_core.dir/CacheStats.cpp.o" "gcc" "src/core/CMakeFiles/ccsim_core.dir/CacheStats.cpp.o.d"
  "/root/repo/src/core/CodeCache.cpp" "src/core/CMakeFiles/ccsim_core.dir/CodeCache.cpp.o" "gcc" "src/core/CMakeFiles/ccsim_core.dir/CodeCache.cpp.o.d"
  "/root/repo/src/core/EvictionPolicy.cpp" "src/core/CMakeFiles/ccsim_core.dir/EvictionPolicy.cpp.o" "gcc" "src/core/CMakeFiles/ccsim_core.dir/EvictionPolicy.cpp.o.d"
  "/root/repo/src/core/FreeListCache.cpp" "src/core/CMakeFiles/ccsim_core.dir/FreeListCache.cpp.o" "gcc" "src/core/CMakeFiles/ccsim_core.dir/FreeListCache.cpp.o.d"
  "/root/repo/src/core/GenerationalCache.cpp" "src/core/CMakeFiles/ccsim_core.dir/GenerationalCache.cpp.o" "gcc" "src/core/CMakeFiles/ccsim_core.dir/GenerationalCache.cpp.o.d"
  "/root/repo/src/core/LinkGraph.cpp" "src/core/CMakeFiles/ccsim_core.dir/LinkGraph.cpp.o" "gcc" "src/core/CMakeFiles/ccsim_core.dir/LinkGraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
