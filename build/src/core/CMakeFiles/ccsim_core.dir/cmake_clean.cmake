file(REMOVE_RECURSE
  "CMakeFiles/ccsim_core.dir/CacheManager.cpp.o"
  "CMakeFiles/ccsim_core.dir/CacheManager.cpp.o.d"
  "CMakeFiles/ccsim_core.dir/CacheStats.cpp.o"
  "CMakeFiles/ccsim_core.dir/CacheStats.cpp.o.d"
  "CMakeFiles/ccsim_core.dir/CodeCache.cpp.o"
  "CMakeFiles/ccsim_core.dir/CodeCache.cpp.o.d"
  "CMakeFiles/ccsim_core.dir/EvictionPolicy.cpp.o"
  "CMakeFiles/ccsim_core.dir/EvictionPolicy.cpp.o.d"
  "CMakeFiles/ccsim_core.dir/FreeListCache.cpp.o"
  "CMakeFiles/ccsim_core.dir/FreeListCache.cpp.o.d"
  "CMakeFiles/ccsim_core.dir/GenerationalCache.cpp.o"
  "CMakeFiles/ccsim_core.dir/GenerationalCache.cpp.o.d"
  "CMakeFiles/ccsim_core.dir/LinkGraph.cpp.o"
  "CMakeFiles/ccsim_core.dir/LinkGraph.cpp.o.d"
  "libccsim_core.a"
  "libccsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
