# Empty dependencies file for ccsim_support.
# This may be replaced when dependencies are built.
