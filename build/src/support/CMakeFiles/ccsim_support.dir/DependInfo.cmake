
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/AsciiChart.cpp" "src/support/CMakeFiles/ccsim_support.dir/AsciiChart.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/AsciiChart.cpp.o.d"
  "/root/repo/src/support/BinaryIO.cpp" "src/support/CMakeFiles/ccsim_support.dir/BinaryIO.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/BinaryIO.cpp.o.d"
  "/root/repo/src/support/Csv.cpp" "src/support/CMakeFiles/ccsim_support.dir/Csv.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/Csv.cpp.o.d"
  "/root/repo/src/support/Flags.cpp" "src/support/CMakeFiles/ccsim_support.dir/Flags.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/Flags.cpp.o.d"
  "/root/repo/src/support/Histogram.cpp" "src/support/CMakeFiles/ccsim_support.dir/Histogram.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/Histogram.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/support/CMakeFiles/ccsim_support.dir/Random.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/Random.cpp.o.d"
  "/root/repo/src/support/Regression.cpp" "src/support/CMakeFiles/ccsim_support.dir/Regression.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/Regression.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/support/CMakeFiles/ccsim_support.dir/Statistics.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/Statistics.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/support/CMakeFiles/ccsim_support.dir/StringUtils.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/StringUtils.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/support/CMakeFiles/ccsim_support.dir/Table.cpp.o" "gcc" "src/support/CMakeFiles/ccsim_support.dir/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
