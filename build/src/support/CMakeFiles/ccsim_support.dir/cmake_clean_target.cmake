file(REMOVE_RECURSE
  "libccsim_support.a"
)
