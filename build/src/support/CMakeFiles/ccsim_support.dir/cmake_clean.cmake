file(REMOVE_RECURSE
  "CMakeFiles/ccsim_support.dir/AsciiChart.cpp.o"
  "CMakeFiles/ccsim_support.dir/AsciiChart.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/BinaryIO.cpp.o"
  "CMakeFiles/ccsim_support.dir/BinaryIO.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/Csv.cpp.o"
  "CMakeFiles/ccsim_support.dir/Csv.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/Flags.cpp.o"
  "CMakeFiles/ccsim_support.dir/Flags.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/Histogram.cpp.o"
  "CMakeFiles/ccsim_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/Random.cpp.o"
  "CMakeFiles/ccsim_support.dir/Random.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/Regression.cpp.o"
  "CMakeFiles/ccsim_support.dir/Regression.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/Statistics.cpp.o"
  "CMakeFiles/ccsim_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/StringUtils.cpp.o"
  "CMakeFiles/ccsim_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/ccsim_support.dir/Table.cpp.o"
  "CMakeFiles/ccsim_support.dir/Table.cpp.o.d"
  "libccsim_support.a"
  "libccsim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
