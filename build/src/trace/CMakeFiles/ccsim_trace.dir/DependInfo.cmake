
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/Trace.cpp" "src/trace/CMakeFiles/ccsim_trace.dir/Trace.cpp.o" "gcc" "src/trace/CMakeFiles/ccsim_trace.dir/Trace.cpp.o.d"
  "/root/repo/src/trace/TraceGenerator.cpp" "src/trace/CMakeFiles/ccsim_trace.dir/TraceGenerator.cpp.o" "gcc" "src/trace/CMakeFiles/ccsim_trace.dir/TraceGenerator.cpp.o.d"
  "/root/repo/src/trace/TraceIO.cpp" "src/trace/CMakeFiles/ccsim_trace.dir/TraceIO.cpp.o" "gcc" "src/trace/CMakeFiles/ccsim_trace.dir/TraceIO.cpp.o.d"
  "/root/repo/src/trace/WorkloadModel.cpp" "src/trace/CMakeFiles/ccsim_trace.dir/WorkloadModel.cpp.o" "gcc" "src/trace/CMakeFiles/ccsim_trace.dir/WorkloadModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
