file(REMOVE_RECURSE
  "CMakeFiles/ccsim_trace.dir/Trace.cpp.o"
  "CMakeFiles/ccsim_trace.dir/Trace.cpp.o.d"
  "CMakeFiles/ccsim_trace.dir/TraceGenerator.cpp.o"
  "CMakeFiles/ccsim_trace.dir/TraceGenerator.cpp.o.d"
  "CMakeFiles/ccsim_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/ccsim_trace.dir/TraceIO.cpp.o.d"
  "CMakeFiles/ccsim_trace.dir/WorkloadModel.cpp.o"
  "CMakeFiles/ccsim_trace.dir/WorkloadModel.cpp.o.d"
  "libccsim_trace.a"
  "libccsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
