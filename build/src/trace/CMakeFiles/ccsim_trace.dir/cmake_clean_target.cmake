file(REMOVE_RECURSE
  "libccsim_trace.a"
)
