# Empty dependencies file for ccsim_trace.
# This may be replaced when dependencies are built.
