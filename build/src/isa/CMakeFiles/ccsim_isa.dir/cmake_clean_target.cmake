file(REMOVE_RECURSE
  "libccsim_isa.a"
)
