file(REMOVE_RECURSE
  "CMakeFiles/ccsim_isa.dir/Isa.cpp.o"
  "CMakeFiles/ccsim_isa.dir/Isa.cpp.o.d"
  "CMakeFiles/ccsim_isa.dir/Program.cpp.o"
  "CMakeFiles/ccsim_isa.dir/Program.cpp.o.d"
  "CMakeFiles/ccsim_isa.dir/ProgramGenerator.cpp.o"
  "CMakeFiles/ccsim_isa.dir/ProgramGenerator.cpp.o.d"
  "libccsim_isa.a"
  "libccsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
