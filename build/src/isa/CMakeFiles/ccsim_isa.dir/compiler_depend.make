# Empty compiler generated dependencies file for ccsim_isa.
# This may be replaced when dependencies are built.
