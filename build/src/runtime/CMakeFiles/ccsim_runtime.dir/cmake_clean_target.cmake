file(REMOVE_RECURSE
  "libccsim_runtime.a"
)
