
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/DispatchTable.cpp" "src/runtime/CMakeFiles/ccsim_runtime.dir/DispatchTable.cpp.o" "gcc" "src/runtime/CMakeFiles/ccsim_runtime.dir/DispatchTable.cpp.o.d"
  "/root/repo/src/runtime/GuestState.cpp" "src/runtime/CMakeFiles/ccsim_runtime.dir/GuestState.cpp.o" "gcc" "src/runtime/CMakeFiles/ccsim_runtime.dir/GuestState.cpp.o.d"
  "/root/repo/src/runtime/Interpreter.cpp" "src/runtime/CMakeFiles/ccsim_runtime.dir/Interpreter.cpp.o" "gcc" "src/runtime/CMakeFiles/ccsim_runtime.dir/Interpreter.cpp.o.d"
  "/root/repo/src/runtime/SystemProfiles.cpp" "src/runtime/CMakeFiles/ccsim_runtime.dir/SystemProfiles.cpp.o" "gcc" "src/runtime/CMakeFiles/ccsim_runtime.dir/SystemProfiles.cpp.o.d"
  "/root/repo/src/runtime/Translator.cpp" "src/runtime/CMakeFiles/ccsim_runtime.dir/Translator.cpp.o" "gcc" "src/runtime/CMakeFiles/ccsim_runtime.dir/Translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ccsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
