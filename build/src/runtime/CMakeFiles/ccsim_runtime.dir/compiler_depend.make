# Empty compiler generated dependencies file for ccsim_runtime.
# This may be replaced when dependencies are built.
