file(REMOVE_RECURSE
  "CMakeFiles/ccsim_runtime.dir/DispatchTable.cpp.o"
  "CMakeFiles/ccsim_runtime.dir/DispatchTable.cpp.o.d"
  "CMakeFiles/ccsim_runtime.dir/GuestState.cpp.o"
  "CMakeFiles/ccsim_runtime.dir/GuestState.cpp.o.d"
  "CMakeFiles/ccsim_runtime.dir/Interpreter.cpp.o"
  "CMakeFiles/ccsim_runtime.dir/Interpreter.cpp.o.d"
  "CMakeFiles/ccsim_runtime.dir/SystemProfiles.cpp.o"
  "CMakeFiles/ccsim_runtime.dir/SystemProfiles.cpp.o.d"
  "CMakeFiles/ccsim_runtime.dir/Translator.cpp.o"
  "CMakeFiles/ccsim_runtime.dir/Translator.cpp.o.d"
  "libccsim_runtime.a"
  "libccsim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
