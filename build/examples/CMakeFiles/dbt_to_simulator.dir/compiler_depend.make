# Empty compiler generated dependencies file for dbt_to_simulator.
# This may be replaced when dependencies are built.
