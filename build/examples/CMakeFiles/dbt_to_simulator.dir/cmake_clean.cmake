file(REMOVE_RECURSE
  "CMakeFiles/dbt_to_simulator.dir/dbt_to_simulator.cpp.o"
  "CMakeFiles/dbt_to_simulator.dir/dbt_to_simulator.cpp.o.d"
  "dbt_to_simulator"
  "dbt_to_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbt_to_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
