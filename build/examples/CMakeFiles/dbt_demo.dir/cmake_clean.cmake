file(REMOVE_RECURSE
  "CMakeFiles/dbt_demo.dir/dbt_demo.cpp.o"
  "CMakeFiles/dbt_demo.dir/dbt_demo.cpp.o.d"
  "dbt_demo"
  "dbt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
