# Empty compiler generated dependencies file for dbt_demo.
# This may be replaced when dependencies are built.
