file(REMOVE_RECURSE
  "CMakeFiles/ccsim_cli.dir/ccsim_cli.cpp.o"
  "CMakeFiles/ccsim_cli.dir/ccsim_cli.cpp.o.d"
  "ccsim_cli"
  "ccsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
