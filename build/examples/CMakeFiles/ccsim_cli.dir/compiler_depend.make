# Empty compiler generated dependencies file for ccsim_cli.
# This may be replaced when dependencies are built.
