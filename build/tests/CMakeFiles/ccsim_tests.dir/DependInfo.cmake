
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/AnalysisTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/analysis/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/analysis/AnalysisTest.cpp.o.d"
  "/root/repo/tests/core/CacheManagerTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/CacheManagerTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/CacheManagerTest.cpp.o.d"
  "/root/repo/tests/core/CodeCachePropertyTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/CodeCachePropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/CodeCachePropertyTest.cpp.o.d"
  "/root/repo/tests/core/CodeCacheTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/CodeCacheTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/CodeCacheTest.cpp.o.d"
  "/root/repo/tests/core/CostModelTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/CostModelTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/CostModelTest.cpp.o.d"
  "/root/repo/tests/core/EvictionPolicyTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/EvictionPolicyTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/EvictionPolicyTest.cpp.o.d"
  "/root/repo/tests/core/FreeListCacheTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/FreeListCacheTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/FreeListCacheTest.cpp.o.d"
  "/root/repo/tests/core/GenerationalCacheTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/GenerationalCacheTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/GenerationalCacheTest.cpp.o.d"
  "/root/repo/tests/core/LinkGraphTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/core/LinkGraphTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/core/LinkGraphTest.cpp.o.d"
  "/root/repo/tests/integration/EndToEndTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/integration/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/integration/EndToEndTest.cpp.o.d"
  "/root/repo/tests/isa/IsaTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/isa/IsaTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/isa/IsaTest.cpp.o.d"
  "/root/repo/tests/isa/ProgramBuilderTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/isa/ProgramBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/isa/ProgramBuilderTest.cpp.o.d"
  "/root/repo/tests/isa/ProgramGeneratorTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/isa/ProgramGeneratorTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/isa/ProgramGeneratorTest.cpp.o.d"
  "/root/repo/tests/runtime/DispatchTableTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/runtime/DispatchTableTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/runtime/DispatchTableTest.cpp.o.d"
  "/root/repo/tests/runtime/FuzzTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/runtime/FuzzTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/runtime/FuzzTest.cpp.o.d"
  "/root/repo/tests/runtime/GuestStateTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/runtime/GuestStateTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/runtime/GuestStateTest.cpp.o.d"
  "/root/repo/tests/runtime/InterpreterTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/runtime/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/runtime/InterpreterTest.cpp.o.d"
  "/root/repo/tests/runtime/SystemProfilesTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/runtime/SystemProfilesTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/runtime/SystemProfilesTest.cpp.o.d"
  "/root/repo/tests/runtime/TranslatorTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/runtime/TranslatorTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/runtime/TranslatorTest.cpp.o.d"
  "/root/repo/tests/sim/SimulatorTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/sim/SimulatorTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/sim/SimulatorTest.cpp.o.d"
  "/root/repo/tests/sim/SweepTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/sim/SweepTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/sim/SweepTest.cpp.o.d"
  "/root/repo/tests/support/AsciiChartTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/AsciiChartTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/AsciiChartTest.cpp.o.d"
  "/root/repo/tests/support/BinaryIOTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/BinaryIOTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/BinaryIOTest.cpp.o.d"
  "/root/repo/tests/support/CsvTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/CsvTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/CsvTest.cpp.o.d"
  "/root/repo/tests/support/FlagsTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/FlagsTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/FlagsTest.cpp.o.d"
  "/root/repo/tests/support/HistogramTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/HistogramTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/HistogramTest.cpp.o.d"
  "/root/repo/tests/support/RandomTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/RandomTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/RandomTest.cpp.o.d"
  "/root/repo/tests/support/RegressionTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/RegressionTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/RegressionTest.cpp.o.d"
  "/root/repo/tests/support/StatisticsTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/StatisticsTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/StatisticsTest.cpp.o.d"
  "/root/repo/tests/support/StringUtilsTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/StringUtilsTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/StringUtilsTest.cpp.o.d"
  "/root/repo/tests/support/TableTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/support/TableTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/support/TableTest.cpp.o.d"
  "/root/repo/tests/trace/TraceGeneratorTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/trace/TraceGeneratorTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/trace/TraceGeneratorTest.cpp.o.d"
  "/root/repo/tests/trace/TraceIOTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/trace/TraceIOTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/trace/TraceIOTest.cpp.o.d"
  "/root/repo/tests/trace/TraceTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/trace/TraceTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/trace/TraceTest.cpp.o.d"
  "/root/repo/tests/trace/WorkloadModelTest.cpp" "tests/CMakeFiles/ccsim_tests.dir/trace/WorkloadModelTest.cpp.o" "gcc" "tests/CMakeFiles/ccsim_tests.dir/trace/WorkloadModelTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ccsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ccsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
