//===- tests/sim/SweepTest.cpp - Suite sweep engine tests ------------------===//

#include "sim/Sweep.h"

#include "gtest/gtest.h"

using namespace ccsim;

namespace {

/// One small engine shared by all tests in this file (trace generation
/// is the expensive part).
const SweepEngine &engine() {
  static SweepEngine Engine = SweepEngine::forScaledTable1(0.05);
  return Engine;
}

} // namespace

TEST(SweepTest, TracesCoverSuite) {
  EXPECT_EQ(engine().traces().size(), 20u);
  for (const Trace &T : engine().traces())
    EXPECT_TRUE(T.validate());
}

TEST(SweepTest, Equation1WeightingIsCounterSum) {
  SimConfig C;
  C.PressureFactor = 4.0;
  const SuiteResult R = engine().runSuite(GranularitySpec::units(8), C);
  uint64_t Accesses = 0, Misses = 0;
  for (const SimResult &B : R.PerBenchmark) {
    Accesses += B.Stats.Accesses;
    Misses += B.Stats.Misses;
  }
  EXPECT_EQ(R.Combined.Accesses, Accesses);
  EXPECT_EQ(R.Combined.Misses, Misses);
  EXPECT_DOUBLE_EQ(R.Combined.missRate(),
                   static_cast<double>(Misses) /
                       static_cast<double>(Accesses));
  EXPECT_EQ(R.PerBenchmark.size(), 20u);
  EXPECT_EQ(R.PolicyLabel, "8-unit");
  EXPECT_DOUBLE_EQ(R.PressureFactor, 4.0);
}

TEST(SweepTest, ThreadCountDoesNotChangeResults) {
  SweepEngine Serial = SweepEngine::forScaledTable1(0.04);
  SweepEngine Parallel = SweepEngine::forScaledTable1(0.04);
  Serial.setNumThreads(1);
  Parallel.setNumThreads(8);
  SimConfig C;
  C.PressureFactor = 6.0;
  const SuiteResult A = Serial.runSuite(GranularitySpec::fine(), C);
  const SuiteResult B = Parallel.runSuite(GranularitySpec::fine(), C);
  EXPECT_EQ(A.Combined.Misses, B.Combined.Misses);
  EXPECT_EQ(A.Combined.EvictionInvocations, B.Combined.EvictionInvocations);
  EXPECT_DOUBLE_EQ(A.Combined.MissOverhead, B.Combined.MissOverhead);
}

TEST(SweepTest, GranularitySweepMissRatesDecline) {
  // Figure 6's shape: FLUSH misses the most, fine FIFO the least, and
  // the curve is (weakly) monotone along the granularity axis.
  SimConfig C;
  C.PressureFactor = 4.0;
  const auto Results = engine().sweepGranularities(C);
  ASSERT_EQ(Results.size(), 10u);
  const double First = Results.front().Combined.missRate();
  const double Last = Results.back().Combined.missRate();
  EXPECT_GT(First, Last);
  for (size_t I = 1; I < Results.size(); ++I)
    EXPECT_LE(Results[I].Combined.missRate(),
              Results[I - 1].Combined.missRate() * 1.01)
        << "granularity " << Results[I].PolicyLabel;
}

TEST(SweepTest, EvictionInvocationsGrowWithGranularity) {
  // Figure 8's shape: finer grains invoke the eviction mechanism more.
  SimConfig C;
  C.PressureFactor = 4.0;
  const auto Results = engine().sweepGranularities(C);
  EXPECT_LT(Results.front().Combined.EvictionInvocations,
            Results.back().Combined.EvictionInvocations);
}

TEST(SweepTest, FlushHasNoInterUnitLinks) {
  SimConfig C;
  C.PressureFactor = 4.0;
  const SuiteResult R = engine().runSuite(GranularitySpec::flush(), C);
  EXPECT_EQ(R.Combined.InterUnitLinksCreated, 0u);
  EXPECT_GT(R.Combined.LinksCreated, 0u);
}

TEST(SweepTest, InterUnitFractionGrowsWithUnits) {
  // Figure 13's shape.
  SimConfig C;
  C.PressureFactor = 2.0;
  const double At2 = engine()
                         .runSuite(GranularitySpec::units(2), C)
                         .Combined.interUnitLinkFraction();
  const double At64 = engine()
                          .runSuite(GranularitySpec::units(64), C)
                          .Combined.interUnitLinkFraction();
  const double AtFine = engine()
                            .runSuite(GranularitySpec::fine(), C)
                            .Combined.interUnitLinkFraction();
  EXPECT_GT(At2, 0.0);
  EXPECT_LT(At2, At64);
  EXPECT_LT(At64, AtFine);
  EXPECT_LT(AtFine, 1.0); // Self-links keep it under 100%.
}

TEST(SweepTest, CustomPolicyFactoryRuns) {
  SimConfig C;
  C.PressureFactor = 6.0;
  const SuiteResult R = engine().runSuite(
      []() {
        return std::unique_ptr<EvictionPolicy>(
            new AdaptiveGranularityPolicy());
      },
      "Adaptive", C);
  EXPECT_EQ(R.PolicyLabel, "Adaptive");
  EXPECT_GT(R.Combined.Accesses, 0u);
}

TEST(SweepTest, BenchmarkOrderMatchesTable1) {
  const auto &Traces = engine().traces();
  EXPECT_EQ(Traces.front().Name, "gzip-scaled");
  EXPECT_EQ(Traces.back().Name, "word-scaled");
}
