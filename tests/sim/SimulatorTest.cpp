//===- tests/sim/SimulatorTest.cpp - Trace-driven simulator tests ---------===//

#include "sim/Simulator.h"

#include "trace/TraceGenerator.h"
#include "gtest/gtest.h"

using namespace ccsim;

namespace {

Trace scaledTrace(const char *Name, double Factor, uint64_t Seed = 42) {
  const WorkloadModel *M = findWorkload(Name);
  return TraceGenerator::generateBenchmark(scaledWorkload(*M, Factor), Seed);
}

} // namespace

TEST(SimulatorTest, CapacityFromPressure) {
  Trace T = scaledTrace("gzip", 0.5);
  SimConfig C;
  C.PressureFactor = 2.0;
  EXPECT_EQ(sim::capacityFor(T, C), T.maxCacheBytes() / 2);
  C.PressureFactor = 10.0;
  EXPECT_NEAR(static_cast<double>(sim::capacityFor(T, C)),
              static_cast<double>(T.maxCacheBytes()) / 10.0, 1.0);
}

TEST(SimulatorTest, ExplicitCapacityOverrides) {
  Trace T = scaledTrace("gzip", 0.5);
  SimConfig C;
  C.PressureFactor = 2.0;
  C.ExplicitCapacityBytes = 12345;
  EXPECT_EQ(sim::capacityFor(T, C), 12345u);
}

TEST(SimulatorTest, RunCountsEveryAccess) {
  Trace T = scaledTrace("mcf", 1.0);
  SimConfig C;
  C.PressureFactor = 2.0;
  const SimResult R = sim::run(T, GranularitySpec::fine(), C);
  EXPECT_EQ(R.Stats.Accesses, T.numAccesses());
  EXPECT_EQ(R.BenchmarkName, T.Name);
  EXPECT_EQ(R.PolicyName, "FIFO");
  EXPECT_EQ(R.MaxCacheBytes, T.maxCacheBytes());
}

TEST(SimulatorTest, UnboundedCacheHasOnlyColdMisses) {
  // A cache as large as maxCache never evicts: misses == distinct blocks.
  Trace T = scaledTrace("vpr", 0.5);
  SimConfig C;
  C.ExplicitCapacityBytes = T.maxCacheBytes();
  const SimResult R = sim::run(T, GranularitySpec::fine(), C);
  EXPECT_EQ(R.Stats.Misses, T.numSuperblocks());
  EXPECT_EQ(R.Stats.CapacityMisses, 0u);
  EXPECT_EQ(R.Stats.EvictionInvocations, 0u);
}

TEST(SimulatorTest, PressureRaisesMissRate) {
  Trace T = scaledTrace("crafty", 0.3);
  SimConfig Low, High;
  Low.PressureFactor = 2.0;
  High.PressureFactor = 10.0;
  const double MissLow =
      sim::run(T, GranularitySpec::fine(), Low).Stats.missRate();
  const double MissHigh =
      sim::run(T, GranularitySpec::fine(), High).Stats.missRate();
  EXPECT_GT(MissHigh, MissLow);
}

TEST(SimulatorTest, FlushMissesAtLeastFine) {
  // Monotonicity at the extremes (the paper's Figure 6 ordering).
  for (const char *Name : {"gzip", "crafty", "winzip"}) {
    Trace T = scaledTrace(Name, 0.2);
    SimConfig C;
    C.PressureFactor = 4.0;
    const double FlushMiss =
        sim::run(T, GranularitySpec::flush(), C).Stats.missRate();
    const double FineMiss =
        sim::run(T, GranularitySpec::fine(), C).Stats.missRate();
    EXPECT_GE(FlushMiss, FineMiss * 0.999) << Name;
  }
}

TEST(SimulatorTest, ChainingDisabledProducesNoLinks) {
  Trace T = scaledTrace("gap", 0.3);
  SimConfig C;
  C.PressureFactor = 4.0;
  C.EnableChaining = false;
  const SimResult R = sim::run(T, GranularitySpec::units(8), C);
  EXPECT_EQ(R.Stats.LinksCreated, 0u);
  EXPECT_DOUBLE_EQ(R.Stats.UnlinkOverhead, 0.0);
}

TEST(SimulatorTest, CustomCostModelPropagates) {
  Trace T = scaledTrace("mcf", 0.5);
  SimConfig C;
  C.PressureFactor = 4.0;
  C.Costs = CostModel(); // defaults
  const SimResult Base = sim::run(T, GranularitySpec::fine(), C);
  C.Costs.MissBase *= 2.0;
  C.Costs.MissPerByte *= 2.0;
  const SimResult Doubled = sim::run(T, GranularitySpec::fine(), C);
  EXPECT_NEAR(Doubled.Stats.MissOverhead, 2.0 * Base.Stats.MissOverhead,
              1e-6 * Base.Stats.MissOverhead);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  Trace T = scaledTrace("twolf", 0.3);
  SimConfig C;
  C.PressureFactor = 6.0;
  const SimResult A = sim::run(T, GranularitySpec::units(8), C);
  const SimResult B = sim::run(T, GranularitySpec::units(8), C);
  EXPECT_EQ(A.Stats.Misses, B.Stats.Misses);
  EXPECT_EQ(A.Stats.EvictionInvocations, B.Stats.EvictionInvocations);
  EXPECT_DOUBLE_EQ(A.Stats.UnlinkOverhead, B.Stats.UnlinkOverhead);
}

TEST(ExecutionTimeModelTest, TotalAndReduction) {
  ExecutionTimeModel Model;
  Model.InstructionsPerDispatch = 1000.0;
  SimResult A, B;
  A.Stats.Accesses = 100;
  A.Stats.MissOverhead = 50000.0;
  B.Stats.Accesses = 100;
  B.Stats.MissOverhead = 20000.0;
  EXPECT_DOUBLE_EQ(Model.totalInstructions(A, false), 150000.0);
  EXPECT_DOUBLE_EQ(Model.totalInstructions(B, false), 120000.0);
  EXPECT_NEAR(Model.reductionFraction(A, B, false), 0.2, 1e-12);
}

TEST(ExecutionTimeModelTest, LinkTermSelected) {
  ExecutionTimeModel Model;
  Model.InstructionsPerDispatch = 0.0;
  SimResult A;
  A.Stats.Accesses = 1;
  A.Stats.MissOverhead = 10.0;
  A.Stats.UnlinkOverhead = 5.0;
  EXPECT_DOUBLE_EQ(Model.totalInstructions(A, false), 10.0);
  EXPECT_DOUBLE_EQ(Model.totalInstructions(A, true), 15.0);
}
