//===- tests/service/SimServiceTest.cpp - Async job service tests ---------===//

#include "service/SimService.h"

#include "telemetry/Exporters.h"
#include "trace/TraceGenerator.h"
#include "gtest/gtest.h"

#include <chrono>
#include <thread>
#include <variant>
#include <vector>

using namespace ccsim;
using namespace ccsim::service;

namespace {

Trace scaledTrace(const char *Name, double Factor, uint64_t Seed = 42) {
  const WorkloadModel *M = findWorkload(Name);
  return TraceGenerator::generateBenchmark(scaledWorkload(*M, Factor), Seed);
}

/// A hand-built trace whose replay time scales linearly with
/// \p NumAccesses: the cycling access pattern over a half-sized cache
/// makes every access a miss-plus-eviction, so the timing-sensitive tests
/// (deadline, cancel) get a run that is reliably long without depending
/// on the workload models.
Trace syntheticTrace(size_t NumBlocks, size_t NumAccesses) {
  Trace T;
  T.Name = "synthetic";
  T.Blocks.resize(NumBlocks);
  for (SuperblockDef &B : T.Blocks)
    B.SizeBytes = 4096;
  T.Accesses.resize(NumAccesses);
  for (size_t I = 0; I < NumAccesses; ++I)
    T.Accesses[I] = static_cast<SuperblockId>(I % NumBlocks);
  return T;
}

Job replayJob(const char *Name, double Factor, GranularitySpec Spec,
              double Pressure, JobOptions Options = {}) {
  ReplayJob R;
  R.TraceData = scaledTrace(Name, Factor);
  R.Spec = Spec;
  R.Config.PressureFactor = Pressure;
  return Job(std::move(R), std::move(Options));
}

/// A job over the synthetic trace; thrashes for roughly as long as
/// \p NumAccesses dictates, checking its cancel token every 64 accesses.
Job thrashingJob(size_t NumAccesses, JobOptions Options = {}) {
  ReplayJob R;
  R.TraceData = syntheticTrace(64, NumAccesses);
  R.Spec = GranularitySpec::fine();
  R.Config.ExplicitCapacityBytes = 64 * 4096 / 2;
  R.Config.CancelCheckInterval = 64;
  return Job(std::move(R), std::move(Options));
}

void setJobTelemetry(Job &J, telemetry::TelemetrySink *Sink) {
  if (auto *R = std::get_if<ReplayJob>(&J.Payload))
    R->Config.Telemetry = Sink;
  else if (auto *S = std::get_if<SweepBatchJob>(&J.Payload))
    for (SweepJob &Point : S->Jobs)
      Point.Config.Telemetry = Sink;
  else if (auto *T = std::get_if<TenantJob>(&J.Payload))
    T->Run.Telemetry = Sink;
}

/// The mixed workload used by the byte-identity test: every job kind,
/// several policies, scrambled priorities.
std::vector<Job> mixedJobs() {
  std::vector<Job> Jobs;
  Jobs.push_back(replayJob("gzip", 0.05, GranularitySpec::units(8), 8.0,
                           JobOptions().withPriority(1)));
  Jobs.push_back(replayJob("crafty", 0.05, GranularitySpec::flush(), 10.0));
  Jobs.push_back(replayJob("vpr", 0.05, GranularitySpec::fine(), 6.0,
                           JobOptions().withPriority(4)));

  auto Engine =
      std::make_shared<SweepEngine>(SweepEngine::forScaledTable1(0.02));
  SweepBatchJob Sweep;
  Sweep.Engine = Engine;
  SimConfig Base;
  Base.PressureFactor = 2.0;
  Sweep.Jobs = makeSweepGrid(
      {GranularitySpec::flush(), GranularitySpec::fine()}, {2.0}, Base);
  Jobs.push_back(Job(std::move(Sweep), JobOptions().withPriority(2)));

  TenantJob Tenants;
  Tenants.Traces.push_back(scaledTrace("gzip", 0.05));
  Tenants.Traces.push_back(scaledTrace("vpr", 0.05));
  Tenants.Policy.Mode = PartitionMode::Shared;
  Tenants.Policy.PressureFactor = 2.0;
  Jobs.push_back(Job(std::move(Tenants), JobOptions().withPriority(3)));
  return Jobs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism: service vs. serial execution
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, ServiceRunMatchesSerialExecutionByteForByte) {
  // Run the mixed batch twice: once through a multi-threaded service with
  // scrambled priorities, once serially via executeJob on this thread.
  // Each job writes into its own metrics registry; the rendered CSVs must
  // match byte for byte.
  std::vector<Job> ServiceJobs = mixedJobs();
  std::vector<Job> SerialJobs = mixedJobs();
  ASSERT_EQ(ServiceJobs.size(), SerialJobs.size());

  std::vector<std::unique_ptr<telemetry::TelemetrySink>> ServiceSinks;
  std::vector<std::unique_ptr<telemetry::TelemetrySink>> SerialSinks;
  for (size_t I = 0; I < ServiceJobs.size(); ++I) {
    ServiceSinks.push_back(std::make_unique<telemetry::TelemetrySink>());
    SerialSinks.push_back(std::make_unique<telemetry::TelemetrySink>());
    setJobTelemetry(ServiceJobs[I], ServiceSinks[I].get());
    setJobTelemetry(SerialJobs[I], SerialSinks[I].get());
  }

  SimServiceConfig SC;
  SC.Threads = 4;
  SC.QueueCapacity = ServiceJobs.size();
  SimService Service(SC);
  std::vector<JobHandle> Handles;
  for (Job &J : ServiceJobs)
    Handles.push_back(Service.submit(std::move(J)));

  for (size_t I = 0; I < Handles.size(); ++I) {
    const JobOutcome &Async = Handles[I].wait();
    ASSERT_EQ(Async.Status, JobStatus::Done) << Async.Error;
    const JobOutcome Serial = executeJob(SerialJobs[I], nullptr);
    ASSERT_EQ(Serial.Status, JobStatus::Done) << Serial.Error;

    ASSERT_EQ(Async.Replay.size(), Serial.Replay.size());
    for (size_t R = 0; R < Async.Replay.size(); ++R) {
      EXPECT_EQ(Async.Replay[R].Stats.Misses, Serial.Replay[R].Stats.Misses);
      EXPECT_EQ(Async.Replay[R].Stats.EvictionInvocations,
                Serial.Replay[R].Stats.EvictionInvocations);
      EXPECT_DOUBLE_EQ(Async.Replay[R].Stats.totalOverhead(true),
                       Serial.Replay[R].Stats.totalOverhead(true));
    }
    ASSERT_EQ(Async.Suite.size(), Serial.Suite.size());
    for (size_t P = 0; P < Async.Suite.size(); ++P) {
      EXPECT_EQ(Async.Suite[P].PolicyLabel, Serial.Suite[P].PolicyLabel);
      EXPECT_EQ(Async.Suite[P].Combined.Misses,
                Serial.Suite[P].Combined.Misses);
      EXPECT_DOUBLE_EQ(Async.Suite[P].Combined.missRate(),
                       Serial.Suite[P].Combined.missRate());
    }
    ASSERT_EQ(Async.Tenants.has_value(), Serial.Tenants.has_value());
    if (Async.Tenants) {
      EXPECT_EQ(Async.Tenants->Global.Misses, Serial.Tenants->Global.Misses);
      EXPECT_EQ(Async.Tenants->CrossEvictedBlocks,
                Serial.Tenants->CrossEvictedBlocks);
    }

    EXPECT_EQ(telemetry::renderMetricsCsv(ServiceSinks[I]->Metrics),
              telemetry::renderMetricsCsv(SerialSinks[I]->Metrics))
        << "job " << I << " metrics diverged from serial execution";
  }
}

//===----------------------------------------------------------------------===//
// Backpressure policies
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, RejectPolicyFailsFastWhenQueueIsFull) {
  telemetry::TelemetrySink Sink;
  SimServiceConfig SC;
  SC.Threads = 1;
  SC.QueueCapacity = 1;
  SC.Pressure = BackpressurePolicy::Reject;
  SC.StartPaused = true; // Keep the first job queued.
  SC.Telemetry = &Sink;
  SimService Service(SC);

  JobHandle Kept = Service.submit(thrashingJob(1000));
  JobHandle R1 = Service.submit(thrashingJob(1000));
  JobHandle R2 = Service.submit(thrashingJob(1000));

  // Rejection is synchronous: the handles are terminal before start().
  EXPECT_EQ(R1.status(), JobStatus::Rejected);
  EXPECT_EQ(R2.status(), JobStatus::Rejected);
  EXPECT_NE(R1.wait().Error.find("queue full"), std::string::npos)
      << R1.wait().Error;
  EXPECT_EQ(R1.startSequence(), 0u);

  Service.start();
  EXPECT_EQ(Kept.wait().Status, JobStatus::Done) << Kept.wait().Error;
  EXPECT_EQ(Sink.Metrics.counterValue("service_jobs_rejected"), 2u);
  EXPECT_EQ(Sink.Metrics.counterValue(
                "service_jobs_finished",
                {{"kind", "replay"}, {"status", "rejected"}}),
            2u);
}

TEST(SimServiceTest, ShedOldestEvictsTheOldestQueuedJob) {
  telemetry::TelemetrySink Sink;
  SimServiceConfig SC;
  SC.Threads = 1;
  SC.QueueCapacity = 2;
  SC.Pressure = BackpressurePolicy::ShedOldest;
  SC.StartPaused = true;
  SC.Telemetry = &Sink;
  SimService Service(SC);

  JobHandle Oldest = Service.submit(thrashingJob(1000));
  JobHandle Second = Service.submit(thrashingJob(1000));
  JobHandle Third = Service.submit(thrashingJob(1000)); // Evicts Oldest.

  EXPECT_EQ(Oldest.wait().Status, JobStatus::Shed);
  EXPECT_NE(Oldest.wait().Error.find("shed"), std::string::npos);
  EXPECT_EQ(Oldest.startSequence(), 0u);

  Service.start();
  EXPECT_EQ(Second.wait().Status, JobStatus::Done);
  EXPECT_EQ(Third.wait().Status, JobStatus::Done);
  EXPECT_EQ(Sink.Metrics.counterValue("service_jobs_shed"), 1u);
}

TEST(SimServiceTest, BlockPolicyCompletesEveryJob) {
  // A one-slot queue under Block: submitters stall until space frees up,
  // and every job still completes.
  SimServiceConfig SC;
  SC.Threads = 2;
  SC.QueueCapacity = 1;
  SC.Pressure = BackpressurePolicy::Block;
  SimService Service(SC);

  std::vector<JobHandle> Handles;
  for (int I = 0; I < 6; ++I)
    Handles.push_back(Service.submit(thrashingJob(10000)));
  for (JobHandle &H : Handles)
    EXPECT_EQ(H.wait().Status, JobStatus::Done) << H.wait().Error;
  EXPECT_EQ(Service.queueDepth(), 0u);
}

//===----------------------------------------------------------------------===//
// Deadlines and cancellation
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, DeadlineExpiredWhileQueuedTimesOutWithoutRunning) {
  SimServiceConfig SC;
  SC.Threads = 1;
  SC.StartPaused = true;
  SimService Service(SC);

  JobHandle H = Service.submit(thrashingJob(
      1000, JobOptions().withDeadlineIn(std::chrono::milliseconds(1))));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Service.start();

  const JobOutcome &O = H.wait();
  EXPECT_EQ(O.Status, JobStatus::TimedOut);
  EXPECT_NE(O.Error.find("deadline"), std::string::npos) << O.Error;
  EXPECT_TRUE(O.Replay.empty());
  EXPECT_EQ(H.startSequence(), 0u) << "job must not have run";
}

TEST(SimServiceTest, DeadlineTimesOutAJobTheReplayCannotFinish) {
  // The replay needs on the order of a second; the deadline is 100ms.
  // Whether it fires during validation, pickup, or mid-replay (all are
  // inside the deadline window by design), the job must surface as
  // TimedOut with its partial results discarded — never Done.
  SimServiceConfig SC;
  SC.Threads = 1;
  SimService Service(SC);

  Job J = thrashingJob(20000000);
  J.Options.withDeadlineIn(std::chrono::milliseconds(100));
  JobHandle H = Service.submit(std::move(J));
  const JobOutcome &O = H.wait();
  EXPECT_EQ(O.Status, JobStatus::TimedOut) << O.Error;
  EXPECT_TRUE(O.Replay.empty()) << "partial results must be discarded";
}

TEST(SimServiceTest, DeadlineStopsAReplayMidTrace) {
  // Deterministic mid-replay expiry: the replay runs on this thread for
  // on the order of a second, and a controller thread arms an
  // already-expired deadline 100ms in — exactly what a service worker's
  // token sees when the deadline fires mid-run. The replay must stop at
  // its next chunk boundary and report TimedOut, not Cancelled.
  CancelToken Token;
  std::thread Controller([&Token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Token.setDeadline(std::chrono::steady_clock::now());
  });
  const JobOutcome O = executeJob(thrashingJob(20000000), &Token);
  Controller.join();
  EXPECT_EQ(O.Status, JobStatus::TimedOut) << O.Error;
  EXPECT_NE(O.Error.find("deadline"), std::string::npos) << O.Error;
  EXPECT_TRUE(O.Replay.empty()) << "partial results must be discarded";
}

TEST(SimServiceTest, CancelStopsARunningReplay) {
  SimServiceConfig SC;
  SC.Threads = 1;
  SimService Service(SC);

  JobHandle H = Service.submit(thrashingJob(20000000));
  // Wait until the worker has actually picked the job up, then cancel.
  while (H.status() == JobStatus::Queued)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(H.status(), JobStatus::Running);
  H.cancel();

  const JobOutcome &O = H.wait();
  EXPECT_EQ(O.Status, JobStatus::Cancelled);
  EXPECT_TRUE(O.Replay.empty());
}

TEST(SimServiceTest, CancelWhileQueuedNeverRuns) {
  SimServiceConfig SC;
  SC.Threads = 1;
  SC.StartPaused = true;
  SimService Service(SC);

  JobHandle H = Service.submit(thrashingJob(1000));
  EXPECT_FALSE(H.waitFor(std::chrono::milliseconds(10)))
      << "a paused service must not run jobs";
  H.cancel();
  Service.start();

  const JobOutcome &O = H.wait();
  EXPECT_EQ(O.Status, JobStatus::Cancelled);
  EXPECT_NE(O.Error.find("stopped while queued"), std::string::npos)
      << O.Error;
  EXPECT_EQ(H.startSequence(), 0u);
}

//===----------------------------------------------------------------------===//
// Priorities
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, PriorityOrderControlsStartSequence) {
  // A paused single-thread service releases its whole queue at once, so
  // start order is exactly priority order with FIFO ties.
  SimServiceConfig SC;
  SC.Threads = 1;
  SC.QueueCapacity = 8;
  SC.StartPaused = true;
  SimService Service(SC);

  JobHandle P0 = Service.submit(thrashingJob(1000));
  JobHandle P5a =
      Service.submit(thrashingJob(1000, JobOptions().withPriority(5)));
  JobHandle P1 =
      Service.submit(thrashingJob(1000, JobOptions().withPriority(1)));
  JobHandle P5b =
      Service.submit(thrashingJob(1000, JobOptions().withPriority(5)));

  Service.start();
  Service.drain();

  EXPECT_EQ(P5a.startSequence(), 1u);
  EXPECT_EQ(P5b.startSequence(), 2u) << "ties must run in submission order";
  EXPECT_EQ(P1.startSequence(), 3u);
  EXPECT_EQ(P0.startSequence(), 4u);
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, DrainCompletesAdmittedJobsThenRejectsNewOnes) {
  SimServiceConfig SC;
  SC.Threads = 2;
  SimService Service(SC);

  std::vector<JobHandle> Handles;
  for (int I = 0; I < 4; ++I)
    Handles.push_back(Service.submit(thrashingJob(200000)));
  Service.drain();

  EXPECT_TRUE(Service.draining());
  for (JobHandle &H : Handles)
    EXPECT_EQ(H.status(), JobStatus::Done)
        << "drain must complete every admitted job";

  JobHandle Late = Service.submit(thrashingJob(1000));
  EXPECT_EQ(Late.wait().Status, JobStatus::Rejected);
  EXPECT_NE(Late.wait().Error.find("draining"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Failure injection
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, InvalidConfigIsRejectedWithoutPoisoningTheQueue) {
  SimServiceConfig SC;
  SC.Threads = 1;
  SimService Service(SC);

  Job Bad = thrashingJob(1000);
  std::get<ReplayJob>(Bad.Payload).Config.ExplicitCapacityBytes = 0;
  std::get<ReplayJob>(Bad.Payload).Config.PressureFactor = 0.5;
  JobHandle BadHandle = Service.submit(std::move(Bad));

  const JobOutcome &O = BadHandle.wait();
  EXPECT_EQ(O.Status, JobStatus::Rejected);
  EXPECT_NE(O.Error.find("invalid job"), std::string::npos) << O.Error;
  EXPECT_NE(O.Error.find("pressure factor"), std::string::npos) << O.Error;

  // The failure is contained: the next valid job runs normally.
  JobHandle Good = Service.submit(thrashingJob(1000));
  EXPECT_EQ(Good.wait().Status, JobStatus::Done) << Good.wait().Error;
}

TEST(SimServiceTest, ExecuteJobFailsOnInvalidTraceWithoutAborting) {
  // An access naming an undefined superblock makes the trace structurally
  // invalid; executeJob must turn that into a Failed outcome, never an
  // abort.
  ReplayJob R;
  R.TraceData = syntheticTrace(4, 100);
  R.TraceData.Accesses.push_back(999); // No such superblock.
  R.Config.PressureFactor = 2.0;
  ASSERT_FALSE(R.TraceData.validate());

  const JobOutcome O = executeJob(Job(std::move(R)), nullptr);
  EXPECT_EQ(O.Status, JobStatus::Failed);
  EXPECT_FALSE(O.Error.empty());
  EXPECT_TRUE(O.Replay.empty());
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, ServiceTelemetryExposesQueueAndLatencyInstruments) {
  telemetry::TelemetrySink Sink;
  SimServiceConfig SC;
  SC.Threads = 2;
  SC.QueueCapacity = 8;
  SC.StartPaused = true; // Let the queue fill so the peak gauge moves.
  SC.Telemetry = &Sink;
  SimService Service(SC);

  std::vector<JobHandle> Handles;
  for (int I = 0; I < 3; ++I)
    Handles.push_back(Service.submit(
        thrashingJob(1000, JobOptions().withLabel("tagged-job"))));
  Service.start();
  Service.drain();

  EXPECT_EQ(Sink.Metrics.counterValue("service_jobs_submitted",
                                      {{"kind", "replay"}}),
            3u);
  EXPECT_EQ(Sink.Metrics.counterValue("service_jobs_finished",
                                      {{"kind", "replay"},
                                       {"status", "done"}}),
            3u);
  EXPECT_DOUBLE_EQ(Sink.Metrics.gaugeValue("service_queue_depth"), 0.0);
  EXPECT_GE(Sink.Metrics.gaugeValue("service_queue_depth_peak"), 3.0);
  EXPECT_TRUE(Sink.Metrics.has("service_wait_ms", {{"kind", "replay"}}));
  EXPECT_TRUE(Sink.Metrics.has("service_run_ms", {{"kind", "replay"}}));
  EXPECT_TRUE(Sink.Metrics.has("service_job_wait_ms", {{"job", "tagged-job"}}));
  EXPECT_TRUE(Sink.Metrics.has("service_job_run_ms", {{"job", "tagged-job"}}));
}

//===----------------------------------------------------------------------===//
// Handles and config surface
//===----------------------------------------------------------------------===//

TEST(SimServiceTest, HandleBasics) {
  EXPECT_FALSE(JobHandle().valid());

  SimServiceConfig SC;
  SC.Threads = 1;
  SimService Service(SC);
  JobHandle H = Service.submit(thrashingJob(1000));
  EXPECT_TRUE(H.valid());
  EXPECT_EQ(H.id(), 1u);
  EXPECT_TRUE(H.waitFor(std::chrono::seconds(60)));
  EXPECT_TRUE(isTerminal(H.status()));

  // Handles are copyable and share state.
  JobHandle Copy = H;
  EXPECT_EQ(Copy.status(), H.status());
}

TEST(SimServiceTest, BackpressurePolicyNamesRoundTrip) {
  EXPECT_STREQ(backpressurePolicyName(BackpressurePolicy::Block), "block");
  EXPECT_STREQ(backpressurePolicyName(BackpressurePolicy::Reject), "reject");
  EXPECT_STREQ(backpressurePolicyName(BackpressurePolicy::ShedOldest),
               "shed-oldest");
  EXPECT_EQ(parseBackpressurePolicy("block"), BackpressurePolicy::Block);
  EXPECT_EQ(parseBackpressurePolicy("reject"), BackpressurePolicy::Reject);
  EXPECT_EQ(parseBackpressurePolicy("shed"), BackpressurePolicy::ShedOldest);
  EXPECT_EQ(parseBackpressurePolicy("shed-oldest"),
            BackpressurePolicy::ShedOldest);
  EXPECT_FALSE(parseBackpressurePolicy("nope").has_value());
}

TEST(SimServiceTest, FluentSettersAndValidateContracts) {
  // SimConfig: the fluent chain covers the common knobs, and validate()
  // reports instead of aborting.
  SimConfig Good = SimConfig().withPressure(8.0).withChaining(false);
  EXPECT_TRUE(Good.validate().empty());
  EXPECT_DOUBLE_EQ(Good.PressureFactor, 8.0);
  EXPECT_FALSE(Good.EnableChaining);

  SimConfig LowPressure = SimConfig().withPressure(0.5);
  EXPECT_NE(LowPressure.validate().find("pressure factor"), std::string::npos);
  // An explicit capacity makes sub-unit pressure irrelevant.
  EXPECT_TRUE(LowPressure.withCapacityBytes(1 << 20).validate().empty());

  SimConfig BadCosts = SimConfig().withPressure(4.0);
  BadCosts.Costs.MissBase = -1.0;
  EXPECT_NE(BadCosts.validate().find("cost model"), std::string::npos);

  SimConfig BadInterval = SimConfig().withPressure(4.0);
  BadInterval.CancelCheckInterval = 0;
  EXPECT_NE(BadInterval.validate().find("cancellation"), std::string::npos);

  // SweepJob: granularity sanity on top of the config contract.
  SweepJob Point = SweepJob()
                       .withSpec(GranularitySpec::units(8))
                       .withConfig(SimConfig().withPressure(2.0));
  EXPECT_TRUE(Point.validate().empty());
  Point.Spec.Units = 0;
  EXPECT_NE(Point.validate().find("at least one unit"), std::string::npos);

  // MultiTenantConfig: per-tenant weights must be positive.
  MultiTenantConfig Tenants =
      MultiTenantConfig().withPressure(2.0).withTenants({{1.0}, {-1.0}});
  EXPECT_NE(Tenants.validate().find("weight"), std::string::npos);
  Tenants.Tenants[1].Weight = 2.0;
  EXPECT_TRUE(Tenants.validate().empty());
}
