//===- tests/concurrent/ThreadPoolTest.cpp - Worker pool tests ------------===//

#include "concurrent/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <stdexcept>
#include <vector>

using namespace ccsim;

TEST(ThreadPoolTest, ZeroJobsIsANoop) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool Pool(8);
  constexpr size_t N = 10000;
  std::vector<std::atomic<uint32_t>> Counts(N);
  Pool.parallelFor(N, [&](size_t I) { ++Counts[I]; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Counts[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, OversubscriptionIsSafe) {
  // Far more workers than jobs, and more jobs than chunks can fill.
  ThreadPool Pool(16);
  std::atomic<uint32_t> Sum{0};
  Pool.parallelFor(3, [&](size_t I) { Sum += static_cast<uint32_t>(I); });
  EXPECT_EQ(Sum.load(), 3u);
}

TEST(ThreadPoolTest, DeterministicResultOrdering) {
  // Results land by index, so output never depends on scheduling.
  ThreadPool Pool(8);
  constexpr size_t N = 1000;
  std::vector<size_t> Out(N, 0);
  Pool.parallelFor(N, [&](size_t I) { Out[I] = I * I; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Out[I], I * I);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromFailingIndex) {
  ThreadPool Pool(4);
  constexpr size_t Failing = 137;
  try {
    Pool.parallelFor(1000, [&](size_t I) {
      if (I == Failing)
        throw std::runtime_error("cell 137 failed");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "cell 137 failed");
  }
}

TEST(ThreadPoolTest, PoolSurvivesAnException) {
  // A failed region must not wedge the workers for the next one.
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(100, [](size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
  std::atomic<uint32_t> Count{0};
  Pool.parallelFor(100, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 1u);
  const std::thread::id Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Seen(4);
  Pool.parallelFor(4, [&](size_t I) { Seen[I] = std::this_thread::get_id(); });
  for (const std::thread::id &Id : Seen)
    EXPECT_EQ(Id, Caller);
}

TEST(ThreadPoolTest, SubmitAndWaitIdle) {
  ThreadPool Pool(4);
  std::atomic<uint32_t> Count{0};
  for (int I = 0; I < 64; ++I)
    Pool.submit([&]() { ++Count; });
  Pool.waitIdle();
  EXPECT_EQ(Count.load(), 64u);
}

TEST(ThreadPoolTest, DefaultThreadCountIsHardware) {
  ThreadPool Pool;
  EXPECT_EQ(Pool.threadCount(), ThreadPool::hardwareThreads());
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPoolTest, TransientParallelForHelper) {
  std::vector<int> Out(50, 0);
  parallelFor(3, Out.size(), [&](size_t I) { Out[I] = 1; });
  for (int V : Out)
    EXPECT_EQ(V, 1);
}
