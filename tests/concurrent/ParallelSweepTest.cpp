//===- tests/concurrent/ParallelSweepTest.cpp - Parallel == serial --------===//

#include "sim/Sweep.h"

#include "gtest/gtest.h"

using namespace ccsim;

namespace {

/// Asserts bit-identical suite results, including the double-precision
/// overhead accumulators (aggregation order is canonical in both paths).
void expectIdentical(const SuiteResult &A, const SuiteResult &B) {
  EXPECT_EQ(A.PolicyLabel, B.PolicyLabel);
  EXPECT_EQ(A.PressureFactor, B.PressureFactor);
  ASSERT_EQ(A.PerBenchmark.size(), B.PerBenchmark.size());
  EXPECT_EQ(A.Combined.Accesses, B.Combined.Accesses);
  EXPECT_EQ(A.Combined.Hits, B.Combined.Hits);
  EXPECT_EQ(A.Combined.Misses, B.Combined.Misses);
  EXPECT_EQ(A.Combined.ColdMisses, B.Combined.ColdMisses);
  EXPECT_EQ(A.Combined.CapacityMisses, B.Combined.CapacityMisses);
  EXPECT_EQ(A.Combined.EvictionInvocations, B.Combined.EvictionInvocations);
  EXPECT_EQ(A.Combined.EvictedBlocks, B.Combined.EvictedBlocks);
  EXPECT_EQ(A.Combined.EvictedBytes, B.Combined.EvictedBytes);
  EXPECT_EQ(A.Combined.UnitsFlushed, B.Combined.UnitsFlushed);
  EXPECT_EQ(A.Combined.WastedBytes, B.Combined.WastedBytes);
  EXPECT_EQ(A.Combined.LinksCreated, B.Combined.LinksCreated);
  EXPECT_EQ(A.Combined.InterUnitLinksCreated,
            B.Combined.InterUnitLinksCreated);
  EXPECT_EQ(A.Combined.UnlinkedLinks, B.Combined.UnlinkedLinks);
  EXPECT_EQ(A.Combined.UnlinkOperations, B.Combined.UnlinkOperations);
  EXPECT_EQ(A.Combined.BackPointerBytesPeak, B.Combined.BackPointerBytesPeak);
  // Exact double equality is intentional: cells are pure functions and
  // both paths merge per-benchmark counters in the same canonical order.
  EXPECT_EQ(A.Combined.MissOverhead, B.Combined.MissOverhead);
  EXPECT_EQ(A.Combined.EvictionOverhead, B.Combined.EvictionOverhead);
  EXPECT_EQ(A.Combined.UnlinkOverhead, B.Combined.UnlinkOverhead);
  EXPECT_EQ(A.Combined.BackPointerBytesSum, B.Combined.BackPointerBytesSum);
  for (size_t I = 0; I < A.PerBenchmark.size(); ++I) {
    EXPECT_EQ(A.PerBenchmark[I].BenchmarkName, B.PerBenchmark[I].BenchmarkName);
    EXPECT_EQ(A.PerBenchmark[I].CapacityBytes, B.PerBenchmark[I].CapacityBytes);
    EXPECT_EQ(A.PerBenchmark[I].Stats.Misses, B.PerBenchmark[I].Stats.Misses);
    EXPECT_EQ(A.PerBenchmark[I].Stats.MissOverhead,
              B.PerBenchmark[I].Stats.MissOverhead);
  }
}

} // namespace

TEST(ParallelSweepTest, RunParallelMatchesSerialOnFig7StyleGrid) {
  // The fig7 grid shape: granularity axis x pressure axis, every cell one
  // (benchmark, policy, capacity) simulation. Two suite seeds guard
  // against a lucky coincidence on one trace set.
  const std::vector<GranularitySpec> Specs = {
      GranularitySpec::flush(), GranularitySpec::units(8),
      GranularitySpec::fine()};
  const std::vector<double> Pressures = {2.0, 6.0};

  for (uint64_t Seed : {uint64_t(DefaultSuiteSeed), uint64_t(0x1234)}) {
    SweepEngine Serial = SweepEngine::forScaledTable1(0.03, Seed);
    SweepEngine Parallel = SweepEngine::forScaledTable1(0.03, Seed);
    Serial.setNumThreads(1);
    Parallel.setNumThreads(8);

    const std::vector<SweepJob> Jobs =
        makeSweepGrid(Specs, Pressures, SimConfig());

    // Serial reference: one runSuite per job, in job order.
    std::vector<SuiteResult> Expected;
    for (const SweepJob &Job : Jobs)
      Expected.push_back(Serial.runSuite(Job.Spec, Job.Config));

    const std::vector<SuiteResult> Actual = Parallel.runParallel(Jobs);
    ASSERT_EQ(Actual.size(), Expected.size());
    for (size_t I = 0; I < Expected.size(); ++I)
      expectIdentical(Expected[I], Actual[I]);
  }
}

TEST(ParallelSweepTest, RunParallelIsRepeatable) {
  SweepEngine Engine = SweepEngine::forScaledTable1(0.03);
  Engine.setNumThreads(8);
  const std::vector<SweepJob> Jobs = makeSweepGrid(
      {GranularitySpec::units(4)}, {4.0}, SimConfig());
  const auto A = Engine.runParallel(Jobs);
  const auto B = Engine.runParallel(Jobs);
  ASSERT_EQ(A.size(), 1u);
  ASSERT_EQ(B.size(), 1u);
  expectIdentical(A[0], B[0]);
}

TEST(ParallelSweepTest, MakeSweepGridShape) {
  const auto Jobs = makeSweepGrid(
      {GranularitySpec::flush(), GranularitySpec::fine()}, {2.0, 4.0, 8.0},
      SimConfig());
  ASSERT_EQ(Jobs.size(), 6u);
  EXPECT_EQ(Jobs.front().Config.PressureFactor, 2.0);
  EXPECT_EQ(Jobs.back().Config.PressureFactor, 8.0);
  EXPECT_EQ(Jobs.front().Spec.label(), "FLUSH");
  EXPECT_EQ(Jobs.back().Spec.label(), "FIFO");
}
