//===- tests/concurrent/MultiTenantTest.cpp - Shared-cache tenancy tests --===//

#include "concurrent/MultiTenantSimulator.h"

#include "trace/TraceGenerator.h"
#include "trace/WorkloadModel.h"

#include "gtest/gtest.h"

using namespace ccsim;

namespace {

/// Small three-tenant trace set shared by the tests (generation is the
/// expensive part).
const std::vector<Trace> &tenantTraces() {
  static const std::vector<Trace> Traces = []() {
    std::vector<Trace> T;
    for (const char *Name : {"gzip", "vpr", "crafty"})
      T.push_back(TraceGenerator::generateBenchmark(
          scaledWorkload(*findWorkload(Name), 0.05), 42));
    return T;
  }();
  return Traces;
}

MultiTenantConfig baseConfig() {
  MultiTenantConfig Config;
  Config.Granularity = GranularitySpec::units(8);
  Config.PressureFactor = 2.0;
  return Config;
}

void expectTenantSumsMatchGlobal(const MultiTenantResult &R) {
  uint64_t Accesses = 0, Hits = 0, Misses = 0, Cold = 0, Capacity = 0;
  uint64_t Invocations = 0, Blocks = 0, Bytes = 0, UnlinkOps = 0, Links = 0;
  double MissOv = 0.0, EvictOv = 0.0, UnlinkOv = 0.0;
  for (const TenantResult &T : R.Tenants) {
    Accesses += T.Accesses;
    Hits += T.Hits;
    Misses += T.Misses;
    Cold += T.ColdMisses;
    Capacity += T.CapacityMisses;
    Invocations += T.EvictionInvocationsTriggered;
    Blocks += T.BlocksEvicted;
    Bytes += T.BytesEvicted;
    UnlinkOps += T.UnlinkOperations;
    Links += T.UnlinkedLinks;
    MissOv += T.MissOverhead;
    EvictOv += T.EvictionOverhead;
    UnlinkOv += T.UnlinkOverhead;
  }
  EXPECT_EQ(Accesses, R.Global.Accesses);
  EXPECT_EQ(Hits, R.Global.Hits);
  EXPECT_EQ(Misses, R.Global.Misses);
  EXPECT_EQ(Cold, R.Global.ColdMisses);
  EXPECT_EQ(Capacity, R.Global.CapacityMisses);
  EXPECT_EQ(Invocations, R.Global.EvictionInvocations);
  EXPECT_EQ(Blocks, R.Global.EvictedBlocks);
  EXPECT_EQ(Bytes, R.Global.EvictedBytes);
  EXPECT_EQ(UnlinkOps, R.Global.UnlinkOperations);
  EXPECT_EQ(Links, R.Global.UnlinkedLinks);
  // Overheads are sums of the same terms in a different order; allow
  // floating-point reassociation slack only.
  EXPECT_NEAR(MissOv, R.Global.MissOverhead, 1e-6 * (1.0 + MissOv));
  EXPECT_NEAR(EvictOv, R.Global.EvictionOverhead, 1e-6 * (1.0 + EvictOv));
  EXPECT_NEAR(UnlinkOv, R.Global.UnlinkOverhead, 1e-6 * (1.0 + UnlinkOv));

  // The cross matrix accounts for every evicted block.
  uint64_t CrossTotal = 0;
  for (uint64_t C : R.CrossEvictedBlocks)
    CrossTotal += C;
  EXPECT_EQ(CrossTotal, R.Global.EvictedBlocks);
}

} // namespace

TEST(MultiTenantTest, SharedModeSumsToGlobalStats) {
  MultiTenantConfig Config = baseConfig();
  Config.Mode = PartitionMode::Shared;
  MultiTenantSimulator Sim(tenantTraces(), Config);
  const MultiTenantResult R = Sim.run();

  ASSERT_EQ(R.Tenants.size(), 3u);
  EXPECT_EQ(R.ModeLabel, "shared");
  for (const TenantResult &T : R.Tenants) {
    EXPECT_GT(T.Accesses, 0u);
    EXPECT_EQ(T.Hits + T.Misses, T.Accesses);
    EXPECT_EQ(T.ColdMisses + T.CapacityMisses, T.Misses);
  }
  expectTenantSumsMatchGlobal(R);

  // Every access of every trace was replayed.
  uint64_t Expected = 0;
  for (const Trace &T : tenantTraces())
    Expected += T.numAccesses();
  EXPECT_EQ(R.Global.Accesses, Expected);
}

TEST(MultiTenantTest, PartitionedModesSumToGlobalStats) {
  for (PartitionMode Mode :
       {PartitionMode::StaticPartition, PartitionMode::UnitQuota}) {
    MultiTenantConfig Config = baseConfig();
    Config.Mode = Mode;
    MultiTenantSimulator Sim(tenantTraces(), Config);
    expectTenantSumsMatchGlobal(Sim.run());
  }
}

TEST(MultiTenantTest, SharedModeShowsCrossTenantEvictions) {
  // Under real pressure a fully shared FIFO cannot protect tenants from
  // each other: some block must eventually be evicted by a foreign miss.
  MultiTenantConfig Config = baseConfig();
  Config.Mode = PartitionMode::Shared;
  Config.PressureFactor = 4.0;
  MultiTenantSimulator Sim(tenantTraces(), Config);
  const MultiTenantResult R = Sim.run();
  uint64_t LostToOthers = 0;
  for (size_t T = 0; T < R.Tenants.size(); ++T) {
    EXPECT_EQ(R.Tenants[T].BlocksLostToOthers, R.blocksLostToOthers(T));
    LostToOthers += R.Tenants[T].BlocksLostToOthers;
  }
  EXPECT_GT(LostToOthers, 0u);
}

TEST(MultiTenantTest, StaticPartitioningIsolatesTenants) {
  // Thrash the cache hard: even then, a tenant's blocks may only be
  // evicted by its own misses under static partitioning.
  MultiTenantConfig Config = baseConfig();
  Config.Mode = PartitionMode::StaticPartition;
  Config.PressureFactor = 8.0;
  MultiTenantSimulator Sim(tenantTraces(), Config);
  const MultiTenantResult R = Sim.run();

  const size_t K = R.Tenants.size();
  uint64_t Evictions = 0;
  for (size_t E = 0; E < K; ++E)
    for (size_t V = 0; V < K; ++V) {
      if (E != V) {
        EXPECT_EQ(R.crossEvictions(E, V), 0u)
            << R.Tenants[E].Name << " evicted " << R.Tenants[V].Name;
      }
      Evictions += R.crossEvictions(E, V);
    }
  EXPECT_GT(Evictions, 0u) << "test must actually exercise eviction";
  for (const TenantResult &T : R.Tenants)
    EXPECT_EQ(T.BlocksLostToOthers, 0u);
}

TEST(MultiTenantTest, UnitQuotaIsolatesAndUsesWholeUnits) {
  MultiTenantConfig Config = baseConfig();
  Config.Mode = PartitionMode::UnitQuota;
  Config.PressureFactor = 8.0;
  MultiTenantSimulator Sim(tenantTraces(), Config);

  // Quotas are whole units of the shared cache.
  const uint64_t UnitBytes =
      std::max<uint64_t>(1, Sim.totalCapacityBytes() / 8);
  for (size_t T = 0; T < tenantTraces().size(); ++T)
    EXPECT_EQ(Sim.tenantCapacityBytes(T) % UnitBytes, 0u);

  const MultiTenantResult R = Sim.run();
  for (const TenantResult &T : R.Tenants)
    EXPECT_EQ(T.BlocksLostToOthers, 0u);
}

TEST(MultiTenantTest, RunsAreDeterministic) {
  for (InterleaveKind Schedule :
       {InterleaveKind::RoundRobin, InterleaveKind::Weighted}) {
    MultiTenantConfig Config = baseConfig();
    Config.Mode = PartitionMode::Shared;
    Config.Schedule = Schedule;
    Config.Tenants = {{1.0}, {2.5}, {0.5}};
    MultiTenantSimulator A(tenantTraces(), Config);
    MultiTenantSimulator B(tenantTraces(), Config);
    const MultiTenantResult RA = A.run();
    const MultiTenantResult RB = B.run();
    ASSERT_EQ(RA.Tenants.size(), RB.Tenants.size());
    for (size_t T = 0; T < RA.Tenants.size(); ++T) {
      EXPECT_EQ(RA.Tenants[T].Accesses, RB.Tenants[T].Accesses);
      EXPECT_EQ(RA.Tenants[T].Misses, RB.Tenants[T].Misses);
      EXPECT_EQ(RA.Tenants[T].BlocksEvicted, RB.Tenants[T].BlocksEvicted);
      EXPECT_EQ(RA.Tenants[T].MissOverhead, RB.Tenants[T].MissOverhead);
    }
    EXPECT_EQ(RA.CrossEvictedBlocks, RB.CrossEvictedBlocks);
  }
}

TEST(MultiTenantTest, WeightedScheduleConsumesEveryStream) {
  MultiTenantConfig Config = baseConfig();
  Config.Mode = PartitionMode::StaticPartition;
  Config.Schedule = InterleaveKind::Weighted;
  Config.Tenants = {{4.0}, {1.0}, {1.0}};
  MultiTenantSimulator Sim(tenantTraces(), Config);
  const MultiTenantResult R = Sim.run();
  for (size_t T = 0; T < R.Tenants.size(); ++T)
    EXPECT_EQ(R.Tenants[T].Accesses, tenantTraces()[T].numAccesses());
}

TEST(MultiTenantTest, FullyAuditedRunMatchesUnaudited) {
  // Arming the deep auditor on every tenant manager (which aborts on the
  // first violation) both certifies the shared-cache structures after
  // every mutation and must not perturb the simulation itself.
  MultiTenantConfig Plain = baseConfig();
  Plain.Mode = PartitionMode::Shared;
  Plain.Audit = AuditLevel::Off;
  MultiTenantConfig Audited = Plain;
  Audited.Audit = AuditLevel::Full;

  MultiTenantSimulator A(tenantTraces(), Plain);
  MultiTenantSimulator B(tenantTraces(), Audited);
  const MultiTenantResult RA = A.run();
  const MultiTenantResult RB = B.run();

  EXPECT_EQ(RA.Global.Accesses, RB.Global.Accesses);
  EXPECT_EQ(RA.Global.Misses, RB.Global.Misses);
  EXPECT_EQ(RA.Global.EvictedBlocks, RB.Global.EvictedBlocks);
  EXPECT_EQ(RA.Global.LinksCreated, RB.Global.LinksCreated);
  ASSERT_EQ(RA.Tenants.size(), RB.Tenants.size());
  for (size_t T = 0; T < RA.Tenants.size(); ++T) {
    EXPECT_EQ(RA.Tenants[T].Misses, RB.Tenants[T].Misses);
    EXPECT_EQ(RA.Tenants[T].BlocksEvicted, RB.Tenants[T].BlocksEvicted);
  }
  EXPECT_GT(RB.Global.EvictedBlocks, 0u);
  expectTenantSumsMatchGlobal(RB);
}
