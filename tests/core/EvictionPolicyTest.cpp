//===- tests/core/EvictionPolicyTest.cpp - Policy tests --------------------===//

#include "core/EvictionPolicy.h"

#include "gtest/gtest.h"

using namespace ccsim;

TEST(UnitFifoPolicyTest, FlushIsOneUnit) {
  UnitFifoPolicy P(1);
  EXPECT_EQ(P.name(), "FLUSH");
  EXPECT_EQ(P.quantumBytes(1000), 1000u);
  EXPECT_FALSE(P.usesBackPointerTable(1000));
}

TEST(UnitFifoPolicyTest, MediumGrainQuanta) {
  UnitFifoPolicy P(8);
  EXPECT_EQ(P.name(), "8-unit");
  EXPECT_EQ(P.quantumBytes(8000), 1000u);
  EXPECT_TRUE(P.usesBackPointerTable(8000));
}

TEST(UnitFifoPolicyTest, QuantumNeverZero) {
  UnitFifoPolicy P(256);
  EXPECT_EQ(P.quantumBytes(100), 1u); // 100/256 rounds to 0 -> clamped.
}

TEST(FineFifoPolicyTest, ByteQuantum) {
  FineFifoPolicy P;
  EXPECT_EQ(P.name(), "FIFO");
  EXPECT_EQ(P.quantumBytes(1 << 20), 1u);
  EXPECT_TRUE(P.usesBackPointerTable(1 << 20));
}

TEST(GranularitySpecTest, Labels) {
  EXPECT_EQ(GranularitySpec::flush().label(), "FLUSH");
  EXPECT_EQ(GranularitySpec::units(64).label(), "64-unit");
  EXPECT_EQ(GranularitySpec::fine().label(), "FIFO");
}

TEST(GranularitySpecTest, FactoryProducesMatchingPolicies) {
  auto Flush = makePolicy(GranularitySpec::flush());
  auto Units = makePolicy(GranularitySpec::units(4));
  auto Fine = makePolicy(GranularitySpec::fine());
  EXPECT_EQ(Flush->quantumBytes(400), 400u);
  EXPECT_EQ(Units->quantumBytes(400), 100u);
  EXPECT_EQ(Fine->quantumBytes(400), 1u);
}

TEST(GranularitySpecTest, StandardSweepShape) {
  const auto Sweep = standardGranularitySweep();
  ASSERT_EQ(Sweep.size(), 10u); // FLUSH, 2..256 (8 points), FIFO.
  EXPECT_EQ(Sweep.front().label(), "FLUSH");
  EXPECT_EQ(Sweep[1].label(), "2-unit");
  EXPECT_EQ(Sweep[8].label(), "256-unit");
  EXPECT_EQ(Sweep.back().label(), "FIFO");
  // Quanta are strictly decreasing along the sweep.
  uint64_t Prev = ~0ULL;
  for (const auto &Spec : Sweep) {
    const uint64_t Q = makePolicy(Spec)->quantumBytes(1 << 20);
    EXPECT_LT(Q, Prev);
    Prev = Q;
  }
}

TEST(AdaptivePolicyTest, StartsMidLadder) {
  AdaptiveGranularityPolicy P;
  EXPECT_EQ(P.name(), "Adaptive");
  EXPECT_EQ(P.currentUnitCount(), 128u); // Ladder {8,32,128,0}, mid = 2.
}

TEST(AdaptivePolicyTest, HighMissRateCoarsens) {
  AdaptiveGranularityPolicy::Options Opts;
  Opts.IntervalAccesses = 100;
  AdaptiveGranularityPolicy P(Opts);
  // Feed a 50% miss stream for many intervals: should walk to rung 0.
  for (int I = 0; I < 1000; ++I)
    P.noteAccess(I % 2 == 0);
  EXPECT_EQ(P.currentUnitCount(), 8u);
  EXPECT_GT(P.smoothedMissRate(), 0.3);
}

TEST(AdaptivePolicyTest, LowMissRateRefines) {
  AdaptiveGranularityPolicy::Options Opts;
  Opts.IntervalAccesses = 100;
  AdaptiveGranularityPolicy P(Opts);
  for (int I = 0; I < 2000; ++I)
    P.noteAccess(true); // All hits.
  EXPECT_EQ(P.currentUnitCount(), 0u); // Finest rung.
  EXPECT_EQ(P.quantumBytes(1 << 20), 1u);
}

TEST(AdaptivePolicyTest, MovesOneRungPerInterval) {
  AdaptiveGranularityPolicy::Options Opts;
  Opts.IntervalAccesses = 10;
  AdaptiveGranularityPolicy P(Opts);
  const unsigned Before = P.currentUnitCount();
  for (int I = 0; I < 10; ++I)
    P.noteAccess(false); // One interval of pure misses.
  // One reevaluation: at most one rung of movement.
  const unsigned After = P.currentUnitCount();
  EXPECT_TRUE(After == 32u || After == Before);
}

TEST(AdaptivePolicyTest, AlwaysNeedsBackPointers) {
  AdaptiveGranularityPolicy P;
  EXPECT_TRUE(P.usesBackPointerTable(1 << 20));
}

TEST(PreemptivePolicyTest, FlushQuantumAndNoTable) {
  PreemptiveFlushPolicy P;
  EXPECT_EQ(P.name(), "Preemptive");
  EXPECT_EQ(P.quantumBytes(5000), 5000u);
  EXPECT_FALSE(P.usesBackPointerTable(5000));
}

TEST(PreemptivePolicyTest, TriggersOnMissSpike) {
  PreemptiveFlushPolicy::Options Opts;
  Opts.WindowAccesses = 100;
  Opts.SpikeMissRate = 0.3;
  Opts.MinAccessesBetweenFlushes = 0;
  PreemptiveFlushPolicy P(Opts);
  // Calm phase: no trigger.
  for (int I = 0; I < 100; ++I)
    P.noteAccess(true);
  EXPECT_FALSE(P.shouldFlushNow());
  // Spike: 50% misses in one window.
  for (int I = 0; I < 100; ++I)
    P.noteAccess(I % 2 == 0);
  EXPECT_TRUE(P.shouldFlushNow());
  // Trigger is consumed.
  EXPECT_FALSE(P.shouldFlushNow());
}

TEST(PreemptivePolicyTest, RespectsMinimumDistanceBetweenFlushes) {
  PreemptiveFlushPolicy::Options Opts;
  Opts.WindowAccesses = 10;
  Opts.SpikeMissRate = 0.3;
  Opts.MinAccessesBetweenFlushes = 1000;
  PreemptiveFlushPolicy P(Opts);
  P.noteFlush();
  for (int I = 0; I < 20; ++I)
    P.noteAccess(false); // Two all-miss windows, too soon after a flush.
  EXPECT_FALSE(P.shouldFlushNow());
}

TEST(PreemptivePolicyTest, DefaultBasePolicyNeverFlushesSpontaneously) {
  UnitFifoPolicy P(4);
  P.noteAccess(false);
  EXPECT_FALSE(P.shouldFlushNow());
}
