//===- tests/core/CodeCacheTest.cpp - Placement engine tests ---------------===//

#include "core/CodeCache.h"

#include "gtest/gtest.h"

using namespace ccsim;

namespace {

/// Inserts \p Id of \p Size at \p Quantum, returning the victims.
std::vector<CodeCache::Resident> insert(CodeCache &C, SuperblockId Id,
                                        uint32_t Size, uint64_t Quantum) {
  std::vector<CodeCache::Resident> Evicted;
  const CodeCache::PrepareOutcome Prep =
      C.prepareInsert(Size, Quantum, Evicted);
  EXPECT_TRUE(Prep.CanInsert);
  C.commitInsert(Id, Size);
  return Evicted;
}

std::vector<SuperblockId> residentIds(const CodeCache &C) {
  std::vector<SuperblockId> Ids;
  C.forEachResident(
      [&](const CodeCache::Resident &R) { Ids.push_back(R.Id); });
  return Ids;
}

} // namespace

TEST(CodeCacheTest, EmptyCacheState) {
  CodeCache C(1000);
  EXPECT_EQ(C.capacity(), 1000u);
  EXPECT_EQ(C.occupiedBytes(), 0u);
  EXPECT_EQ(C.residentCount(), 0u);
  EXPECT_TRUE(C.empty());
  EXPECT_FALSE(C.contains(0));
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, SequentialPlacement) {
  CodeCache C(1000);
  insert(C, 0, 100, 1);
  insert(C, 1, 200, 1);
  EXPECT_EQ(C.startOf(0), 0u);
  EXPECT_EQ(C.startOf(1), 100u);
  EXPECT_EQ(C.occupiedBytes(), 300u);
  EXPECT_EQ(C.sizeOf(1), 200u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, FineQuantumEvictsMinimum) {
  CodeCache C(300);
  insert(C, 0, 100, 1);
  insert(C, 1, 100, 1);
  insert(C, 2, 100, 1);
  // Cache full; a fourth 100-byte block should evict exactly block 0.
  const auto Evicted = insert(C, 3, 100, 1);
  ASSERT_EQ(Evicted.size(), 1u);
  EXPECT_EQ(Evicted[0].Id, 0u);
  EXPECT_TRUE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, FifoOrderPreserved) {
  CodeCache C(300);
  insert(C, 5, 100, 1);
  insert(C, 9, 100, 1);
  insert(C, 2, 100, 1);
  EXPECT_EQ(residentIds(C), (std::vector<SuperblockId>{5, 9, 2}));
  insert(C, 7, 100, 1); // Evicts 5.
  EXPECT_EQ(residentIds(C), (std::vector<SuperblockId>{9, 2, 7}));
}

TEST(CodeCacheTest, FlushQuantumEvictsEverything) {
  CodeCache C(300);
  insert(C, 0, 100, 300);
  insert(C, 1, 100, 300);
  insert(C, 2, 100, 300);
  const auto Evicted = insert(C, 3, 50, 300);
  EXPECT_EQ(Evicted.size(), 3u); // Whole-cache flush.
  EXPECT_EQ(C.residentCount(), 1u);
  EXPECT_TRUE(C.contains(3));
  EXPECT_EQ(C.startOf(3), 0u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, TwoUnitQuantumFlushesHalf) {
  CodeCache C(400);
  // Unit 0 = [0, 200), unit 1 = [200, 400).
  insert(C, 0, 100, 200);
  insert(C, 1, 100, 200);
  insert(C, 2, 100, 200);
  insert(C, 3, 100, 200);
  // Cache full. Inserting evicts unit 0 entirely (blocks 0 and 1).
  const auto Evicted = insert(C, 4, 100, 200);
  ASSERT_EQ(Evicted.size(), 2u);
  EXPECT_EQ(Evicted[0].Id, 0u);
  EXPECT_EQ(Evicted[1].Id, 1u);
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
  EXPECT_EQ(C.startOf(4), 0u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, UnitFlushLeavesRoomForSeveralInserts) {
  CodeCache C(400);
  for (SuperblockId Id = 0; Id < 4; ++Id)
    insert(C, Id, 100, 200);
  // One unit flush (2 blocks out) leaves room for two 100-byte inserts:
  // the second one must not evict.
  auto Evicted = insert(C, 4, 100, 200);
  EXPECT_EQ(Evicted.size(), 2u);
  Evicted = insert(C, 5, 100, 200);
  EXPECT_TRUE(Evicted.empty());
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, StraddlingBlockEvictedWithItsUnit) {
  CodeCache C(100);
  // Quantum 50: units [0,50) and [50,100).
  insert(C, 0, 30, 50); // [0, 30)  - unit 0.
  insert(C, 1, 30, 50); // [30, 60) - straddles into unit 1.
  insert(C, 2, 30, 50); // [60, 90) - unit 1.
  // Insert 30 more: tail waste 10, wrap; flushing unit 0 must take the
  // straddler (block 1) with it.
  const auto Evicted = insert(C, 3, 30, 50);
  ASSERT_EQ(Evicted.size(), 2u);
  EXPECT_EQ(Evicted[0].Id, 0u);
  EXPECT_EQ(Evicted[1].Id, 1u);
  EXPECT_TRUE(C.contains(2));
  EXPECT_EQ(C.startOf(3), 0u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, WrapWasteReported) {
  CodeCache C(100);
  std::vector<CodeCache::Resident> Evicted;
  auto P1 = C.prepareInsert(60, 1, Evicted);
  EXPECT_EQ(P1.WastedBytes, 0u);
  C.commitInsert(0, 60);
  // 40 bytes free at the tail; a 50-byte block wraps, wasting them.
  auto P2 = C.prepareInsert(50, 1, Evicted);
  EXPECT_EQ(P2.WastedBytes, 40u);
  C.commitInsert(1, 50);
  EXPECT_EQ(C.startOf(1), 0u);
  EXPECT_FALSE(C.contains(0)); // Evicted to make room at offset 0.
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, ExactFitNoWaste) {
  CodeCache C(100);
  std::vector<CodeCache::Resident> Evicted;
  auto P = C.prepareInsert(100, 1, Evicted);
  EXPECT_TRUE(P.CanInsert);
  EXPECT_EQ(P.WastedBytes, 0u);
  C.commitInsert(0, 100);
  EXPECT_EQ(C.occupiedBytes(), 100u);
  // Next insert wraps cleanly to offset 0 after evicting block 0.
  auto P2 = C.prepareInsert(10, 1, Evicted);
  EXPECT_TRUE(P2.CanInsert);
  EXPECT_EQ(P2.WastedBytes, 0u);
  EXPECT_EQ(Evicted.size(), 1u);
  C.commitInsert(1, 10);
  EXPECT_EQ(C.startOf(1), 0u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, TooBigBlockRejected) {
  CodeCache C(100);
  std::vector<CodeCache::Resident> Evicted;
  const auto P = C.prepareInsert(101, 1, Evicted);
  EXPECT_FALSE(P.CanInsert);
  EXPECT_TRUE(Evicted.empty());
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, CapacitySizedBlockAccepted) {
  CodeCache C(100);
  std::vector<CodeCache::Resident> Evicted;
  const auto P = C.prepareInsert(100, 1, Evicted);
  EXPECT_TRUE(P.CanInsert);
  C.commitInsert(0, 100);
  EXPECT_TRUE(C.contains(0));
}

TEST(CodeCacheTest, BlockLargerThanUnitSpansUnits) {
  CodeCache C(100);
  // Quantum 25, but a 60-byte block must still be placeable.
  insert(C, 0, 60, 25);
  insert(C, 1, 30, 25);
  // Inserting another 60 forces flushing multiple units.
  const auto Evicted = insert(C, 2, 60, 25);
  EXPECT_GE(Evicted.size(), 1u);
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, UnitsFlushedCounted) {
  CodeCache C(400);
  for (SuperblockId Id = 0; Id < 4; ++Id)
    insert(C, Id, 100, 100); // 4 units, one block each.
  std::vector<CodeCache::Resident> Evicted;
  const auto P = C.prepareInsert(200, 100, Evicted);
  EXPECT_TRUE(P.CanInsert);
  EXPECT_EQ(Evicted.size(), 2u);
  EXPECT_EQ(P.UnitsFlushed, 2u);
  C.commitInsert(9, 200);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, FlushAllEmptiesAndResets) {
  CodeCache C(300);
  insert(C, 0, 120, 1);
  insert(C, 1, 120, 1);
  std::vector<CodeCache::Resident> Evicted;
  C.flushAll(Evicted);
  EXPECT_EQ(Evicted.size(), 2u);
  EXPECT_EQ(Evicted[0].Id, 0u);
  EXPECT_TRUE(C.empty());
  EXPECT_EQ(C.occupiedBytes(), 0u);
  // Placement restarts at 0.
  insert(C, 2, 10, 1);
  EXPECT_EQ(C.startOf(2), 0u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, ReinsertionAfterEviction) {
  CodeCache C(200);
  insert(C, 0, 100, 1);
  insert(C, 1, 100, 1);
  insert(C, 2, 100, 1); // Evicts 0.
  EXPECT_FALSE(C.contains(0));
  insert(C, 0, 100, 1); // Reinsert 0; evicts 1.
  EXPECT_TRUE(C.contains(0));
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.checkInvariants());
}

TEST(CodeCacheTest, UnitOfStatic) {
  EXPECT_EQ(CodeCache::unitOf(0, 100), 0u);
  EXPECT_EQ(CodeCache::unitOf(99, 100), 0u);
  EXPECT_EQ(CodeCache::unitOf(100, 100), 1u);
  EXPECT_EQ(CodeCache::unitOf(12345, 1), 12345u);
}

TEST(CodeCacheTest, FrontIsOldest) {
  CodeCache C(300);
  insert(C, 3, 100, 1);
  insert(C, 8, 100, 1);
  EXPECT_EQ(C.front().Id, 3u);
}
