//===- tests/core/CacheEngineTest.cpp - Payload-callback engine tests -----===//
//
// The engine-specific surface on top of what CacheManagerTest already
// covers (CacheManager is an alias of CacheEngine): the install() front
// door used by execution-driven owners, and the OnEvictPayload /
// OnUnlinkPayload teardown hooks with their ordering contract -- evict
// payload first (before the engine touches counters or links), unlink
// payload after the link graph repaired the batch.
//
//===----------------------------------------------------------------------===//

#include "core/CacheEngine.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace ccsim;

namespace {

SuperblockRecord rec(SuperblockId Id, uint32_t Size,
                     const std::vector<SuperblockId> &Edges = {}) {
  SuperblockRecord R;
  R.Id = Id;
  R.SizeBytes = Size;
  R.OutEdges = std::span<const SuperblockId>(Edges);
  return R;
}

/// Journal of every payload callback, in firing order.
struct PayloadLog {
  struct Batch {
    std::string Kind; ///< "evict" or "unlink".
    std::vector<SuperblockId> Victims;
    std::vector<uint32_t> Dangling; ///< Unlink batches only.
  };
  std::vector<Batch> Batches;

  void wire(CacheEngineConfig &Config) {
    Config.OnEvictPayload =
        [this](std::span<const CodeCache::Resident> Victims) {
          Batch B;
          B.Kind = "evict";
          for (const CodeCache::Resident &V : Victims)
            B.Victims.push_back(V.Id);
          Batches.push_back(std::move(B));
        };
    Config.OnUnlinkPayload =
        [this](std::span<const CodeCache::Resident> Victims,
               std::span<const uint32_t> Dangling) {
          Batch B;
          B.Kind = "unlink";
          for (const CodeCache::Resident &V : Victims)
            B.Victims.push_back(V.Id);
          B.Dangling.assign(Dangling.begin(), Dangling.end());
          Batches.push_back(std::move(B));
        };
  }
};

CacheEngine makeEngine(CacheEngineConfig Config, GranularitySpec Spec) {
  return CacheEngine(Config, makePolicy(Spec));
}

} // namespace

TEST(CacheEngineTest, OwningRecordSurvivesBindingToALocal) {
  // rec(Id, Size, {braced edges}) must be consumed inside the full
  // expression -- the braced temporary dies at the semicolon, so binding
  // the plain record to a local dangles its edge span. The owning record
  // is the sanctioned way to hold one across statements; this pins that
  // the edges stay alive and intact through copies and moves.
  OwningSuperblockRecord Held(0, 100, {1, 2, 3});
  OwningSuperblockRecord Copy = Held;
  OwningSuperblockRecord Moved = std::move(Copy);

  ASSERT_EQ(Moved.record().OutEdges.size(), 3u);
  EXPECT_EQ(Moved.record().OutEdges[1], 2u);
  // The span must point into the owning record's own storage, not the
  // source it was copied or moved from.
  EXPECT_EQ(Held.record().OutEdges.size(), 3u);
  EXPECT_NE(Held.record().OutEdges.data(), Moved.record().OutEdges.data());

  CacheEngineConfig Config;
  Config.CapacityBytes = 1000;
  CacheEngine E = makeEngine(Config, GranularitySpec::fine());
  EXPECT_TRUE(E.install(rec(1, 100)));
  EXPECT_TRUE(E.install(rec(2, 100)));
  EXPECT_TRUE(E.install(rec(3, 100)));
  // The held record converts implicitly where a SuperblockRecord is
  // expected, edges included: all three out-edges chain on install.
  EXPECT_TRUE(E.install(Held));
  EXPECT_EQ(E.stats().LinksCreated, 3u);
}

TEST(CacheEngineTest, InstallIsTheMissHalfOfAccess) {
  CacheEngineConfig Config;
  Config.CapacityBytes = 1000;
  CacheEngine E = makeEngine(Config, GranularitySpec::fine());

  EXPECT_TRUE(E.install(rec(0, 100)));
  EXPECT_TRUE(E.cache().contains(0));
  const CacheStats &S = E.stats();
  EXPECT_EQ(S.Accesses, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.ColdMisses, 1u);
  EXPECT_EQ(S.Inserts, 1u);
  EXPECT_GT(S.MissOverhead, 0.0); // Eq. 3 regeneration charged.

  // The same block through access() is now a hit; the two front doors
  // share one accounting stream.
  EXPECT_EQ(E.access(rec(0, 100)), AccessKind::Hit);
  EXPECT_EQ(E.stats().Accesses, 2u);
  EXPECT_EQ(E.stats().Hits, 1u);
}

TEST(CacheEngineTest, InstallTooBigIsRejectedButCharged) {
  CacheEngineConfig Config;
  Config.CapacityBytes = 100;
  CacheEngine E = makeEngine(Config, GranularitySpec::fine());
  EXPECT_FALSE(E.install(rec(0, 200)));
  EXPECT_FALSE(E.cache().contains(0));
  EXPECT_EQ(E.stats().TooBigMisses, 1u);
  EXPECT_GT(E.stats().MissOverhead, 0.0);
}

TEST(CacheEngineTest, EvictPayloadFiresBeforeUnlinkPayload) {
  PayloadLog Log;
  CacheEngineConfig Config;
  Config.CapacityBytes = 300;
  Log.wire(Config);
  CacheEngine E = makeEngine(Config, GranularitySpec::fine());

  E.install(rec(0, 100));
  E.install(rec(1, 100, {0}));
  E.install(rec(2, 100, {0}));
  EXPECT_TRUE(Log.Batches.empty()); // No evictions yet, no callbacks.

  // Evicts block 0, which holds two dangling incoming links.
  E.install(rec(3, 100));
  ASSERT_EQ(Log.Batches.size(), 2u);
  EXPECT_EQ(Log.Batches[0].Kind, "evict");
  EXPECT_EQ(Log.Batches[1].Kind, "unlink");
  EXPECT_EQ(Log.Batches[0].Victims, std::vector<SuperblockId>{0});
  EXPECT_EQ(Log.Batches[1].Victims, std::vector<SuperblockId>{0});
  EXPECT_EQ(Log.Batches[1].Dangling, std::vector<uint32_t>{2});
  EXPECT_EQ(E.stats().UnlinkedLinks, 2u);
}

TEST(CacheEngineTest, FlushEvictionReportsZeroDangling) {
  PayloadLog Log;
  CacheEngineConfig Config;
  Config.CapacityBytes = 300;
  Log.wire(Config);
  CacheEngine E = makeEngine(Config, GranularitySpec::flush());

  E.install(rec(0, 100));
  E.install(rec(1, 100, {0}));
  E.install(rec(2, 100, {0}));
  E.install(rec(3, 100)); // Full flush: everything goes at once.

  ASSERT_EQ(Log.Batches.size(), 2u);
  EXPECT_EQ(Log.Batches[0].Kind, "evict");
  EXPECT_EQ(Log.Batches[0].Victims,
            (std::vector<SuperblockId>{0, 1, 2}));
  // FLUSH leaves no survivors, so no incoming link dangles and Eq. 4 is
  // never charged -- the unlink payload still reports the (all-zero)
  // per-victim counts so owners can assert the same thing.
  EXPECT_EQ(Log.Batches[1].Dangling, (std::vector<uint32_t>{0, 0, 0}));
  EXPECT_EQ(E.stats().UnlinkedLinks, 0u);
  EXPECT_DOUBLE_EQ(E.stats().UnlinkOverhead, 0.0);
}

TEST(CacheEngineTest, ChainingOffSkipsUnlinkPayload) {
  PayloadLog Log;
  CacheEngineConfig Config;
  Config.CapacityBytes = 300;
  Config.EnableChaining = false;
  Log.wire(Config);
  CacheEngine E = makeEngine(Config, GranularitySpec::fine());

  E.install(rec(0, 100, {1}));
  E.install(rec(1, 100, {0}));
  E.install(rec(2, 100));
  E.install(rec(3, 100)); // Evicts 0.
  ASSERT_EQ(Log.Batches.size(), 1u);
  EXPECT_EQ(Log.Batches[0].Kind, "evict");
}

TEST(CacheEngineTest, AccessPathFiresTheSamePayloads) {
  PayloadLog Log;
  CacheEngineConfig Config;
  Config.CapacityBytes = 200;
  Log.wire(Config);
  CacheEngine E = makeEngine(Config, GranularitySpec::fine());

  EXPECT_EQ(E.access(rec(0, 100)), AccessKind::Miss);
  EXPECT_EQ(E.access(rec(1, 100)), AccessKind::Miss);
  EXPECT_EQ(E.access(rec(2, 100)), AccessKind::Miss); // Evicts 0.
  ASSERT_EQ(Log.Batches.size(), 2u);
  EXPECT_EQ(Log.Batches[0].Victims, std::vector<SuperblockId>{0});
}

TEST(CacheEngineTest, MixedFrontDoorsKeepConservationIdentities) {
  PayloadLog Log;
  CacheEngineConfig Config;
  Config.CapacityBytes = 500;
  Log.wire(Config);
  CacheEngine E = makeEngine(Config, GranularitySpec::units(2));

  for (SuperblockId Id = 0; Id < 40; ++Id)
    E.access(rec(Id % 12, 90, {(Id + 1) % 12}));
  for (SuperblockId Id = 100; Id < 110; ++Id)
    EXPECT_TRUE(E.install(rec(Id, 90)));

  const CacheStats &S = E.stats();
  EXPECT_EQ(S.Hits + S.Misses, S.Accesses);
  EXPECT_EQ(S.ColdMisses + S.CapacityMisses, S.Misses);
  EXPECT_EQ(S.Inserts, S.EvictedBlocks + E.cache().residentCount());
  EXPECT_EQ(S.InsertedBytes, S.EvictedBytes + E.cache().occupiedBytes());
  EXPECT_TRUE(E.checkInvariants());

  // Every eviction batch produced exactly one evict payload (and one
  // unlink payload, since chaining is on).
  size_t EvictBatches = 0;
  for (const PayloadLog::Batch &B : Log.Batches)
    if (B.Kind == "evict")
      ++EvictBatches;
  EXPECT_EQ(EvictBatches, S.EvictionInvocations);
  EXPECT_EQ(Log.Batches.size(), 2 * EvictBatches);
}
