//===- tests/core/CacheManagerTest.cpp - Cache manager tests ---------------===//

#include "core/CacheManager.h"

#include "support/Random.h"
#include "gtest/gtest.h"

using namespace ccsim;

namespace {

SuperblockRecord rec(SuperblockId Id, uint32_t Size,
                     const std::vector<SuperblockId> &Edges = {}) {
  SuperblockRecord R;
  R.Id = Id;
  R.SizeBytes = Size;
  R.OutEdges = std::span<const SuperblockId>(Edges);
  return R;
}

CacheManager makeManager(uint64_t Capacity, GranularitySpec Spec,
                         bool Chaining = true) {
  CacheManagerConfig Config;
  Config.CapacityBytes = Capacity;
  Config.EnableChaining = Chaining;
  return CacheManager(Config, makePolicy(Spec));
}

} // namespace

TEST(CacheManagerTest, HitAndMissCounting) {
  CacheManager M = makeManager(1000, GranularitySpec::fine());
  EXPECT_EQ(M.access(rec(0, 100)), AccessKind::Miss);
  EXPECT_EQ(M.access(rec(0, 100)), AccessKind::Hit);
  EXPECT_EQ(M.access(rec(1, 100)), AccessKind::Miss);
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.Accesses, 3u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_DOUBLE_EQ(S.missRate(), 2.0 / 3.0);
}

TEST(CacheManagerTest, ColdVersusCapacityMisses) {
  CacheManager M = makeManager(200, GranularitySpec::fine());
  M.access(rec(0, 100));
  M.access(rec(1, 100));
  M.access(rec(2, 100)); // Evicts 0.
  M.access(rec(0, 100)); // Capacity miss.
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.ColdMisses, 3u);
  EXPECT_EQ(S.CapacityMisses, 1u);
  EXPECT_EQ(S.Misses, 4u);
}

TEST(CacheManagerTest, MissOverheadUsesEquation3) {
  CacheManager M = makeManager(1000, GranularitySpec::fine());
  M.access(rec(0, 230));
  EXPECT_NEAR(M.stats().MissOverhead, 19264.0, 0.01);
  M.access(rec(0, 230)); // Hit: no extra charge.
  EXPECT_NEAR(M.stats().MissOverhead, 19264.0, 0.01);
}

TEST(CacheManagerTest, EvictionOverheadUsesEquation2) {
  CacheManager M = makeManager(200, GranularitySpec::fine());
  M.access(rec(0, 100));
  M.access(rec(1, 100));
  M.access(rec(2, 150)); // One invocation evicting both (250 bytes... 200).
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.EvictionInvocations, 1u);
  EXPECT_EQ(S.EvictedBlocks, 2u);
  EXPECT_EQ(S.EvictedBytes, 200u);
  EXPECT_NEAR(S.EvictionOverhead, 2.77 * 200 + 3055, 0.01);
}

TEST(CacheManagerTest, FlushPolicyChargesNoUnlinking) {
  CacheManager M = makeManager(300, GranularitySpec::flush());
  M.access(rec(0, 100, {1}));
  M.access(rec(1, 100, {0}));
  M.access(rec(2, 100));
  EXPECT_EQ(M.stats().LinksCreated, 2u);
  M.access(rec(3, 100)); // Full flush.
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.EvictionInvocations, 1u);
  EXPECT_EQ(S.EvictedBlocks, 3u);
  EXPECT_DOUBLE_EQ(S.UnlinkOverhead, 0.0);
  EXPECT_EQ(S.UnlinkedLinks, 0u);
  // FLUSH needs no back-pointer table, so no memory is accounted.
  EXPECT_EQ(S.BackPointerBytesPeak, 0u);
}

TEST(CacheManagerTest, FineFifoChargesUnlinking) {
  CacheManager M = makeManager(300, GranularitySpec::fine());
  M.access(rec(0, 100));
  M.access(rec(1, 100, {0}));
  M.access(rec(2, 100, {0}));
  // Block 0 has two incoming links; evicting it must charge Eq. 4 with
  // numLinks = 2.
  M.access(rec(3, 100));
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.UnlinkOperations, 1u);
  EXPECT_EQ(S.UnlinkedLinks, 2u);
  EXPECT_NEAR(S.UnlinkOverhead, 296.5 * 2 + 95.7, 0.01);
}

TEST(CacheManagerTest, BackPointerMemoryTracked) {
  CacheManager M = makeManager(1000, GranularitySpec::units(4));
  M.access(rec(0, 100));
  M.access(rec(1, 100, {0}));
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.BackPointerBytesPeak, 16u);
  EXPECT_GT(S.backPointerBytesAvg(), 0.0);
}

TEST(CacheManagerTest, ChainingDisabledTracksNoLinks) {
  CacheManager M = makeManager(300, GranularitySpec::fine(),
                               /*Chaining=*/false);
  M.access(rec(0, 100, {1}));
  M.access(rec(1, 100, {0}));
  M.access(rec(2, 100));
  M.access(rec(3, 100));
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.LinksCreated, 0u);
  EXPECT_DOUBLE_EQ(S.UnlinkOverhead, 0.0);
  EXPECT_EQ(M.links().numLinks(), 0u);
}

TEST(CacheManagerTest, TooBigBlockIsMissNotCached) {
  CacheManager M = makeManager(100, GranularitySpec::fine());
  EXPECT_EQ(M.access(rec(0, 200)), AccessKind::MissTooBig);
  EXPECT_FALSE(M.cache().contains(0));
  EXPECT_EQ(M.stats().Misses, 1u);
  // Still charged for regeneration.
  EXPECT_GT(M.stats().MissOverhead, 0.0);
}

TEST(CacheManagerTest, TotalOverheadSelectsLinkTerm) {
  CacheManager M = makeManager(300, GranularitySpec::fine());
  M.access(rec(0, 100));
  M.access(rec(1, 100, {0}));
  M.access(rec(2, 100));
  M.access(rec(3, 100)); // Evicts 0 with one dangling link.
  const CacheStats &S = M.stats();
  EXPECT_GT(S.UnlinkOverhead, 0.0);
  EXPECT_DOUBLE_EQ(S.totalOverhead(true),
                   S.totalOverhead(false) + S.UnlinkOverhead);
}

TEST(CacheManagerTest, ManualFlushEntireCache) {
  CacheManager M = makeManager(1000, GranularitySpec::units(4));
  M.access(rec(0, 100));
  M.access(rec(1, 100));
  M.flushEntireCache();
  EXPECT_TRUE(M.cache().empty());
  EXPECT_EQ(M.stats().EvictedBlocks, 2u);
  EXPECT_EQ(M.stats().EvictionInvocations, 1u);
  // Flushing an empty cache is a no-op.
  M.flushEntireCache();
  EXPECT_EQ(M.stats().EvictionInvocations, 1u);
}

TEST(CacheManagerTest, PreemptivePolicyFlushesOnPhaseChange) {
  PreemptiveFlushPolicy::Options Opts;
  Opts.WindowAccesses = 32;
  Opts.SpikeMissRate = 0.5;
  Opts.MinAccessesBetweenFlushes = 0;
  CacheManagerConfig Config;
  Config.CapacityBytes = 1 << 20; // Huge: no capacity evictions.
  CacheManager M(Config, std::make_unique<PreemptiveFlushPolicy>(Opts));
  // Warm phase.
  M.access(rec(0, 100));
  for (int I = 0; I < 200; ++I)
    M.access(rec(0, 100));
  EXPECT_EQ(M.stats().PreemptiveFlushes, 0u);
  // Phase change: a burst of brand-new blocks.
  for (SuperblockId Id = 10; Id < 80; ++Id)
    M.access(rec(Id, 100));
  EXPECT_GE(M.stats().PreemptiveFlushes, 1u);
}

TEST(CacheManagerTest, CurrentQuantumClamped) {
  CacheManager M = makeManager(100, GranularitySpec::units(256));
  EXPECT_EQ(M.currentQuantum(), 1u); // 100/256 -> clamp to 1.
  CacheManager M2 = makeManager(100, GranularitySpec::flush());
  EXPECT_EQ(M2.currentQuantum(), 100u);
}

TEST(CacheManagerTest, StatsMerge) {
  CacheStats A, B;
  A.Accesses = 10;
  A.Misses = 2;
  A.MissOverhead = 100.0;
  A.BackPointerBytesPeak = 64;
  B.Accesses = 30;
  B.Misses = 3;
  B.MissOverhead = 50.0;
  B.BackPointerBytesPeak = 32;
  A.merge(B);
  EXPECT_EQ(A.Accesses, 40u);
  EXPECT_EQ(A.Misses, 5u);
  EXPECT_DOUBLE_EQ(A.MissOverhead, 150.0);
  EXPECT_EQ(A.BackPointerBytesPeak, 64u); // Max, not sum.
  EXPECT_DOUBLE_EQ(A.missRate(), 0.125);
}

TEST(CacheManagerTest, InterUnitFractionStat) {
  CacheStats S;
  EXPECT_DOUBLE_EQ(S.interUnitLinkFraction(), 0.0);
  S.LinksCreated = 4;
  S.InterUnitLinksCreated = 1;
  EXPECT_DOUBLE_EQ(S.interUnitLinkFraction(), 0.25);
}

// Randomized cross-check of manager invariants across all granularities.
class CacheManagerProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheManagerProperty, RandomStreamKeepsInvariants) {
  const auto Sweep = standardGranularitySweep();
  const GranularitySpec Spec = Sweep[static_cast<size_t>(GetParam())];
  Rng R(1234 + GetParam());
  CacheManager M = makeManager(4096, Spec);

  std::vector<std::vector<SuperblockId>> Edges(120);
  std::vector<uint32_t> Sizes(120);
  for (size_t Id = 0; Id < 120; ++Id) {
    Sizes[Id] = static_cast<uint32_t>(R.nextRange(16, 700));
    const uint64_t Degree = R.nextPoisson(1.7);
    for (uint64_t E = 0; E < Degree; ++E)
      Edges[Id].push_back(static_cast<SuperblockId>(R.nextBelow(120)));
  }

  for (int Step = 0; Step < 6000; ++Step) {
    const SuperblockId Id = static_cast<SuperblockId>(R.nextBelow(120));
    SuperblockRecord Rec;
    Rec.Id = Id;
    Rec.SizeBytes = Sizes[Id];
    Rec.OutEdges = std::span<const SuperblockId>(Edges[Id]);
    M.access(Rec);
    if (Step % 256 == 0) {
      ASSERT_TRUE(M.checkInvariants()) << Spec.label() << " @" << Step;
    }
  }
  ASSERT_TRUE(M.checkInvariants());
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.Accesses, 6000u);
  EXPECT_EQ(S.Hits + S.Misses, S.Accesses);
  EXPECT_EQ(S.ColdMisses + S.CapacityMisses, S.Misses);
  EXPECT_GT(S.EvictionInvocations, 0u);
  // Conservation: every evicted block was inserted by a miss first.
  EXPECT_LE(S.EvictedBlocks, S.Misses);
}

INSTANTIATE_TEST_SUITE_P(AllGranularities, CacheManagerProperty,
                         ::testing::Range(0, 10));
