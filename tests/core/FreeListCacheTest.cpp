//===- tests/core/FreeListCacheTest.cpp - LRU free-list cache tests -------===//

#include "core/FreeListCache.h"

#include "support/Random.h"
#include "gtest/gtest.h"

#include <set>

using namespace ccsim;

namespace {

std::vector<SuperblockId> insertOk(FreeListCache &C, SuperblockId Id,
                                   uint32_t Size) {
  std::vector<SuperblockId> Evicted;
  EXPECT_TRUE(C.insert(Id, Size, 1.7, Evicted));
  EXPECT_TRUE(C.checkInvariants());
  return Evicted;
}

} // namespace

TEST(FreeListCacheTest, EmptyState) {
  FreeListCache C(1000, false);
  EXPECT_EQ(C.capacity(), 1000u);
  EXPECT_EQ(C.occupiedBytes(), 0u);
  EXPECT_EQ(C.residentCount(), 0u);
  EXPECT_FALSE(C.contains(3));
  EXPECT_TRUE(C.checkInvariants());
}

TEST(FreeListCacheTest, InsertAndContains) {
  FreeListCache C(1000, false);
  insertOk(C, 5, 300);
  EXPECT_TRUE(C.contains(5));
  EXPECT_EQ(C.occupiedBytes(), 300u);
  EXPECT_EQ(C.residentCount(), 1u);
}

TEST(FreeListCacheTest, LruEvictionOrder) {
  FreeListCache C(300, false);
  insertOk(C, 0, 100);
  insertOk(C, 1, 100);
  insertOk(C, 2, 100);
  C.touch(0); // 0 becomes MRU; LRU order is now 1, 2, 0.
  const auto Evicted = insertOk(C, 3, 100);
  ASSERT_EQ(Evicted.size(), 1u);
  EXPECT_EQ(Evicted[0], 1u); // Least recently used, NOT oldest-inserted.
  EXPECT_TRUE(C.contains(0));
}

TEST(FreeListCacheTest, RepeatedTouchKeepsBlockAlive) {
  FreeListCache C(300, false);
  insertOk(C, 0, 100);
  insertOk(C, 1, 100);
  insertOk(C, 2, 100);
  for (SuperblockId Fresh = 3; Fresh < 10; ++Fresh) {
    C.touch(0);
    insertOk(C, Fresh, 100);
    EXPECT_TRUE(C.contains(0)) << "touched block evicted";
  }
}

TEST(FreeListCacheTest, CoalescingMakesSpaceReusable) {
  FreeListCache C(300, false);
  insertOk(C, 0, 100);
  insertOk(C, 1, 100);
  insertOk(C, 2, 100);
  // Evicting 0 then 1 (adjacent) must coalesce into one 200-byte hole.
  auto Evicted = insertOk(C, 3, 200); // Needs both victims.
  EXPECT_EQ(Evicted.size(), 2u);
  EXPECT_TRUE(C.contains(3));
  EXPECT_TRUE(C.contains(2));
}

TEST(FreeListCacheTest, FragmentationStallDetected) {
  FreeListCache C(300, false);
  insertOk(C, 0, 100); // [0,100)
  insertOk(C, 1, 100); // [100,200)
  insertOk(C, 2, 100); // [200,300)
  // Free the outer two by LRU pressure in a controlled way: touch 1 so
  // 0 then 2 are the LRU victims for a 150-byte insert. After evicting 0
  // there are 100 free at the bottom; not enough; evict 2: free = 200
  // in TWO non-adjacent holes of 100 -- a fragmentation stall for 150.
  C.touch(1);
  std::vector<SuperblockId> Evicted;
  ASSERT_TRUE(C.insert(3, 150, 1.7, Evicted));
  EXPECT_GE(C.stats().FragmentationStalls, 1u);
  // Without compaction it must evict block 1 as well to fit.
  EXPECT_EQ(Evicted.size(), 3u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(FreeListCacheTest, CompactionAvoidsExtraEvictions) {
  FreeListCache C(300, true);
  insertOk(C, 0, 100);
  insertOk(C, 1, 100);
  insertOk(C, 2, 100);
  C.touch(1);
  std::vector<SuperblockId> Evicted;
  ASSERT_TRUE(C.insert(3, 150, 2.0, Evicted));
  // Compaction slides block 1 down and fits the new block: only the two
  // LRU victims go, block 1 survives.
  EXPECT_EQ(Evicted.size(), 2u);
  EXPECT_TRUE(C.contains(1));
  EXPECT_GE(C.stats().Compactions, 1u);
  EXPECT_GT(C.stats().BytesMoved, 0u);
  EXPECT_GT(C.stats().LinkFixups, 0u);
  EXPECT_TRUE(C.checkInvariants());
}

TEST(FreeListCacheTest, TooBigRejected) {
  FreeListCache C(100, false);
  std::vector<SuperblockId> Evicted;
  EXPECT_FALSE(C.insert(0, 101, 1.7, Evicted));
  EXPECT_TRUE(Evicted.empty());
  EXPECT_TRUE(C.checkInvariants());
}

TEST(FreeListCacheTest, ExactCapacityFits) {
  FreeListCache C(100, false);
  insertOk(C, 0, 100);
  EXPECT_EQ(C.occupiedBytes(), 100u);
}

TEST(FreeListCacheTest, FragmentationStatBetweenZeroAndOne) {
  FreeListCache C(1000, false);
  Rng R(3);
  for (SuperblockId Id = 0; Id < 300; ++Id) {
    if (C.contains(Id)) {
      C.touch(Id);
      continue;
    }
    std::vector<SuperblockId> Evicted;
    ASSERT_TRUE(C.insert(Id, static_cast<uint32_t>(R.nextRange(20, 200)),
                         1.7, Evicted));
  }
  const double F = C.stats().meanFragmentation();
  EXPECT_GE(F, 0.0);
  EXPECT_LE(F, 1.0);
  EXPECT_GT(C.stats().Inserts, 0u);
}

TEST(FreeListCacheTest, RandomChurnKeepsInvariants) {
  for (const bool Compaction : {false, true}) {
    Rng R(Compaction ? 11u : 12u);
    FreeListCache C(4096, Compaction);
    std::set<SuperblockId> Resident;
    for (int Step = 0; Step < 4000; ++Step) {
      const SuperblockId Id = static_cast<SuperblockId>(R.nextBelow(200));
      if (C.contains(Id)) {
        C.touch(Id);
        continue;
      }
      std::vector<SuperblockId> Evicted;
      const uint32_t Size = static_cast<uint32_t>(R.nextRange(16, 900));
      ASSERT_TRUE(C.insert(Id, Size, 1.7, Evicted));
      Resident.insert(Id);
      for (SuperblockId V : Evicted) {
        ASSERT_TRUE(Resident.count(V));
        Resident.erase(V);
      }
      if (Step % 64 == 0) {
        ASSERT_TRUE(C.checkInvariants()) << "step " << Step;
      }
      ASSERT_EQ(C.residentCount(), Resident.size());
      ASSERT_LE(C.occupiedBytes(), C.capacity());
    }
    // LRU with variable sizes on a free list must hit fragmentation
    // stalls; with compaction enabled, compactions must have occurred.
    EXPECT_GT(C.stats().FragmentationStalls, 0u);
    if (Compaction) {
      EXPECT_GT(C.stats().Compactions, 0u);
    }
  }
}

TEST(FreeListCacheTest, CompactionPreservesResidency) {
  FreeListCache C(2048, true);
  Rng R(13);
  std::set<SuperblockId> Resident;
  for (int Step = 0; Step < 2000; ++Step) {
    const SuperblockId Id = static_cast<SuperblockId>(R.nextBelow(100));
    if (C.contains(Id)) {
      C.touch(Id);
      continue;
    }
    std::vector<SuperblockId> Evicted;
    ASSERT_TRUE(C.insert(Id, static_cast<uint32_t>(R.nextRange(30, 500)),
                         1.7, Evicted));
    Resident.insert(Id);
    for (SuperblockId V : Evicted)
      Resident.erase(V);
    for (SuperblockId Live : Resident)
      ASSERT_TRUE(C.contains(Live));
  }
  EXPECT_TRUE(C.checkInvariants());
}
