//===- tests/core/CodeCachePropertyTest.cpp - Randomized invariants -------===//
//
// Property-style tests: random insertion streams at every granularity
// must preserve the placement invariants, never overflow the capacity,
// and respect FIFO eviction order.
//
//===----------------------------------------------------------------------===//

#include "core/CodeCache.h"

#include "support/Random.h"
#include "gtest/gtest.h"

#include <map>
#include <tuple>

using namespace ccsim;

namespace {

struct PropertyParams {
  uint64_t Capacity;
  uint64_t Quantum;
  uint64_t Seed;
};

class CodeCacheProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

} // namespace

TEST_P(CodeCacheProperty, RandomStreamKeepsInvariants) {
  const uint64_t Capacity = std::get<0>(GetParam());
  const uint64_t Quantum = std::get<1>(GetParam());
  if (Quantum > Capacity)
    GTEST_SKIP() << "quantum larger than capacity is clamped by the manager";

  Rng R(Capacity * 31 + Quantum);
  CodeCache C(Capacity);
  std::map<SuperblockId, uint32_t> Expected; // Resident model.
  uint64_t TotalEvicted = 0;

  for (int Step = 0; Step < 4000; ++Step) {
    const SuperblockId Id = static_cast<SuperblockId>(R.nextBelow(600));
    if (C.contains(Id))
      continue; // Hit: FIFO caches do nothing.
    const uint32_t Size = static_cast<uint32_t>(
        R.nextRange(1, static_cast<int64_t>(Capacity / 4) + 1));

    std::vector<CodeCache::Resident> Evicted;
    const auto Prep = C.prepareInsert(Size, Quantum, Evicted);
    if (!Prep.CanInsert) {
      EXPECT_GT(Size, Capacity);
      continue;
    }
    for (const auto &V : Evicted) {
      auto It = Expected.find(V.Id);
      ASSERT_NE(It, Expected.end()) << "evicted a non-resident block";
      EXPECT_EQ(It->second, V.Size);
      Expected.erase(It);
      ++TotalEvicted;
    }
    C.commitInsert(Id, Size);
    Expected[Id] = Size;

    // Invariants after every operation.
    ASSERT_TRUE(C.checkInvariants()) << "step " << Step;
    ASSERT_LE(C.occupiedBytes(), Capacity);
    ASSERT_EQ(C.residentCount(), Expected.size());
    for (const auto &[EId, ESize] : Expected) {
      ASSERT_TRUE(C.contains(EId));
      ASSERT_EQ(C.sizeOf(EId), ESize);
    }
  }
  // Under pressure the stream must actually exercise eviction.
  if (Capacity <= 4096) {
    EXPECT_GT(TotalEvicted, 0u);
  }
}

TEST_P(CodeCacheProperty, EvictionOrderIsFifo) {
  const uint64_t Capacity = std::get<0>(GetParam());
  const uint64_t Quantum = std::get<1>(GetParam());
  if (Quantum > Capacity)
    GTEST_SKIP();

  Rng R(Capacity * 7 + Quantum * 3);
  CodeCache C(Capacity);
  std::vector<SuperblockId> InsertOrder; // Residents, oldest first.
  SuperblockId NextId = 0;

  for (int Step = 0; Step < 2000; ++Step) {
    const uint32_t Size = static_cast<uint32_t>(
        R.nextRange(1, static_cast<int64_t>(Capacity / 5) + 1));
    std::vector<CodeCache::Resident> Evicted;
    const auto Prep = C.prepareInsert(Size, Quantum, Evicted);
    ASSERT_TRUE(Prep.CanInsert);
    // Victims must be exactly a prefix of the insertion order.
    ASSERT_LE(Evicted.size(), InsertOrder.size());
    for (size_t I = 0; I < Evicted.size(); ++I)
      ASSERT_EQ(Evicted[I].Id, InsertOrder[I]) << "non-FIFO eviction";
    InsertOrder.erase(InsertOrder.begin(),
                      InsertOrder.begin() + Evicted.size());
    C.commitInsert(NextId, Size);
    InsertOrder.push_back(NextId);
    ++NextId;
  }
}

TEST_P(CodeCacheProperty, PrepareGuaranteesCommit) {
  const uint64_t Capacity = std::get<0>(GetParam());
  const uint64_t Quantum = std::get<1>(GetParam());
  if (Quantum > Capacity)
    GTEST_SKIP();

  Rng R(Capacity ^ (Quantum << 8));
  CodeCache C(Capacity);
  for (SuperblockId Id = 0; Id < 1500; ++Id) {
    const uint32_t Size = static_cast<uint32_t>(
        R.nextRange(1, static_cast<int64_t>(Capacity)));
    std::vector<CodeCache::Resident> Evicted;
    if (!C.prepareInsert(Size, Quantum, Evicted).CanInsert)
      continue;
    // commitInsert must succeed without further eviction (asserted
    // internally) and place the block inside the buffer.
    const uint64_t Start = C.commitInsert(Id, Size);
    ASSERT_LE(Start + Size, Capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GranularityByCapacity, CodeCacheProperty,
    ::testing::Combine(
        /*Capacity=*/::testing::Values(256, 1024, 4096, 65536),
        /*Quantum=*/::testing::Values(1, 16, 64, 256, 1024, 4096, 65536)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, uint64_t>> &Info) {
      return "cap" + std::to_string(std::get<0>(Info.param)) + "_q" +
             std::to_string(std::get<1>(Info.param));
    });
