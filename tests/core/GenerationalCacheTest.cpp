//===- tests/core/GenerationalCacheTest.cpp - Generational cache tests ---===//

#include "core/GenerationalCache.h"

#include "support/Random.h"
#include "gtest/gtest.h"

using namespace ccsim;

namespace {

SuperblockRecord rec(SuperblockId Id, uint32_t Size) {
  SuperblockRecord R;
  R.Id = Id;
  R.SizeBytes = Size;
  return R;
}

GenerationalConfig smallConfig() {
  GenerationalConfig C;
  C.CapacityBytes = 1000;
  C.TenuredFraction = 0.5;
  C.PromoteAfterInserts = 2;
  return C;
}

} // namespace

TEST(GenerationalCacheTest, FirstInsertGoesToNursery) {
  GenerationalCacheManager M(smallConfig());
  EXPECT_EQ(M.access(rec(0, 100)), AccessKind::Miss);
  EXPECT_TRUE(M.nursery().contains(0));
  EXPECT_FALSE(M.tenured().contains(0));
  EXPECT_EQ(M.promotions(), 0u);
  EXPECT_TRUE(M.checkInvariants());
}

TEST(GenerationalCacheTest, HitInEitherGeneration) {
  GenerationalCacheManager M(smallConfig());
  M.access(rec(0, 100));
  EXPECT_EQ(M.access(rec(0, 100)), AccessKind::Hit);
  EXPECT_EQ(M.stats().Hits, 1u);
}

TEST(GenerationalCacheTest, ReinsertionPromotesToTenured) {
  GenerationalCacheManager M(smallConfig());
  // Fill the nursery (500 bytes) to force block 0 out, then re-miss it:
  // the second insert reaches PromoteAfterInserts = 2 -> tenured.
  M.access(rec(0, 200));
  M.access(rec(1, 200));
  M.access(rec(2, 200)); // Nursery FIFO evicts 0 (8-unit grain, 62-byte
                         // quantum: evicts from the front).
  EXPECT_FALSE(M.nursery().contains(0));
  M.access(rec(0, 200)); // Second regeneration: promoted.
  EXPECT_TRUE(M.tenured().contains(0));
  EXPECT_FALSE(M.nursery().contains(0));
  EXPECT_EQ(M.promotions(), 1u);
  EXPECT_TRUE(M.checkInvariants());
}

TEST(GenerationalCacheTest, TenuredBlocksSurviveNurseryChurn) {
  GenerationalConfig C = smallConfig();
  GenerationalCacheManager M(C);
  // Tenure block 0.
  M.access(rec(0, 200));
  M.access(rec(1, 200));
  M.access(rec(2, 200));
  M.access(rec(0, 200));
  ASSERT_TRUE(M.tenured().contains(0));
  // Churn many fresh blocks through the nursery; block 0 must survive.
  for (SuperblockId Id = 10; Id < 40; ++Id)
    M.access(rec(Id, 150));
  EXPECT_TRUE(M.tenured().contains(0));
}

TEST(GenerationalCacheTest, MissOverheadUsesEquation3) {
  GenerationalCacheManager M(smallConfig());
  M.access(rec(0, 230));
  EXPECT_NEAR(M.stats().MissOverhead, 19264.0, 0.01);
}

TEST(GenerationalCacheTest, TooBigForBothGenerations) {
  GenerationalConfig C = smallConfig();
  GenerationalCacheManager M(C);
  EXPECT_EQ(M.access(rec(0, 900)), AccessKind::MissTooBig);
  EXPECT_FALSE(M.nursery().contains(0));
  EXPECT_FALSE(M.tenured().contains(0));
}

TEST(GenerationalCacheTest, OversizedForTenuredFallsBackToNursery) {
  GenerationalConfig C;
  C.CapacityBytes = 1000;
  C.TenuredFraction = 0.2; // Tenured holds only 200 bytes.
  C.PromoteAfterInserts = 1; // Everything wants tenure immediately.
  GenerationalCacheManager M(C);
  EXPECT_EQ(M.access(rec(0, 500)), AccessKind::Miss);
  EXPECT_TRUE(M.nursery().contains(0)); // Too big for tenured.
  EXPECT_TRUE(M.checkInvariants());
}

TEST(GenerationalCacheTest, ZeroTenuredFractionDegenerates) {
  GenerationalConfig C = smallConfig();
  C.TenuredFraction = 0.0;
  GenerationalCacheManager M(C);
  for (int Round = 0; Round < 4; ++Round)
    for (SuperblockId Id = 0; Id < 12; ++Id)
      M.access(rec(Id, 150));
  EXPECT_TRUE(M.checkInvariants());
  EXPECT_GT(M.stats().Misses, 12u);
}

TEST(GenerationalCacheTest, RandomChurnKeepsInvariants) {
  GenerationalConfig C;
  C.CapacityBytes = 4096;
  C.PromoteAfterInserts = 3;
  GenerationalCacheManager M(C);
  Rng R(21);
  std::vector<uint32_t> Sizes(150);
  for (auto &S : Sizes)
    S = static_cast<uint32_t>(R.nextRange(30, 600));
  for (int Step = 0; Step < 8000; ++Step) {
    const SuperblockId Id = static_cast<SuperblockId>(R.nextBelow(150));
    M.access(rec(Id, Sizes[Id]));
    if (Step % 256 == 0) {
      ASSERT_TRUE(M.checkInvariants()) << "step " << Step;
    }
  }
  const CacheStats &S = M.stats();
  EXPECT_EQ(S.Hits + S.Misses, S.Accesses);
  EXPECT_GT(M.promotions(), 0u);
  EXPECT_GT(M.nurseryEvictions(), 0u);
}
