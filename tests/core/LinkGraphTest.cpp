//===- tests/core/LinkGraphTest.cpp - Chaining state tests -----------------===//

#include "core/LinkGraph.h"

#include "support/Random.h"
#include "gtest/gtest.h"

using namespace ccsim;

namespace {

/// Test fixture managing a cache + link graph pair with convenience
/// insert/evict helpers mirroring the CacheManager's call order.
class LinkGraphFixture : public ::testing::Test {
protected:
  CodeCache Cache{1000};
  LinkGraph Links;
  CacheStats Stats;
  uint64_t Quantum = 1000; // Single unit by default.

  std::vector<uint32_t> insertBlock(SuperblockId Id, uint32_t Size,
                                    std::vector<SuperblockId> Edges) {
    std::vector<CodeCache::Resident> Evicted;
    std::vector<uint32_t> Dangling;
    EXPECT_TRUE(Cache.prepareInsert(Size, Quantum, Evicted).CanInsert);
    if (!Evicted.empty())
      Links.onEvict(Cache, Evicted, Dangling);
    Cache.commitInsert(Id, Size);
    Links.onInsert(Cache, Quantum, Id, Edges, Stats);
    EXPECT_TRUE(Links.checkInvariants(Cache));
    return Dangling;
  }
};

} // namespace

TEST_F(LinkGraphFixture, ForwardEdgeMaterializesWhenTargetArrives) {
  insertBlock(0, 100, {1}); // Target absent: edge pending.
  EXPECT_FALSE(Links.hasLink(0, 1));
  EXPECT_EQ(Links.numLinks(), 0u);
  insertBlock(1, 100, {});
  EXPECT_TRUE(Links.hasLink(0, 1));
  EXPECT_EQ(Links.numLinks(), 1u);
  EXPECT_EQ(Stats.LinksCreated, 1u);
}

TEST_F(LinkGraphFixture, BackwardEdgeMaterializesImmediately) {
  insertBlock(0, 100, {});
  insertBlock(1, 100, {0});
  EXPECT_TRUE(Links.hasLink(1, 0));
  EXPECT_EQ(Links.outDegree(1), 1u);
  EXPECT_EQ(Links.inDegree(0), 1u);
}

TEST_F(LinkGraphFixture, SelfLinkCountsAsIntraUnit) {
  insertBlock(0, 100, {0});
  EXPECT_TRUE(Links.hasLink(0, 0));
  EXPECT_EQ(Stats.SelfLinksCreated, 1u);
  EXPECT_EQ(Stats.InterUnitLinksCreated, 0u);
}

TEST_F(LinkGraphFixture, IntraVsInterUnitClassification) {
  Quantum = 250; // Units of 250 bytes.
  insertBlock(0, 100, {});  // [0,100)   unit 0.
  insertBlock(1, 100, {0}); // [100,200) unit 0: intra.
  EXPECT_EQ(Stats.InterUnitLinksCreated, 0u);
  insertBlock(2, 100, {0}); // [200,300) unit 0 start? 200/250 = 0: intra.
  EXPECT_EQ(Stats.InterUnitLinksCreated, 0u);
  insertBlock(3, 100, {0}); // [300,400) unit 1: inter.
  EXPECT_EQ(Stats.InterUnitLinksCreated, 1u);
  EXPECT_EQ(Stats.LinksCreated, 3u);
}

TEST_F(LinkGraphFixture, FineQuantumMakesAllNonSelfLinksInter) {
  Quantum = 1;
  insertBlock(0, 50, {});
  insertBlock(1, 50, {0, 1}); // One link to 0 (inter), one self (intra).
  EXPECT_EQ(Stats.LinksCreated, 2u);
  EXPECT_EQ(Stats.InterUnitLinksCreated, 1u);
  EXPECT_EQ(Stats.SelfLinksCreated, 1u);
}

TEST_F(LinkGraphFixture, ParallelEdgesKeepMultiplicity) {
  insertBlock(0, 100, {});
  insertBlock(1, 100, {0, 0}); // Two exits to the same target.
  EXPECT_EQ(Links.outDegree(1), 2u);
  EXPECT_EQ(Links.inDegree(0), 2u);
  EXPECT_EQ(Links.numLinks(), 2u);
}

TEST_F(LinkGraphFixture, EvictionReportsDanglingIncomingLinks) {
  insertBlock(0, 400, {});
  insertBlock(1, 300, {0});
  insertBlock(2, 300, {0});
  EXPECT_EQ(Links.inDegree(0), 2u);
  // Insert a 400-byte block with fine quantum: evicts block 0 only.
  Quantum = 1;
  const auto Dangling = insertBlock(3, 400, {});
  ASSERT_EQ(Dangling.size(), 1u);
  EXPECT_EQ(Dangling[0], 2u); // Two survivor links dangled.
  EXPECT_EQ(Links.outDegree(1), 0u);
  EXPECT_EQ(Links.outDegree(2), 0u);
  EXPECT_EQ(Links.numLinks(), 0u);
}

TEST_F(LinkGraphFixture, LinksAmongVictimsAreFree) {
  Quantum = 1000; // Whole-cache flush.
  insertBlock(0, 300, {1});
  insertBlock(1, 300, {0});
  insertBlock(2, 300, {});
  EXPECT_EQ(Links.numLinks(), 2u);
  // A 500-byte insert flushes everything: no dangling links (all
  // endpoints die together).
  const auto Dangling = insertBlock(3, 500, {});
  ASSERT_EQ(Dangling.size(), 3u);
  EXPECT_EQ(Dangling[0], 0u);
  EXPECT_EQ(Dangling[1], 0u);
  EXPECT_EQ(Dangling[2], 0u);
  EXPECT_EQ(Links.numLinks(), 0u);
}

TEST_F(LinkGraphFixture, ReinsertionRematerializesWants) {
  insertBlock(0, 400, {});
  insertBlock(1, 300, {0});
  Quantum = 1;
  insertBlock(2, 400, {}); // Evicts 0; link 1->0 dangles and is removed.
  EXPECT_FALSE(Links.hasLink(1, 0));
  // Reinsert 0 (evicts 1's neighbor as needed): the want from block 1
  // must rematerialize if block 1 survived.
  std::vector<CodeCache::Resident> Evicted;
  std::vector<uint32_t> Dangling;
  ASSERT_TRUE(Cache.prepareInsert(200, 1, Evicted).CanInsert);
  if (!Evicted.empty())
    Links.onEvict(Cache, Evicted, Dangling);
  Cache.commitInsert(0, 200);
  Links.onInsert(Cache, 1, 0, std::vector<SuperblockId>{}, Stats);
  if (Cache.contains(1)) {
    EXPECT_TRUE(Links.hasLink(1, 0));
  }
  EXPECT_TRUE(Links.checkInvariants(Cache));
}

TEST_F(LinkGraphFixture, BackPointerMemoryAccounting) {
  insertBlock(0, 100, {});
  insertBlock(1, 100, {0});
  insertBlock(2, 100, {0, 1});
  EXPECT_EQ(Links.numLinks(), 3u);
  EXPECT_EQ(Links.backPointerBytes(), 3 * LinkGraph::BytesPerBackPointer);
}

TEST_F(LinkGraphFixture, DegreeQueriesOnUnknownIds) {
  EXPECT_EQ(Links.outDegree(999), 0u);
  EXPECT_EQ(Links.inDegree(999), 0u);
  EXPECT_FALSE(Links.hasLink(999, 1000));
}

TEST_F(LinkGraphFixture, EvictedSourceDropsItsWants) {
  // Block 0 wants absent block 7. When 0 is evicted, the want must go
  // away: block 7's later insertion must not create a dangling link.
  insertBlock(0, 600, {7});
  Quantum = 1;
  insertBlock(1, 600, {}); // Evicts 0.
  EXPECT_FALSE(Cache.contains(0));
  insertBlock(7, 100, {});
  EXPECT_EQ(Links.inDegree(7), 0u);
  EXPECT_EQ(Links.numLinks(), 0u);
  EXPECT_TRUE(Links.checkInvariants(Cache));
}

TEST(LinkGraphRandomTest, InvariantsUnderRandomChurn) {
  for (uint64_t Seed : {1ULL, 2ULL, 3ULL}) {
    Rng R(Seed);
    CodeCache Cache(2000);
    LinkGraph Links;
    CacheStats Stats;
    for (int Step = 0; Step < 1500; ++Step) {
      const SuperblockId Id = static_cast<SuperblockId>(R.nextBelow(60));
      if (Cache.contains(Id))
        continue;
      const uint32_t Size = static_cast<uint32_t>(R.nextRange(20, 400));
      const uint64_t Quantum = 1ULL << R.nextBelow(12);
      std::vector<SuperblockId> Edges;
      const uint64_t Degree = R.nextPoisson(1.7);
      for (uint64_t E = 0; E < Degree; ++E)
        Edges.push_back(static_cast<SuperblockId>(R.nextBelow(60)));

      std::vector<CodeCache::Resident> Evicted;
      std::vector<uint32_t> Dangling;
      if (!Cache.prepareInsert(Size, Quantum, Evicted).CanInsert)
        continue;
      if (!Evicted.empty())
        Links.onEvict(Cache, Evicted, Dangling);
      Cache.commitInsert(Id, Size);
      Links.onInsert(Cache, Quantum, Id, Edges, Stats);

      ASSERT_TRUE(Cache.checkInvariants()) << "seed " << Seed;
      ASSERT_TRUE(Links.checkInvariants(Cache))
          << "seed " << Seed << " step " << Step;
    }
    EXPECT_GT(Stats.LinksCreated, 0u);
  }
}
